(* Behavioral simulation (fish school) deployment study: compare the
   default deployment against every ClouDiA strategy on time-to-solution,
   the way Sect. 6.4 does for the longest-link workload class.

   Run with:  dune exec examples/behavioral_sim.exe *)

let rows = 5
let cols = 5
let ticks = 1500

let () =
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  let graph = Workloads.Behavioral.graph ~rows ~cols in
  let strategies =
    [
      ("default", None);
      ("G1", Some Cloudia.Advisor.Greedy_g1);
      ("G2", Some Cloudia.Advisor.Greedy_g2);
      ("R1(1000)", Some (Cloudia.Advisor.Random_r1 1000));
      ( "CP",
        Some
          (Cloudia.Advisor.Cp
             {
               Cloudia.Cp_solver.clusters = Some 20;
               time_limit = 15.0;
               iteration_time_limit = None;
               use_labeling = true;
               bootstrap_trials = 10;
               symmetry_breaking = true;
             }) );
    ]
  in
  Printf.printf "Behavioral simulation: %dx%d mesh, %d ticks, 10%% over-allocation\n\n"
    rows cols ticks;
  Printf.printf "%-10s %14s %16s %12s\n" "strategy" "longest link" "time-to-solution" "vs default";
  (* One shared allocation so strategies compete on the same network. *)
  let rng = Prng.create 99 in
  let env = Cloudsim.Env.allocate rng provider ~count:(rows * cols * 11 / 10) in
  let costs = Cloudia.Metrics.estimate rng env Cloudia.Metrics.Mean ~samples_per_pair:30 in
  let problem = Cloudia.Types.of_matrix ~graph costs in
  let default_plan = Cloudia.Types.identity_plan problem in
  let default_time = ref 0.0 in
  List.iter
    (fun (name, strategy) ->
      let plan =
        match strategy with
        | None -> default_plan
        | Some s -> Cloudia.Advisor.search rng s Cloudia.Cost.Longest_link problem
      in
      let ll = Cloudia.Cost.longest_link problem plan in
      let time =
        Workloads.Behavioral.time_to_solution (Prng.create 5) env ~plan ~rows ~cols ~ticks
      in
      if name = "default" then default_time := time;
      let delta =
        if name = "default" then "-"
        else
          Printf.sprintf "%.1f%%"
            (Cloudia.Cost.improvement ~default:!default_time ~optimized:time)
      in
      Printf.printf "%-10s %11.3f ms %14.2f s %12s\n" name ll time delta)
    strategies
