(* Weighted communication graphs (the future-work extension of Sect. 8):
   a simulation mesh whose interior rows exchange 4x more state than the
   boundary. The weighted solver places the hot interior links on the
   fastest instance pairs, beating the unweighted deployment on the
   weighted objective.

   Run with:  dune exec examples/weighted_mesh.exe *)

let rows = 4
let cols = 4

let () =
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  let rng = Prng.create 99 in
  let graph = Graphs.Templates.mesh2d ~rows ~cols in
  let env = Cloudsim.Env.allocate rng provider ~count:(rows * cols * 12 / 10) in
  let costs = Cloudia.Metrics.estimate rng env Cloudia.Metrics.Mean ~samples_per_pair:30 in
  let problem = Cloudia.Types.of_matrix ~graph costs in
  (* Interior-interior links carry 4x the traffic of boundary links. *)
  let interior node =
    let r = node / cols and c = node mod cols in
    r > 0 && r < rows - 1 && c > 0 && c < cols - 1
  in
  let weight i i' = if interior i && interior i' then 4.0 else 1.0 in
  let w = Cloudia.Weighted.make problem ~weight in
  Printf.printf "Weighted %dx%d mesh: interior links weigh 4x\n\n" rows cols;
  Printf.printf "%-22s %18s %18s\n" "plan" "weighted LL" "unweighted LL";
  let show name plan =
    Printf.printf "%-22s %15.3f ms %15.3f ms\n" name
      (Cloudia.Weighted.longest_link w plan)
      (Cloudia.Cost.longest_link problem plan)
  in
  show "default" (Cloudia.Types.identity_plan problem);
  let options =
    {
      Cloudia.Cp_solver.clusters = Some 20;
      time_limit = 8.0;
      iteration_time_limit = None;
      use_labeling = true;
      bootstrap_trials = 10;
      symmetry_breaking = true;
    }
  in
  let unweighted = Cloudia.Cp_solver.solve ~options (Prng.create 1) problem in
  show "CP (unweighted)" unweighted.Cloudia.Cp_solver.plan;
  let weighted = Cloudia.Weighted.solve_cp ~options (Prng.create 1) w in
  show "CP (weighted)" weighted.Cloudia.Cp_solver.plan;
  show "G2 (weighted)" (Cloudia.Weighted.g2 w);
  let sa =
    Cloudia.Weighted.solve_anneal
      ~options:{ Cloudia.Anneal.default_options with Cloudia.Anneal.time_limit = 2.0 }
      Cloudia.Cost.Longest_link (Prng.create 2) w
  in
  show "anneal (weighted)" sa.Cloudia.Anneal.plan;
  Printf.printf
    "\nThe weighted CP run sacrifices raw longest-link to protect the heavy\n\
     interior links - exactly the trade a frequency-aware tenant wants.\n"
