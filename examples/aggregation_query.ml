(* Aggregation-query deployment study: a two-level top-k aggregation tree
   whose response time is the longest root-leaf path (Sect. 6.1.2). The
   longest-path objective is solved with the MIP encoding and the
   lightweight baselines of Sect. 4.5.

   Run with:  dune exec examples/aggregation_query.exe *)

let fanout = 3
let depth = 2
let queries = 3000

let () =
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  let graph = Workloads.Aggregation.graph ~fanout ~depth in
  let n = Graphs.Digraph.n graph in
  let rng = Prng.create 4242 in
  let env = Cloudsim.Env.allocate rng provider ~count:(n + 2) in
  let costs = Cloudia.Metrics.estimate rng env Cloudia.Metrics.Mean ~samples_per_pair:30 in
  let problem = Cloudia.Types.of_matrix ~graph costs in
  Printf.printf "Aggregation query: %d-ary tree of depth %d (%d nodes), %d queries\n\n" fanout
    depth n queries;
  Printf.printf "%-10s %14s %15s\n" "strategy" "longest path" "mean response";
  let evaluate name plan =
    let lp = Cloudia.Cost.longest_path problem plan in
    let resp =
      Workloads.Aggregation.mean_response_time (Prng.create 9) env ~plan ~fanout ~depth ~queries
    in
    Printf.printf "%-10s %11.3f ms %12.3f ms\n" name lp resp
  in
  evaluate "default" (Cloudia.Types.identity_plan problem);
  evaluate "G2-heur" (Cloudia.Greedy.g2 problem);
  let r2_plan, _, trials =
    Cloudia.Random_search.r2 rng Cloudia.Cost.Longest_path problem ~time_limit:2.0
  in
  evaluate (Printf.sprintf "R2(%dk)" (trials / 1000)) r2_plan;
  let mip =
    Cloudia.Mip_solver.solve_longest_path
      ~options:
        {
          Cloudia.Mip_solver.clusters = None;
          time_limit = 20.0;
          node_limit = None;
          bootstrap_trials = 10;
        }
      rng problem
  in
  evaluate "MIP" mip.Cloudia.Mip_solver.plan;
  Printf.printf "\nMIP explored %d branch-and-bound nodes%s.\n"
    mip.Cloudia.Mip_solver.nodes_explored
    (if mip.Cloudia.Mip_solver.proven_optimal then " and proved optimality" else "")
