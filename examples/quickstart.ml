(* Quickstart: run the ClouDiA pipeline end to end on a small behavioral-
   simulation deployment and print what the advisor did.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let rng = Prng.create 2025 in
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  (* The tenant's application: a 4x4 mesh of simulation workers. *)
  let rows = 4 and cols = 4 in
  let config =
    {
      Cloudia.Advisor.graph = Workloads.Behavioral.graph ~rows ~cols;
      objective = Cloudia.Cost.Longest_link;
      metric = Cloudia.Metrics.Mean;
      over_allocation = 0.25;
      samples_per_pair = 30;
      strategy =
        Cloudia.Advisor.Cp
          {
            Cloudia.Cp_solver.clusters = Some 20;
            time_limit = 10.0;
            iteration_time_limit = None;
            use_labeling = true;
            bootstrap_trials = 10;
            symmetry_breaking = true;
          };
    }
  in
  let report = Cloudia.Advisor.run rng provider config in
  let open Cloudia in
  Printf.printf "ClouDiA quickstart: %d-node mesh on %s\n" (rows * cols)
    (Cloudsim.Provider.to_string Cloudsim.Provider.Ec2);
  Printf.printf "  instances allocated      : %d (%.0f%% over-allocation)\n"
    (Cloudsim.Env.count report.Advisor.env)
    (config.Advisor.over_allocation *. 100.0);
  Printf.printf "  measurement time charged : %.1f minutes\n" report.Advisor.measurement_minutes;
  Printf.printf "  search time              : %.2f s\n" report.Advisor.search_seconds;
  Printf.printf "  default longest link     : %.3f ms\n" report.Advisor.default_cost;
  Printf.printf "  optimized longest link   : %.3f ms\n" report.Advisor.cost;
  Printf.printf "  improvement              : %.1f%%\n" report.Advisor.improvement_pct;
  Printf.printf "  instances terminated     : %s\n"
    (String.concat ", " (List.map string_of_int report.Advisor.terminated));
  (* Confirm on the simulated application itself. *)
  let ticks = 2000 in
  let default_time =
    Workloads.Behavioral.time_to_solution (Prng.create 7) report.Advisor.env
      ~plan:report.Advisor.default_plan ~rows ~cols ~ticks
  in
  let optimized_time =
    Workloads.Behavioral.time_to_solution (Prng.create 7) report.Advisor.env
      ~plan:report.Advisor.plan ~rows ~cols ~ticks
  in
  Printf.printf "  %d-tick simulation       : %.2f s default vs %.2f s optimized (%.1f%% faster)\n"
    ticks default_time optimized_time
    (Cost.improvement ~default:default_time ~optimized:optimized_time)
