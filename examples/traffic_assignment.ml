(* Dynamic traffic assignment (Sect. 2.1.1 of the paper): a road network is
   partitioned geographically; each partition simulates its region and
   exchanges boundary flows every round; the whole simulation must finish
   each period before the real-world period ends. ClouDiA's deployment
   raises the fraction of periods that meet the deadline.

   Run with:  dune exec examples/traffic_assignment.exe *)

let () =
  let rng = Prng.create 2026 in
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  (* A 10x10 street grid with some closed segments, split into 9 regions. *)
  let net = Workloads.Roadnet.grid rng ~rows:10 ~cols:10 ~keep:0.85 in
  let part = Workloads.Roadnet.partition rng net ~parts:9 in
  let graph = Workloads.Roadnet.communication_graph net part in
  Printf.printf "Road network: %d intersections, %d segments -> %d partitions\n"
    (Workloads.Roadnet.intersection_count net)
    (Workloads.Roadnet.segment_count net)
    (Array.length part.Workloads.Roadnet.sizes);
  Printf.printf "  balance %.2f, %d cut segments, partition graph has %d links\n\n"
    (Workloads.Roadnet.balance part)
    part.Workloads.Roadnet.cut_edges
    (Graphs.Digraph.edge_count graph);
  let env = Cloudsim.Env.allocate rng provider ~count:11 in
  let costs = Cloudia.Metrics.estimate rng env Cloudia.Metrics.Mean ~samples_per_pair:30 in
  let problem = Cloudia.Types.of_matrix ~graph costs in
  let optimized =
    (Cloudia.Cp_solver.solve
       ~options:
         {
           Cloudia.Cp_solver.clusters = Some 20;
           time_limit = 8.0;
           iteration_time_limit = None;
           use_labeling = true;
           bootstrap_trials = 10;
           symmetry_breaking = true;
         }
       rng problem)
      .Cloudia.Cp_solver.plan
  in
  let rounds = 400 in
  (* Calibrate the deadline midway between the two plans' simulated mean
     period times (jitter makes the max-over-links round cost exceed the
     longest mean link, so means must come from simulation). *)
  let default = Cloudia.Types.identity_plan problem in
  let simulated_mean plan =
    (Workloads.Traffic.run (Prng.create 99) env ~plan ~graph ~periods:15
       ~rounds_per_period:rounds ~deadline_seconds:1e9)
      .Workloads.Traffic.mean_period_seconds
  in
  let deadline = (simulated_mean default +. simulated_mean optimized) /. 2.0 in
  Printf.printf "Per period: %d exchange rounds, deadline %.2f s\n\n" rounds deadline;
  Printf.printf "%-10s %14s %16s %14s\n" "plan" "longest link" "mean period" "on time";
  List.iter
    (fun (name, plan) ->
      let o =
        Workloads.Traffic.run (Prng.create 3) env ~plan ~graph ~periods:100
          ~rounds_per_period:rounds ~deadline_seconds:deadline
      in
      Printf.printf "%-10s %11.3f ms %13.2f s %13.0f%%\n" name
        (Cloudia.Cost.longest_link problem plan)
        o.Workloads.Traffic.mean_period_seconds
        (100.0 *. Workloads.Traffic.on_time_fraction o))
    [ ("default", default); ("ClouDiA", optimized) ]
