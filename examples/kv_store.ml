(* Key-value store deployment study (Sect. 6.1.3): front-end servers fan
   out to storage nodes; mean query response time is not exactly captured
   by either deployment cost, yet longest-link optimization still helps —
   the effect Fig. 12 quantifies at 15-31 %.

   Run with:  dune exec examples/kv_store.exe *)

let front_ends = 4
let storage = 12
let touch = 4
let queries = 20_000

let () =
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  let graph = Workloads.Kv_store.graph ~front_ends ~storage in
  let n = front_ends + storage in
  let rng = Prng.create 31337 in
  let env = Cloudsim.Env.allocate rng provider ~count:(n * 11 / 10) in
  let costs = Cloudia.Metrics.estimate rng env Cloudia.Metrics.Mean ~samples_per_pair:30 in
  let problem = Cloudia.Types.of_matrix ~graph costs in
  Printf.printf "Key-value store: %d front-ends x %d storage nodes, queries touch %d nodes\n\n"
    front_ends storage touch;
  Printf.printf "%-10s %14s %15s\n" "strategy" "longest link" "mean response";
  let evaluate name plan =
    let ll = Cloudia.Cost.longest_link problem plan in
    let resp =
      Workloads.Kv_store.mean_response_time (Prng.create 3) env ~plan ~front_ends ~storage
        ~touch ~queries
    in
    Printf.printf "%-10s %11.3f ms %12.3f ms\n" name ll resp
  in
  evaluate "default" (Cloudia.Types.identity_plan problem);
  evaluate "G2" (Cloudia.Greedy.g2 problem);
  let cp =
    Cloudia.Cp_solver.solve
      ~options:
        {
          Cloudia.Cp_solver.clusters = Some 20;
          time_limit = 15.0;
          iteration_time_limit = None;
          use_labeling = true;
          bootstrap_trials = 10;
          symmetry_breaking = true;
        }
      rng problem
  in
  evaluate "CP" cp.Cloudia.Cp_solver.plan;
  Printf.printf
    "\nNote: longest link is a proxy here - the KV objective is mean response time,\n\
     which no single-link cost captures exactly (Sect. 6.1.3 of the paper).\n"
