(* Repository source-rule checker (see Lint.Source_rules for the rules).

   Usage: repolint [--root DIR] [--allow FILE] [--json FILE] [ROOTS...]

   Walks ROOTS (default: lib bin) relative to --root (default: cwd),
   applies every rule, subtracts the allowlist, prints the survivors and
   exits 1 if any remain. CI runs it from the repository root and uploads
   the --json report as an artifact. *)

let default_roots = [ "lib"; "bin" ]
let default_allow = Filename.concat (Filename.concat "tools" "repolint") "allowlist"

let rec walk dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      (* Sys.readdir order is filesystem-dependent; sort so reports (and
         the --json artifact) are byte-identical across machines. *)
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then
            if entry = "_build" || entry.[0] = '.' then acc else acc @ walk path
          else acc @ [ path ])
        [] entries

let read_file path = In_channel.with_open_text path In_channel.input_all

let () =
  let root = ref "." in
  let allow_file = ref None in
  let json_file = ref None in
  let roots = ref [] in
  let args =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan from (default: cwd)");
      ( "--allow",
        Arg.String (fun f -> allow_file := Some f),
        Printf.sprintf "FILE allowlist of 'RULE path-prefix' lines (default: %s if present)"
          default_allow );
      ( "--json",
        Arg.String (fun f -> json_file := Some f),
        "FILE also write the violations as a JSON diagnostic report" );
    ]
  in
  Arg.parse args (fun r -> roots := r :: !roots) "repolint [options] [roots...]";
  let roots = if !roots = [] then default_roots else List.rev !roots in
  let files =
    List.concat_map
      (fun r ->
        let dir = Filename.concat !root r in
        if Sys.file_exists dir && Sys.is_directory dir then walk dir
        else begin
          Printf.eprintf "repolint: no directory %s\n" dir;
          exit 2
        end)
      roots
  in
  (* Paths are matched repo-relative; strip the --root prefix. *)
  let relative path =
    let prefix = !root ^ "/" in
    if !root = "." && String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else if String.length path > String.length prefix
            && String.sub path 0 (String.length prefix) = prefix then
      String.sub path (String.length prefix) (String.length path - String.length prefix)
    else path
  in
  let sources =
    List.filter
      (fun p -> Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli")
      files
  in
  let violations =
    List.concat_map
      (fun path -> Lint.Source_rules.scan_file ~path:(relative path) (read_file path))
      sources
    @ Lint.Source_rules.missing_mli ~paths:(List.map relative sources)
  in
  let allows =
    let file =
      match !allow_file with
      | Some f -> Some f
      | None ->
          let f = Filename.concat !root default_allow in
          if Sys.file_exists f then Some f else None
    in
    match file with
    | Some f -> Lint.Source_rules.parse_allowlist (read_file f)
    | None -> []
  in
  let kept, suppressed = Lint.Source_rules.partition_allowed allows violations in
  let diagnostics = List.map Lint.Source_rules.violation_to_diagnostic kept in
  (match !json_file with
  | Some f ->
      Out_channel.with_open_text f (fun oc ->
          Out_channel.output_string oc (Lint.Diagnostic.to_json diagnostics);
          Out_channel.output_char oc '\n')
  | None -> ());
  Format.printf "%a" Lint.Diagnostic.render diagnostics;
  Printf.printf "repolint: %d file(s), %d violation(s), %d suppressed\n"
    (List.length sources) (List.length kept) (List.length suppressed);
  exit (if kept = [] then 0 else 1)
