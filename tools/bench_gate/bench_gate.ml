(* CI perf-regression gate over the bench JSON metrics.

   Usage: bench_gate BASELINE.json CURRENT.json

   Both files are the flat {"metric": number} objects the bench harness
   writes to $CLOUDIA_BENCH_JSON. For every metric in the baseline the
   gate applies a direction-aware band:

     moves_per_sec_* / *.speedup   fail when current < 70% of baseline
     alloc_words_per_move_*        fail when current > 110% of baseline
     *.ns_per_run                  fail when current > 130% of baseline

   The committed baseline is a conservative envelope (the worst of
   several local runs), so the band absorbs runner jitter while still
   catching real regressions: a representation change that re-boxes the
   cost matrix shifts allocation per move by orders of magnitude, not
   10%.

   On top of the bands, the gate enforces the refactor's acceptance
   claim on the 64-node mesh: the delta kernel must sustain >= 2x the
   moves/sec of full evaluation, or allocate <= 1/5 the words per move.

   Exits 1 with a per-metric report when any check fails. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_gate: " ^ s); exit 2) fmt

(* Parse the flat JSON object the bench harness emits: string keys,
   number (or null) values, no nesting. Not a general JSON parser. *)
let parse_metrics path =
  let text = In_channel.with_open_text path In_channel.input_all in
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' | ',' -> true | _ -> false)
    do incr pos done
  in
  let expect c =
    skip_ws ();
    if peek () <> Some c then fail "%s: expected '%c' at byte %d" path c !pos;
    incr pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "%s: unterminated string" path;
      match text.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          (* Metric names never need escapes; keep the char as-is. *)
          if !pos + 1 >= n then fail "%s: dangling escape" path;
          Buffer.add_char b text.[!pos + 1];
          pos := !pos + 2;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    skip_ws ();
    if !pos + 4 <= n && String.sub text !pos 4 = "null" then begin
      pos := !pos + 4;
      None
    end
    else begin
      let start = !pos in
      while
        !pos < n
        && match text.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false
      do incr pos done;
      if !pos = start then fail "%s: expected a number at byte %d" path start;
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some v -> Some v
      | None -> fail "%s: bad number %S" path (String.sub text start (!pos - start))
    end
  in
  expect '{';
  let out = Hashtbl.create 32 in
  let rec entries () =
    skip_ws ();
    match peek () with
    | Some '}' -> incr pos
    | Some '"' ->
        let k = parse_string () in
        expect ':';
        (match parse_value () with Some v -> Hashtbl.replace out k v | None -> ());
        entries ()
    | _ -> fail "%s: expected '\"' or '}' at byte %d" path !pos
  in
  entries ();
  out

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Lower_better carries an additive slack on top of the multiplicative
   band: the anytime metrics are dimensionless gaps/fractions whose
   baseline can be arbitrarily close to zero, where a pure ratio band
   would flag noise (0.001 -> 0.004 is not a regression). *)
type direction = Higher_better of float | Lower_better of float * float

let band key =
  if contains key "moves_per_sec" || contains key ".speedup" then Some (Higher_better 0.70)
  else if contains key "alloc_words_per_move" then Some (Lower_better (1.10, 0.0))
  else if contains key "ns_per_run" then Some (Lower_better (1.30, 0.0))
  else if contains key "primal_integral" then Some (Lower_better (3.0, 0.02))
  else if contains key "tt_within" then Some (Lower_better (5.0, 0.10))
  else if contains key "sym_node_ratio" then Some (Lower_better (1.2, 0.05))
  else if contains key "sparse_iters" then Some (Lower_better (1.5, 0.0))
  else if contains key "fig_scale" && contains key ".seconds" then Some (Lower_better (2.5, 1.0))
  else None

let () =
  let baseline_path, current_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
        prerr_endline "usage: bench_gate BASELINE.json CURRENT.json";
        exit 2
  in
  let baseline = parse_metrics baseline_path in
  let current = parse_metrics current_path in
  let failures = ref 0 in
  let check key base =
    match band key with
    | None -> ()
    | Some dir -> (
        match Hashtbl.find_opt current key with
        | None ->
            incr failures;
            Printf.printf "FAIL %-52s missing from %s\n" key current_path
        | Some cur ->
            let ok, verdict =
              match dir with
              | Higher_better frac ->
                  (cur >= frac *. base, Printf.sprintf ">= %.0f%% of baseline" (100. *. frac))
              | Lower_better (frac, slack) ->
                  ( cur <= (frac *. base) +. slack,
                    if slack > 0.0 then
                      Printf.sprintf "<= %.0f%% of baseline + %.3g" (100. *. frac) slack
                    else Printf.sprintf "<= %.0f%% of baseline" (100. *. frac) )
            in
            if not ok then incr failures;
            Printf.printf "%s %-52s %14.1f vs %14.1f  (%s)\n"
              (if ok then "ok  " else "FAIL")
              key cur base verdict)
  in
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) baseline []) in
  List.iter (fun k -> check k (Hashtbl.find baseline k)) keys;
  (* Acceptance claim for the Lat_matrix refactor (64-node mesh): delta
     evaluation either >= 2x the moves/sec of full evaluation or >= 5x
     lower allocation per move. *)
  (match
     ( Hashtbl.find_opt current "fig_delta.mesh64.speedup",
       Hashtbl.find_opt current "fig_delta.mesh64.alloc_words_per_move_full",
       Hashtbl.find_opt current "fig_delta.mesh64.alloc_words_per_move_delta" )
   with
  | Some speedup, Some alloc_full, Some alloc_delta ->
      let ok = speedup >= 2.0 || alloc_full >= 5.0 *. alloc_delta in
      if not ok then incr failures;
      Printf.printf "%s mesh64 acceptance: speedup %.1fx, alloc %.1f vs %.1f words/move\n"
        (if ok then "ok  " else "FAIL")
        speedup alloc_full alloc_delta
  | _ ->
      incr failures;
      Printf.printf "FAIL mesh64 acceptance metrics missing from %s\n" current_path);
  (* Acceptance claims for the solver-scaling work (fig-scale): symmetry
     breaking halves the CP node count at 150 instances without changing
     the answer, the 150-instance LP routes to the sparse kernel and
     solves to optimality, branch and bound completes at 40 instances,
     and dense/sparse optima are bit-identical on the overlap LP. *)
  (let req key pred describe =
     match Hashtbl.find_opt current key with
     | Some v when pred v -> Printf.printf "ok   fig-scale acceptance: %s (%s = %g)\n" describe key v
     | Some v ->
         incr failures;
         Printf.printf "FAIL fig-scale acceptance: %s (%s = %g)\n" describe key v
     | None ->
         incr failures;
         Printf.printf "FAIL fig-scale acceptance: %s missing from %s\n" key current_path
   in
   req "fig_scale.cp150.sym_node_ratio" (fun v -> v <= 0.5) "CP nodes at least halved at 150";
   req "fig_scale.cp150.cost_match" (fun v -> v = 1.0) "same CP cost with and without breaking";
   req "fig_scale.cp150.proven_sym" (fun v -> v = 1.0) "broken search still proves optimality";
   req "fig_scale.lp150.optimal" (fun v -> v = 1.0) "150-instance sparse LP solved to optimality";
   req "fig_scale.mip40.nodes" (fun v -> v >= 1.0) "40-instance branch and bound completed";
   req "fig_scale.sparse_dense.bitmatch" (fun v -> v = 1.0) "dense/sparse optima bit-identical");
  if !failures > 0 then begin
    Printf.printf "bench_gate: %d check(s) failed\n" !failures;
    exit 1
  end;
  Printf.printf "bench_gate: all checks passed\n"
