(* AST-level source analyzer (see Analysis.Analyzer for the engine and
   lib/analysis/pass_*.ml for the passes).

   Usage: analyzer [--root DIR] [--allow FILE] [--baseline FILE]
                   [--json FILE] [--update-baseline] [ROOTS...]

   Parses every .ml under ROOTS (default: lib bin bench) relative to
   --root (default: cwd), runs the registered passes (A001 domain-safety,
   A002 determinism, A003 hot-path allocation, A004 matrix
   representation), subtracts inline suppressions
   [(* cloudia-lint: allow A00N reason *)], the allowlist and the
   committed baseline, prints the survivors and exits 1 if any remain.
   CI runs it from the repository root and uploads the --json report. *)

let default_roots = [ "lib"; "bin"; "bench" ]
let tool_dir = Filename.concat "tools" "analyzer"
let default_allow = Filename.concat tool_dir "allowlist"
let default_baseline = Filename.concat tool_dir "baseline"

let read_file path = In_channel.with_open_text path In_channel.input_all

let () =
  let root = ref "." in
  let allow_file = ref None in
  let baseline_file = ref None in
  let json_file = ref None in
  let update_baseline = ref false in
  let roots = ref [] in
  let args =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan from (default: cwd)");
      ( "--allow",
        Arg.String (fun f -> allow_file := Some f),
        Printf.sprintf
          "FILE allowlist of 'PASS path-prefix' lines (default: %s if present)"
          default_allow );
      ( "--baseline",
        Arg.String (fun f -> baseline_file := Some f),
        Printf.sprintf
          "FILE committed baseline of tolerated finding fingerprints (default: %s if present)"
          default_baseline );
      ( "--json",
        Arg.String (fun f -> json_file := Some f),
        "FILE also write the findings as a JSON diagnostic report" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        Printf.sprintf " rewrite %s to cover the current findings and exit 0"
          default_baseline );
    ]
  in
  Arg.parse args (fun r -> roots := r :: !roots) "analyzer [options] [roots...]";
  let roots = if !roots = [] then default_roots else List.rev !roots in
  List.iter
    (fun r ->
      let dir = Filename.concat !root r in
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Printf.eprintf "analyzer: no directory %s\n" dir;
        exit 2
      end)
    roots;
  let files = Analysis.Analyzer.load_tree ~root:!root roots in
  let allow =
    let file =
      match !allow_file with
      | Some f -> Some f
      | None ->
          let f = Filename.concat !root default_allow in
          if Sys.file_exists f then Some f else None
    in
    match file with
    | Some f -> Lint.Source_rules.parse_allowlist (read_file f)
    | None -> []
  in
  let baseline_path =
    match !baseline_file with
    | Some f -> f
    | None -> Filename.concat !root default_baseline
  in
  let baseline =
    if (not !update_baseline) && Sys.file_exists baseline_path then
      Analysis.Baseline.parse (read_file baseline_path)
    else Analysis.Baseline.empty
  in
  let report = Analysis.Analyzer.run ~allow ~baseline files in
  if !update_baseline then begin
    Out_channel.with_open_text baseline_path (fun oc ->
        Out_channel.output_string oc
          (Analysis.Baseline.render
             (Analysis.Baseline.of_findings report.Analysis.Analyzer.kept)));
    Printf.printf "analyzer: baselined %d finding(s) into %s\n"
      (List.length report.Analysis.Analyzer.kept)
      baseline_path;
    exit 0
  end;
  let diagnostics =
    List.map Analysis.Finding.to_diagnostic report.Analysis.Analyzer.kept
  in
  (match !json_file with
  | Some f ->
      Out_channel.with_open_text f (fun oc ->
          Out_channel.output_string oc (Lint.Diagnostic.to_json diagnostics);
          Out_channel.output_char oc '\n')
  | None -> ());
  Format.printf "%a" Lint.Diagnostic.render diagnostics;
  Printf.printf "analyzer: %d file(s), %d finding(s), %d suppressed\n"
    report.Analysis.Analyzer.files
    (List.length report.Analysis.Analyzer.kept)
    (List.length report.Analysis.Analyzer.suppressed);
  exit (if report.Analysis.Analyzer.kept = [] then 0 else 1)
