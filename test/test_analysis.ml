(* Tests for the AST analyzer (lib/analysis/): each pass against seeded
   fixture modules, the inline-suppression and baseline plumbing, and a
   zero-findings check over the real source tree. Fixtures are in-memory
   strings fed through the compiler's parser, so every case documents the
   exact shape the pass catches or deliberately tolerates. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let findings path text = Analysis.Analyzer.check_source ~path text

let passes_of fs = List.map (fun (f : Analysis.Finding.t) -> f.pass) fs

let has_pass p fs = List.mem p (passes_of fs)

let count_pass p fs = List.length (List.filter (fun (f : Analysis.Finding.t) -> f.pass = p) fs)

(* ---------------- A001: domain-safety ---------------- *)

let test_a001_ref_reached_from_spawn () =
  let src =
    "let counter = ref 0\n"
    ^ "let start () = Domain.spawn (fun () -> incr counter)\n"
  in
  let fs = findings "lib/cloudia/fixture.ml" src in
  check_int "one A001" 1 (count_pass "A001" fs);
  (match List.find_opt (fun (f : Analysis.Finding.t) -> f.pass = "A001") fs with
  | Some f -> check_int "finding at the spawn site" 2 f.line
  | None -> Alcotest.fail "A001 finding missing")

let test_a001_hashtbl_reached_from_spawn () =
  let src =
    "let cache = Hashtbl.create 16\n"
    ^ "let start () = Domain.spawn (fun () -> Hashtbl.add cache 1 \"x\")\n"
  in
  check_bool "Hashtbl state flagged" true
    (has_pass "A001" (findings "lib/cloudia/fixture.ml" src))

let test_a001_transitive_reachability () =
  (* The closure never names the ref; it calls a top-level helper that
     does. Reachability must follow the def/use graph. *)
  let src =
    "let counter = ref 0\n"
    ^ "let bump () = incr counter\n"
    ^ "let start () = Domain.spawn (fun () -> bump ())\n"
  in
  check_bool "transitive reach flagged" true
    (has_pass "A001" (findings "lib/cloudia/fixture.ml" src))

let test_a001_atomic_is_safe () =
  let src =
    "let counter = Atomic.make 0\n"
    ^ "let start () = Domain.spawn (fun () -> Atomic.incr counter)\n"
  in
  check_int "Atomic state is fine" 0
    (count_pass "A001" (findings "lib/cloudia/fixture.ml" src))

let test_a001_mutex_protect_guards () =
  let src =
    "let lock = Mutex.create ()\n"
    ^ "let counter = ref 0\n"
    ^ "let start () =\n"
    ^ "  Domain.spawn (fun () -> Mutex.protect lock (fun () -> incr counter))\n"
  in
  check_int "Mutex.protect-guarded access is fine" 0
    (count_pass "A001" (findings "lib/cloudia/fixture.ml" src))

let test_a001_local_state_is_fine () =
  (* Mutable state created inside the spawned closure is domain-local. *)
  let src =
    "let start () = Domain.spawn (fun () -> let c = ref 0 in incr c; !c)\n"
  in
  check_int "closure-local ref is fine" 0
    (count_pass "A001" (findings "lib/cloudia/fixture.ml" src))

(* ---------------- A002: determinism ---------------- *)

let test_a002_direct_gettimeofday () =
  let src = "let now () = Unix.gettimeofday ()\n" in
  check_bool "flagged in solver code" true
    (has_pass "A002" (findings "lib/cp/fixture.ml" src));
  check_int "exempt in lib/obs" 0
    (count_pass "A002" (findings "lib/obs/fixture.ml" src));
  check_int "exempt in bench" 0
    (count_pass "A002" (findings "bench/fixture.ml" src))

let test_a002_aliased_unix_token_scanner_misses () =
  (* The seeded violation the token scanner demonstrably misses: no
     "Unix.gettimeofday" token appears, only an alias projection. The AST
     pass resolves [module U = Unix] and still flags it; the token-rule
     engine sees nothing. *)
  let src = "module U = Unix\nlet now () = U.gettimeofday ()\n" in
  check_bool "AST pass catches the alias" true
    (has_pass "A002" (findings "lib/cp/fixture.ml" src));
  check_int "token scanner reports nothing" 0
    (List.length (Lint.Source_rules.scan_file ~path:"lib/cp/fixture.ml" src))

let test_a002_open_unix_bare_call () =
  let src = "open Unix\nlet now () = gettimeofday ()\n" in
  check_bool "bare gettimeofday under open Unix" true
    (has_pass "A002" (findings "lib/cp/fixture.ml" src))

let test_a002_global_random () =
  let src = "let roll () = Random.int 6\n" in
  check_bool "global Random flagged" true
    (has_pass "A002" (findings "lib/cloudia/fixture.ml" src));
  check_int "exempt in lib/prng" 0
    (count_pass "A002" (findings "lib/prng/fixture.ml" src));
  check_bool "open Random flagged too" true
    (has_pass "A002"
       (findings "lib/cloudia/fixture.ml" "open Random\nlet x = 1\n"))

let test_a002_shadowed_random_not_flagged () =
  (* A file-local [module Random] shim is not the global Random; the old
     token rule R002 would have false-positived here. *)
  let src =
    "module Random = struct let int bound = bound - 1 end\n"
    ^ "let roll () = Random.int 6\n"
  in
  check_int "shadowed Random tolerated" 0
    (count_pass "A002" (findings "lib/cloudia/fixture.ml" src))

let test_a002_polymorphic_compare () =
  let src = "let order xs = List.sort compare xs\n" in
  check_bool "bare compare flagged in solver lib" true
    (has_pass "A002" (findings "lib/stats/fixture.ml" src));
  check_int "fine outside solver libs" 0
    (count_pass "A002" (findings "lib/graphs/fixture.ml" src));
  (* [open Float] makes a bare [compare] monomorphic. *)
  check_int "compare under open Float tolerated" 0
    (count_pass "A002"
       (findings "lib/stats/fixture.ml" "open Float\nlet order xs = List.sort compare xs\n"));
  check_bool "Stdlib.compare flagged" true
    (has_pass "A002"
       (findings "lib/lp/fixture.ml" "let order xs = List.sort Stdlib.compare xs\n"))

(* ---------------- A003: hot-path allocation ---------------- *)

let test_a003_closure_in_hot_loop () =
  let src =
    "let[@cloudia.hot] sweep n =\n"
    ^ "  let acc = ref 0 in\n"
    ^ "  for i = 0 to n - 1 do\n"
    ^ "    let f = fun x -> x + i in\n"
    ^ "    acc := f !acc\n"
    ^ "  done;\n"
    ^ "  !acc\n"
  in
  check_bool "closure allocation flagged" true
    (has_pass "A003" (findings "lib/cloudia/fixture.ml" src))

let test_a003_tuple_in_hot_loop () =
  let src =
    "let[@cloudia.hot] sweep n =\n"
    ^ "  let best = ref 0 in\n"
    ^ "  while !best < n do\n"
    ^ "    let pair = (!best, n) in\n"
    ^ "    best := fst pair + 1\n"
    ^ "  done\n"
  in
  check_bool "tuple allocation flagged" true
    (has_pass "A003" (findings "lib/cloudia/fixture.ml" src))

let test_a003_clean_hot_function () =
  (* Arithmetic, array reads/writes and ref updates allocate nothing. *)
  let src =
    "let[@cloudia.hot] sweep (a : float array) =\n"
    ^ "  let acc = ref 0.0 in\n"
    ^ "  for i = 0 to Array.length a - 1 do\n"
    ^ "    acc := !acc +. a.(i)\n"
    ^ "  done;\n"
    ^ "  !acc\n"
  in
  check_int "clean hot loop passes" 0
    (count_pass "A003" (findings "lib/cloudia/fixture.ml" src))

let test_a003_allocation_outside_loop_ok () =
  let src =
    "let[@cloudia.hot] sweep n =\n"
    ^ "  let acc = ref 0 in\n"
    ^ "  for i = 0 to n - 1 do\n"
    ^ "    acc := !acc + i\n"
    ^ "  done;\n"
    ^ "  (!acc, n)\n"
  in
  check_int "allocation before/after the loop is fine" 0
    (count_pass "A003" (findings "lib/cloudia/fixture.ml" src))

let test_a003_unmarked_function_ignored () =
  let src =
    "let sweep n =\n"
    ^ "  let acc = ref 0 in\n"
    ^ "  for i = 0 to n - 1 do\n"
    ^ "    let pair = (i, i) in\n"
    ^ "    acc := !acc + fst pair\n"
    ^ "  done;\n"
    ^ "  !acc\n"
  in
  check_int "only [@cloudia.hot] functions are checked" 0
    (count_pass "A003" (findings "lib/cloudia/fixture.ml" src))

let test_a003_raise_path_exempt () =
  (* Allocating the exception payload on the failure path is fine: the
     cold_heads carve-out covers raise/failwith/invalid_arg arguments. *)
  let src =
    "let[@cloudia.hot] sweep n =\n"
    ^ "  for i = 0 to n - 1 do\n"
    ^ "    if i > n then invalid_arg (string_of_int i)\n"
    ^ "  done\n"
  in
  check_int "failure-path allocation tolerated" 0
    (count_pass "A003" (findings "lib/cloudia/fixture.ml" src))

(* ---------------- A004: matrix representation ---------------- *)

let test_a004_boxed_costs_indexing () =
  let src = "let read costs i j = costs.(i).(j)\n" in
  check_bool "boxed costs indexing flagged" true
    (has_pass "A004" (findings "lib/cloudia/fixture.ml" src));
  check_int "exempt in lib/lat_matrix" 0
    (count_pass "A004" (findings "lib/lat_matrix/fixture.ml" src));
  check_int "exempt in matrix_io" 0
    (count_pass "A004" (findings "lib/cloudia/matrix_io.ml" src));
  (* Other arrays are someone else's business. *)
  check_int "unrelated arrays fine" 0
    (count_pass "A004" (findings "lib/cloudia/fixture.ml" "let read xs i = xs.(i)\n"))

(* ---------------- parse failures ---------------- *)

let test_parse_failure_is_a_finding () =
  let fs = findings "lib/cloudia/fixture.ml" "let let let\n" in
  check_bool "A000 on syntax error" true (has_pass "A000" fs)

(* ---------------- inline suppressions ---------------- *)

let test_suppression_comment () =
  let src =
    "(* cloudia-lint: allow A002 fixture exercises the wall clock *)\n"
    ^ "let now () = Unix.gettimeofday ()\n"
  in
  let kept, suppressed =
    Analysis.Analyzer.analyze_source ~path:"lib/cp/fixture.ml" src
  in
  check_int "kept" 0 (List.length kept);
  check_int "suppressed" 1 (List.length suppressed)

let test_suppression_needs_reason () =
  (* No reason, no suppression: every checked-in exception explains
     itself. *)
  let src =
    "(* cloudia-lint: allow A002 *)\nlet now () = Unix.gettimeofday ()\n"
  in
  let kept, suppressed =
    Analysis.Analyzer.analyze_source ~path:"lib/cp/fixture.ml" src
  in
  check_int "kept" 1 (List.length kept);
  check_int "suppressed" 0 (List.length suppressed)

let test_suppression_scope_is_two_lines () =
  (* The comment covers its own line and the next — not the whole file. *)
  let src =
    "(* cloudia-lint: allow A002 first call is sanctioned *)\n"
    ^ "let a () = Unix.gettimeofday ()\n"
    ^ "let b () = Unix.gettimeofday ()\n"
  in
  let kept, suppressed =
    Analysis.Analyzer.analyze_source ~path:"lib/cp/fixture.ml" src
  in
  check_int "second call kept" 1 (List.length kept);
  check_int "first call suppressed" 1 (List.length suppressed)

let test_suppression_multiple_passes () =
  let sup = Analysis.Suppress.scan "(* cloudia-lint: allow A001 A003 shared scratch *)\n" in
  match sup with
  | [ s ] ->
      check_int "line" 1 s.Analysis.Suppress.line;
      Alcotest.(check (list string)) "passes" [ "A001"; "A003" ] s.Analysis.Suppress.passes
  | _ -> Alcotest.fail "expected exactly one suppression"

(* ---------------- baseline ---------------- *)

let test_baseline_round_trip () =
  let f1 = Analysis.Finding.make ~pass:"A002" ~path:"lib/cp/fixture.ml" ~line:3 "msg one" in
  let f2 = Analysis.Finding.make ~pass:"A001" ~path:"lib/cloudia/x.ml" ~line:9 "msg two" in
  let b = Analysis.Baseline.of_findings [ f1; f2 ] in
  check_int "size" 2 (Analysis.Baseline.size b);
  let b' = Analysis.Baseline.parse (Analysis.Baseline.render b) in
  check_bool "parse (render b) = b" true
    (Analysis.Baseline.render b = Analysis.Baseline.render b');
  check_bool "mem after round trip" true (Analysis.Baseline.mem b' f1);
  (* Fingerprints exclude the line, so baselines survive drift. *)
  check_bool "line drift tolerated" true
    (Analysis.Baseline.mem b' { f1 with line = 42 });
  check_bool "different message misses" false
    (Analysis.Baseline.mem b' { f1 with message = "msg three" })

let test_run_with_baseline_and_allowlist () =
  let src = "let now () = Unix.gettimeofday ()\n" in
  let files = [ ("lib/cp/fixture.ml", src); ("lib/lp/fixture.ml", src) ] in
  (* Unfiltered: both findings kept. *)
  let r = Analysis.Analyzer.run files in
  check_int "files" 2 r.Analysis.Analyzer.files;
  check_int "kept" 2 (List.length r.Analysis.Analyzer.kept);
  (* Allowlist takes one, baseline the other. *)
  let allow = Lint.Source_rules.parse_allowlist "A002 lib/lp/\n" in
  let baseline =
    Analysis.Baseline.of_findings
      (Analysis.Analyzer.check_source ~path:"lib/cp/fixture.ml" src)
  in
  let r = Analysis.Analyzer.run ~allow ~baseline files in
  check_int "all suppressed" 0 (List.length r.Analysis.Analyzer.kept);
  check_int "two suppressed" 2 (List.length r.Analysis.Analyzer.suppressed)

(* ---------------- determinism of the front end ---------------- *)

let test_findings_sorted_and_deduped () =
  let f a = Analysis.Finding.make ~pass:a ~path:"p.ml" ~line:1 "m" in
  let sorted = Analysis.Finding.sort [ f "A003"; f "A001"; f "A003" ] in
  Alcotest.(check (list string)) "sorted unique" [ "A001"; "A003" ] (passes_of sorted)

(* ---------------- the real tree is clean ---------------- *)

(* Walk upward from cwd to the repository root (the directory holding
   dune-project and lib/). Under dune the test runs in
   _build/default/test, and dune copies the whole source tree into
   _build/default, so the analyzer sees exactly what CI gates. *)
let rec find_root dir depth =
  if depth > 6 then None
  else if
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lib")
  then Some dir
  else find_root (Filename.dirname dir) (depth + 1)

let test_clean_tree_has_zero_findings () =
  match find_root (Sys.getcwd ()) 0 with
  | None -> () (* sandboxed runner without the tree: nothing to check *)
  | Some root ->
      let files = Analysis.Analyzer.load_tree ~root [ "lib"; "bin"; "bench" ] in
      check_bool "found sources" true (List.length files > 50);
      let allow =
        let f = Filename.concat root "tools/analyzer/allowlist" in
        if Sys.file_exists f then
          Lint.Source_rules.parse_allowlist
            (In_channel.with_open_text f In_channel.input_all)
        else []
      in
      let r = Analysis.Analyzer.run ~allow files in
      List.iter
        (fun f -> Printf.eprintf "unexpected: %s\n" (Analysis.Finding.to_string f))
        r.Analysis.Analyzer.kept;
      check_int "zero unsuppressed findings" 0 (List.length r.Analysis.Analyzer.kept)

let suite =
  [
    Alcotest.test_case "a001 ref from spawn" `Quick test_a001_ref_reached_from_spawn;
    Alcotest.test_case "a001 hashtbl from spawn" `Quick test_a001_hashtbl_reached_from_spawn;
    Alcotest.test_case "a001 transitive reach" `Quick test_a001_transitive_reachability;
    Alcotest.test_case "a001 atomic safe" `Quick test_a001_atomic_is_safe;
    Alcotest.test_case "a001 mutex guard" `Quick test_a001_mutex_protect_guards;
    Alcotest.test_case "a001 local state" `Quick test_a001_local_state_is_fine;
    Alcotest.test_case "a002 direct gettimeofday" `Quick test_a002_direct_gettimeofday;
    Alcotest.test_case "a002 alias beats token scan" `Quick
      test_a002_aliased_unix_token_scanner_misses;
    Alcotest.test_case "a002 open unix" `Quick test_a002_open_unix_bare_call;
    Alcotest.test_case "a002 global random" `Quick test_a002_global_random;
    Alcotest.test_case "a002 shadowed random" `Quick test_a002_shadowed_random_not_flagged;
    Alcotest.test_case "a002 poly compare" `Quick test_a002_polymorphic_compare;
    Alcotest.test_case "a003 closure in loop" `Quick test_a003_closure_in_hot_loop;
    Alcotest.test_case "a003 tuple in loop" `Quick test_a003_tuple_in_hot_loop;
    Alcotest.test_case "a003 clean hot fn" `Quick test_a003_clean_hot_function;
    Alcotest.test_case "a003 alloc outside loop" `Quick test_a003_allocation_outside_loop_ok;
    Alcotest.test_case "a003 unmarked fn" `Quick test_a003_unmarked_function_ignored;
    Alcotest.test_case "a003 raise path" `Quick test_a003_raise_path_exempt;
    Alcotest.test_case "a004 boxed costs" `Quick test_a004_boxed_costs_indexing;
    Alcotest.test_case "parse failure" `Quick test_parse_failure_is_a_finding;
    Alcotest.test_case "suppression comment" `Quick test_suppression_comment;
    Alcotest.test_case "suppression needs reason" `Quick test_suppression_needs_reason;
    Alcotest.test_case "suppression scope" `Quick test_suppression_scope_is_two_lines;
    Alcotest.test_case "suppression multi-pass" `Quick test_suppression_multiple_passes;
    Alcotest.test_case "baseline round trip" `Quick test_baseline_round_trip;
    Alcotest.test_case "run with baseline+allow" `Quick test_run_with_baseline_and_allowlist;
    Alcotest.test_case "findings sorted" `Quick test_findings_sorted_and_deduped;
    Alcotest.test_case "clean tree" `Quick test_clean_tree_has_zero_findings;
  ]
