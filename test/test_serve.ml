(* Tests for the advising daemon: wire protocol codecs and framing, the
   LRU behind the caches, queue backpressure, end-to-end advises with
   memo hits and warm starts, and resilience to abrupt client
   disconnects. Server tests run a real daemon on a Unix socket under a
   temp path. *)

let check_bits name expected actual =
  Alcotest.(check int64)
    (Printf.sprintf "%s: expected %h got %h" name expected actual)
    (Int64.bits_of_float expected) (Int64.bits_of_float actual)

let socket_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "cloudia-test-%d-%s.sock" (Unix.getpid ()) tag)

(* A 4-node ring over 6 instances (over-allocated), distinct finite
   latencies — cheap for every solver and deterministic for greedy. *)
let ring4 = Graphs.Templates.ring ~n:4

let costs6 =
  Lat_matrix.init 6 (fun i j ->
      if i = j then 0.0 else 0.3 +. (float_of_int (((5 * i) + j) mod 11) /. 7.0))

let job ?(id = "j") ?(tenant = "t") ?(seed = 1) ?(solver = Serve.Protocol.Greedy)
    ?(objective = Cloudia.Cost.Longest_link) ?(budget = 5.0) ?deadline ?max_moves
    ?clusters ?(graph = ring4) ?(costs = costs6) () =
  {
    Serve.Protocol.id;
    tenant;
    seed;
    solver;
    objective;
    budget;
    deadline;
    max_moves;
    clusters;
    graph;
    costs;
  }

(* ---------- Protocol codecs ---------- *)

let roundtrip_request r =
  Serve.Protocol.request_of_json
    (Obs.Json.parse (Obs.Json.to_string (Serve.Protocol.json_of_request r)))

let roundtrip_reply r =
  Serve.Protocol.reply_of_json
    (Obs.Json.parse (Obs.Json.to_string (Serve.Protocol.json_of_reply r)))

let test_request_roundtrip () =
  (* All optional fields present, plus a NaN entry (unsampled pair) that
     must survive as JSON null. *)
  let costs =
    Lat_matrix.init 3 (fun i j ->
        if i = j then 0.0
        else if i = 0 && j = 2 then Float.nan
        else 1.5 +. float_of_int ((3 * i) + j))
  in
  let j =
    job ~id:"rt" ~tenant:"acme" ~seed:42 ~solver:Serve.Protocol.Cp
      ~objective:Cloudia.Cost.Longest_path ~budget:2.5 ~deadline:7.0 ~max_moves:99
      ~clusters:4
      ~graph:(Graphs.Templates.ring ~n:3)
      ~costs ()
  in
  match roundtrip_request (Serve.Protocol.Advise j) with
  | Serve.Protocol.Advise j' ->
      Alcotest.(check string) "id" j.Serve.Protocol.id j'.Serve.Protocol.id;
      Alcotest.(check string) "tenant" j.Serve.Protocol.tenant j'.Serve.Protocol.tenant;
      Alcotest.(check int) "seed" j.Serve.Protocol.seed j'.Serve.Protocol.seed;
      Alcotest.(check string) "solver"
        (Serve.Protocol.solver_to_string j.Serve.Protocol.solver)
        (Serve.Protocol.solver_to_string j'.Serve.Protocol.solver);
      Alcotest.(check string) "objective"
        (Cloudia.Cost.objective_to_string j.Serve.Protocol.objective)
        (Cloudia.Cost.objective_to_string j'.Serve.Protocol.objective);
      check_bits "budget" j.Serve.Protocol.budget j'.Serve.Protocol.budget;
      Alcotest.(check (option (float 0.0))) "deadline" j.Serve.Protocol.deadline
        j'.Serve.Protocol.deadline;
      Alcotest.(check (option int)) "max_moves" j.Serve.Protocol.max_moves
        j'.Serve.Protocol.max_moves;
      Alcotest.(check (option int)) "clusters" j.Serve.Protocol.clusters
        j'.Serve.Protocol.clusters;
      Alcotest.(check string) "graph"
        (Graphs.Graph_io.print_edge_list j.Serve.Protocol.graph)
        (Graphs.Graph_io.print_edge_list j'.Serve.Protocol.graph);
      Alcotest.(check bool) "costs bit-exact (incl. NaN)" true
        (Lat_matrix.equal j.Serve.Protocol.costs j'.Serve.Protocol.costs)
  | _ -> Alcotest.fail "advise did not round-trip to advise"

let test_request_roundtrip_optionals_absent () =
  match roundtrip_request (Serve.Protocol.Advise (job ())) with
  | Serve.Protocol.Advise j' ->
      Alcotest.(check (option (float 0.0))) "deadline" None j'.Serve.Protocol.deadline;
      Alcotest.(check (option int)) "max_moves" None j'.Serve.Protocol.max_moves;
      Alcotest.(check (option int)) "clusters" None j'.Serve.Protocol.clusters
  | _ -> Alcotest.fail "advise did not round-trip to advise"

let test_control_roundtrips () =
  Alcotest.(check bool) "ping" true
    (roundtrip_request Serve.Protocol.Ping = Serve.Protocol.Ping);
  Alcotest.(check bool) "stats" true
    (roundtrip_request Serve.Protocol.Stats_request = Serve.Protocol.Stats_request)

let test_reply_roundtrips () =
  let replies =
    [
      Serve.Protocol.Result
        {
          r_id = "r1";
          r_plan = [| 2; 0; 5; 1 |];
          r_cost = 12.5;
          r_cached = true;
          r_warm = false;
          r_fingerprint = "00ff00ff00ff00ff";
          r_latency_ms = 3.25;
        };
      Serve.Protocol.Rejected { j_id = "r2"; reason = "queue full" };
      Serve.Protocol.Failed { j_id = "r3"; message = "solver raised" };
      Serve.Protocol.Pong;
      Serve.Protocol.Stats [ ("cache.memo", 1); ("serve.jobs", 3) ];
    ]
  in
  List.iter
    (fun r -> Alcotest.(check bool) "reply round-trips" true (roundtrip_reply r = r))
    replies

let expect_protocol_error name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Protocol_error")
  | exception Serve.Protocol.Protocol_error _ -> ()

let test_codec_rejects_garbage () =
  expect_protocol_error "non-object request" (fun () ->
      Serve.Protocol.request_of_json (Obs.Json.Str "nope"));
  expect_protocol_error "unknown reply tag" (fun () ->
      Serve.Protocol.reply_of_json
        (Obs.Json.Obj [ ("type", Obs.Json.Str "bogus") ]));
  expect_protocol_error "advise missing fields" (fun () ->
      Serve.Protocol.request_of_json (Obs.Json.parse {|{"type":"advise"}|}));
  expect_protocol_error "ragged matrix" (fun () ->
      Serve.Protocol.request_of_json
        (Obs.Json.parse
           {|{"type":"advise","id":"x","tenant":"t","seed":1,"solver":"greedy",
              "objective":"longest-link","budget":1.0,
              "graph":{"n":2,"edges":[[0,1]]},"costs":[[0,1],[2]]}|}))

(* ---------- Framing ---------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error (_, _, _) -> ());
      try Unix.close b with Unix.Unix_error (_, _, _) -> ())
    (fun () -> f a b)

let test_framing_roundtrip_and_eof () =
  with_socketpair @@ fun a b ->
  Serve.Protocol.write_frame a "hello";
  Serve.Protocol.write_frame a "";
  Alcotest.(check (option string)) "first frame" (Some "hello")
    (Serve.Protocol.read_frame b);
  Alcotest.(check (option string)) "empty frame" (Some "")
    (Serve.Protocol.read_frame b);
  Unix.close a;
  Alcotest.(check (option string)) "clean EOF is None" None
    (Serve.Protocol.read_frame b)

let test_framing_eof_mid_frame () =
  with_socketpair @@ fun a b ->
  (* Header promises 10 bytes; deliver 3 and hang up. *)
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 0;
  Bytes.set_uint8 header 1 0;
  Bytes.set_uint8 header 2 0;
  Bytes.set_uint8 header 3 10;
  let _ = Unix.write a header 0 4 in
  let _ = Unix.write_substring a "abc" 0 3 in
  Unix.close a;
  match Serve.Protocol.read_frame b with
  | _ -> Alcotest.fail "expected End_of_file mid-frame"
  | exception End_of_file -> ()

let test_framing_rejects_oversized () =
  with_socketpair @@ fun a b ->
  (* A length header one past the cap must be refused before any payload
     is read. max_frame_bytes is 16 MiB = 0x1000000. *)
  Alcotest.(check int) "cap value" (16 * 1024 * 1024) Serve.Protocol.max_frame_bytes;
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 0x01;
  Bytes.set_uint8 header 1 0x00;
  Bytes.set_uint8 header 2 0x00;
  Bytes.set_uint8 header 3 0x01;
  let _ = Unix.write a header 0 4 in
  expect_protocol_error "oversized frame" (fun () -> Serve.Protocol.read_frame b)

let test_recv_rejects_malformed_json () =
  with_socketpair @@ fun a b ->
  Serve.Protocol.write_frame a "not json";
  expect_protocol_error "malformed request payload" (fun () ->
      Serve.Protocol.recv_request b)

(* ---------- LRU ---------- *)

let test_lru_eviction_order () =
  let l = Serve.Lru.create ~capacity:2 in
  Serve.Lru.put l "a" 1;
  Serve.Lru.put l "b" 2;
  (* Touch "a" so "b" is the oldest, then overflow. *)
  Alcotest.(check (option int)) "find a" (Some 1) (Serve.Lru.find l "a");
  Serve.Lru.put l "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Serve.Lru.find l "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Serve.Lru.find l "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Serve.Lru.find l "c");
  Alcotest.(check int) "length at capacity" 2 (Serve.Lru.length l)

let test_lru_replace_no_eviction () =
  let l = Serve.Lru.create ~capacity:2 in
  Serve.Lru.put l "a" 1;
  Serve.Lru.put l "b" 2;
  Serve.Lru.put l "a" 10;
  Alcotest.(check int) "replace keeps length" 2 (Serve.Lru.length l);
  Alcotest.(check (option int)) "replaced value" (Some 10) (Serve.Lru.find l "a");
  Alcotest.(check (option int)) "other intact" (Some 2) (Serve.Lru.find l "b")

let test_lru_mem_does_not_promote () =
  let l = Serve.Lru.create ~capacity:2 in
  Serve.Lru.put l "a" 1;
  Serve.Lru.put l "b" 2;
  Alcotest.(check bool) "mem sees a" true (Serve.Lru.mem l "a");
  (* mem must not have refreshed "a": it is still the eviction victim. *)
  Serve.Lru.put l "c" 3;
  Alcotest.(check (option int)) "a evicted despite mem" None (Serve.Lru.find l "a");
  Alcotest.(check bool) "capacity reported" true (Serve.Lru.capacity l = 2)

let test_lru_rejects_bad_capacity () =
  match Serve.Lru.create ~capacity:0 with
  | _ -> Alcotest.fail "capacity 0 must be rejected"
  | exception Invalid_argument _ -> ()

(* ---------- Server: backpressure and shutdown draining ---------- *)

let test_backpressure_and_shutdown_rejects () =
  (* No worker domains: jobs queue but never execute, so the queue fills
     deterministically. The third job bounces with "queue full"; the two
     queued ones are rejected with "shutting down" when the daemon
     stops. *)
  let sock = socket_path "bp" in
  let config =
    {
      (Serve.Server.default_config ~socket_path:sock) with
      domains = 0;
      queue_capacity = 2;
      cache_capacity = 4;
    }
  in
  let server = Serve.Server.start config in
  let c = Serve.Client.connect sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  let fd = Serve.Client.raw_fd c in
  Serve.Protocol.send_request fd (Serve.Protocol.Advise (job ~id:"q1" ()));
  Serve.Protocol.send_request fd (Serve.Protocol.Advise (job ~id:"q2" ()));
  Serve.Protocol.send_request fd (Serve.Protocol.Advise (job ~id:"q3" ()));
  (match Serve.Protocol.recv_reply fd with
  | Some (Serve.Protocol.Rejected { j_id; reason }) ->
      Alcotest.(check string) "overflow job bounced" "q3" j_id;
      Alcotest.(check string) "backpressure reason" "queue full" reason
  | _ -> Alcotest.fail "expected Rejected for the overflow job");
  Serve.Server.stop server;
  let drained = ref [] in
  for _ = 1 to 2 do
    match Serve.Protocol.recv_reply fd with
    | Some (Serve.Protocol.Rejected { j_id; reason }) ->
        Alcotest.(check string) "shutdown reason" "shutting down" reason;
        drained := j_id :: !drained
    | _ -> Alcotest.fail "expected shutdown rejection for queued job"
  done;
  Alcotest.(check (list string)) "both queued jobs answered" [ "q1"; "q2" ]
    (List.sort String.compare !drained);
  Alcotest.(check (option reject)) "connection closed after drain" None
    (Serve.Protocol.recv_reply fd)

(* ---------- Server: end-to-end advise ---------- *)

let with_server ?(domains = 1) tag f =
  let sock = socket_path tag in
  let config =
    {
      (Serve.Server.default_config ~socket_path:sock) with
      domains;
      queue_capacity = 8;
      cache_capacity = 8;
    }
  in
  let server = Serve.Server.start config in
  Fun.protect ~finally:(fun () -> Serve.Server.stop server) (fun () -> f sock)

(* [Protocol.Result]'s inline record cannot escape its match; copy the
   fields into a plain record the assertions can carry around. *)
type result_fields = {
  r_id : string;
  r_plan : int array;
  r_cost : float;
  r_cached : bool;
  r_warm : bool;
  r_fingerprint : string;
  r_latency_ms : float;
}

let advise_result c j =
  match Serve.Client.advise c j with
  | Serve.Protocol.Result { r_id; r_plan; r_cost; r_cached; r_warm; r_fingerprint; r_latency_ms }
    ->
      { r_id; r_plan; r_cost; r_cached; r_warm; r_fingerprint; r_latency_ms }
  | Serve.Protocol.Rejected { reason; _ } -> Alcotest.fail ("rejected: " ^ reason)
  | Serve.Protocol.Failed { message; _ } -> Alcotest.fail ("failed: " ^ message)
  | _ -> Alcotest.fail "expected a Result reply"

let check_valid_plan (r : int array) =
  Alcotest.(check int) "plan covers every node" (Graphs.Digraph.n ring4) (Array.length r);
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun inst ->
      Alcotest.(check bool) "instance in range" true (inst >= 0 && inst < 6);
      Alcotest.(check bool) "instance used once" false (Hashtbl.mem seen inst);
      Hashtbl.replace seen inst ())
    r

let test_end_to_end_memo_and_warm () =
  with_server "e2e" @@ fun sock ->
  let c = Serve.Client.connect sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  Serve.Client.ping c;
  (* Cold greedy solve. *)
  let g1 = advise_result c (job ~id:"g1" ()) in
  Alcotest.(check string) "id echoed" "g1" g1.r_id;
  Alcotest.(check bool) "cold is not cached" false g1.r_cached;
  Alcotest.(check string) "fingerprint on the wire"
    (Lat_matrix.fingerprint_hex costs6) g1.r_fingerprint;
  Alcotest.(check bool) "finite cost" true (Float.is_finite g1.r_cost);
  Alcotest.(check bool) "latency measured" true (g1.r_latency_ms >= 0.0);
  check_valid_plan g1.r_plan;
  (* Identical re-submission is a memo hit with the identical answer. *)
  let g2 = advise_result c (job ~id:"g1-again" ()) in
  Alcotest.(check bool) "repeat served from memo" true g2.r_cached;
  check_bits "memo cost identical" g1.r_cost g2.r_cost;
  Alcotest.(check (array int)) "memo plan identical" g1.r_plan g2.r_plan;
  (* A different seed is a different job identity: no memo hit. *)
  let g3 = advise_result c (job ~id:"g3" ~seed:2 ()) in
  Alcotest.(check bool) "new seed misses memo" false g3.r_cached;
  (* Bounded anneal: deterministic, so memo-admissible; a re-seeded run
     on the same matrix must warm-start from the cached incumbent. *)
  let a1 = advise_result c (job ~id:"a1" ~solver:Serve.Protocol.Anneal ~seed:5 ~max_moves:300 ()) in
  Alcotest.(check bool) "anneal cold not cached" false a1.r_cached;
  let a2 = advise_result c (job ~id:"a2" ~solver:Serve.Protocol.Anneal ~seed:5 ~max_moves:300 ()) in
  Alcotest.(check bool) "bounded anneal memoized" true a2.r_cached;
  check_bits "anneal memo cost identical" a1.r_cost a2.r_cost;
  let a3 = advise_result c (job ~id:"a3" ~solver:Serve.Protocol.Anneal ~seed:6 ~max_moves:300 ()) in
  Alcotest.(check bool) "re-seed misses memo" false a3.r_cached;
  Alcotest.(check bool) "re-seed warm-starts" true a3.r_warm;
  (* Stats reflect the traffic. *)
  let stats = Serve.Client.stats c in
  let get k = match List.assoc_opt k stats with Some v -> v | None -> 0 in
  Alcotest.(check bool) "jobs counted" true (get "serve.jobs" > 0);
  Alcotest.(check bool) "cache hits counted" true (get "serve.cache_hits" > 0);
  Alcotest.(check bool) "memo occupied" true (get "cache.memo" >= 1);
  Alcotest.(check bool) "incumbents occupied" true (get "cache.incumbents" >= 1)

let test_solver_failure_is_replied () =
  (* The CP solver rejects the longest-path objective: the daemon must
     answer Failed, not drop the connection or the worker. *)
  with_server "fail" @@ fun sock ->
  let c = Serve.Client.connect sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  (match
     Serve.Client.advise c
       (job ~id:"bad" ~solver:Serve.Protocol.Cp ~objective:Cloudia.Cost.Longest_path ())
   with
  | Serve.Protocol.Failed { j_id; message } ->
      Alcotest.(check string) "id echoed" "bad" j_id;
      Alcotest.(check bool) "message present" true (String.length message > 0)
  | _ -> Alcotest.fail "expected Failed");
  (* The worker survived: the next job is answered normally. *)
  let r = advise_result c (job ~id:"ok" ()) in
  Alcotest.(check string) "worker alive" "ok" r.r_id

let test_expired_deadline_rejected () =
  with_server "dl" @@ fun sock ->
  let c = Serve.Client.connect sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
  match Serve.Client.advise c (job ~id:"late" ~deadline:0.0 ()) with
  | Serve.Protocol.Rejected { j_id; reason } ->
      Alcotest.(check string) "id echoed" "late" j_id;
      Alcotest.(check string) "reason" "deadline expired in queue" reason
  | _ -> Alcotest.fail "expected Rejected for an already-expired deadline"

let test_survives_client_disconnect () =
  with_server "dc" @@ fun sock ->
  let c1 = Serve.Client.connect sock in
  Fun.protect ~finally:(fun () -> Serve.Client.close c1) @@ fun () ->
  let r1 = advise_result c1 (job ~id:"keep" ()) in
  Alcotest.(check bool) "first solve cold" false r1.r_cached;
  (* Second client fires a job and hangs up before the reply. *)
  let c2 = Serve.Client.connect sock in
  Serve.Protocol.send_request (Serve.Client.raw_fd c2)
    (Serve.Protocol.Advise
       (job ~id:"orphan" ~solver:Serve.Protocol.Anneal ~seed:9 ~max_moves:2000 ()));
  Serve.Client.close c2;
  (* The daemon absorbs the dead connection and keeps serving, caches
     intact. *)
  Serve.Client.ping c1;
  let r2 = advise_result c1 (job ~id:"keep-again" ()) in
  Alcotest.(check bool) "cache intact after disconnect" true r2.r_cached;
  check_bits "same answer" r1.r_cost r2.r_cost

let suite =
  [
    Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
    Alcotest.test_case "request optionals absent" `Quick
      test_request_roundtrip_optionals_absent;
    Alcotest.test_case "control roundtrips" `Quick test_control_roundtrips;
    Alcotest.test_case "reply roundtrips" `Quick test_reply_roundtrips;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "framing roundtrip + EOF" `Quick test_framing_roundtrip_and_eof;
    Alcotest.test_case "framing EOF mid-frame" `Quick test_framing_eof_mid_frame;
    Alcotest.test_case "framing rejects oversized" `Quick test_framing_rejects_oversized;
    Alcotest.test_case "recv rejects malformed json" `Quick test_recv_rejects_malformed_json;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru replace" `Quick test_lru_replace_no_eviction;
    Alcotest.test_case "lru mem does not promote" `Quick test_lru_mem_does_not_promote;
    Alcotest.test_case "lru rejects bad capacity" `Quick test_lru_rejects_bad_capacity;
    Alcotest.test_case "backpressure + shutdown drain" `Quick
      test_backpressure_and_shutdown_rejects;
    Alcotest.test_case "end-to-end memo and warm" `Quick test_end_to_end_memo_and_warm;
    Alcotest.test_case "solver failure replied" `Quick test_solver_failure_is_replied;
    Alcotest.test_case "expired deadline rejected" `Quick test_expired_deadline_rejected;
    Alcotest.test_case "survives client disconnect" `Quick test_survives_client_disconnect;
  ]
