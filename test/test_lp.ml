open Lp

(* Tests for the simplex kernel and the branch-and-bound MIP solver. *)

let check_float name ?(tol = 1e-6) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

(* ---------- Simplex ---------- *)

let solve_simplex objective rows = Simplex.solve ~objective ~rows ()

let test_simplex_basic_max () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig
     example, optimum 36 at (2, 6)); we minimize the negation. *)
  let rows =
    [
      ([| 1.0; 0.0 |], Simplex.Le, 4.0);
      ([| 0.0; 2.0 |], Simplex.Le, 12.0);
      ([| 3.0; 2.0 |], Simplex.Le, 18.0);
    ]
  in
  match solve_simplex [| -3.0; -5.0 |] rows with
  | Simplex.Optimal (obj, x) ->
      check_float "objective" (-36.0) obj;
      check_float "x" 2.0 x.(0);
      check_float "y" 6.0 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality () =
  (* min x + y s.t. x + y = 5, x <= 3: optimum 5 (any split). *)
  let rows =
    [ ([| 1.0; 1.0 |], Simplex.Eq, 5.0); ([| 1.0; 0.0 |], Simplex.Le, 3.0) ]
  in
  match solve_simplex [| 1.0; 1.0 |] rows with
  | Simplex.Optimal (obj, x) ->
      check_float "objective" 5.0 obj;
      check_float "sum" 5.0 (x.(0) +. x.(1));
      Alcotest.(check bool) "x within bound" true (x.(0) <= 3.0 +. 1e-9)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_ge_constraints () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1: optimum at (4, 0) -> 8. *)
  let rows =
    [ ([| 1.0; 1.0 |], Simplex.Ge, 4.0); ([| 1.0; 0.0 |], Simplex.Ge, 1.0) ]
  in
  match solve_simplex [| 2.0; 3.0 |] rows with
  | Simplex.Optimal (obj, _) -> check_float "objective" 8.0 obj
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let rows =
    [ ([| 1.0 |], Simplex.Le, 1.0); ([| 1.0 |], Simplex.Ge, 2.0) ]
  in
  Alcotest.(check bool) "infeasible" true (solve_simplex [| 1.0 |] rows = Simplex.Infeasible)

let test_simplex_unbounded () =
  (* min -x s.t. x >= 0 (no upper bound): unbounded. *)
  let rows = [ ([| 1.0 |], Simplex.Ge, 0.0) ] in
  Alcotest.(check bool) "unbounded" true (solve_simplex [| -1.0 |] rows = Simplex.Unbounded)

let test_simplex_negative_rhs () =
  (* Row with negative rhs must be flipped correctly: x - y <= -2 means
     y >= x + 2. min y s.t. that and x >= 1 -> y = 3 at x = 1... but x is
     free to be 0, so optimum y = 2. *)
  let rows = [ ([| 1.0; -1.0 |], Simplex.Le, -2.0) ] in
  match solve_simplex [| 0.0; 1.0 |] rows with
  | Simplex.Optimal (obj, _) -> check_float "objective" 2.0 obj
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_degenerate () =
  (* A degenerate LP that cycles under naive pivoting (Beale's example). *)
  let rows =
    [
      ([| 0.25; -60.0; -0.04; 9.0 |], Simplex.Le, 0.0);
      ([| 0.5; -90.0; -0.02; 3.0 |], Simplex.Le, 0.0);
      ([| 0.0; 0.0; 1.0; 0.0 |], Simplex.Le, 1.0);
    ]
  in
  match solve_simplex [| -0.75; 150.0; -0.02; 6.0 |] rows with
  | Simplex.Optimal (obj, _) -> check_float "objective" (-0.05) obj
  | _ -> Alcotest.fail "expected optimal (anti-cycling)"

let test_simplex_dimension_mismatch () =
  Alcotest.check_raises "row length" (Invalid_argument "Simplex.solve: row length mismatch")
    (fun () -> ignore (solve_simplex [| 1.0; 2.0 |] [ ([| 1.0 |], Simplex.Le, 1.0) ]))

(* ---------- Model ---------- *)

let test_model_relaxation () =
  let m = Model.create () in
  let x = Model.add_var m ~obj:(-3.0) "x" in
  let y = Model.add_var m ~obj:(-5.0) "y" in
  Model.add_constraint m [ (x, 1.0) ] Simplex.Le 4.0;
  Model.add_constraint m [ (y, 2.0) ] Simplex.Le 12.0;
  Model.add_constraint m [ (x, 3.0); (y, 2.0) ] Simplex.Le 18.0;
  (match Model.solve_relaxation m with
  | Simplex.Optimal (obj, sol) ->
      check_float "objective" (-36.0) obj;
      check_float "x" 2.0 (Model.value sol x);
      check_float "y" 6.0 (Model.value sol y)
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check int) "var count" 2 (Model.var_count m);
  Alcotest.(check int) "constraint count" 3 (Model.constraint_count m);
  Alcotest.(check string) "name" "x" (Model.var_name m x)

let test_model_upper_bounds_materialized () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:2.5 ~obj:(-1.0) "x" in
  (match Model.solve_relaxation m with
  | Simplex.Optimal (obj, sol) ->
      check_float "objective" (-2.5) obj;
      check_float "x at ub" 2.5 (Model.value sol x)
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check bool) "not integer" false (Model.is_integer m x)

let test_model_lower_bound () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:1.5 ~obj:1.0 "x" in
  (match Model.solve_relaxation m with
  | Simplex.Optimal (obj, sol) ->
      check_float "objective" 1.5 obj;
      check_float "x at lb" 1.5 (Model.value sol x)
  | _ -> Alcotest.fail "expected optimal")

let test_model_duplicate_terms_summed () =
  let m = Model.create () in
  let x = Model.add_var m ~obj:1.0 "x" in
  (* x + x >= 4 means x >= 2. *)
  Model.add_constraint m [ (x, 1.0); (x, 1.0) ] Simplex.Ge 4.0;
  (match Model.solve_relaxation m with
  | Simplex.Optimal (obj, _) -> check_float "objective" 2.0 obj
  | _ -> Alcotest.fail "expected optimal")

let test_model_extra_rows () =
  let m = Model.create () in
  let x = Model.add_var m ~obj:(-1.0) ~ub:10.0 "x" in
  (match Model.solve_relaxation ~extra:[ (x, Simplex.Le, 3.0) ] m with
  | Simplex.Optimal (obj, _) -> check_float "extra bound respected" (-3.0) obj
  | _ -> Alcotest.fail "expected optimal")

(* ---------- Mip ---------- *)

let test_mip_knapsack () =
  (* max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary: optimum is a + c
     = 17 (b + c = 20: 4+2=6 fits! b=1, c=1 gives 20). *)
  let m = Model.create () in
  let a = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-10.0) "a" in
  let b = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-13.0) "b" in
  let c = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-7.0) "c" in
  Model.add_constraint m [ (a, 3.0); (b, 4.0); (c, 2.0) ] Simplex.Le 6.0;
  match Mip.solve m with
  | Mip.Mip_optimal (obj, sol), stats ->
      check_float "objective" (-20.0) obj;
      check_float "b chosen" 1.0 (Model.value sol b);
      check_float "c chosen" 1.0 (Model.value sol c);
      check_float "a not chosen" 0.0 (Model.value sol a);
      Alcotest.(check bool) "proved" true stats.Mip.proven_optimal
  | _ -> Alcotest.fail "expected optimal"

let test_mip_integer_rounding_matters () =
  (* max x s.t. 2x <= 5, x integer: LP gives 2.5, MIP must give 2. *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~obj:(-1.0) "x" in
  Model.add_constraint m [ (x, 2.0) ] Simplex.Le 5.0;
  match Mip.solve m with
  | Mip.Mip_optimal (obj, _), _ -> check_float "objective" (-2.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_mip_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~ub:1.0 "x" in
  Model.add_constraint m [ (x, 1.0) ] Simplex.Ge 2.0;
  match Mip.solve m with
  | Mip.Mip_infeasible, _ -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_mip_equality_assignment () =
  (* 2x2 assignment problem as a tiny MIP: min c00 x00 + ... with row and
     column sums = 1. Costs: [[1, 10]; [10, 1]] -> optimal 2 (diagonal). *)
  let m = Model.create () in
  let x = Array.init 2 (fun i -> Array.init 2 (fun j ->
      Model.add_var m ~integer:true ~ub:1.0 (Printf.sprintf "x%d%d" i j)))
  in
  let costs = [| [| 1.0; 10.0 |]; [| 10.0; 1.0 |] |] in
  for i = 0 to 1 do
    for j = 0 to 1 do
      Model.set_obj m x.(i).(j) costs.(i).(j)
    done
  done;
  for i = 0 to 1 do
    Model.add_constraint m [ (x.(i).(0), 1.0); (x.(i).(1), 1.0) ] Simplex.Eq 1.0;
    Model.add_constraint m [ (x.(0).(i), 1.0); (x.(1).(i), 1.0) ] Simplex.Eq 1.0
  done;
  match Mip.solve m with
  | Mip.Mip_optimal (obj, sol), _ ->
      check_float "objective" 2.0 obj;
      check_float "diag" 1.0 (Model.value sol x.(0).(0));
      check_float "diag" 1.0 (Model.value sol x.(1).(1))
  | _ -> Alcotest.fail "expected optimal"

let test_mip_incumbent_callback_fires () =
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-1.0) "x" in
  Model.add_constraint m [ (x, 1.0) ] Simplex.Le 1.0;
  let calls = ref 0 in
  let _ = Mip.solve ~on_incumbent:(fun ~obj:_ ~solution:_ ~elapsed:_ -> incr calls) m in
  Alcotest.(check bool) "callback fired" true (!calls >= 1)

let test_mip_initial_incumbent_prunes () =
  (* With an initial incumbent at the true optimum, the solver should still
     report the optimum (not something worse). *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-1.0) "x" in
  let y = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-1.0) "y" in
  Model.add_constraint m [ (x, 1.0); (y, 1.0) ] Simplex.Le 1.0;
  let seed = (-1.0, [| 1.0; 0.0 |]) in
  match Mip.solve ~initial_incumbent:seed m with
  | Mip.Mip_optimal (obj, _), _ -> check_float "objective" (-1.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_mip_node_limit_reports_feasible () =
  (* A slightly larger knapsack with a node limit of 1 should stop early;
     outcome must be Mip_feasible or Mip_optimal found at the root. *)
  let m = Model.create () in
  let vars =
    Array.init 8 (fun i ->
        Model.add_var m ~integer:true ~ub:1.0 ~obj:(-.float_of_int (i + 1)) (Printf.sprintf "v%d" i))
  in
  Model.add_constraint m (Array.to_list (Array.map (fun v -> (v, 2.0)) vars)) Simplex.Le 7.0;
  match Mip.solve ~node_limit:1 m with
  | (Mip.Mip_feasible _ | Mip.Mip_optimal _ | Mip.Mip_infeasible), stats ->
      Alcotest.(check bool) "explored within limit" true (stats.Mip.nodes_explored <= 1)
  | Mip.Mip_unbounded, _ -> Alcotest.fail "not unbounded"

let test_mip_general_integer () =
  (* min 3x + 4y s.t. x + y >= 5, 2x + y >= 7, integers: LP optimum at
     (2, 3) -> 18 which is integral already. Perturb: x + 2y >= 7 too.
     Check the solver returns an integral optimum. *)
  let m = Model.create () in
  let x = Model.add_var m ~integer:true ~obj:3.0 "x" in
  let y = Model.add_var m ~integer:true ~obj:4.0 "y" in
  Model.add_constraint m [ (x, 1.0); (y, 1.0) ] Simplex.Ge 5.0;
  Model.add_constraint m [ (x, 2.0); (y, 1.0) ] Simplex.Ge 7.0;
  Model.add_constraint m [ (x, 1.0); (y, 2.0) ] Simplex.Ge 7.0;
  match Mip.solve m with
  | Mip.Mip_optimal (obj, sol), _ ->
      let xv = Model.value sol x and yv = Model.value sol y in
      Alcotest.(check bool) "x integral" true (Float.abs (xv -. Float.round xv) < 1e-6);
      Alcotest.(check bool) "y integral" true (Float.abs (yv -. Float.round yv) < 1e-6);
      Alcotest.(check bool) "feasible" true (xv +. yv >= 5.0 -. 1e-6);
      check_float "objective" 17.0 obj
      (* (3,2): 3*3+4*2=17, check constraints: 5>=5, 8>=7, 7>=7. *)
  | _ -> Alcotest.fail "expected optimal"

let test_mip_strategies_agree () =
  (* Depth-first and best-first must find the same optimum when allowed to
     finish. *)
  let build () =
    let m = Model.create () in
    let vars =
      Array.init 6 (fun i ->
          Model.add_var m ~integer:true ~ub:1.0 ~obj:(-.float_of_int (7 - i))
            (Printf.sprintf "v%d" i))
    in
    Model.add_constraint m
      (Array.to_list (Array.mapi (fun i v -> (v, float_of_int (i + 2))) vars))
      Simplex.Le 11.0;
    m
  in
  let solve strategy = match Mip.solve ~strategy (build ()) with
    | Mip.Mip_optimal (obj, _), _ -> obj
    | _ -> Alcotest.fail "expected optimal"
  in
  check_float "strategies agree" (solve Mip.Best_first) (solve Mip.Depth_first)

let test_mip_depth_first_finds_incumbent_fast () =
  (* Even with a node limit too small for a proof, depth-first should have
     produced an integer-feasible incumbent by diving. *)
  let m = Model.create () in
  let vars =
    Array.init 10 (fun i ->
        Model.add_var m ~integer:true ~ub:1.0 ~obj:(-.(1.0 +. float_of_int (i mod 3)))
          (Printf.sprintf "v%d" i))
  in
  Model.add_constraint m (Array.to_list (Array.map (fun v -> (v, 2.0)) vars)) Simplex.Le 9.0;
  match Mip.solve ~strategy:Mip.Depth_first ~node_limit:40 m with
  | (Mip.Mip_feasible _ | Mip.Mip_optimal _), _ -> ()
  | Mip.Mip_infeasible, _ -> Alcotest.fail "feasible problem"
  | Mip.Mip_unbounded, _ -> Alcotest.fail "bounded problem"

(* ---------- Sparse revised simplex ---------- *)

let sparse_rows rows =
  List.map
    (fun (coeffs, rel, rhs) ->
      let vars = ref [] and cfs = ref [] in
      Array.iteri
        (fun i c ->
          if c <> 0.0 then begin
            vars := i :: !vars;
            cfs := c :: !cfs
          end)
        coeffs;
      (Array.of_list (List.rev !vars), Array.of_list (List.rev !cfs), rel, rhs))
    rows

let solve_sparse objective rows = Sparse.solve ~objective ~rows:(sparse_rows rows) ()

(* Both kernels on the same fixture: statuses must match, optima must agree,
   and the sparse solution must satisfy the original rows. *)
let check_sparse_agrees name objective rows =
  let dense = solve_simplex objective rows in
  let sp = solve_sparse objective rows in
  match (dense, sp.Sparse.status) with
  | Simplex.Optimal (od, _), Simplex.Optimal (os, x) ->
      check_float (name ^ ": objective") ~tol:1e-7 od os;
      Alcotest.(check bool) (name ^ ": nonneg") true (Array.for_all (fun v -> v >= -1e-7) x);
      List.iter
        (fun (coeffs, rel, rhs) ->
          let lhs = ref 0.0 in
          Array.iteri (fun i c -> lhs := !lhs +. (c *. x.(i))) coeffs;
          let ok =
            match rel with
            | Simplex.Le -> !lhs <= rhs +. 1e-6
            | Simplex.Ge -> !lhs >= rhs -. 1e-6
            | Simplex.Eq -> Float.abs (!lhs -. rhs) <= 1e-6
          in
          Alcotest.(check bool) (name ^ ": sparse solution feasible") true ok)
        rows
  | Simplex.Infeasible, Simplex.Infeasible | Simplex.Unbounded, Simplex.Unbounded -> ()
  | _ -> Alcotest.fail (name ^ ": kernel statuses disagree")

let test_sparse_matches_dense_textbook () =
  check_sparse_agrees "dantzig"
    [| -3.0; -5.0 |]
    [
      ([| 1.0; 0.0 |], Simplex.Le, 4.0);
      ([| 0.0; 2.0 |], Simplex.Le, 12.0);
      ([| 3.0; 2.0 |], Simplex.Le, 18.0);
    ];
  check_sparse_agrees "equality"
    [| 1.0; 1.0 |]
    [ ([| 1.0; 1.0 |], Simplex.Eq, 5.0); ([| 1.0; 0.0 |], Simplex.Le, 3.0) ];
  check_sparse_agrees "ge"
    [| 2.0; 3.0 |]
    [ ([| 1.0; 1.0 |], Simplex.Ge, 4.0); ([| 1.0; 0.0 |], Simplex.Ge, 1.0) ];
  check_sparse_agrees "negative rhs" [| 0.0; 1.0 |] [ ([| 1.0; -1.0 |], Simplex.Le, -2.0) ]

let test_sparse_degenerate_beale () =
  (* The cycling-prone fixture from test_simplex_degenerate: the sparse
     kernel's per-phase Bland switch must terminate it at the same optimum. *)
  check_sparse_agrees "beale"
    [| -0.75; 150.0; -0.02; 6.0 |]
    [
      ([| 0.25; -60.0; -0.04; 9.0 |], Simplex.Le, 0.0);
      ([| 0.5; -90.0; -0.02; 3.0 |], Simplex.Le, 0.0);
      ([| 0.0; 0.0; 1.0; 0.0 |], Simplex.Le, 1.0);
    ]

let test_sparse_statuses () =
  check_sparse_agrees "infeasible" [| 1.0 |]
    [ ([| 1.0 |], Simplex.Le, 1.0); ([| 1.0 |], Simplex.Ge, 2.0) ];
  check_sparse_agrees "unbounded" [| -1.0 |] [ ([| 1.0 |], Simplex.Ge, 1.0) ]

let test_sparse_iteration_budget_aborts () =
  (* Budget exhaustion must surface as the typed Aborted, not a Failure. *)
  Alcotest.check_raises "sparse budget" Simplex.Aborted (fun () ->
      ignore
        (Sparse.solve ~max_iters:1 ~objective:[| -3.0; -5.0 |]
           ~rows:
             (sparse_rows
                [
                  ([| 1.0; 0.0 |], Simplex.Le, 4.0);
                  ([| 0.0; 2.0 |], Simplex.Le, 12.0);
                  ([| 3.0; 2.0 |], Simplex.Le, 18.0);
                ])
           ()))

let test_dense_iteration_budget_aborts () =
  Alcotest.check_raises "dense budget" Simplex.Aborted (fun () ->
      ignore
        (Simplex.solve ~max_iters:1 ~objective:[| -3.0; -5.0 |]
           ~rows:
             [
               ([| 1.0; 0.0 |], Simplex.Le, 4.0);
               ([| 0.0; 2.0 |], Simplex.Le, 12.0);
               ([| 3.0; 2.0 |], Simplex.Le, 18.0);
             ]
           ()))

let assignment_model ?(integer = false) n w =
  let m = Model.create () in
  let x =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Model.add_var m ~integer ~ub:1.0 ~obj:(w i j) (Printf.sprintf "a%d_%d" i j)))
  in
  for i = 0 to n - 1 do
    Model.add_constraint m (List.init n (fun j -> (x.(i).(j), 1.0))) Simplex.Eq 1.0
  done;
  for j = 0 to n - 1 do
    Model.add_constraint m (List.init n (fun i -> (x.(i).(j), 1.0))) Simplex.Le 1.0
  done;
  (m, x)

let test_sparse_dense_bit_identical () =
  (* Pure assignment LP with dyadic costs: both kernels pivot on ±1 entries
     and stay in exact dyadic arithmetic, so the optima must be the same
     bit pattern, not merely close. This is the gate that caught a ratio-test
     bug in the sparse kernel's phase 1. *)
  let w i j = 0.25 *. float_of_int ((((i * 7) + (j * 3)) mod 4) + 1) in
  let m, _ = assignment_model 6 w in
  let dense =
    match fst (Model.solve_relaxation_basis m) with
    | Simplex.Optimal (obj, _) -> obj
    | _ -> Alcotest.fail "dense: expected optimal"
  in
  let sparse =
    match fst (Model.solve_relaxation_basis ~dense_ceiling:0 m) with
    | Simplex.Optimal (obj, _) -> obj
    | _ -> Alcotest.fail "sparse: expected optimal"
  in
  Alcotest.(check int64)
    "objective bits" (Int64.bits_of_float dense) (Int64.bits_of_float sparse)

let test_sparse_warm_basis_matches_cold () =
  (* Branch-and-bound re-solve pattern: optimal basis of the parent, then the
     child adds a bound row. Warm and cold solves of the child must agree. *)
  let w i j = if i = j then 1.0 else 3.0 +. float_of_int ((i + (2 * j)) mod 3) in
  let m, x = assignment_model 4 w in
  let basis =
    match Model.solve_relaxation_basis ~dense_ceiling:0 m with
    | Simplex.Optimal _, Some b -> b
    | _ -> Alcotest.fail "parent: expected optimal with basis"
  in
  (* Force the first (diagonal, hence basic) variable out of the plan. *)
  let extra = [ (x.(0).(0), Simplex.Le, 0.0) ] in
  let warm =
    match fst (Model.solve_relaxation_basis ~dense_ceiling:0 ~extra ~warm_basis:basis m) with
    | Simplex.Optimal (obj, _) -> obj
    | _ -> Alcotest.fail "warm child: expected optimal"
  in
  let cold =
    match fst (Model.solve_relaxation_basis ~dense_ceiling:0 ~extra m) with
    | Simplex.Optimal (obj, _) -> obj
    | _ -> Alcotest.fail "cold child: expected optimal"
  in
  check_float "warm equals cold" ~tol:1e-9 cold warm

let test_sparse_warm_infeasible_branch () =
  (* A child whose branch row contradicts an upper bound: the warm dual
     repair (or its cold fallback) must prove infeasibility, not loop. *)
  let m = Model.create () in
  let x = Model.add_var m ~ub:3.0 ~obj:1.0 "x" in
  let y = Model.add_var m ~ub:3.0 ~obj:1.0 "y" in
  Model.add_constraint m [ (x, 1.0); (y, 1.0) ] Simplex.Ge 2.0;
  let basis =
    match Model.solve_relaxation_basis ~dense_ceiling:0 m with
    | Simplex.Optimal _, Some b -> b
    | _ -> Alcotest.fail "parent: expected optimal with basis"
  in
  let extra = [ (x, Simplex.Ge, 5.0) ] in
  match fst (Model.solve_relaxation_basis ~dense_ceiling:0 ~extra ~warm_basis:basis m) with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible child"

let test_mip_dense_ceiling_equivalence () =
  (* Mip.solve with every relaxation forced through the sparse kernel must
     reproduce the dense-path optima on the standard fixtures. *)
  let m = Model.create () in
  let a = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-10.0) "a" in
  let b = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-13.0) "b" in
  let c = Model.add_var m ~integer:true ~ub:1.0 ~obj:(-7.0) "c" in
  Model.add_constraint m [ (a, 3.0); (b, 4.0); (c, 2.0) ] Simplex.Le 6.0;
  (match Mip.solve ~dense_ceiling:0 m with
  | Mip.Mip_optimal (obj, sol), stats ->
      check_float "knapsack objective" (-20.0) obj;
      check_float "b chosen" 1.0 (Model.value sol b);
      check_float "c chosen" 1.0 (Model.value sol c);
      Alcotest.(check bool) "proved" true stats.Mip.proven_optimal
  | _ -> Alcotest.fail "sparse knapsack: expected optimal");
  let m2, _ = assignment_model ~integer:true 3 (fun i j -> if i = j then 1.0 else 10.0) in
  match (Mip.solve ~dense_ceiling:0 m2, Mip.solve m2) with
  | (Mip.Mip_optimal (os, _), _), (Mip.Mip_optimal (od, _), _) ->
      check_float "assignment sparse vs dense" ~tol:1e-9 od os
  | _ -> Alcotest.fail "assignment: expected optimal on both paths"

let random_lp rng nvars nrows =
  let objective = Array.init nvars (fun _ -> Prng.float rng 10.0 -. 5.0) in
  let rows =
    List.init nrows (fun _ ->
        let coeffs = Array.init nvars (fun _ -> Prng.float rng 4.0 -. 2.0) in
        let rel = if Prng.bool rng then Simplex.Le else Simplex.Ge in
        (coeffs, rel, Prng.float rng 10.0 -. 2.0))
  in
  (objective, rows)

let qcheck_props =
  [
    QCheck.Test.make ~name:"simplex optimal solutions are feasible" ~count:150
      QCheck.(small_int)
      (fun seed ->
        let rng = Prng.create seed in
        let nvars = 1 + Prng.int rng 4 and nrows = 1 + Prng.int rng 5 in
        let objective, rows = random_lp rng nvars nrows in
        match Simplex.solve ~objective ~rows () with
        | Simplex.Optimal (obj, x) ->
            (* Every constraint satisfied, all vars non-negative, and the
               reported objective matches the solution. *)
            Array.for_all (fun v -> v >= -1e-7) x
            && List.for_all
                 (fun (coeffs, rel, rhs) ->
                   let lhs = ref 0.0 in
                   Array.iteri (fun i c -> lhs := !lhs +. (c *. x.(i))) coeffs;
                   match rel with
                   | Simplex.Le -> !lhs <= rhs +. 1e-6
                   | Simplex.Ge -> !lhs >= rhs -. 1e-6
                   | Simplex.Eq -> Float.abs (!lhs -. rhs) <= 1e-6)
                 rows
            && Float.abs
                 (obj
                 -. Array.fold_left ( +. ) 0.0 (Array.mapi (fun i c -> c *. x.(i)) objective))
               <= 1e-6
        | Simplex.Infeasible | Simplex.Unbounded -> true);
    QCheck.Test.make ~name:"sparse kernel agrees with dense" ~count:150
      QCheck.(small_int)
      (fun seed ->
        let rng = Prng.create seed in
        let nvars = 1 + Prng.int rng 4 and nrows = 1 + Prng.int rng 5 in
        let objective, rows = random_lp rng nvars nrows in
        let sp = solve_sparse objective rows in
        match (Simplex.solve ~objective ~rows (), sp.Sparse.status) with
        | Simplex.Optimal (od, _), Simplex.Optimal (os, _) -> Float.abs (od -. os) <= 1e-5
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | Simplex.Unbounded, Simplex.Unbounded -> true
        | _ -> false);
    QCheck.Test.make ~name:"MIP solutions are integral and feasible" ~count:60
      QCheck.(small_int)
      (fun seed ->
        let rng = Prng.create seed in
        let m = Model.create () in
        let nvars = 2 + Prng.int rng 3 in
        let vars =
          Array.init nvars (fun i ->
              Model.add_var m ~integer:true ~ub:3.0
                ~obj:(Prng.float rng 4.0 -. 2.0)
                (Printf.sprintf "v%d" i))
        in
        let weights = Array.map (fun v -> (v, Prng.float rng 3.0)) vars in
        let cap = 1.0 +. Prng.float rng 6.0 in
        Model.add_constraint m (Array.to_list weights) Simplex.Le cap;
        match Mip.solve ~time_limit:5.0 m with
        | Mip.Mip_optimal (_, sol), _ | Mip.Mip_feasible (_, sol), _ ->
            Array.for_all
              (fun v ->
                let x = Model.value sol v in
                Float.abs (x -. Float.round x) <= 1e-6 && x >= -1e-7 && x <= 3.0 +. 1e-6)
              vars
        | Mip.Mip_infeasible, _ -> false (* x = 0 is always feasible *)
        | Mip.Mip_unbounded, _ -> false);
    QCheck.Test.make ~name:"MIP optimum >= LP relaxation bound" ~count:50
      QCheck.(small_int)
      (fun seed ->
        let rng = Prng.create seed in
        let m = Model.create () in
        let n = 3 + Prng.int rng 3 in
        let vars =
          Array.init n (fun i ->
              Model.add_var m ~integer:true ~ub:1.0
                ~obj:(-.(1.0 +. Prng.float rng 9.0))
                (Printf.sprintf "v%d" i))
        in
        let weights = Array.map (fun v -> (v, 1.0 +. Prng.float rng 4.0)) vars in
        let cap = 2.0 +. Prng.float rng 8.0 in
        Model.add_constraint m (Array.to_list weights) Simplex.Le cap;
        let lp_bound =
          match Model.solve_relaxation m with
          | Simplex.Optimal (b, _) -> b
          | _ -> QCheck.assume_fail ()
        in
        match Mip.solve m with
        | Mip.Mip_optimal (obj, _), _ -> obj >= lp_bound -. 1e-6
        | Mip.Mip_infeasible, _ -> false
        | _ -> true);
  ]

let suite =
  [
    Alcotest.test_case "simplex basic max" `Quick test_simplex_basic_max;
    Alcotest.test_case "simplex equality" `Quick test_simplex_equality;
    Alcotest.test_case "simplex >= constraints" `Quick test_simplex_ge_constraints;
    Alcotest.test_case "simplex infeasible" `Quick test_simplex_infeasible;
    Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex negative rhs" `Quick test_simplex_negative_rhs;
    Alcotest.test_case "simplex degenerate (Beale)" `Quick test_simplex_degenerate;
    Alcotest.test_case "simplex dimension mismatch" `Quick test_simplex_dimension_mismatch;
    Alcotest.test_case "model relaxation" `Quick test_model_relaxation;
    Alcotest.test_case "model upper bounds" `Quick test_model_upper_bounds_materialized;
    Alcotest.test_case "model lower bound" `Quick test_model_lower_bound;
    Alcotest.test_case "model duplicate terms" `Quick test_model_duplicate_terms_summed;
    Alcotest.test_case "model extra rows" `Quick test_model_extra_rows;
    Alcotest.test_case "mip knapsack" `Quick test_mip_knapsack;
    Alcotest.test_case "mip integer rounding" `Quick test_mip_integer_rounding_matters;
    Alcotest.test_case "mip infeasible" `Quick test_mip_infeasible;
    Alcotest.test_case "mip assignment" `Quick test_mip_equality_assignment;
    Alcotest.test_case "mip incumbent callback" `Quick test_mip_incumbent_callback_fires;
    Alcotest.test_case "mip initial incumbent" `Quick test_mip_initial_incumbent_prunes;
    Alcotest.test_case "mip node limit" `Quick test_mip_node_limit_reports_feasible;
    Alcotest.test_case "mip general integer" `Quick test_mip_general_integer;
    Alcotest.test_case "mip strategies agree" `Quick test_mip_strategies_agree;
    Alcotest.test_case "mip depth-first incumbent" `Quick test_mip_depth_first_finds_incumbent_fast;
    Alcotest.test_case "sparse matches dense textbook" `Quick test_sparse_matches_dense_textbook;
    Alcotest.test_case "sparse degenerate (Beale)" `Quick test_sparse_degenerate_beale;
    Alcotest.test_case "sparse statuses" `Quick test_sparse_statuses;
    Alcotest.test_case "sparse iteration budget aborts" `Quick test_sparse_iteration_budget_aborts;
    Alcotest.test_case "dense iteration budget aborts" `Quick test_dense_iteration_budget_aborts;
    Alcotest.test_case "sparse/dense bit-identical" `Quick test_sparse_dense_bit_identical;
    Alcotest.test_case "sparse warm basis" `Quick test_sparse_warm_basis_matches_cold;
    Alcotest.test_case "sparse warm infeasible branch" `Quick test_sparse_warm_infeasible_branch;
    Alcotest.test_case "mip dense-ceiling equivalence" `Quick test_mip_dense_ceiling_equivalence;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
