open Cloudia

(* Tests for the core deployment-problem types, cost functions, metrics,
   clustering, and lightweight solvers. *)

let check_float name ?(tol = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

(* A small hand-built problem: path graph 0 -> 1 -> 2 on 4 instances. *)
let path_problem =
  let graph = Graphs.Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let costs =
    [|
      [| 0.0; 1.0; 5.0; 2.0 |];
      [| 1.0; 0.0; 3.0; 4.0 |];
      [| 5.0; 3.0; 0.0; 6.0 |];
      [| 2.0; 4.0; 6.0; 0.0 |];
    |]
  in
  Types.problem ~graph ~costs

(* ---------- Types ---------- *)

let test_problem_validation () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  Alcotest.check_raises "not square" (Invalid_argument "Types.problem: cost matrix not square")
    (fun () -> ignore (Types.problem ~graph ~costs:[| [| 0.0 |]; [| 0.0; 0.0 |] |]));
  Alcotest.check_raises "nonzero diagonal" (Invalid_argument "Types.problem: nonzero diagonal")
    (fun () -> ignore (Types.problem ~graph ~costs:[| [| 1.0; 1.0 |]; [| 1.0; 0.0 |] |]));
  Alcotest.check_raises "too few instances"
    (Invalid_argument "Types.problem: more application nodes than instances")
    (fun () -> ignore (Types.problem ~graph ~costs:[| [| 0.0 |] |]))

let test_counts () =
  Alcotest.(check int) "nodes" 3 (Types.node_count path_problem);
  Alcotest.(check int) "instances" 4 (Types.instance_count path_problem)

let test_plan_validity () =
  Alcotest.(check bool) "valid" true (Types.is_valid path_problem [| 0; 1; 2 |]);
  Alcotest.(check bool) "duplicate" false (Types.is_valid path_problem [| 0; 0; 2 |]);
  Alcotest.(check bool) "out of range" false (Types.is_valid path_problem [| 0; 1; 9 |]);
  Alcotest.(check bool) "wrong length" false (Types.is_valid path_problem [| 0; 1 |])

let test_identity_plan () =
  Alcotest.(check (array int)) "identity" [| 0; 1; 2 |] (Types.identity_plan path_problem)

let test_random_plan_valid () =
  let rng = Prng.create 42 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "valid" true
      (Types.is_valid path_problem (Types.random_plan rng path_problem))
  done

let test_unused_instances () =
  Alcotest.(check (list int)) "unused" [ 3 ] (Types.unused_instances path_problem [| 0; 1; 2 |]);
  Alcotest.(check (list int)) "unused" [ 1 ] (Types.unused_instances path_problem [| 0; 3; 2 |])

(* ---------- Cost ---------- *)

let test_longest_link_values () =
  (* plan [0;1;2]: edges (0,1) cost 1, (1,2) cost 3 -> LL 3. *)
  check_float "LL identity" 3.0 (Cost.longest_link path_problem [| 0; 1; 2 |]);
  (* plan [0;1;3]: edges cost 1 and 4 -> LL 4. *)
  check_float "LL alt" 4.0 (Cost.longest_link path_problem [| 0; 1; 3 |]);
  (* plan [2;1;0]: edge (0,1): costs(2)(1)=3; edge (1,2): costs(1)(0)=1. *)
  check_float "LL reversed" 3.0 (Cost.longest_link path_problem [| 2; 1; 0 |])

let test_longest_link_witness () =
  let cost, witness = Cost.longest_link_witness path_problem [| 0; 1; 2 |] in
  check_float "witness cost" 3.0 cost;
  Alcotest.(check (option (pair int int))) "witness edge" (Some (1, 2)) witness

let test_longest_path_values () =
  (* Path 0 -> 1 -> 2 sums both links: plan [0;1;2] = 1 + 3 = 4. *)
  check_float "LP identity" 4.0 (Cost.longest_path path_problem [| 0; 1; 2 |]);
  check_float "LP alt" 5.0 (Cost.longest_path path_problem [| 0; 1; 3 |])

let test_longest_path_vs_link_on_single_edge () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  let costs = [| [| 0.0; 7.0 |]; [| 7.0; 0.0 |] |] in
  let p = Types.problem ~graph ~costs in
  check_float "equal on single edge" (Cost.longest_link p [| 0; 1 |])
    (Cost.longest_path p [| 0; 1 |])

let test_longest_path_rejects_cycles () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1); (1, 0) ] in
  let costs = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let p = Types.problem ~graph ~costs in
  Alcotest.check_raises "cyclic graph"
    (Invalid_argument "Digraph.longest_path: graph has a cycle")
    (fun () -> ignore (Cost.longest_path p [| 0; 1 |]))

let test_improvement () =
  check_float "50%" 50.0 (Cost.improvement ~default:2.0 ~optimized:1.0);
  check_float "0% for zero default" 0.0 (Cost.improvement ~default:0.0 ~optimized:0.0);
  check_float "negative when worse" (-100.0) (Cost.improvement ~default:1.0 ~optimized:2.0)

(* ---------- Metrics ---------- *)

let test_metric_reductions () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "mean" 50.5 (Metrics.of_samples Metrics.Mean samples);
  Alcotest.(check bool) "mean+sd above mean" true
    (Metrics.of_samples Metrics.Mean_plus_sd samples > 50.5);
  Alcotest.(check bool) "p99 above mean" true
    (Metrics.of_samples Metrics.P99 samples > 50.5)

let test_metric_strings () =
  List.iter
    (fun m ->
      Alcotest.(check (option string)) "roundtrip" (Some (Metrics.to_string m))
        (Option.map Metrics.to_string (Metrics.of_string (Metrics.to_string m))))
    [ Metrics.Mean; Metrics.Mean_plus_sd; Metrics.P99 ];
  Alcotest.(check bool) "unknown" true (Metrics.of_string "bogus" = None)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let test_metric_estimate_shape () =
  let env = Cloudsim.Env.allocate (Prng.create 1) ec2 ~count:10 in
  let m = Metrics.estimate (Prng.create 2) env Metrics.Mean ~samples_per_pair:30 in
  Alcotest.(check int) "rows" 10 (Lat_matrix.dim m);
  for i = 0 to 9 do
    check_float "diag" 0.0 (Lat_matrix.get m i i);
    for j = 0 to 9 do
      if i <> j then Alcotest.(check bool) "positive" true (Lat_matrix.get m i j > 0.0)
    done
  done

let test_metric_ordering_on_jittery_links () =
  (* For lognormal jitter: mean < mean+sd < p99 per link (given enough
     samples). *)
  let env = Cloudsim.Env.allocate (Prng.create 3) ec2 ~count:6 in
  let derive = Metrics.estimate_all (Prng.create 4) env ~samples_per_pair:300 in
  let mean = derive Metrics.Mean in
  let msd = derive Metrics.Mean_plus_sd in
  let p99 = derive Metrics.P99 in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j then begin
        Alcotest.(check bool) "mean < mean+sd" true
          (Lat_matrix.get mean i j < Lat_matrix.get msd i j);
        Alcotest.(check bool) "mean < p99" true
          (Lat_matrix.get mean i j < Lat_matrix.get p99 i j)
      end
    done
  done

(* ---------- Clustering ---------- *)

let test_clustering_rounds_to_levels () =
  let c = Clustering.cluster ~k:2 path_problem.Types.lat in
  Alcotest.(check int) "two levels" 2 (Array.length c.Clustering.levels);
  let levels = Array.to_list c.Clustering.levels in
  Lat_matrix.iter
    (fun j j' v ->
      if j <> j' then
        Alcotest.(check bool) "entry is a level" true (List.mem v levels))
    c.Clustering.rounded

let test_clustering_none_preserves () =
  let c = Clustering.none path_problem.Types.lat in
  Alcotest.(check bool) "identical" true
    (Lat_matrix.equal c.Clustering.rounded path_problem.Types.lat);
  (* Distinct off-diagonal values of the path problem: 1..6. *)
  Alcotest.(check int) "distinct levels" 6 (Array.length c.Clustering.levels)

let test_thresholds_below () =
  let c = Clustering.none path_problem.Types.lat in
  Alcotest.(check (list (float 1e-9))) "below 3.5" [ 3.0; 2.0; 1.0 ]
    (Clustering.thresholds_below c 3.5);
  Alcotest.(check (list (float 1e-9))) "below 1" [] (Clustering.thresholds_below c 1.0)

let test_clustering_preserves_diagonal () =
  let c = Clustering.cluster ~k:3 path_problem.Types.lat in
  for j = 0 to 3 do
    check_float "diag" 0.0 (Lat_matrix.get c.Clustering.rounded j j)
  done

let test_clustering_clamps_k () =
  (* The CLI's redeploy/overlap paths pass the solver default k = 20
     straight through; on a matrix with only three distinct latencies
     that used to crash 1-D k-means. [cluster] must clamp k to the
     distinct count — and at full k the rounding is exact. *)
  let lat =
    Lat_matrix.init 4 (fun j j' ->
        if j = j' then 0.0 else float_of_int (((j + j') mod 3) + 1))
  in
  let c = Clustering.cluster ~k:20 lat in
  Alcotest.(check bool) "levels bounded by distinct values" true
    (Array.length c.Clustering.levels <= 3);
  Alcotest.(check bool) "identity rounding at clamped k" true
    (Lat_matrix.equal c.Clustering.rounded lat)

let test_clustering_ignores_non_finite () =
  (* NaN marks an unsampled pair; it must not reach k-means, must not
     become a level (it would poison thresholds_below), and must survive
     verbatim in the rounded matrix. *)
  let lat =
    Lat_matrix.init 4 (fun j j' ->
        if j = j' then 0.0
        else if j = 0 && j' = 1 then Float.nan
        else if j = 1 && j' = 0 then Float.infinity
        else 1.0 +. float_of_int ((j + j') mod 2))
  in
  let c = Clustering.cluster ~k:8 lat in
  Array.iter
    (fun l -> Alcotest.(check bool) "cluster level finite" true (Float.is_finite l))
    c.Clustering.levels;
  Alcotest.(check bool) "NaN preserved in rounded" true
    (Float.is_nan (Lat_matrix.get c.Clustering.rounded 0 1));
  Alcotest.(check bool) "infinity preserved in rounded" true
    (Lat_matrix.get c.Clustering.rounded 1 0 = Float.infinity);
  let n = Clustering.none lat in
  Array.iter
    (fun l -> Alcotest.(check bool) "none level finite" true (Float.is_finite l))
    n.Clustering.levels;
  Alcotest.(check int) "distinct finite levels" 2 (Array.length n.Clustering.levels);
  Alcotest.(check (list (float 1e-9))) "thresholds stay finite" [ 1.0 ]
    (Clustering.thresholds_below n 2.0)

let test_clustering_all_non_finite () =
  (* Degenerate but legal: nothing sampled yet. No levels, input
     untouched. *)
  let lat = Lat_matrix.init 3 (fun j j' -> if j = j' then 0.0 else Float.nan) in
  let c = Clustering.cluster ~k:5 lat in
  Alcotest.(check int) "no levels" 0 (Array.length c.Clustering.levels);
  Alcotest.(check bool) "matrix preserved" true (Lat_matrix.equal c.Clustering.rounded lat)

(* ---------- Greedy ---------- *)

let random_problem ?(nodes = 8) ?(instances = 10) seed =
  let rng = Prng.create seed in
  let graph = Graphs.Templates.random_connected rng ~n:nodes ~extra_edges:4 in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

let test_greedy_plans_valid () =
  for seed = 1 to 10 do
    let p = random_problem seed in
    Alcotest.(check bool) "g1 valid" true (Types.is_valid p (Greedy.g1 p));
    Alcotest.(check bool) "g2 valid" true (Types.is_valid p (Greedy.g2 p))
  done

let test_greedy_on_mesh () =
  let rng = Prng.create 5 in
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let m = 11 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  Alcotest.(check bool) "g1 valid on mesh" true (Types.is_valid p (Greedy.g1 p));
  Alcotest.(check bool) "g2 valid on mesh" true (Types.is_valid p (Greedy.g2 p))

let test_g2_beats_g1_on_average () =
  (* Sect. 6.5.2: G2 improves G1 significantly. Check the aggregate over
     several random problems. *)
  let total_g1 = ref 0.0 and total_g2 = ref 0.0 in
  for seed = 1 to 25 do
    let p = random_problem ~nodes:10 ~instances:12 seed in
    total_g1 := !total_g1 +. Cost.longest_link p (Greedy.g1 p);
    total_g2 := !total_g2 +. Cost.longest_link p (Greedy.g2 p)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "G2 total (%.3f) < G1 total (%.3f)" !total_g2 !total_g1)
    true (!total_g2 < !total_g1)

let test_greedy_handles_disconnected_graph () =
  let graph = Graphs.Digraph.create ~n:4 [ (0, 1); (2, 3) ] in
  let rng = Prng.create 9 in
  let costs =
    Array.init 5 (fun j ->
        Array.init 5 (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  Alcotest.(check bool) "g1 valid" true (Types.is_valid p (Greedy.g1 p));
  Alcotest.(check bool) "g2 valid" true (Types.is_valid p (Greedy.g2 p))

let test_greedy_single_node () =
  let graph = Graphs.Digraph.create ~n:1 [] in
  let costs = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let p = Types.problem ~graph ~costs in
  Alcotest.(check bool) "g1" true (Types.is_valid p (Greedy.g1 p));
  Alcotest.(check bool) "g2" true (Types.is_valid p (Greedy.g2 p))

(* ---------- Random search ---------- *)

let test_r1_improves_with_trials () =
  let p = random_problem 7 in
  let _, c1 = Random_search.r1 (Prng.create 1) Cost.Longest_link p ~trials:1 in
  let _, c1000 = Random_search.r1 (Prng.create 1) Cost.Longest_link p ~trials:1000 in
  Alcotest.(check bool) "more trials no worse" true (c1000 <= c1)

let test_r1_returns_consistent_cost () =
  let rng = Prng.create 8 in
  let graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:2 in
  let m = 9 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let plan, cost = Random_search.r1 (Prng.create 2) Cost.Longest_path p ~trials:50 in
  check_float "cost matches plan" (Cost.longest_path p plan) cost

let test_r2_respects_time () =
  (* Drive the budget with an injected clock that advances 10 ms per
     reading: the first call sets the deadline, each loop check consumes
     one tick, so the budget admits exactly 9 extra trials after the
     initial plan — no real scheduler involved, so no flakiness. *)
  let p = random_problem 9 in
  let ticks = ref 0 in
  let now () =
    let t = 0.01 *. float_of_int !ticks in
    incr ticks;
    t
  in
  let plan, cost, trials =
    Random_search.r2 ~now (Prng.create 3) Cost.Longest_link p ~time_limit:0.1
  in
  Alcotest.(check bool) "valid" true (Types.is_valid p plan);
  check_float "cost consistent" (Cost.longest_link p plan) cost;
  Alcotest.(check int) "trial count set by the clock alone" 10 trials

let test_r2_stops_cooperatively () =
  (* The stop callback ends the search regardless of the remaining budget. *)
  let p = random_problem 9 in
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 5
  in
  let plan, _, trials =
    Random_search.r2 ~stop (Prng.create 4) Cost.Longest_link p ~time_limit:3600.0
  in
  Alcotest.(check bool) "valid" true (Types.is_valid p plan);
  Alcotest.(check int) "stopped after five polls" 6 trials

(* ---------- Brute force ---------- *)

let test_brute_force_is_optimal_exhaustively () =
  (* Cross-check the pruned brute force against unpruned enumeration. *)
  let p = random_problem ~nodes:4 ~instances:6 11 in
  let _, bf = Brute_force.solve Cost.Longest_link p in
  (* Unpruned: enumerate injections explicitly. *)
  let best = ref infinity in
  let rec enumerate plan used i =
    if i = 4 then begin
      let c = Cost.longest_link p (Array.of_list (List.rev plan)) in
      if c < !best then best := c
    end
    else
      for s = 0 to 5 do
        if not (List.mem s used) then enumerate (s :: plan) (s :: used) (i + 1)
      done
  in
  enumerate [] [] 0;
  check_float "matches exhaustive" !best bf

let test_brute_force_longest_path () =
  let graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:1 in
  let rng = Prng.create 13 in
  let costs =
    Array.init 5 (fun j ->
        Array.init 5 (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let plan, cost = Brute_force.solve Cost.Longest_path p in
  Alcotest.(check bool) "valid" true (Types.is_valid p plan);
  check_float "cost consistent" (Cost.longest_path p plan) cost

let test_brute_force_guard () =
  let p = random_problem ~nodes:4 ~instances:11 15 in
  Alcotest.check_raises "guard"
    (Invalid_argument "Brute_force.solve: instance count exceeds the safety bound")
    (fun () -> ignore (Brute_force.solve Cost.Longest_link p))

let qcheck_props =
  [
    QCheck.Test.make ~name:"greedy plans always valid" ~count:50
      QCheck.(small_int)
      (fun seed ->
        let p = random_problem ~nodes:6 ~instances:8 seed in
        Types.is_valid p (Greedy.g1 p) && Types.is_valid p (Greedy.g2 p));
    QCheck.Test.make ~name:"longest path >= longest link on path graphs" ~count:50
      QCheck.(small_int)
      (fun seed ->
        let rng = Prng.create seed in
        let n = 3 + Prng.int rng 4 in
        let graph = Graphs.Digraph.create ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
        let m = n + 2 in
        let costs =
          Array.init m (fun j ->
              Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
        in
        let p = Types.problem ~graph ~costs in
        let plan = Types.random_plan rng p in
        Cost.longest_path p plan >= Cost.longest_link p plan -. 1e-9);
    QCheck.Test.make ~name:"deployment cost invariant under node exchange symmetry" ~count:30
      QCheck.(small_int)
      (fun seed ->
        (* Relabeling instances consistently in plan and cost matrix leaves
           the deployment cost unchanged (Definition 4's invariance). *)
        let rng = Prng.create seed in
        let p = random_problem ~nodes:5 ~instances:7 seed in
        let perm = Prng.permutation rng 7 in
        let permuted_costs =
          Array.init 7 (fun j -> Array.init 7 (fun j' ->
              Types.cost p perm.(j) perm.(j')))
        in
        let q = Types.problem ~graph:p.Types.graph ~costs:permuted_costs in
        let plan = Types.random_plan rng p in
        (* inverse permutation of the plan under q equals plan under p *)
        let inv = Array.make 7 0 in
        Array.iteri (fun a b -> inv.(b) <- a) perm;
        let plan_q = Array.map (fun s -> inv.(s)) plan in
        Float.abs (Cost.longest_link p plan -. Cost.longest_link q plan_q) < 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "problem validation" `Quick test_problem_validation;
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "plan validity" `Quick test_plan_validity;
    Alcotest.test_case "identity plan" `Quick test_identity_plan;
    Alcotest.test_case "random plan valid" `Quick test_random_plan_valid;
    Alcotest.test_case "unused instances" `Quick test_unused_instances;
    Alcotest.test_case "longest link values" `Quick test_longest_link_values;
    Alcotest.test_case "longest link witness" `Quick test_longest_link_witness;
    Alcotest.test_case "longest path values" `Quick test_longest_path_values;
    Alcotest.test_case "LP = LL on single edge" `Quick test_longest_path_vs_link_on_single_edge;
    Alcotest.test_case "longest path rejects cycles" `Quick test_longest_path_rejects_cycles;
    Alcotest.test_case "improvement" `Quick test_improvement;
    Alcotest.test_case "metric reductions" `Quick test_metric_reductions;
    Alcotest.test_case "metric strings" `Quick test_metric_strings;
    Alcotest.test_case "metric estimate shape" `Quick test_metric_estimate_shape;
    Alcotest.test_case "metric ordering" `Quick test_metric_ordering_on_jittery_links;
    Alcotest.test_case "clustering rounds to levels" `Quick test_clustering_rounds_to_levels;
    Alcotest.test_case "clustering none preserves" `Quick test_clustering_none_preserves;
    Alcotest.test_case "thresholds below" `Quick test_thresholds_below;
    Alcotest.test_case "clustering clamps k" `Quick test_clustering_clamps_k;
    Alcotest.test_case "clustering ignores non-finite" `Quick
      test_clustering_ignores_non_finite;
    Alcotest.test_case "clustering all non-finite" `Quick test_clustering_all_non_finite;
    Alcotest.test_case "clustering preserves diagonal" `Quick test_clustering_preserves_diagonal;
    Alcotest.test_case "greedy plans valid" `Quick test_greedy_plans_valid;
    Alcotest.test_case "greedy on mesh" `Quick test_greedy_on_mesh;
    Alcotest.test_case "G2 beats G1 on average" `Quick test_g2_beats_g1_on_average;
    Alcotest.test_case "greedy disconnected graph" `Quick test_greedy_handles_disconnected_graph;
    Alcotest.test_case "greedy single node" `Quick test_greedy_single_node;
    Alcotest.test_case "r1 improves with trials" `Quick test_r1_improves_with_trials;
    Alcotest.test_case "r1 consistent cost" `Quick test_r1_returns_consistent_cost;
    Alcotest.test_case "r2 respects time" `Quick test_r2_respects_time;
    Alcotest.test_case "r2 stops cooperatively" `Quick test_r2_stops_cooperatively;
    Alcotest.test_case "brute force optimal" `Quick test_brute_force_is_optimal_exhaustively;
    Alcotest.test_case "brute force longest path" `Quick test_brute_force_longest_path;
    Alcotest.test_case "brute force guard" `Quick test_brute_force_guard;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
