(* Tests for the lint library: instance diagnostics over adversarial
   matrices / graphs / configs, and the source-rule engine behind
   tools/repolint exercised on in-memory fixture strings. *)

let has_code code ds = List.exists (fun d -> d.Lint.Diagnostic.code = code) ds

let count_code code ds =
  List.length (List.filter (fun d -> d.Lint.Diagnostic.code = code) ds)

let find_code code ds = List.find (fun d -> d.Lint.Diagnostic.code = code) ds

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- matrix diagnostics ---------------- *)

let test_matrix_clean () =
  let costs = [| [| 0.0; 1.0; 2.0 |]; [| 1.0; 0.0; 1.5 |]; [| 2.0; 1.5; 0.0 |] |] in
  check_int "no diagnostics" 0 (List.length (Lint.Instance.check_matrix costs))

let test_matrix_nan_aggregated () =
  (* A fully-NaN off-diagonal matrix must yield one LAT002, not n². *)
  let n = 4 in
  let costs =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then 0.0 else Float.nan))
  in
  let ds = Lint.Instance.check_matrix costs in
  check_int "one LAT002" 1 (count_code "LAT002" ds);
  let d = find_code "LAT002" ds in
  check_bool "is error" true (d.Lint.Diagnostic.severity = Lint.Diagnostic.Error)

let test_matrix_negative_and_diag () =
  let costs = [| [| 0.0; -1.0 |]; [| 1.0; 3.0 |] |] in
  let ds = Lint.Instance.check_matrix costs in
  check_bool "LAT003 negative" true (has_code "LAT003" ds);
  check_bool "LAT004 non-zero diagonal" true (has_code "LAT004" ds)

let test_matrix_not_square () =
  let costs = [| [| 0.0; 1.0 |]; [| 1.0 |] |] in
  let ds = Lint.Instance.check_matrix costs in
  check_bool "LAT001" true (has_code "LAT001" ds)

let test_matrix_asymmetry_warns () =
  (* 1.0 vs 100.0 is gross asymmetry; measured-RTT jitter is not. *)
  let gross = [| [| 0.0; 1.0 |]; [| 100.0; 0.0 |] |] in
  let mild = [| [| 0.0; 1.0 |]; [| 1.2; 0.0 |] |] in
  check_bool "gross asymmetry warns" true
    (has_code "LAT005" (Lint.Instance.check_matrix gross));
  check_bool "mild asymmetry tolerated" false
    (has_code "LAT005" (Lint.Instance.check_matrix mild));
  check_bool "tolerance 0 flags mild too" true
    (has_code "LAT005" (Lint.Instance.check_matrix ~asymmetry_tolerance:0.0 mild))

let test_matrix_triangle_info () =
  (* c(0,2) = 10 > c(0,1) + c(1,2) = 2: a triangle violation, info only. *)
  let costs =
    [| [| 0.0; 1.0; 10.0 |]; [| 1.0; 0.0; 1.0 |]; [| 10.0; 1.0; 0.0 |] |]
  in
  let ds = Lint.Instance.check_matrix costs in
  check_bool "LAT006 reported" true (has_code "LAT006" ds);
  check_bool "only info severity" true
    (List.for_all
       (fun d -> d.Lint.Diagnostic.severity = Lint.Diagnostic.Info)
       ds);
  (* Above the size cap the O(n³) scan is skipped. *)
  check_bool "scan skipped above cap" false
    (has_code "LAT006" (Lint.Instance.check_matrix ~max_triangle_n:2 costs))

(* ---------------- graph diagnostics ---------------- *)

let test_edges_adversarial () =
  let ds = Lint.Instance.check_edges ~n:3 [ (0, 0); (0, 7); (1, 2); (1, 2) ] in
  check_bool "GRF001 self-loop" true (has_code "GRF001" ds);
  check_bool "GRF002 out of range" true (has_code "GRF002" ds);
  check_bool "GRF003 duplicate" true (has_code "GRF003" ds)

let test_graph_cyclic_lpndp () =
  (* A 2x3 mesh is cyclic: fine for longest-link, fatal for longest-path. *)
  let g = Graphs.Templates.mesh2d ~rows:2 ~cols:3 in
  check_bool "GRF005 under LPNDP" true
    (has_code "GRF005" (Lint.Instance.check_graph ~requires_dag:true g));
  check_bool "no GRF005 under LLNDP" false
    (has_code "GRF005" (Lint.Instance.check_graph g));
  let dag = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:2 in
  check_bool "DAG passes LPNDP" false
    (has_code "GRF005" (Lint.Instance.check_graph ~requires_dag:true dag))

let test_graph_oversized_template () =
  (* More application nodes than pool instances: no injection exists. *)
  let g = Graphs.Templates.mesh2d ~rows:4 ~cols:4 in
  let ds = Lint.Instance.check_graph ~pool:8 g in
  check_bool "GRF006" true (has_code "GRF006" ds);
  check_bool "pool = |V| fine" false
    (has_code "GRF006" (Lint.Instance.check_graph ~pool:16 g))

let test_graph_disconnected_and_isolated () =
  let g = Graphs.Digraph.create ~n:4 [ (0, 1) ] in
  let ds = Lint.Instance.check_graph g in
  check_bool "GRF004 disconnected" true (has_code "GRF004" ds);
  check_bool "GRF007 isolated" true (has_code "GRF007" ds)

let test_graph_empty () =
  let g = Graphs.Digraph.create ~n:3 [] in
  check_bool "GRF008" true (has_code "GRF008" (Lint.Instance.check_graph g))

(* ---------------- config diagnostics ---------------- *)

let test_config_checks () =
  let ds =
    Lint.Instance.check_config ~time_limit:(-1.0) ~domains:0 ~over_allocation:(-0.5)
      ~samples_per_pair:0 ()
  in
  check_bool "CFG001" true (has_code "CFG001" ds);
  check_bool "CFG002" true (has_code "CFG002" ds);
  check_bool "CFG004" true (has_code "CFG004" ds);
  check_bool "CFG005" true (has_code "CFG005" ds);
  let ds = Lint.Instance.check_config ~domains:9 ~pool:4 () in
  check_bool "CFG003 domains > pool" true (has_code "CFG003" ds);
  check_int "clean config" 0
    (List.length
       (Lint.Instance.check_config ~time_limit:1.0 ~domains:2 ~pool:4
          ~over_allocation:0.5 ~samples_per_pair:10 ()))

(* ---------------- diagnostic plumbing ---------------- *)

let test_check_raises_and_strict () =
  let info = Lint.Diagnostic.make Lint.Diagnostic.Info ~code:"X1" ~context:"t" "i" in
  let warn = Lint.Diagnostic.make Lint.Diagnostic.Warning ~code:"X2" ~context:"t" "w" in
  let err = Lint.Diagnostic.make Lint.Diagnostic.Error ~code:"X3" ~context:"t" "e" in
  Lint.Diagnostic.check [ info; warn ];
  check_bool "error raises" true
    (match Lint.Diagnostic.check [ info; err ] with
    | exception Lint.Diagnostic.Failed _ -> true
    | () -> false);
  check_bool "strict promotes warnings" true
    (match Lint.Diagnostic.check ~strict:true [ warn ] with
    | exception Lint.Diagnostic.Failed _ -> true
    | () -> false);
  Lint.Diagnostic.check ~strict:true [ info ]

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_sort_and_json () =
  let info = Lint.Diagnostic.make Lint.Diagnostic.Info ~code:"B1" ~context:"t" "i" in
  let err = Lint.Diagnostic.make Lint.Diagnostic.Error ~code:"A1" ~context:"t" "e" in
  (match Lint.Diagnostic.sort [ info; err ] with
  | first :: _ -> check_bool "errors sort first" true (first == err)
  | [] -> Alcotest.fail "sort dropped diagnostics");
  let json = Lint.Diagnostic.to_json [ err; info ] in
  check_bool "json has code" true
    (contains ~needle:{|"code": "A1"|} json || contains ~needle:{|"code":"A1"|} json);
  check_bool "json escapes quotes" true
    (contains ~needle:{|\"|}
       (Lint.Diagnostic.to_json
          [ Lint.Diagnostic.make Lint.Diagnostic.Info ~code:"Q" ~context:"c" {|say "hi"|} ]))

(* ---------------- source rules (repolint engine) ---------------- *)

let scan path text = Lint.Source_rules.scan_file ~path text

let rule_ids vs = List.map (fun v -> v.Lint.Source_rules.rule_id) vs

let test_migrated_rules_not_token_scanned () =
  (* R001/R002/R006 migrated to the AST passes A002/A004 in lib/analysis/
     (token matching cannot resolve aliases or shadowing); the token
     scanner must no longer report them. *)
  let bad =
    "let t0 = Unix.gettimeofday ()\n"
    ^ "let () = Random.self_init ()\n"
    ^ "let v = problem.costs.(0).(1)\n"
  in
  let ids = rule_ids (scan "lib/cp/search.ml" bad) in
  check_bool "no R001" false (List.mem "R001" ids);
  check_bool "no R002" false (List.mem "R002" ids);
  check_bool "no R006" false (List.mem "R006" ids);
  check_bool "rule table dropped them" true
    (List.for_all
       (fun (r : Lint.Source_rules.rule) ->
         r.id <> "R001" && r.id <> "R002" && r.id <> "R006")
       Lint.Source_rules.rules)

let test_r003_obj_magic () =
  let bad = "let cast (x : int) : string = Obj.magic x" in
  check_bool "flagged everywhere" true
    (List.mem "R003" (rule_ids (scan "bin/cloudia_cli.ml" bad)))

let test_r004_library_printing () =
  let bad = "let () = Printf.printf \"hi\"; print_endline \"bye\"" in
  let vs = scan "lib/cloudia/advisor.ml" bad in
  check_bool "flagged in lib" true (List.mem "R004" (rule_ids vs));
  check_int "both call sites" 2
    (List.length (List.filter (fun v -> v.Lint.Source_rules.rule_id = "R004") vs));
  check_bool "binaries may print" false
    (List.mem "R004" (rule_ids (scan "bin/cloudia_cli.ml" bad)))

let test_r005_missing_mli () =
  let vs =
    Lint.Source_rules.missing_mli
      ~paths:
        [
          "lib/cp/search.ml"; "lib/cp/search.mli"; "lib/cp/orphan.ml";
          "bin/cloudia_cli.ml" (* binaries are exempt *);
        ]
  in
  check_int "one missing interface" 1 (List.length vs);
  (match vs with
  | [ v ] ->
      Alcotest.(check string) "which file" "lib/cp/orphan.ml" v.Lint.Source_rules.path
  | _ -> Alcotest.fail "expected exactly one R005 violation")

let test_sanitizer_ignores_comments_and_strings () =
  let text =
    "(* Obj.magic is banned everywhere *)\n"
    ^ "let doc = \"call Obj.magic never\"\n"
    ^ "let raw = {|Obj.magic in a quoted block|}\n"
    ^ "let tick = 'x'\n"
  in
  check_int "nothing flagged" 0 (List.length (scan "lib/cp/search.ml" text));
  (* Nested comments stay blanked to the outer close. *)
  let nested = "(* outer (* Obj.magic *) still comment *) let x = 1" in
  check_int "nested comment" 0 (List.length (scan "lib/cp/search.ml" nested));
  (* ...but real code after the comment is still scanned. *)
  let mixed = "(* fine *) let cast x = Obj.magic x" in
  check_bool "code after comment flagged" true
    (List.mem "R003" (rule_ids (scan "lib/cp/search.ml" mixed)))

let test_sanitizer_delimited_quoted_strings () =
  (* {id|...|id} quoted strings: only the matching |id} closes, so a bare
     "|}" inside the body must not end the blanking early. *)
  let text = "let payload = {json|{\"x\": [1]} Obj.magic |} still |json}\n" in
  check_int "delimited string blanked" 0 (List.length (scan "lib/cp/search.ml" text));
  let after = "let p = {q|Obj.magic|q}\nlet cast x = Obj.magic x\n" in
  check_bool "code after delimited string still scanned" true
    (List.mem "R003" (rule_ids (scan "lib/cp/search.ml" after)));
  (* Sanitizing preserves byte offsets, so the violation line is exact. *)
  (match scan "lib/cp/search.ml" after with
  | [ v ] -> check_int "line" 2 v.Lint.Source_rules.line
  | vs -> Alcotest.fail (Printf.sprintf "expected one violation, got %d" (List.length vs)));
  (* '{' that opens a record, not a quoted string, is left alone. *)
  check_bool "record braces untouched" true
    (List.mem "R003" (rule_ids (scan "lib/cp/search.ml" "let r = { x = Obj.magic 1 }")))

let test_token_boundaries () =
  (* My_Obj.magic_backup is not Obj.magic. *)
  let similar = "let x = My_Obj.magic_backup ()" in
  check_int "no false positive" 0 (List.length (scan "lib/cp/search.ml" similar))

let test_allowlist_suppression () =
  let bad = "let () = Printf.printf \"hi\"" in
  let vs = scan "lib/cp/search.ml" bad in
  let allows =
    Lint.Source_rules.parse_allowlist
      "# debug CLI surface, tracked in ROADMAP\nR004 lib/cp/\n"
  in
  let kept, suppressed = Lint.Source_rules.partition_allowed allows vs in
  check_int "suppressed" 1 (List.length suppressed);
  check_int "kept" 0 (List.length kept);
  (* Wrong rule id or non-matching prefix keeps the violation. *)
  let allows = Lint.Source_rules.parse_allowlist "R003 lib/cp/\nR004 lib/lp/\n" in
  let kept, suppressed = Lint.Source_rules.partition_allowed allows vs in
  check_int "not suppressed" 0 (List.length suppressed);
  check_int "kept unmatched" 1 (List.length kept)

let test_violation_to_diagnostic () =
  let bad = "let cast x = Obj.magic x" in
  match scan "lib/cp/search.ml" bad with
  | [ v ] ->
      let d = Lint.Source_rules.violation_to_diagnostic v in
      check_bool "error severity" true
        (d.Lint.Diagnostic.severity = Lint.Diagnostic.Error);
      Alcotest.(check string) "code" "R003" d.Lint.Diagnostic.code;
      Alcotest.(check string) "context" "lib/cp/search.ml:1" d.Lint.Diagnostic.context
  | vs -> Alcotest.fail (Printf.sprintf "expected one violation, got %d" (List.length vs))

(* ---------------- hardened numeric entry points ---------------- *)

let test_kmeans_rejects_nan () =
  check_bool "kmeans rejects NaN" true
    (match Stats.Kmeans1d.cluster ~k:2 [| 1.0; Float.nan; 3.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_rejects_inf () =
  check_bool "metrics reject inf" true
    (match Cloudia.Metrics.of_samples Cloudia.Metrics.Mean [| 1.0; Float.infinity |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "matrix clean" `Quick test_matrix_clean;
    Alcotest.test_case "matrix nan aggregated" `Quick test_matrix_nan_aggregated;
    Alcotest.test_case "matrix negative + diag" `Quick test_matrix_negative_and_diag;
    Alcotest.test_case "matrix not square" `Quick test_matrix_not_square;
    Alcotest.test_case "matrix asymmetry" `Quick test_matrix_asymmetry_warns;
    Alcotest.test_case "matrix triangle info" `Quick test_matrix_triangle_info;
    Alcotest.test_case "edges adversarial" `Quick test_edges_adversarial;
    Alcotest.test_case "graph cyclic lpndp" `Quick test_graph_cyclic_lpndp;
    Alcotest.test_case "graph oversized template" `Quick test_graph_oversized_template;
    Alcotest.test_case "graph disconnected" `Quick test_graph_disconnected_and_isolated;
    Alcotest.test_case "graph empty" `Quick test_graph_empty;
    Alcotest.test_case "config checks" `Quick test_config_checks;
    Alcotest.test_case "check strictness" `Quick test_check_raises_and_strict;
    Alcotest.test_case "sort and json" `Quick test_sort_and_json;
    Alcotest.test_case "migrated rules not token-scanned" `Quick
      test_migrated_rules_not_token_scanned;
    Alcotest.test_case "R003 obj magic" `Quick test_r003_obj_magic;
    Alcotest.test_case "R004 library printing" `Quick test_r004_library_printing;
    Alcotest.test_case "R005 missing mli" `Quick test_r005_missing_mli;
    Alcotest.test_case "sanitizer" `Quick test_sanitizer_ignores_comments_and_strings;
    Alcotest.test_case "sanitizer delimited strings" `Quick
      test_sanitizer_delimited_quoted_strings;
    Alcotest.test_case "token boundaries" `Quick test_token_boundaries;
    Alcotest.test_case "allowlist suppression" `Quick test_allowlist_suppression;
    Alcotest.test_case "violation to diagnostic" `Quick test_violation_to_diagnostic;
    Alcotest.test_case "kmeans rejects nan" `Quick test_kmeans_rejects_nan;
    Alcotest.test_case "metrics reject inf" `Quick test_metrics_rejects_inf;
  ]
