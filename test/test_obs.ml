(* Tests for the observability library: sink gating, span nesting across
   domains, counter atomicity, incumbent-stream monotonicity, and exporter
   well-formedness. The sink and the counter registry are process-global,
   so every test that enables tracing resets and disables it on exit. *)

let with_tracing f =
  Obs.Sink.reset ();
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.reset ())
    f

(* ---- a minimal JSON parser, enough to check exporter output ---- *)

exception Bad_json of string

let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word =
    String.iter expect word
  in
  let parse_string () =
    expect '"';
    let continue = ref true in
    while !continue do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          continue := false
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let continue = ref true in
          while !continue do
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                continue := false
            | _ -> fail "expected , or } in object"
          done
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let continue = ref true in
          while !continue do
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                continue := false
            | _ -> fail "expected , or ] in array"
          done
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let export_to_string export events =
  let file = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Out_channel.with_open_text file (fun oc -> export oc events);
      In_channel.with_open_text file In_channel.input_all)

(* ---- sink gating ---- *)

let test_disabled_sink_records_nothing () =
  Obs.Sink.disable ();
  Obs.Sink.reset ();
  Obs.Span.with_ "silent" (fun () -> ());
  Obs.Span.mark "silent-mark";
  let stream = Obs.Incumbent.stream "silent" in
  Alcotest.(check bool) "observe still tracks" true (Obs.Incumbent.observe stream 3.0);
  Alcotest.(check int) "no events buffered" 0 (List.length (Obs.Sink.drain ()));
  (* Counters are always on, independent of the sink. *)
  let c = Obs.Counter.make "test.obs.gated" in
  let before = Obs.Counter.value c in
  Obs.Counter.incr c;
  Alcotest.(check int) "counter counts while disabled" (before + 1) (Obs.Counter.value c)

let test_span_result_passthrough () =
  Alcotest.(check int) "disabled" 7 (Obs.Span.with_ "x" (fun () -> 7));
  with_tracing (fun () ->
      Alcotest.(check int) "enabled" 9 (Obs.Span.with_ "x" (fun () -> 9)))

(* ---- span nesting and ordering ---- *)

let test_span_nesting_single_domain () =
  with_tracing (fun () ->
      Obs.Span.with_ "outer" (fun () ->
          Obs.Span.with_ "inner" (fun () -> ());
          Obs.Span.mark "between";
          Obs.Span.with_ "inner2" (fun () -> ()));
      let events = Obs.Sink.drain () in
      let names =
        List.map
          (fun (e : Obs.Event.t) ->
            match e.Obs.Event.payload with
            | Obs.Event.Span_begin n -> "B:" ^ n
            | Obs.Event.Span_end n -> "E:" ^ n
            | Obs.Event.Mark n -> "M:" ^ n
            | Obs.Event.Incumbent { stream; _ } -> "I:" ^ stream
            | Obs.Event.Gc_delta { span; _ } -> "G:" ^ span)
          events
      in
      Alcotest.(check (list string)) "well-nested order"
        [ "B:outer"; "B:inner"; "E:inner"; "M:between"; "B:inner2"; "E:inner2"; "E:outer" ]
        names;
      let ts = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.t_ns) events in
      Alcotest.(check bool) "timestamps sorted" true
        (List.for_all2 (fun a b -> Int64.compare a b <= 0)
           (List.filteri (fun i _ -> i < List.length ts - 1) ts)
           (List.tl ts)))

let test_spans_exception_safe () =
  with_tracing (fun () ->
      (try Obs.Span.with_ "raiser" (fun () -> failwith "boom") with Failure _ -> ());
      match Obs.Sink.drain () with
      | [ b; e ] ->
          Alcotest.(check string) "begin" "raiser" (Obs.Event.name b);
          Alcotest.(check string) "end" "raiser" (Obs.Event.name e);
          (match (b.Obs.Event.payload, e.Obs.Event.payload) with
          | Obs.Event.Span_begin _, Obs.Event.Span_end _ -> ()
          | _ -> Alcotest.fail "expected begin then end")
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_spans_multiple_domains () =
  with_tracing (fun () ->
      let work tag () =
        for i = 1 to 10 do
          Obs.Span.with_ (Printf.sprintf "%s.%d" tag i) (fun () ->
              Obs.Span.with_ (tag ^ ".child") (fun () -> ()))
        done
      in
      let domains =
        List.map (fun tag -> Domain.spawn (work tag)) [ "a"; "b"; "c" ]
      in
      work "main" ();
      List.iter Domain.join domains;
      let events = Obs.Sink.drain () in
      Alcotest.(check int) "4 domains x 10 spans x 2 levels x begin/end" 160
        (List.length events);
      (* Per domain the event stream must be well-nested, whatever the
         global interleaving. *)
      let by_domain = Hashtbl.create 8 in
      List.iter
        (fun (e : Obs.Event.t) ->
          let stack =
            match Hashtbl.find_opt by_domain e.Obs.Event.domain with
            | Some st -> st
            | None ->
                let st = ref [] in
                Hashtbl.add by_domain e.Obs.Event.domain st;
                st
          in
          match e.Obs.Event.payload with
          | Obs.Event.Span_begin n -> stack := n :: !stack
          | Obs.Event.Span_end n -> (
              match !stack with
              | top :: rest when top = n -> stack := rest
              | _ -> Alcotest.failf "unbalanced span end %s" n)
          | _ -> ())
        events;
      Alcotest.(check int) "4 distinct domains" 4 (Hashtbl.length by_domain);
      Hashtbl.iter
        (fun _ stack ->
          Alcotest.(check (list string)) "all spans closed" [] !stack)
        by_domain)

(* ---- counters ---- *)

let test_counter_atomic_across_domains () =
  let c = Obs.Counter.make "test.obs.atomic" in
  let before = Obs.Counter.value c in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" (before + (4 * per_domain)) (Obs.Counter.value c)

let test_counter_registry_and_delta () =
  let c1 = Obs.Counter.make "test.obs.delta" in
  let again = Obs.Counter.make "test.obs.delta" in
  Obs.Counter.incr c1;
  Alcotest.(check int) "make is idempotent per name" (Obs.Counter.value c1)
    (Obs.Counter.value again);
  let before = Obs.Counter.snapshot () in
  Obs.Counter.add c1 5;
  let delta = Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ()) in
  Alcotest.(check (list (pair string int))) "only the changed counter"
    [ ("test.obs.delta", 5) ]
    delta

(* ---- incumbent streams ---- *)

let test_incumbent_monotone () =
  let s = Obs.Incumbent.stream "test" in
  Alcotest.(check bool) "first always improves" true (Obs.Incumbent.observe s 10.0);
  Alcotest.(check bool) "worse rejected" false (Obs.Incumbent.observe s 11.0);
  Alcotest.(check bool) "equal rejected" false (Obs.Incumbent.observe s 10.0);
  Alcotest.(check bool) "better accepted" true (Obs.Incumbent.observe s 4.0);
  Alcotest.(check bool) "better again" true (Obs.Incumbent.observe s 1.5);
  Alcotest.(check (float 1e-9)) "best" 1.5 (Obs.Incumbent.best s);
  let series = Obs.Incumbent.series s in
  Alcotest.(check (list (float 1e-9))) "strictly decreasing costs" [ 10.0; 4.0; 1.5 ]
    (List.map snd series);
  let rec sorted = function
    | (t1, _) :: ((t2, _) :: _ as tl) -> Int64.compare t1 t2 <= 0 && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "timestamps non-decreasing" true (sorted series);
  (* Streams are fresh per call: a second solve starts from infinity even
     under the same name. *)
  let s2 = Obs.Incumbent.stream "test" in
  Alcotest.(check bool) "fresh stream improves again" true (Obs.Incumbent.observe s2 100.0)

let test_incumbent_emits_events () =
  with_tracing (fun () ->
      let s = Obs.Incumbent.stream "conv" in
      List.iter
        (fun c -> ignore (Obs.Incumbent.observe s c : bool))
        [ 5.0; 7.0; 3.0; 3.0; 2.0 ];
      let incs =
        List.filter_map
          (fun (e : Obs.Event.t) ->
            match e.Obs.Event.payload with
            | Obs.Event.Incumbent { stream; cost } when stream = "conv" -> Some cost
            | _ -> None)
          (Obs.Sink.drain ())
      in
      Alcotest.(check (list (float 1e-9))) "one event per improvement" [ 5.0; 3.0; 2.0 ] incs)

(* ---- exporters ---- *)

let sample_events () =
  with_tracing (fun () ->
      Obs.Span.with_ "search" (fun () ->
          Obs.Span.with_ "dive \"quoted\"\n" (fun () -> ());
          let s = Obs.Incumbent.stream "cp" in
          ignore (Obs.Incumbent.observe s 4.5 : bool);
          ignore (Obs.Incumbent.observe s 2.25 : bool);
          Obs.Span.mark "unsat");
      Obs.Sink.drain ())

let test_chrome_trace_well_formed () =
  let events = sample_events () in
  let out =
    export_to_string (Obs.Export.chrome ~counters:[ ("k", 3) ]) events
  in
  (match parse_json out with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "invalid chrome JSON: %s" msg);
  Alcotest.(check bool) "has traceEvents" true
    (String.length out > 0
    && String.sub out 0 15 = "{\"traceEvents\":");
  (* Same number of B and E phases, and the incumbent shows up as a
     counter track. *)
  let count needle =
    let rec go from acc =
      match String.index_from_opt out from needle.[0] with
      | None -> acc
      | Some i ->
          if i + String.length needle <= String.length out
             && String.sub out i (String.length needle) = needle
          then go (i + 1) (acc + 1)
          else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "balanced B/E" (count "\"ph\":\"B\"") (count "\"ph\":\"E\"");
  Alcotest.(check bool) "incumbent counter events" true (count "\"ph\":\"C\"" >= 2)

let test_jsonl_lines_parse () =
  let events = sample_events () in
  let out = export_to_string (Obs.Export.jsonl ~counters:[ ("k", 3) ]) events in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + spans + incumbents + mark + counter"
    (List.length events + 2) (List.length lines);
  (match lines with
  | first :: _ ->
      Alcotest.(check bool) "first line is the header" true
        (String.length first >= 16 && String.sub first 0 16 = "{\"type\":\"header\"")
  | [] -> Alcotest.fail "no lines");
  List.iter
    (fun line ->
      match parse_json line with
      | () -> ()
      | exception Bad_json msg -> Alcotest.failf "invalid JSONL line %S: %s" line msg)
    lines

let test_summary_renders () =
  let events = sample_events () in
  let out =
    export_to_string
      (Obs.Export.summary ~counters:[ ("test.obs.k", 3) ]
         ~gauges:[ ("test.obs.g", 0.5) ])
      events
  in
  let contains needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "span tree" true (contains "search");
  Alcotest.(check bool) "incumbent stream" true (contains "cp");
  Alcotest.(check bool) "counter table" true (contains "test.obs.k");
  Alcotest.(check bool) "gauge table" true (contains "test.obs.g")

let test_ring_drop_newest () =
  Obs.Sink.reset ();
  Obs.Sink.enable ~capacity:8 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Sink.disable ();
      Obs.Sink.reset ())
    (fun () ->
      (* Rings size themselves at first use, so a ring allocated by an
         earlier test keeps its old capacity: exercise the cap from a fresh
         domain, whose ring is created under the small capacity. *)
      let dropped_in_domain =
        Domain.join
          (Domain.spawn (fun () ->
               for i = 1 to 20 do
                 Obs.Span.mark (string_of_int i)
               done;
               Obs.Sink.dropped ()))
      in
      let events = Obs.Sink.drain () in
      Alcotest.(check int) "ring capped" 8 (List.length events);
      (* Drop-newest: the oldest events survive. *)
      Alcotest.(check (list string)) "oldest kept"
        [ "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8" ]
        (List.map Obs.Event.name events);
      Alcotest.(check int) "drops counted" 12 dropped_in_domain)

(* ---- histograms ---- *)

let snap_of_values ?(alpha = Obs.Histogram.default_alpha) name values =
  let h = Obs.Histogram.create ~alpha name in
  List.iter (Obs.Histogram.record h) values;
  Obs.Histogram.snapshot_of h

(* The same rank convention quantile_of uses: the ceil(q*n)-th smallest
   value (1-based), clamped to [1, n]. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let r = int_of_float (Float.ceil (q *. float_of_int n)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  sorted.(r - 1)

(* Log-uniform positive values spanning the trackable range, so the
   property exercises buckets 18 decades apart, not just one decade. *)
let log_uniform_value = QCheck.(map (fun e -> 10.0 ** e) (float_range (-6.0) 12.0))

let qcheck_quantile_relative_error =
  QCheck.Test.make ~name:"histogram quantile within alpha relative error" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 300) log_uniform_value)
    (fun values ->
      let s = snap_of_values "qcheck.quantile" values in
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let est = Obs.Histogram.quantile_of s q in
          let exact = exact_quantile sorted q in
          (* alpha with a sliver of slack for the float log/pow round
             trips in bucket indexing. *)
          Float.abs (est -. exact) <= (Obs.Histogram.default_alpha *. 1.05 *. exact) +. 1e-12)
        [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])

(* Exact equality on everything merge promises exactly; hist_sum is float
   addition in merge order, so it only gets a relative tolerance. *)
let snapshot_equivalent (a : Obs.Histogram.snapshot) (b : Obs.Histogram.snapshot) =
  a.Obs.Histogram.hist_alpha = b.Obs.Histogram.hist_alpha
  && a.hist_count = b.hist_count
  && a.hist_zero = b.hist_zero
  && a.hist_buckets = b.hist_buckets
  && a.hist_min = b.hist_min
  && a.hist_max = b.hist_max
  && Float.abs (a.hist_sum -. b.hist_sum)
     <= 1e-9 *. (1.0 +. Float.abs a.hist_sum +. Float.abs b.hist_sum)

(* Mixed-sign values so the zero/underflow bucket is merged too. *)
let mixed_values = QCheck.(small_list (float_range (-5.0) 1e6))

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"histogram merge is commutative" ~count:200
    QCheck.(pair mixed_values mixed_values)
    (fun (xs, ys) ->
      let a = snap_of_values "qcheck.merge.a" xs and b = snap_of_values "qcheck.merge.b" ys in
      snapshot_equivalent (Obs.Histogram.merge a b) (Obs.Histogram.merge b a))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:200
    QCheck.(triple mixed_values mixed_values mixed_values)
    (fun (xs, ys, zs) ->
      let a = snap_of_values "qcheck.merge.a" xs
      and b = snap_of_values "qcheck.merge.b" ys
      and c = snap_of_values "qcheck.merge.c" zs in
      snapshot_equivalent
        (Obs.Histogram.merge (Obs.Histogram.merge a b) c)
        (Obs.Histogram.merge a (Obs.Histogram.merge b c)))

let qcheck_merge_equals_single_stream =
  QCheck.Test.make ~name:"merge of split streams equals one stream" ~count:200
    QCheck.(pair mixed_values mixed_values)
    (fun (xs, ys) ->
      let a = snap_of_values "qcheck.split.a" xs and b = snap_of_values "qcheck.split.b" ys in
      snapshot_equivalent (Obs.Histogram.merge a b) (snap_of_values "qcheck.whole" (xs @ ys)))

let test_histogram_edge_values () =
  let h = Obs.Histogram.create "test.obs.hist.edges" in
  List.iter (Obs.Histogram.record h) [ 0.0; -3.0; nan; 42.0 ];
  let s = Obs.Histogram.snapshot_of h in
  Alcotest.(check int) "NaN ignored" 3 s.Obs.Histogram.hist_count;
  Alcotest.(check int) "zero and negative underflow" 2 s.hist_zero;
  Alcotest.(check (float 1e-9)) "min exact" (-3.0) s.hist_min;
  Alcotest.(check (float 1e-9)) "max exact" 42.0 s.hist_max;
  Alcotest.(check (float 1e-9)) "low quantile hits underflow" (-3.0)
    (Obs.Histogram.quantile_of s 0.1);
  Alcotest.(check bool) "p99 near 42" true
    (Float.abs (Obs.Histogram.quantile_of s 0.99 -. 42.0) <= 0.5)

let test_histogram_concurrent_recording () =
  let h = Obs.Histogram.create "test.obs.hist.concurrent" in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Histogram.record h (float_of_int ((d * per_domain) + i))
            done))
  in
  List.iter Domain.join domains;
  let s = Obs.Histogram.snapshot_of h in
  let n = 4 * per_domain in
  Alcotest.(check int) "count conserved" n s.Obs.Histogram.hist_count;
  Alcotest.(check int) "bucket tally conserved" n
    (List.fold_left (fun acc (_, c) -> acc + c) 0 s.hist_buckets);
  Alcotest.(check (float 1e-9)) "min survives the race" 1.0 s.hist_min;
  Alcotest.(check (float 1e-9)) "max survives the race" (float_of_int n) s.hist_max;
  (* Every recorded value is an integer and the total stays below 2^53,
     so each CAS addition is exact float arithmetic in any order. *)
  Alcotest.(check (float 1e-3)) "sum conserved"
    (float_of_int n *. float_of_int (n + 1) /. 2.0)
    s.hist_sum

(* ---- trace forensics (obs report / obs compare) ---- *)

(* `dune runtest` runs this binary from _build/default/test; `dune exec
   test/test_main.exe` (the TSan CI job) runs it from the project root.
   Probe both so the fixture resolves either way. *)
let fixture name =
  let candidates =
    [ Filename.concat "../bench/fixtures" name; Filename.concat "bench/fixtures" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let load_fixture name =
  match Obs.Trace.load (fixture name) with
  | Ok t -> t
  | Error e -> Alcotest.failf "load %s: %s" name e

let test_obs_report_matches_golden () =
  let t = load_fixture "trace_small.jsonl" in
  let got = export_to_string (fun oc () -> Obs.Trace.report oc t) () in
  let want = In_channel.with_open_text (fixture "trace_small.report.txt") In_channel.input_all in
  Alcotest.(check string) "report matches committed golden output" want got

let test_obs_compare_self_is_clean () =
  let t = load_fixture "trace_small.jsonl" in
  Alcotest.(check (option string)) "no header mismatch with itself" None
    (Obs.Trace.header_mismatch t t);
  let checks = Obs.Trace.compare_traces ~base:t ~current:t () in
  Alcotest.(check bool) "has checks" true (checks <> []);
  List.iter
    (fun (c : Obs.Trace.check) ->
      if not c.Obs.Trace.ok then Alcotest.failf "self-compare flagged %s" c.Obs.Trace.metric)
    checks

let test_obs_compare_flags_regression () =
  let base = load_fixture "trace_small.jsonl" in
  let regressed = load_fixture "trace_small_regressed.jsonl" in
  Alcotest.(check (option string)) "same provenance, comparable" None
    (Obs.Trace.header_mismatch base regressed);
  let checks = Obs.Trace.compare_traces ~base ~current:regressed () in
  let failed =
    List.filter_map
      (fun (c : Obs.Trace.check) -> if c.Obs.Trace.ok then None else Some c.Obs.Trace.metric)
      checks
  in
  let has needle = List.mem needle failed in
  Alcotest.(check bool) "span regression flagged" true (has "span:anneal.solve.total_ms");
  Alcotest.(check bool) "histogram p99 regression flagged" true
    (has "hist:anneal.move_ns.p99");
  Alcotest.(check bool) "final-cost regression flagged" true (has "quality:anneal.final_cost");
  (* Most-regressed first: the head of the list must be a failure. *)
  match checks with
  | c :: _ -> Alcotest.(check bool) "failures sorted first" false c.Obs.Trace.ok
  | [] -> Alcotest.fail "no checks"

(* Replace the first occurrence of [needle] in [hay]. *)
let replace_once hay needle replacement =
  let nh = String.length hay and nn = String.length needle in
  let rec find i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else find (i + 1) in
  match find 0 with
  | None -> Alcotest.failf "fixture lacks %S" needle
  | Some i ->
      String.sub hay 0 i ^ replacement ^ String.sub hay (i + nn) (nh - i - nn)

let test_obs_compare_refuses_mismatched_header () =
  let base = load_fixture "trace_small.jsonl" in
  let text = In_channel.with_open_text (fixture "trace_small.jsonl") In_channel.input_all in
  let reseed s =
    match Obs.Trace.of_string (replace_once text "\"seed\":7" (Printf.sprintf "\"seed\":%d" s)) with
    | Ok t -> t
    | Error e -> Alcotest.failf "reseeded trace: %s" e
  in
  (match Obs.Trace.header_mismatch base (reseed 8) with
  | Some reason ->
      Alcotest.(check bool) "mismatch names the seed" true
        (let nl = String.length "seed" and ol = String.length reason in
         let rec go i = i + nl <= ol && (String.sub reason i nl = "seed" || go (i + 1)) in
         go 0)
  | None -> Alcotest.fail "seed mismatch not detected");
  Alcotest.(check (option string)) "identical header still matches" None
    (Obs.Trace.header_mismatch base (reseed 7));
  (* A trace from a newer schema than this binary understands must refuse
     to load at all. *)
  match Obs.Trace.of_string (replace_once text "\"schema\":2" "\"schema\":99") with
  | Ok _ -> Alcotest.fail "newer schema accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "disabled sink records nothing" `Quick
      test_disabled_sink_records_nothing;
    Alcotest.test_case "span passes result through" `Quick test_span_result_passthrough;
    Alcotest.test_case "span nesting single domain" `Quick test_span_nesting_single_domain;
    Alcotest.test_case "span exception safety" `Quick test_spans_exception_safe;
    Alcotest.test_case "spans across domains" `Quick test_spans_multiple_domains;
    Alcotest.test_case "counter atomicity" `Quick test_counter_atomic_across_domains;
    Alcotest.test_case "counter registry and delta" `Quick test_counter_registry_and_delta;
    Alcotest.test_case "incumbent monotonicity" `Quick test_incumbent_monotone;
    Alcotest.test_case "incumbent emits events" `Quick test_incumbent_emits_events;
    Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_trace_well_formed;
    Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
    Alcotest.test_case "summary renders" `Quick test_summary_renders;
    Alcotest.test_case "ring drops newest" `Quick test_ring_drop_newest;
    Alcotest.test_case "histogram edge values" `Quick test_histogram_edge_values;
    Alcotest.test_case "histogram concurrent recording" `Quick
      test_histogram_concurrent_recording;
    Alcotest.test_case "obs report matches golden fixture" `Quick
      test_obs_report_matches_golden;
    Alcotest.test_case "obs compare self is clean" `Quick test_obs_compare_self_is_clean;
    Alcotest.test_case "obs compare flags regression" `Quick
      test_obs_compare_flags_regression;
    Alcotest.test_case "obs compare refuses mismatched header" `Quick
      test_obs_compare_refuses_mismatched_header;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        qcheck_quantile_relative_error;
        qcheck_merge_commutative;
        qcheck_merge_associative;
        qcheck_merge_equals_single_stream;
      ]
