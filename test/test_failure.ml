open Cloudia

(* Failure injection and degenerate-input coverage: every solver and
   pipeline stage must behave sensibly on pathological inputs — uniform
   costs, zero costs, extreme asymmetry, near-singular matrices, minimal
   sizes — and reject malformed external data with clear errors. *)

let check_float name ?(tol = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

let cp_fast =
  {
    Cp_solver.clusters = Some 20;
    time_limit = 5.0;
    iteration_time_limit = None;
    use_labeling = true;
    bootstrap_trials = 10;
    symmetry_breaking = true;
  }

(* ---------- Degenerate cost structures ---------- *)

let uniform_problem n m value =
  let graph = Graphs.Templates.mesh2d ~rows:1 ~cols:n in
  let costs =
    Array.init m (fun j -> Array.init m (fun j' -> if j = j' then 0.0 else value))
  in
  Types.problem ~graph ~costs

let test_uniform_costs_all_solvers () =
  (* With all links equal, every injection has the same cost: solvers must
     terminate immediately with that cost, not loop through thresholds. *)
  let p = uniform_problem 4 6 0.5 in
  let cp = Cp_solver.solve ~options:cp_fast (Prng.create 1) p in
  Alcotest.(check bool) "cp proved" true cp.Cp_solver.proven_optimal;
  check_float "cp cost" 0.5 cp.Cp_solver.cost;
  Alcotest.(check int) "cp needs no iterations" 0 cp.Cp_solver.iterations;
  check_float "g1" 0.5 (Cost.longest_link p (Greedy.g1 p));
  check_float "g2" 0.5 (Cost.longest_link p (Greedy.g2 p));
  let _, r1 = Random_search.r1 (Prng.create 2) Cost.Longest_link p ~trials:10 in
  check_float "r1" 0.5 r1

let test_zero_costs () =
  (* A pathological all-zero matrix (e.g. loopback measurements): valid
     input, zero optimal cost everywhere. *)
  let p = uniform_problem 3 4 0.0 in
  let cp = Cp_solver.solve ~options:cp_fast (Prng.create 3) p in
  check_float "zero cost" 0.0 cp.Cp_solver.cost;
  Alcotest.(check bool) "proved" true cp.Cp_solver.proven_optimal;
  let _, bf = Brute_force.solve Cost.Longest_link p in
  check_float "brute force agrees" 0.0 bf

let test_extreme_asymmetry () =
  (* One direction 1000x the other: solvers must respect directionality. *)
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  let costs = [| [| 0.0; 1000.0 |]; [| 1.0; 0.0 |] |] in
  let p = Types.problem ~graph ~costs in
  let plan, cost = Brute_force.solve Cost.Longest_link p in
  (* Only edge is 0 -> 1; the cheap direction requires node 0 on instance
     1 and node 1 on instance 0. *)
  check_float "optimal uses cheap direction" 1.0 cost;
  Alcotest.(check (array int)) "reversed placement" [| 1; 0 |] plan;
  let cp = Cp_solver.solve ~options:{ cp_fast with Cp_solver.clusters = None }
      (Prng.create 4) p in
  check_float "cp agrees" 1.0 cp.Cp_solver.cost

let test_single_node_single_instance () =
  let graph = Graphs.Digraph.create ~n:1 [] in
  let p = Types.problem ~graph ~costs:[| [| 0.0 |] |] in
  let cp = Cp_solver.solve ~options:cp_fast (Prng.create 5) p in
  Alcotest.(check (array int)) "only placement" [| 0 |] cp.Cp_solver.plan;
  check_float "edgeless cost" 0.0 cp.Cp_solver.cost

let test_near_equal_costs_distinct () =
  (* Costs separated by 1e-9 (the Theorem 2/3 setting): the unclustered CP
     must still find the exact optimum. *)
  let graph = Graphs.Templates.ring ~n:3 in
  let base = [| [| 0.0; 1.0; 1.0 |]; [| 1.0; 0.0; 1.0 |]; [| 1.0; 1.0; 0.0 |] |] in
  let p0 = Types.problem ~graph ~costs:base in
  let p = Reduction.distinct_costs (Prng.create 6) p0 in
  let cp =
    Cp_solver.solve ~options:{ cp_fast with Cp_solver.clusters = None } (Prng.create 7) p
  in
  let _, bf = Brute_force.solve Cost.Longest_link p in
  check_float ~tol:1e-12 "exact optimum at 1e-6 separations" bf cp.Cp_solver.cost

let test_huge_cost_range () =
  (* Nine orders of magnitude between cheapest and priciest link: k-means
     clustering and the solvers must not produce NaNs or invalid plans. *)
  let rng = Prng.create 8 in
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:2 in
  let m = 6 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' ->
            if j = j' then 0.0 else 1e-6 *. (10.0 ** Prng.float rng 9.0)))
  in
  let p = Types.problem ~graph ~costs in
  let cp = Cp_solver.solve ~options:cp_fast (Prng.create 9) p in
  Alcotest.(check bool) "valid" true (Types.is_valid p cp.Cp_solver.plan);
  Alcotest.(check bool) "finite" true (Float.is_finite cp.Cp_solver.cost)

let test_no_over_allocation_permutation_only () =
  (* |N| = |S|: nothing to terminate, pure re-mapping; every solver must
     still return a (full) permutation. *)
  let rng = Prng.create 10 in
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3 in
  let m = 6 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let cp = Cp_solver.solve ~options:cp_fast (Prng.create 11) p in
  Alcotest.(check (list int)) "nothing unused" [] (Types.unused_instances p cp.Cp_solver.plan);
  Alcotest.(check bool) "g2 full" true (Types.unused_instances p (Greedy.g2 p) = [])

(* ---------- Malformed external data ---------- *)

let test_matrix_io_roundtrip () =
  let m = [| [| 0.0; 1.25 |]; [| 0.5; 0.0 |] |] in
  match Matrix_io.parse (Matrix_io.print m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      check_float "entry" 1.25 m'.(0).(1);
      check_float "entry" 0.5 m'.(1).(0)

let test_matrix_io_rejects_malformed () =
  let cases =
    [
      ("", "empty");
      ("0, 1\n2", "ragged");
      ("0, 1\nx, 0", "non-numeric");
      ("1, 1\n1, 0", "nonzero diagonal");
      ("0, -1\n1, 0", "negative");
      ("0, nan\n1, 0", "nan");
    ]
  in
  List.iter
    (fun (text, what) ->
      match Matrix_io.parse text with
      | Ok _ -> Alcotest.fail ("accepted " ^ what)
      | Error _ -> ())
    cases

let test_matrix_io_comments_and_load () =
  let text = "# comment\n0, 2.5\n2.5, 0\n" in
  (match Matrix_io.parse text with
  | Error e -> Alcotest.fail e
  | Ok m -> check_float "value" 2.5 m.(0).(1));
  match Matrix_io.load "/nonexistent/path.csv" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ()

(* ---------- Measurement edge cases ---------- *)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let test_measurement_two_instances () =
  let env = Cloudsim.Env.allocate (Prng.create 12) ec2 ~count:2 in
  let tp = Netmeasure.Schemes.token_passing (Prng.create 13) env ~samples_per_pair:5 in
  Alcotest.(check int) "both pairs" 5 tp.Netmeasure.Schemes.samples.(0).(1);
  let st = Netmeasure.Schemes.staged (Prng.create 14) env ~ks:3 ~stages:10 in
  Alcotest.(check bool) "staged sampled something" true
    (st.Netmeasure.Schemes.samples.(0).(1) + st.Netmeasure.Schemes.samples.(1).(0) > 0)

let test_measurement_rejects_single_instance () =
  let env = Cloudsim.Env.allocate (Prng.create 15) ec2 ~count:1 in
  Alcotest.check_raises "uncoordinated"
    (Invalid_argument "Schemes.uncoordinated: need at least two instances")
    (fun () -> ignore (Netmeasure.Schemes.uncoordinated (Prng.create 16) env ~rounds:1));
  Alcotest.check_raises "staged"
    (Invalid_argument "Schemes.staged: need at least two instances")
    (fun () -> ignore (Netmeasure.Schemes.staged (Prng.create 17) env ~ks:1 ~stages:1))

(* ---------- Solver under absurd budgets ---------- *)

let test_cp_zero_time_budget () =
  (* A non-positive budget must still return the bootstrap incumbent, not
     crash or hang. *)
  let rng = Prng.create 18 in
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:2 in
  let m = 5 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let r =
    Cp_solver.solve ~options:{ cp_fast with Cp_solver.time_limit = 0.0 } (Prng.create 19) p
  in
  Alcotest.(check bool) "valid bootstrap plan" true (Types.is_valid p r.Cp_solver.plan);
  Alcotest.(check bool) "not proved" false r.Cp_solver.proven_optimal

let suite =
  [
    Alcotest.test_case "uniform costs all solvers" `Quick test_uniform_costs_all_solvers;
    Alcotest.test_case "zero costs" `Quick test_zero_costs;
    Alcotest.test_case "extreme asymmetry" `Quick test_extreme_asymmetry;
    Alcotest.test_case "single node single instance" `Quick test_single_node_single_instance;
    Alcotest.test_case "near-equal distinct costs" `Quick test_near_equal_costs_distinct;
    Alcotest.test_case "huge cost range" `Quick test_huge_cost_range;
    Alcotest.test_case "no over-allocation" `Quick test_no_over_allocation_permutation_only;
    Alcotest.test_case "matrix io roundtrip" `Quick test_matrix_io_roundtrip;
    Alcotest.test_case "matrix io rejects malformed" `Quick test_matrix_io_rejects_malformed;
    Alcotest.test_case "matrix io comments and load" `Quick test_matrix_io_comments_and_load;
    Alcotest.test_case "measurement two instances" `Quick test_measurement_two_instances;
    Alcotest.test_case "measurement one instance rejected" `Quick
      test_measurement_rejects_single_instance;
    Alcotest.test_case "cp zero time budget" `Quick test_cp_zero_time_budget;
  ]
