open Cloudia

(* Cross-module consistency properties: different paths through the API
   that must agree with each other. *)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let check_float name ?(tol = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

(* ---------- Environment reproducibility ---------- *)

let test_env_fully_deterministic () =
  (* Same seed: identical hosts, means, bandwidths, hop counts, IPs. *)
  let a = Cloudsim.Env.allocate (Prng.create 7) ec2 ~count:15 in
  let b = Cloudsim.Env.allocate (Prng.create 7) ec2 ~count:15 in
  for i = 0 to 14 do
    Alcotest.(check int) "host" (Cloudsim.Env.host a i) (Cloudsim.Env.host b i);
    Alcotest.(check (pair (pair int int) (pair int int)))
      "ip"
      (let w, x, y, z = Cloudsim.Env.ip_address a i in
       ((w, x), (y, z)))
      (let w, x, y, z = Cloudsim.Env.ip_address b i in
       ((w, x), (y, z)));
    for j = 0 to 14 do
      check_float "mean" (Cloudsim.Env.mean_latency a i j) (Cloudsim.Env.mean_latency b i j);
      if i <> j then
        check_float "bandwidth" (Cloudsim.Env.bandwidth a i j) (Cloudsim.Env.bandwidth b i j)
    done
  done

let test_perturb_preserves_bandwidth_and_hosts () =
  let env = Cloudsim.Env.allocate (Prng.create 9) ec2 ~count:12 in
  let p = Cloudsim.Env.perturb (Prng.create 10) env ~fraction:0.5 ~magnitude:0.8 in
  for i = 0 to 11 do
    Alcotest.(check int) "hosts preserved" (Cloudsim.Env.host env i) (Cloudsim.Env.host p i);
    for j = 0 to 11 do
      if i <> j then
        check_float "bandwidth preserved" (Cloudsim.Env.bandwidth env i j)
          (Cloudsim.Env.bandwidth p i j)
    done
  done

(* ---------- Measurement time accounting ---------- *)

let test_token_time_scales_with_samples () =
  let env = Cloudsim.Env.allocate (Prng.create 11) ec2 ~count:8 in
  let t1 = (Netmeasure.Schemes.token_passing (Prng.create 12) env ~samples_per_pair:5)
             .Netmeasure.Schemes.sim_seconds in
  let t2 = (Netmeasure.Schemes.token_passing (Prng.create 12) env ~samples_per_pair:10)
             .Netmeasure.Schemes.sim_seconds in
  Alcotest.(check bool)
    (Printf.sprintf "doubling samples roughly doubles time (%.2f vs %.2f)" t1 t2)
    true
    (t2 > 1.7 *. t1 && t2 < 2.3 *. t1)

(* ---------- Advisor report internal consistency ---------- *)

let test_advisor_report_fields_agree () =
  let config =
    {
      Advisor.graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3;
      objective = Cost.Longest_link;
      metric = Metrics.Mean;
      over_allocation = 0.3;
      samples_per_pair = 20;
      strategy = Advisor.Greedy_g2;
    }
  in
  let r = Advisor.run (Prng.create 13) ec2 config in
  check_float "cost = eval(plan)" (Cost.longest_link r.Advisor.problem r.Advisor.plan)
    r.Advisor.cost;
  check_float "default cost = eval(default)"
    (Cost.longest_link r.Advisor.problem r.Advisor.default_plan)
    r.Advisor.default_cost;
  Alcotest.(check (list int)) "terminated = unused"
    (Types.unused_instances r.Advisor.problem r.Advisor.plan)
    r.Advisor.terminated;
  (* Terminated plus plan instances partition the allocation. *)
  Alcotest.(check int) "partition"
    (Cloudsim.Env.count r.Advisor.env)
    (List.length r.Advisor.terminated + Array.length r.Advisor.plan)

(* ---------- Weighted/unweighted agreement under uniform weights ---------- *)

let test_weighted_cp_uniform_equals_plain () =
  let rng = Prng.create 15 in
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:2 in
  let m = 6 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let options =
    {
      Cp_solver.clusters = None;
      time_limit = 20.0;
      iteration_time_limit = None;
      use_labeling = true;
      bootstrap_trials = 10;
      symmetry_breaking = true;
    }
  in
  let plain = Cp_solver.solve ~options (Prng.create 16) p in
  let weighted =
    Weighted.solve_cp ~options (Prng.create 16) (Weighted.make p ~weight:(fun _ _ -> 1.0))
  in
  Alcotest.(check bool) "both proved" true
    (plain.Cp_solver.proven_optimal && weighted.Cp_solver.proven_optimal);
  check_float "same optimum" plain.Cp_solver.cost weighted.Cp_solver.cost

(* ---------- Brute force vs anneal vs CP triple agreement ---------- *)

let test_three_solvers_agree_on_optimum () =
  for seed = 21 to 24 do
    let rng = Prng.create seed in
    let graph = Graphs.Templates.random_connected rng ~n:5 ~extra_edges:2 in
    let m = 7 in
    let costs =
      Array.init m (fun j ->
          Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
    in
    let p = Types.problem ~graph ~costs in
    let _, bf = Brute_force.solve Cost.Longest_link p in
    let cp =
      Cp_solver.solve
        ~options:
          {
            Cp_solver.clusters = None;
            time_limit = 20.0;
            iteration_time_limit = None;
            use_labeling = true;
            bootstrap_trials = 10;
            symmetry_breaking = true;
          }
        (Prng.create seed) p
    in
    check_float (Printf.sprintf "cp = brute force (seed %d)" seed) bf cp.Cp_solver.cost;
    (* Annealing is a heuristic: it must never beat the proven optimum. *)
    let sa =
      Anneal.solve_objective
        ~options:{ Anneal.default_options with Anneal.time_limit = 0.3 }
        (Prng.create seed) Cost.Longest_link p
    in
    Alcotest.(check bool) "anneal >= optimum" true (sa.Anneal.cost >= bf -. 1e-9)
  done

(* ---------- Graph I/O idempotence (property) ---------- *)

let graph_io_roundtrip =
  QCheck.Test.make ~name:"edge-list print/parse roundtrip on random graphs" ~count:80
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Graphs.Templates.random_connected rng ~n ~extra_edges:(n / 2) in
      match Graphs.Graph_io.parse_edge_list (Graphs.Graph_io.print_edge_list g) with
      | Error _ -> false
      | Ok (g', _) -> Graphs.Digraph.edges g = Graphs.Digraph.edges g')

(* ---------- Metric matrices are usable problems (property) ---------- *)

let metric_matrices_valid =
  QCheck.Test.make ~name:"estimated metric matrices satisfy problem invariants" ~count:20
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, count) ->
      let env = Cloudsim.Env.allocate (Prng.create seed) ec2 ~count in
      let derive = Metrics.estimate_all (Prng.create (seed + 1)) env ~samples_per_pair:10 in
      List.for_all
        (fun metric ->
          let costs = derive metric in
          match Types.of_matrix ~graph:(Graphs.Templates.star ~n:count) costs with
          | exception Invalid_argument _ -> false
          | _ -> true)
        [ Metrics.Mean; Metrics.Mean_plus_sd; Metrics.P99 ])

let suite =
  [
    Alcotest.test_case "env fully deterministic" `Quick test_env_fully_deterministic;
    Alcotest.test_case "perturb preserves bandwidth/hosts" `Quick
      test_perturb_preserves_bandwidth_and_hosts;
    Alcotest.test_case "token time scales with samples" `Quick
      test_token_time_scales_with_samples;
    Alcotest.test_case "advisor report fields agree" `Quick test_advisor_report_fields_agree;
    Alcotest.test_case "weighted cp uniform = plain" `Quick test_weighted_cp_uniform_equals_plain;
    Alcotest.test_case "three solvers agree" `Quick test_three_solvers_agree_on_optimum;
    QCheck_alcotest.to_alcotest ~long:false graph_io_roundtrip;
    QCheck_alcotest.to_alcotest ~long:false metric_matrices_valid;
  ]
