open Cloudia

(* A second round of coverage: advisor strategies, option validation, edge
   cases, and cross-module consistency checks. *)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let check_float name ?(tol = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

(* ---------- Advisor with the annealing strategy ---------- *)

let test_advisor_anneal_strategy () =
  let config =
    {
      Advisor.graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3;
      objective = Cost.Longest_link;
      metric = Metrics.Mean;
      over_allocation = 0.2;
      samples_per_pair = 15;
      strategy = Advisor.Anneal { Anneal.default_options with Anneal.time_limit = 0.5 };
    }
  in
  let report = Advisor.run (Prng.create 5) ec2 config in
  Alcotest.(check bool) "valid" true (Types.is_valid report.Advisor.problem report.Advisor.plan);
  Alcotest.(check string) "name" "SA" (Advisor.strategy_to_string config.Advisor.strategy)

let test_advisor_anneal_longest_path () =
  (* Annealing handles the longest-path objective directly (unlike CP). *)
  let config =
    {
      Advisor.graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:2;
      objective = Cost.Longest_path;
      metric = Metrics.Mean;
      over_allocation = 0.3;
      samples_per_pair = 15;
      strategy = Advisor.Anneal { Anneal.default_options with Anneal.time_limit = 0.5 };
    }
  in
  let report = Advisor.run (Prng.create 6) ec2 config in
  Alcotest.(check bool) "valid" true (Types.is_valid report.Advisor.problem report.Advisor.plan);
  Alcotest.(check bool) "positive cost" true (report.Advisor.cost > 0.0)

let test_strategy_names () =
  let cases =
    [
      (Advisor.Greedy_g1, "G1");
      (Advisor.Greedy_g2, "G2");
      (Advisor.Random_r1 5, "R1(5)");
      (Advisor.Cp Cp_solver.default_options, "CP");
      (Advisor.Mip Mip_solver.default_options, "MIP");
    ]
  in
  List.iter
    (fun (s, expected) ->
      Alcotest.(check string) expected expected (Advisor.strategy_to_string s))
    cases

(* ---------- Option validation ---------- *)

let tiny_problem =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  Types.problem ~graph ~costs:[| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |]

let test_anneal_rejects_bad_options () =
  Alcotest.check_raises "zero time" (Invalid_argument "Anneal.solve: need a positive time limit")
    (fun () ->
      ignore
        (Anneal.solve
           ~options:{ Anneal.default_options with Anneal.time_limit = 0.0 }
           (Prng.create 1)
           ~eval:(fun _ -> 0.0)
           tiny_problem));
  Alcotest.check_raises "zero restarts" (Invalid_argument "Anneal.solve: need at least one restart")
    (fun () ->
      ignore
        (Anneal.solve
           ~options:{ Anneal.default_options with Anneal.restarts = 0 }
           (Prng.create 1)
           ~eval:(fun _ -> 0.0)
           tiny_problem))

let test_cp_rejects_nonpositive_weight () =
  Alcotest.check_raises "weight" (Invalid_argument "Cp_solver.solve: edge weights must be positive")
    (fun () -> ignore (Cp_solver.solve ~edge_weight:(fun _ _ -> -1.0) (Prng.create 1) tiny_problem))

let test_mip_rejects_nonpositive_weight () =
  Alcotest.check_raises "weight" (Invalid_argument "Mip_solver: edge weights must be positive")
    (fun () ->
      ignore
        (Mip_solver.solve_longest_link ~edge_weight:(fun _ _ -> 0.0) (Prng.create 1) tiny_problem))

let test_redeploy_rejects_bad_horizon () =
  Alcotest.check_raises "epochs" (Invalid_argument "Redeploy.simulate: need a positive horizon")
    (fun () ->
      ignore
        (Redeploy.simulate
           ~config:{ Redeploy.default_config with Redeploy.epochs = 0 }
           (Prng.create 1) ec2
           ~graph:(Graphs.Digraph.create ~n:2 [ (0, 1) ])
           ~over_allocation:0.1))

(* ---------- Measurement scheme direction coverage ---------- *)

let test_staged_eventually_covers_both_directions () =
  let env = Cloudsim.Env.allocate (Prng.create 11) ec2 ~count:6 in
  let m = Netmeasure.Schemes.staged (Prng.create 12) env ~ks:5 ~stages:2000 in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j then
        Alcotest.(check bool)
          (Printf.sprintf "pair (%d,%d) sampled" i j)
          true
          (m.Netmeasure.Schemes.samples.(i).(j) > 0)
    done
  done

(* ---------- IP distance granularity ---------- *)

let test_ip_distance_granularity () =
  let env = Cloudsim.Env.allocate (Prng.create 13) ec2 ~count:10 in
  (* Finer granularity can only refine (weakly increase) distances. *)
  for i = 0 to 9 do
    for j = 0 to 9 do
      if i <> j then begin
        let d8 = Netmeasure.Approx.ip_distance ~granularity:8 env i j in
        let d4 = Netmeasure.Approx.ip_distance ~granularity:4 env i j in
        Alcotest.(check bool) "finer granularity >= blocks" true (d4 >= d8)
      end
    done
  done;
  Alcotest.check_raises "granularity 0"
    (Invalid_argument "Approx.ip_distance: granularity out of [1,31]")
    (fun () -> ignore (Netmeasure.Approx.ip_distance ~granularity:0 env 0 1))

(* ---------- CP iteration time limit ---------- *)

let test_cp_iteration_time_limit () =
  let rng = Prng.create 17 in
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let m = 12 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let options =
    {
      Cp_solver.clusters = Some 10;
      time_limit = 5.0;
      iteration_time_limit = Some 0.2;
      use_labeling = true;
      bootstrap_trials = 10;
      symmetry_breaking = true;
    }
  in
  let r = Cp_solver.solve ~options (Prng.create 18) p in
  Alcotest.(check bool) "valid" true (Types.is_valid p r.Cp_solver.plan)

(* ---------- Misc surface ---------- *)

let test_objective_strings () =
  Alcotest.(check string) "ll" "longest-link" (Cost.objective_to_string Cost.Longest_link);
  Alcotest.(check string) "lp" "longest-path" (Cost.objective_to_string Cost.Longest_path)

let test_pp_plan () =
  let s = Format.asprintf "%a" Types.pp_plan [| 3; 1 |] in
  Alcotest.(check string) "rendering" "[0->3; 1->1]" s

let test_cdf_inverse_extremes () =
  let c = Stats.Cdf.of_samples [| 5.0; 1.0; 3.0 |] in
  check_float "q=0 clamps to min" 1.0 (Stats.Cdf.inverse c 0.0);
  check_float "q=1 is max" 5.0 (Stats.Cdf.inverse c 1.0)

let test_weighted_lp_via_mip_small () =
  (* Weighted longest path through the MIP: a 2-edge path where the second
     edge weighs 10x, so the optimum places that edge on the cheapest
     instance link. *)
  let graph = Graphs.Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let costs =
    [|
      [| 0.0; 1.0; 4.0; 2.0 |];
      [| 1.0; 0.0; 2.0; 3.0 |];
      [| 4.0; 2.0; 0.0; 0.5 |];
      [| 2.0; 3.0; 0.5; 0.0 |];
    |]
  in
  let p = Types.problem ~graph ~costs in
  let w = Weighted.make p ~weight:(fun i _ -> if i = 1 then 10.0 else 1.0) in
  let r =
    Weighted.solve_mip
      ~options:{ Mip_solver.default_options with Mip_solver.time_limit = 30.0 }
      Cost.Longest_path (Prng.create 19) w
  in
  (* Exhaustive optimum of the weighted path objective. *)
  let best = ref infinity in
  for a = 0 to 3 do
    for b = 0 to 3 do
      for c = 0 to 3 do
        if a <> b && b <> c && a <> c then
          best := Float.min !best (Weighted.longest_path w [| a; b; c |])
      done
    done
  done;
  check_float ~tol:1e-6 "weighted LP optimum" !best r.Mip_solver.cost

(* ---------- Overlap (Sect. 2.2.2) ---------- *)

let test_overlap_analysis_consistency () =
  let config =
    {
      Overlap.default_config with
      Overlap.measurement_seconds = 20.0;
      total_ticks = 40_000;
      solver_budget = 1.0;
    }
  in
  let a = Overlap.analyze ~config (Prng.create 21) ec2 ~rows:3 ~cols:3 ~over_allocation:0.2 in
  Alcotest.(check bool) "sequential positive" true (a.Overlap.sequential_seconds > 0.0);
  Alcotest.(check bool) "overlapped positive" true (a.Overlap.overlapped_seconds > 0.0);
  Alcotest.(check bool) "some work during measurement" true
    (a.Overlap.ticks_during_measurement > 0);
  (* Noisy measurements cannot yield a better plan than clean ones under
     the true costs (they can tie). *)
  Alcotest.(check bool) "noisy plan no better" true
    (a.Overlap.overlapped_plan_cost >= a.Overlap.sequential_plan_cost -. 1e-9);
  check_float "headroom definition"
    (a.Overlap.sequential_seconds -. a.Overlap.overlapped_seconds)
    (Overlap.migration_headroom a)

let test_overlap_free_migration_wins () =
  (* With zero migration cost and zero noise, overlapping strictly
     dominates: the work done during measurement is pure gain. *)
  let config =
    {
      Overlap.measurement_seconds = 20.0;
      interference = 0.1;
      noise_sigma = 0.0;
      migration_seconds = 0.0;
      total_ticks = 40_000;
      solver_budget = 1.0;
    }
  in
  let a = Overlap.analyze ~config (Prng.create 22) ec2 ~rows:3 ~cols:3 ~over_allocation:0.2 in
  Alcotest.(check bool)
    (Printf.sprintf "overlap %.1f < sequential %.1f" a.Overlap.overlapped_seconds
       a.Overlap.sequential_seconds)
    true
    (a.Overlap.overlapped_seconds < a.Overlap.sequential_seconds)

(* ---------- Régin filtering soundness (property) ---------- *)

let regin_soundness =
  QCheck.Test.make ~name:"alldifferent filtering never removes solution values" ~count:60
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      (* Random domains over n values for n variables, then compare the
         propagated domains against the union of actual solutions found by
         exhaustive enumeration. *)
      let module D = Cp.Domain in
      let csp = Cp.Csp.create ~nvars:n ~nvalues:n in
      Cp.Csp.add_alldifferent csp;
      for v = 0 to n - 1 do
        Cp.Csp.restrict csp ~var:v ~allowed:(fun value ->
            value = (v + seed) mod n || Prng.uniform rng < 0.6)
      done;
      let before = Array.init n (fun v -> D.to_list (Cp.Csp.domain csp v)) in
      (* Enumerate all permutations consistent with the initial domains. *)
      let solutions = ref [] in
      let assignment = Array.make n (-1) in
      let used = Array.make n false in
      let rec enumerate v =
        if v = n then solutions := Array.copy assignment :: !solutions
        else
          List.iter
            (fun value ->
              if not used.(value) then begin
                used.(value) <- true;
                assignment.(v) <- value;
                enumerate (v + 1);
                used.(value) <- false
              end)
            before.(v)
      in
      enumerate 0;
      match Cp.Csp.propagate csp with
      | Cp.Csp.Failure -> !solutions = []
      | _ ->
          (* Every value appearing in some solution must survive. *)
          List.for_all
            (fun sol ->
              Array.to_list sol
              |> List.mapi (fun v value -> D.mem (Cp.Csp.domain csp v) value)
              |> List.for_all (fun b -> b))
            !solutions)

(* ---------- Parallel R2 ---------- *)

let test_r2_parallel_valid_and_counts () =
  let rng = Prng.create 31 in
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let m = 11 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let plan, cost, trials =
    Random_search.r2_parallel ~domains:3 (Prng.create 32) Cost.Longest_link p ~time_limit:0.3
  in
  Alcotest.(check bool) "valid" true (Types.is_valid p plan);
  check_float "cost consistent" (Cost.longest_link p plan) cost;
  Alcotest.(check bool) "many trials across domains" true (trials > 100)

let test_r2_parallel_no_worse_than_serial () =
  let rng = Prng.create 33 in
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let m = 10 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let _, serial, serial_trials =
    Random_search.r2 (Prng.create 34) Cost.Longest_link p ~time_limit:0.3
  in
  let _, parallel, parallel_trials =
    Random_search.r2_parallel ~domains:4 (Prng.create 34) Cost.Longest_link p ~time_limit:0.3
  in
  (* Parallelism is about throughput, but only when cores exist: on a
     single-core host the domains time-slice and add overhead, so the
     throughput claim is only checked on multicore machines. *)
  if Domain.recommended_domain_count () > 1 then
    Alcotest.(check bool)
      (Printf.sprintf "throughput: parallel %d > serial %d" parallel_trials serial_trials)
      true
      (parallel_trials > serial_trials)
  else Alcotest.(check bool) "ran trials" true (parallel_trials > 0);
  (* Both searches sample the same space, so each must at least beat the
     all-time-worst random plan; comparing the two best costs directly
     would depend on how many trials the scheduler let each side run,
     which is exactly the kind of wall-clock coupling tests cannot
     assume. *)
  Alcotest.(check bool) "parallel found a finite cost" true (Float.is_finite parallel);
  Alcotest.(check bool) "serial found a finite cost" true (Float.is_finite serial)

(* ---------- Road network substrate ---------- *)

let test_roadnet_grid_connected () =
  let rng = Prng.create 41 in
  for _ = 1 to 5 do
    let net = Workloads.Roadnet.grid rng ~rows:6 ~cols:6 ~keep:0.7 in
    Alcotest.(check int) "intersections" 36 (Workloads.Roadnet.intersection_count net);
    Alcotest.(check bool) "segments within grid bounds" true
      (Workloads.Roadnet.segment_count net <= 2 * 5 * 6);
    (* Partitioning into one part must reach everything: connectivity. *)
    let part = Workloads.Roadnet.partition rng net ~parts:1 in
    Alcotest.(check int) "single part covers all" 36 part.Workloads.Roadnet.sizes.(0)
  done

let test_roadnet_partition_properties () =
  let rng = Prng.create 43 in
  let net = Workloads.Roadnet.grid rng ~rows:8 ~cols:8 ~keep:0.85 in
  let part = Workloads.Roadnet.partition rng net ~parts:4 in
  Alcotest.(check int) "four parts" 4 (Array.length part.Workloads.Roadnet.sizes);
  Alcotest.(check int) "sizes sum to n" 64
    (Array.fold_left ( + ) 0 part.Workloads.Roadnet.sizes);
  Array.iter
    (fun p -> Alcotest.(check bool) "assigned" true (p >= 0 && p < 4))
    part.Workloads.Roadnet.assignment;
  Alcotest.(check bool) "reasonably balanced" true (Workloads.Roadnet.balance part < 4.0);
  Alcotest.(check bool) "has cut edges" true (part.Workloads.Roadnet.cut_edges > 0)

let test_roadnet_communication_graph () =
  let rng = Prng.create 47 in
  let net = Workloads.Roadnet.grid rng ~rows:8 ~cols:8 ~keep:0.9 in
  let part = Workloads.Roadnet.partition rng net ~parts:6 in
  let g = Workloads.Roadnet.communication_graph net part in
  Alcotest.(check int) "one node per partition" 6 (Graphs.Digraph.n g);
  Alcotest.(check bool) "connected" true (Graphs.Digraph.is_connected_undirected g);
  (* Both directions present: partitions exchange boundary traffic. *)
  Array.iter
    (fun (a, b) ->
      Alcotest.(check bool) "symmetric" true (Graphs.Digraph.mem_edge g b a))
    (Graphs.Digraph.edges g)

let test_roadnet_traffic_end_to_end () =
  (* Full chain: road network -> partitions -> communication graph ->
     ClouDiA deployment -> deadline fractions. *)
  let rng = Prng.create 53 in
  let net = Workloads.Roadnet.grid rng ~rows:8 ~cols:8 ~keep:0.8 in
  let part = Workloads.Roadnet.partition rng net ~parts:8 in
  let graph = Workloads.Roadnet.communication_graph net part in
  let env = Cloudsim.Env.allocate rng ec2 ~count:10 in
  let problem = Types.problem ~graph ~costs:(Cloudsim.Env.mean_matrix env) in
  let plan =
    (Cp_solver.solve
       ~options:
         {
           Cp_solver.clusters = Some 20;
           time_limit = 2.0;
           iteration_time_limit = None;
           use_labeling = true;
           bootstrap_trials = 10;
           symmetry_breaking = true;
         }
       (Prng.create 54) problem)
      .Cp_solver.plan
  in
  let o =
    Workloads.Traffic.run (Prng.create 55) env ~plan ~graph ~periods:20 ~rounds_per_period:40
      ~deadline_seconds:1.0
  in
  Alcotest.(check int) "ran all periods" 20 o.Workloads.Traffic.periods_total

let test_cp_value_order_same_optimum () =
  (* The heuristic reorders branching only; with full budget both orders
     prove the same optimal cost. *)
  let rng = Prng.create 61 in
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3 in
  let m = 8 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let options =
    {
      Cp_solver.clusters = None;
      time_limit = 20.0;
      iteration_time_limit = None;
      use_labeling = true;
      bootstrap_trials = 10;
      symmetry_breaking = true;
    }
  in
  let with_order = Cp_solver.solve ~options ~order_values:true (Prng.create 62) p in
  let without = Cp_solver.solve ~options ~order_values:false (Prng.create 62) p in
  Alcotest.(check bool) "both proved" true
    (with_order.Cp_solver.proven_optimal && without.Cp_solver.proven_optimal);
  check_float "same optimum" with_order.Cp_solver.cost without.Cp_solver.cost

let suite =
  [
    Alcotest.test_case "advisor anneal strategy" `Quick test_advisor_anneal_strategy;
    Alcotest.test_case "advisor anneal longest path" `Quick test_advisor_anneal_longest_path;
    Alcotest.test_case "strategy names" `Quick test_strategy_names;
    Alcotest.test_case "anneal rejects bad options" `Quick test_anneal_rejects_bad_options;
    Alcotest.test_case "cp rejects bad weight" `Quick test_cp_rejects_nonpositive_weight;
    Alcotest.test_case "mip rejects bad weight" `Quick test_mip_rejects_nonpositive_weight;
    Alcotest.test_case "redeploy rejects bad horizon" `Quick test_redeploy_rejects_bad_horizon;
    Alcotest.test_case "staged covers both directions" `Quick
      test_staged_eventually_covers_both_directions;
    Alcotest.test_case "ip distance granularity" `Quick test_ip_distance_granularity;
    Alcotest.test_case "cp iteration time limit" `Quick test_cp_iteration_time_limit;
    Alcotest.test_case "objective strings" `Quick test_objective_strings;
    Alcotest.test_case "pp_plan" `Quick test_pp_plan;
    Alcotest.test_case "cdf inverse extremes" `Quick test_cdf_inverse_extremes;
    Alcotest.test_case "weighted LP via MIP" `Slow test_weighted_lp_via_mip_small;
    Alcotest.test_case "overlap analysis consistency" `Quick test_overlap_analysis_consistency;
    Alcotest.test_case "overlap free migration wins" `Quick test_overlap_free_migration_wins;
    QCheck_alcotest.to_alcotest ~long:false regin_soundness;
    Alcotest.test_case "r2 parallel valid" `Quick test_r2_parallel_valid_and_counts;
    Alcotest.test_case "r2 parallel throughput" `Quick test_r2_parallel_no_worse_than_serial;
    Alcotest.test_case "roadnet grid connected" `Quick test_roadnet_grid_connected;
    Alcotest.test_case "roadnet partition" `Quick test_roadnet_partition_properties;
    Alcotest.test_case "roadnet communication graph" `Quick test_roadnet_communication_graph;
    Alcotest.test_case "roadnet traffic end-to-end" `Quick test_roadnet_traffic_end_to_end;
    Alcotest.test_case "cp value order same optimum" `Quick test_cp_value_order_same_optimum;
  ]
