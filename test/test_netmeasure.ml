(* Tests for the measurement schemes and distance approximations. *)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let make_env ?(seed = 5) ?(count = 16) () =
  Cloudsim.Env.allocate (Prng.create seed) ec2 ~count

let test_token_passing_covers_all_pairs () =
  let env = make_env () in
  let m = Netmeasure.Schemes.token_passing (Prng.create 1) env ~samples_per_pair:3 in
  let n = Cloudsim.Env.count env in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        Alcotest.(check int) "3 samples" 3 m.Netmeasure.Schemes.samples.(i).(j);
        Alcotest.(check bool) "finite mean" true (Float.is_finite m.Netmeasure.Schemes.means.(i).(j))
      end
    done
  done

let test_token_passing_accuracy () =
  (* With many samples, token passing converges to the true means. *)
  let env = make_env ~count:8 () in
  let m = Netmeasure.Schemes.token_passing (Prng.create 2) env ~samples_per_pair:400 in
  let worst = ref 0.0 in
  for i = 0 to 7 do
    for j = 0 to 7 do
      if i <> j then begin
        let err =
          Float.abs (m.Netmeasure.Schemes.means.(i).(j) -. Cloudsim.Env.mean_latency env i j)
          /. Cloudsim.Env.mean_latency env i j
        in
        if err > !worst then worst := err
      end
    done
  done;
  Alcotest.(check bool) "max relative error < 15%" true (!worst < 0.15)

let test_uncoordinated_inflates () =
  (* Uncoordinated measurements include interference inflation, so their
     grand mean must exceed token passing's. *)
  let env = make_env ~count:20 () in
  let tp = Netmeasure.Schemes.token_passing (Prng.create 3) env ~samples_per_pair:20 in
  let un = Netmeasure.Schemes.uncoordinated (Prng.create 4) env ~rounds:2000 in
  let grand m =
    let acc = ref 0.0 and k = ref 0 in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j v ->
            if i <> j && Float.is_finite v then begin
              acc := !acc +. v;
              incr k
            end)
          row)
      m.Netmeasure.Schemes.means;
    !acc /. float_of_int !k
  in
  Alcotest.(check bool) "inflated" true (grand un > grand tp)

let test_staged_unbiased () =
  (* Staged must match token passing closely after normalization
     (the Fig. 4 claim). *)
  let env = make_env ~count:10 () in
  let tp = Netmeasure.Schemes.token_passing (Prng.create 5) env ~samples_per_pair:200 in
  let st = Netmeasure.Schemes.staged (Prng.create 6) env ~ks:10 ~stages:4000 in
  let tv = Netmeasure.Schemes.link_vector tp in
  let sv = Netmeasure.Schemes.link_vector st in
  Alcotest.(check bool) "all staged pairs sampled" true
    (Array.for_all Float.is_finite sv);
  let errors = Stats.Error.normalized_relative_errors ~baseline:tv sv in
  let median_err = Stats.Summary.median errors in
  Alcotest.(check bool) "median relative error small" true (median_err < 0.1)

let test_staged_more_accurate_than_uncoordinated () =
  (* The headline of Fig. 4. Compare normalized RMSE against ground truth
     means (token passing is itself an estimate; ground truth is cleaner). *)
  let env = make_env ~count:16 () in
  let truth = Netmeasure.Schemes.link_vector
      { Netmeasure.Schemes.means = Cloudsim.Env.mean_matrix env;
        samples = [||]; sim_seconds = 0.0 }
  in
  let st = Netmeasure.Schemes.staged (Prng.create 7) env ~ks:10 ~stages:6000 in
  let un = Netmeasure.Schemes.uncoordinated (Prng.create 8) env ~rounds:8000 in
  let sv = Netmeasure.Schemes.link_vector st in
  let uv = Netmeasure.Schemes.link_vector un in
  Alcotest.(check bool) "uncoordinated covered" true (Array.for_all Float.is_finite uv);
  let st_err = Stats.Error.normalized_rmse ~baseline:truth sv in
  let un_err = Stats.Error.normalized_rmse ~baseline:truth uv in
  Alcotest.(check bool)
    (Printf.sprintf "staged (%.4f) beats uncoordinated (%.4f)" st_err un_err)
    true (st_err < un_err)

let test_staged_parallel_faster_than_token () =
  let env = make_env ~count:16 () in
  (* Comparable sample volumes: token 10/pair = 2400 samples; staged with
     ks=10 and 8 pairs per stage needs 30 stages for 2400 samples. *)
  let tp = Netmeasure.Schemes.token_passing (Prng.create 9) env ~samples_per_pair:10 in
  let st = Netmeasure.Schemes.staged (Prng.create 10) env ~ks:10 ~stages:30 in
  Alcotest.(check bool) "staged faster" true
    (st.Netmeasure.Schemes.sim_seconds < tp.Netmeasure.Schemes.sim_seconds)

let test_staged_exchange_records_both_directions () =
  (* Each staged exchange yields a sample in both directions, so the
     sample-count matrix is symmetric even when the matchings happened to
     pick a pair in one order only. *)
  let env = make_env ~count:10 () in
  let m = Netmeasure.Schemes.staged (Prng.create 12) env ~ks:4 ~stages:9 in
  let n = Cloudsim.Env.count env in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Alcotest.(check int)
        (Printf.sprintf "samples symmetric (%d,%d)" i j)
        m.Netmeasure.Schemes.samples.(j).(i)
        m.Netmeasure.Schemes.samples.(i).(j);
      if i <> j && m.Netmeasure.Schemes.samples.(i).(j) > 0 then
        Alcotest.(check bool) "both means present" true
          (Float.is_finite m.Netmeasure.Schemes.means.(i).(j)
          && Float.is_finite m.Netmeasure.Schemes.means.(j).(i))
    done
  done

let test_staged_time_budget_rule () =
  Alcotest.(check (float 1e-9)) "100 instances" 5.0
    (Netmeasure.Schemes.staged_time_for ~n:100 ~reference_minutes:5.0);
  Alcotest.(check (float 1e-9)) "50 instances" 2.5
    (Netmeasure.Schemes.staged_time_for ~n:50 ~reference_minutes:5.0)

let test_link_vector_shape () =
  let env = make_env ~count:5 () in
  let m = Netmeasure.Schemes.token_passing (Prng.create 11) env ~samples_per_pair:1 in
  Alcotest.(check int) "n(n-1) links" 20 (Array.length (Netmeasure.Schemes.link_vector m))

(* ---------- Approx ---------- *)

let test_ip_distance_properties () =
  let env = make_env ~count:20 () in
  for i = 0 to 19 do
    Alcotest.(check int) "self" 0 (Netmeasure.Approx.ip_distance env i i);
    for j = 0 to 19 do
      if i <> j then begin
        let d = Netmeasure.Approx.ip_distance env i j in
        Alcotest.(check bool) "in [1,4]" true (d >= 1 && d <= 4);
        Alcotest.(check int) "symmetric" d (Netmeasure.Approx.ip_distance env j i)
      end
    done
  done

let test_ip_distance_same_rack_is_1 () =
  let env = make_env ~count:30 () in
  let found = ref false in
  for i = 0 to 29 do
    for j = 0 to 29 do
      if i <> j && Cloudsim.Env.hop_count env i j = 1 then begin
        found := true;
        Alcotest.(check int) "same rack shares /24" 1 (Netmeasure.Approx.ip_distance env i j)
      end
    done
  done;
  if not !found then Alcotest.fail "allocation produced no same-rack pair"

let test_latency_by_group_partitions_all_links () =
  let env = make_env ~count:12 () in
  let groups =
    Netmeasure.Approx.latency_by_group env ~group:(Netmeasure.Approx.hop_count env)
  in
  let total = List.fold_left (fun acc (_, a) -> acc + Array.length a) 0 groups in
  Alcotest.(check int) "all ordered pairs" (12 * 11) total;
  (* Groups sorted ascending, and within each group latencies ascending. *)
  let rec keys_sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && keys_sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "group keys ascending" true (keys_sorted groups);
  List.iter
    (fun (_, lats) ->
      Array.iteri
        (fun k v -> if k > 0 then Alcotest.(check bool) "sorted" true (v >= lats.(k - 1)))
        lats)
    groups

let test_hop_count_non_monotone_in_latency () =
  (* Appendix 2's negative result: with per-link offsets, hop count does
     not determine latency order — there exist inversions. *)
  let env = make_env ~count:40 () in
  let groups =
    Netmeasure.Approx.latency_by_group env ~group:(Netmeasure.Approx.hop_count env)
  in
  if List.length groups >= 2 then
    Alcotest.(check bool) "violations exist" true
      (Netmeasure.Approx.monotonicity_violations groups > 0)

let test_monotonicity_violations_counts () =
  let groups = [ (1, [| 1.0; 5.0 |]); (2, [| 2.0; 6.0 |]) ] in
  (* Inversions: 5.0 > 2.0 only. *)
  Alcotest.(check int) "one inversion" 1 (Netmeasure.Approx.monotonicity_violations groups)

let suite =
  [
    Alcotest.test_case "token passing covers all pairs" `Quick test_token_passing_covers_all_pairs;
    Alcotest.test_case "token passing accuracy" `Quick test_token_passing_accuracy;
    Alcotest.test_case "uncoordinated inflates" `Quick test_uncoordinated_inflates;
    Alcotest.test_case "staged unbiased" `Quick test_staged_unbiased;
    Alcotest.test_case "staged beats uncoordinated" `Quick
      test_staged_more_accurate_than_uncoordinated;
    Alcotest.test_case "staged faster than token" `Quick test_staged_parallel_faster_than_token;
    Alcotest.test_case "staged records both directions" `Quick
      test_staged_exchange_records_both_directions;
    Alcotest.test_case "staged time budget rule" `Quick test_staged_time_budget_rule;
    Alcotest.test_case "link vector shape" `Quick test_link_vector_shape;
    Alcotest.test_case "ip distance properties" `Quick test_ip_distance_properties;
    Alcotest.test_case "ip distance same rack" `Quick test_ip_distance_same_rack_is_1;
    Alcotest.test_case "latency by group partitions" `Quick
      test_latency_by_group_partitions_all_links;
    Alcotest.test_case "hop count non-monotone" `Quick test_hop_count_non_monotone_in_latency;
    Alcotest.test_case "monotonicity violation count" `Quick test_monotonicity_violations_counts;
  ]
