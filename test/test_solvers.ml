open Cloudia

(* Tests for the exact solvers (CP, MIP), the hardness reductions, and the
   end-to-end advisor. Sizes are kept tiny so the suites stay fast; the
   cross-check oracle is the brute-force solver. *)

let check_float name ?(tol = 1e-6) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

let random_problem ?(nodes = 5) ?(instances = 7) ?(extra_edges = 3) seed =
  let rng = Prng.create seed in
  let graph = Graphs.Templates.random_connected rng ~n:nodes ~extra_edges in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

let cp_exact =
  {
    Cp_solver.clusters = None;
    time_limit = 20.0;
    iteration_time_limit = None;
    use_labeling = true;
    bootstrap_trials = 10;
    symmetry_breaking = true;
  }

(* ---------- CP solver ---------- *)

let test_cp_matches_brute_force () =
  for seed = 1 to 8 do
    let p = random_problem seed in
    let r = Cp_solver.solve ~options:cp_exact (Prng.create seed) p in
    let _, optimal = Brute_force.solve Cost.Longest_link p in
    Alcotest.(check bool) "valid plan" true (Types.is_valid p r.Cp_solver.plan);
    Alcotest.(check bool) "proved" true r.Cp_solver.proven_optimal;
    check_float (Printf.sprintf "seed %d optimal" seed) optimal r.Cp_solver.cost
  done

let test_cp_trace_decreasing () =
  let p = random_problem ~nodes:6 ~instances:8 21 in
  let r = Cp_solver.solve ~options:cp_exact (Prng.create 1) p in
  let costs = List.map snd r.Cp_solver.trace in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "trace non-increasing" true (non_increasing costs);
  Alcotest.(check bool) "trace ends at final cost" true
    (match List.rev costs with last :: _ -> Float.abs (last -. r.Cp_solver.cost) < 1e-9 | [] -> false)

let test_cp_with_clustering_bounded_error () =
  (* Clustering approximates the objective: the found cost can exceed the
     optimum, but never by more than the full cost range (sanity bound),
     and the plan must be valid. With k large the answer is exact. *)
  let p = random_problem ~nodes:6 ~instances:8 23 in
  let _, optimal = Brute_force.solve Cost.Longest_link p in
  let with_k k =
    let options = { cp_exact with Cp_solver.clusters = Some k } in
    (Cp_solver.solve ~options (Prng.create 2) p).Cp_solver.cost
  in
  Alcotest.(check bool) "k=5 over-approximates at worst" true (with_k 5 >= optimal -. 1e-9);
  check_float "k=100 is exact (more clusters than distinct values)" optimal (with_k 100)

let test_cp_labeling_ablation_same_result () =
  let p = random_problem ~nodes:6 ~instances:8 25 in
  let without =
    Cp_solver.solve ~options:{ cp_exact with Cp_solver.use_labeling = false }
      (Prng.create 3) p
  in
  let with_l = Cp_solver.solve ~options:cp_exact (Prng.create 3) p in
  check_float "same optimum either way" with_l.Cp_solver.cost without.Cp_solver.cost

let test_cp_symmetry_breaking_racks () =
  (* Rack-structured matrix: 5 racks of 3 instances at 0.25 ms inside a
     rack, 1.0 ms across. A 6-node mesh cannot fit in a 3-instance rack, so
     the optimum is 1.0 ms, and proving it means refuting the 0.25 ms
     threshold graph (disjoint 3-cliques). Racks are exact
     interchangeability classes: the broken search must reach the same
     proven cost while visiting strictly fewer nodes. *)
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3 in
  let m = 15 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' ->
            if j = j' then 0.0 else if j / 3 = j' / 3 then 0.25 else 1.0))
  in
  let p = Types.problem ~graph ~costs in
  (* Labeling off: at this tiny scale the degree-compatibility root filter
     refutes the threshold by itself (0 nodes both ways), which would leave
     nothing for the node-count comparison to measure. *)
  let run symmetry_breaking =
    Cp_solver.solve
      ~options:{ cp_exact with Cp_solver.symmetry_breaking; use_labeling = false }
      (Prng.create 11) p
  in
  let sym = run true in
  let plain = run false in
  Alcotest.(check bool) "sym proved" true sym.Cp_solver.proven_optimal;
  Alcotest.(check bool) "plain proved" true plain.Cp_solver.proven_optimal;
  check_float "optimum is one cross-rack hop" 1.0 sym.Cp_solver.cost;
  check_float "same cost either way" plain.Cp_solver.cost sym.Cp_solver.cost;
  Alcotest.(check bool)
    (Printf.sprintf "fewer nodes with symmetry breaking (%d < %d)" sym.Cp_solver.nodes
       plain.Cp_solver.nodes)
    true
    (sym.Cp_solver.nodes < plain.Cp_solver.nodes);
  Alcotest.(check bool) "valid plan" true (Types.is_valid p sym.Cp_solver.plan)

let test_cp_respects_iteration_cap () =
  (* Budget exhaustion must still yield a valid anytime plan. The cap is
     on feasibility iterations, not the wall clock, so the test cannot be
     disturbed by a slow or overloaded CI machine. *)
  let p = random_problem ~nodes:12 ~instances:16 ~extra_edges:12 27 in
  let options = { cp_exact with Cp_solver.time_limit = 60.0 } in
  let r = Cp_solver.solve ~options ~max_iterations:2 (Prng.create 4) p in
  Alcotest.(check bool) "at most two iterations" true (r.Cp_solver.iterations <= 2);
  Alcotest.(check bool) "valid plan anyway" true (Types.is_valid p r.Cp_solver.plan)

let test_cp_stops_cooperatively () =
  (* A stop callback that fires immediately leaves only the bootstrap
     incumbent, which must never be worse than best-of-10 random. *)
  let p = random_problem ~nodes:6 ~instances:8 28 in
  let r = Cp_solver.solve ~options:cp_exact ~stop:(fun () -> true) (Prng.create 5) p in
  Alcotest.(check int) "no iterations ran" 0 r.Cp_solver.iterations;
  let bootstrap = Random_search.best_of (Prng.create 5) Cost.Longest_link p 10 in
  Alcotest.(check bool) "bootstrap quality" true
    (r.Cp_solver.cost <= Cost.longest_link p bootstrap +. 1e-9)

let test_cp_beats_or_matches_greedy () =
  for seed = 31 to 36 do
    let p = random_problem ~nodes:6 ~instances:8 seed in
    let r = Cp_solver.solve ~options:cp_exact (Prng.create seed) p in
    let g2 = Cost.longest_link p (Greedy.g2 p) in
    Alcotest.(check bool) "CP <= G2" true (r.Cp_solver.cost <= g2 +. 1e-9)
  done

(* ---------- MIP solver ---------- *)

let mip_opts = { Mip_solver.default_options with Mip_solver.time_limit = 30.0 }

let test_mip_ll_matches_brute_force () =
  for seed = 1 to 3 do
    let p = random_problem ~nodes:4 ~instances:5 ~extra_edges:2 seed in
    let r = Mip_solver.solve_longest_link ~options:mip_opts (Prng.create seed) p in
    let _, optimal = Brute_force.solve Cost.Longest_link p in
    Alcotest.(check bool) "valid" true (Types.is_valid p r.Mip_solver.plan);
    check_float (Printf.sprintf "seed %d" seed) optimal r.Mip_solver.cost
  done

let tree_problem seed instances =
  let graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:1 in
  let rng = Prng.create seed in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

let test_mip_lp_matches_brute_force () =
  for seed = 1 to 3 do
    let p = tree_problem seed 5 in
    let r = Mip_solver.solve_longest_path ~options:mip_opts (Prng.create seed) p in
    let _, optimal = Brute_force.solve Cost.Longest_path p in
    Alcotest.(check bool) "valid" true (Types.is_valid p r.Mip_solver.plan);
    check_float (Printf.sprintf "seed %d" seed) optimal r.Mip_solver.cost
  done

let test_mip_lp_rejects_cyclic () =
  let graph = Graphs.Templates.ring ~n:3 in
  let costs = Array.init 4 (fun j -> Array.init 4 (fun j' -> if j = j' then 0.0 else 1.0)) in
  let p = Types.problem ~graph ~costs in
  Alcotest.check_raises "cyclic"
    (Invalid_argument "Mip_solver.solve_longest_path: communication graph must be acyclic")
    (fun () -> ignore (Mip_solver.solve_longest_path (Prng.create 1) p))

let test_mip_trace_non_increasing () =
  let p = random_problem ~nodes:4 ~instances:5 ~extra_edges:2 41 in
  let r = Mip_solver.solve_longest_link ~options:mip_opts (Prng.create 5) p in
  let costs = List.map snd r.Mip_solver.trace in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "non-increasing" true (non_increasing costs)

let test_mip_time_limit_returns_bootstrap_quality () =
  (* With a tiny budget the MIP must still return at least the bootstrap
     incumbent (never worse than best-of-10 random). *)
  let p = random_problem ~nodes:5 ~instances:7 43 in
  let options = { mip_opts with Mip_solver.time_limit = 0.05 } in
  let r = Mip_solver.solve_longest_link ~options (Prng.create 6) p in
  let bootstrap = Random_search.best_of (Prng.create 6) Cost.Longest_link p 10 in
  Alcotest.(check bool) "no worse than bootstrap" true
    (r.Mip_solver.cost <= Cost.longest_link p bootstrap +. 1e-9)

(* ---------- Reductions ---------- *)

let test_llndp_reduction_positive () =
  (* The 4-ring embeds in a 5-node graph containing a 4-ring. *)
  let pattern = Graphs.Templates.ring ~n:4 in
  let target = Graphs.Digraph.create ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 4) ] in
  let p = Reduction.llndp_of_sip ~pattern ~target in
  let plan, cost = Brute_force.solve Cost.Longest_link p in
  check_float "cost 1 means embedding" 1.0 cost;
  Alcotest.(check bool) "witness embeds" true (Reduction.embeds ~pattern ~target plan)

let test_llndp_reduction_negative () =
  (* No 4-ring inside a path. *)
  let pattern = Graphs.Templates.ring ~n:4 in
  let target = Graphs.Digraph.create ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let p = Reduction.llndp_of_sip ~pattern ~target in
  let _, cost = Brute_force.solve Cost.Longest_link p in
  check_float "cost 2 means no embedding" 2.0 cost

let test_llndp_reduction_cp_agrees () =
  let pattern = Graphs.Templates.ring ~n:4 in
  let target = Graphs.Digraph.create ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 0); (4, 5) ] in
  let p = Reduction.llndp_of_sip ~pattern ~target in
  let r = Cp_solver.solve ~options:cp_exact (Prng.create 7) p in
  check_float "CP finds the embedding" 1.0 r.Cp_solver.cost;
  Alcotest.(check bool) "embeds" true (Reduction.embeds ~pattern ~target r.Cp_solver.plan)

let test_lpndp_reduction () =
  (* Pattern: path of 3 edges. Target contains such a path: optimal LP cost
     must be <= |E1| = 3 exactly when it embeds. *)
  let pattern = Graphs.Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let target = Graphs.Digraph.create ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let p = Reduction.lpndp_of_sip ~pattern ~target in
  let plan, cost = Brute_force.solve Cost.Longest_path p in
  Alcotest.(check bool) "cost <= |E1|" true (cost <= 3.0 +. 1e-9);
  Alcotest.(check bool) "embeds" true (Reduction.embeds ~pattern ~target plan)

let test_lpndp_reduction_negative () =
  (* A 3-edge path cannot embed into a 2-edge path plus isolated nodes. *)
  let pattern = Graphs.Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let target = Graphs.Digraph.create ~n:5 [ (0, 1); (1, 2) ] in
  let p = Reduction.lpndp_of_sip ~pattern ~target in
  let _, cost = Brute_force.solve Cost.Longest_path p in
  Alcotest.(check bool) "cost > |E1| means no embedding" true (cost > 3.0 +. 1e-9)

let test_distinct_costs_preserves_order () =
  let p = random_problem 51 in
  let q = Reduction.distinct_costs (Prng.create 8) p in
  let seen = Hashtbl.create 64 in
  let all_distinct = ref true in
  Lat_matrix.iter
    (fun j j' v ->
      if j <> j' then begin
        if Hashtbl.mem seen v then all_distinct := false;
        Hashtbl.add seen v ()
      end)
    q.Types.lat;
  Alcotest.(check bool) "all distinct" true !all_distinct

(* ---------- Advisor ---------- *)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let advisor_config strategy objective =
  {
    Advisor.graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3;
    objective;
    metric = Metrics.Mean;
    over_allocation = 0.2;
    samples_per_pair = 20;
    strategy;
  }

let test_advisor_end_to_end_strategies () =
  List.iter
    (fun strategy ->
      let report =
        Advisor.run (Prng.create 61) ec2 (advisor_config strategy Cost.Longest_link)
      in
      Alcotest.(check bool)
        (Advisor.strategy_to_string strategy ^ " valid plan")
        true
        (Types.is_valid report.Advisor.problem report.Advisor.plan);
      Alcotest.(check int) "allocation size" 8 (Cloudsim.Env.count report.Advisor.env);
      Alcotest.(check int) "terminated count" 2 (List.length report.Advisor.terminated);
      check_float "improvement formula" report.Advisor.improvement_pct
        (Cost.improvement ~default:report.Advisor.default_cost
           ~optimized:report.Advisor.cost))
    [
      Advisor.Greedy_g1;
      Advisor.Greedy_g2;
      Advisor.Random_r1 200;
      Advisor.Cp { cp_exact with Cp_solver.time_limit = 5.0 };
    ]

let test_advisor_exact_strategies_beat_default () =
  (* CP with full budget optimizes the measured objective, so it can never
     be worse than the default plan under that objective. *)
  let report =
    Advisor.run (Prng.create 62) ec2
      (advisor_config (Advisor.Cp { cp_exact with Cp_solver.time_limit = 5.0 })
         Cost.Longest_link)
  in
  Alcotest.(check bool) "CP <= default" true
    (report.Advisor.cost <= report.Advisor.default_cost +. 1e-9)

let test_advisor_longest_path_mip () =
  let config =
    {
      Advisor.graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:1;
      objective = Cost.Longest_path;
      metric = Metrics.Mean;
      over_allocation = 0.4;
      samples_per_pair = 10;
      strategy = Advisor.Mip { mip_opts with Mip_solver.time_limit = 10.0 };
    }
  in
  let report = Advisor.run (Prng.create 63) ec2 config in
  Alcotest.(check bool) "valid" true
    (Types.is_valid report.Advisor.problem report.Advisor.plan);
  Alcotest.(check bool) "LP cost positive" true (report.Advisor.cost > 0.0)

let test_advisor_rejects_cp_for_longest_path () =
  (* A DAG graph, so the pre-solve lint gate passes and the strategy/
     objective mismatch is what gets exercised. *)
  let config =
    {
      (advisor_config (Advisor.Cp cp_exact) Cost.Longest_path) with
      Advisor.graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:2;
    }
  in
  Alcotest.check_raises "cp + longest path"
    (Invalid_argument "Advisor: the CP strategy only supports the longest-link objective")
    (fun () -> ignore (Advisor.run (Prng.create 64) ec2 config))

let test_advisor_lint_gate_rejects_cyclic_lpndp () =
  (* mesh2d is cyclic: the longest-path objective on it must be caught by
     the lint gate (GRF005) before any solver runs, not surface as an
     exception deep inside Cost. *)
  let config = advisor_config Advisor.Greedy_g2 Cost.Longest_path in
  match Advisor.run (Prng.create 64) ec2 config with
  | exception Lint.Diagnostic.Failed ds ->
      Alcotest.(check bool) "GRF005 reported" true
        (List.exists (fun d -> d.Lint.Diagnostic.code = "GRF005") ds)
  | _ -> Alcotest.fail "expected Lint.Diagnostic.Failed"

let test_advisor_measurement_time_scales () =
  let r1 = Advisor.run (Prng.create 65) ec2 (advisor_config Advisor.Greedy_g2 Cost.Longest_link) in
  Alcotest.(check bool) "measurement minutes positive" true
    (r1.Advisor.measurement_minutes > 0.0)

let suite =
  [
    Alcotest.test_case "cp matches brute force" `Quick test_cp_matches_brute_force;
    Alcotest.test_case "cp trace decreasing" `Quick test_cp_trace_decreasing;
    Alcotest.test_case "cp clustering bounded error" `Quick test_cp_with_clustering_bounded_error;
    Alcotest.test_case "cp labeling ablation" `Quick test_cp_labeling_ablation_same_result;
    Alcotest.test_case "cp symmetry breaking racks" `Quick test_cp_symmetry_breaking_racks;
    Alcotest.test_case "cp iteration cap" `Quick test_cp_respects_iteration_cap;
    Alcotest.test_case "cp cooperative stop" `Quick test_cp_stops_cooperatively;
    Alcotest.test_case "cp beats greedy" `Quick test_cp_beats_or_matches_greedy;
    Alcotest.test_case "mip LL matches brute force" `Slow test_mip_ll_matches_brute_force;
    Alcotest.test_case "mip LP matches brute force" `Slow test_mip_lp_matches_brute_force;
    Alcotest.test_case "mip LP rejects cyclic" `Quick test_mip_lp_rejects_cyclic;
    Alcotest.test_case "mip trace non-increasing" `Slow test_mip_trace_non_increasing;
    Alcotest.test_case "mip time limit bootstrap" `Quick
      test_mip_time_limit_returns_bootstrap_quality;
    Alcotest.test_case "llndp reduction positive" `Quick test_llndp_reduction_positive;
    Alcotest.test_case "llndp reduction negative" `Quick test_llndp_reduction_negative;
    Alcotest.test_case "llndp reduction via cp" `Quick test_llndp_reduction_cp_agrees;
    Alcotest.test_case "lpndp reduction" `Quick test_lpndp_reduction;
    Alcotest.test_case "lpndp reduction negative" `Quick test_lpndp_reduction_negative;
    Alcotest.test_case "distinct costs" `Quick test_distinct_costs_preserves_order;
    Alcotest.test_case "advisor end-to-end" `Quick test_advisor_end_to_end_strategies;
    Alcotest.test_case "advisor cp beats default" `Quick test_advisor_exact_strategies_beat_default;
    Alcotest.test_case "advisor longest path mip" `Slow test_advisor_longest_path_mip;
    Alcotest.test_case "advisor rejects cp+lp" `Quick test_advisor_rejects_cp_for_longest_path;
    Alcotest.test_case "advisor lint gate rejects cyclic lpndp" `Quick
      test_advisor_lint_gate_rejects_cyclic_lpndp;
    Alcotest.test_case "advisor measurement time" `Quick test_advisor_measurement_time_scales;
  ]
