open Cloudia

(* Tests for the parallel solver portfolio: determinism of iteration-capped
   member sets, optimality via the shared-incumbent CP member, merged-trace
   monotonicity, cooperative cancellation, and argument validation. Problems
   are tiny so the domains finish in milliseconds even on one core. *)

let random_problem ?(nodes = 5) ?(instances = 7) ?(extra_edges = 3) seed =
  let rng = Prng.create seed in
  let graph = Graphs.Templates.random_connected rng ~n:nodes ~extra_edges in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

let tree_problem seed instances =
  let graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:1 in
  let rng = Prng.create seed in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

(* Every member here exhausts a fixed iteration budget (greedy is a pure
   function; R1 and annealing are capped), so the portfolio's outcome is a
   deterministic function of seed + member list no matter how the domains
   interleave. The generous time limit must never fire first. *)
let capped_members =
  [
    Portfolio.Greedy_g1;
    Portfolio.Greedy_g2;
    Portfolio.Random_r1 300;
    Portfolio.Anneal
      { Anneal.default_options with Anneal.time_limit = 60.0; max_moves = Some 2000 };
  ]

let capped_options =
  { Portfolio.members = capped_members; time_limit = 60.0; share_incumbent = true }

let test_portfolio_deterministic () =
  let p = random_problem 11 in
  let run () = Portfolio.solve ~options:capped_options (Prng.create 7) Cost.Longest_link p in
  let a = run () and b = run () in
  Alcotest.(check (array int)) "same plan" a.Portfolio.plan b.Portfolio.plan;
  Alcotest.(check (float 0.0)) "same cost" a.Portfolio.cost b.Portfolio.cost;
  Alcotest.(check int) "same winner" a.Portfolio.winner b.Portfolio.winner;
  List.iter2
    (fun (wa : Portfolio.worker) (wb : Portfolio.worker) ->
      Alcotest.(check (float 0.0)) "same worker best" wa.Portfolio.best_cost
        wb.Portfolio.best_cost;
      Alcotest.(check int) "same worker effort" wa.Portfolio.iterations
        wb.Portfolio.iterations)
    a.Portfolio.workers b.Portfolio.workers

let test_portfolio_matches_brute_force () =
  (* With an exact CP member the portfolio must land on the true optimum
     and report it proven, regardless of what the heuristics publish. *)
  for seed = 1 to 4 do
    let p = random_problem seed in
    let options =
      {
        Portfolio.members = Portfolio.default_members ~objective:Cost.Longest_link ~domains:4;
        time_limit = 30.0;
        share_incumbent = true;
      }
    in
    let r = Portfolio.solve ~options (Prng.create seed) Cost.Longest_link p in
    let _, optimal = Brute_force.solve Cost.Longest_link p in
    Alcotest.(check bool) "valid" true (Types.is_valid p r.Portfolio.plan);
    Alcotest.(check bool) "proven" true r.Portfolio.proven_optimal;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d optimal: expected %.6f got %.6f" seed optimal
         r.Portfolio.cost)
      true
      (Float.abs (optimal -. r.Portfolio.cost) <= 1e-9)
  done

let test_portfolio_no_worse_than_members () =
  (* The winning plan can never cost more than what any single worker
     ended with — the portfolio dominates its best member by construction. *)
  let p = random_problem 31 in
  let r = Portfolio.solve ~options:capped_options (Prng.create 5) Cost.Longest_link p in
  Alcotest.(check bool) "winner in range" true
    (r.Portfolio.winner >= 0 && r.Portfolio.winner < List.length capped_members);
  Alcotest.(check int) "one telemetry row per member" (List.length capped_members)
    (List.length r.Portfolio.workers);
  List.iter
    (fun (w : Portfolio.worker) ->
      Alcotest.(check bool) "portfolio <= member" true
        (r.Portfolio.cost <= w.Portfolio.best_cost +. 1e-9);
      Alcotest.(check bool) "time-to-best sane" true
        (w.Portfolio.time_to_best >= 0.0
        && w.Portfolio.time_to_best <= r.Portfolio.elapsed +. 1.0))
    r.Portfolio.workers

let test_portfolio_trace_monotonic () =
  let p = random_problem ~nodes:6 ~instances:8 17 in
  let r = Portfolio.solve ~options:capped_options (Prng.create 3) Cost.Longest_link p in
  let rec check_sorted = function
    | (t1, c1) :: ((t2, c2) :: _ as rest) ->
        Alcotest.(check bool) "times non-decreasing" true (t1 <= t2);
        Alcotest.(check bool) "costs strictly decreasing" true (c1 > c2);
        check_sorted rest
    | _ -> ()
  in
  check_sorted r.Portfolio.trace;
  (match List.rev r.Portfolio.trace with
  | (_, last) :: _ ->
      Alcotest.(check (float 1e-9)) "trace ends at final cost" r.Portfolio.cost last
  | [] -> Alcotest.fail "empty trace")

let test_portfolio_cancels_on_optimality () =
  (* The exact CP member proves optimality on a tiny problem almost
     instantly; the R2 members must then stop cooperatively long before
     the 30 s deadline. *)
  let p = random_problem ~nodes:4 ~instances:5 ~extra_edges:1 41 in
  let options =
    {
      Portfolio.members =
        [
          Portfolio.Cp { Cp_solver.default_options with Cp_solver.clusters = None };
          Portfolio.Random_r2;
          Portfolio.Random_r2;
        ];
      time_limit = 30.0;
      share_incumbent = true;
    }
  in
  let r = Portfolio.solve ~options (Prng.create 9) Cost.Longest_link p in
  Alcotest.(check bool) "proven" true r.Portfolio.proven_optimal;
  Alcotest.(check bool)
    (Printf.sprintf "cancelled well before deadline (%.2fs)" r.Portfolio.elapsed)
    true (r.Portfolio.elapsed < 15.0)

let test_portfolio_longest_path () =
  let p = tree_problem 2 5 in
  let options =
    {
      Portfolio.members = Portfolio.default_members ~objective:Cost.Longest_path ~domains:3;
      time_limit = 30.0;
      share_incumbent = true;
    }
  in
  let r = Portfolio.solve ~options (Prng.create 13) Cost.Longest_path p in
  let _, optimal = Brute_force.solve Cost.Longest_path p in
  Alcotest.(check bool) "valid" true (Types.is_valid p r.Portfolio.plan);
  Alcotest.(check (float 1e-9)) "matches brute force" optimal r.Portfolio.cost

let test_portfolio_without_sharing () =
  let p = random_problem 23 in
  let options = { capped_options with Portfolio.share_incumbent = false } in
  let r = Portfolio.solve ~options (Prng.create 2) Cost.Longest_link p in
  Alcotest.(check bool) "valid" true (Types.is_valid p r.Portfolio.plan)

let test_portfolio_validation () =
  let p = random_problem 3 in
  Alcotest.check_raises "empty members"
    (Invalid_argument "Portfolio.solve: members must be non-empty") (fun () ->
      ignore
        (Portfolio.solve
           ~options:{ capped_options with Portfolio.members = [] }
           (Prng.create 1) Cost.Longest_link p));
  Alcotest.check_raises "cp + longest path"
    (Invalid_argument "Portfolio.solve: the CP member only supports the longest-link objective")
    (fun () ->
      ignore
        (Portfolio.solve
           ~options:
             {
               capped_options with
               Portfolio.members = [ Portfolio.Cp Cp_solver.default_options ];
             }
           (Prng.create 1) Cost.Longest_path p));
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Portfolio.solve: time_limit must be positive") (fun () ->
      ignore
        (Portfolio.solve
           ~options:{ capped_options with Portfolio.time_limit = 0.0 }
           (Prng.create 1) Cost.Longest_link p));
  Alcotest.check_raises "no domains"
    (Invalid_argument "Portfolio.default_members: domains must be >= 1") (fun () ->
      ignore (Portfolio.default_members ~objective:Cost.Longest_link ~domains:0))

let test_default_members_roster () =
  List.iter
    (fun domains ->
      let members = Portfolio.default_members ~objective:Cost.Longest_link ~domains in
      Alcotest.(check int)
        (Printf.sprintf "%d domains -> %d members" domains domains)
        domains (List.length members);
      match members with
      | Portfolio.Cp { Cp_solver.clusters = None; _ } :: _ -> ()
      | _ -> Alcotest.fail "exact CP member must lead the longest-link roster")
    [ 1; 2; 4; 6 ];
  match Portfolio.default_members ~objective:Cost.Longest_path ~domains:2 with
  | Portfolio.Mip { Mip_solver.clusters = None; _ } :: _ -> ()
  | _ -> Alcotest.fail "exact MIP member must lead the longest-path roster"

let test_portfolio_via_advisor () =
  let p = random_problem 29 in
  let strategy = Advisor.Portfolio capped_options in
  Alcotest.(check string) "strategy name" "Portfolio(4)" (Advisor.strategy_to_string strategy);
  let plan = Advisor.search (Prng.create 19) strategy Cost.Longest_link p in
  Alcotest.(check bool) "valid" true (Types.is_valid p plan)

let suite =
  [
    Alcotest.test_case "deterministic for fixed seed" `Quick test_portfolio_deterministic;
    Alcotest.test_case "matches brute force" `Quick test_portfolio_matches_brute_force;
    Alcotest.test_case "no worse than members" `Quick test_portfolio_no_worse_than_members;
    Alcotest.test_case "merged trace monotonic" `Quick test_portfolio_trace_monotonic;
    Alcotest.test_case "cancels on optimality" `Quick test_portfolio_cancels_on_optimality;
    Alcotest.test_case "longest path via mip" `Slow test_portfolio_longest_path;
    Alcotest.test_case "no sharing still valid" `Quick test_portfolio_without_sharing;
    Alcotest.test_case "argument validation" `Quick test_portfolio_validation;
    Alcotest.test_case "default roster" `Quick test_default_members_roster;
    Alcotest.test_case "advisor integration" `Quick test_portfolio_via_advisor;
  ]
