open Cp

(* Tests for the CP substrate: bitset domains, propagators, and search. *)

(* ---------- Domain ---------- *)

let test_domain_full_and_size () =
  let d = Domain.full 100 in
  Alcotest.(check int) "size" 100 (Domain.size d);
  Alcotest.(check bool) "mem 0" true (Domain.mem d 0);
  Alcotest.(check bool) "mem 99" true (Domain.mem d 99);
  Alcotest.(check int) "universe" 100 (Domain.universe d)

let test_domain_remove_add () =
  let d = Domain.full 10 in
  Alcotest.(check bool) "removed" true (Domain.remove d 5);
  Alcotest.(check bool) "second removal is no-op" false (Domain.remove d 5);
  Alcotest.(check int) "size" 9 (Domain.size d);
  Domain.add d 5;
  Alcotest.(check int) "restored" 10 (Domain.size d)

let test_domain_fix_singleton () =
  let d = Domain.full 70 in
  Domain.fix d 64;
  Alcotest.(check bool) "singleton" true (Domain.is_singleton d);
  Alcotest.(check int) "min" 64 (Domain.min_value d);
  Alcotest.(check int) "size" 1 (Domain.size d)

let test_domain_word_boundary () =
  (* 63 is the last bit of word 0; 64 the first of word 1. *)
  let d = Domain.empty 130 in
  List.iter (Domain.add d) [ 62; 63; 64; 126; 129 ];
  Alcotest.(check (list int)) "to_list across words" [ 62; 63; 64; 126; 129 ] (Domain.to_list d);
  Alcotest.(check int) "min" 62 (Domain.min_value d)

let test_domain_empty_min_raises () =
  let d = Domain.empty 5 in
  Alcotest.(check bool) "is_empty" true (Domain.is_empty d);
  Alcotest.check_raises "min of empty" Not_found (fun () -> ignore (Domain.min_value d))

let test_domain_copy_independent () =
  let d = Domain.full 10 in
  let c = Domain.copy d in
  ignore (Domain.remove c 3);
  Alcotest.(check bool) "original untouched" true (Domain.mem d 3)

let test_domain_keep_only () =
  let d = Domain.full 10 in
  let changed = Domain.keep_only d (fun v -> v mod 2 = 0) in
  Alcotest.(check bool) "changed" true changed;
  Alcotest.(check (list int)) "evens" [ 0; 2; 4; 6; 8 ] (Domain.to_list d)

let test_domain_subtract_and_support () =
  let d = Domain.full 8 in
  let bad = Domain.empty 8 in
  List.iter (Domain.add bad) [ 0; 1; 2 ];
  Alcotest.(check bool) "support exists" true (Domain.intersects_complement d bad);
  Alcotest.(check bool) "changed" true (Domain.subtract d bad);
  Alcotest.(check (list int)) "remaining" [ 3; 4; 5; 6; 7 ] (Domain.to_list d);
  let all_bad = Domain.full 8 in
  Alcotest.(check bool) "no support" false (Domain.intersects_complement d all_bad)

(* ---------- Alldifferent propagation ---------- *)

let test_alldifferent_pigeonhole_fails () =
  (* 4 variables over 3 values cannot be all-different... the constructor
     rejects nvars > nvalues, so test 3 vars whose domains shrink to 2
     values. *)
  let csp = Csp.create ~nvars:3 ~nvalues:3 in
  Csp.add_alldifferent csp;
  Csp.restrict csp ~var:0 ~allowed:(fun v -> v < 2);
  Csp.restrict csp ~var:1 ~allowed:(fun v -> v < 2);
  Csp.restrict csp ~var:2 ~allowed:(fun v -> v < 2);
  Alcotest.(check bool) "failure" true (Csp.propagate csp = Csp.Failure)

let test_alldifferent_regin_prunes () =
  (* Classic example: x0 ∈ {0,1}, x1 ∈ {0,1}, x2 ∈ {0,1,2}. Régin filtering
     must remove 0 and 1 from x2. *)
  let csp = Csp.create ~nvars:3 ~nvalues:3 in
  Csp.add_alldifferent csp;
  Csp.restrict csp ~var:0 ~allowed:(fun v -> v <= 1);
  Csp.restrict csp ~var:1 ~allowed:(fun v -> v <= 1);
  (match Csp.propagate csp with
  | Csp.Failure -> Alcotest.fail "should be consistent"
  | _ -> ());
  Alcotest.(check (list int)) "x2 pruned to {2}" [ 2 ] (Domain.to_list (Csp.domain csp 2))

let test_alldifferent_singleton_propagates () =
  let csp = Csp.create ~nvars:3 ~nvalues:4 in
  Csp.add_alldifferent csp;
  Domain.fix (Csp.domain csp 0) 2;
  (match Csp.propagate csp with
  | Csp.Failure -> Alcotest.fail "consistent"
  | _ -> ());
  Alcotest.(check bool) "x1 loses 2" false (Domain.mem (Csp.domain csp 1) 2);
  Alcotest.(check bool) "x2 loses 2" false (Domain.mem (Csp.domain csp 2) 2)

(* ---------- Forbidden pairs ---------- *)

let forbidden_matrix nvalues pred =
  Array.init nvalues (fun j ->
      let row = Domain.empty nvalues in
      for j' = 0 to nvalues - 1 do
        if pred j j' then Domain.add row j'
      done;
      row)

let test_forbidden_pairs_prunes_unsupported () =
  (* Value j of x is forbidden with every value of y: x must lose j. *)
  let csp = Csp.create ~nvars:2 ~nvalues:3 in
  let bad = forbidden_matrix 3 (fun j _ -> j = 0) in
  Csp.add_forbidden_pairs csp ~x:0 ~y:1 ~bad;
  (match Csp.propagate csp with Csp.Failure -> Alcotest.fail "consistent" | _ -> ());
  Alcotest.(check (list int)) "x loses 0" [ 1; 2 ] (Domain.to_list (Csp.domain csp 0));
  Alcotest.(check (list int)) "y keeps all" [ 0; 1; 2 ] (Domain.to_list (Csp.domain csp 1))

let test_forbidden_pairs_singleton_fast_path () =
  let csp = Csp.create ~nvars:2 ~nvalues:4 in
  (* Forbid (j, j') whenever j' = j + 1. *)
  let bad = forbidden_matrix 4 (fun j j' -> j' = j + 1) in
  Csp.add_forbidden_pairs csp ~x:0 ~y:1 ~bad;
  Domain.fix (Csp.domain csp 0) 1;
  (match Csp.propagate csp with Csp.Failure -> Alcotest.fail "consistent" | _ -> ());
  Alcotest.(check (list int)) "y loses 2" [ 0; 1; 3 ] (Domain.to_list (Csp.domain csp 1))

let test_forbidden_pairs_reverse_direction () =
  (* Fixing y must prune x through the transposed matrix. *)
  let csp = Csp.create ~nvars:2 ~nvalues:4 in
  let bad = forbidden_matrix 4 (fun j j' -> j' = 3 && j <= 1) in
  Csp.add_forbidden_pairs csp ~x:0 ~y:1 ~bad;
  Domain.fix (Csp.domain csp 1) 3;
  (match Csp.propagate csp with Csp.Failure -> Alcotest.fail "consistent" | _ -> ());
  Alcotest.(check (list int)) "x loses 0,1" [ 2; 3 ] (Domain.to_list (Csp.domain csp 0))

let test_forbidden_all_pairs_fails () =
  let csp = Csp.create ~nvars:2 ~nvalues:2 in
  let bad = forbidden_matrix 2 (fun _ _ -> true) in
  Csp.add_forbidden_pairs csp ~x:0 ~y:1 ~bad;
  Alcotest.(check bool) "failure" true (Csp.propagate csp = Csp.Failure)

(* ---------- Search ---------- *)

let test_search_nqueens n expected_solvable =
  (* N-queens via alldifferent on columns + forbidden diagonal pairs. *)
  let csp = Csp.create ~nvars:n ~nvalues:n in
  Csp.add_alldifferent csp;
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      let diff = k - i in
      let bad = forbidden_matrix n (fun j j' -> abs (j - j') = diff) in
      Csp.add_forbidden_pairs csp ~x:i ~y:k ~bad
    done
  done;
  match Search.solve csp with
  | Search.Sat solution, _ ->
      Alcotest.(check bool) "expected solvable" true expected_solvable;
      (* Verify the solution is a valid n-queens placement. *)
      for i = 0 to n - 1 do
        for k = i + 1 to n - 1 do
          Alcotest.(check bool) "columns differ" true (solution.(i) <> solution.(k));
          Alcotest.(check bool) "diagonals differ" true
            (abs (solution.(i) - solution.(k)) <> k - i)
        done
      done
  | Search.Unsat, _ -> Alcotest.(check bool) "expected unsolvable" false expected_solvable
  | Search.Timeout, _ -> Alcotest.fail "unexpected timeout"

let test_nqueens_6 () = test_search_nqueens 6 true
let test_nqueens_8 () = test_search_nqueens 8 true
let test_nqueens_3_unsat () = test_search_nqueens 3 false

let test_search_restores_domains () =
  let csp = Csp.create ~nvars:3 ~nvalues:3 in
  Csp.add_alldifferent csp;
  let before = List.map (fun v -> Domain.to_list (Csp.domain csp v)) [ 0; 1; 2 ] in
  let _ = Search.solve csp in
  let after = List.map (fun v -> Domain.to_list (Csp.domain csp v)) [ 0; 1; 2 ] in
  Alcotest.(check (list (list int))) "domains restored" before after

let test_search_node_limit_timeout () =
  (* A hard instance with node_limit 1 must report Timeout. 12-queens root
     propagation alone cannot solve it. *)
  let n = 12 in
  let csp = Csp.create ~nvars:n ~nvalues:n in
  Csp.add_alldifferent csp;
  for i = 0 to n - 1 do
    for k = i + 1 to n - 1 do
      let diff = k - i in
      let bad = forbidden_matrix n (fun j j' -> abs (j - j') = diff) in
      Csp.add_forbidden_pairs csp ~x:i ~y:k ~bad
    done
  done;
  match Search.solve ~node_limit:1 csp with
  | Search.Timeout, stats -> Alcotest.(check bool) "at most 1 node" true (stats.Search.nodes <= 1)
  | Search.Sat _, _ -> Alcotest.fail "cannot solve 12-queens in one node"
  | Search.Unsat, _ -> Alcotest.fail "12-queens is satisfiable"

let test_search_value_order_respected () =
  (* With no constraints beyond alldifferent, descending value order must
     assign the largest values first. *)
  let csp = Csp.create ~nvars:2 ~nvalues:4 in
  Csp.add_alldifferent csp;
  let value_order ~var:_ values = List.rev values in
  match Search.solve ~value_order csp with
  | Search.Sat s, _ ->
      Alcotest.(check int) "x0 takes max" 3 s.(0);
      Alcotest.(check int) "x1 takes next" 2 s.(1)
  | _ -> Alcotest.fail "trivially satisfiable"

let test_search_sudoku_row () =
  (* A line of 9 cells with some fixed: alldifferent completes the rest. *)
  let csp = Csp.create ~nvars:9 ~nvalues:9 in
  Csp.add_alldifferent csp;
  let fixed = [ (0, 3); (4, 7); (8, 0) ] in
  List.iter (fun (v, value) -> Domain.fix (Csp.domain csp v) value) fixed;
  match Search.solve csp with
  | Search.Sat s, _ ->
      List.iter (fun (v, value) -> Alcotest.(check int) "fixed kept" value s.(v)) fixed;
      let sorted = Array.copy s in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "permutation" (Array.init 9 (fun i -> i)) sorted
  | _ -> Alcotest.fail "satisfiable"

(* Subgraph isomorphism through the CSP encoding: map a 4-cycle into a
   graph that contains one. *)
let test_sip_via_csp () =
  let open Graphs in
  let pattern = Templates.ring ~n:4 in
  (* Target: 6 nodes, ring 0-1-2-3 plus pendant 4, 5. *)
  let target =
    Digraph.create ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 4); (4, 5) ]
  in
  let csp = Csp.create ~nvars:4 ~nvalues:6 in
  Csp.add_alldifferent csp;
  Array.iter
    (fun (i, i') ->
      let bad =
        forbidden_matrix 6 (fun j j' -> not (Digraph.mem_edge target j j'))
      in
      Csp.add_forbidden_pairs csp ~x:i ~y:i' ~bad)
    (Digraph.edges pattern);
  match Search.solve csp with
  | Search.Sat s, _ ->
      Array.iter
        (fun (i, i') ->
          Alcotest.(check bool) "edge preserved" true (Digraph.mem_edge target s.(i) s.(i')))
        (Digraph.edges pattern)
  | _ -> Alcotest.fail "the 4-cycle embeds into the target"

let test_sip_unsat_via_csp () =
  (* A 4-cycle cannot embed into a path. *)
  let open Graphs in
  let pattern = Templates.ring ~n:4 in
  let target = Digraph.create ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let csp = Csp.create ~nvars:4 ~nvalues:5 in
  Csp.add_alldifferent csp;
  Array.iter
    (fun (i, i') ->
      let bad = forbidden_matrix 5 (fun j j' -> not (Digraph.mem_edge target j j')) in
      Csp.add_forbidden_pairs csp ~x:i ~y:i' ~bad)
    (Digraph.edges pattern);
  match Search.solve csp with
  | Search.Unsat, _ -> ()
  | Search.Sat _, _ -> Alcotest.fail "no 4-cycle in a path"
  | Search.Timeout, _ -> Alcotest.fail "tiny instance cannot time out"

(* ---------- Value-interchangeability classes ---------- *)

(* Two classes of two values each ({0,1} and {2,3}); the forbidden matrix
   depends only on the class, so classmates are genuinely interchangeable
   under every posted constraint, as value_classes requires. *)
let cross_class_bad = forbidden_matrix 4 (fun j j' -> j / 2 <> j' / 2)

let test_search_value_classes_prune_unsat () =
  (* Triangle of vars forced into one class of 2 values but needing 3
     distinct values: unsatisfiable, and the refutation needs search (root
     propagation is arc-consistent). Symmetry breaking must reach the same
     Unsat while branching on at most one value per class. *)
  let build () =
    let csp = Csp.create ~nvars:3 ~nvalues:4 in
    Csp.add_alldifferent csp;
    List.iter
      (fun (x, y) -> Csp.add_forbidden_pairs csp ~x ~y ~bad:cross_class_bad)
      [ (0, 1); (1, 2); (0, 2) ];
    csp
  in
  let plain, plain_stats = Search.solve (build ()) in
  let sym, sym_stats =
    Search.solve ~value_classes:[| 0; 0; 1; 1 |] (build ())
  in
  Alcotest.(check bool) "plain unsat" true (plain = Search.Unsat);
  Alcotest.(check bool) "sym unsat" true (sym = Search.Unsat);
  Alcotest.(check bool)
    (Printf.sprintf "fewer nodes with classes (%d < %d)" sym_stats.Search.nodes
       plain_stats.Search.nodes)
    true
    (sym_stats.Search.nodes < plain_stats.Search.nodes)

let test_search_value_classes_complete_sat () =
  (* Two vars that must land in the same class with distinct values: a
     solution exists and representative-only branching must still find it.
     A root restriction makes the classes asymmetric; entry-time refinement
     splits them so completeness survives. *)
  let csp = Csp.create ~nvars:2 ~nvalues:4 in
  Csp.add_alldifferent csp;
  Csp.add_forbidden_pairs csp ~x:0 ~y:1 ~bad:cross_class_bad;
  Csp.restrict csp ~var:0 ~allowed:(fun v -> v <> 0);
  match Search.solve ~value_classes:[| 0; 0; 1; 1 |] csp with
  | Search.Sat s, _ ->
      Alcotest.(check bool) "distinct" true (s.(0) <> s.(1));
      Alcotest.(check bool) "same class" true (s.(0) / 2 = s.(1) / 2);
      Alcotest.(check bool) "restriction respected" true (s.(0) <> 0)
  | _ -> Alcotest.fail "expected sat under symmetry breaking"

let test_csp_reset_reuses_alldifferent () =
  (* The threshold-iterating solver's reuse pattern: post an over-tight
     iteration's forbidden pairs, fail, reset, and re-solve — the binary
     constraints must be gone while alldifferent (and its warm matching)
     still holds. *)
  let csp = Csp.create ~nvars:2 ~nvalues:3 in
  Csp.add_alldifferent csp;
  (match Search.solve csp with
  | Search.Sat s, _ -> Alcotest.(check bool) "distinct before" true (s.(0) <> s.(1))
  | _ -> Alcotest.fail "satisfiable before tightening");
  Csp.add_forbidden_pairs csp ~x:0 ~y:1 ~bad:(forbidden_matrix 3 (fun _ _ -> true));
  Alcotest.(check bool) "tightened iteration fails" true (Csp.propagate csp = Csp.Failure);
  Csp.reset csp;
  (match Csp.propagate csp with
  | Csp.Failure -> Alcotest.fail "reset must clear the forbidden pairs"
  | _ -> ());
  Alcotest.(check int) "domains refilled" 3 (Domain.size (Csp.domain csp 0));
  match Search.solve csp with
  | Search.Sat s, _ -> Alcotest.(check bool) "alldifferent survives reset" true (s.(0) <> s.(1))
  | _ -> Alcotest.fail "satisfiable after reset"

let qcheck_props =
  [
    QCheck.Test.make ~name:"search solutions satisfy alldifferent" ~count:50
      QCheck.(pair small_int (int_range 2 8))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let csp = Csp.create ~nvars:n ~nvalues:(n + Prng.int rng 3) in
        Csp.add_alldifferent csp;
        match Search.solve csp with
        | Search.Sat s, _ ->
            let seen = Hashtbl.create n in
            Array.for_all
              (fun v ->
                if Hashtbl.mem seen v then false
                else begin
                  Hashtbl.add seen v ();
                  true
                end)
              s
        | _ -> false);
    QCheck.Test.make ~name:"domain subtract never grows" ~count:200
      QCheck.(pair (list (int_range 0 62)) (list (int_range 0 62)))
      (fun (keep, bad_values) ->
        let d = Domain.empty 63 in
        List.iter (Domain.add d) keep;
        let bad = Domain.empty 63 in
        List.iter (Domain.add bad) bad_values;
        let before = Domain.size d in
        ignore (Domain.subtract d bad);
        Domain.size d <= before);
  ]

let suite =
  [
    Alcotest.test_case "domain full and size" `Quick test_domain_full_and_size;
    Alcotest.test_case "domain remove/add" `Quick test_domain_remove_add;
    Alcotest.test_case "domain fix singleton" `Quick test_domain_fix_singleton;
    Alcotest.test_case "domain word boundary" `Quick test_domain_word_boundary;
    Alcotest.test_case "domain empty min raises" `Quick test_domain_empty_min_raises;
    Alcotest.test_case "domain copy independent" `Quick test_domain_copy_independent;
    Alcotest.test_case "domain keep_only" `Quick test_domain_keep_only;
    Alcotest.test_case "domain subtract and support" `Quick test_domain_subtract_and_support;
    Alcotest.test_case "alldifferent pigeonhole" `Quick test_alldifferent_pigeonhole_fails;
    Alcotest.test_case "alldifferent Régin pruning" `Quick test_alldifferent_regin_prunes;
    Alcotest.test_case "alldifferent singleton" `Quick test_alldifferent_singleton_propagates;
    Alcotest.test_case "forbidden pairs prunes unsupported" `Quick
      test_forbidden_pairs_prunes_unsupported;
    Alcotest.test_case "forbidden pairs singleton fast path" `Quick
      test_forbidden_pairs_singleton_fast_path;
    Alcotest.test_case "forbidden pairs reverse direction" `Quick
      test_forbidden_pairs_reverse_direction;
    Alcotest.test_case "forbidden all pairs fails" `Quick test_forbidden_all_pairs_fails;
    Alcotest.test_case "6-queens" `Quick test_nqueens_6;
    Alcotest.test_case "8-queens" `Quick test_nqueens_8;
    Alcotest.test_case "3-queens unsat" `Quick test_nqueens_3_unsat;
    Alcotest.test_case "search restores domains" `Quick test_search_restores_domains;
    Alcotest.test_case "search node limit" `Quick test_search_node_limit_timeout;
    Alcotest.test_case "search value order" `Quick test_search_value_order_respected;
    Alcotest.test_case "sudoku row completion" `Quick test_search_sudoku_row;
    Alcotest.test_case "subgraph isomorphism sat" `Quick test_sip_via_csp;
    Alcotest.test_case "subgraph isomorphism unsat" `Quick test_sip_unsat_via_csp;
    Alcotest.test_case "value classes prune unsat" `Quick test_search_value_classes_prune_unsat;
    Alcotest.test_case "value classes stay complete" `Quick
      test_search_value_classes_complete_sat;
    Alcotest.test_case "csp reset reuse" `Quick test_csp_reset_reuses_alldifferent;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
