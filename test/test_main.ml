let () =
  Alcotest.run "cloudia"
    [
      ("prng", Test_prng.suite);
      ("obs", Test_obs.suite);
      ("stats", Test_stats.suite);
      ("graphs", Test_graphs.suite);
      ("lp", Test_lp.suite);
      ("cp", Test_cp.suite);
      ("cloudsim", Test_cloudsim.suite);
      ("netmeasure", Test_netmeasure.suite);
      ("cloudia", Test_cloudia.suite);
      ("solvers", Test_solvers.suite);
      ("delta", Test_delta.suite);
      ("lint", Test_lint.suite);
      ("analysis", Test_analysis.suite);
      ("portfolio", Test_portfolio.suite);
      ("workloads", Test_workloads.suite);
      ("extensions", Test_extensions.suite);
      ("more", Test_more.suite);
      ("failure-injection", Test_failure.suite);
      ("consistency", Test_consistency.suite);
      ("lat-matrix", Test_latmat.suite);
      ("faults", Test_faults.suite);
      ("serve", Test_serve.suite);
    ]
