open Cloudia

(* Tests for the incremental cost-evaluation kernel (Delta_cost), the
   annealing/descent solvers built on it, and the regression fixes to
   Cost.longest_link_witness and Cost.improvement that shipped with it.
   The oracle throughout is a full Cost.eval on a shadow copy of the
   plan. *)

let check_float name ?(tol = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.9f got %.9f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

let link_problem ?(nodes = 6) ?(instances = 9) seed =
  let rng = Prng.create seed in
  let graph = Graphs.Templates.random_connected rng ~n:nodes ~extra_edges:4 in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

let dag_problem ?(nodes = 8) ?(instances = 11) seed =
  let rng = Prng.create seed in
  let graph = Graphs.Templates.random_dag rng ~n:nodes ~edge_prob:0.35 in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

(* Drive a kernel with a random proposal stream, mirroring every move on
   a shadow plan, and cross-check against Cost.eval after each proposal
   and each commit/abort decision. Returns the number of checks made. *)
let drive objective problem seed ~steps =
  let rng = Prng.create seed in
  let n = Types.node_count problem and m = Types.instance_count problem in
  let shadow = Types.random_plan rng problem in
  let kernel = Delta_cost.create objective problem shadow in
  let eval = Cost.eval objective problem in
  let checked = ref 0 in
  for _ = 1 to steps do
    let node = Prng.int rng n and target = Prng.int rng m in
    if target <> shadow.(node) then begin
      let source = shadow.(node) in
      let other = Delta_cost.occupant kernel target in
      shadow.(node) <- target;
      (match other with Some o -> shadow.(o) <- source | None -> ());
      let candidate = Delta_cost.propose_move kernel ~node ~target in
      check_float "proposal matches full eval" (eval shadow) candidate;
      incr checked;
      if Prng.bool rng then Delta_cost.commit kernel
      else begin
        Delta_cost.abort kernel;
        shadow.(node) <- source;
        match other with Some o -> shadow.(o) <- target | None -> ()
      end;
      check_float "committed cost matches full eval" (eval shadow)
        (Delta_cost.cost kernel);
      Alcotest.(check (array int)) "working plan mirrors shadow" shadow
        (Delta_cost.plan kernel)
    end
  done;
  check_float "final full_cost agrees" (Delta_cost.full_cost kernel)
    (Delta_cost.cost kernel);
  !checked

(* ---------- kernel equivalence ---------- *)

let test_link_equivalence () =
  for seed = 1 to 5 do
    let checked = drive Cost.Longest_link (link_problem seed) (seed + 100) ~steps:300 in
    Alcotest.(check bool) "exercised" true (checked > 100)
  done

let test_path_equivalence () =
  for seed = 1 to 5 do
    let checked = drive Cost.Longest_path (dag_problem seed) (seed + 200) ~steps:300 in
    Alcotest.(check bool) "exercised" true (checked > 100)
  done

let test_opaque_equivalence () =
  (* The arbitrary-eval fallback must obey the same protocol; here with a
     weighted-ish objective the kernel cannot decompose. *)
  let problem = link_problem 7 in
  let eval plan = Cost.longest_link problem plan +. (0.01 *. Cost.eval Cost.Longest_link problem plan) in
  let shadow = Types.random_plan (Prng.create 7) problem in
  let kernel = Delta_cost.create_eval ~eval problem shadow in
  check_float "initial cost" (eval shadow) (Delta_cost.cost kernel);
  let c = Delta_cost.propose_swap kernel 0 1 in
  Alcotest.(check int) "fallback counted" 1 (Delta_cost.fallback_evals kernel);
  Delta_cost.commit kernel;
  check_float "committed" c (Delta_cost.cost kernel)

let test_swap_and_relocate_wrappers () =
  let problem = link_problem 11 in
  let plan = Types.random_plan (Prng.create 11) problem in
  let kernel = Delta_cost.create Cost.Longest_link problem plan in
  let eval = Cost.eval Cost.Longest_link problem in
  (* A swap of two placed nodes. *)
  let shadow = Array.copy plan in
  let tmp = shadow.(0) in
  shadow.(0) <- shadow.(1);
  shadow.(1) <- tmp;
  check_float "swap cost" (eval shadow) (Delta_cost.propose_swap kernel 0 1);
  Delta_cost.abort kernel;
  (* A relocate to a free instance. *)
  let free =
    match Types.unused_instances problem plan with
    | inst :: _ -> inst
    | [] -> Alcotest.fail "expected a free instance"
  in
  let shadow = Array.copy plan in
  shadow.(2) <- free;
  check_float "relocate cost" (eval shadow)
    (Delta_cost.propose_relocate kernel ~node:2 ~target:free);
  Delta_cost.abort kernel;
  check_float "back to initial" (eval plan) (Delta_cost.cost kernel)

let test_protocol_errors () =
  let problem = link_problem 13 in
  let kernel =
    Delta_cost.create Cost.Longest_link problem (Types.random_plan (Prng.create 13) problem)
  in
  Alcotest.check_raises "commit without pending"
    (Invalid_argument "Delta_cost.commit: no pending proposal") (fun () ->
      Delta_cost.commit kernel);
  Alcotest.check_raises "abort without pending"
    (Invalid_argument "Delta_cost.abort: no pending proposal") (fun () ->
      Delta_cost.abort kernel);
  ignore (Delta_cost.propose_swap kernel 0 1 : float);
  Alcotest.check_raises "double propose"
    (Invalid_argument "Delta_cost.propose: a proposal is pending") (fun () ->
      ignore (Delta_cost.propose_swap kernel 2 3 : float));
  Alcotest.check_raises "reset while pending"
    (Invalid_argument "Delta_cost.reset: a proposal is pending") (fun () ->
      Delta_cost.reset kernel (Types.random_plan (Prng.create 14) problem));
  Delta_cost.abort kernel;
  Delta_cost.reset kernel (Types.random_plan (Prng.create 14) problem);
  check_float "reset resynchronizes" (Delta_cost.full_cost kernel) (Delta_cost.cost kernel)

let test_create_rejects_cyclic_for_path () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1); (1, 0) ] in
  let costs = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let p = Types.problem ~graph ~costs in
  Alcotest.check_raises "cyclic"
    (Invalid_argument "Delta_cost.create: the longest-path objective needs an acyclic graph")
    (fun () -> ignore (Delta_cost.create Cost.Longest_path p [| 0; 1 |] : Delta_cost.t))

(* ---------- annealing through the kernel ---------- *)

let anneal_options =
  {
    Anneal.default_options with
    Anneal.time_limit = 60.0;
    restarts = 2;
    max_moves = Some 2000;
  }

let test_anneal_delta_matches_full_eval () =
  (* Same seed, same move budget: the kernel-evaluated run and the
     full-eval run draw identical random streams, so the results must be
     bit-identical — the strongest equivalence statement available. *)
  List.iter
    (fun (objective, problem) ->
      let a =
        Anneal.solve_objective ~options:anneal_options (Prng.create 31) objective problem
      in
      let b =
        Anneal.solve ~options:anneal_options (Prng.create 31)
          ~eval:(Cost.eval objective problem) problem
      in
      Alcotest.(check (array int)) "same plan" b.Anneal.plan a.Anneal.plan;
      Alcotest.(check bool) "same cost bit-for-bit" true (a.Anneal.cost = b.Anneal.cost);
      Alcotest.(check int) "same move count" b.Anneal.moves_tried a.Anneal.moves_tried;
      Alcotest.(check int) "same acceptances" b.Anneal.moves_accepted a.Anneal.moves_accepted;
      check_float "reported cost is the plan's true cost"
        (Cost.eval objective problem a.Anneal.plan)
        a.Anneal.cost)
    [
      (Cost.Longest_link, link_problem 17);
      (Cost.Longest_path, dag_problem 17);
    ]

(* ---------- descent and the parallel R2 fixes ---------- *)

let test_descent_reaches_local_optimum () =
  let problem = link_problem ~nodes:5 ~instances:7 19 in
  let plan, cost, restarts =
    Random_search.r2_descent (Prng.create 19) Cost.Longest_link problem ~time_limit:0.5
  in
  Alcotest.(check bool) "valid plan" true (Types.is_valid problem plan);
  Alcotest.(check bool) "at least one restart" true (restarts >= 1);
  check_float "cost is the plan's true cost" (Cost.eval Cost.Longest_link problem plan) cost;
  (* First-improvement descent ran to quiescence: no single swap or
     relocate improves the returned plan. *)
  let kernel = Delta_cost.create Cost.Longest_link problem plan in
  let n = Types.node_count problem and m = Types.instance_count problem in
  for node = 0 to n - 1 do
    for target = 0 to m - 1 do
      if target <> plan.(node) then begin
        let candidate = Delta_cost.propose_move kernel ~node ~target in
        Alcotest.(check bool) "no improving move" true (candidate >= cost -. 1e-12);
        Delta_cost.abort kernel
      end
    done
  done

let test_descent_stop_is_honored () =
  let problem = link_problem 23 in
  let plan, cost, _ =
    Random_search.r2_descent
      ~stop:(fun () -> true)
      (Prng.create 23) Cost.Longest_link problem ~time_limit:60.0
  in
  Alcotest.(check bool) "valid plan despite immediate stop" true
    (Types.is_valid problem plan);
  check_float "cost still true" (Cost.eval Cost.Longest_link problem plan) cost

let test_r2_parallel_threads_stop_and_improvements () =
  let problem = link_problem 29 in
  (* An immediate stop must still return a valid plan quickly. *)
  let plan, _, _ =
    Random_search.r2_parallel ~domains:2
      ~stop:(fun () -> true)
      (Prng.create 29) Cost.Longest_link problem ~time_limit:60.0
  in
  Alcotest.(check bool) "valid under stop" true (Types.is_valid problem plan);
  (* Improvement callbacks see the cross-domain incumbent: costs must be
     strictly decreasing, and each reported plan must match its cost. *)
  let mutex = Mutex.create () in
  let seen = ref [] in
  let on_improve plan cost =
    Mutex.protect mutex (fun () -> seen := (Array.copy plan, cost) :: !seen)
  in
  let plan, cost, trials =
    Random_search.r2_parallel ~domains:2 ~on_improve (Prng.create 31) Cost.Longest_link
      problem ~time_limit:0.2
  in
  Alcotest.(check bool) "valid plan" true (Types.is_valid problem plan);
  Alcotest.(check bool) "trials counted" true (trials > 0);
  let improvements = List.rev !seen in
  Alcotest.(check bool) "at least one improvement" true (improvements <> []);
  List.iter
    (fun (p, c) ->
      check_float "callback cost is its plan's cost"
        (Cost.eval Cost.Longest_link problem p)
        c)
    improvements;
  let rec strictly_decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "cross-domain incumbent strictly decreases" true
    (strictly_decreasing improvements);
  (* The final result is at least as good as the last published incumbent. *)
  (match List.rev improvements with
  | (_, last) :: _ -> Alcotest.(check bool) "result <= last incumbent" true (cost <= last)
  | [] -> ())

(* ---------- regression: Cost fixes ---------- *)

let test_witness_on_zero_cost_matrix () =
  (* Regression: with an all-zero cost matrix the witness used to come
     back None (max initialized to 0.0 with a strict comparison); any
     graph with edges must name a witness. *)
  let graph = Graphs.Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let costs = Array.make_matrix 4 4 0.0 in
  let p = Types.problem ~graph ~costs in
  let cost, witness = Cost.longest_link_witness p [| 0; 1; 2 |] in
  check_float "zero cost" 0.0 cost;
  Alcotest.(check bool) "witness present" true (witness <> None);
  (match witness with
  | Some (i, j) ->
      Alcotest.(check bool) "witness is a graph edge" true
        (List.mem (i, j) [ (0, 1); (1, 2) ])
  | None -> ());
  (* An edgeless graph is the only way to get no witness. *)
  let empty = Graphs.Digraph.create ~n:2 [] in
  let p = Types.problem ~graph:empty ~costs in
  let cost, witness = Cost.longest_link_witness p [| 0; 1 |] in
  check_float "edgeless cost" 0.0 cost;
  Alcotest.(check (option (pair int int))) "edgeless witness" None witness

let test_witness_agrees_with_longest_link () =
  for seed = 41 to 46 do
    let p = link_problem seed in
    let plan = Types.random_plan (Prng.create seed) p in
    let cost, witness = Cost.longest_link_witness p plan in
    check_float "witness cost = longest link" (Cost.longest_link p plan) cost;
    match witness with
    | None -> Alcotest.fail "expected a witness on a connected graph"
    | Some (i, j) ->
        check_float "witness edge realizes the cost"
          (Types.cost p plan.(i) plan.(j))
          cost
  done

let test_improvement_guards_non_positive_default () =
  (* Regression: a negative default used to flip the sign of the result;
     any non-positive default now reports 0%. *)
  check_float "negative default" 0.0 (Cost.improvement ~default:(-2.0) ~optimized:1.0);
  check_float "zero default" 0.0 (Cost.improvement ~default:0.0 ~optimized:1.0);
  check_float "positive default unchanged" 25.0
    (Cost.improvement ~default:4.0 ~optimized:3.0)

(* ---------- qcheck properties ---------- *)

let qcheck_props =
  [
    QCheck.Test.make ~name:"delta kernel tracks full eval (longest link)" ~count:30
      QCheck.(small_int)
      (fun seed ->
        let p = link_problem (seed + 1) in
        ignore (drive Cost.Longest_link p (seed + 300) ~steps:120 : int);
        true);
    QCheck.Test.make ~name:"delta kernel tracks full eval (longest path)" ~count:30
      QCheck.(small_int)
      (fun seed ->
        let p = dag_problem (seed + 1) in
        ignore (drive Cost.Longest_path p (seed + 400) ~steps:120 : int);
        true);
  ]

let suite =
  [
    Alcotest.test_case "link kernel equals full eval" `Quick test_link_equivalence;
    Alcotest.test_case "path kernel equals full eval" `Quick test_path_equivalence;
    Alcotest.test_case "opaque fallback equivalence" `Quick test_opaque_equivalence;
    Alcotest.test_case "swap and relocate wrappers" `Quick test_swap_and_relocate_wrappers;
    Alcotest.test_case "protocol misuse raises" `Quick test_protocol_errors;
    Alcotest.test_case "cyclic graph rejected for path" `Quick
      test_create_rejects_cyclic_for_path;
    Alcotest.test_case "anneal: delta kernel = full eval, bit-for-bit" `Quick
      test_anneal_delta_matches_full_eval;
    Alcotest.test_case "descent reaches a local optimum" `Quick
      test_descent_reaches_local_optimum;
    Alcotest.test_case "descent honors stop" `Quick test_descent_stop_is_honored;
    Alcotest.test_case "r2_parallel threads stop and improvements" `Quick
      test_r2_parallel_threads_stop_and_improvements;
    Alcotest.test_case "witness on zero-cost matrix (regression)" `Quick
      test_witness_on_zero_cost_matrix;
    Alcotest.test_case "witness agrees with longest link" `Quick
      test_witness_agrees_with_longest_link;
    Alcotest.test_case "improvement guards non-positive default (regression)" `Quick
      test_improvement_guards_non_positive_default;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
