(* Tests for the three application-workload simulators. *)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let make_env ?(seed = 17) ~count () = Cloudsim.Env.allocate (Prng.create seed) ec2 ~count

let identity n = Array.init n (fun i -> i)

(* ---------- Behavioral ---------- *)

let test_behavioral_positive_and_scales_with_ticks () =
  let env = make_env ~count:9 () in
  let plan = identity 9 in
  let t100 =
    Workloads.Behavioral.time_to_solution (Prng.create 1) env ~plan ~rows:3 ~cols:3 ~ticks:100
  in
  let t200 =
    Workloads.Behavioral.time_to_solution (Prng.create 1) env ~plan ~rows:3 ~cols:3 ~ticks:200
  in
  Alcotest.(check bool) "positive" true (t100 > 0.0);
  Alcotest.(check bool) "roughly doubles" true (t200 > 1.6 *. t100 && t200 < 2.4 *. t100)

let test_behavioral_bounded_below_by_longest_link () =
  (* A tick can never beat the longest mean link by much: with many ticks
     the average tick cost must be at least ~the longest mean link. *)
  let env = make_env ~count:9 () in
  let plan = identity 9 in
  let ll = Workloads.Behavioral.expected_tick_cost env ~plan ~rows:3 ~cols:3 in
  let total =
    Workloads.Behavioral.time_to_solution (Prng.create 2) env ~plan ~rows:3 ~cols:3 ~ticks:500
  in
  let per_tick_ms = total *. 1000.0 /. 500.0 in
  Alcotest.(check bool)
    (Printf.sprintf "per-tick %.3f >= 0.8 * longest link %.3f" per_tick_ms ll)
    true
    (per_tick_ms >= 0.8 *. ll)

let test_behavioral_better_plan_runs_faster () =
  (* Optimizing the longest link must reduce simulated time-to-solution —
     the paper's core claim, in miniature. *)
  let env = make_env ~count:12 () in
  let graph = Workloads.Behavioral.graph ~rows:3 ~cols:3 in
  let costs = Cloudsim.Env.mean_matrix env in
  let problem = Cloudia.Types.problem ~graph ~costs in
  let r =
    Cloudia.Cp_solver.solve
      ~options:
        {
          Cloudia.Cp_solver.clusters = Some 20;
          time_limit = 5.0;
          iteration_time_limit = None;
          use_labeling = true;
          bootstrap_trials = 10;
          symmetry_breaking = true;
        }
      (Prng.create 3) problem
  in
  let optimized = r.Cloudia.Cp_solver.plan in
  let default = identity 9 in
  let run plan seed =
    Workloads.Behavioral.time_to_solution (Prng.create seed) env ~plan ~rows:3 ~cols:3
      ~ticks:400
  in
  Alcotest.(check bool) "optimized faster" true (run optimized 4 < run default 4)

let test_behavioral_rejects_bad_plan () =
  let env = make_env ~count:4 () in
  Alcotest.check_raises "short plan"
    (Invalid_argument "Behavioral: plan length differs from node count")
    (fun () ->
      ignore
        (Workloads.Behavioral.time_to_solution (Prng.create 1) env ~plan:[| 0 |] ~rows:2
           ~cols:2 ~ticks:1))

(* ---------- Aggregation ---------- *)

let test_aggregation_response_positive () =
  let env = make_env ~count:13 () in
  let plan = identity 13 in
  let r =
    Workloads.Aggregation.mean_response_time (Prng.create 5) env ~plan ~fanout:3 ~depth:2
      ~queries:50
  in
  Alcotest.(check bool) "positive" true (r > 0.0)

let test_aggregation_depth_increases_response () =
  (* Deeper trees have longer root-leaf paths, so higher response time. *)
  let env = make_env ~count:15 () in
  let r1 =
    Workloads.Aggregation.mean_response_time (Prng.create 6) env ~plan:(identity 3) ~fanout:2
      ~depth:1 ~queries:100
  in
  let r2 =
    Workloads.Aggregation.mean_response_time (Prng.create 6) env ~plan:(identity 7) ~fanout:2
      ~depth:2 ~queries:100
  in
  Alcotest.(check bool) "depth 2 slower" true (r2 > r1)

let test_aggregation_response_at_least_single_link () =
  (* Response includes at least one full leaf-to-root path, so it is at
     least the slowest single first-hop link's typical latency. *)
  let env = make_env ~count:7 () in
  let plan = identity 7 in
  let r =
    Workloads.Aggregation.mean_response_time (Prng.create 7) env ~plan ~fanout:2 ~depth:2
      ~queries:200
  in
  (* Depth-2 path = 2 links; mean response must exceed one mean link. *)
  let g = Workloads.Aggregation.graph ~fanout:2 ~depth:2 in
  let min_link =
    Array.fold_left
      (fun acc (i, j) -> Float.min acc (Cloudsim.Env.mean_latency env plan.(i) plan.(j)))
      infinity (Graphs.Digraph.edges g)
  in
  Alcotest.(check bool) "at least 2x min link" true (r > 1.5 *. min_link)

let test_aggregation_better_plan_faster () =
  let env = make_env ~count:9 () in
  let graph = Workloads.Aggregation.graph ~fanout:2 ~depth:2 in
  let costs = Cloudsim.Env.mean_matrix env in
  let problem = Cloudia.Types.problem ~graph ~costs in
  let plan, _ =
    Cloudia.Random_search.r1 (Prng.create 8) Cloudia.Cost.Longest_path problem ~trials:3000
  in
  let run p seed =
    Workloads.Aggregation.mean_response_time (Prng.create seed) env ~plan:p ~fanout:2 ~depth:2
      ~queries:400
  in
  Alcotest.(check bool) "optimized faster" true (run plan 9 < run (identity 7) 9)

(* ---------- Key-value store ---------- *)

let test_kv_response_positive () =
  let env = make_env ~count:12 () in
  let r =
    Workloads.Kv_store.mean_response_time (Prng.create 10) env ~plan:(identity 12)
      ~front_ends:4 ~storage:8 ~touch:3 ~queries:100
  in
  Alcotest.(check bool) "positive" true (r > 0.0)

let test_kv_touch_increases_response () =
  (* Touching more storage nodes takes the max over more links: response
     grows with the touch set. *)
  let env = make_env ~count:12 () in
  let run touch =
    Workloads.Kv_store.mean_response_time (Prng.create 11) env ~plan:(identity 12)
      ~front_ends:4 ~storage:8 ~touch ~queries:800
  in
  Alcotest.(check bool) "touch 6 slower than touch 1" true (run 6 > run 1)

let test_kv_rejects_bad_touch () =
  let env = make_env ~count:12 () in
  Alcotest.check_raises "touch too large"
    (Invalid_argument "Kv_store: touch out of [1, storage]")
    (fun () ->
      ignore
        (Workloads.Kv_store.response_time (Prng.create 1) env ~plan:(identity 12) ~front_ends:4
           ~storage:8 ~touch:9))

let test_kv_better_plan_faster () =
  (* The paper's observation: longest-link optimization still helps the KV
     workload even though the objective is not an exact match. *)
  let env = make_env ~count:14 () in
  let graph = Workloads.Kv_store.graph ~front_ends:4 ~storage:8 in
  let costs = Cloudsim.Env.mean_matrix env in
  let problem = Cloudia.Types.problem ~graph ~costs in
  let plan, _ =
    Cloudia.Random_search.r1 (Prng.create 12) Cloudia.Cost.Longest_link problem ~trials:3000
  in
  let run p seed =
    Workloads.Kv_store.mean_response_time (Prng.create seed) env ~plan:p ~front_ends:4
      ~storage:8 ~touch:4 ~queries:1500
  in
  Alcotest.(check bool) "optimized faster" true (run plan 13 < run (identity 12) 13)

let suite =
  [
    Alcotest.test_case "behavioral scales with ticks" `Quick
      test_behavioral_positive_and_scales_with_ticks;
    Alcotest.test_case "behavioral bounded by longest link" `Quick
      test_behavioral_bounded_below_by_longest_link;
    Alcotest.test_case "behavioral better plan faster" `Quick
      test_behavioral_better_plan_runs_faster;
    Alcotest.test_case "behavioral rejects bad plan" `Quick test_behavioral_rejects_bad_plan;
    Alcotest.test_case "aggregation positive" `Quick test_aggregation_response_positive;
    Alcotest.test_case "aggregation depth increases response" `Quick
      test_aggregation_depth_increases_response;
    Alcotest.test_case "aggregation at least one path" `Quick
      test_aggregation_response_at_least_single_link;
    Alcotest.test_case "aggregation better plan faster" `Quick test_aggregation_better_plan_faster;
    Alcotest.test_case "kv positive" `Quick test_kv_response_positive;
    Alcotest.test_case "kv touch increases response" `Quick test_kv_touch_increases_response;
    Alcotest.test_case "kv rejects bad touch" `Quick test_kv_rejects_bad_touch;
    Alcotest.test_case "kv better plan faster" `Quick test_kv_better_plan_faster;
  ]
