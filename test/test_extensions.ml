open Cloudia

(* Tests for the extension features: simulated annealing, weighted
   communication graphs, the bandwidth criterion, dynamic re-deployment,
   graph I/O, and the traffic workload. *)

let check_float name ?(tol = 1e-9) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

let random_problem ?(nodes = 6) ?(instances = 8) ?(extra_edges = 3) seed =
  let rng = Prng.create seed in
  let graph = Graphs.Templates.random_connected rng ~n:nodes ~extra_edges in
  let costs =
    Array.init instances (fun j ->
        Array.init instances (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  Types.problem ~graph ~costs

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

(* ---------- Anneal ---------- *)

let anneal_fast =
  { Anneal.default_options with Anneal.time_limit = 0.5; restarts = 2 }

let test_anneal_valid_plans () =
  for seed = 1 to 5 do
    let p = random_problem seed in
    let r = Anneal.solve_objective ~options:anneal_fast (Prng.create seed) Cost.Longest_link p in
    Alcotest.(check bool) "valid" true (Types.is_valid p r.Anneal.plan);
    check_float "cost consistent" (Cost.longest_link p r.Anneal.plan) r.Anneal.cost;
    Alcotest.(check bool) "tried moves" true (r.Anneal.moves_tried > 0)
  done

let test_anneal_near_optimal_small () =
  (* On small instances annealing should get within a modest factor of the
     brute-force optimum (usually it matches it). *)
  let worse = ref 0 in
  for seed = 10 to 19 do
    let p = random_problem ~nodes:5 ~instances:7 seed in
    let r = Anneal.solve_objective ~options:anneal_fast (Prng.create seed) Cost.Longest_link p in
    let _, optimal = Brute_force.solve Cost.Longest_link p in
    if r.Anneal.cost > optimal +. 1e-9 then incr worse
  done;
  Alcotest.(check bool)
    (Printf.sprintf "optimal in most runs (missed %d/10)" !worse)
    true (!worse <= 3)

let test_anneal_beats_single_random () =
  let p = random_problem ~nodes:10 ~instances:12 23 in
  let r = Anneal.solve_objective ~options:anneal_fast (Prng.create 1) Cost.Longest_link p in
  let single = Cost.longest_link p (Types.random_plan (Prng.create 1) p) in
  Alcotest.(check bool) "anneal <= first random" true (r.Anneal.cost <= single +. 1e-9)

let test_anneal_custom_eval () =
  (* Minimize the SUM of link costs — an objective no exact solver here
     encodes — and verify the plan is valid and better than random. *)
  let p = random_problem ~nodes:6 ~instances:8 29 in
  let eval plan =
    Array.fold_left
      (fun acc (i, i') -> acc +. Types.cost p plan.(i) plan.(i'))
      0.0
      (Graphs.Digraph.edges p.Types.graph)
  in
  let r = Anneal.solve ~options:anneal_fast (Prng.create 2) ~eval p in
  let random_avg =
    let rng = Prng.create 3 in
    let acc = ref 0.0 in
    for _ = 1 to 50 do
      acc := !acc +. eval (Types.random_plan rng p)
    done;
    !acc /. 50.0
  in
  Alcotest.(check bool) "below random average" true (r.Anneal.cost < random_avg)

(* ---------- Weighted ---------- *)

let test_weighted_uniform_matches_unweighted () =
  let p = random_problem 31 in
  let w = Weighted.make p ~weight:(fun _ _ -> 1.0) in
  let rng = Prng.create 4 in
  for _ = 1 to 20 do
    let plan = Types.random_plan rng p in
    check_float "LL match" (Cost.longest_link p plan) (Weighted.longest_link w plan)
  done

let test_weighted_scales_single_edge () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  let costs = [| [| 0.0; 2.0 |]; [| 2.0; 0.0 |] |] in
  let p = Types.problem ~graph ~costs in
  let w = Weighted.make p ~weight:(fun _ _ -> 3.0) in
  check_float "scaled" 6.0 (Weighted.longest_link w [| 0; 1 |]);
  check_float "path scaled" 6.0 (Weighted.longest_path w [| 0; 1 |])

let test_weighted_rejects_nonpositive () =
  let p = random_problem 37 in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Weighted.make: edge weights must be positive and finite")
    (fun () -> ignore (Weighted.make p ~weight:(fun _ _ -> 0.0)))

let test_weighted_of_assoc () =
  let graph = Graphs.Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let costs = Array.init 3 (fun j -> Array.init 3 (fun j' -> if j = j' then 0.0 else 1.0)) in
  let p = Types.problem ~graph ~costs in
  let w = Weighted.of_assoc p ~default:1.0 [ ((0, 1), 5.0) ] in
  check_float "explicit weight" 5.0 (Weighted.weight w 0 1);
  check_float "default weight" 1.0 (Weighted.weight w 1 2);
  Alcotest.check_raises "non-edge" (Invalid_argument "Weighted.of_assoc: weight given for a non-edge")
    (fun () -> ignore (Weighted.of_assoc p ~default:1.0 [ ((2, 0), 1.0) ]))

let test_weighted_cp_matches_brute_force () =
  for seed = 41 to 44 do
    let p = random_problem ~nodes:5 ~instances:7 seed in
    let rng = Prng.create seed in
    (* Random positive weights per edge. *)
    let weight_tbl = Hashtbl.create 16 in
    Array.iter
      (fun (i, i') -> Hashtbl.replace weight_tbl (i, i') (0.5 +. Prng.float rng 2.0))
      (Graphs.Digraph.edges p.Types.graph);
    let weight i i' = Hashtbl.find weight_tbl (i, i') in
    let w = Weighted.make p ~weight in
    let options =
      {
        Cp_solver.clusters = None;
        time_limit = 20.0;
        iteration_time_limit = None;
        use_labeling = true;
        bootstrap_trials = 10;
        symmetry_breaking = true;
      }
    in
    let r = Weighted.solve_cp ~options (Prng.create seed) w in
    (* Brute-force the weighted objective directly. *)
    let best = ref infinity in
    let n = Types.node_count p and m = Types.instance_count p in
    let plan = Array.make n (-1) in
    let used = Array.make m false in
    let rec go k =
      if k = n then best := Float.min !best (Weighted.longest_link w plan)
      else
        for s = 0 to m - 1 do
          if not used.(s) then begin
            used.(s) <- true;
            plan.(k) <- s;
            go (k + 1);
            used.(s) <- false
          end
        done
    in
    go 0;
    Alcotest.(check bool) "proved" true r.Cp_solver.proven_optimal;
    check_float ~tol:1e-6 (Printf.sprintf "seed %d weighted optimum" seed) !best r.Cp_solver.cost
  done

let test_weighted_g2_valid () =
  for seed = 51 to 55 do
    let p = random_problem seed in
    let w = Weighted.make p ~weight:(fun i i' -> 1.0 +. float_of_int ((i + i') mod 3)) in
    Alcotest.(check bool) "valid" true (Types.is_valid p (Weighted.g2 w))
  done

let test_weighted_anneal_and_r1 () =
  let p = random_problem ~nodes:6 ~instances:8 57 in
  let w = Weighted.make p ~weight:(fun i i' -> if (i + i') mod 2 = 0 then 2.0 else 1.0) in
  let a = Weighted.solve_anneal ~options:anneal_fast Cost.Longest_link (Prng.create 5) w in
  Alcotest.(check bool) "anneal valid" true (Types.is_valid p a.Anneal.plan);
  check_float "anneal cost consistent" (Weighted.longest_link w a.Anneal.plan) a.Anneal.cost;
  let plan, cost = Weighted.r1 (Prng.create 6) Cost.Longest_link w ~trials:200 in
  check_float "r1 cost consistent" (Weighted.longest_link w plan) cost

let test_weighted_mip_small () =
  let graph = Graphs.Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let rng = Prng.create 59 in
  let costs =
    Array.init 4 (fun j -> Array.init 4 (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let p = Types.problem ~graph ~costs in
  let w = Weighted.make p ~weight:(fun i _ -> if i = 0 then 3.0 else 1.0) in
  let r =
    Weighted.solve_mip
      ~options:{ Mip_solver.default_options with Mip_solver.time_limit = 20.0 }
      Cost.Longest_link (Prng.create 7) w
  in
  (* Exhaustive check of the weighted optimum. *)
  let best = ref infinity in
  for a = 0 to 3 do
    for b = 0 to 3 do
      for c = 0 to 3 do
        if a <> b && b <> c && a <> c then
          best := Float.min !best (Weighted.longest_link w [| a; b; c |])
      done
    done
  done;
  check_float ~tol:1e-6 "weighted MIP optimum" !best r.Mip_solver.cost

(* ---------- Bandwidth ---------- *)

let test_env_bandwidth_properties () =
  let env = Cloudsim.Env.allocate (Prng.create 61) ec2 ~count:20 in
  for i = 0 to 19 do
    Alcotest.(check bool) "self infinite" true (Cloudsim.Env.bandwidth env i i = infinity);
    for j = 0 to 19 do
      if i <> j then begin
        let bw = Cloudsim.Env.bandwidth env i j in
        Alcotest.(check bool) "positive finite" true (bw > 0.0 && Float.is_finite bw);
        check_float "symmetric" bw (Cloudsim.Env.bandwidth env j i)
      end
    done
  done

let test_bandwidth_rack_faster_than_core () =
  let rng = Prng.create 63 in
  let rack = ref [] and core = ref [] in
  for _ = 1 to 5 do
    let env = Cloudsim.Env.allocate rng ec2 ~count:30 in
    for i = 0 to 29 do
      for j = i + 1 to 29 do
        match Cloudsim.Env.hop_count env i j with
        | 1 -> rack := Cloudsim.Env.bandwidth env i j :: !rack
        | 5 -> core := Cloudsim.Env.bandwidth env i j :: !core
        | _ -> ()
      done
    done
  done;
  match (!rack, !core) with
  | [], _ | _, [] -> Alcotest.fail "expected both tiers"
  | r, c ->
      let mean l = Stats.Summary.mean (Array.of_list l) in
      Alcotest.(check bool) "rack bandwidth higher" true (mean r > mean c)

let test_bandwidth_problem_inverts () =
  let env = Cloudsim.Env.allocate (Prng.create 65) ec2 ~count:8 in
  let graph = Graphs.Templates.ring ~n:6 in
  let p = Bandwidth.problem_of env graph in
  let plan = Types.identity_plan p in
  let ll = Cost.longest_link p plan in
  let bottleneck = Bandwidth.bottleneck_gbps env graph plan in
  check_float ~tol:1e-9 "longest link = 1/bottleneck" (1.0 /. bottleneck) ll

let test_bandwidth_solver_improves_bottleneck () =
  let env = Cloudsim.Env.allocate (Prng.create 67) ec2 ~count:10 in
  let graph = Graphs.Templates.ring ~n:6 in
  let _, optimized =
    Bandwidth.solve_cp
      ~options:
        {
          Cp_solver.clusters = Some 20;
          time_limit = 5.0;
          iteration_time_limit = None;
          use_labeling = true;
          bootstrap_trials = 10;
          symmetry_breaking = true;
        }
      (Prng.create 8) env graph
  in
  let default = Bandwidth.bottleneck_gbps env graph (Array.init 6 (fun i -> i)) in
  Alcotest.(check bool)
    (Printf.sprintf "optimized bottleneck %.2f >= default %.2f" optimized default)
    true (optimized >= default -. 1e-9)

(* ---------- Redeploy ---------- *)

let test_perturb_changes_subset () =
  let env = Cloudsim.Env.allocate (Prng.create 71) ec2 ~count:20 in
  let perturbed = Cloudsim.Env.perturb (Prng.create 72) env ~fraction:0.3 ~magnitude:0.5 in
  let changed = ref 0 and same = ref 0 in
  for i = 0 to 19 do
    for j = 0 to 19 do
      if i <> j then
        if Cloudsim.Env.mean_latency env i j = Cloudsim.Env.mean_latency perturbed i j then
          incr same
        else incr changed
    done
  done;
  Alcotest.(check bool) "some changed" true (!changed > 0);
  Alcotest.(check bool) "some unchanged" true (!same > 0);
  (* Original untouched. *)
  let env2 = Cloudsim.Env.allocate (Prng.create 71) ec2 ~count:20 in
  check_float "original intact" (Cloudsim.Env.mean_latency env2 0 1)
    (Cloudsim.Env.mean_latency env 0 1)

let test_perturb_zero_fraction_identity () =
  let env = Cloudsim.Env.allocate (Prng.create 73) ec2 ~count:10 in
  let p = Cloudsim.Env.perturb (Prng.create 74) env ~fraction:0.0 ~magnitude:1.0 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      check_float "unchanged" (Cloudsim.Env.mean_latency env i j)
        (Cloudsim.Env.mean_latency p i j)
    done
  done

let test_redeploy_simulation_consistency () =
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let config =
    {
      Redeploy.epochs = 8;
      change_prob = 0.5;
      change_fraction = 0.3;
      change_magnitude = 0.6;
      migration_cost = 0.5;
      solver_budget = 0.5;
    }
  in
  let s = Redeploy.simulate ~config (Prng.create 75) ec2 ~graph ~over_allocation:0.2 in
  Alcotest.(check int) "all epochs recorded" 8 (List.length s.Redeploy.records);
  Alcotest.(check bool) "oracle is a lower bound on epoch costs" true
    (s.Redeploy.oracle_total
    <= s.Redeploy.adaptive_total
       -. (float_of_int s.Redeploy.migrations *. config.Redeploy.migration_cost)
       +. 1e-6);
  Alcotest.(check bool) "oracle <= static" true
    (s.Redeploy.oracle_total <= s.Redeploy.static_total +. 1e-6);
  List.iteri
    (fun k r ->
      Alcotest.(check int) "epoch numbering" (k + 1) r.Redeploy.epoch;
      Alcotest.(check bool) "candidate no worse than current" true
        (r.Redeploy.cost_candidate <= r.Redeploy.cost_current +. 1e-6))
    s.Redeploy.records

let test_redeploy_adapts_under_heavy_change () =
  (* With violent, frequent changes and cheap migration, the adaptive
     policy must migrate at least once and beat the static deployment. *)
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let config =
    {
      Redeploy.epochs = 10;
      change_prob = 0.9;
      change_fraction = 0.5;
      change_magnitude = 1.0;
      migration_cost = 0.05;
      solver_budget = 0.5;
    }
  in
  let s = Redeploy.simulate ~config (Prng.create 77) ec2 ~graph ~over_allocation:0.2 in
  Alcotest.(check bool) "migrated at least once" true (s.Redeploy.migrations >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.3f < static %.3f" s.Redeploy.adaptive_total
       s.Redeploy.static_total)
    true
    (s.Redeploy.adaptive_total < s.Redeploy.static_total)

let check_bits name expected actual =
  Alcotest.(check int64)
    (Printf.sprintf "%s: expected %h got %h" name expected actual)
    (Int64.bits_of_float expected) (Int64.bits_of_float actual)

let test_redeploy_seeded_determinism () =
  (* Same seed, same config: the whole summary must replay bit-for-bit.
     The solver budget is generous enough that every CP call proves
     optimality long before the wall clock can cut it short. *)
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3 in
  let config =
    {
      Redeploy.epochs = 6;
      change_prob = 0.5;
      change_fraction = 0.3;
      change_magnitude = 0.6;
      migration_cost = 0.5;
      solver_budget = 1.0;
    }
  in
  let run () = Redeploy.simulate ~config (Prng.create 79) ec2 ~graph ~over_allocation:0.2 in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "migrations" a.Redeploy.migrations b.Redeploy.migrations;
  check_bits "adaptive_total" a.Redeploy.adaptive_total b.Redeploy.adaptive_total;
  check_bits "static_total" a.Redeploy.static_total b.Redeploy.static_total;
  check_bits "oracle_total" a.Redeploy.oracle_total b.Redeploy.oracle_total;
  List.iter2
    (fun (ra : Redeploy.epoch_record) (rb : Redeploy.epoch_record) ->
      Alcotest.(check int) "epoch" ra.Redeploy.epoch rb.Redeploy.epoch;
      Alcotest.(check bool) "changed" ra.Redeploy.changed rb.Redeploy.changed;
      Alcotest.(check bool) "migrated" ra.Redeploy.migrated rb.Redeploy.migrated;
      check_bits "cost_current" ra.Redeploy.cost_current rb.Redeploy.cost_current;
      check_bits "cost_candidate" ra.Redeploy.cost_candidate rb.Redeploy.cost_candidate;
      check_bits "cost_adaptive" ra.Redeploy.cost_adaptive rb.Redeploy.cost_adaptive)
    a.Redeploy.records b.Redeploy.records

let test_redeploy_accounting () =
  (* adaptive_total is exactly the in-order replay of the records: each
     epoch adds migration_cost first (if it migrated), then the epoch's
     adaptive cost. Bit-exact, not approximate. *)
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let config =
    {
      Redeploy.epochs = 8;
      change_prob = 0.5;
      change_fraction = 0.3;
      change_magnitude = 0.6;
      migration_cost = 0.5;
      solver_budget = 0.5;
    }
  in
  let s = Redeploy.simulate ~config (Prng.create 75) ec2 ~graph ~over_allocation:0.2 in
  let replay =
    List.fold_left
      (fun acc (r : Redeploy.epoch_record) ->
        let acc =
          if r.Redeploy.migrated then acc +. config.Redeploy.migration_cost else acc
        in
        acc +. r.Redeploy.cost_adaptive)
      0.0 s.Redeploy.records
  in
  check_bits "adaptive_total replays from records" replay s.Redeploy.adaptive_total;
  Alcotest.(check int) "migrations match flagged records" s.Redeploy.migrations
    (List.length (List.filter (fun (r : Redeploy.epoch_record) -> r.Redeploy.migrated)
       s.Redeploy.records))

let cp_iterations () =
  match List.assoc_opt "cp_solver.threshold_iterations" (Obs.Counter.snapshot ()) with
  | Some n -> n
  | None -> 0

let test_redeploy_no_change_fast_path () =
  (* With change_prob = 0 the problem never changes after the initial
     optimize, so the solver must run exactly once however long the
     horizon is: the CP iteration counter advances by the same amount for
     1 epoch and for 6. *)
  let graph = Graphs.Templates.mesh2d ~rows:2 ~cols:3 in
  let config =
    {
      Redeploy.epochs = 1;
      change_prob = 0.0;
      change_fraction = 0.3;
      change_magnitude = 0.6;
      migration_cost = 0.5;
      solver_budget = 1.0;
    }
  in
  let run epochs =
    let before = cp_iterations () in
    let s =
      Redeploy.simulate
        ~config:{ config with Redeploy.epochs }
        (Prng.create 81) ec2 ~graph ~over_allocation:0.2
    in
    (s, cp_iterations () - before)
  in
  let s1, iters1 = run 1 in
  let s6, iters6 = run 6 in
  Alcotest.(check bool) "initial optimize did run" true (iters1 > 0);
  Alcotest.(check int) "quiet horizon solves exactly once" iters1 iters6;
  Alcotest.(check int) "no migrations on a quiet horizon" 0 s6.Redeploy.migrations;
  let first = List.hd s1.Redeploy.records in
  List.iter
    (fun (r : Redeploy.epoch_record) ->
      Alcotest.(check bool) "no change recorded" false r.Redeploy.changed;
      Alcotest.(check bool) "no migration recorded" false r.Redeploy.migrated;
      check_bits "epoch cost replicates epoch 1" first.Redeploy.cost_adaptive
        r.Redeploy.cost_adaptive)
    s6.Redeploy.records

(* ---------- Graph I/O ---------- *)

let test_parse_spec_templates () =
  let cases =
    [
      ("mesh2d 3 4", 12);
      ("torus2d 3 3", 9);
      ("mesh3d 2 2 2", 8);
      ("tree 2 2", 7);
      ("bipartite 2 3", 5);
      ("ring 5", 5);
      ("star 6", 6);
      ("hypercube 3", 8);
    ]
  in
  List.iter
    (fun (spec, nodes) ->
      match Graphs.Graph_io.parse_spec spec with
      | Ok g -> Alcotest.(check int) spec nodes (Graphs.Digraph.n g)
      | Error e -> Alcotest.fail e)
    cases

let test_parse_spec_rejects_garbage () =
  List.iter
    (fun spec ->
      match Graphs.Graph_io.parse_spec spec with
      | Ok _ -> Alcotest.fail ("accepted " ^ spec)
      | Error _ -> ())
    [ "mesh2d 3"; "mesh2d a b"; "pentagram 5"; ""; "ring 2"; "mesh2d 0 4" ]

let test_parse_edge_list () =
  let text = "# comment\nnodes 4\n0 1\n1 2 2.5\n\n2 3\n" in
  match Graphs.Graph_io.parse_edge_list text with
  | Error e -> Alcotest.fail e
  | Ok (g, weights) ->
      Alcotest.(check int) "nodes" 4 (Graphs.Digraph.n g);
      Alcotest.(check int) "edges" 3 (Graphs.Digraph.edge_count g);
      Alcotest.(check (list (pair (pair int int) (float 1e-9)))) "weights"
        [ ((1, 2), 2.5) ] weights

let test_parse_edge_list_errors () =
  let bad = [ "0 1"; "nodes x\n0 1"; "nodes 2\n0 5"; "nodes 2\n0 1 -2.0"; "" ] in
  List.iter
    (fun text ->
      match Graphs.Graph_io.parse_edge_list text with
      | Ok _ -> Alcotest.fail ("accepted " ^ String.escaped text)
      | Error _ -> ())
    bad

let test_edge_list_roundtrip () =
  let g = Graphs.Templates.mesh2d ~rows:2 ~cols:3 in
  let text = Graphs.Graph_io.print_edge_list g in
  match Graphs.Graph_io.parse_edge_list text with
  | Error e -> Alcotest.fail e
  | Ok (g', _) ->
      Alcotest.(check bool) "same edges" true (Graphs.Digraph.edges g = Graphs.Digraph.edges g')

let test_edge_list_roundtrip_weights () =
  let g = Graphs.Digraph.create ~n:3 [ (0, 1); (1, 2) ] in
  let weights = [ ((0, 1), 2.5) ] in
  let text = Graphs.Graph_io.print_edge_list ~weights g in
  match Graphs.Graph_io.parse_edge_list text with
  | Error e -> Alcotest.fail e
  | Ok (_, w') ->
      Alcotest.(check (list (pair (pair int int) (float 1e-9)))) "weights survive" weights w'

(* ---------- Traffic workload ---------- *)

let test_traffic_outcome_consistency () =
  let env = Cloudsim.Env.allocate (Prng.create 81) ec2 ~count:10 in
  let graph = Workloads.Traffic.graph (Prng.create 82) ~partitions:8 in
  let plan = Array.init 8 (fun i -> i) in
  let o =
    Workloads.Traffic.run (Prng.create 83) env ~plan ~graph ~periods:40 ~rounds_per_period:50
      ~deadline_seconds:0.08
  in
  Alcotest.(check int) "total periods" 40 o.Workloads.Traffic.periods_total;
  Alcotest.(check bool) "on-time within range" true
    (o.Workloads.Traffic.periods_on_time >= 0 && o.Workloads.Traffic.periods_on_time <= 40);
  Alcotest.(check bool) "worst >= mean" true
    (o.Workloads.Traffic.worst_period_seconds >= o.Workloads.Traffic.mean_period_seconds -. 1e-9);
  let f = Workloads.Traffic.on_time_fraction o in
  Alcotest.(check bool) "fraction in [0,1]" true (f >= 0.0 && f <= 1.0)

let test_traffic_better_plan_meets_more_deadlines () =
  let env = Cloudsim.Env.allocate (Prng.create 85) ec2 ~count:12 in
  let graph = Workloads.Traffic.graph (Prng.create 86) ~partitions:9 in
  let costs = Cloudsim.Env.mean_matrix env in
  let problem = Types.problem ~graph ~costs in
  let optimized =
    (Cp_solver.solve
       ~options:
         {
           Cp_solver.clusters = Some 20;
           time_limit = 3.0;
           iteration_time_limit = None;
           use_labeling = true;
           bootstrap_trials = 10;
           symmetry_breaking = true;
         }
       (Prng.create 87) problem)
      .Cp_solver.plan
  in
  let default = Types.identity_plan problem in
  (* Calibrate the deadline between the two plans' simulated mean period
     times, then measure on-time fractions with fresh randomness. *)
  let rounds = 50 in
  let mean_period plan =
    (Workloads.Traffic.run (Prng.create 88) env ~plan ~graph ~periods:20
       ~rounds_per_period:rounds ~deadline_seconds:1e9)
      .Workloads.Traffic.mean_period_seconds
  in
  let deadline = (mean_period default +. mean_period optimized) /. 2.0 in
  let run plan =
    Workloads.Traffic.on_time_fraction
      (Workloads.Traffic.run (Prng.create 89) env ~plan ~graph ~periods:40
         ~rounds_per_period:rounds ~deadline_seconds:deadline)
  in
  Alcotest.(check bool) "optimized meets more deadlines" true (run optimized > run default)

let suite =
  [
    Alcotest.test_case "anneal valid plans" `Quick test_anneal_valid_plans;
    Alcotest.test_case "anneal near optimal" `Quick test_anneal_near_optimal_small;
    Alcotest.test_case "anneal beats single random" `Quick test_anneal_beats_single_random;
    Alcotest.test_case "anneal custom eval" `Quick test_anneal_custom_eval;
    Alcotest.test_case "weighted uniform = unweighted" `Quick
      test_weighted_uniform_matches_unweighted;
    Alcotest.test_case "weighted scales single edge" `Quick test_weighted_scales_single_edge;
    Alcotest.test_case "weighted rejects non-positive" `Quick test_weighted_rejects_nonpositive;
    Alcotest.test_case "weighted of_assoc" `Quick test_weighted_of_assoc;
    Alcotest.test_case "weighted cp matches brute force" `Quick
      test_weighted_cp_matches_brute_force;
    Alcotest.test_case "weighted g2 valid" `Quick test_weighted_g2_valid;
    Alcotest.test_case "weighted anneal and r1" `Quick test_weighted_anneal_and_r1;
    Alcotest.test_case "weighted mip small" `Slow test_weighted_mip_small;
    Alcotest.test_case "env bandwidth properties" `Quick test_env_bandwidth_properties;
    Alcotest.test_case "bandwidth rack > core" `Quick test_bandwidth_rack_faster_than_core;
    Alcotest.test_case "bandwidth problem inverts" `Quick test_bandwidth_problem_inverts;
    Alcotest.test_case "bandwidth solver improves bottleneck" `Quick
      test_bandwidth_solver_improves_bottleneck;
    Alcotest.test_case "perturb changes subset" `Quick test_perturb_changes_subset;
    Alcotest.test_case "perturb zero fraction" `Quick test_perturb_zero_fraction_identity;
    Alcotest.test_case "redeploy consistency" `Quick test_redeploy_simulation_consistency;
    Alcotest.test_case "redeploy adapts" `Quick test_redeploy_adapts_under_heavy_change;
    Alcotest.test_case "redeploy seeded determinism" `Quick test_redeploy_seeded_determinism;
    Alcotest.test_case "redeploy accounting" `Quick test_redeploy_accounting;
    Alcotest.test_case "redeploy no-change fast path" `Quick test_redeploy_no_change_fast_path;
    Alcotest.test_case "parse spec templates" `Quick test_parse_spec_templates;
    Alcotest.test_case "parse spec rejects garbage" `Quick test_parse_spec_rejects_garbage;
    Alcotest.test_case "parse edge list" `Quick test_parse_edge_list;
    Alcotest.test_case "parse edge list errors" `Quick test_parse_edge_list_errors;
    Alcotest.test_case "edge list roundtrip" `Quick test_edge_list_roundtrip;
    Alcotest.test_case "edge list roundtrip weights" `Quick test_edge_list_roundtrip_weights;
    Alcotest.test_case "traffic outcome consistency" `Quick test_traffic_outcome_consistency;
    Alcotest.test_case "traffic better plan" `Quick test_traffic_better_plan_meets_more_deadlines;
  ]
