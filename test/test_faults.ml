(* Fault-injection pipeline tests: zero-fault bit-identity against pre-fault
   golden outputs, seeded determinism, retry/timeout accounting, matrix
   completion, NaN poisoning, and the advisor's --on-missing policies.

   The golden arrays below are the exact outputs (hex float literals, so
   bit-exact) of the measurement schemes BEFORE the fault/retry layer and
   the staged both-directions fix were introduced, for:

     env    = Env.allocate (Prng.create 5) ec2 ~count:6
     token  = token_passing (Prng.create 1) env ~samples_per_pair:2
     unc    = uncoordinated (Prng.create 4) env ~rounds:10
     staged = staged (Prng.create 6) env ~ks:3 ~stages:8

   They pin the compatibility contract: with no fault plan, token passing
   and uncoordinated are bit-identical to the old implementation, and
   staged keeps its matchings, forward samples and simulated clock —
   gaining only the derived reverse-direction samples, which ride the
   same packet exchanges (zero extra PRNG draws, zero extra sim time). *)

let ec2 = Cloudsim.Provider.get Cloudsim.Provider.Ec2

let golden_env () = Cloudsim.Env.allocate (Prng.create 5) ec2 ~count:6

let bits = Int64.bits_of_float

let check_bits what expected actual =
  Alcotest.(check int64) what (bits expected) (bits actual)

let token_means =
  [|
    [| 0x0p+0; 0x1.deb91aa3bdac6p-2; 0x1.6fbaba19a0286p-2; 0x1.a144270920a1p-1; 0x1.67128f8bd2786p-1; 0x1.7e1164cafa508p-1 |];
    [| 0x1.70439fd3196dap-2; 0x0p+0; 0x1.1bac20914b764p-1; 0x1.6703d7f211d49p-1; 0x1.3942e21393e9cp-1; 0x1.148eaa3b12047p+0 |];
    [| 0x1.a614de92a2a86p-1; 0x1.08736737b336bp+0; 0x0p+0; 0x1.6c76ae4dfa092p-2; 0x1.0089eea300e5ap-1; 0x1.989a21dc121a4p-2 |];
    [| 0x1.1e46df9c18d6p-1; 0x1.6e02dd6726505p-1; 0x1.13a2572cab276p-2; 0x0p+0; 0x1.56c43bfdb0dafp-2; 0x1.13c2652f6ed6dp-2 |];
    [| 0x1.43de2fbd6300ep-1; 0x1.5efc9de14c43cp-2; 0x1.325bf2cbe4adap-1; 0x1.886ee4dd15dd5p-2; 0x0p+0; 0x1.2fb1b7c7e021p-2 |];
    [| 0x1.7f570840d109bp-1; 0x1.6f3ca56ac63ddp-1; 0x1.f63ca55dbc8dcp-2; 0x1.0f954e205aaep-2; 0x1.9d5eef72396dp-3; 0x0p+0 |];
  |]

let token_sim_seconds = 0x1.3cc380267f646p-5

let unc_means =
  [|
    [| 0x0p+0; nan; 0x1.492d8e83ca516p-1; nan; 0x1.08b151ef7047ep+0; 0x1.bbfaf0cc8d658p-1 |];
    [| 0x1.5938cc7d28caep-1; 0x0p+0; 0x1.f20f13fdeca1p-1; 0x1.d4177a1e09e42p-1; nan; 0x1.7725b1696732ap+0 |];
    [| 0x1.601275f02e35dp+0; nan; 0x0p+0; 0x1.c3207897b047p-2; 0x1.3b0f81fe4bb0ep-1; 0x1.8dbf4fde0001p-1 |];
    [| 0x1.2631b78e52dbp+0; 0x1.d5113a43452f3p-1; 0x1.53e0814467806p-1; 0x0p+0; nan; 0x1.91f9671607e2bp-1 |];
    [| 0x1.970bccd99f878p+0; 0x1.c38ad78a92a1cp-1; 0x1.b008ee3d83698p-1; 0x1.3e83db664a449p-1; 0x0p+0; 0x1.655d4795c7668p-1 |];
    [| nan; 0x1.366d2c507586p+0; 0x1.2ef3c036a6bb3p-1; 0x1.2e15cb7154bc9p-1; 0x1.c01c8925e222ap-3; 0x0p+0 |];
  |]

let unc_samples =
  [|
    [| 0; 0; 2; 0; 3; 5 |];
    [| 2; 0; 4; 2; 0; 2 |];
    [| 2; 0; 0; 3; 4; 1 |];
    [| 2; 3; 2; 0; 0; 3 |];
    [| 3; 1; 1; 2; 0; 3 |];
    [| 0; 4; 3; 2; 1; 0 |];
  |]

let unc_sim_seconds = 0x1.da2012b0df26p-7

let staged_means =
  [|
    [| 0x0p+0; 0x1.5b948e90d1a74p-2; nan; 0x1.6d586cc6bd289p-1; 0x1.1ec427da6cc45p+0; nan |];
    [| 0x1.6ca166d4d275fp-1; 0x0p+0; 0x1.403b637ab6f2bp-1; 0x1.f742e1db0e9fdp-1; 0x1.bd80ec68bc847p-2; nan |];
    [| nan; nan; 0x0p+0; nan; 0x1.7e3c4a21619f9p-2; 0x1.bf5ecb973b477p-2 |];
    [| 0x1.bd997c27d1821p-1; nan; nan; 0x0p+0; nan; 0x1.63a502e20ab44p-2 |];
    [| 0x1.bebc91e2044e3p-1; nan; 0x1.0c8d25beca31ep-1; nan; 0x0p+0; 0x1.62aaf20ee5f27p-3 |];
    [| nan; nan; 0x1.88022ec73955bp-2; 0x1.72e8acdf57045p-2; nan; 0x0p+0 |];
  |]

let staged_samples =
  [|
    [| 0; 3; 0; 6; 3; 0 |];
    [| 3; 0; 6; 3; 9; 0 |];
    [| 0; 0; 0; 0; 3; 9 |];
    [| 6; 0; 0; 0; 0; 3 |];
    [| 3; 0; 3; 0; 0; 3 |];
    [| 0; 0; 3; 6; 0; 0 |];
  |]

let staged_sim_seconds = 0x1.54a5a993c67c6p-6

let test_golden_token_bit_identity () =
  let env = golden_env () in
  let m = Netmeasure.Schemes.token_passing (Prng.create 1) env ~samples_per_pair:2 in
  for i = 0 to 5 do
    for j = 0 to 5 do
      check_bits
        (Printf.sprintf "mean (%d,%d)" i j)
        token_means.(i).(j)
        m.Netmeasure.Schemes.means.(i).(j);
      Alcotest.(check int) "samples" (if i = j then 0 else 2) m.Netmeasure.Schemes.samples.(i).(j)
    done
  done;
  check_bits "sim_seconds" token_sim_seconds m.Netmeasure.Schemes.sim_seconds

let test_golden_uncoordinated_bit_identity () =
  let env = golden_env () in
  let m = Netmeasure.Schemes.uncoordinated (Prng.create 4) env ~rounds:10 in
  for i = 0 to 5 do
    for j = 0 to 5 do
      check_bits
        (Printf.sprintf "mean (%d,%d)" i j)
        unc_means.(i).(j)
        m.Netmeasure.Schemes.means.(i).(j);
      Alcotest.(check int) "samples" unc_samples.(i).(j) m.Netmeasure.Schemes.samples.(i).(j)
    done
  done;
  check_bits "sim_seconds" unc_sim_seconds m.Netmeasure.Schemes.sim_seconds

(* The staged exchange fix records both directions per exchange. The
   compatibility contract against the golden run: matchings and clock
   unchanged (bit-equal sim_seconds), sample counts are the golden count
   plus the golden count of the opposite direction, forward means of
   pairs never matched in the reverse order are bit-identical, and every
   mean satisfies the derived-reverse formula
     mean(i,j) = (sum_ij + sum_ji · m_ij / m_ji) / (n_ij + n_ji)
   where sums/counts are the golden (single-direction) ones and m is the
   ground truth used to scale the shared exchange. *)
let test_golden_staged_reconciled () =
  let env = golden_env () in
  let m = Netmeasure.Schemes.staged (Prng.create 6) env ~ks:3 ~stages:8 in
  check_bits "sim_seconds" staged_sim_seconds m.Netmeasure.Schemes.sim_seconds;
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j then begin
        Alcotest.(check int)
          (Printf.sprintf "samples (%d,%d) additive" i j)
          (staged_samples.(i).(j) + staged_samples.(j).(i))
          m.Netmeasure.Schemes.samples.(i).(j);
        let n_ij = staged_samples.(i).(j) and n_ji = staged_samples.(j).(i) in
        if n_ij > 0 && n_ji = 0 then
          (* Only matched as (i,j): the forward stream is untouched. *)
          check_bits
            (Printf.sprintf "one-way mean (%d,%d)" i j)
            staged_means.(i).(j)
            m.Netmeasure.Schemes.means.(i).(j);
        if n_ij + n_ji > 0 then begin
          let sum_ij = if n_ij = 0 then 0.0 else staged_means.(i).(j) *. float_of_int n_ij in
          let sum_ji = if n_ji = 0 then 0.0 else staged_means.(j).(i) *. float_of_int n_ji in
          let scale = Cloudsim.Env.mean_latency env i j /. Cloudsim.Env.mean_latency env j i in
          let expected = (sum_ij +. (sum_ji *. scale)) /. float_of_int (n_ij + n_ji) in
          let actual = m.Netmeasure.Schemes.means.(i).(j) in
          Alcotest.(check bool)
            (Printf.sprintf "derived mean (%d,%d)" i j)
            true
            (Float.abs (actual -. expected) <= 1e-9 *. Float.max 1.0 expected)
        end
      end
    done
  done;
  (* Coverage is now symmetric: an ordered pair counts when either
     direction of the exchange was matched in the golden run. *)
  let covered = ref 0 in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j && staged_samples.(i).(j) + staged_samples.(j).(i) > 0 then incr covered
    done
  done;
  Alcotest.(check (float 1e-12)) "coverage"
    (float_of_int !covered /. 30.0)
    (Netmeasure.Schemes.coverage m)

let scheme_equal (a : Netmeasure.Schemes.t) (b : Netmeasure.Schemes.t) =
  a.Netmeasure.Schemes.samples = b.Netmeasure.Schemes.samples
  && bits a.Netmeasure.Schemes.sim_seconds = bits b.Netmeasure.Schemes.sim_seconds
  && Array.for_all2
       (fun ra rb -> Array.for_all2 (fun x y -> bits x = bits y) ra rb)
       a.Netmeasure.Schemes.means b.Netmeasure.Schemes.means

let test_faults_none_is_free () =
  let env = golden_env () in
  let fenv = Cloudsim.Env.with_faults env Cloudsim.Faults.none in
  let pairs =
    [
      (fun e -> Netmeasure.Schemes.token_passing (Prng.create 9) e ~samples_per_pair:2);
      (fun e -> Netmeasure.Schemes.uncoordinated (Prng.create 10) e ~rounds:8);
      (fun e -> Netmeasure.Schemes.staged (Prng.create 11) e ~ks:2 ~stages:6);
    ]
  in
  List.iter
    (fun run -> Alcotest.(check bool) "bit-identical" true (scheme_equal (run env) (run fenv)))
    pairs

let lossy_cfg =
  {
    Cloudsim.Faults.seed = 42;
    loss = 0.3;
    loss_sigma = 0.6;
    straggler_fraction = 0.3;
    straggler_factor = 50.0;
    straggler_period_ms = 5.0;
    straggler_duration_ms = 1.0;
    crash_fraction = 0.2;
    crash_after_ms = 40.0;
  }

let test_seeded_fault_determinism () =
  let env = golden_env () in
  let run () =
    let e = Cloudsim.Env.with_faults env lossy_cfg in
    Netmeasure.Schemes.staged (Prng.create 12) e ~ks:3 ~stages:20
  in
  Alcotest.(check bool) "identical across runs" true (scheme_equal (run ()) (run ()))

let test_total_loss_yields_no_samples () =
  (* Every probe lost, every retry exhausted: sample counts must stay 0
     and means nan — never a bogus value — while the clock still charges
     the timeouts and the counters record the losses. *)
  let env = golden_env () in
  let e =
    Cloudsim.Env.with_faults env
      { Cloudsim.Faults.none with Cloudsim.Faults.seed = 3; loss = 1.0 }
  in
  let before = Obs.Counter.snapshot () in
  let m = Netmeasure.Schemes.token_passing (Prng.create 13) e ~samples_per_pair:1 in
  let deltas = Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ()) in
  let get name = try List.assoc name deltas with Not_found -> 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j s ->
          Alcotest.(check int) "no samples" 0 s;
          if i <> j then
            Alcotest.(check bool) "mean is nan" true
              (Float.is_nan m.Netmeasure.Schemes.means.(i).(j)))
        row)
    m.Netmeasure.Schemes.samples;
  Alcotest.(check (float 0.0)) "coverage zero" 0.0 (Netmeasure.Schemes.coverage m);
  (* 30 ordered pairs x (1 try + 3 retries) probes, all lost. *)
  Alcotest.(check int) "lost" 120 (get "netmeasure.probes_lost");
  Alcotest.(check int) "timeouts" 120 (get "netmeasure.timeouts");
  Alcotest.(check int) "retries" 90 (get "netmeasure.retries");
  Alcotest.(check int) "no recorded probes" 0 (get "netmeasure.probes");
  (* Each failed measurement waits 4 timeouts plus backoffs 0.5+1+2. *)
  Alcotest.(check bool) "clock charged" true (m.Netmeasure.Schemes.sim_seconds > 0.0)

let test_stragglers_time_out_not_lost () =
  (* Everyone straggles all the time (duration = 2 x period keeps every
     instant inside a spike window) with a factor far past the timeout:
     probes come back but too late. The accounting must classify them as
     timeouts, not losses. *)
  let env = golden_env () in
  let e =
    Cloudsim.Env.with_faults env
      {
        Cloudsim.Faults.none with
        Cloudsim.Faults.seed = 8;
        straggler_fraction = 1.0;
        straggler_factor = 1000.0;
        straggler_period_ms = 10.0;
        straggler_duration_ms = 20.0;
      }
  in
  let before = Obs.Counter.snapshot () in
  let m = Netmeasure.Schemes.staged (Prng.create 14) e ~ks:2 ~stages:4 in
  let deltas = Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ()) in
  let get name = try List.assoc name deltas with Not_found -> 0 in
  Alcotest.(check int) "nothing lost in flight" 0 (get "netmeasure.probes_lost");
  Alcotest.(check bool) "late replies timed out" true (get "netmeasure.timeouts" > 0);
  (* Probes before the first jittered window opens still get through
     (there is no slot -1 to spill from), so coverage is partial, not
     zero — the point is that everything late was a timeout, not a loss. *)
  Alcotest.(check bool) "coverage degraded" true (Netmeasure.Schemes.coverage m < 1.0)

let synthetic means samples =
  { Netmeasure.Schemes.means; samples; sim_seconds = 1.0 }

let test_completion_provenance_exact () =
  (* (0,1) missing with (1,0) measured -> Reflected; (0,2) and (2,0) both
     missing -> Row_col_max from the worst measured row/column entry. *)
  let means =
    [| [| 0.0; nan; nan |]; [| 2.0; 0.0; 3.0 |]; [| nan; 4.0; 0.0 |] |]
  in
  let samples = [| [| 0; 0; 0 |]; [| 1; 0; 1 |]; [| 0; 1; 0 |] |] in
  let c = Netmeasure.Completion.complete (synthetic means samples) in
  let open Netmeasure.Completion in
  Alcotest.(check int) "imputed" 3 c.imputed;
  Alcotest.(check int) "unresolved" 0 c.unresolved;
  let prov i j = c.provenance.(i).(j) in
  Alcotest.(check bool) "reflected (0,1)" true (prov 0 1 = Reflected);
  Alcotest.(check (float 1e-12)) "reflected value" 2.0 c.means.(0).(1);
  Alcotest.(check bool) "rowcol (0,2)" true (prov 0 2 = Row_col_max);
  (* Row 0 has no measured entry; column 2 has (1,2)=3.0. *)
  Alcotest.(check (float 1e-12)) "rowcol value (0,2)" 3.0 c.means.(0).(2);
  Alcotest.(check bool) "rowcol (2,0)" true (prov 2 0 = Row_col_max);
  (* Row 2 has (2,1)=4.0; column 0 has (1,0)=2.0; max is 4.0. *)
  Alcotest.(check (float 1e-12)) "rowcol value (2,0)" 4.0 c.means.(2).(0);
  Alcotest.(check bool) "measured kept" true (prov 1 0 = Measured && prov 1 2 = Measured);
  (* Exactly the imputed set is non-Measured. *)
  let non_measured = ref 0 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i <> j && prov i j <> Measured then incr non_measured
    done
  done;
  Alcotest.(check int) "mask size" 3 !non_measured

let test_completion_unresolved_and_drop () =
  let means = [| [| 0.0; nan |]; [| nan; 0.0 |] |] in
  let samples = [| [| 0; 0 |]; [| 0; 0 |] |] in
  let m = synthetic means samples in
  let c = Netmeasure.Completion.complete m in
  Alcotest.(check int) "unresolved" 2 c.Netmeasure.Completion.unresolved;
  Alcotest.(check bool) "missing stays nan" true (Float.is_nan c.Netmeasure.Completion.means.(0).(1));
  Alcotest.(check (list int)) "unreachable" [ 0; 1 ] (Netmeasure.Completion.unreachable m);
  let kept, sub = Netmeasure.Completion.drop_uncovered m in
  Alcotest.(check int) "one instance survives" 1 (Array.length kept);
  Alcotest.(check int) "trivial submatrix" 1 (Array.length sub)

let test_crash_then_drop_restores_coverage () =
  let env = golden_env () in
  let e =
    Cloudsim.Env.with_faults env
      {
        Cloudsim.Faults.none with
        Cloudsim.Faults.seed = 5;
        crash_fraction = 0.3;
        crash_after_ms = 0.0;
      }
  in
  (* Seed 5 crashes instances 2 and 3 at t = 0 (pinned by the test
     below); their rows and columns collect nothing. *)
  let m = Netmeasure.Schemes.staged (Prng.create 15) e ~ks:3 ~stages:30 in
  Alcotest.(check bool) "partial" true (Netmeasure.Schemes.coverage m < 1.0);
  Alcotest.(check (list int)) "unreachable" [ 2; 3 ] (Netmeasure.Completion.unreachable m);
  (* Pairs between the two dead instances have empty rows AND columns. *)
  let c = Netmeasure.Completion.complete m in
  Alcotest.(check int) "dead-dead pairs unresolved" 2 c.Netmeasure.Completion.unresolved;
  let kept, sub = Netmeasure.Completion.drop_uncovered m in
  Alcotest.(check (list int)) "kept" [ 0; 1; 4; 5 ] (Array.to_list kept);
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if i <> j then Alcotest.(check bool) "fully measured" true (Float.is_finite v))
        row)
    sub

let test_cost_nan_poisons_with_witness () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  let costs = [| [| 0.0; nan |]; [| 0.7; 0.0 |] |] in
  let problem = Cloudia.Types.problem ~graph ~costs in
  let plan = [| 0; 1 |] in
  let cost, witness = Cloudia.Cost.longest_link_witness problem plan in
  Alcotest.(check bool) "nan cost" true (Float.is_nan cost);
  Alcotest.(check bool) "witness names the edge" true (witness = Some (0, 1));
  Alcotest.(check bool) "longest_link nan" true
    (Float.is_nan (Cloudia.Cost.longest_link problem plan));
  Alcotest.(check bool) "longest_path nan" true
    (Float.is_nan (Cloudia.Cost.longest_path problem plan));
  (* The reverse plan avoids the nan edge and must evaluate normally. *)
  let ok = Cloudia.Cost.longest_link problem [| 1; 0 |] in
  Alcotest.(check (float 1e-12)) "clean plan fine" 0.7 ok

let test_problem_accepts_nan_rejects_inf () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  let accepts costs = ignore (Cloudia.Types.problem ~graph ~costs) in
  accepts [| [| 0.0; nan |]; [| 0.5; 0.0 |] |];
  Alcotest.check_raises "infinite rejected"
    (Invalid_argument "Types.problem: costs must not be infinite") (fun () ->
      accepts [| [| 0.0; infinity |]; [| 0.5; 0.0 |] |]);
  Alcotest.check_raises "nan diagonal rejected"
    (Invalid_argument "Types.problem: nonzero diagonal") (fun () ->
      accepts [| [| nan; 0.4 |]; [| 0.5; 0.0 |] |])

let test_matrix_io_nan_roundtrip () =
  let matrix = [| [| 0.0; nan |]; [| 1.5; 0.0 |] |] in
  let text = Cloudia.Matrix_io.print matrix in
  Alcotest.(check bool) "prints literal nan" true
    (String.length text > 0
    &&
    match Cloudia.Matrix_io.parse_raw text with
    | Ok m -> Float.is_nan m.(0).(1) && m.(1).(0) = 1.5
    | Error _ -> false);
  (match Cloudia.Matrix_io.parse text with
  | Ok _ -> Alcotest.fail "strict parse must reject nan"
  | Error _ -> ());
  (* Case-insensitive on input; full matrices still round-trip strictly. *)
  (match Cloudia.Matrix_io.parse_raw "0, NaN\n1.25, 0" with
  | Ok m -> Alcotest.(check bool) "NaN accepted" true (Float.is_nan m.(0).(1))
  | Error e -> Alcotest.fail e);
  let clean = [| [| 0.0; 0.25 |]; [| 0.5; 0.0 |] |] in
  match Cloudia.Matrix_io.parse (Cloudia.Matrix_io.print clean) with
  | Ok m -> Alcotest.(check (float 1e-9)) "clean roundtrip" 0.25 m.(0).(1)
  | Error e -> Alcotest.fail e

let code_of (d : Lint.Diagnostic.t) = d.Lint.Diagnostic.code

let test_check_partial_codes () =
  let codes ~missing ~imputed ~dropped =
    List.map code_of
      (Lint.Instance.check_partial ~total:30 ~missing ~imputed ~dropped ())
  in
  Alcotest.(check (list string)) "clean" [] (codes ~missing:0 ~imputed:0 ~dropped:0);
  Alcotest.(check (list string)) "missing errors" [ "LAT007" ]
    (codes ~missing:3 ~imputed:0 ~dropped:0);
  Alcotest.(check (list string)) "imputed warns" [ "LAT008" ]
    (codes ~missing:0 ~imputed:4 ~dropped:0);
  Alcotest.(check (list string)) "dropped warns" [ "LAT009" ]
    (codes ~missing:0 ~imputed:0 ~dropped:2);
  Alcotest.(check (list string)) "all three" [ "LAT007"; "LAT008"; "LAT009" ]
    (codes ~missing:1 ~imputed:1 ~dropped:1);
  let errs =
    Lint.Diagnostic.errors (Lint.Instance.check_partial ~total:30 ~missing:1 ~imputed:1 ~dropped:1 ())
  in
  Alcotest.(check (list string)) "only LAT007 is an error" [ "LAT007" ]
    (List.map code_of errs)

(* Advisor end-to-end under a fault plan that kills instances 2 and 3 at
   t = 0 (fault seed 5, pinned above): Fail and Impute must refuse —
   dead-dead pairs are beyond even conservative imputation — while Drop
   terminates the dead instances and still produces a valid deployment. *)
let advisor_config =
  {
    Cloudia.Advisor.graph = Graphs.Templates.mesh2d ~rows:2 ~cols:2;
    objective = Cloudia.Cost.Longest_link;
    metric = Cloudia.Metrics.Mean;
    over_allocation = 0.5;
    samples_per_pair = 3;
    strategy = Cloudia.Advisor.Greedy_g2;
  }

let crash_faults =
  {
    Cloudsim.Faults.none with
    Cloudsim.Faults.seed = 5;
    crash_fraction = 0.3;
    crash_after_ms = 0.0;
  }

let test_advisor_on_missing_fail_and_impute_raise () =
  let run on_missing =
    Cloudia.Advisor.run ~faults:crash_faults ~on_missing (Prng.create 21)
      (Cloudsim.Provider.get Cloudsim.Provider.Ec2)
      advisor_config
  in
  let expect_blocked name on_missing =
    match run on_missing with
    | exception Lint.Diagnostic.Failed ds ->
        Alcotest.(check bool)
          (name ^ " reports LAT007")
          true
          (List.exists (fun d -> code_of d = "LAT007") ds)
    | _ -> Alcotest.fail (name ^ " must be blocked by lint")
  in
  expect_blocked "fail" Cloudia.Advisor.Fail;
  expect_blocked "impute" Cloudia.Advisor.Impute

let test_advisor_on_missing_drop_completes () =
  let report =
    Cloudia.Advisor.run ~faults:crash_faults ~on_missing:Cloudia.Advisor.Drop_instance
      (Prng.create 21)
      (Cloudsim.Provider.get Cloudsim.Provider.Ec2)
      advisor_config
  in
  let open Cloudia.Advisor in
  Alcotest.(check (list int)) "dead instances dropped" [ 2; 3 ] report.dropped;
  Alcotest.(check (list int)) "kept" [ 0; 1; 4; 5 ] (Array.to_list report.kept);
  Alcotest.(check bool) "partial coverage recorded" true
    (report.measurement_coverage < 1.0);
  (* 6 allocated = 4 nodes deployed + 2 terminated (both dead here). *)
  Alcotest.(check int) "partition" (Cloudsim.Env.count report.env)
    (List.length report.terminated + Array.length report.plan);
  Alcotest.(check (list int)) "terminated are the dropped" [ 2; 3 ] report.terminated;
  Alcotest.(check bool) "finite cost" true (Float.is_finite report.cost);
  Alcotest.(check bool) "LAT009 in diagnostics" true
    (List.exists (fun d -> code_of d = "LAT009") report.diagnostics);
  Alcotest.(check bool) "honest measurement clock" true
    (report.measurement_minutes > 0.0)

let test_advisor_no_faults_unchanged () =
  (* The optional fault arguments must not perturb the existing pipeline:
     a run with the defaults is identical to one predating them. *)
  let provider = Cloudsim.Provider.get Cloudsim.Provider.Ec2 in
  let a = Cloudia.Advisor.run (Prng.create 30) provider advisor_config in
  let b =
    Cloudia.Advisor.run ~faults:Cloudsim.Faults.none ~on_missing:Cloudia.Advisor.Impute
      (Prng.create 30) provider advisor_config
  in
  Alcotest.(check bool) "same plan" true (a.Cloudia.Advisor.plan = b.Cloudia.Advisor.plan);
  check_bits "same cost" a.Cloudia.Advisor.cost b.Cloudia.Advisor.cost;
  Alcotest.(check (float 0.0)) "full coverage" 1.0 a.Cloudia.Advisor.measurement_coverage;
  Alcotest.(check (list int)) "nothing dropped" [] a.Cloudia.Advisor.dropped;
  Alcotest.(check bool) "kept is identity" true
    (a.Cloudia.Advisor.kept = Array.init (Cloudsim.Env.count a.Cloudia.Advisor.env) (fun i -> i))

let test_search_gate_blocks_partial_matrix () =
  let graph = Graphs.Digraph.create ~n:2 [ (0, 1) ] in
  let costs = [| [| 0.0; nan |]; [| 0.7; 0.0 |] |] in
  let problem = Cloudia.Types.problem ~graph ~costs in
  match
    Cloudia.Advisor.search (Prng.create 31) Cloudia.Advisor.Greedy_g1
      Cloudia.Cost.Longest_link problem
  with
  | exception Lint.Diagnostic.Failed ds ->
      Alcotest.(check bool) "LAT007" true
        (List.exists (fun d -> code_of d = "LAT007") ds)
  | _ -> Alcotest.fail "partial matrix must not reach a solver"

let suite =
  [
    Alcotest.test_case "golden: token bit-identity" `Quick test_golden_token_bit_identity;
    Alcotest.test_case "golden: uncoordinated bit-identity" `Quick
      test_golden_uncoordinated_bit_identity;
    Alcotest.test_case "golden: staged exchange reconciled" `Quick
      test_golden_staged_reconciled;
    Alcotest.test_case "faults none is free" `Quick test_faults_none_is_free;
    Alcotest.test_case "seeded fault determinism" `Quick test_seeded_fault_determinism;
    Alcotest.test_case "total loss yields no samples" `Quick test_total_loss_yields_no_samples;
    Alcotest.test_case "stragglers time out, not lost" `Quick
      test_stragglers_time_out_not_lost;
    Alcotest.test_case "completion provenance exact" `Quick test_completion_provenance_exact;
    Alcotest.test_case "completion unresolved and drop" `Quick
      test_completion_unresolved_and_drop;
    Alcotest.test_case "crash then drop restores coverage" `Quick
      test_crash_then_drop_restores_coverage;
    Alcotest.test_case "cost nan poisons with witness" `Quick
      test_cost_nan_poisons_with_witness;
    Alcotest.test_case "problem accepts nan, rejects inf" `Quick
      test_problem_accepts_nan_rejects_inf;
    Alcotest.test_case "matrix io nan roundtrip" `Quick test_matrix_io_nan_roundtrip;
    Alcotest.test_case "check_partial codes" `Quick test_check_partial_codes;
    Alcotest.test_case "advisor fail/impute raise" `Quick
      test_advisor_on_missing_fail_and_impute_raise;
    Alcotest.test_case "advisor drop completes" `Quick test_advisor_on_missing_drop_completes;
    Alcotest.test_case "advisor unchanged without faults" `Quick
      test_advisor_no_faults_unchanged;
    Alcotest.test_case "search gate blocks partial matrix" `Quick
      test_search_gate_blocks_partial_matrix;
  ]
