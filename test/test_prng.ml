open Stats

(* Tests for the deterministic PRNG and its distributions. *)

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_copy_independent () =
  let a = Prng.create 7 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_differs () =
  let a = Prng.create 11 in
  let b = Prng.split a in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Prng.bits64 a = Prng.bits64 b then incr matches
  done;
  Alcotest.(check int) "split stream is distinct" 0 !matches

let test_int_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_in_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-4) 9 in
    Alcotest.(check bool) "in closed range" true (v >= -4 && v <= 9)
  done

let test_int_rejects_nonpositive () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_uniform_range () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let u = Prng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_uniform_mean () =
  let rng = Prng.create 13 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.uniform rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_normal_moments () =
  let rng = Prng.create 17 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Prng.normal rng ~mean:3.0 ~sd:2.0) in
  let m = Summary.mean samples and sd = Summary.stddev samples in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.0) < 0.1);
  Alcotest.(check bool) "sd near 2" true (Float.abs (sd -. 2.0) < 0.1)

let test_lognormal_positive () =
  let rng = Prng.create 19 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Prng.lognormal rng ~mu:0.0 ~sigma:1.0 > 0.0)
  done

let test_exponential_mean () =
  let rng = Prng.create 23 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Prng.exponential rng ~rate:4.0) in
  Alcotest.(check bool) "mean near 1/4" true (Float.abs (Summary.mean samples -. 0.25) < 0.02)

let test_pareto_support () =
  let rng = Prng.create 29 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true (Prng.pareto rng ~scale:2.0 ~shape:3.0 >= 2.0)
  done

let test_permutation_is_permutation () =
  let rng = Prng.create 31 in
  let p = Prng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "contains 0..49" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_preserves_multiset () =
  let rng = Prng.create 37 in
  let a = [| 1; 1; 2; 3; 5; 8; 13 |] in
  let b = Array.copy a in
  Prng.shuffle rng b;
  Array.sort compare b;
  Alcotest.(check (array int)) "same elements" a b

let test_sample_without_replacement () =
  let rng = Prng.create 41 in
  let s = Prng.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let seen = Hashtbl.create 10 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= 0 && v < 30);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
      Hashtbl.add seen v ())
    s

let test_split_streams_pairwise_disjoint () =
  (* The solver portfolio hands one split stream to each worker domain.
     SplitMix64 siblings are offsets of the same underlying sequence, so
     two streams only repeat each other if their start states land within
     the drawn window of one another — probability ~ 10^-8 here, and the
     whole computation is a fixed function of the seed, so this either
     always passes or never does. 10^5 draws per stream, all four streams
     pairwise disjoint. *)
  let parent = Prng.create 2026 in
  let streams = Array.init 4 (fun _ -> Prng.split parent) in
  let draws = 100_000 in
  let seen = Hashtbl.create (4 * draws) in
  Array.iteri
    (fun s rng ->
      for i = 1 to draws do
        let v = Prng.bits64 rng in
        (match Hashtbl.find_opt seen v with
        | Some s' when s' <> s ->
            Alcotest.failf "streams %d and %d emit the same value at draw %d" s' s i
        | _ -> ());
        Hashtbl.replace seen v s
      done)
    streams

let test_split_streams_reproducible () =
  (* Splitting k worker streams off equal-seed parents must yield equal
     streams, independent of anything else — the portfolio's determinism
     rests on exactly this. *)
  let spawn seed = Array.init 4 (fun _ -> Prng.split (Prng.create seed)) in
  let a = spawn 99 and b = spawn 99 in
  Array.iteri
    (fun i ra ->
      for _ = 1 to 1000 do
        Alcotest.(check int64)
          (Printf.sprintf "worker %d stream" i)
          (Prng.bits64 ra) (Prng.bits64 b.(i))
      done)
    a

let qcheck_props =
  [
    QCheck.Test.make ~name:"int always within bound" ~count:500
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Prng.create seed in
        let v = Prng.int rng bound in
        v >= 0 && v < bound);
    QCheck.Test.make ~name:"sibling splits never collide" ~count:100 QCheck.small_int
      (fun seed ->
        let parent = Prng.create seed in
        let a = Prng.split parent in
        let b = Prng.split parent in
        let seen = Hashtbl.create 2048 in
        for _ = 1 to 1000 do
          Hashtbl.replace seen (Prng.bits64 a) ()
        done;
        let ok = ref true in
        for _ = 1 to 1000 do
          if Hashtbl.mem seen (Prng.bits64 b) then ok := false
        done;
        !ok);
    QCheck.Test.make ~name:"permutation is bijective" ~count:100
      QCheck.(pair small_int (int_range 1 100))
      (fun (seed, n) ->
        let rng = Prng.create seed in
        let p = Prng.permutation rng n in
        let seen = Array.make n false in
        Array.iter (fun i -> seen.(i) <- true) p;
        Array.for_all (fun b -> b) seen);
  ]

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "copy is independent continuation" `Quick test_copy_independent;
    Alcotest.test_case "split stream differs" `Quick test_split_differs;
    Alcotest.test_case "split streams pairwise disjoint" `Quick
      test_split_streams_pairwise_disjoint;
    Alcotest.test_case "split streams reproducible" `Quick test_split_streams_reproducible;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int rejects non-positive bound" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "lognormal positive" `Quick test_lognormal_positive;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "permutation is a permutation" `Quick test_permutation_is_permutation;
    Alcotest.test_case "shuffle preserves multiset" `Quick test_shuffle_preserves_multiset;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
