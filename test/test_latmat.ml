(* Tests for the flat Lat_matrix representation and its binary on-disk
   format: exact (bit-level) round trips including NaN and asymmetric
   entries, float32 quantization bounds, header/shape error reporting,
   mmap vs channel agreement, and golden values pinning Cost.eval against
   the pre-refactor boxed implementation. *)

let check_bits name expected actual =
  Alcotest.(check int64)
    name (Int64.bits_of_float expected) (Int64.bits_of_float actual)

let with_temp f =
  let path = Filename.temp_file "latmat" ".lat" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* A deterministic asymmetric matrix with a zero diagonal, optional NaN
   holes, and values exercising many mantissa bits. *)
let sample_matrix ?(nan_every = 0) seed n =
  let rng = Prng.create seed in
  Lat_matrix.init n (fun i j ->
      if i = j then 0.0
      else if nan_every > 0 && ((i * n) + j) mod nan_every = 0 then nan
      else 0.1 +. Prng.float rng 10.0)

(* ---------- binary round trips ---------- *)

let binary_roundtrip_exact =
  QCheck.Test.make ~name:"float64 binary round-trip is bit-exact (NaN, asymmetric)" ~count:60
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let m = sample_matrix ~nan_every:7 seed n in
      with_temp (fun path ->
          Lat_matrix.write_binary path m;
          match Lat_matrix.read_binary path with
          | Error e -> QCheck.Test.fail_reportf "read_binary: %s" e
          | Ok m' -> Lat_matrix.equal m m' && Lat_matrix.storage m' = Lat_matrix.Float64))

let mmap_matches_channel =
  QCheck.Test.make ~name:"mmap read equals channel read" ~count:30
    QCheck.(pair small_int (int_range 1 16))
    (fun (seed, n) ->
      let m = sample_matrix ~nan_every:5 seed n in
      with_temp (fun path ->
          Lat_matrix.write_binary path m;
          match (Lat_matrix.read_binary path, Lat_matrix.read_binary ~mmap:true path) with
          | Ok a, Ok b -> Lat_matrix.equal a b
          | Error e, _ | _, Error e -> QCheck.Test.fail_reportf "read_binary: %s" e))

let test_mmap_is_copy_on_write () =
  let m = sample_matrix 5 6 in
  with_temp (fun path ->
      Lat_matrix.write_binary path m;
      (match Lat_matrix.read_binary ~mmap:true path with
      | Error e -> Alcotest.failf "mmap read: %s" e
      | Ok view -> Lat_matrix.set view 1 2 9999.0);
      (* MAP_PRIVATE: the write above must not reach the file. *)
      match Lat_matrix.read_binary path with
      | Error e -> Alcotest.failf "re-read: %s" e
      | Ok fresh ->
          Alcotest.(check bool) "file unchanged" true (Lat_matrix.equal m fresh))

let csv_to_binary_preserves_parse =
  (* The binary format must carry CSV-parsed float64s (NaN holes
     included) without moving a bit, even though CSV itself is text. *)
  QCheck.Test.make ~name:"CSV-parsed values survive the binary carrier bit-for-bit" ~count:40
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let m = sample_matrix ~nan_every:6 seed n in
      let csv = Cloudia.Matrix_io.print (Lat_matrix.to_arrays m) in
      match Cloudia.Matrix_io.parse_raw csv with
      | Error e -> QCheck.Test.fail_reportf "parse_raw: %s" e
      | Ok rows ->
          let parsed = Lat_matrix.of_arrays rows in
          with_temp (fun path ->
              Lat_matrix.write_binary path parsed;
              match Lat_matrix.read_binary path with
              | Error e -> QCheck.Test.fail_reportf "read_binary: %s" e
              | Ok m' -> Lat_matrix.equal parsed m'))

(* ---------- float32 storage ---------- *)

let float32_quantization_bound =
  QCheck.Test.make ~name:"float32 quantization error <= 2^-24 relative" ~count:500
    QCheck.(float_range 1e-6 1e6)
    (fun v ->
      let q = Lat_matrix.quantize Lat_matrix.Float32 v in
      Float.abs (q -. v) <= Float.abs v *. Float.ldexp 1.0 (-24))

let float32_roundtrip_exact =
  (* Quantization happens once at construction; after that the disk round
     trip is exact, and NaN holes stay NaN. *)
  QCheck.Test.make ~name:"float32 binary round-trip is exact after quantization" ~count:40
    QCheck.(pair small_int (int_range 1 14))
    (fun (seed, n) ->
      let m =
        Lat_matrix.with_storage Lat_matrix.Float32 (sample_matrix ~nan_every:8 seed n)
      in
      with_temp (fun path ->
          Lat_matrix.write_binary path m;
          match Lat_matrix.read_binary path with
          | Error e -> QCheck.Test.fail_reportf "read_binary: %s" e
          | Ok m' ->
              Lat_matrix.storage m' = Lat_matrix.Float32
              &&
              let ok = ref true in
              Lat_matrix.iter
                (fun i j v ->
                  let v' = Lat_matrix.get m' i j in
                  if Float.is_nan v then begin
                    if not (Float.is_nan v') then ok := false
                  end
                  else if v <> v' then ok := false)
                m;
              !ok))

(* ---------- malformed inputs ---------- *)

let write_file path bytes = Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes)

let expect_error name result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error msg ->
      Alcotest.(check bool) (name ^ ": non-empty message") true (String.length msg > 0)

let test_malformed_files () =
  let m = sample_matrix 9 4 in
  with_temp (fun path ->
      Lat_matrix.write_binary path m;
      let good = In_channel.with_open_bin path In_channel.input_all in
      let patched off b =
        let bytes = Bytes.of_string good in
        Bytes.set bytes off b;
        bytes
      in
      write_file path (Bytes.of_string "not a matrix at all");
      expect_error "bad magic" (Lat_matrix.read_binary path);
      Alcotest.(check bool) "looks_binary rejects garbage" false (Lat_matrix.looks_binary path);
      write_file path (patched 8 '\007');
      expect_error "unsupported version" (Lat_matrix.read_binary path);
      write_file path (patched 12 '\009');
      expect_error "unknown storage tag" (Lat_matrix.read_binary path);
      write_file path (patched 20 '\005');
      expect_error "non-square dims" (Lat_matrix.read_binary path);
      write_file path (Bytes.sub (Bytes.of_string good) 0 (String.length good - 3));
      expect_error "truncated payload" (Lat_matrix.read_binary path);
      write_file path (Bytes.sub (Bytes.of_string good) 0 10);
      expect_error "truncated header" (Lat_matrix.read_binary path));
  expect_error "missing file" (Lat_matrix.read_binary "/nonexistent/matrix.lat")

let test_shape_and_bounds_errors () =
  let m = sample_matrix 11 5 in
  let oob name f = Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  oob "get row oob" (fun () -> ignore (Lat_matrix.get m 5 0));
  oob "get col oob" (fun () -> ignore (Lat_matrix.get m 0 (-1)));
  oob "set oob" (fun () -> Lat_matrix.set m 7 7 1.0);
  oob "negative create" (fun () -> ignore (Lat_matrix.create (-2)));
  oob "ragged rows" (fun () ->
      ignore (Lat_matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0 |] |]))

(* ---------- golden Cost.eval values ---------- *)

(* A fixed 7-instance matrix written as hex floats (parsed exactly), the
   paper's two objectives evaluated on fixed plans. The expected bits
   were produced by the pre-refactor boxed float array array
   implementation; the flat representation must reproduce them exactly. *)
let golden_matrix =
  [|
    [| 0x0p+0; 0x1.11eb851eb851fp-1; 0x1.8a3d70a3d70a4p-1; 0x1.0147ae147ae14p+0; 0x1.3d70a3d70a3d7p+0; 0x1.9374bc6a7ef9ep-2; 0x1.420c49ba5e354p-1 |];
    [| 0x1.c395810624dd3p-2; 0x0p+0; 0x1.0147ae147ae14p+0; 0x1.4978d4fdf3b64p+0; 0x1.f3b645a1cac08p-2; 0x1.8a3d70a3d70a4p-1; 0x1.0d4fdf3b645a2p+0 |];
    [| 0x1.29fbe76c8b439p-1; 0x1.d26e978d4fdf4p-1; 0x0p+0; 0x1.f3b645a1cac08p-2; 0x1.a24dd2f1a9fbep-1; 0x1.25604189374bcp+0; 0x1.9374bc6a7ef9ep-2 |];
    [| 0x1.722d0e5604189p-1; 0x1.195810624dd2fp+0; 0x1.9374bc6a7ef9ep-2; 0x0p+0; 0x1.25604189374bcp+0; 0x1.c395810624dd3p-2; 0x1.a24dd2f1a9fbep-1 |];
    [| 0x1.ba5e353f7ced9p-1; 0x1.4978d4fdf3b64p+0; 0x1.420c49ba5e354p-1; 0x1.0d4fdf3b645a2p+0; 0x0p+0; 0x1.a24dd2f1a9fbep-1; 0x1.3d70a3d70a3d7p+0 |];
    [| 0x1.0147ae147ae14p+0; 0x1.9374bc6a7ef9ep-2; 0x1.ba5e353f7ced9p-1; 0x1.55810624dd2f2p+0; 0x1.722d0e5604189p-1; 0x0p+0; 0x1.29fbe76c8b439p-1 |];
    [| 0x1.25604189374bcp+0; 0x1.29fbe76c8b439p-1; 0x1.195810624dd2fp+0; 0x1.11eb851eb851fp-1; 0x1.0d4fdf3b645a2p+0; 0x1.f3b645a1cac08p-2; 0x0p+0 |];
  |]

let test_golden_cost_eval () =
  let costs = golden_matrix in
  let link_problem =
    Cloudia.Types.problem ~graph:(Graphs.Templates.mesh2d ~rows:2 ~cols:3) ~costs
  in
  let path_problem =
    Cloudia.Types.problem ~graph:(Graphs.Templates.aggregation_tree ~fanout:2 ~depth:2) ~costs
  in
  let plan_a = [| 2; 5; 0; 3; 6; 1 |] in
  let plan_b = [| 6; 4; 1; 0; 2; 3; 5 |] in
  check_bits "longest link, identity prefix" 0x1.4978d4fdf3b64p+0
    (Cloudia.Cost.eval Cloudia.Cost.Longest_link link_problem
       (Cloudia.Types.identity_plan link_problem));
  check_bits "longest link, permuted plan" 0x1.25604189374bcp+0
    (Cloudia.Cost.eval Cloudia.Cost.Longest_link link_problem plan_a);
  check_bits "longest path, identity" 0x1.ba5e353f7ced9p+0
    (Cloudia.Cost.eval Cloudia.Cost.Longest_path path_problem
       (Cloudia.Types.identity_plan path_problem));
  check_bits "longest path, permuted plan" 0x1.3d70a3d70a3d7p+1
    (Cloudia.Cost.eval Cloudia.Cost.Longest_path path_problem plan_b)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:false binary_roundtrip_exact;
    QCheck_alcotest.to_alcotest ~long:false mmap_matches_channel;
    Alcotest.test_case "mmap is copy-on-write" `Quick test_mmap_is_copy_on_write;
    QCheck_alcotest.to_alcotest ~long:false csv_to_binary_preserves_parse;
    QCheck_alcotest.to_alcotest ~long:false float32_quantization_bound;
    QCheck_alcotest.to_alcotest ~long:false float32_roundtrip_exact;
    Alcotest.test_case "malformed binary files" `Quick test_malformed_files;
    Alcotest.test_case "shape and bounds errors" `Quick test_shape_and_bounds_errors;
    Alcotest.test_case "golden Cost.eval bits" `Quick test_golden_cost_eval;
  ]
