(* Figures 14 and 15: lightweight approaches (G1, G2, R1, R2) against the
   exact solvers, averaged over multiple allocations (Sect. 6.5). *)

let fig14 () =
  Util.section "Fig. 14" "lightweight approaches vs CP for LLNDP";
  Printf.printf
    "paper: 20 allocations of 50 instances, 10%% over-allocation, 2-D mesh.\n\
    \       G1 worst (67%% above CP); G2 better; R1 slightly beats G2; R2 within\n\
    \       ~9%% of CP\n\n";
  let rows = 5 and cols = 5 in
  let graph = Graphs.Templates.mesh2d ~rows ~cols in
  let allocations = 5 in
  let budget = Util.budget 3.0 in
  let totals = Hashtbl.create 8 in
  let add name v =
    let cur = try Hashtbl.find totals name with Not_found -> 0.0 in
    Hashtbl.replace totals name (cur +. v)
  in
  for alloc = 1 to allocations do
    let env = Util.env_of ~seed:(500 + alloc) Util.ec2 ~count:(rows * cols * 11 / 10) in
    let problem = Util.problem_of ~seed:(600 + alloc) env graph in
    let ll = Cloudia.Cost.longest_link problem in
    add "G1" (ll (Cloudia.Greedy.g1 problem));
    add "G2" (ll (Cloudia.Greedy.g2 problem));
    let r1, _ =
      Cloudia.Random_search.r1 (Prng.create (700 + alloc)) Cloudia.Cost.Longest_link problem
        ~trials:(Util.trials ~floor:50 1000)
    in
    add "R1" (ll r1);
    let r2, _, _ =
      Cloudia.Random_search.r2 (Prng.create (800 + alloc)) Cloudia.Cost.Longest_link problem
        ~time_limit:budget
    in
    add "R2" (ll r2);
    let cp =
      Cloudia.Cp_solver.solve
        ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:budget ())
        (Prng.create (900 + alloc))
        problem
    in
    add "CP" cp.Cloudia.Cp_solver.cost
  done;
  let avg name = Hashtbl.find totals name /. float_of_int allocations in
  let cp = avg "CP" in
  Printf.printf "  %-6s %16s %12s\n" "method" "avg longest link" "vs CP";
  List.iter
    (fun name ->
      let v = avg name in
      Printf.printf "  %-6s %13.3f ms %+10.1f%%\n" name v ((v -. cp) /. cp *. 100.0))
    [ "G1"; "G2"; "R1"; "R2"; "CP" ]

let fig15 () =
  Util.section "Fig. 15" "lightweight approaches vs MIP for LPNDP";
  Printf.printf
    "paper: G1/G2 (designed for LLNDP) still comparable to R1; R2 finds plans\n\
    \       ~5%% BETTER than MIP in equal time — random search explores more of\n\
    \       the space than the weakly-guided MIP within the budget\n\n";
  let graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:2 in
  let instances = 8 in
  let allocations = 3 in
  let budget = Util.budget 6.0 in
  let totals = Hashtbl.create 8 in
  let add name v =
    let cur = try Hashtbl.find totals name with Not_found -> 0.0 in
    Hashtbl.replace totals name (cur +. v)
  in
  for alloc = 1 to allocations do
    let env = Util.env_of ~seed:(520 + alloc) Util.ec2 ~count:instances in
    let problem = Util.problem_of ~seed:(620 + alloc) env graph in
    let lp = Cloudia.Cost.longest_path problem in
    add "G1" (lp (Cloudia.Greedy.g1 problem));
    add "G2" (lp (Cloudia.Greedy.g2 problem));
    let r1, _ =
      Cloudia.Random_search.r1 (Prng.create (720 + alloc)) Cloudia.Cost.Longest_path problem
        ~trials:(Util.trials ~floor:50 1000)
    in
    add "R1" (lp r1);
    let r2, _, _ =
      Cloudia.Random_search.r2 (Prng.create (820 + alloc)) Cloudia.Cost.Longest_path problem
        ~time_limit:budget
    in
    add "R2" (lp r2);
    let mip =
      Cloudia.Mip_solver.solve_longest_path
        ~options:(Util.mip_options ~clusters:None ~time_limit:budget ())
        (Prng.create (920 + alloc))
        problem
    in
    add "MIP" mip.Cloudia.Mip_solver.cost
  done;
  let avg name = Hashtbl.find totals name /. float_of_int allocations in
  let mip = avg "MIP" in
  Printf.printf "  %-6s %16s %12s\n" "method" "avg longest path" "vs MIP";
  List.iter
    (fun name ->
      let v = avg name in
      Printf.printf "  %-6s %13.3f ms %+10.1f%%\n" name v ((v -. mip) /. mip *. 100.0))
    [ "G1"; "G2"; "R1"; "R2"; "MIP" ];
  (* The paper's small-scale sanity check (Sect. 6.5.3): at a tiny instance
     count MIP proves optimality; verify against brute force. *)
  let env = Util.env_of ~seed:555 Util.ec2 ~count:6 in
  let small_graph = Graphs.Templates.aggregation_tree ~fanout:2 ~depth:1 in
  let problem = Util.problem_of ~seed:556 env small_graph in
  let mip =
    Cloudia.Mip_solver.solve_longest_path
      ~options:(Util.mip_options ~clusters:None ~time_limit:30.0 ())
      (Prng.create 557) problem
  in
  let _, optimal = Cloudia.Brute_force.solve Cloudia.Cost.Longest_path problem in
  Printf.printf
    "\nsmall-scale check (6 instances): MIP %.3f ms %s; brute-force optimum %.3f ms — %s\n"
    mip.Cloudia.Mip_solver.cost
    (if mip.Cloudia.Mip_solver.proven_optimal then "(proved)" else "(unproved)")
    optimal
    (if Float.abs (mip.Cloudia.Mip_solver.cost -. optimal) < 1e-6 then "MATCH"
     else if not mip.Cloudia.Mip_solver.proven_optimal then
       "n/a (budget capped before the proof)"
     else "MISMATCH")
