(* Delta-evaluation kernel: correctness and throughput of incremental
   cost evaluation for local-search moves.

   Every move of the annealing loop used to pay a full Cost.eval — O(|E|)
   for longest link, a whole-DAG relaxation for longest path. The
   Delta_cost kernel answers the same proposals from the edges a move
   actually touches. This section checks and prints two claims:

   - equivalence: on small instances of both objectives the kernel's
     incremental costs match a from-scratch evaluation after every
     proposal, commit and abort — any disagreement is a hard failure
     (non-zero exit), which is what the CI smoke gate relies on;
   - throughput: annealing with the delta kernel sustains >= 5x the
     moves/sec of per-move full evaluation on the paper's 64-node
     behavioral-simulation template (8x8 mesh, longest link). Enforced at
     full scale; in --smoke mode the ratio is printed but not asserted
     (the budgets are too small to time reliably). *)

(* Wall time and total words allocated (minor + major - promoted counts a
   word once wherever it first lands) by a run of [f]. *)
let timed f =
  let words (s : Gc.stat) = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words in
  let w0 = words (Gc.quick_stat ()) in
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let dt = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  (v, dt, Float.max 0.0 (words (Gc.quick_stat ()) -. w0))

(* The same annealing run — same seed, same move budget, same schedule —
   evaluated either through the delta kernel (solve_objective) or with
   one full Cost.eval per move. Both draw identical random streams, so
   they must visit identical plans. *)
let anneal_run problem objective ~moves ~use_delta seed =
  let options =
    {
      Cloudia.Anneal.default_options with
      Cloudia.Anneal.time_limit = 3600.0;
      restarts = 1;
      max_moves = Some moves;
    }
  in
  if use_delta then
    Cloudia.Anneal.solve_objective ~options (Prng.create seed) objective problem
  else
    Cloudia.Anneal.solve ~options (Prng.create seed)
      ~eval:(Cloudia.Cost.eval objective problem)
      problem

(* Best-of-3 timing: the run is deterministic (same seed, same moves), so
   the minimum wall time is the least-perturbed measurement — what the CI
   regression band compares against the committed baseline. Allocation is
   taken from the first repetition (it is per-run deterministic). *)
let best_of_3 f =
  let v, t0, w = timed f in
  let _, t1, _ = timed f in
  let _, t2, _ = timed f in
  (v, Float.min t0 (Float.min t1 t2), w)

let throughput ~key name problem objective ~moves seed =
  Util.subsection name;
  let full, t_full, w_full =
    best_of_3 (fun () -> anneal_run problem objective ~moves ~use_delta:false seed)
  in
  let delta, t_delta, w_delta =
    best_of_3 (fun () -> anneal_run problem objective ~moves ~use_delta:true seed)
  in
  if Float.abs (full.Cloudia.Anneal.cost -. delta.Cloudia.Anneal.cost) > 1e-9 then
    failwith
      (Printf.sprintf
         "fig-delta: delta kernel diverged from full evaluation (%s: %.9f vs %.9f)" name
         delta.Cloudia.Anneal.cost full.Cloudia.Anneal.cost);
  let mps_full = float_of_int full.Cloudia.Anneal.moves_tried /. t_full in
  let mps_delta = float_of_int delta.Cloudia.Anneal.moves_tried /. t_delta in
  let apm_full = w_full /. float_of_int full.Cloudia.Anneal.moves_tried in
  let apm_delta = w_delta /. float_of_int delta.Cloudia.Anneal.moves_tried in
  let ratio = mps_delta /. mps_full in
  Printf.printf "  %-28s %12s %12s %12s %10s\n" "evaluator" "moves" "moves/sec" "words/move"
    "cost";
  Printf.printf "  %-28s %12d %12.0f %12.1f %7.3f ms\n" "full Cost.eval per move"
    full.Cloudia.Anneal.moves_tried mps_full apm_full full.Cloudia.Anneal.cost;
  Printf.printf "  %-28s %12d %12.0f %12.1f %7.3f ms\n" "delta kernel"
    delta.Cloudia.Anneal.moves_tried mps_delta apm_delta delta.Cloudia.Anneal.cost;
  Printf.printf "  speedup: %.1fx (identical plans: %s)\n" ratio
    (if delta.Cloudia.Anneal.plan = full.Cloudia.Anneal.plan then "yes" else "NO");
  Util.metric (Printf.sprintf "fig_delta.%s.moves_per_sec_full" key) mps_full;
  Util.metric (Printf.sprintf "fig_delta.%s.moves_per_sec_delta" key) mps_delta;
  Util.metric (Printf.sprintf "fig_delta.%s.speedup" key) ratio;
  Util.metric (Printf.sprintf "fig_delta.%s.alloc_words_per_move_full" key) apm_full;
  Util.metric (Printf.sprintf "fig_delta.%s.alloc_words_per_move_delta" key) apm_delta;
  Util.write_csv
    ("fig_delta_" ^ String.map (fun c -> if c = ' ' then '_' else c) name)
    [ "evaluator"; "moves"; "moves_per_sec"; "alloc_words_per_move" ]
    [
      [
        "full";
        string_of_int full.Cloudia.Anneal.moves_tried;
        Printf.sprintf "%.0f" mps_full;
        Printf.sprintf "%.1f" apm_full;
      ];
      [
        "delta";
        string_of_int delta.Cloudia.Anneal.moves_tried;
        Printf.sprintf "%.0f" mps_delta;
        Printf.sprintf "%.1f" apm_delta;
      ];
    ];
  ratio

(* Anytime profile of the delta-kernel anneal on the same instance: one
   instrumented run's incumbent trace feeds the primal-integral and
   time-to-quality metrics the CI gate bands (the timed best_of_3 runs
   above stay un-instrumented so the moves/sec measurement is clean). *)
let anytime ~key problem objective ~moves seed =
  let options =
    {
      Cloudia.Anneal.default_options with
      Cloudia.Anneal.time_limit = 3600.0;
      restarts = 1;
      max_moves = Some moves;
    }
  in
  let trace = ref [] in
  let t_start = Unix.gettimeofday () in
  let on_improve _plan cost = trace := (Unix.gettimeofday () -. t_start, cost) :: !trace in
  let _ =
    Cloudia.Anneal.solve_objective ~options ~on_improve (Prng.create seed) objective problem
  in
  let window_s = Unix.gettimeofday () -. t_start in
  Util.anytime_metrics ~key:(Printf.sprintf "fig_delta.%s" key) ~window_s (List.rev !trace)

(* Mirror a random proposal stream on a shadow plan and cross-check the
   kernel against Cost.eval at every step — proposals, commits and aborts
   alike. Any mismatch fails the whole bench run. *)
let equivalence name objective problem seed ~steps =
  let rng = Prng.create seed in
  let n = Cloudia.Types.node_count problem in
  let m = Cloudia.Types.instance_count problem in
  let shadow = Cloudia.Types.random_plan rng problem in
  let kernel = Cloudia.Delta_cost.create objective problem shadow in
  let eval = Cloudia.Cost.eval objective problem in
  let checked = ref 0 in
  for _ = 1 to steps do
    let node = Prng.int rng n and target = Prng.int rng m in
    if target <> shadow.(node) then begin
      let source = shadow.(node) in
      let other = Cloudia.Delta_cost.occupant kernel target in
      shadow.(node) <- target;
      (match other with Some o -> shadow.(o) <- source | None -> ());
      let candidate = Cloudia.Delta_cost.propose_move kernel ~node ~target in
      let reference = eval shadow in
      if Float.abs (candidate -. reference) > 1e-9 then
        failwith
          (Printf.sprintf
             "fig-delta: %s proposal cost mismatch (delta %.12f vs full %.12f)" name
             candidate reference);
      incr checked;
      if Prng.bool rng then Cloudia.Delta_cost.commit kernel
      else begin
        Cloudia.Delta_cost.abort kernel;
        shadow.(node) <- source;
        match other with Some o -> shadow.(o) <- target | None -> ()
      end;
      let committed = Cloudia.Delta_cost.cost kernel in
      let reference = eval shadow in
      if Float.abs (committed -. reference) > 1e-9 then
        failwith
          (Printf.sprintf
             "fig-delta: %s committed cost mismatch (delta %.12f vs full %.12f)" name
             committed reference)
    end
  done;
  Printf.printf "  %-42s OK (%d proposals cross-checked)\n" name !checked

let run () =
  Util.section "Delta" "incremental (delta) cost evaluation for local search";
  Util.subsection "equivalence vs full evaluation (hard gate)";
  let small_link = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let small_path = Graphs.Templates.random_dag (Prng.create 611) ~n:12 ~edge_prob:0.3 in
  List.iter
    (fun seed ->
      let env = Util.env_of ~seed Util.ec2 ~count:12 in
      let problem = Util.problem_of ~seed:(seed + 1) env small_link in
      equivalence
        (Printf.sprintf "longest-link 3x3 mesh (seed %d)" seed)
        Cloudia.Cost.Longest_link problem (seed + 2)
        ~steps:(Util.trials ~floor:200 2000))
    [ 621; 622 ];
  List.iter
    (fun seed ->
      let env = Util.env_of ~seed Util.ec2 ~count:15 in
      let problem = Util.problem_of ~seed:(seed + 1) env small_path in
      equivalence
        (Printf.sprintf "longest-path 12-node DAG (seed %d)" seed)
        Cloudia.Cost.Longest_path problem (seed + 2)
        ~steps:(Util.trials ~floor:200 2000))
    [ 631; 632 ];
  (* Throughput at the paper's behavioral-simulation scale: 8x8 mesh of
     64 nodes, 20% over-allocation. *)
  let rows = 8 and cols = 8 in
  let mesh = Graphs.Templates.mesh2d ~rows ~cols in
  let env = Util.env_of ~seed:601 Util.ec2 ~count:(rows * cols * 12 / 10) in
  let problem = Util.problem_of ~seed:602 env mesh in
  (* The smoke floor is high enough (tens of ms for the delta evaluator
     too) that the moves/sec estimate is stable inside the CI regression
     band. *)
  let moves = Util.trials ~floor:48_000 200_000 in
  let ratio =
    throughput ~key:"mesh64" "longest link, 64-node mesh" problem Cloudia.Cost.Longest_link
      ~moves 603
  in
  anytime ~key:"mesh64" problem Cloudia.Cost.Longest_link ~moves 603;
  let dag = Graphs.Templates.random_dag (Prng.create 641) ~n:64 ~edge_prob:0.08 in
  let env = Util.env_of ~seed:642 Util.ec2 ~count:(64 * 12 / 10) in
  let dag_problem = Util.problem_of ~seed:643 env dag in
  let dag_moves = Util.trials ~floor:12_000 50_000 in
  let _ =
    throughput ~key:"dag64" "longest path, 64-node DAG" dag_problem Cloudia.Cost.Longest_path
      ~moves:dag_moves 644
  in
  anytime ~key:"dag64" dag_problem Cloudia.Cost.Longest_path ~moves:dag_moves 644;
  Printf.printf "\n  longest-link delta speedup vs the >=5x claim: %.1fx — %s\n" ratio
    (if ratio >= 5.0 then "PASS"
     else if !Util.smoke then "not enforced in --smoke"
     else "FAIL");
  if (not !Util.smoke) && ratio < 5.0 then
    failwith
      (Printf.sprintf "fig-delta: delta kernel speedup %.1fx below the 5x acceptance bar"
         ratio)
