(* Benchmark harness: regenerates every figure of the ClouDiA paper's
   evaluation (at the reduced scales documented in DESIGN.md §4 and
   EXPERIMENTS.md) plus the ablations and kernel microbenchmarks.

   Usage:
     dune exec bench/main.exe            # everything (several minutes)
     dune exec bench/main.exe -- fig6 fig14 micro   # selected sections
     dune exec bench/main.exe -- --smoke            # every section, tiny
                                                    # budgets, seconds total
     dune exec bench/main.exe -- --smoke --trace t.jsonl   # + telemetry
                                                           # trace (JSONL) *)

let registry : (string * string * (unit -> unit)) list =
  [
    ("fig1", "EC2 latency heterogeneity CDF", Fig_cloud.fig1);
    ("fig2", "EC2 mean latency stability", Fig_cloud.fig2);
    ("fig4", "measurement scheme accuracy", Fig_measure.fig4);
    ("fig5", "staged measurement convergence", Fig_measure.fig5);
    ("fig6", "CP convergence vs cost clusters", Fig_solver.fig6);
    ("fig7", "CP vs MIP for LLNDP", Fig_solver.fig7);
    ("fig8", "CP scalability", Fig_solver.fig8);
    ("fig9", "MIP convergence for LPNDP", Fig_solver.fig9);
    ("fig10", "cost metric correlation", Fig_e2e.fig10);
    ("fig11", "metric choice vs application performance", Fig_e2e.fig11);
    ("fig12", "overall effectiveness", Fig_e2e.fig12);
    ("fig13", "over-allocation sweep", Fig_e2e.fig13);
    ("fig14", "lightweight vs CP (LLNDP)", Fig_light.fig14);
    ("fig15", "lightweight vs MIP (LPNDP)", Fig_light.fig15);
    ("fig16", "IP distance approximation", Fig_measure.fig16);
    ("fig17", "hop count approximation", Fig_measure.fig17);
    ("fig18", "GCE latency heterogeneity CDF", Fig_cloud.fig18);
    ("fig19", "GCE mean latency stability", Fig_cloud.fig19);
    ("fig20", "Rackspace latency heterogeneity CDF", Fig_cloud.fig20);
    ("fig21", "Rackspace mean latency stability", Fig_cloud.fig21);
    ("ablation-clustering", "cost-cluster sweep", Fig_solver.ablation_clustering);
    ("ablation-propagation", "labeling on/off", Fig_solver.ablation_propagation);
    ("ablation-bootstrap", "bootstrap seed quality", Fig_solver.ablation_bootstrap);
    ("ablation-anneal", "annealing vs lightweight approaches", Fig_ext.ablation_anneal);
    ("ext-weighted", "weighted communication graphs", Fig_ext.ext_weighted);
    ("ext-bandwidth", "bottleneck-bandwidth criterion", Fig_ext.ext_bandwidth);
    ("ext-redeploy", "iterative re-deployment", Fig_ext.ext_redeploy);
    ("ext-overlap", "overlapped measurement and execution", Fig_ext.ext_overlap);
    ("ext-traffic", "traffic-assignment deadline workload", Fig_ext.ext_traffic);
    ("ablation-ks", "staged batching parameter sweep", Fig_ext.ablation_ks);
    ("ablation-value-order", "CP value ordering heuristic", Fig_ext.ablation_value_order);
    ("fig-portfolio", "parallel portfolio vs single strategies", Fig_portfolio.run);
    ("fig-delta", "incremental vs full cost evaluation", Fig_delta.run);
    ("fig-serve", "advising daemon: caches and throughput", Fig_serve.run);
    ("fig-fault", "measurement robustness under faults", Fig_fault.run);
    ("fig-scale", "solver scaling past the dense ceiling", Fig_scale.run);
    ("micro", "kernel microbenchmarks", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let trace_file = ref None in
  let rec parse = function
    | [] -> []
    | "--smoke" :: tl ->
        Util.smoke := true;
        parse tl
    | [ "--trace" ] ->
        prerr_endline "--trace needs a file argument";
        exit 2
    | "--trace" :: file :: tl ->
        trace_file := Some file;
        parse tl
    | a :: tl -> a :: parse tl
  in
  let requested = parse args in
  if !trace_file <> None then Obs.Sink.enable ();
  let selected =
    match requested with
    | [] -> registry
    | names ->
        List.iter
          (fun name ->
            if not (List.exists (fun (id, _, _) -> id = name) registry) then begin
              Printf.eprintf "unknown section %s; available:\n" name;
              List.iter (fun (id, d, _) -> Printf.eprintf "  %-22s %s\n" id d) registry;
              exit 2
            end)
          names;
        List.filter (fun (id, _, _) -> List.mem id names) registry
  in
  Printf.printf "ClouDiA evaluation reproduction (%d sections)\n" (List.length selected);
  let started = Unix.gettimeofday () in
  List.iter
    (fun (id, _, run) ->
      let t0 = Unix.gettimeofday () in
      let before = Obs.Counter.snapshot () in
      run ();
      Printf.printf "\n[section completed in %.1f s]\n" (Unix.gettimeofday () -. t0);
      Util.print_counter_deltas id
        (Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ())))
    selected;
  Printf.printf "\nAll sections completed in %.1f s.\n" (Unix.gettimeofday () -. started);
  Util.flush_metrics ();
  match !trace_file with
  | None -> ()
  | Some file ->
      let events = Obs.Sink.drain () in
      let dropped = Obs.Sink.dropped () in
      let run = { Obs.Export.seed = None; argv = args } in
      let hists =
        List.filter (fun (h : Obs.Histogram.snapshot) -> h.hist_count > 0)
          (Obs.Histogram.snapshot ())
      in
      Out_channel.with_open_text file (fun oc ->
          Obs.Export.jsonl ~run ~counters:(Obs.Counter.snapshot ())
            ~gauges:(Obs.Gauge.snapshot ()) ~hists oc events);
      Printf.printf "Trace written to %s (%d events%s).\n" file (List.length events)
        (if dropped > 0 then Printf.sprintf ", %d dropped" dropped else "")
