(* Extension benches: the paper's future-work items (Sect. 8) and the
   dynamic re-deployment sketch (Sect. 2.2.1), built out in this
   repository and measured here. *)

let ext_weighted () =
  Util.section "Extension" "weighted communication graphs (Sect. 8 future work)";
  Printf.printf
    "A 4x4 mesh whose interior links carry 4x the traffic. The weighted CP\n\
    \ solver should beat the unweighted one on the weighted objective.\n\n";
  let rows = 4 and cols = 4 in
  let graph = Graphs.Templates.mesh2d ~rows ~cols in
  let env = Util.env_of ~seed:131 Util.ec2 ~count:(rows * cols * 12 / 10) in
  let problem = Util.problem_of ~seed:132 env graph in
  let interior node =
    let r = node / cols and c = node mod cols in
    r > 0 && r < rows - 1 && c > 0 && c < cols - 1
  in
  let w =
    Cloudia.Weighted.make problem ~weight:(fun i i' ->
        if interior i && interior i' then 4.0 else 1.0)
  in
  Printf.printf "  %-20s %14s\n" "solver" "weighted LL";
  let show name cost = Printf.printf "  %-20s %11.3f ms\n" name cost in
  show "default" (Cloudia.Weighted.longest_link w (Cloudia.Types.identity_plan problem));
  (* Fine clustering: coarse rounding blurs exactly the weighted/unweighted
     distinction this section demonstrates. *)
  let options = Util.cp_options ~clusters:(Some 60) ~time_limit:8.0 () in
  show "CP unweighted"
    (Cloudia.Weighted.longest_link w
       (Cloudia.Cp_solver.solve ~options (Prng.create 133) problem).Cloudia.Cp_solver.plan);
  show "CP weighted" (Cloudia.Weighted.solve_cp ~options (Prng.create 133) w).Cloudia.Cp_solver.cost;
  show "G2 weighted" (Cloudia.Weighted.longest_link w (Cloudia.Weighted.g2 w));
  show "anneal weighted"
    (Cloudia.Weighted.solve_anneal
       ~options:
         { Cloudia.Anneal.default_options with
           Cloudia.Anneal.time_limit = Util.budget 2.0 }
       Cloudia.Cost.Longest_link (Prng.create 134) w)
      .Cloudia.Anneal.cost

let ext_bandwidth () =
  Util.section "Extension" "bottleneck-bandwidth criterion (Sect. 8 future work)";
  Printf.printf
    "Maximize the minimum link bandwidth of a ring pipeline: minimizing the\n\
    \ longest link of the reciprocal matrix reuses the whole LLNDP stack.\n\n";
  Printf.printf "  %-10s %18s %18s\n" "nodes" "default Gbit/s" "optimized Gbit/s";
  List.iter
    (fun nodes ->
      let env = Util.env_of ~seed:(140 + nodes) Util.ec2 ~count:(nodes * 12 / 10) in
      let graph = Graphs.Templates.ring ~n:nodes in
      let default = Cloudia.Bandwidth.bottleneck_gbps env graph (Array.init nodes (fun i -> i)) in
      let _, optimized =
        Cloudia.Bandwidth.solve_cp
          ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:3.0 ())
          (Prng.create (150 + nodes))
          env graph
      in
      Printf.printf "  %-10d %15.2f %18.2f\n" nodes default optimized)
    [ 6; 10; 14 ]

let ext_redeploy () =
  Util.section "Extension" "iterative re-deployment under changing conditions (Sect. 2.2.1)";
  Printf.printf
    "20 epochs, 40%% change probability; adaptive policy migrates when the\n\
    \ projected saving over the remaining horizon exceeds the migration cost.\n\n";
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  Printf.printf "  %14s %12s %10s %10s %10s\n" "migration cost" "migrations" "adaptive"
    "static" "oracle";
  List.iter
    (fun migration_cost ->
      let config =
        {
          Cloudia.Redeploy.default_config with
          Cloudia.Redeploy.epochs = 20;
          change_prob = 0.4;
          migration_cost;
          solver_budget = Util.budget 0.5;
        }
      in
      let s =
        Cloudia.Redeploy.simulate ~config (Prng.create 161) Util.ec2 ~graph
          ~over_allocation:0.2
      in
      Printf.printf "  %14.2f %12d %10.2f %10.2f %10.2f\n" migration_cost
        s.Cloudia.Redeploy.migrations s.Cloudia.Redeploy.adaptive_total
        s.Cloudia.Redeploy.static_total s.Cloudia.Redeploy.oracle_total)
    [ 0.1; 0.5; 2.0; 8.0 ]

let ablation_anneal () =
  Util.section "Ablation" "simulated annealing vs the paper's lightweight approaches";
  Printf.printf
    "Same 2-D mesh setting as Fig. 14, equal budgets: annealing typically lands\n\
    \ between R2 and CP — local moves exploit structure randomization misses.\n\n";
  let rows = 5 and cols = 5 in
  let graph = Graphs.Templates.mesh2d ~rows ~cols in
  let allocations = 4 in
  let budget = Util.budget 2.0 in
  let totals = Hashtbl.create 8 in
  let add name v =
    let cur = try Hashtbl.find totals name with Not_found -> 0.0 in
    Hashtbl.replace totals name (cur +. v)
  in
  for alloc = 1 to allocations do
    let env = Util.env_of ~seed:(170 + alloc) Util.ec2 ~count:(rows * cols * 11 / 10) in
    let problem = Util.problem_of ~seed:(180 + alloc) env graph in
    let ll = Cloudia.Cost.longest_link problem in
    let r2, _, _ =
      Cloudia.Random_search.r2 (Prng.create (190 + alloc)) Cloudia.Cost.Longest_link problem
        ~time_limit:budget
    in
    add "R2" (ll r2);
    let sa =
      Cloudia.Anneal.solve_objective
        ~options:
          { Cloudia.Anneal.default_options with Cloudia.Anneal.time_limit = budget; restarts = 4 }
        (Prng.create (200 + alloc))
        Cloudia.Cost.Longest_link problem
    in
    add "anneal" sa.Cloudia.Anneal.cost;
    let cp =
      Cloudia.Cp_solver.solve
        ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:budget ())
        (Prng.create (210 + alloc))
        problem
    in
    add "CP" cp.Cloudia.Cp_solver.cost
  done;
  Printf.printf "  %-8s %16s\n" "method" "avg longest link";
  List.iter
    (fun name ->
      Printf.printf "  %-8s %13.3f ms\n" name
        (Hashtbl.find totals name /. float_of_int allocations))
    [ "R2"; "anneal"; "CP" ]

let ext_overlap () =
  Util.section "Extension" "overlapping measurement with execution (Sect. 2.2.2)";
  Printf.printf
    "Sequential = idle during measurement, then run optimally. Overlapped =\n\
    \ run on the default plan during measurement (slowed by probe\n\
    \ interference, and the probes see noisier means), migrate, finish.\n\n";
  Printf.printf "  %14s %12s %12s %12s %10s\n" "migration (s)" "sequential" "overlapped"
    "headroom" "winner";
  List.iter
    (fun migration_seconds ->
      let config =
        {
          Cloudia.Overlap.default_config with
          Cloudia.Overlap.measurement_seconds = 30.0;
          migration_seconds;
          total_ticks = Util.trials ~floor:3000 60_000;
          solver_budget = Util.budget 1.5;
        }
      in
      let a =
        Cloudia.Overlap.analyze ~config (Prng.create 221) Util.ec2 ~rows:4 ~cols:4
          ~over_allocation:0.2
      in
      Printf.printf "  %14.1f %10.1f s %10.1f s %10.1f s %10s\n" migration_seconds
        a.Cloudia.Overlap.sequential_seconds a.Cloudia.Overlap.overlapped_seconds
        (Cloudia.Overlap.migration_headroom a)
        (if Cloudia.Overlap.migration_headroom a > 0.0 then "overlap" else "sequential"))
    [ 0.0; 10.0; 30.0; 60.0 ]

let ablation_ks () =
  Util.section "Ablation" "staged-measurement batching parameter Ks (Sect. 5)";
  Printf.printf
    "The paper batches Ks consecutive probes per pair per stage to amortize\n\
    \ coordination. Larger Ks lowers coordination overhead per sample but\n\
    \ spreads a fixed stage budget over fewer pairs.\n\n";
  let n = 20 in
  let env = Util.env_of ~seed:231 Util.ec2 ~count:n in
  let truth =
    Netmeasure.Schemes.link_vector
      { Netmeasure.Schemes.means = Cloudsim.Env.mean_matrix env;
        samples = [||]; sim_seconds = 0.0 }
  in
  let sample_budget = 60_000 in
  Printf.printf "  %6s %10s %12s %14s\n" "Ks" "stages" "sim time" "norm. RMSE";
  List.iter
    (fun ks ->
      let stages = sample_budget / (ks * (n / 2)) in
      let m = Netmeasure.Schemes.staged (Prng.create 232) env ~ks ~stages in
      let v = Netmeasure.Schemes.link_vector m in
      let finite = Array.of_list (List.filter Float.is_finite (Array.to_list v)) in
      let fill = Stats.Summary.mean finite in
      let v = Array.map (fun x -> if Float.is_finite x then x else fill) v in
      Printf.printf "  %6d %10d %10.2f s %14.5f\n" ks stages m.Netmeasure.Schemes.sim_seconds
        (Stats.Error.normalized_rmse ~baseline:truth v))
    [ 1; 5; 10; 20; 50 ]

let ext_traffic () =
  Util.section "Extension" "dynamic traffic assignment workload (Sect. 2.1.1)";
  Printf.printf
    "Road-network partitions exchange boundary flows every round; a period is\n\
    \ on time when its simulation beats the real-time deadline.\n\n";
  let rng = Prng.create 241 in
  let net = Workloads.Roadnet.grid rng ~rows:10 ~cols:10 ~keep:0.85 in
  let part = Workloads.Roadnet.partition rng net ~parts:9 in
  let graph = Workloads.Roadnet.communication_graph net part in
  let env = Util.env_of ~seed:242 Util.ec2 ~count:11 in
  let problem = Util.problem_of ~seed:243 env graph in
  let optimized =
    (Cloudia.Cp_solver.solve
       ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:4.0 ())
       (Prng.create 244) problem)
      .Cloudia.Cp_solver.plan
  in
  let default = Cloudia.Types.identity_plan problem in
  let rounds = Util.trials ~floor:20 400 in
  let simulated_mean plan =
    (Workloads.Traffic.run (Prng.create 99) env ~plan ~graph ~periods:15
       ~rounds_per_period:rounds ~deadline_seconds:1e9)
      .Workloads.Traffic.mean_period_seconds
  in
  let deadline = (simulated_mean default +. simulated_mean optimized) /. 2.0 in
  Printf.printf "  %-10s %14s %14s %10s\n" "plan" "longest link" "mean period" "on time";
  List.iter
    (fun (name, plan) ->
      let o =
        Workloads.Traffic.run (Prng.create 245) env ~plan ~graph
          ~periods:(Util.trials ~floor:5 60)
          ~rounds_per_period:rounds ~deadline_seconds:deadline
      in
      Printf.printf "  %-10s %11.3f ms %11.2f s %9.0f%%\n" name
        (Cloudia.Cost.longest_link problem plan)
        o.Workloads.Traffic.mean_period_seconds
        (100.0 *. Workloads.Traffic.on_time_fraction o))
    [ ("default", default); ("ClouDiA", optimized) ]

let ablation_value_order () =
  Util.section "Ablation" "CP value-ordering heuristic (cheap-connectivity first)";
  Printf.printf
    "Instances are tried in ascending average-connectivity-cost order vs the\n\
    \ plain lexicographic order, at equal budgets.\n\n";
  let _, problem =
    let env = Util.env_of ~seed:251 Util.ec2 ~count:36 in
    (env, Util.problem_of ~seed:252 env (Graphs.Templates.mesh2d ~rows:5 ~cols:5))
  in
  List.iter
    (fun (label, order_values) ->
      let started = Unix.gettimeofday () in
      let r =
        Cloudia.Cp_solver.solve
          ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:4.0 ())
          ~order_values (Prng.create 253) problem
      in
      let conv = match List.rev r.Cloudia.Cp_solver.trace with (t, _) :: _ -> t | [] -> 0.0 in
      Printf.printf "  %-22s final %.3f ms, conv %.2f s, %d iterations, %.2f s total%s\n"
        label r.Cloudia.Cp_solver.cost conv r.Cloudia.Cp_solver.iterations
        (Unix.gettimeofday () -. started)
        (if r.Cloudia.Cp_solver.proven_optimal then " (proved)" else ""))
    [ ("connectivity order", true); ("lexicographic order", false) ]
