(* Figures 10-13: metric correlation, metric choice effect, overall
   effectiveness across allocations and workloads, and the over-allocation
   sweep. These drive the full pipeline: allocate -> measure -> search ->
   simulate the application. *)

(* One simulated application run per (workload, plan): returns simulated
   time (seconds for behavioral; ms response otherwise). *)
type workload = {
  name : string;
  graph : Graphs.Digraph.t;
  objective : Cloudia.Cost.objective;
  solve : Prng.t -> Cloudia.Types.problem -> Cloudia.Types.plan;
  simulate : Prng.t -> Cloudsim.Env.t -> Cloudia.Types.plan -> float;
}

let cp_solve ?(time_limit = 4.0) rng problem =
  (Cloudia.Cp_solver.solve
     ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit ())
     rng problem)
    .Cloudia.Cp_solver.plan

(* The paper solves LPNDP with MIP; at bench scale the from-scratch simplex
   makes that minutes-slow, and Fig. 15 shows R2 matches MIP's quality, so
   the end-to-end figures use R2 for the aggregation workload. *)
let r2_solve ?(time_limit = 2.0) rng problem =
  let plan, _, _ =
    Cloudia.Random_search.r2 rng Cloudia.Cost.Longest_path problem
      ~time_limit:(Util.budget time_limit)
  in
  plan

let behavioral ~rows ~cols ~ticks =
  {
    name = "behavioral";
    graph = Workloads.Behavioral.graph ~rows ~cols;
    objective = Cloudia.Cost.Longest_link;
    solve = (fun rng p -> cp_solve rng p);
    simulate =
      (fun rng env plan -> Workloads.Behavioral.time_to_solution rng env ~plan ~rows ~cols ~ticks);
  }

let aggregation ~fanout ~depth ~queries =
  {
    name = "aggregation";
    graph = Workloads.Aggregation.graph ~fanout ~depth;
    objective = Cloudia.Cost.Longest_path;
    solve = (fun rng p -> r2_solve rng p);
    simulate =
      (fun rng env plan ->
        Workloads.Aggregation.mean_response_time rng env ~plan ~fanout ~depth ~queries);
  }

let kv ~front_ends ~storage ~touch ~queries =
  {
    name = "kv-store";
    graph = Workloads.Kv_store.graph ~front_ends ~storage;
    objective = Cloudia.Cost.Longest_link;
    solve = (fun rng p -> cp_solve rng p);
    simulate =
      (fun rng env plan ->
        Workloads.Kv_store.mean_response_time rng env ~plan ~front_ends ~storage ~touch ~queries);
  }

let standard_workloads () =
  [
    behavioral ~rows:5 ~cols:5 ~ticks:(Util.trials ~floor:30 600);
    aggregation ~fanout:3 ~depth:2 ~queries:(Util.trials ~floor:75 1500);
    kv ~front_ends:6 ~storage:12 ~touch:8 ~queries:(Util.trials ~floor:200 4000);
  ]

let fig10 () =
  Util.section "Fig. 10" "correlation between latency cost metrics";
  Printf.printf
    "paper: 110 instances; mean+SD and 99%% track mean latency but are not\n\
    \       perfectly correlated\n\n";
  let env = Util.env_of ~seed:81 Util.ec2 ~count:50 in
  let derive =
    Cloudia.Metrics.estimate_all (Prng.create 82) env
      ~samples_per_pair:(Util.trials ~floor:20 200)
  in
  let flatten = Lat_matrix.off_diagonal in
  let mean = flatten (derive Cloudia.Metrics.Mean) in
  let msd = flatten (derive Cloudia.Metrics.Mean_plus_sd) in
  let p99 = flatten (derive Cloudia.Metrics.P99) in
  Printf.printf "  Pearson r (mean, mean+SD) = %.3f\n" (Stats.Correlation.pearson mean msd);
  Printf.printf "  Pearson r (mean, 99%%)     = %.3f\n" (Stats.Correlation.pearson mean p99);
  Printf.printf "  Spearman  (mean, 99%%)     = %.3f\n" (Stats.Correlation.spearman mean p99);
  Printf.printf "\n  sample links (mean / mean+SD / p99, ms):\n";
  for k = 0 to 7 do
    let i = k * 97 mod Array.length mean in
    Printf.printf "    %.3f / %.3f / %.3f\n" mean.(i) msd.(i) p99.(i)
  done

let fig11 () =
  Util.section "Fig. 11" "application performance of alternative cost metrics vs mean";
  Printf.printf
    "paper: 99%% reduces performance for all three workloads; mean+SD is mixed;\n\
    \       differences are modest — mean latency is a robust metric\n\n";
  Printf.printf "  %-12s %12s %12s\n" "workload" "mean+SD" "99%";
  List.iter
    (fun w ->
      let n = Graphs.Digraph.n w.graph in
      let count = n * 11 / 10 in
      let env = Util.env_of ~seed:91 Util.ec2 ~count in
      let derive =
        Cloudia.Metrics.estimate_all (Prng.create 92) env
          ~samples_per_pair:(Util.trials ~floor:10 100)
      in
      let perf metric =
        let problem = Cloudia.Types.of_matrix ~graph:w.graph (derive metric) in
        let plan = w.solve (Prng.create 93) problem in
        w.simulate (Prng.create 94) env plan
      in
      let base = perf Cloudia.Metrics.Mean in
      let rel m = Cloudia.Cost.improvement ~default:base ~optimized:(perf m) in
      Printf.printf "  %-12s %+10.1f%% %+10.1f%%\n" w.name
        (rel Cloudia.Metrics.Mean_plus_sd) (rel Cloudia.Metrics.P99))
    (standard_workloads ())

let fig12 () =
  Util.section "Fig. 12" "overall time reduction across allocations and workloads";
  Printf.printf
    "paper: 15-55%% reduction in time-to-solution / response time over five\n\
    \       EC2 allocations, 10%% over-allocation; aggregation benefits most,\n\
    \       key-value store least\n\n";
  Printf.printf "  %-12s %10s %10s %10s %10s %10s %9s\n" "workload" "alloc 1" "alloc 2"
    "alloc 3" "alloc 4" "alloc 5" "mean";
  List.iter
    (fun w ->
      let reductions =
        List.map
          (fun alloc ->
            let n = Graphs.Digraph.n w.graph in
            let count = n * 11 / 10 in
            let env = Util.env_of ~seed:(100 + alloc) Util.ec2 ~count in
            let problem = Util.problem_of ~seed:(200 + alloc) env w.graph in
            let plan = w.solve (Prng.create (300 + alloc)) problem in
            let default = Cloudia.Types.identity_plan problem in
            let t_default = w.simulate (Prng.create (400 + alloc)) env default in
            let t_optimized = w.simulate (Prng.create (400 + alloc)) env plan in
            Cloudia.Cost.improvement ~default:t_default ~optimized:t_optimized)
          [ 1; 2; 3; 4; 5 ]
      in
      Printf.printf "  %-12s" w.name;
      List.iter (fun r -> Printf.printf " %9.1f%%" r) reductions;
      Printf.printf " %8.1f%%\n"
        (List.fold_left ( +. ) 0.0 reductions /. float_of_int (List.length reductions)))
    (standard_workloads ())

let fig13 () =
  Util.section "Fig. 13" "effect of the over-allocation ratio (behavioral simulation)";
  Printf.printf
    "paper: 16%% improvement with no over-allocation (pure re-mapping); the first\n\
    \       10%% of extra instances buys the largest additional gain (28%%);\n\
    \       50%% extra reaches 38%%\n\n";
  let rows = 5 and cols = 5 in
  let nodes = rows * cols in
  let ticks = Util.trials ~floor:30 600 in
  let graph = Workloads.Behavioral.graph ~rows ~cols in
  let seeds = [ 111; 211; 311 ] in
  Printf.printf "  %8s %12s %14s %14s %12s\n" "extra" "instances" "default" "ClouDiA" "reduction";
  List.iter
    (fun ratio ->
      let count = nodes + (nodes * ratio / 100) in
      (* Average over allocations; each uses the prefix of one big
         allocation, like the paper's single 150-instance run. *)
      let d_total = ref 0.0 and o_total = ref 0.0 in
      List.iter
        (fun seed ->
          let full = Util.env_of ~seed Util.ec2 ~count:(nodes * 3 / 2) in
          let env = Cloudsim.Env.sub_env full (Array.init count (fun i -> i)) in
          let problem = Util.problem_of ~seed:(seed + 1) env graph in
          let plan = cp_solve ~time_limit:3.0 (Prng.create (seed + 2)) problem in
          let default = Cloudia.Types.identity_plan problem in
          d_total :=
            !d_total
            +. Workloads.Behavioral.time_to_solution (Prng.create (seed + 3)) env ~plan:default
                 ~rows ~cols ~ticks;
          o_total :=
            !o_total
            +. Workloads.Behavioral.time_to_solution (Prng.create (seed + 3)) env ~plan ~rows
                 ~cols ~ticks)
        seeds;
      let k = float_of_int (List.length seeds) in
      let t_default = !d_total /. k and t_opt = !o_total /. k in
      Printf.printf "  %7d%% %12d %12.2f s %12.2f s %10.1f%%\n" ratio count t_default t_opt
        (Cloudia.Cost.improvement ~default:t_default ~optimized:t_opt))
    [ 0; 10; 20; 30; 50 ]
