(* Serving daemon: cold-vs-warm advise latency and sustained jobs/sec.

   A tenant that re-submits the same measurement matrix must be answered
   from the fingerprint-keyed caches: the first (cold) solve pays the
   full anneal, the repeat (warm) is a memo hit. This section starts a
   real daemon on a Unix socket, drives it through the client library,
   and enforces the acceptance bar: warm advise latency at least 3x lower
   than cold on a repeated 64-node instance. It also measures mixed-
   workload throughput across two client threads, and checks the daemon
   survives a client that disconnects mid-job. *)

let socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "cloudia-bench-%d.sock" (Unix.getpid ()))

let mk_job ~id ~seed ~moves ~graph ~costs =
  {
    Serve.Protocol.id;
    tenant = "bench";
    seed;
    solver = Serve.Protocol.Anneal;
    objective = Cloudia.Cost.Longest_link;
    budget = 10.0;
    deadline = Some 60.0;
    max_moves = Some moves;
    clusters = None;
    graph;
    costs;
  }

(* (cost, latency_ms, cached, warm) of a [Result]; anything else fails
   the bench. *)
let expect_result = function
  | Serve.Protocol.Result { r_cost; r_latency_ms; r_cached; r_warm; _ } ->
      (r_cost, r_latency_ms, r_cached, r_warm)
  | Serve.Protocol.Rejected { reason; _ } -> failwith ("fig-serve: rejected: " ^ reason)
  | Serve.Protocol.Failed { message; _ } -> failwith ("fig-serve: failed: " ^ message)
  | _ -> failwith "fig-serve: unexpected reply"

let run () =
  Util.section "Serve" "advising daemon: fingerprint caches and throughput";
  let sock = socket_path () in
  let config =
    { (Serve.Server.default_config ~socket_path:sock) with domains = 2; cache_capacity = 16 }
  in
  let server = Serve.Server.start config in
  Fun.protect ~finally:(fun () -> Serve.Server.stop server) @@ fun () ->
  (* The paper's behavioral-simulation scale: 8x8 mesh, 20 % over-allocation. *)
  let mesh = Graphs.Templates.mesh2d ~rows:8 ~cols:8 in
  let env64 = Util.env_of ~seed:701 Util.ec2 ~count:(64 * 12 / 10) in
  let costs64 = Lat_matrix.of_arrays (Cloudsim.Env.mean_matrix env64) in
  let moves = Util.trials ~floor:2_000 30_000 in

  Util.subsection "cold vs warm advise latency (64-node mesh, repeated)";
  let c = Serve.Client.connect sock in
  let cold_cost, cold_ms, cold_cached, _ =
    expect_result
      (Serve.Client.advise c (mk_job ~id:"cold" ~seed:7 ~moves ~graph:mesh ~costs:costs64))
  in
  if cold_cached then failwith "fig-serve: first submission reported as cached";
  let warm_cost, warm_ms, warm_cached, _ =
    expect_result
      (Serve.Client.advise c (mk_job ~id:"warm" ~seed:7 ~moves ~graph:mesh ~costs:costs64))
  in
  if not warm_cached then failwith "fig-serve: identical re-submission missed the memo";
  if warm_cost <> cold_cost then failwith "fig-serve: memo returned a different cost";
  (* Same matrix, new seed: a fresh solve, but seeded from the cached
     incumbent of the matching fingerprint. *)
  let _, reseed_ms, reseed_cached, reseed_warm =
    expect_result
      (Serve.Client.advise c (mk_job ~id:"reseed" ~seed:8 ~moves ~graph:mesh ~costs:costs64))
  in
  if reseed_cached then failwith "fig-serve: different seed must not hit the memo";
  if not reseed_warm then failwith "fig-serve: known fingerprint did not warm-start";
  let speedup = cold_ms /. Float.max 1e-6 warm_ms in
  Printf.printf "  %-24s %12s %10s %8s\n" "request" "latency" "cached" "warm";
  let row name ms cached warm =
    Printf.printf "  %-24s %9.3f ms %10s %8s\n" name ms
      (if cached then "yes" else "no")
      (if warm then "yes" else "no")
  in
  row "cold (first solve)" cold_ms false false;
  row "warm (memo hit)" warm_ms true false;
  row "re-seeded (warm start)" reseed_ms false true;
  Printf.printf "  warm speedup: %.0fx\n" speedup;
  Util.metric "fig_serve.cold_ms" cold_ms;
  Util.metric "fig_serve.warm_ms" warm_ms;
  Util.metric "fig_serve.warm_speedup" speedup;

  Util.subsection "sustained mixed workload (2 client threads)";
  (* Three tenants' matrices at 16 nodes; each (matrix, seed) job is
     submitted by both threads, so half the fleet's solves are answered
     across tenants from the memo. *)
  let ring = Graphs.Templates.ring ~n:16 in
  let matrices =
    List.map
      (fun seed ->
        Lat_matrix.of_arrays
          (Cloudsim.Env.mean_matrix (Util.env_of ~seed Util.ec2 ~count:20)))
      [ 711; 712; 713 ]
  in
  let small_moves = Util.trials ~floor:500 5_000 in
  let per_thread = Util.trials ~floor:9 30 in
  let worker tid () =
    let c = Serve.Client.connect sock in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    List.iteri
      (fun i costs ->
        for s = 0 to (per_thread / 3) - 1 do
          ignore
            (expect_result
               (Serve.Client.advise c
                  (mk_job
                     ~id:(Printf.sprintf "t%d-m%d-s%d" tid i s)
                     ~seed:s ~moves:small_moves ~graph:ring ~costs)))
        done)
      matrices
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.map (fun tid -> Thread.create (worker tid) ()) [ 0; 1 ] in
  List.iter Thread.join threads;
  let elapsed = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let total = 2 * (per_thread / 3) * 3 in
  let jps = float_of_int total /. elapsed in
  Printf.printf "  %d jobs in %.2f s: %.0f jobs/sec\n" total elapsed jps;
  Util.metric "fig_serve.jobs_per_sec" jps;

  Util.subsection "client disconnect mid-job";
  let d = Serve.Client.connect sock in
  Serve.Protocol.send_request (Serve.Client.raw_fd d)
    (Serve.Protocol.Advise (mk_job ~id:"orphan" ~seed:33 ~moves ~graph:mesh ~costs:costs64));
  Serve.Client.close d;
  (* The daemon must absorb the EPIPE and keep answering. *)
  Serve.Client.ping c;
  let _, _, after_cached, _ =
    expect_result
      (Serve.Client.advise c (mk_job ~id:"after" ~seed:7 ~moves ~graph:mesh ~costs:costs64))
  in
  if not after_cached then failwith "fig-serve: cache lost after client disconnect";
  Printf.printf "  daemon alive after mid-job disconnect: yes\n";
  Serve.Client.close c;

  Printf.printf "\n  warm advise vs the >=3x claim: %.0fx — %s\n" speedup
    (if speedup >= 3.0 then "PASS" else "FAIL");
  if speedup < 3.0 then
    failwith
      (Printf.sprintf "fig-serve: warm/cold speedup %.1fx below the 3x acceptance bar"
         speedup)
