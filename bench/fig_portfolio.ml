(* Solver portfolio: 1/2/4-domain portfolios against each single strategy
   at equal wall-clock. The paper evaluates its strategies one at a time;
   this section shows what a fixed tuning budget buys when they race in
   parallel OCaml domains and share the incumbent (the CP member starts
   each threshold iteration from the best plan any worker published).

   On a small enough problem the exact CP member proves optimality within
   the budget and cancels the rest, so the 4-domain portfolio is never
   worse than the best single strategy — that inequality is checked and
   printed explicitly, as is bit-level run-to-run determinism. *)

let run () =
  Util.section "Portfolio" "parallel solver portfolio vs single strategies (LLNDP)";
  let rows = 3 and cols = 3 in
  let graph = Graphs.Templates.mesh2d ~rows ~cols in
  let env = Util.env_of ~seed:301 Util.ec2 ~count:(rows * cols * 12 / 10) in
  let problem = Util.problem_of ~seed:302 env graph in
  let ll = Cloudia.Cost.longest_link problem in
  let budget = Util.budget 6.0 in
  Printf.printf
    "3x3 mesh on %d instances, %.2f s wall-clock per contender\n\n"
    (Cloudia.Types.instance_count problem) budget;
  Printf.printf "  %-22s %14s %10s %12s\n" "strategy" "longest link" "time" "note";
  let results = ref [] in
  let show name cost seconds note =
    results := (name, cost) :: !results;
    Printf.printf "  %-22s %11.3f ms %8.2f s %12s\n" name cost seconds note
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* Single strategies, each with the full budget to itself. *)
  let plan, t = timed (fun () -> Cloudia.Greedy.g2 problem) in
  show "G2" (ll plan) t "";
  let (plan, _), t =
    timed (fun () ->
        Cloudia.Random_search.r1 (Prng.create 303) Cloudia.Cost.Longest_link problem
          ~trials:(Util.trials ~floor:50 1000))
  in
  show "R1" (ll plan) t "";
  let (plan, _, _), t =
    timed (fun () ->
        Cloudia.Random_search.r2 (Prng.create 304) Cloudia.Cost.Longest_link problem
          ~time_limit:budget)
  in
  show "R2" (ll plan) t "";
  let sa, t =
    timed (fun () ->
        Cloudia.Anneal.solve_objective
          ~options:{ Cloudia.Anneal.default_options with Cloudia.Anneal.time_limit = budget }
          (Prng.create 305) Cloudia.Cost.Longest_link problem)
  in
  show "SA" sa.Cloudia.Anneal.cost t "";
  let cp, t =
    timed (fun () ->
        Cloudia.Cp_solver.solve
          ~options:(Util.cp_options ~clusters:None ~time_limit:budget ())
          (Prng.create 306) problem)
  in
  show "CP (exact)" cp.Cloudia.Cp_solver.cost t
    (if cp.Cloudia.Cp_solver.proven_optimal then "proved" else "time limit");
  let best_single =
    List.fold_left (fun acc (_, c) -> Float.min acc c) infinity !results
  in
  (* Portfolios under the same wall-clock budget, growing the roster. *)
  let portfolio domains =
    let options =
      {
        Cloudia.Portfolio.members =
          Cloudia.Portfolio.default_members ~objective:Cloudia.Cost.Longest_link ~domains;
        time_limit = budget;
        share_incumbent = true;
      }
    in
    Cloudia.Portfolio.solve ~options (Prng.create 307) Cloudia.Cost.Longest_link problem
  in
  let last = ref None in
  List.iter
    (fun domains ->
      let r, t = timed (fun () -> portfolio domains) in
      if domains = 4 then last := Some r;
      let winner = List.nth r.Cloudia.Portfolio.workers r.Cloudia.Portfolio.winner in
      show
        (Printf.sprintf "%d-domain portfolio" domains)
        r.Cloudia.Portfolio.cost t
        (if r.Cloudia.Portfolio.proven_optimal then "proved"
         else
           Printf.sprintf "won by %s"
             (Cloudia.Portfolio.member_to_string winner.Cloudia.Portfolio.member)))
    [ 1; 2; 4 ];
  (match !last with
  | None -> ()
  | Some r ->
      Printf.printf "\n  per-worker telemetry of the 4-domain portfolio:\n";
      Printf.printf "  %-8s %14s %14s %12s\n" "member" "best cost" "time to best" "effort";
      List.iter
        (fun (w : Cloudia.Portfolio.worker) ->
          Printf.printf "  %-8s %11.3f ms %12.3f s %12d\n"
            (Cloudia.Portfolio.member_to_string w.Cloudia.Portfolio.member)
            w.Cloudia.Portfolio.best_cost w.Cloudia.Portfolio.time_to_best
            w.Cloudia.Portfolio.iterations)
        r.Cloudia.Portfolio.workers;
      Util.print_trace ~csv:"fig_portfolio_trace"
        "\n  merged anytime trace (all workers):" r.Cloudia.Portfolio.trace;
      Printf.printf "\n  4-domain portfolio vs best single strategy: %.3f vs %.3f ms — %s\n"
        r.Cloudia.Portfolio.cost best_single
        (if r.Cloudia.Portfolio.cost <= best_single +. 1e-9 then "NO WORSE (as claimed)"
         else "WORSE");
      let again = portfolio 4 in
      Printf.printf "  determinism re-run: %.6f vs %.6f ms, plans %s\n"
        r.Cloudia.Portfolio.cost again.Cloudia.Portfolio.cost
        (if again.Cloudia.Portfolio.plan = r.Cloudia.Portfolio.plan then "IDENTICAL"
         else "different"))
