(* Figures 6, 7, 8, 9: solver convergence and scalability, plus the
   ablation benches called out in DESIGN.md. Scales are reduced from the
   paper's 50-100 EC2 instances + CPLEX to what the from-scratch solvers
   handle in seconds; the reproduction target is the relative behaviour. *)

let mesh_problem ~seed ~instances ~rows ~cols =
  let env = Util.env_of ~seed Util.ec2 ~count:instances in
  let graph = Graphs.Templates.mesh2d ~rows ~cols in
  (env, Util.problem_of ~seed:(seed + 1000) env graph)

let fig6 () =
  Util.section "Fig. 6" "CP convergence for LLNDP under cost clustering";
  Printf.printf
    "paper: 100 instances, 2-D mesh; k=20 converges in ~2 min vs 16 min unclustered;\n\
    \       k=5 converges fastest but to a worse cost (0.81 vs 0.55 ms)\n\n";
  let _, problem = mesh_problem ~seed:11 ~instances:40 ~rows:6 ~cols:6 in
  List.iter
    (fun (label, clusters) ->
      let options = Util.cp_options ~clusters ~time_limit:6.0 () in
      let r = Cloudia.Cp_solver.solve ~options (Prng.create 12) problem in
      Util.print_trace
        ~csv:(Printf.sprintf "fig6_%s" (String.map (function ' ' | '=' -> '_' | c -> c) label))
        (Printf.sprintf "%s: final %.3f ms after %d iterations%s" label
           r.Cloudia.Cp_solver.cost r.Cloudia.Cp_solver.iterations
           (if r.Cloudia.Cp_solver.proven_optimal then " (proved)" else ""))
        r.Cloudia.Cp_solver.trace)
    [ ("k = 5", Some 5); ("k = 20", Some 20); ("no clustering", None) ]

let fig7 () =
  Util.section "Fig. 7" "CP vs MIP convergence for LLNDP (k = 20)";
  Printf.printf
    "paper: at 100 instances MIP performs poorly — its encoding is less compact\n\
    \       and its LP relaxation weak; CP finds a significantly better solution.\n\
    \       (MIP here runs at 10 instances and still trails CP at 40.)\n\n";
  let _, cp_problem = mesh_problem ~seed:21 ~instances:40 ~rows:6 ~cols:6 in
  let cp =
    Cloudia.Cp_solver.solve
      ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:6.0 ())
      (Prng.create 22) cp_problem
  in
  Util.print_trace
    (Printf.sprintf "CP (40 instances, 36-node mesh): final %.3f ms" cp.Cloudia.Cp_solver.cost)
    cp.Cloudia.Cp_solver.trace;
  let _, mip_problem = mesh_problem ~seed:23 ~instances:10 ~rows:3 ~cols:3 in
  let mip =
    Cloudia.Mip_solver.solve_longest_link
      ~options:(Util.mip_options ~clusters:(Some 20) ~time_limit:6.0 ())
      (Prng.create 24) mip_problem
  in
  Util.print_trace
    (Printf.sprintf "MIP (10 instances, 9-node mesh): final %.3f ms after %d B&B nodes%s"
       mip.Cloudia.Mip_solver.cost mip.Cloudia.Mip_solver.nodes_explored
       (if mip.Cloudia.Mip_solver.proven_optimal then " (proved)" else " (time limit)"))
    mip.Cloudia.Mip_solver.trace;
  (* CP at MIP's own scale, to compare like for like. *)
  let cp_small =
    Cloudia.Cp_solver.solve
      ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:6.0 ())
      (Prng.create 24) mip_problem
  in
  Printf.printf
    "\nCP on the same 10-instance problem: %.3f ms in %.2f s (%d iterations%s)\n"
    cp_small.Cloudia.Cp_solver.cost
    (match List.rev cp_small.Cloudia.Cp_solver.trace with (t, _) :: _ -> t | [] -> 0.0)
    cp_small.Cloudia.Cp_solver.iterations
    (if cp_small.Cloudia.Cp_solver.proven_optimal then ", proved" else "")

let fig8 () =
  Util.section "Fig. 8" "CP scalability for LLNDP";
  Printf.printf
    "paper: random instance subsets per size; average convergence time grows\n\
    \       acceptably with instance count, solution quality stays similar\n\n";
  let base_env = Util.env_of ~seed:31 Util.ec2 ~count:40 in
  let rng = Prng.create 32 in
  Printf.printf "  %10s %12s %16s %14s\n" "instances" "mesh" "avg conv time" "avg improve";
  List.iter
    (fun (instances, rows, cols) ->
      let subsets = Util.trials ~floor:1 3 in
      let total_time = ref 0.0 and total_improve = ref 0.0 in
      for _ = 1 to subsets do
        let subset = Prng.sample_without_replacement rng instances 40 in
        let env = Cloudsim.Env.sub_env base_env subset in
        let graph = Graphs.Templates.mesh2d ~rows ~cols in
        let problem = Util.problem_of ~seed:(Prng.int rng 10000) env graph in
        let r =
          Cloudia.Cp_solver.solve
            ~options:(Util.cp_options ~clusters:(Some 20) ~time_limit:4.0 ())
            (Prng.create (Prng.int rng 10000))
            problem
        in
        (* Convergence time = elapsed at the last incumbent improvement. *)
        let conv = match List.rev r.Cloudia.Cp_solver.trace with (t, _) :: _ -> t | [] -> 0.0 in
        total_time := !total_time +. conv;
        let default = Cloudia.Cost.longest_link problem (Cloudia.Types.identity_plan problem) in
        total_improve :=
          !total_improve
          +. Cloudia.Cost.improvement ~default ~optimized:r.Cloudia.Cp_solver.cost
      done;
      Printf.printf "  %10d %9dx%d %13.2f s %12.1f%%\n" instances rows cols
        (!total_time /. float_of_int subsets)
        (!total_improve /. float_of_int subsets))
    [ (12, 3, 3); (19, 4, 4); (28, 5, 5); (40, 6, 6) ]

let tree_problem ~seed ~instances ~fanout ~depth =
  let env = Util.env_of ~seed Util.ec2 ~count:instances in
  let graph = Graphs.Templates.aggregation_tree ~fanout ~depth in
  (env, Util.problem_of ~seed:(seed + 1000) env graph)

let fig9 () =
  Util.section "Fig. 9" "MIP convergence for LPNDP under cost clustering";
  Printf.printf
    "paper: 50 instances, aggregation tree (depth <= 4); k=5 performs poorly and —\n\
    \       unlike LLNDP — clustering does NOT speed up LPNDP, because path costs\n\
    \       are sums and the solver cannot exploit few distinct values\n\n";
  let _, problem = tree_problem ~seed:41 ~instances:10 ~fanout:2 ~depth:2 in
  List.iter
    (fun (label, clusters) ->
      let options = Util.mip_options ~clusters ~time_limit:8.0 () in
      let r = Cloudia.Mip_solver.solve_longest_path ~options (Prng.create 42) problem in
      Util.print_trace
        (Printf.sprintf "%s: final %.3f ms after %d B&B nodes%s" label
           r.Cloudia.Mip_solver.cost r.Cloudia.Mip_solver.nodes_explored
           (if r.Cloudia.Mip_solver.proven_optimal then " (proved)" else " (time limit)"))
        r.Cloudia.Mip_solver.trace)
    [ ("k = 5", Some 5); ("k = 20", Some 20); ("no clustering", None) ]

(* ---- ablations (DESIGN.md) ---- *)

let ablation_clustering () =
  Util.section "Ablation" "cost-cluster count sweep for CP-LLNDP (extends Fig. 6)";
  let _, problem = mesh_problem ~seed:51 ~instances:36 ~rows:5 ~cols:5 in
  Printf.printf "  %14s %12s %12s %12s\n" "clusters" "final cost" "conv time" "iterations";
  List.iter
    (fun (label, clusters) ->
      let r =
        Cloudia.Cp_solver.solve
          ~options:(Util.cp_options ~clusters ~time_limit:4.0 ())
          (Prng.create 52) problem
      in
      let conv = match List.rev r.Cloudia.Cp_solver.trace with (t, _) :: _ -> t | [] -> 0.0 in
      Printf.printf "  %14s %9.3f ms %10.2f s %12d\n" label r.Cloudia.Cp_solver.cost conv
        r.Cloudia.Cp_solver.iterations)
    [
      ("k = 5", Some 5);
      ("k = 10", Some 10);
      ("k = 20", Some 20);
      ("k = 40", Some 40);
      ("none", None);
    ]

let ablation_propagation () =
  Util.section "Ablation" "degree-compatibility labeling on/off in the CP solver";
  let _, problem = mesh_problem ~seed:61 ~instances:36 ~rows:5 ~cols:5 in
  List.iter
    (fun (label, use_labeling) ->
      let options =
        { (Util.cp_options ~clusters:(Some 20) ~time_limit:4.0 ()) with
          Cloudia.Cp_solver.use_labeling }
      in
      let started = Unix.gettimeofday () in
      let r = Cloudia.Cp_solver.solve ~options (Prng.create 62) problem in
      Printf.printf "  %-16s final %.3f ms, %d iterations, %.2f s%s\n" label
        r.Cloudia.Cp_solver.cost r.Cloudia.Cp_solver.iterations
        (Unix.gettimeofday () -. started)
        (if r.Cloudia.Cp_solver.proven_optimal then " (proved)" else ""))
    [ ("labeling on", true); ("labeling off", false) ]

let ablation_bootstrap () =
  Util.section "Ablation" "bootstrap incumbent quality (best-of-k random seeds)";
  Printf.printf "paper bootstraps with the best of 10 random plans (Sect. 6.3.1)\n\n";
  let _, problem = mesh_problem ~seed:71 ~instances:36 ~rows:5 ~cols:5 in
  Printf.printf "  %12s %14s %12s\n" "bootstrap" "start cost" "final cost";
  List.iter
    (fun trials ->
      let options =
        { (Util.cp_options ~clusters:(Some 20) ~time_limit:3.0 ()) with
          Cloudia.Cp_solver.bootstrap_trials = trials }
      in
      let r = Cloudia.Cp_solver.solve ~options (Prng.create 72) problem in
      let start_cost = match r.Cloudia.Cp_solver.trace with (_, c) :: _ -> c | [] -> nan in
      Printf.printf "  %12d %11.3f ms %9.3f ms\n" trials start_cost r.Cloudia.Cp_solver.cost)
    [ 1; 10; 100; 1000 ]
