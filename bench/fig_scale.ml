(* fig-scale: solver scaling past the dense tableau ceiling.

   Four gated measurements backing DESIGN.md §14:

   - CP symmetry breaking on a rack-structured cost matrix: identical
     true-cost rows make whole racks instance-interchangeable, so the
     broken search visits one representative per rack where the unbroken
     search tries every instance. Same final cost, far fewer nodes.
   - A 150-instance LLNDP LP relaxation whose estimated dense tableau is
     ~5x past [Simplex.max_tableau_cells] — the model routes to the
     sparse revised-simplex kernel automatically, with linearized-max
     rows generated lazily from violated edges.
   - Branch-and-bound at 40 instances, where every relaxation runs
     sparse and child nodes warm-start from the parent basis.
   - A bit-match check: a pure assignment LP (totally unimodular, dyadic
     costs, so every pivot quantity is exact) solved dense and sparse
     must agree on the optimal objective to the last bit.

   The rack matrix is exact on purpose: [rack] instances per rack at
   0.25 ms, [pod] per pod at 0.5 ms, 1.0 ms across pods. Racks are true
   interchangeability classes under exact float equality, and every cost
   is a dyadic rational, so simplex arithmetic on the assignment
   polytope stays exact. *)

let rack = 5

let pod = 50

let rack_matrix m =
  Lat_matrix.init m (fun i j ->
      if i = j then 0.0
      else if i / rack = j / rack then 0.25
      else if i / pod = j / pod then 0.5
      else 1.0)

let mesh_rows = 6

let mesh_cols = 6

let rack_problem m =
  let graph = Graphs.Templates.mesh2d ~rows:mesh_rows ~cols:mesh_cols in
  Cloudia.Types.of_matrix ~graph (rack_matrix m)

(* Fixed generous wall-clock caps: the searches below terminate naturally
   (UNSAT proof or node cap) in well under a second, and capping them at
   the smoke-mode 0.05 s would replace the deterministic node counts this
   section gates with wall-clock noise. *)
let cp_options ~symmetry_breaking =
  {
    Cloudia.Cp_solver.clusters = None;
    time_limit = 30.0;
    iteration_time_limit = None;
    use_labeling = true;
    bootstrap_trials = 10;
    symmetry_breaking;
  }

let cp_scale () =
  Util.subsection "CP symmetry breaking: nodes to optimality, racks of identical instances";
  Printf.printf
    "  mesh %dx%d; optimum is one pod (0.5 ms); proving it means refuting the\n\
    \  0.25 ms threshold, where the unbroken search tries every instance at the\n\
    \  root and the broken search one representative per rack\n\n"
    mesh_rows mesh_cols;
  Printf.printf "  %10s %11s %11s %8s %6s %7s\n" "instances" "nodes sym" "nodes plain"
    "ratio" "cost" "proved";
  List.iter
    (fun m ->
      let run symmetry_breaking =
        Cloudia.Cp_solver.solve
          ~options:(cp_options ~symmetry_breaking)
          ~node_limit:20_000 (Prng.create 91) (rack_problem m)
      in
      let sym = run true in
      let plain = run false in
      let ratio =
        float_of_int sym.Cloudia.Cp_solver.nodes
        /. float_of_int (max 1 plain.Cloudia.Cp_solver.nodes)
      in
      let cost_match =
        if sym.Cloudia.Cp_solver.cost = plain.Cloudia.Cp_solver.cost then 1.0 else 0.0
      in
      Printf.printf "  %10d %11d %11d %8.3f %6.2f %7s\n" m sym.Cloudia.Cp_solver.nodes
        plain.Cloudia.Cp_solver.nodes ratio sym.Cloudia.Cp_solver.cost
        (if sym.Cloudia.Cp_solver.proven_optimal then "yes" else "no");
      let key fmt = Printf.sprintf "fig_scale.cp%d.%s" m fmt in
      Util.metric (key "nodes_sym") (float_of_int sym.Cloudia.Cp_solver.nodes);
      Util.metric (key "nodes_unsym") (float_of_int plain.Cloudia.Cp_solver.nodes);
      Util.metric (key "sym_node_ratio") ratio;
      Util.metric (key "cost_match") cost_match;
      Util.metric (key "proven_sym")
        (if sym.Cloudia.Cp_solver.proven_optimal then 1.0 else 0.0))
    [ 40; 80; 150 ]

(* Counter deltas for one thunk, as an assoc list. *)
let with_counter_deltas f =
  let before = Obs.Counter.snapshot () in
  let r = f () in
  (r, Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ()))

let counter deltas name = try float_of_int (List.assoc name deltas) with Not_found -> 0.0

let lp_relaxation () =
  Util.subsection "150-instance LLNDP LP relaxation on the sparse kernel";
  let m = 150 in
  let lat = rack_matrix m in
  let graph = Graphs.Templates.mesh2d ~rows:mesh_rows ~cols:mesh_cols in
  let n = Graphs.Digraph.n graph in
  let edges = Graphs.Digraph.edges graph in
  let model = Lp.Model.create () in
  let cap = Lp.Model.add_var model ~obj:1.0 "cap" in
  let x =
    Array.init n (fun i ->
        Array.init m (fun j -> Lp.Model.add_var model ~ub:1.0 (Printf.sprintf "x_%d_%d" i j)))
  in
  for i = 0 to n - 1 do
    Lp.Model.add_constraint model
      (List.init m (fun j -> (x.(i).(j), 1.0)))
      Lp.Simplex.Eq 1.0
  done;
  for j = 0 to m - 1 do
    Lp.Model.add_constraint model
      (List.init n (fun i -> (x.(i).(j), 1.0)))
      Lp.Simplex.Le 1.0
  done;
  Printf.printf
    "  %d x-variables, %d assignment rows; linearized-max rows added lazily\n\
    \  from the most violated (edge, instance-pair) terms of the incumbent\n\n"
    (n * m) (n + m);
  (* Lazy cut loop: solve, scan every (edge, j, j') for a violated
     cap >= CL(j,j') * (x_ij + x_i'j' - 1), add the worst offenders as
     Le rows, repeat. Each round re-solves cold on the sparse kernel. *)
  let max_rounds = Util.trials ~floor:1 6 in
  let cuts_per_round = 150 in
  let rounds = ref 0 in
  let cuts = ref 0 in
  let all_optimal = ref true in
  let value = ref nan in
  let started = Unix.gettimeofday () in
  let (), deltas =
    with_counter_deltas @@ fun () ->
    let continue = ref true in
    while !continue && !rounds < max_rounds do
      incr rounds;
      (match Lp.Model.solve_relaxation model with
      | Lp.Simplex.Optimal (obj, sol) ->
          value := obj;
          let c = Lp.Model.value sol cap in
          let violated = ref [] in
          Array.iter
            (fun (i, i') ->
              for j = 0 to m - 1 do
                let xi = Lp.Model.value sol x.(i).(j) in
                if xi > 1e-7 then
                  for j' = 0 to m - 1 do
                    if j' <> j then begin
                      let w = Lat_matrix.unsafe_get lat j j' in
                      let slack = (w *. (xi +. Lp.Model.value sol x.(i').(j') -. 1.0)) -. c in
                      if slack > 1e-7 then violated := (slack, i, i', j, j') :: !violated
                    end
                  done
              done)
            edges;
          let worst =
            List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> Float.compare b a) !violated
          in
          let rec take k = function
            | (_, i, i', j, j') :: tl when k > 0 ->
                let w = Lat_matrix.unsafe_get lat j j' in
                Lp.Model.add_constraint model
                  [ (x.(i).(j), w); (x.(i').(j'), w); (cap, -1.0) ]
                  Lp.Simplex.Le w;
                incr cuts;
                take (k - 1) tl
            | _ -> ()
          in
          take cuts_per_round worst;
          if !violated = [] then continue := false
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
          all_optimal := false;
          continue := false)
    done
  in
  let seconds = Unix.gettimeofday () -. started in
  let iters = counter deltas "lp.sparse.iterations" in
  Printf.printf
    "  %d rounds, %d cut rows, bound %.4f ms in %.2f s (%.0f sparse pivots,\n\
    \  %.0f refactorizations)\n"
    !rounds !cuts !value seconds iters
    (counter deltas "lp.sparse.refactorizations");
  Util.metric "fig_scale.lp150.rounds" (float_of_int !rounds);
  Util.metric "fig_scale.lp150.rows" (float_of_int !cuts);
  Util.metric "fig_scale.lp150.optimal" (if !all_optimal then 1.0 else 0.0);
  Util.metric "fig_scale.lp150.value" !value;
  Util.metric "fig_scale.lp150.sparse_iters" iters;
  Util.metric "fig_scale.lp150.seconds" seconds

let mip_scale () =
  Util.subsection "MIP at 40 instances: every relaxation sparse, children warm-started";
  let m = 40 in
  let graph = Graphs.Templates.mesh2d ~rows:4 ~cols:4 in
  let problem = Cloudia.Types.of_matrix ~graph (rack_matrix m) in
  let options =
    {
      Cloudia.Mip_solver.clusters = None;
      (* Node-limited, not wall-clock-limited: the per-node sparse LP is
         the quantity under test, and the smoke budget of 0.05 s would
         abort the root solve. *)
      time_limit = 120.0;
      node_limit = Some (if !Util.smoke then 2 else 10);
      bootstrap_trials = 10;
    }
  in
  let started = Unix.gettimeofday () in
  let r, deltas =
    with_counter_deltas @@ fun () ->
    Cloudia.Mip_solver.solve_longest_link ~options (Prng.create 94) problem
  in
  let seconds = Unix.gettimeofday () -. started in
  Printf.printf
    "  16-node mesh on %d instances: cost %.2f ms after %d B&B nodes in %.2f s\n\
    \  (%.0f sparse solves, %.0f warm starts, %.0f dual pivots)\n"
    m r.Cloudia.Mip_solver.cost r.Cloudia.Mip_solver.nodes_explored seconds
    (counter deltas "lp.sparse.solves")
    (counter deltas "lp.sparse.warm_starts")
    (counter deltas "lp.sparse.dual_pivots");
  Util.metric "fig_scale.mip40.nodes" (float_of_int r.Cloudia.Mip_solver.nodes_explored);
  Util.metric "fig_scale.mip40.cost" r.Cloudia.Mip_solver.cost;
  Util.metric "fig_scale.mip40.warm" (counter deltas "lp.sparse.warm_starts");
  Util.metric "fig_scale.mip40.seconds" seconds

let bitmatch () =
  Util.subsection "dense vs sparse bit-identity on an exact assignment LP";
  (* Pure assignment polytope: totally unimodular constraints and dyadic
     costs keep every tableau entry and eta multiplier an exact dyadic
     rational, so the two kernels must agree on the optimum bit for bit
     (solutions may differ among alternate optima; the value cannot). *)
  let n = 6 in
  let w i j = 0.25 *. float_of_int (((i * 7) + (j * 3)) mod 4 + 1) in
  let model = Lp.Model.create () in
  let x =
    Array.init n (fun i ->
        Array.init n (fun j ->
            Lp.Model.add_var model ~ub:1.0 ~obj:(w i j) (Printf.sprintf "a_%d_%d" i j)))
  in
  for i = 0 to n - 1 do
    Lp.Model.add_constraint model
      (List.init n (fun j -> (x.(i).(j), 1.0)))
      Lp.Simplex.Eq 1.0
  done;
  for j = 0 to n - 1 do
    Lp.Model.add_constraint model
      (List.init n (fun i -> (x.(i).(j), 1.0)))
      Lp.Simplex.Le 1.0
  done;
  let objective = function
    | Lp.Simplex.Optimal (obj, _) -> Some obj
    | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> None
  in
  let dense = objective (fst (Lp.Model.solve_relaxation_basis model)) in
  let sparse = objective (fst (Lp.Model.solve_relaxation_basis ~dense_ceiling:0 model)) in
  let matched =
    match (dense, sparse) with
    | Some d, Some s -> Int64.equal (Int64.bits_of_float d) (Int64.bits_of_float s)
    | _ -> false
  in
  (match (dense, sparse) with
  | Some d, Some s ->
      Printf.printf "  dense %.17g | sparse %.17g | %s\n" d s
        (if matched then "bit-identical" else "MISMATCH")
  | _ -> Printf.printf "  solver disagreement on status\n");
  Util.metric "fig_scale.sparse_dense.bitmatch" (if matched then 1.0 else 0.0)

let run () =
  Util.section "fig-scale" "solver scaling past the dense ceiling";
  cp_scale ();
  lp_relaxation ();
  mip_scale ();
  bitmatch ()
