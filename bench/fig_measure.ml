(* Figures 4, 5, 16, 17: measurement-scheme accuracy and convergence, and
   the negative results for IP distance and hop count (Appendix 2). *)

let fig4 () =
  Util.section "Fig. 4" "normalized relative error of measurement schemes vs token passing";
  Printf.printf
    "paper: 50 instances; staged has 90%% of links under 10%% error (max < 30%%),\n\
    \       uncoordinated has 10%% of links above 50%% error\n\n";
  let n = 24 in
  let env = Util.env_of Util.ec2 ~count:n in
  (* Token passing is the interference-free baseline. *)
  let baseline =
    Netmeasure.Schemes.link_vector
      (Netmeasure.Schemes.token_passing (Prng.create 2) env
         ~samples_per_pair:(Util.trials ~floor:10 120))
  in
  let report name vector =
    let errors = Stats.Error.normalized_relative_errors ~baseline vector in
    Array.sort compare errors;
    let cdf = Stats.Cdf.of_samples errors in
    Printf.printf "%-15s p50=%5.1f%%  p90=%5.1f%%  max=%5.1f%%  (share under 10%%: %.0f%%)\n"
      name
      (100.0 *. Stats.Summary.median errors)
      (100.0 *. Stats.Summary.percentile errors 90.0)
      (100.0 *. Stats.Summary.max errors)
      (100.0 *. Stats.Cdf.eval cdf 0.10)
  in
  let staged =
    Netmeasure.Schemes.staged (Prng.create 3) env ~ks:10
      ~stages:(Util.trials ~floor:60 (12 * 2 * (n - 1) * 2))
  in
  let uncoordinated =
    Netmeasure.Schemes.uncoordinated (Prng.create 4) env
      ~rounds:(Util.trials ~floor:50 (120 * (n - 1)))
  in
  report "staged" (Netmeasure.Schemes.link_vector staged);
  report "uncoordinated" (Netmeasure.Schemes.link_vector uncoordinated)

let fig5 () =
  Util.section "Fig. 5" "staged measurement convergence over time";
  Printf.printf
    "paper: 100 instances, Ks=10; RMSE against the 30-min result drops sharply\n\
    \       within the first 5 minutes and smooths out afterwards\n\n";
  let n = 30 in
  let env = Util.env_of Util.ec2 ~count:n in
  let truth =
    Netmeasure.Schemes.link_vector
      { Netmeasure.Schemes.means = Cloudsim.Env.mean_matrix env; samples = [||]; sim_seconds = 0.0 }
  in
  Printf.printf "  %8s  %10s  %12s\n" "stages" "sim time" "norm. RMSE";
  List.iter
    (fun stages ->
      let stages = Util.trials ~floor:10 stages in
      let m = Netmeasure.Schemes.staged (Prng.create 5) env ~ks:10 ~stages in
      let v = Netmeasure.Schemes.link_vector m in
      (* Unsampled pairs (early checkpoints) fall back to the grand mean so
         RMSE is defined; coverage fills in quickly. *)
      let finite = Array.of_list (List.filter Float.is_finite (Array.to_list v)) in
      let fill = Stats.Summary.mean finite in
      let v = Array.map (fun x -> if Float.is_finite x then x else fill) v in
      Printf.printf "  %8d  %8.1f s  %12.5f\n" stages m.Netmeasure.Schemes.sim_seconds
        (Stats.Error.normalized_rmse ~baseline:truth v))
    [ 60; 120; 240; 480; 960; 1920; 3840 ]

let approx_figure id ~group_name ~group env =
  let groups = Netmeasure.Approx.latency_by_group env ~group in
  Printf.printf "  %-14s %8s %10s %10s %10s\n" group_name "links" "min" "median" "max";
  List.iter
    (fun (g, lats) ->
      Printf.printf "  %-14d %8d %7.3f ms %7.3f ms %7.3f ms\n" g (Array.length lats)
        lats.(0)
        (Stats.Summary.median lats)
        lats.(Array.length lats - 1))
    groups;
  let violations = Netmeasure.Approx.monotonicity_violations groups in
  Printf.printf "\n  cross-group order inversions: %d — %s does NOT order latencies\n" violations
    id

let fig16 () =
  Util.section "Fig. 16" "latency ordered by IP distance (Appendix 2)";
  Printf.printf
    "paper: groups overlap heavily; lowest latencies even appear at distance 2\n\n";
  let env = Util.env_of Util.ec2 ~count:60 in
  approx_figure "IP distance" ~group_name:"ip distance"
    ~group:(fun i j -> Netmeasure.Approx.ip_distance env i j)
    env

let fig17 () =
  Util.section "Fig. 17" "latency ordered by hop count (Appendix 2)";
  Printf.printf "paper: many link pairs are ordered inconsistently by hops vs latency\n\n";
  let env = Util.env_of Util.ec2 ~count:60 in
  approx_figure "hop count" ~group_name:"hop count"
    ~group:(fun i j -> Netmeasure.Approx.hop_count env i j)
    env
