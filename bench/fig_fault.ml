(* Measurement robustness under faults: a Fig. 4-style comparison of the
   three schemes when probes are lost, hosts straggle and instances crash.

   Two hard gates back the CI smoke run (failwith = non-zero exit):

   - zero-fault equivalence: every scheme run against an environment
     carrying [Faults.none] must be bit-identical — means, sample counts,
     sim_seconds — to the same run against a plain environment. This pins
     the contract that the fault-aware probe path costs nothing when
     faults are off.
   - staged coverage: at 10% and 20% base probe loss, staged measurement
     with the default retry budget must still cover >= 99% of ordered
     pairs. Retries are what buy this: a pair is only left unsampled when
     every probe of every exchange exhausts its budget.

   The loss sweep reports, per scheme: ordered-pair coverage, normalized
   RMSE over the pairs that were measured (accuracy of what survived),
   simulated measurement time (timeouts and backoff included), and the
   probes_lost / retries / timeouts counter deltas.

   When CLOUDIA_FAULT_JSON is set, the sweep and gate results are also
   written there as one JSON object (CI uploads it next to the traces). *)

let bits = Int64.bits_of_float

let matrix_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun ra rb ->
         Array.length ra = Array.length rb
         && Array.for_all2 (fun x y -> bits x = bits y) ra rb)
       a b

let scheme_equal (a : Netmeasure.Schemes.t) (b : Netmeasure.Schemes.t) =
  matrix_equal a.Netmeasure.Schemes.means b.Netmeasure.Schemes.means
  && a.Netmeasure.Schemes.samples = b.Netmeasure.Schemes.samples
  && bits a.Netmeasure.Schemes.sim_seconds = bits b.Netmeasure.Schemes.sim_seconds

(* Normalized RMSE against the ground-truth means, over measured pairs
   only — how accurate is what the scheme did deliver. *)
let covered_rmse env (m : Netmeasure.Schemes.t) =
  let n = Cloudsim.Env.count env in
  let se = ref 0.0 and norm = ref 0.0 and k = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && m.Netmeasure.Schemes.samples.(i).(j) > 0 then begin
        let truth = Cloudsim.Env.mean_latency env i j in
        let d = m.Netmeasure.Schemes.means.(i).(j) -. truth in
        se := !se +. (d *. d);
        norm := !norm +. (truth *. truth);
        incr k
      end
    done
  done;
  if !k = 0 || !norm = 0.0 then nan else sqrt (!se /. !norm)

let counter value deltas = try List.assoc value deltas with Not_found -> 0

type row = {
  loss : float;
  scheme : string;
  coverage : float;
  rmse : float;
  sim_seconds : float;
  lost : int;
  retries : int;
  timeouts : int;
}

let json_of_row r =
  Printf.sprintf
    "{\"loss\":%g,\"scheme\":\"%s\",\"coverage\":%.6f,\"rmse_covered\":%s,\"sim_seconds\":%.6f,\"probes_lost\":%d,\"retries\":%d,\"timeouts\":%d}"
    r.loss r.scheme r.coverage
    (if Float.is_nan r.rmse then "null" else Printf.sprintf "%.6f" r.rmse)
    r.sim_seconds r.lost r.retries r.timeouts

let run () =
  Util.section "Fault" "measurement robustness under probe loss, stragglers and crashes";
  let n = 12 in
  let env = Util.env_of ~seed:701 Util.ec2 ~count:n in
  let spp = Util.trials ~floor:2 4 in
  let rounds = Util.trials ~floor:55 (10 * (n - 1)) in
  (* The coverage gate depends on the stage count: 8 rounds of matchings
     put every unordered pair's miss probability at e^-8, so the floor is
     never shrunk in smoke mode. *)
  let stages = 8 * (n - 1) in
  let ks = 3 in
  let run_schemes e =
    let tok = Netmeasure.Schemes.token_passing (Prng.create 702) e ~samples_per_pair:spp in
    let unc = Netmeasure.Schemes.uncoordinated (Prng.create 703) e ~rounds in
    let stg = Netmeasure.Schemes.staged (Prng.create 704) e ~ks ~stages in
    [ ("token-passing", tok); ("uncoordinated", unc); ("staged", stg) ]
  in

  Util.subsection "zero-fault equivalence (hard gate)";
  let plain = run_schemes env in
  let with_none = run_schemes (Cloudsim.Env.with_faults env Cloudsim.Faults.none) in
  List.iter2
    (fun (name, a) (_, b) ->
      if not (scheme_equal a b) then
        failwith
          (Printf.sprintf
             "fig-fault: %s differs between a plain environment and Faults.none — the \
              zero-fault path is not free"
             name);
      Printf.printf "  %-15s bit-identical with Faults.none attached: yes\n" name)
    plain with_none;

  Util.subsection "probe-loss sweep (coverage and accuracy of what survived)";
  let losses = [ 0.0; 0.05; 0.10; 0.20 ] in
  let rows = ref [] in
  List.iter
    (fun loss ->
      let e =
        if loss = 0.0 then env
        else
          Cloudsim.Env.with_faults env
            { Cloudsim.Faults.none with Cloudsim.Faults.seed = 705; loss; loss_sigma = 0.5 }
      in
      Printf.printf "\n  base loss %.0f%%\n" (100.0 *. loss);
      Printf.printf "  %-15s %9s %12s %11s %7s %8s %9s\n" "scheme" "coverage"
        "rmse(cov.)" "sim time" "lost" "retries" "timeouts";
      (* One scheme at a time, with counter snapshots around each run, so
         the lost/retry/timeout deltas are attributable per scheme. *)
      List.iter
        (fun (name, run_one) ->
          let before = Obs.Counter.snapshot () in
          let m : Netmeasure.Schemes.t = run_one () in
          let deltas = Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ()) in
          let r =
            {
              loss;
              scheme = name;
              coverage = Netmeasure.Schemes.coverage m;
              rmse = covered_rmse env m;
              sim_seconds = m.Netmeasure.Schemes.sim_seconds;
              lost = counter "netmeasure.probes_lost" deltas;
              retries = counter "netmeasure.retries" deltas;
              timeouts = counter "netmeasure.timeouts" deltas;
            }
          in
          rows := r :: !rows;
          Printf.printf "  %-15s %8.1f%% %12s %9.2f s %7d %8d %9d\n" r.scheme
            (100.0 *. r.coverage)
            (if Float.is_nan r.rmse then "n/a" else Printf.sprintf "%.5f" r.rmse)
            r.sim_seconds r.lost r.retries r.timeouts)
        [
          ( "token-passing",
            fun () ->
              Netmeasure.Schemes.token_passing (Prng.create 702) e ~samples_per_pair:spp );
          ("uncoordinated", fun () -> Netmeasure.Schemes.uncoordinated (Prng.create 703) e ~rounds);
          ("staged", fun () -> Netmeasure.Schemes.staged (Prng.create 704) e ~ks ~stages);
        ])
    losses;
  let rows = List.rev !rows in
  Util.write_csv "fig_fault_sweep"
    [ "loss"; "scheme"; "coverage"; "rmse_covered"; "sim_seconds"; "lost"; "retries"; "timeouts" ]
    (List.map
       (fun r ->
         [
           Printf.sprintf "%g" r.loss;
           r.scheme;
           Printf.sprintf "%.6f" r.coverage;
           (if Float.is_nan r.rmse then "" else Printf.sprintf "%.6f" r.rmse);
           Printf.sprintf "%.6f" r.sim_seconds;
           string_of_int r.lost;
           string_of_int r.retries;
           string_of_int r.timeouts;
         ])
       rows);

  Util.subsection "staged coverage under loss (hard gate: >= 99%)";
  let gate_ok = ref true in
  List.iter
    (fun target_loss ->
      let cov =
        List.find_map
          (fun r -> if r.scheme = "staged" && r.loss = target_loss then Some r.coverage else None)
          rows
        |> Option.get
      in
      let pass = cov >= 0.99 in
      if not pass then gate_ok := false;
      Printf.printf "  staged at %.0f%% loss: coverage %.2f%% — %s\n" (100.0 *. target_loss)
        (100.0 *. cov)
        (if pass then "PASS" else "FAIL"))
    [ 0.10; 0.20 ];

  Util.subsection "stragglers and crashes (completion repair)";
  (* Crashes early enough to bite: a third of the staged run happens after
     the first crash times. *)
  let harsh =
    {
      (Cloudsim.Provider.typical_faults Cloudsim.Provider.Ec2 ~seed:706) with
      Cloudsim.Faults.crash_fraction = 0.15;
      crash_after_ms = 30.0;
    }
  in
  let e = Cloudsim.Env.with_faults env harsh in
  let m = Netmeasure.Schemes.staged (Prng.create 707) e ~ks ~stages in
  let cov = Netmeasure.Schemes.coverage m in
  let completed = Netmeasure.Completion.complete m in
  let kept, _ = Netmeasure.Completion.drop_uncovered m in
  let unreachable = Netmeasure.Completion.unreachable m in
  Printf.printf "  staged under EC2 typical faults + crashes: coverage %.1f%%\n"
    (100.0 *. cov);
  Printf.printf "  completion: %d pairs imputed, %d unresolved\n"
    completed.Netmeasure.Completion.imputed completed.Netmeasure.Completion.unresolved;
  Printf.printf "  drop policy keeps %d/%d instances; unreachable: [%s]\n"
    (Array.length kept) n
    (String.concat "; " (List.map string_of_int unreachable));
  if cov >= 1.0 && harsh.Cloudsim.Faults.crash_fraction > 0.0 then
    Printf.printf "  (no crash fired this seed — coverage stayed full)\n";

  (match Sys.getenv_opt "CLOUDIA_FAULT_JSON" with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc
            (Printf.sprintf
               "{\"zero_fault_identical\":true,\"staged_coverage_gate\":%b,\"sweep\":[%s],\"crash_demo\":{\"coverage\":%.6f,\"imputed\":%d,\"unresolved\":%d,\"kept\":%d}}\n"
               !gate_ok
               (String.concat "," (List.map json_of_row rows))
               cov completed.Netmeasure.Completion.imputed
               completed.Netmeasure.Completion.unresolved (Array.length kept)));
      Printf.printf "  [json: %s]\n" path);

  if not !gate_ok then
    failwith "fig-fault: staged coverage under loss fell below the 99% acceptance bar"
