(* Shared helpers for the figure-reproduction benchmarks. *)

(* Smoke mode (--smoke on the driver): every figure runs with capped solver
   budgets and divided-down sample counts so the whole suite finishes in a
   few seconds — a CI-friendly "does every section still execute" check.
   Problem shapes (graphs, instance counts) stay untouched; only effort
   knobs shrink, so the code paths exercised are the same. *)
let smoke = ref false

(* Wall-clock budget for a solver call: capped hard in smoke mode. *)
let budget seconds = if !smoke then Float.min seconds 0.05 else seconds

(* Effort counts (trials, ticks, queries, rounds): divided by 20 in smoke
   mode, floored so the measurement stays meaningful. *)
let trials ?(floor = 1) n = if !smoke then max floor (n / 20) else n

(* Optional CSV export: when CLOUDIA_CSV_DIR is set, every figure that
   produces a series also writes it as <dir>/<name>.csv for re-plotting. *)
let csv_dir = Sys.getenv_opt "CLOUDIA_CSV_DIR"

let write_csv name headers rows =
  match csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (String.concat "," headers);
          output_char oc '\n';
          List.iter
            (fun row ->
              output_string oc (String.concat "," row);
              output_char oc '\n')
            rows);
      Printf.printf "  [csv: %s]\n" path

(* Machine-readable metrics: sections record named scalars (moves/sec,
   allocation rates, kernel timings) and the driver flushes them as one
   flat JSON object to the path in CLOUDIA_BENCH_JSON — the input of the
   CI perf-regression gate (tools/check_bench.py). *)
let metrics : (string, float) Hashtbl.t = Hashtbl.create 32

let metric name value = Hashtbl.replace metrics name value

let flush_metrics () =
  match Sys.getenv_opt "CLOUDIA_BENCH_JSON" with
  | None -> ()
  | Some path ->
      let entries =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) metrics [])
      in
      let field (k, v) =
        (* %.17g keeps every float exact; JSON has no NaN/inf literals, so
           encode those as null (check_bench treats null as missing). *)
        let value =
          if Float.is_nan v || Float.abs v = Float.infinity then "null"
          else Printf.sprintf "%.17g" v
        in
        Printf.sprintf "  %S: %s" k value
      in
      Out_channel.with_open_text path (fun oc ->
          output_string oc "{\n";
          output_string oc (String.concat ",\n" (List.map field entries));
          output_string oc "\n}\n");
      Printf.printf "Bench metrics written to %s (%d entries).\n" path (List.length entries)

(* Anytime-profile metrics from an incumbent trace [(elapsed_s, cost)] in
   time order over a run of [window_s] seconds: the primal integral (mean
   relative gap between the running-best cost and the final cost) and the
   fraction of the window spent before the curve is within {10,5,1}% of
   the final cost. Dimensionless on purpose: the CI smoke run's absolute
   times are jittery, but how quickly a solver closes its own gap is
   stable enough to band. *)
let anytime_metrics ~key ~window_s trace =
  match trace with
  | [] -> ()
  | (t0, _) :: _ ->
      let curve =
        List.fold_left
          (fun acc (t, c) ->
            match acc with (_, best) :: _ when c >= best -> acc | _ -> (t, c) :: acc)
          [] trace
        |> List.rev
      in
      let final = snd (List.nth curve (List.length curve - 1)) in
      let denom = if Float.abs final > 0.0 then Float.abs final else 1.0 in
      let window = Float.max 1e-9 (window_s -. t0) in
      let rec integral = function
        | (t1, c1) :: (((t2, _) :: _) as rest) ->
            ((c1 -. final) /. denom *. (t2 -. t1)) +. integral rest
        | _ -> 0.0 (* last segment: gap 0 by definition of final *)
      in
      let primal_integral = integral curve /. window in
      Printf.printf "  anytime profile: primal integral %.4f over %.2f s window\n"
        primal_integral window;
      metric (key ^ ".primal_integral") primal_integral;
      List.iter
        (fun pct ->
          let target = final +. (pct /. 100.0 *. denom) +. 1e-12 in
          let hit =
            match List.find_opt (fun (_, c) -> c <= target) curve with
            | Some (t, _) -> t -. t0
            | None -> window
          in
          let frac = Float.min 1.0 (hit /. window) in
          Printf.printf "    within %4.1f%% of final after %5.1f%% of the window\n" pct
            (100.0 *. frac);
          metric (Printf.sprintf "%s.tt_within_%.0fpct_frac" key pct) frac)
        [ 1.0; 5.0; 10.0 ]

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "================================================================\n"

let subsection title = Printf.printf "\n--- %s ---\n" title

let provider name = Cloudsim.Provider.get name

let ec2 = provider Cloudsim.Provider.Ec2

let env_of ?(seed = 1) p ~count = Cloudsim.Env.allocate (Prng.create seed) p ~count

(* All ordered-pair mean latencies of an environment. *)
let link_means env =
  let n = Cloudsim.Env.count env in
  let out = Array.make (n * (n - 1)) 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        out.(!k) <- Cloudsim.Env.mean_latency env i j;
        incr k
      end
    done
  done;
  out

let print_cdf ?(points = 12) ?csv label samples =
  let cdf = Stats.Cdf.of_samples samples in
  let series = Stats.Cdf.series ~points cdf in
  Printf.printf "%s (n=%d)\n" label (Array.length samples);
  Printf.printf "  %10s  %8s\n" "latency" "CDF";
  List.iter (fun (x, f) -> Printf.printf "  %7.3f ms  %7.1f%%\n" x (100.0 *. f)) series;
  match csv with
  | None -> ()
  | Some name ->
      write_csv name [ "latency_ms"; "cdf" ]
        (List.map (fun (x, f) -> [ Printf.sprintf "%.6f" x; Printf.sprintf "%.6f" f ]) series)

let print_trace ?(max_points = 14) ?csv label trace =
  (match csv with
  | None -> ()
  | Some name ->
      write_csv name [ "elapsed_s"; "best_cost_ms" ]
        (List.map (fun (t, c) -> [ Printf.sprintf "%.4f" t; Printf.sprintf "%.6f" c ]) trace));
  Printf.printf "%s\n" label;
  Printf.printf "  %10s  %12s\n" "elapsed" "best cost";
  let arr = Array.of_list trace in
  let n = Array.length arr in
  let shown =
    if n <= max_points then trace
    else
      (* Even subsample keeping first and last points. *)
      List.init max_points (fun k -> arr.(k * (n - 1) / (max_points - 1)))
  in
  List.iter (fun (t, c) -> Printf.printf "  %8.2f s  %9.3f ms\n" t c) shown;
  if n > max_points then Printf.printf "  (%d of %d incumbents shown)\n" max_points n

(* A problem built from an environment and a communication graph, using
   mean-latency measurement. *)
let problem_of ?(samples = 30) ~seed env graph =
  let costs = Cloudia.Metrics.estimate (Prng.create seed) env Cloudia.Metrics.Mean
      ~samples_per_pair:samples
  in
  Cloudia.Types.of_matrix ~graph costs

(* Budgets below run through [budget] so smoke mode caps every solver call
   in one place. *)
let cp_options ?(clusters = Some 20) ?(time_limit = 5.0) () =
  {
    Cloudia.Cp_solver.clusters;
    time_limit = budget time_limit;
    iteration_time_limit = None;
    use_labeling = true;
    bootstrap_trials = 10;
    symmetry_breaking = true;
  }

let mip_options ?(clusters = None) ?(time_limit = 10.0) () =
  {
    Cloudia.Mip_solver.clusters;
    time_limit = budget time_limit;
    node_limit = None;
    bootstrap_trials = 10;
  }

(* Per-section solver-effort report: the counter deltas accumulated while a
   section ran (pivots, nodes, probes, ...), one line per non-zero counter. *)
let print_counter_deltas id deltas =
  match deltas with
  | [] -> ()
  | deltas ->
      Printf.printf "[%s counters]\n" id;
      List.iter (fun (name, v) -> Printf.printf "  %-34s %12d\n" name v) deltas
