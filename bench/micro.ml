(* Bechamel microbenchmarks of the solver kernels: one Test.make per
   kernel, reported as nanoseconds per run. *)

open Bechamel
open Toolkit

let simplex_test =
  (* The Dantzig max example with a few extra rows — a representative
     small LP solve. *)
  let rows =
    [
      ([| 1.0; 0.0; 1.0 |], Lp.Simplex.Le, 4.0);
      ([| 0.0; 2.0; 0.5 |], Lp.Simplex.Le, 12.0);
      ([| 3.0; 2.0; 0.0 |], Lp.Simplex.Le, 18.0);
      ([| 1.0; 1.0; 1.0 |], Lp.Simplex.Ge, 1.0);
    ]
  in
  Test.make ~name:"simplex-solve-small"
    (Staged.stage (fun () ->
         ignore (Lp.Simplex.solve ~objective:[| -3.0; -5.0; -1.0 |] ~rows ())))

let matching_test =
  let rng = Prng.create 1 in
  let n = 40 in
  let adj =
    Array.init n (fun _ ->
        Array.of_list (List.filter (fun _ -> Prng.bool rng) (List.init n (fun j -> j))))
  in
  Test.make ~name:"hopcroft-karp-40x40"
    (Staged.stage (fun () -> ignore (Graphs.Matching.maximum ~n_left:n ~n_right:n ~adj)))

let alldifferent_test =
  Test.make ~name:"alldifferent-propagate-30"
    (Staged.stage (fun () ->
         let csp = Cp.Csp.create ~nvars:30 ~nvalues:35 in
         Cp.Csp.add_alldifferent csp;
         Cp.Csp.restrict csp ~var:0 ~allowed:(fun v -> v < 3);
         Cp.Csp.restrict csp ~var:1 ~allowed:(fun v -> v < 3);
         ignore (Cp.Csp.propagate csp)))

let longest_path_test =
  let g = Graphs.Templates.aggregation_tree ~fanout:3 ~depth:3 in
  let rng = Prng.create 2 in
  let n = Graphs.Digraph.n g in
  let w = Array.init n (fun _ -> Array.init n (fun _ -> Prng.float rng 1.0)) in
  Test.make ~name:"longest-path-40-node-dag"
    (Staged.stage (fun () ->
         ignore (Graphs.Digraph.longest_path g ~weight:(fun u v -> w.(u).(v)))))

let greedy_test =
  let rng = Prng.create 3 in
  let graph = Graphs.Templates.mesh2d ~rows:4 ~cols:4 in
  let m = 18 in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))
  in
  let problem = Cloudia.Types.problem ~graph ~costs in
  Test.make ~name:"greedy-g2-16-nodes"
    (Staged.stage (fun () -> ignore (Cloudia.Greedy.g2 problem)))

let kmeans_test =
  let rng = Prng.create 4 in
  let values = Array.init 500 (fun _ -> Prng.float rng 1.0) in
  Test.make ~name:"kmeans1d-500-values-k20"
    (Staged.stage (fun () -> ignore (Stats.Kmeans1d.cluster ~k:20 values)))

(* Matrix-representation kernels: a full row-major sweep of a 64x64
   latency matrix, read either through boxed float array array rows or the
   flat Bigarray-backed Lat_matrix. Both land in bench JSON so the CI perf
   gate can pin each against its committed baseline. *)
let matrix_n = 64

let boxed_matrix =
  let rng = Prng.create 5 in
  Array.init matrix_n (fun j ->
      Array.init matrix_n (fun j' -> if j = j' then 0.0 else 0.1 +. Prng.float rng 1.0))

let flat_matrix = Lat_matrix.of_arrays boxed_matrix

let matrix_read_boxed_test =
  let m = boxed_matrix in
  Test.make ~name:"matrix-read-boxed-64"
    (Staged.stage (fun () ->
         let acc = ref 0.0 in
         for i = 0 to matrix_n - 1 do
           let row = m.(i) in
           for j = 0 to matrix_n - 1 do
             acc := !acc +. Array.unsafe_get row j
           done
         done;
         ignore (Sys.opaque_identity !acc)))

let matrix_read_flat_test =
  (* The hot-path idiom: hoist the buffer once, then read through the
     bigarray primitive (specializes at the call site, -opaque or not). *)
  let m = Lat_matrix.data flat_matrix in
  Test.make ~name:"matrix-read-flat-64"
    (Staged.stage (fun () ->
         let acc = ref 0.0 in
         for i = 0 to matrix_n - 1 do
           for j = 0 to matrix_n - 1 do
             acc := !acc +. Bigarray.Array2.unsafe_get m i j
           done
         done;
         ignore (Sys.opaque_identity !acc)))

let run () =
  Util.section "Microbenchmarks" "solver kernels (Bechamel, ns/run)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* Smoke mode trims the sampling quota — but not below what the CI
     regression band needs for a stable per-kernel estimate. *)
  let quota = if !Util.smoke then 0.1 else 0.5 in
  let limit = if !Util.smoke then 500 else 2000 in
  let cfg = Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:(Some 1000) () in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        simplex_test;
        matching_test;
        alldifferent_test;
        longest_path_test;
        greedy_test;
        kmeans_test;
        matrix_read_boxed_test;
        matrix_read_flat_test;
      ]
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ t ] ->
          (* "kernels/matrix-read-flat-64" -> micro.matrix-read-flat-64.ns_per_run *)
          let leaf =
            match String.rindex_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          Util.metric (Printf.sprintf "micro.%s.ns_per_run" leaf) t;
          if t > 1_000_000.0 then Printf.printf "  %-32s %10.2f ms/run\n" name (t /. 1e6)
          else if t > 1_000.0 then Printf.printf "  %-32s %10.2f us/run\n" name (t /. 1e3)
          else Printf.printf "  %-32s %10.1f ns/run\n" name t
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows)
