# Development and CI entry points. The opam dependency list lives here —
# and only here — so the CI jobs can't drift apart (the tsan job once
# missed bechamel because each job spelled its own `opam install` line).

OPAM_DEPS = dune alcotest qcheck qcheck-alcotest cmdliner bechamel
OCAMLFORMAT = ocamlformat.0.26.2

.PHONY: deps deps-fmt build test bench-smoke bench-gate lint analyze fmt

deps:
	opam install --yes $(OPAM_DEPS)

# The formatting job additionally pins ocamlformat (kept out of `deps` so
# the build/test caches don't churn when the formatter version moves).
deps-fmt: deps
	opam install --yes $(OCAMLFORMAT)

build:
	dune build @all

test:
	dune runtest

# Smoke-mode bench with machine-readable metrics, then the regression
# gate against the committed baseline (see tools/bench_gate).
bench-smoke:
	CLOUDIA_BENCH_JSON=bench-metrics.json dune exec bench/main.exe -- --smoke fig-delta micro

bench-gate: bench-smoke
	dune exec tools/bench_gate/bench_gate.exe -- bench/baseline.json bench-metrics.json

# Both static gates: the token scanner (R003-R005) and the AST analyzer
# (A001-A004 over lib/ bin/ bench/). CI runs the same two commands.
lint:
	dune exec tools/repolint/repolint.exe
	dune exec tools/analyzer/analyzer_main.exe

analyze:
	dune exec tools/analyzer/analyzer_main.exe

fmt:
	dune build @fmt
