(* Command-line front end to the ClouDiA deployment advisor.

   Subcommands:
     advise    - run the full pipeline for a workload and print the report
     plan      - solve a deployment from a user-supplied cost matrix
     lint      - validate an instance (matrix/graph/config) without solving
     measure   - compare the three measurement schemes on one allocation
     convert   - convert a cost matrix between CSV and the binary format
     survey    - print latency heterogeneity and stability for a provider
     redeploy  - simulate iterative re-deployment under changing conditions
     bandwidth - optimize the bottleneck-bandwidth criterion
     serve     - long-running advising daemon on a Unix socket
     client    - submit jobs to a running daemon *)

open Cmdliner

(* ---- shared argument converters ---- *)

let provider_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "ec2" -> Ok Cloudsim.Provider.Ec2
    | "gce" -> Ok Cloudsim.Provider.Gce
    | "rackspace" -> Ok Cloudsim.Provider.Rackspace
    | _ -> Error (`Msg "provider must be ec2, gce or rackspace")
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Cloudsim.Provider.to_string p))

let metric_conv =
  let parse s =
    match Cloudia.Metrics.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg "metric must be mean, mean+sd or p99")
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Cloudia.Metrics.to_string m))

let provider_arg =
  Arg.(value & opt provider_conv Cloudsim.Provider.Ec2 & info [ "provider" ] ~doc:"Cloud provider preset: ec2, gce or rackspace.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (runs are deterministic per seed).")

(* ---- JSON emission for --json (no external JSON dependency) ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""
let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
let json_int = string_of_int
let json_bool b = if b then "true" else "false"
let json_list items = "[" ^ String.concat "," items ^ "]"

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields) ^ "}"

let solver_stats_json = function
  | Cloudia.Advisor.No_solver_stats -> json_obj [ ("kind", json_str "none") ]
  | Cloudia.Advisor.Cp_stats { iterations; nodes; failures; propagations } ->
      json_obj
        [
          ("kind", json_str "cp");
          ("iterations", json_int iterations);
          ("nodes", json_int nodes);
          ("failures", json_int failures);
          ("propagations", json_int propagations);
        ]
  | Cloudia.Advisor.Mip_stats { nodes_explored; nodes_pruned } ->
      json_obj
        [
          ("kind", json_str "mip");
          ("nodes_explored", json_int nodes_explored);
          ("nodes_pruned", json_int nodes_pruned);
        ]
  | Cloudia.Advisor.Anneal_stats { moves_tried; moves_accepted } ->
      json_obj
        [
          ("kind", json_str "anneal");
          ("moves_tried", json_int moves_tried);
          ("moves_accepted", json_int moves_accepted);
        ]
  | Cloudia.Advisor.Random_stats { trials } ->
      json_obj [ ("kind", json_str "random"); ("trials", json_int trials) ]

let telemetry_json (t : Cloudia.Advisor.telemetry) =
  json_obj
    [
      ("strategy", json_str t.Cloudia.Advisor.strategy_name);
      ("solver", solver_stats_json t.Cloudia.Advisor.solver);
      ("proven_optimal", json_bool t.Cloudia.Advisor.proven_optimal);
      ( "incumbent_trace",
        json_list
          (List.map
             (fun (s, c) -> json_list [ json_float s; json_float c ])
             t.Cloudia.Advisor.incumbent_trace) );
      ( "winner",
        match t.Cloudia.Advisor.winner with Some w -> json_str w | None -> "null" );
      ( "members",
        json_list
          (List.map
             (fun (m : Cloudia.Advisor.member_stats) ->
               json_obj
                 [
                   ("name", json_str m.Cloudia.Advisor.member_name);
                   ("best_cost", json_float m.Cloudia.Advisor.member_cost);
                   ("time_to_best", json_float m.Cloudia.Advisor.member_time_to_best);
                   ("seconds", json_float m.Cloudia.Advisor.member_seconds);
                   ("iterations", json_int m.Cloudia.Advisor.member_iterations);
                   ("proved_optimal", json_bool m.Cloudia.Advisor.member_proved);
                 ])
             t.Cloudia.Advisor.members) );
      ( "counters",
        json_obj
          (List.map (fun (n, v) -> (n, json_int v)) t.Cloudia.Advisor.counters) );
    ]

let diagnostics_json ds = Lint.Diagnostic.to_json ds

let report_json ~describe ~objective (r : Cloudia.Advisor.report) =
  json_obj
    [
      ("workload", json_str describe);
      ("diagnostics", diagnostics_json r.Cloudia.Advisor.diagnostics);
      ("objective", json_str (Cloudia.Cost.objective_to_string objective));
      ("instances_allocated", json_int (Cloudsim.Env.count r.Cloudia.Advisor.env));
      ("measurement_minutes", json_float r.Cloudia.Advisor.measurement_minutes);
      ("search_seconds", json_float r.Cloudia.Advisor.search_seconds);
      ("default_cost_ms", json_float r.Cloudia.Advisor.default_cost);
      ("optimized_cost_ms", json_float r.Cloudia.Advisor.cost);
      ("improvement_pct", json_float r.Cloudia.Advisor.improvement_pct);
      ( "plan",
        json_list
          (Array.to_list (Array.map json_int r.Cloudia.Advisor.plan)) );
      ( "default_plan",
        json_list
          (Array.to_list (Array.map json_int r.Cloudia.Advisor.default_plan)) );
      ( "terminated",
        json_list (List.map json_int r.Cloudia.Advisor.terminated) );
      ( "dropped",
        json_list (List.map json_int r.Cloudia.Advisor.dropped) );
      ("measurement_coverage", json_float r.Cloudia.Advisor.measurement_coverage);
      ("telemetry", telemetry_json r.Cloudia.Advisor.telemetry);
    ]

(* ---- tracing plumbing shared by advise ---- *)

type trace_format = Jsonl | Chrome

let trace_format_conv =
  Arg.enum [ ("jsonl", Jsonl); ("chrome", Chrome) ]

(* Drain once; feed the same event list to every requested exporter. *)
let export_observability ?seed ~trace_file ~trace_format ~obs_summary () =
  if trace_file <> None || obs_summary then begin
    let events = Obs.Sink.drain () in
    let counters = Obs.Counter.snapshot () in
    let gauges = Obs.Gauge.snapshot () in
    let hists =
      List.filter (fun (h : Obs.Histogram.snapshot) -> h.hist_count > 0)
        (Obs.Histogram.snapshot ())
    in
    let run = { Obs.Export.seed; argv = List.tl (Array.to_list Sys.argv) } in
    (match trace_file with
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            match trace_format with
            | Jsonl -> Obs.Export.jsonl ~run ~counters ~gauges ~hists oc events
            | Chrome -> Obs.Export.chrome ~run ~counters ~gauges ~hists oc events)
    | None -> ());
    if obs_summary then
      Obs.Export.summary ~run ~counters ~gauges ~hists stderr events
  end

(* ---- advise ---- *)

type workload = Behavioral | Aggregation | Kv

let workload_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "behavioral" -> Ok Behavioral
    | "aggregation" -> Ok Aggregation
    | "kv" -> Ok Kv
    | _ -> Error (`Msg "workload must be behavioral, aggregation or kv")
  in
  Arg.conv
    ( parse,
      fun fmt w ->
        Format.pp_print_string fmt
          (match w with Behavioral -> "behavioral" | Aggregation -> "aggregation" | Kv -> "kv") )

let strategy_of_string ~time_limit ~domains ~objective s =
  match String.lowercase_ascii s with
  | "g1" -> Ok Cloudia.Advisor.Greedy_g1
  | "g2" -> Ok Cloudia.Advisor.Greedy_g2
  | "r1" -> Ok (Cloudia.Advisor.Random_r1 1000)
  | "r2" -> Ok (Cloudia.Advisor.Random_r2 time_limit)
  | "r2d" | "descent" -> Ok (Cloudia.Advisor.Descent time_limit)
  | "anneal" -> Ok (Cloudia.Advisor.Anneal { Cloudia.Anneal.default_options with Cloudia.Anneal.time_limit })
  | "cp" ->
      Ok
        (Cloudia.Advisor.Cp
           {
             Cloudia.Cp_solver.clusters = Some 20;
             time_limit;
             iteration_time_limit = None;
             use_labeling = true;
             bootstrap_trials = 10;
             symmetry_breaking = true;
           })
  | "mip" ->
      Ok
        (Cloudia.Advisor.Mip
           {
             Cloudia.Mip_solver.clusters = None;
             time_limit;
             node_limit = None;
             bootstrap_trials = 10;
           })
  | "portfolio" ->
      if domains < 1 then Error (`Msg "--domains must be >= 1")
      else if time_limit <= 0.0 then Error (`Msg "--time-limit must be positive")
      else
        Ok
          (Cloudia.Advisor.Portfolio
             {
               Cloudia.Portfolio.members =
                 Cloudia.Portfolio.default_members ~objective ~domains;
               time_limit;
               share_incumbent = true;
             })
  | _ -> Error (`Msg "strategy must be g1, g2, r1, r2, r2d, anneal, cp, mip or portfolio")

let on_missing_conv =
  Arg.enum
    [
      ("fail", Cloudia.Advisor.Fail);
      ("impute", Cloudia.Advisor.Impute);
      ("drop", Cloudia.Advisor.Drop_instance);
    ]

let advise provider seed workload strategy_name scale over metric time_limit domains
    graph_spec graph_file trace_file trace_format obs_summary strict_lint json
    on_missing probe_loss stragglers straggler_factor crash fault_seed =
  let from_workload () =
    match workload with
    | Behavioral ->
        Ok
          ( Workloads.Behavioral.graph ~rows:scale ~cols:scale,
            Cloudia.Cost.Longest_link,
            Printf.sprintf "behavioral %dx%d mesh" scale scale )
    | Aggregation ->
        Ok
          ( Workloads.Aggregation.graph ~fanout:2 ~depth:scale,
            Cloudia.Cost.Longest_path,
            Printf.sprintf "aggregation tree depth %d" scale )
    | Kv ->
        Ok
          ( Workloads.Kv_store.graph ~front_ends:scale ~storage:(2 * scale),
            Cloudia.Cost.Longest_link,
            Printf.sprintf "kv store %d front-ends x %d storage" scale (2 * scale) )
  in
  (* An explicit graph (template spec or edge-list file) overrides the
     workload template; the objective then defaults to longest link, or
     longest path when the graph is a DAG with aggregation set. *)
  let graph_result =
    match (graph_spec, graph_file) with
    | Some _, Some _ -> Error "give either --graph-spec or --graph-file, not both"
    | Some spec, None -> (
        match Graphs.Graph_io.parse_spec spec with
        | Ok g -> Ok (Some (g, "spec " ^ spec))
        | Error e -> Error e)
    | None, Some file -> (
        match In_channel.with_open_text file In_channel.input_all with
        | exception Sys_error e -> Error e
        | text -> (
            match Graphs.Graph_io.parse_edge_list text with
            | Ok (g, _) -> Ok (Some (g, "file " ^ file))
            | Error e -> Error e))
    | None, None -> Ok None
  in
  match
    match graph_result with
    | Error e -> Error e
    | Ok None -> from_workload ()
    | Ok (Some (g, label)) ->
        let objective =
          match workload with
          | Aggregation when Graphs.Digraph.is_dag g -> Cloudia.Cost.Longest_path
          | _ -> Cloudia.Cost.Longest_link
        in
        Ok (g, objective, label)
  with
  | Error e ->
      prerr_endline e;
      2
  | Ok (graph, objective, describe) ->
  (match strategy_of_string ~time_limit ~domains ~objective strategy_name with
  | Error (`Msg m) -> prerr_endline m; 2
  | Ok strategy -> (
      let config =
        {
          Cloudia.Advisor.graph;
          objective;
          metric;
          over_allocation = over;
          samples_per_pair = 30;
          strategy;
        }
      in
      if trace_file <> None || obs_summary then Obs.Sink.enable ();
      let faults =
        {
          Cloudsim.Faults.none with
          Cloudsim.Faults.seed = fault_seed;
          loss = probe_loss;
          straggler_fraction = stragglers;
          straggler_factor;
          crash_fraction = crash;
          (* Crash onsets jitter around this; [Faults.none]'s 1 s default
             outlives a whole staged run at CLI sizes (tens of ms of
             simulated time), so anchor early enough to bite. *)
          crash_after_ms = 10.0;
        }
      in
      match
        Cloudia.Advisor.run ~strict_lint ~faults ~on_missing (Prng.create seed)
          (Cloudsim.Provider.get provider) config
      with
      | exception Invalid_argument m -> prerr_endline m; 2
      | exception Lint.Diagnostic.Failed ds ->
          Format.eprintf "%a" Lint.Diagnostic.render ds;
          prerr_endline
            (if strict_lint then "advise: blocked by lint (running with --strict-lint)"
             else "advise: blocked by lint errors");
          2
      | report ->
          export_observability ~seed ~trace_file ~trace_format ~obs_summary ();
          (* Tolerated findings still deserve eyeballs: render them on
             stderr so stdout stays machine-readable. *)
          if not json then
            Format.eprintf "%a" Lint.Diagnostic.render report.Cloudia.Advisor.diagnostics;
          if json then print_endline (report_json ~describe ~objective report)
          else begin
            let telemetry = report.Cloudia.Advisor.telemetry in
            Printf.printf "workload            : %s\n" describe;
            Printf.printf "objective           : %s\n" (Cloudia.Cost.objective_to_string objective);
            Printf.printf "strategy            : %s\n"
              (Cloudia.Advisor.strategy_to_string strategy);
            Printf.printf "instances allocated : %d\n" (Cloudsim.Env.count report.Cloudia.Advisor.env);
            Printf.printf "measurement charged : %.1f min\n"
              report.Cloudia.Advisor.measurement_minutes;
            if report.Cloudia.Advisor.measurement_coverage < 1.0 then
              Printf.printf "probe coverage      : %.1f%% of ordered pairs (on-missing: %s)\n"
                (100.0 *. report.Cloudia.Advisor.measurement_coverage)
                (Cloudia.Advisor.on_missing_to_string on_missing);
            if report.Cloudia.Advisor.dropped <> [] then
              Printf.printf "dropped (uncovered) : %s\n"
                (String.concat ", "
                   (List.map string_of_int report.Cloudia.Advisor.dropped));
            Printf.printf "search time         : %.2f s\n" report.Cloudia.Advisor.search_seconds;
            (match telemetry.Cloudia.Advisor.solver with
            | Cloudia.Advisor.No_solver_stats -> ()
            | Cloudia.Advisor.Cp_stats { iterations; nodes; failures; propagations } ->
                Printf.printf
                  "solver effort       : %d iterations, %d nodes, %d failures, %d propagations\n"
                  iterations nodes failures propagations
            | Cloudia.Advisor.Mip_stats { nodes_explored; nodes_pruned } ->
                Printf.printf "solver effort       : %d nodes explored, %d pruned\n"
                  nodes_explored nodes_pruned
            | Cloudia.Advisor.Anneal_stats { moves_tried; moves_accepted } ->
                Printf.printf "solver effort       : %d moves tried, %d accepted\n"
                  moves_tried moves_accepted
            | Cloudia.Advisor.Random_stats { trials } ->
                Printf.printf "solver effort       : %d trials\n" trials);
            (match telemetry.Cloudia.Advisor.winner with
            | Some w ->
                Printf.printf "portfolio winner    : %s\n" w;
                List.iter
                  (fun (m : Cloudia.Advisor.member_stats) ->
                    Printf.printf
                      "  member %-9s : best %.3f ms in %.2f s (best at %.2f s, %d iterations%s)\n"
                      m.Cloudia.Advisor.member_name m.Cloudia.Advisor.member_cost
                      m.Cloudia.Advisor.member_seconds m.Cloudia.Advisor.member_time_to_best
                      m.Cloudia.Advisor.member_iterations
                      (if m.Cloudia.Advisor.member_proved then ", proved" else ""))
                  telemetry.Cloudia.Advisor.members
            | None -> ());
            if telemetry.Cloudia.Advisor.proven_optimal then
              Printf.printf "optimality          : proven (under the solver's cost rounding)\n";
            Printf.printf "default cost        : %.3f ms\n" report.Cloudia.Advisor.default_cost;
            Printf.printf "optimized cost      : %.3f ms\n" report.Cloudia.Advisor.cost;
            Printf.printf "improvement         : %.1f%%\n" report.Cloudia.Advisor.improvement_pct;
            Printf.printf "terminated          : %d instance(s)\n"
              (List.length report.Cloudia.Advisor.terminated);
            Printf.printf "plan                : %s\n"
              (Format.asprintf "%a" Cloudia.Types.pp_plan report.Cloudia.Advisor.plan)
          end;
          0))

let advise_cmd =
  let workload_arg =
    Arg.(value & opt workload_conv Behavioral & info [ "workload" ] ~doc:"behavioral, aggregation or kv.")
  in
  let strategy_arg =
    Arg.(value & opt string "cp" & info [ "strategy" ]
           ~doc:"g1, g2, r1, r2, r2d (descent), anneal, cp, mip or portfolio.")
  in
  let scale_arg =
    Arg.(value & opt int 4 & info [ "scale" ] ~doc:"Mesh side / tree depth / front-end count.")
  in
  let over_arg =
    Arg.(value & opt float 0.1 & info [ "over-allocation" ] ~doc:"Extra-instance ratio (0.1 = 10%).")
  in
  let metric_arg =
    Arg.(value & opt metric_conv Cloudia.Metrics.Mean & info [ "metric" ] ~doc:"mean, mean+sd or p99.")
  in
  let time_arg =
    Arg.(value & opt float 10.0 & info [ "time-limit" ] ~doc:"Solver budget in seconds (cp/mip/r2/anneal/portfolio).")
  in
  let domains_arg =
    Arg.(value & opt int 4 & info [ "domains" ]
           ~doc:"Parallel workers for --strategy portfolio (one OCaml domain each).")
  in
  let graph_spec_arg =
    Arg.(value & opt (some string) None & info [ "graph-spec" ]
           ~doc:"Template spec, e.g. 'mesh2d 4 4' or 'tree 3 2' (overrides --workload's graph).")
  in
  let graph_file_arg =
    Arg.(value & opt (some string) None & info [ "graph-file" ]
           ~doc:"Edge-list file describing the communication graph.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ]
           ~doc:"Write the solver telemetry trace (spans, incumbent updates, counters) to $(docv).")
  in
  let trace_format_arg =
    Arg.(value & opt trace_format_conv Jsonl & info [ "trace-format" ]
           ~doc:"Trace file format: jsonl (one event per line) or chrome (trace_event JSON for chrome://tracing / Perfetto).")
  in
  let obs_summary_arg =
    Arg.(value & flag & info [ "obs-summary" ]
           ~doc:"Print a per-domain span tree, incumbent streams and counter totals to stderr.")
  in
  let strict_lint_arg =
    Arg.(value & flag & info [ "strict-lint" ]
           ~doc:"Treat lint warnings as fatal: the pre-solve gate blocks the run instead of \
                 recording them in the report's diagnostics.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the full report (costs, plan, telemetry, diagnostics) as one JSON object on stdout.")
  in
  let on_missing_arg =
    Arg.(value & opt on_missing_conv Cloudia.Advisor.Fail & info [ "on-missing" ]
           ~doc:"Policy for unsampled pairs under fault-injected measurement: \
                 fail (refuse, LAT007), impute (conservative estimates, LAT008) \
                 or drop (terminate uncovered instances, LAT009).")
  in
  let probe_loss_arg =
    Arg.(value & opt float 0.0 & info [ "probe-loss" ]
           ~doc:"Base per-link probe loss probability (0 disables; measurement \
                 then runs the staged scheme probe by probe with retries).")
  in
  let stragglers_arg =
    Arg.(value & opt float 0.0 & info [ "stragglers" ]
           ~doc:"Fraction of hosts that periodically spike their RTTs.")
  in
  let straggler_factor_arg =
    Arg.(value & opt float 10.0 & info [ "straggler-factor" ]
           ~doc:"RTT multiplier inside a straggler's spike window.")
  in
  let crash_arg =
    Arg.(value & opt float 0.0 & info [ "crash" ]
           ~doc:"Fraction of instances that crash mid-measurement and stop answering.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 17 & info [ "fault-seed" ]
           ~doc:"Seed of the fault realization (which links lose, who straggles, who crashes).")
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Run the ClouDiA pipeline for a workload")
    Term.(
      const advise $ provider_arg $ seed_arg $ workload_arg $ strategy_arg $ scale_arg
      $ over_arg $ metric_arg $ time_arg $ domains_arg $ graph_spec_arg $ graph_file_arg
      $ trace_arg $ trace_format_arg $ obs_summary_arg $ strict_lint_arg $ json_arg
      $ on_missing_arg $ probe_loss_arg $ stragglers_arg $ straggler_factor_arg
      $ crash_arg $ fault_seed_arg)

(* ---- measure ---- *)

let measure provider seed count =
  let env = Cloudsim.Env.allocate (Prng.create seed) (Cloudsim.Provider.get provider) ~count in
  let truth =
    Netmeasure.Schemes.link_vector
      { Netmeasure.Schemes.means = Cloudsim.Env.mean_matrix env; samples = [||]; sim_seconds = 0.0 }
  in
  Printf.printf "Measurement schemes on %s, %d instances (%d links)\n\n"
    (Cloudsim.Provider.to_string provider) count (Array.length truth);
  Printf.printf "%-15s %10s %12s %10s %14s\n" "scheme" "samples" "sim time" "coverage" "norm. RMSE";
  let report name (m : Netmeasure.Schemes.t) =
    let v = Netmeasure.Schemes.link_vector m in
    let covered = Array.for_all Float.is_finite v in
    let rmse =
      if covered then Printf.sprintf "%.5f" (Stats.Error.normalized_rmse ~baseline:truth v)
      else "n/a (gaps)"
    in
    let total = Array.fold_left (fun a row -> a + Array.fold_left ( + ) 0 row) 0 m.Netmeasure.Schemes.samples in
    Printf.printf "%-15s %10d %10.2f s %9.1f%% %14s\n" name total m.Netmeasure.Schemes.sim_seconds
      (100.0 *. Netmeasure.Schemes.coverage m) rmse
  in
  let rng = Prng.create (seed + 1) in
  report "token-passing" (Netmeasure.Schemes.token_passing rng env ~samples_per_pair:10);
  report "uncoordinated" (Netmeasure.Schemes.uncoordinated rng env ~rounds:(10 * (count - 1)));
  report "staged" (Netmeasure.Schemes.staged rng env ~ks:10 ~stages:(10 * 2 * (count - 1)));
  0

let measure_cmd =
  let count_arg = Arg.(value & opt int 20 & info [ "count" ] ~doc:"Instances to allocate.") in
  Cmd.v
    (Cmd.info "measure" ~doc:"Compare the three measurement schemes")
    Term.(const measure $ provider_arg $ seed_arg $ count_arg)

(* ---- survey ---- *)

let survey provider seed count =
  let env = Cloudsim.Env.allocate (Prng.create seed) (Cloudsim.Provider.get provider) ~count in
  let lats = ref [] in
  for i = 0 to count - 1 do
    for j = 0 to count - 1 do
      if i <> j then lats := Cloudsim.Env.mean_latency env i j :: !lats
    done
  done;
  let arr = Array.of_list !lats in
  let cdf = Stats.Cdf.of_samples arr in
  Printf.printf "%s: pairwise mean latency CDF (%d instances)\n"
    (Cloudsim.Provider.to_string provider) count;
  List.iter
    (fun (x, f) -> Printf.printf "  %.3f ms  %5.1f%%\n" x (100.0 *. f))
    (Stats.Cdf.series ~points:12 cdf);
  0

let survey_cmd =
  let count_arg = Arg.(value & opt int 50 & info [ "count" ] ~doc:"Instances to allocate.") in
  Cmd.v
    (Cmd.info "survey" ~doc:"Latency heterogeneity survey for a provider")
    Term.(const survey $ provider_arg $ seed_arg $ count_arg)

(* ---- plan: bring-your-own measurements ---- *)

let plan_cmd_run seed costs_file graph_spec objective_name strategy_name time_limit domains
    json =
  let objective =
    match String.lowercase_ascii objective_name with
    | "ll" | "longest-link" -> Ok Cloudia.Cost.Longest_link
    | "lp" | "longest-path" -> Ok Cloudia.Cost.Longest_path
    | _ -> Error "objective must be ll or lp"
  in
  match
    match
      (objective, Cloudia.Matrix_io.load_auto costs_file, Graphs.Graph_io.parse_spec graph_spec)
    with
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
    | Ok objective, Ok costs, Ok graph -> (
        match Cloudia.Types.of_matrix ~graph costs with
        | exception Invalid_argument e -> Error e
        | problem -> Ok (objective, problem))
  with
  | Error e ->
      prerr_endline e;
      2
  | Ok (objective, problem) -> (
      match strategy_of_string ~time_limit ~domains ~objective strategy_name with
      | Error (`Msg m) ->
          prerr_endline m;
          2
      | Ok strategy -> (
          match Cloudia.Advisor.search (Prng.create seed) strategy objective problem with
          | exception Invalid_argument m ->
              prerr_endline m;
              2
          | exception Lint.Diagnostic.Failed ds ->
              Format.eprintf "%a" Lint.Diagnostic.render ds;
              prerr_endline "plan: blocked by lint errors";
              2
          | plan ->
              let default = Cloudia.Types.identity_plan problem in
              let cost = Cloudia.Cost.eval objective problem plan in
              let default_cost = Cloudia.Cost.eval objective problem default in
              let unused = Cloudia.Types.unused_instances problem plan in
              if json then begin
                (* Full %.17g precision: two runs producing bit-identical
                   float64 costs produce byte-identical reports, which is
                   what the CI equivalence gate diffs. *)
                let exact f =
                  if Float.is_nan f then json_str "nan" else Printf.sprintf "%.17g" f
                in
                print_endline
                  (json_obj
                     [
                       ("instances", json_int (Cloudia.Types.instance_count problem));
                       ("nodes", json_int (Cloudia.Types.node_count problem));
                       ("objective", json_str (Cloudia.Cost.objective_to_string objective));
                       ("seed", json_int seed);
                       ("default_cost_ms", exact default_cost);
                       ("optimized_cost_ms", exact cost);
                       ( "improvement_pct",
                         exact (Cloudia.Cost.improvement ~default:default_cost ~optimized:cost)
                       );
                       ("plan", json_list (Array.to_list plan |> List.map json_int));
                       ("terminate", json_list (List.map json_int unused));
                     ])
              end
              else begin
                Printf.printf "instances      : %d\n" (Cloudia.Types.instance_count problem);
                Printf.printf "nodes          : %d\n" (Cloudia.Types.node_count problem);
                Printf.printf "objective      : %s\n"
                  (Cloudia.Cost.objective_to_string objective);
                Printf.printf "default cost   : %.3f ms\n" default_cost;
                Printf.printf "optimized cost : %.3f ms (%.1f%% better)\n" cost
                  (Cloudia.Cost.improvement ~default:default_cost ~optimized:cost);
                Printf.printf "plan           : %s\n"
                  (Format.asprintf "%a" Cloudia.Types.pp_plan plan);
                match unused with
                | [] -> ()
                | unused ->
                    Printf.printf "terminate      : instances %s\n"
                      (String.concat ", " (List.map string_of_int unused))
              end;
              0))

let plan_cmd =
  let costs_arg =
    Arg.(required & opt (some string) None & info [ "costs-file" ]
           ~doc:"Cost matrix measured on your own allocation (ms, zero diagonal); CSV or \
                 the CLDALAT1 binary format, sniffed by magic.")
  in
  let graph_arg =
    Arg.(value & opt string "mesh2d 3 3" & info [ "graph-spec" ]
           ~doc:"Communication graph template, e.g. 'mesh2d 4 4', 'tree 3 2'.")
  in
  let objective_arg =
    Arg.(value & opt string "ll" & info [ "objective" ] ~doc:"ll (longest link) or lp (longest path).")
  in
  let strategy_arg =
    Arg.(value & opt string "cp" & info [ "strategy" ]
           ~doc:"g1, g2, r1, r2, r2d (descent), anneal, cp, mip or portfolio.")
  in
  let time_arg =
    Arg.(value & opt float 10.0 & info [ "time-limit" ] ~doc:"Solver budget in seconds.")
  in
  let domains_arg =
    Arg.(value & opt int 4 & info [ "domains" ]
           ~doc:"Parallel workers for --strategy portfolio (one OCaml domain each).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the report as one JSON object on stdout (full float precision).")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Solve a deployment from your own measured cost matrix")
    Term.(
      const plan_cmd_run $ seed_arg $ costs_arg $ graph_arg $ objective_arg $ strategy_arg
      $ time_arg $ domains_arg $ json_arg)

(* ---- lint: validate an instance without solving ---- *)

let lint_run costs_file graph_spec graph_file objective_name time_limit domains strict json =
  let requires_dag =
    match String.lowercase_ascii objective_name with
    | "ll" | "longest-link" -> Ok false
    | "lp" | "longest-path" -> Ok true
    | _ -> Error "objective must be ll or lp"
  in
  (* The raw loaders accept exactly the malformed inputs the strict
     parsers reject, so every problem is reported at once, with codes. *)
  let matrix_result =
    match costs_file with
    | None -> Ok None
    | Some file when Lat_matrix.looks_binary file -> (
        match Cloudia.Matrix_io.load_auto_raw file with
        | Ok m -> Ok (Some (Lat_matrix.to_arrays m))
        | Error e -> Error ("costs: " ^ e))
    | Some file -> (
        match Cloudia.Matrix_io.load_raw file with
        | Ok m -> Ok (Some m)
        | Error e -> Error ("costs: " ^ e))
  in
  let graph_result =
    match (graph_spec, graph_file) with
    | Some _, Some _ -> Error "give either --graph-spec or --graph-file, not both"
    | Some spec, None -> (
        match Graphs.Graph_io.parse_spec spec with
        | Ok g -> Ok (Some (`Graph g))
        | Error e -> Error e)
    | None, Some file -> (
        match In_channel.with_open_text file In_channel.input_all with
        | exception Sys_error e -> Error e
        | text -> (
            match Graphs.Graph_io.parse_edge_list_raw text with
            | Ok (n, edges) -> Ok (Some (`Edges (n, edges)))
            | Error e -> Error e))
    | None, None -> Ok None
  in
  match (requires_dag, matrix_result, graph_result) with
  | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      prerr_endline e;
      2
  | Ok _, Ok None, Ok None ->
      prerr_endline "nothing to lint: give --costs-file and/or --graph-spec/--graph-file";
      2
  | Ok requires_dag, Ok matrix, Ok graph ->
      let pool = Option.map Array.length matrix in
      let matrix_diags =
        match matrix with
        | None -> []
        | Some m -> Lint.Instance.check_matrix m
      in
      let graph_diags =
        match graph with
        | None -> []
        | Some (`Graph g) -> Lint.Instance.check_graph ?pool ~requires_dag g
        | Some (`Edges (n, edges)) -> (
            let edge_diags = Lint.Instance.check_edges ~n edges in
            (* Structural errors poison construction; only lint the graph
               itself once the edge list is sound. *)
            if Lint.Diagnostic.errors edge_diags <> [] then edge_diags
            else
              edge_diags
              @ Lint.Instance.check_graph ?pool ~requires_dag
                  (Graphs.Digraph.create ~n
                     (List.sort_uniq compare (List.filter (fun (u, v) -> u <> v) edges))))
      in
      let config_diags =
        Lint.Instance.check_config ?time_limit ?domains ?pool ()
      in
      let diagnostics = matrix_diags @ graph_diags @ config_diags in
      if json then print_endline (diagnostics_json diagnostics)
      else begin
        Format.printf "%a" Lint.Diagnostic.render diagnostics;
        Printf.printf "lint: %d error(s), %d warning(s), %d info(s)\n"
          (List.length (Lint.Diagnostic.errors diagnostics))
          (List.length (Lint.Diagnostic.warnings diagnostics))
          (List.length diagnostics
          - List.length (Lint.Diagnostic.errors diagnostics)
          - List.length (Lint.Diagnostic.warnings diagnostics))
      end;
      let blocking =
        Lint.Diagnostic.errors diagnostics <> []
        || (strict && Lint.Diagnostic.warnings diagnostics <> [])
      in
      if blocking then 1 else 0

let lint_cmd =
  let costs_arg =
    Arg.(value & opt (some string) None & info [ "costs-file" ]
           ~doc:"CSV cost matrix to validate (NaN/inf/negative entries are reported, not rejected).")
  in
  let graph_spec_arg =
    Arg.(value & opt (some string) None & info [ "graph-spec" ]
           ~doc:"Communication graph template to validate, e.g. 'mesh2d 4 4'.")
  in
  let graph_file_arg =
    Arg.(value & opt (some string) None & info [ "graph-file" ]
           ~doc:"Edge-list file to validate (self-loops, range errors and duplicates are reported).")
  in
  let objective_arg =
    Arg.(value & opt string "ll" & info [ "objective" ]
           ~doc:"ll (longest link) or lp (longest path; enables the acyclicity check).")
  in
  let time_arg =
    Arg.(value & opt (some float) None & info [ "time-limit" ]
           ~doc:"Solver budget to sanity-check (seconds).")
  in
  let domains_arg =
    Arg.(value & opt (some int) None & info [ "domains" ]
           ~doc:"Portfolio domain count to sanity-check.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit non-zero on warnings, not just errors.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the diagnostics as a JSON array on stdout.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Validate a deployment instance (cost matrix, communication graph, solver config) without solving")
    Term.(
      const lint_run $ costs_arg $ graph_spec_arg $ graph_file_arg $ objective_arg
      $ time_arg $ domains_arg $ strict_arg $ json_arg)

(* ---- convert: CSV <-> binary cost matrices ---- *)

let convert_run input output storage_name =
  match Lat_matrix.storage_of_string (String.lowercase_ascii storage_name) with
  | None ->
      prerr_endline "storage must be float64 (f64) or float32 (f32)";
      2
  | Some storage -> (
      (* The raw loader keeps NaN unsampled markers: binary is the
         lossless carrier for partial matrices, and converting one back
         to CSV prints the canonical "nan" cells. *)
      match Cloudia.Matrix_io.load_auto_raw input with
      | Error e ->
          prerr_endline ("convert: " ^ e);
          2
      | Ok lat -> (
          let to_binary =
            Filename.check_suffix output ".lat" || Filename.check_suffix output ".bin"
          in
          match
            if to_binary then
              Cloudia.Matrix_io.save_binary output (Lat_matrix.with_storage storage lat)
            else
              Out_channel.with_open_text output (fun oc ->
                  Out_channel.output_string oc
                    (Cloudia.Matrix_io.print (Lat_matrix.to_arrays lat)))
          with
          | exception Sys_error e ->
              prerr_endline ("convert: " ^ e);
              2
          | () ->
              Printf.printf "%s: %dx%d matrix -> %s (%s)\n" input (Lat_matrix.dim lat)
                (Lat_matrix.dim lat) output
                (if to_binary then "binary " ^ Lat_matrix.storage_to_string storage
                 else "csv");
              0))

let convert_cmd =
  let input_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT"
           ~doc:"Source matrix: CSV or CLDALAT1 binary, sniffed by magic.")
  in
  let output_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT"
           ~doc:"Destination file. A .lat or .bin suffix writes the binary format; \
                 anything else writes CSV.")
  in
  let storage_arg =
    Arg.(value & opt string "float64" & info [ "storage" ]
           ~doc:"Binary element width: float64 (exact) or float32 (half the bytes, \
                 values quantized to single precision).")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a cost matrix between CSV and the mmap-able binary format")
    Term.(const convert_run $ input_arg $ output_arg $ storage_arg)

(* ---- redeploy ---- *)

let redeploy provider seed epochs change_prob migration_cost =
  let graph = Graphs.Templates.mesh2d ~rows:3 ~cols:3 in
  let config =
    {
      Cloudia.Redeploy.default_config with
      Cloudia.Redeploy.epochs;
      change_prob;
      migration_cost;
    }
  in
  let s =
    Cloudia.Redeploy.simulate ~config (Prng.create seed) (Cloudsim.Provider.get provider)
      ~graph ~over_allocation:0.2
  in
  Printf.printf "Re-deployment over %d epochs (change prob %.0f%%, migration cost %.2f)\n\n"
    epochs (change_prob *. 100.0) migration_cost;
  Printf.printf "  %5s %8s %12s %12s %9s\n" "epoch" "changed" "running" "candidate" "migrate";
  List.iter
    (fun r ->
      Printf.printf "  %5d %8s %9.3f ms %9.3f ms %9s\n" r.Cloudia.Redeploy.epoch
        (if r.Cloudia.Redeploy.changed then "yes" else "-")
        r.Cloudia.Redeploy.cost_current r.Cloudia.Redeploy.cost_candidate
        (if r.Cloudia.Redeploy.migrated then "YES" else "-"))
    s.Cloudia.Redeploy.records;
  Printf.printf "\n  migrations: %d\n" s.Cloudia.Redeploy.migrations;
  Printf.printf "  total cost: adaptive %.3f | static %.3f | oracle %.3f\n"
    s.Cloudia.Redeploy.adaptive_total s.Cloudia.Redeploy.static_total
    s.Cloudia.Redeploy.oracle_total;
  0

let redeploy_cmd =
  let epochs_arg = Arg.(value & opt int 15 & info [ "epochs" ] ~doc:"Simulation horizon.") in
  let change_arg =
    Arg.(value & opt float 0.4 & info [ "change-prob" ] ~doc:"Per-epoch network change probability.")
  in
  let migration_arg =
    Arg.(value & opt float 0.5 & info [ "migration-cost" ] ~doc:"One-off migration cost.")
  in
  Cmd.v
    (Cmd.info "redeploy" ~doc:"Simulate iterative re-deployment (Sect. 2.2.1)")
    Term.(const redeploy $ provider_arg $ seed_arg $ epochs_arg $ change_arg $ migration_arg)

(* ---- bandwidth ---- *)

let bandwidth provider seed nodes =
  let rng = Prng.create seed in
  let env =
    Cloudsim.Env.allocate rng (Cloudsim.Provider.get provider) ~count:(nodes * 12 / 10)
  in
  let graph = Graphs.Templates.ring ~n:nodes in
  let default_plan = Array.init nodes (fun i -> i) in
  let default_bw = Cloudia.Bandwidth.bottleneck_gbps env graph default_plan in
  let _, optimized_bw =
    Cloudia.Bandwidth.solve_cp
      ~options:
        {
          Cloudia.Cp_solver.clusters = Some 20;
          time_limit = 10.0;
          iteration_time_limit = None;
          use_labeling = true;
          bootstrap_trials = 10;
          symmetry_breaking = true;
        }
      rng env graph
  in
  Printf.printf "Bottleneck bandwidth of a %d-node ring pipeline on %s\n" nodes
    (Cloudsim.Provider.to_string provider);
  Printf.printf "  default   : %.2f Gbit/s\n" default_bw;
  Printf.printf "  optimized : %.2f Gbit/s (%.0f%% higher)\n" optimized_bw
    ((optimized_bw -. default_bw) /. default_bw *. 100.0);
  0

let bandwidth_cmd =
  let nodes_arg = Arg.(value & opt int 10 & info [ "nodes" ] ~doc:"Pipeline stages.") in
  Cmd.v
    (Cmd.info "bandwidth" ~doc:"Optimize the bottleneck-bandwidth criterion (Sect. 8)")
    Term.(const bandwidth $ provider_arg $ seed_arg $ nodes_arg)

(* ---- obs: trace forensics ---- *)

let obs_report trace_path =
  match Obs.Trace.load trace_path with
  | Error msg ->
      prerr_endline ("obs report: " ^ msg);
      2
  | Ok t ->
      Obs.Trace.report stdout t;
      0

let obs_compare base_path current_path tolerance force =
  let load what path =
    match Obs.Trace.load path with
    | Ok t -> Ok t
    | Error msg -> Error (Printf.sprintf "obs compare: %s trace: %s" what msg)
  in
  match (load "base" base_path, load "current" current_path) with
  | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      2
  | Ok base, Ok current -> (
      match Obs.Trace.header_mismatch base current with
      | Some why when not force ->
          Printf.eprintf
            "obs compare: refusing to compare traces from different runs (%s); pass --force to override\n"
            why;
          2
      | mismatch ->
          (match mismatch with
          | Some why -> Printf.eprintf "obs compare: warning: %s (--force)\n" why
          | None -> ());
          let checks = Obs.Trace.compare_traces ~tolerance ~base ~current () in
          Obs.Trace.print_checks stdout checks;
          let failures = List.length (List.filter (fun c -> not c.Obs.Trace.ok) checks) in
          if failures > 0 then begin
            Printf.printf "obs compare: %d regression(s)\n" failures;
            1
          end
          else begin
            Printf.printf "obs compare: no regressions (%d check(s))\n" (List.length checks);
            0
          end)

let obs_cmd =
  let trace_pos n doc =
    Arg.(required & pos n (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let report_cmd =
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Parse a JSONL trace into a span tree with self/total times and allocation, \
            histogram percentile tables, and time-to-quality metrics from incumbent streams")
      Term.(const obs_report $ trace_pos 0 "JSONL trace written by --trace.")
  in
  let compare_cmd =
    let tolerance_arg =
      Arg.(value & opt float 1.3 & info [ "tolerance" ]
             ~doc:"Multiplicative regression band for timing metrics (1.3 = +30%).")
    in
    let force_arg =
      Arg.(value & flag & info [ "force" ]
             ~doc:"Compare even when the trace headers (schema, seed, argv) disagree.")
    in
    Cmd.v
      (Cmd.info "compare"
         ~doc:
           "Diff two JSONL traces with direction-aware regression bands; exits 1 when the \
            current trace regresses, 2 when the traces are not comparable")
      Term.(
        const obs_compare
        $ trace_pos 0 "Baseline trace."
        $ trace_pos 1 "Current trace."
        $ tolerance_arg $ force_arg)
  in
  Cmd.group
    (Cmd.info "obs" ~doc:"Trace forensics: report on and compare observability traces")
    [ report_cmd; compare_cmd ]

(* ---- serve: the advising daemon ---- *)

let serve socket domains queue_capacity cache_capacity default_deadline =
  let config =
    {
      Serve.Server.socket_path = socket;
      domains;
      queue_capacity;
      cache_capacity;
      default_deadline;
    }
  in
  (* Block SIGTERM/SIGINT before spawning anything, so every thread and
     domain inherits the mask and delivery funnels into the dedicated
     [Thread.wait_signal] thread below. An asynchronous [Signal_handle]
     would not do: the main thread spends shutdown blocked in a
     [pthread_cond_wait] (thread join), where OCaml signal handlers are
     not guaranteed to run. *)
  let signals = [ Sys.sigterm; Sys.sigint ] in
  ignore (Thread.sigmask Unix.SIG_BLOCK signals);
  match Serve.Server.start config with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "serve: cannot listen on %s: %s\n" socket (Unix.error_message e);
      2
  | exception Invalid_argument m ->
      prerr_endline ("serve: " ^ m);
      2
  | t ->
      let (_ : Thread.t) =
        Thread.create
          (fun () ->
            let (_ : int) = Thread.wait_signal signals in
            Serve.Server.signal_stop t)
          ()
      in
      Printf.eprintf "serve: listening on %s (%d worker domain(s))\n%!" socket domains;
      Serve.Server.wait t;
      (* End-of-run latency profile + serve counters, one JSON object on
         stdout — what the CI smoke job validates after SIGTERM. *)
      let s = Serve.Server.latency_snapshot () in
      let q p =
        if s.Obs.Histogram.hist_count = 0 then "null"
        else json_float (Obs.Histogram.quantile_of s p)
      in
      let counters =
        List.filter
          (fun (k, _) -> String.starts_with ~prefix:"serve." k)
          (Obs.Counter.snapshot ())
      in
      print_endline
        (json_obj
           ([
              ("requests", json_int s.Obs.Histogram.hist_count);
              ("p50_ms", q 0.5);
              ("p99_ms", q 0.99);
              ("p999_ms", q 0.999);
            ]
           @ List.map (fun (k, v) -> (k, json_int v)) counters));
      0

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path of the daemon.")

let serve_cmd =
  let domains_arg =
    Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Worker domains solving jobs in parallel.")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue-capacity" ]
           ~doc:"Queued jobs beyond which new submissions are rejected (backpressure).")
  in
  let cache_arg =
    Arg.(value & opt int 32 & info [ "cache-capacity" ]
           ~doc:"Entries per fingerprint-keyed LRU (clusterings, ranks, incumbents, results).")
  in
  let deadline_arg =
    Arg.(value & opt float 30.0 & info [ "default-deadline" ]
           ~doc:"Deadline in seconds for jobs that do not carry one.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the advising daemon: advise jobs over a Unix socket, cached by cost-matrix \
             fingerprint; SIGTERM drains and prints a latency summary")
    Term.(
      const serve $ socket_arg $ domains_arg $ queue_arg $ cache_arg $ deadline_arg)

(* ---- client: submit to a running daemon ---- *)

(* Retry the connect for a grace period so scripts can start daemon and
   client back-to-back without racing the bind. *)
let client_connect socket ~wait_s =
  let deadline = Obs.Clock.now_s () +. wait_s in
  let rec go () =
    match Serve.Client.connect socket with
    | c -> Ok c
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when Obs.Clock.now_s () < deadline ->
        Unix.sleepf 0.05;
        go ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "client: %s: %s" socket (Unix.error_message e))
  in
  go ()

let wait_arg =
  Arg.(value & opt float 5.0 & info [ "connect-timeout" ]
         ~doc:"Seconds to keep retrying the connect while the daemon starts.")

let with_client socket wait_s f =
  match client_connect socket ~wait_s with
  | Error m ->
      prerr_endline m;
      2
  | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () ->
          match f c with
          | code -> code
          | exception End_of_file ->
              prerr_endline "client: daemon closed the connection";
              2
          | exception Serve.Protocol.Protocol_error m ->
              prerr_endline ("client: " ^ m);
              2
          | exception Unix.Unix_error (e, _, _) ->
              prerr_endline ("client: " ^ Unix.error_message e);
              2)

let client_ping socket wait_s =
  with_client socket wait_s (fun c ->
      Serve.Client.ping c;
      print_endline "pong";
      0)

let client_stats socket wait_s =
  with_client socket wait_s (fun c ->
      print_endline
        (json_obj (List.map (fun (k, v) -> (k, json_int v)) (Serve.Client.stats c)));
      0)

let client_advise socket wait_s costs_file graph_spec solver_name objective_name seed
    seed_step budget max_moves clusters deadline tenant id repeat =
  let parsed =
    match
      ( (match String.lowercase_ascii objective_name with
        | "ll" | "longest-link" -> Ok Cloudia.Cost.Longest_link
        | "lp" | "longest-path" -> Ok Cloudia.Cost.Longest_path
        | _ -> Error "objective must be ll or lp"),
        (match Serve.Protocol.solver_of_string (String.lowercase_ascii solver_name) with
        | s -> Ok s
        | exception Serve.Protocol.Protocol_error _ ->
            Error "solver must be cp, anneal, greedy or descent"),
        Cloudia.Matrix_io.load_auto costs_file,
        Graphs.Graph_io.parse_spec graph_spec )
    with
    | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e -> Error e
    | Ok objective, Ok solver, Ok costs, Ok graph -> Ok (objective, solver, costs, graph)
  in
  match parsed with
  | Error e ->
      prerr_endline ("client advise: " ^ e);
      2
  | Ok (objective, solver, costs, graph) ->
      with_client socket wait_s (fun c ->
          let failures = ref 0 in
          for k = 0 to repeat - 1 do
            let job =
              {
                Serve.Protocol.id = (if k = 0 then id else Printf.sprintf "%s-%d" id (k + 1));
                tenant;
                seed = seed + (k * seed_step);
                solver;
                objective;
                budget;
                deadline;
                max_moves;
                clusters;
                graph;
                costs;
              }
            in
            let reply = Serve.Client.advise c job in
            (match reply with
            | Serve.Protocol.Result _ -> ()
            | _ -> incr failures);
            print_endline (Obs.Json.to_string (Serve.Protocol.json_of_reply reply))
          done;
          if !failures > 0 then 1 else 0)

let client_cmd =
  let ping_cmd =
    Cmd.v
      (Cmd.info "ping" ~doc:"Round-trip liveness check")
      Term.(const client_ping $ socket_arg $ wait_arg)
  in
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats" ~doc:"Print daemon counters and cache occupancy as JSON")
      Term.(const client_stats $ socket_arg $ wait_arg)
  in
  let advise_cmd =
    let costs_arg =
      Arg.(required & opt (some string) None & info [ "costs-file" ]
             ~doc:"Cost matrix (CSV or CLDALAT1 binary, sniffed by magic).")
    in
    let graph_arg =
      Arg.(value & opt string "mesh2d 3 3" & info [ "graph-spec" ]
             ~doc:"Communication graph template, e.g. 'mesh2d 4 4'.")
    in
    let solver_arg =
      Arg.(value & opt string "anneal" & info [ "solver" ]
             ~doc:"cp, anneal, greedy or descent.")
    in
    let objective_arg =
      Arg.(value & opt string "ll" & info [ "objective" ]
             ~doc:"ll (longest link) or lp (longest path).")
    in
    let seed_step_arg =
      Arg.(value & opt int 0 & info [ "seed-step" ]
             ~doc:"Seed increment between repeats (0 repeats the identical job, exercising \
                   the result memo; non-zero exercises warm starts).")
    in
    let budget_arg =
      Arg.(value & opt float 2.0 & info [ "budget" ] ~doc:"Solver budget per job, seconds.")
    in
    let moves_arg =
      Arg.(value & opt (some int) None & info [ "max-moves" ]
             ~doc:"Annealing move budget (makes the run deterministic and cacheable).")
    in
    let clusters_arg =
      Arg.(value & opt (some int) None & info [ "clusters" ]
             ~doc:"CP cluster-count override.")
    in
    let deadline_job_arg =
      Arg.(value & opt (some float) None & info [ "deadline" ]
             ~doc:"Per-job deadline in seconds (queue wait included).")
    in
    let tenant_arg =
      Arg.(value & opt string "cli" & info [ "tenant" ] ~doc:"Tenant label for telemetry.")
    in
    let id_arg =
      Arg.(value & opt string "job" & info [ "id" ] ~doc:"Job id (repeats get -2, -3, ... suffixes).")
    in
    let repeat_arg =
      Arg.(value & opt int 1 & info [ "repeat" ] ~doc:"Submit the job this many times.")
    in
    Cmd.v
      (Cmd.info "advise"
         ~doc:"Submit advise job(s); prints one JSON reply per line, exits non-zero if any \
               job was rejected or failed")
      Term.(
        const client_advise $ socket_arg $ wait_arg $ costs_arg $ graph_arg $ solver_arg
        $ objective_arg $ seed_arg $ seed_step_arg $ budget_arg $ moves_arg $ clusters_arg
        $ deadline_job_arg $ tenant_arg $ id_arg $ repeat_arg)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running advising daemon")
    [ ping_cmd; stats_cmd; advise_cmd ]

let () =
  let doc = "ClouDiA: a deployment advisor for public clouds (simulated)" in
  let info = Cmd.info "cloudia" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            advise_cmd;
            plan_cmd;
            lint_cmd;
            convert_cmd;
            measure_cmd;
            survey_cmd;
            redeploy_cmd;
            bandwidth_cmd;
            obs_cmd;
            serve_cmd;
            client_cmd;
          ]))
