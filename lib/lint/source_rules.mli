(** Repository source rules: the engine behind [tools/repolint].

    Project invariants that OCaml's type system cannot express are enforced
    here as bannable token patterns over the source tree:

    - [R003] [Obj.magic] anywhere.
    - [R004] console output ([print_string], [print_endline],
      [print_newline], [Printf.printf], [Format.printf]) in library code
      ([lib/**]) — libraries return data; binaries print.
    - [R005] every [lib/**/*.ml] must have a matching [.mli] — sealed
      interfaces are how the invariants above stay local.

    The former token rules R001 (wall-clock reads outside [lib/obs/] and
    [bench/]), R002 (global [Random] outside [lib/prng/]) and R006 (boxed
    [costs.(i).(j)] indexing outside [lib/lat_matrix/]) migrated to the
    AST passes A002 and A004 in the [analysis] library
    ([lib/analysis/]): token matching cannot see through
    [module U = Unix] aliases or [open]s and false-positives on locally
    shadowed modules, where a Parsetree walk resolves both.

    Matching is token-accurate: comments, string literals (including
    [{|...|}] and [{id|...|id}] quoted strings) and char literals are
    blanked before scanning, so documentation may mention a banned
    identifier without tripping the rule. Paths are matched with ['/']
    separators relative to the repository root.

    Violations are suppressed only through an explicit allowlist (one
    [RULE path-prefix] pair per line), so every exception is checked in
    and reviewable. *)

type rule = { id : string; description : string }

val rules : rule list
(** All rules, in id order. *)

type violation = {
  rule_id : string;
  path : string;
  line : int;       (** 1-based; [0] for whole-file rules like [R005] *)
  excerpt : string; (** the offending source line, trimmed *)
}

val sanitize : string -> string
(** Blank out comments (nested [(* *)]), string literals — ["..."],
    [{|...|}], and delimited [{id|...|id}] forms — and char literals,
    preserving byte positions and newlines, so token scans see only
    code. *)

val scan_file : path:string -> string -> violation list
(** Apply every content rule applicable to [path] to the file's text. *)

val missing_mli : paths:string list -> violation list
(** [R005] over a listing of repository-relative paths. *)

type allow = { allow_rule : string; allow_prefix : string }

val parse_allowlist : string -> allow list
(** One entry per line: [RULE path-prefix]; [#] starts a comment; blank
    lines ignored. *)

val partition_allowed :
  allow list -> violation list -> violation list * violation list
(** [(kept, suppressed)]: a violation is suppressed when an entry's rule
    matches and its prefix is a path prefix of the violation's path. *)

val violation_to_diagnostic : violation -> Diagnostic.t
(** Render as an [Error]-severity {!Diagnostic.t} (context
    ["path:line"]). *)
