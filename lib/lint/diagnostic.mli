(** Severity-graded diagnostics shared by the instance linter and the
    source-rule checker.

    A diagnostic couples a stable code (["LAT001"], ["GRF003"], ...) with a
    severity, a human-readable location ("where in the instance / source
    tree") and a message. Codes are stable across releases so allowlists,
    CI greps and DESIGN.md §7 can refer to them. *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string

val severity_rank : severity -> int
(** [Info] < [Warning] < [Error]. *)

type t = {
  severity : severity;
  code : string;      (** stable machine-readable code, e.g. ["LAT001"] *)
  context : string;   (** where: ["costs[3][7]"], ["graph"], ["lib/cp/search.ml:25"] *)
  message : string;   (** what and why, one line *)
}

val make : severity -> code:string -> context:string -> string -> t

val errors : t list -> t list
val warnings : t list -> t list

val worst : t list -> severity option
(** Highest severity present, [None] on an empty list. *)

val sort : t list -> t list
(** Most severe first; ties by code then context (stable for tests). *)

val to_string : t -> string
(** ["error[LAT001] costs[3][7]: ..."]. *)

val pp : Format.formatter -> t -> unit

val render : Format.formatter -> t list -> unit
(** One diagnostic per line, sorted most severe first. *)

val to_json : t list -> string
(** A JSON array of [{"severity","code","context","message"}] objects, no
    external dependency. *)

exception Failed of t list
(** Raised by pre-solve gates when diagnostics block a run. The payload
    holds every diagnostic collected, not just the blocking ones. *)

val check : ?strict:bool -> t list -> unit
(** Raise {!Failed} if the list contains an error — or, with
    [~strict:true], a warning. Info never blocks. *)

val failure_message : t list -> string
(** Multi-line rendering used for error output when {!Failed} escapes. *)
