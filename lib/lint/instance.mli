(** Pre-solve validation of deployment-problem instances.

    ClouDiA's solvers assume well-formed inputs that nothing in the paper's
    pipeline re-checks at solve time: finite non-negative mean latencies
    with a zero diagonal (Sect. 3.1–3.2), an acyclic communication graph
    for the longest-path objective (LPNDP, Sect. 4.2), and an instance pool
    at least as large as the node set so the deployment injection exists
    (Definition 2). This module turns each assumption into a coded
    diagnostic so a violation fails fast instead of surfacing as NaN costs
    or an unguarded exception deep inside the solvers.

    Codes (see DESIGN.md §7 for the code ↔ paper-assumption map):

    - [LAT001] (error) cost matrix is not square
    - [LAT002] (error) non-finite entry (NaN / ±inf)
    - [LAT003] (error) negative entry
    - [LAT004] (error) non-zero diagonal entry
    - [LAT005] (warning) asymmetry beyond tolerance
    - [LAT006] (info) triangle-inequality violations (data-quality signal)
    - [LAT007] (error) unsampled pairs in a measured matrix (partial
      coverage must not reach a solver unannounced)
    - [LAT008] (warning) imputed (estimated, not measured) pairs in use
    - [LAT009] (warning) instances dropped for lack of coverage
    - [GRF001] (error) self-loop edge
    - [GRF002] (error) edge endpoint out of range
    - [GRF003] (warning) duplicate edge
    - [GRF004] (warning) communication graph not weakly connected
    - [GRF005] (error) cyclic graph under the longest-path objective
    - [GRF006] (error) more application nodes than pool instances
    - [GRF007] (info) isolated nodes (never communicate)
    - [GRF008] (error) empty communication graph (no nodes or no edges)
    - [CFG001] (error) non-positive solver time limit
    - [CFG002] (error) fewer than one portfolio domain
    - [CFG003] (warning) more portfolio domains than pool instances
    - [CFG004] (error) negative over-allocation ratio
    - [CFG005] (error) non-positive samples-per-pair

    Per-entry matrix findings are aggregated: each code yields at most one
    diagnostic carrying the first offending location and the total count,
    so a fully-NaN matrix produces one [LAT002], not n². *)

val check_matrix :
  ?asymmetry_tolerance:float -> ?max_triangle_n:int -> float array array
  -> Diagnostic.t list
(** Validate a latency/cost matrix. [asymmetry_tolerance] (default [0.5])
    is relative: [|c(i,j) - c(j,i)| > tol · max(c(i,j), c(j,i))] flags the
    pair — measured RTTs are legitimately asymmetric (Sect. 3.1), so only
    gross asymmetry warns. The O(n³) triangle scan is skipped above
    [max_triangle_n] (default [128]) and whenever the matrix already has
    errors (NaN would poison the comparisons). *)

val check_edges : n:int -> (int * int) list -> Diagnostic.t list
(** Validate a raw edge list before graph construction (the CLI path):
    self-loops, out-of-range endpoints, duplicates. {!Graphs.Digraph.create}
    rejects the first two with an exception; linting them instead reports
    every problem at once with codes. *)

val check_graph :
  ?pool:int -> ?requires_dag:bool -> Graphs.Digraph.t -> Diagnostic.t list
(** Validate a constructed communication graph. [pool] is the allocated
    instance count (enables the [GRF006] injection check); [requires_dag]
    (default [false]) enables the [GRF005] acyclicity check — set it when
    the objective is longest-path. *)

val check_config :
  ?time_limit:float -> ?domains:int -> ?pool:int -> ?over_allocation:float
  -> ?samples_per_pair:int -> unit -> Diagnostic.t list
(** Solver/pipeline configuration sanity. Only the supplied fields are
    checked, so callers pass exactly what their strategy uses. *)

val check_partial :
  ?context:string -> total:int -> missing:int -> imputed:int -> dropped:int
  -> unit -> Diagnostic.t list
(** Partial-measurement gate for matrices produced under faults. [total]
    is the number of ordered pairs the matrix should cover, [missing] the
    pairs with neither a measurement nor an estimate ([LAT007] error),
    [imputed] the pairs filled by [Netmeasure.Completion] ([LAT008]
    warning), [dropped] the instances discarded to restore full coverage
    ([LAT009] warning). All-zero counts yield no diagnostics. *)

val check_problem :
  ?asymmetry_tolerance:float -> ?requires_dag:bool -> graph:Graphs.Digraph.t
  -> costs:float array array -> unit -> Diagnostic.t list
(** Full instance check: {!check_matrix} plus {!check_graph} with the pool
    taken from the matrix dimension. This is the advisor's pre-solve gate. *)
