type rule = { id : string; description : string }

(* R001 (wall-clock reads), R002 (global Random) and R006 (boxed costs
   indexing) migrated to the AST passes A002 and A004 in [lib/analysis/]:
   token matching cannot see through [module U = Unix] aliases or [open]s
   and false-positives on locally shadowed modules, while the Parsetree
   passes resolve both. The token scanner keeps only the rules where a
   token is the right granularity. *)
let rules =
  [
    { id = "R003"; description = "Obj.magic anywhere" };
    {
      id = "R004";
      description = "console output in library code (libraries return data; binaries print)";
    };
    { id = "R005"; description = "lib/**/*.ml without a matching .mli" };
  ]

type violation = {
  rule_id : string;
  path : string;
  line : int;
  excerpt : string;
}

(* ---- source sanitizer ---- *)

let is_ident c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Blank comments / string literals / char literals with spaces, preserving
   byte offsets and newlines. Nested comments and strings-inside-comments
   follow the OCaml lexer; quoted strings cover both the plain {|...|}
   form and custom delimiters {id|...|id} (the closer must repeat the same
   lowercase identifier). *)
let sanitize text =
  let n = String.length text in
  let out = Bytes.of_string text in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let skip_string start =
    (* [start] points at the opening quote; returns index after closing. *)
    let j = ref (start + 1) in
    let continue = ref true in
    while !continue && !j < n do
      (match text.[!j] with
      | '\\' when !j + 1 < n -> incr j
      | '"' -> continue := false
      | _ -> ());
      incr j
    done;
    for k = start to min (!j - 1) (n - 1) do
      blank k
    done;
    !j
  in
  let skip_quoted start ~delim_len =
    (* [start] points at the '{' of "{|" or "{id|"; the matching closer is
       "|}" or "|id}" with the same delimiter. Returns the index after the
       closer. *)
    let body = start + delim_len + 2 in
    let closes j =
      (* Does a closer "|id}" with our delimiter start at [j]? *)
      j + delim_len + 1 < n
      && text.[j] = '|'
      && text.[j + delim_len + 1] = '}'
      && String.sub text (j + 1) delim_len = String.sub text (start + 1) delim_len
    in
    let j = ref body in
    while !j < n && not (closes !j) do
      incr j
    done;
    let stop = min (!j + delim_len + 2) n in
    for k = start to stop - 1 do
      blank k
    done;
    stop
  in
  (* Length of a lowercase-ident quoted-string delimiter at [start + 1]
     (the char after '{'), or [None] when '{' does not open a quoted
     string. Zero length is the plain {|...|} form. *)
  let quoted_delim_at start =
    let is_delim c = (c >= 'a' && c <= 'z') || c = '_' in
    let j = ref (start + 1) in
    while !j < n && is_delim text.[!j] do
      incr j
    done;
    if !j < n && text.[!j] = '|' then Some (!j - start - 1) else None
  in
  let skip_comment start =
    (* [start] points at '(' of "(*"; handles nesting and inner strings. *)
    let depth = ref 1 in
    let j = ref (start + 2) in
    while !depth > 0 && !j < n do
      if !j + 1 < n && text.[!j] = '(' && text.[!j + 1] = '*' then begin
        incr depth;
        j := !j + 2
      end
      else if !j + 1 < n && text.[!j] = '*' && text.[!j + 1] = ')' then begin
        decr depth;
        j := !j + 2
      end
      else if text.[!j] = '"' then begin
        let k = ref (!j + 1) in
        let continue = ref true in
        while !continue && !k < n do
          (match text.[!k] with
          | '\\' when !k + 1 < n -> incr k
          | '"' -> continue := false
          | _ -> ());
          incr k
        done;
        j := !k
      end
      else incr j
    done;
    for k = start to min (!j - 1) (n - 1) do
      blank k
    done;
    !j
  in
  while !i < n do
    let c = text.[!i] in
    if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then i := skip_comment !i
    else if c = '"' then i := skip_string !i
    else if c = '{' then begin
      match quoted_delim_at !i with
      | Some delim_len -> i := skip_quoted !i ~delim_len
      | None -> incr i
    end
    else if c = '\'' && (!i = 0 || not (is_ident text.[!i - 1])) then begin
      (* Char literal: 'x' or an escape like '\n'; leave type variables
         ('a) alone. The preceding char must not be an identifier char, so
         [x' = 'y'] still lexes the literal. *)
      if !i + 2 < n && text.[!i + 1] <> '\\' && text.[!i + 1] <> '\'' && text.[!i + 2] = '\''
      then begin
        for k = !i to !i + 2 do
          blank k
        done;
        i := !i + 3
      end
      else if !i + 1 < n && text.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && text.[!j] <> '\'' && text.[!j] <> '\n' do
          incr j
        done;
        if !j < n && text.[!j] = '\'' then begin
          for k = !i to !j do
            blank k
          done;
          i := !j + 1
        end
        else incr i
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* ---- token scanning ---- *)

(* All offsets where [token] occurs with identifier boundaries on both
   sides. A token ending in '.' is a prefix match (e.g. "Random." catches
   every projection from the module). *)
let find_token text token =
  let n = String.length text and m = String.length token in
  let hits = ref [] in
  for i = 0 to n - m do
    if String.sub text i m = token then begin
      let before_ok = i = 0 || ((not (is_ident text.[i - 1])) && text.[i - 1] <> '.') in
      let after_ok =
        (not (is_ident token.[m - 1]))
        || i + m >= n
        || not (is_ident text.[i + m])
      in
      if before_ok && after_ok then hits := i :: !hits
    end
  done;
  List.rev !hits

let line_of text offset =
  let line = ref 1 in
  for i = 0 to offset - 1 do
    if text.[i] = '\n' then incr line
  done;
  !line

let excerpt_at text offset =
  let n = String.length text in
  let lo = ref offset and hi = ref offset in
  while !lo > 0 && text.[!lo - 1] <> '\n' do
    decr lo
  done;
  while !hi < n && text.[!hi] <> '\n' do
    incr hi
  done;
  String.trim (String.sub text !lo (!hi - !lo))

(* ---- rules over paths ---- *)

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let has_prefix prefix path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

type matcher = Token of string

let content_rules =
  [
    ("R003", [ Token "Obj.magic" ], fun _ -> true);
    ( "R004",
      [
        Token "print_string";
        Token "print_endline";
        Token "print_newline";
        Token "Printf.printf";
        Token "Format.printf";
      ],
      fun path -> has_prefix "lib/" path );
  ]

let scan_file ~path text =
  let path = normalize path in
  if not (is_source path) then []
  else begin
    let clean = sanitize text in
    List.concat_map
      (fun (rule_id, matchers, applies) ->
        if not (applies path) then []
        else
          List.concat_map
            (fun matcher ->
              let offsets = match matcher with Token token -> find_token clean token in
              List.map
                (fun offset ->
                  {
                    rule_id;
                    path;
                    line = line_of clean offset;
                    excerpt = excerpt_at text offset;
                  })
                offsets)
            matchers)
      content_rules
  end

let missing_mli ~paths =
  let paths = List.map normalize paths in
  let present = Hashtbl.create (List.length paths) in
  List.iter (fun p -> Hashtbl.replace present p ()) paths;
  List.filter_map
    (fun p ->
      if has_prefix "lib/" p && Filename.check_suffix p ".ml"
         && not (Hashtbl.mem present (p ^ "i"))
      then
        Some
          {
            rule_id = "R005";
            path = p;
            line = 0;
            excerpt = Printf.sprintf "no interface file %si" (Filename.basename p);
          }
      else None)
    paths

(* ---- allowlist ---- *)

type allow = { allow_rule : string; allow_prefix : string }

let parse_allowlist text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some i ->
               Some
                 {
                   allow_rule = String.sub line 0 i;
                   allow_prefix =
                     normalize (String.trim (String.sub line (i + 1) (String.length line - i - 1)));
                 })

let partition_allowed allows violations =
  List.partition
    (fun v ->
      not
        (List.exists
           (fun a -> a.allow_rule = v.rule_id && has_prefix a.allow_prefix v.path)
           allows))
    violations

let violation_to_diagnostic v =
  let description =
    match List.find_opt (fun r -> r.id = v.rule_id) rules with
    | Some r -> r.description
    | None -> "unknown rule"
  in
  let context = if v.line = 0 then v.path else Printf.sprintf "%s:%d" v.path v.line in
  Diagnostic.make Diagnostic.Error ~code:v.rule_id ~context
    (Printf.sprintf "%s — %s" description v.excerpt)
