type rule = { id : string; description : string }

let rules =
  [
    {
      id = "R001";
      description =
        "Unix.gettimeofday outside lib/obs/ and bench/ (use the monotonic Obs.Clock)";
    };
    {
      id = "R002";
      description = "global Random outside lib/prng/ (use seeded Prng streams)";
    };
    { id = "R003"; description = "Obj.magic anywhere" };
    {
      id = "R004";
      description = "console output in library code (libraries return data; binaries print)";
    };
    { id = "R005"; description = "lib/**/*.ml without a matching .mli" };
    {
      id = "R006";
      description =
        "direct costs.(i).(j) indexing outside lib/lat_matrix/ (use the Lat_matrix API)";
    };
  ]

type violation = {
  rule_id : string;
  path : string;
  line : int;
  excerpt : string;
}

(* ---- source sanitizer ---- *)

let is_ident c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Blank comments / string literals / char literals with spaces, preserving
   byte offsets and newlines. Nested comments and strings-inside-comments
   follow the OCaml lexer; quoted strings {|...|} are handled without
   custom delimiters (the repo does not use {id|...|id}). *)
let sanitize text =
  let n = String.length text in
  let out = Bytes.of_string text in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let skip_string start =
    (* [start] points at the opening quote; returns index after closing. *)
    let j = ref (start + 1) in
    let continue = ref true in
    while !continue && !j < n do
      (match text.[!j] with
      | '\\' when !j + 1 < n -> incr j
      | '"' -> continue := false
      | _ -> ());
      incr j
    done;
    for k = start to min (!j - 1) (n - 1) do
      blank k
    done;
    !j
  in
  let skip_quoted start =
    (* [start] points at '{' of "{|"; returns index after "|}". *)
    let j = ref (start + 2) in
    while !j + 1 < n && not (text.[!j] = '|' && text.[!j + 1] = '}') do
      incr j
    done;
    let stop = min (!j + 2) n in
    for k = start to stop - 1 do
      blank k
    done;
    stop
  in
  let skip_comment start =
    (* [start] points at '(' of "(*"; handles nesting and inner strings. *)
    let depth = ref 1 in
    let j = ref (start + 2) in
    while !depth > 0 && !j < n do
      if !j + 1 < n && text.[!j] = '(' && text.[!j + 1] = '*' then begin
        incr depth;
        j := !j + 2
      end
      else if !j + 1 < n && text.[!j] = '*' && text.[!j + 1] = ')' then begin
        decr depth;
        j := !j + 2
      end
      else if text.[!j] = '"' then begin
        let k = ref (!j + 1) in
        let continue = ref true in
        while !continue && !k < n do
          (match text.[!k] with
          | '\\' when !k + 1 < n -> incr k
          | '"' -> continue := false
          | _ -> ());
          incr k
        done;
        j := !k
      end
      else incr j
    done;
    for k = start to min (!j - 1) (n - 1) do
      blank k
    done;
    !j
  in
  while !i < n do
    let c = text.[!i] in
    if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then i := skip_comment !i
    else if c = '"' then i := skip_string !i
    else if c = '{' && !i + 1 < n && text.[!i + 1] = '|' then i := skip_quoted !i
    else if c = '\'' && (!i = 0 || not (is_ident text.[!i - 1])) then begin
      (* Char literal: 'x' or an escape like '\n'; leave type variables
         ('a) alone. The preceding char must not be an identifier char, so
         [x' = 'y'] still lexes the literal. *)
      if !i + 2 < n && text.[!i + 1] <> '\\' && text.[!i + 1] <> '\'' && text.[!i + 2] = '\''
      then begin
        for k = !i to !i + 2 do
          blank k
        done;
        i := !i + 3
      end
      else if !i + 1 < n && text.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && text.[!j] <> '\'' && text.[!j] <> '\n' do
          incr j
        done;
        if !j < n && text.[!j] = '\'' then begin
          for k = !i to !j do
            blank k
          done;
          i := !j + 1
        end
        else incr i
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* ---- token scanning ---- *)

(* All offsets where [token] occurs with identifier boundaries on both
   sides. A token ending in '.' is a prefix match (e.g. "Random." catches
   every projection from the module). *)
let find_token text token =
  let n = String.length text and m = String.length token in
  let hits = ref [] in
  for i = 0 to n - m do
    if String.sub text i m = token then begin
      let before_ok = i = 0 || ((not (is_ident text.[i - 1])) && text.[i - 1] <> '.') in
      let after_ok =
        (not (is_ident token.[m - 1]))
        || i + m >= n
        || not (is_ident text.[i + m])
      in
      if before_ok && after_ok then hits := i :: !hits
    end
  done;
  List.rev !hits

(* Like [find_token], but a preceding '.' is a match: [Field "costs.("]
   must also catch record projections such as [t.costs.(i)], which
   [find_token] deliberately skips. *)
let find_field text token =
  let n = String.length text and m = String.length token in
  let hits = ref [] in
  for i = 0 to n - m do
    if String.sub text i m = token then begin
      let before_ok = i = 0 || not (is_ident text.[i - 1]) in
      if before_ok then hits := i :: !hits
    end
  done;
  List.rev !hits

let line_of text offset =
  let line = ref 1 in
  for i = 0 to offset - 1 do
    if text.[i] = '\n' then incr line
  done;
  !line

let excerpt_at text offset =
  let n = String.length text in
  let lo = ref offset and hi = ref offset in
  while !lo > 0 && text.[!lo - 1] <> '\n' do
    decr lo
  done;
  while !hi < n && text.[!hi] <> '\n' do
    incr hi
  done;
  String.trim (String.sub text !lo (!hi - !lo))

(* ---- rules over paths ---- *)

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let has_prefix prefix path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

type matcher = Token of string | Field of string

let content_rules =
  [
    ( "R001",
      [ Token "Unix.gettimeofday" ],
      fun path -> not (has_prefix "lib/obs/" path || has_prefix "bench/" path) );
    ("R002", [ Token "Random." ], fun path -> not (has_prefix "lib/prng/" path));
    ("R003", [ Token "Obj.magic" ], fun _ -> true);
    ( "R004",
      [
        Token "print_string";
        Token "print_endline";
        Token "print_newline";
        Token "Printf.printf";
        Token "Format.printf";
      ],
      fun path -> has_prefix "lib/" path );
    (* The latency matrix is a flat Bigarray behind Lat_matrix; boxed
       [costs.(i).(j)] indexing outside that module (and the I/O layer
       that parses raw CSV rows) re-introduces the representation the
       refactor removed. *)
    ( "R006",
      [ Field "costs.(" ],
      fun path ->
        not (has_prefix "lib/lat_matrix/" path || has_prefix "lib/cloudia/matrix_io" path) );
  ]

let scan_file ~path text =
  let path = normalize path in
  if not (is_source path) then []
  else begin
    let clean = sanitize text in
    List.concat_map
      (fun (rule_id, matchers, applies) ->
        if not (applies path) then []
        else
          List.concat_map
            (fun matcher ->
              let offsets =
                match matcher with
                | Token token -> find_token clean token
                | Field token -> find_field clean token
              in
              List.map
                (fun offset ->
                  {
                    rule_id;
                    path;
                    line = line_of clean offset;
                    excerpt = excerpt_at text offset;
                  })
                offsets)
            matchers)
      content_rules
  end

let missing_mli ~paths =
  let paths = List.map normalize paths in
  let present = Hashtbl.create (List.length paths) in
  List.iter (fun p -> Hashtbl.replace present p ()) paths;
  List.filter_map
    (fun p ->
      if has_prefix "lib/" p && Filename.check_suffix p ".ml"
         && not (Hashtbl.mem present (p ^ "i"))
      then
        Some
          {
            rule_id = "R005";
            path = p;
            line = 0;
            excerpt = Printf.sprintf "no interface file %si" (Filename.basename p);
          }
      else None)
    paths

(* ---- allowlist ---- *)

type allow = { allow_rule : string; allow_prefix : string }

let parse_allowlist text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ' ' with
           | None -> None
           | Some i ->
               Some
                 {
                   allow_rule = String.sub line 0 i;
                   allow_prefix =
                     normalize (String.trim (String.sub line (i + 1) (String.length line - i - 1)));
                 })

let partition_allowed allows violations =
  List.partition
    (fun v ->
      not
        (List.exists
           (fun a -> a.allow_rule = v.rule_id && has_prefix a.allow_prefix v.path)
           allows))
    violations

let violation_to_diagnostic v =
  let description =
    match List.find_opt (fun r -> r.id = v.rule_id) rules with
    | Some r -> r.description
    | None -> "unknown rule"
  in
  let context = if v.line = 0 then v.path else Printf.sprintf "%s:%d" v.path v.line in
  Diagnostic.make Diagnostic.Error ~code:v.rule_id ~context
    (Printf.sprintf "%s — %s" description v.excerpt)
