open Diagnostic

(* Aggregate per-entry findings: one diagnostic per code, carrying the
   first offending location and the total count. *)
type tally = { mutable count : int; mutable first : string; mutable detail : string }

let tally () = { count = 0; first = ""; detail = "" }

let hit t ~context detail =
  if t.count = 0 then begin
    t.first <- context;
    t.detail <- detail
  end;
  t.count <- t.count + 1

let flush t severity ~code acc =
  if t.count = 0 then acc
  else
    let message =
      if t.count = 1 then t.detail
      else Printf.sprintf "%s (%d occurrences in total)" t.detail t.count
    in
    make severity ~code ~context:t.first message :: acc

let check_matrix ?(asymmetry_tolerance = 0.5) ?(max_triangle_n = 128) costs =
  let n = Array.length costs in
  let not_square = tally () in
  let non_finite = tally () in
  let negative = tally () in
  let diagonal = tally () in
  let asymmetric = tally () in
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        hit not_square ~context:(Printf.sprintf "costs[%d]" i)
          (Printf.sprintf "row %d has %d entries, expected %d" i (Array.length row) n))
    costs;
  let square = not_square.count = 0 in
  if square then
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j c ->
            let context = Printf.sprintf "costs[%d][%d]" i j in
            if not (Float.is_finite c) then
              hit non_finite ~context
                (Printf.sprintf "entry (%d,%d) is %s; latencies must be finite" i j
                   (if Float.is_nan c then "NaN" else "infinite"))
            else if c < 0.0 then
              hit negative ~context
                (Printf.sprintf "entry (%d,%d) = %g is negative" i j c)
            else if i = j && c <> 0.0 then
              hit diagonal ~context
                (Printf.sprintf "diagonal entry (%d,%d) = %g must be 0 (an instance talks to itself for free)" i j c))
          row)
      costs;
  let clean = square && non_finite.count = 0 && negative.count = 0 && diagonal.count = 0 in
  if clean then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = costs.(i).(j) and b = costs.(j).(i) in
        let scale = Float.max a b in
        if scale > 0.0 && Float.abs (a -. b) > asymmetry_tolerance *. scale then
          hit asymmetric ~context:(Printf.sprintf "costs[%d][%d]" i j)
            (Printf.sprintf
               "cost(%d,%d)=%g vs cost(%d,%d)=%g differ by more than %.0f%%; check the measurements"
               i j a j i b (100.0 *. asymmetry_tolerance))
      done
    done;
  let triangle =
    if not clean || n > max_triangle_n then []
    else begin
      let violations = ref 0 and example = ref "" in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if j <> i then
            for k = 0 to n - 1 do
              if k <> i && k <> j && costs.(i).(k) > costs.(i).(j) +. costs.(j).(k) then begin
                if !violations = 0 then
                  example :=
                    Printf.sprintf "e.g. cost(%d,%d)=%g > cost(%d,%d)+cost(%d,%d)=%g" i k
                      costs.(i).(k) i j j k
                      (costs.(i).(j) +. costs.(j).(k));
                incr violations
              end
            done
        done
      done;
      if !violations = 0 then []
      else
        [
          make Info ~code:"LAT006" ~context:"costs"
            (Printf.sprintf
               "%d triangle-inequality violation(s) among %d triples (%s) — expected on real networks, but a high count suggests noisy measurements"
               !violations (n * (n - 1) * (n - 2)) !example);
        ]
    end
  in
  triangle
  |> flush asymmetric Warning ~code:"LAT005"
  |> flush diagonal Error ~code:"LAT004"
  |> flush negative Error ~code:"LAT003"
  |> flush non_finite Error ~code:"LAT002"
  |> flush not_square Error ~code:"LAT001"
  |> List.rev

let check_edges ~n edges =
  let self_loops = tally () in
  let out_of_range = tally () in
  let duplicates = tally () in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      let context = Printf.sprintf "edge (%d,%d)" u v in
      if u < 0 || u >= n || v < 0 || v >= n then
        hit out_of_range ~context
          (Printf.sprintf "edge (%d,%d) has an endpoint outside 0..%d" u v (n - 1))
      else if u = v then
        hit self_loops ~context
          (Printf.sprintf "self-loop on node %d; a node never talks to itself over the network" u)
      else if Hashtbl.mem seen (u, v) then
        hit duplicates ~context
          (Printf.sprintf "edge (%d,%d) appears more than once; duplicates are collapsed" u v)
      else Hashtbl.add seen (u, v) ())
    edges;
  []
  |> flush duplicates Warning ~code:"GRF003"
  |> flush out_of_range Error ~code:"GRF002"
  |> flush self_loops Error ~code:"GRF001"
  |> List.rev

let check_graph ?pool ?(requires_dag = false) graph =
  let n = Graphs.Digraph.n graph in
  let acc = ref [] in
  let add d = acc := d :: !acc in
  if n = 0 || Graphs.Digraph.edge_count graph = 0 then
    add
      (make Error ~code:"GRF008" ~context:"graph"
         "empty communication graph: no nodes talk, so every objective is vacuous");
  (match pool with
  | Some pool when n > pool ->
      add
        (make Error ~code:"GRF006" ~context:"graph"
           (Printf.sprintf
              "%d application nodes but only %d allocated instances; the deployment injection needs |V| <= |S| (Definition 2)"
              n pool))
  | _ -> ());
  if requires_dag && not (Graphs.Digraph.is_dag graph) then
    add
      (make Error ~code:"GRF005" ~context:"graph"
         "communication graph has a directed cycle; the longest-path objective (LPNDP, Sect. 4.2) is only defined on DAGs");
  if n > 1 && not (Graphs.Digraph.is_connected_undirected graph) then
    add
      (make Warning ~code:"GRF004" ~context:"graph"
         "communication graph is not (weakly) connected; disconnected components optimize independently — was the template intended?");
  if n > 1 then begin
    let isolated = ref 0 and first = ref (-1) in
    for v = 0 to n - 1 do
      if Graphs.Digraph.undirected_degree graph v = 0 then begin
        if !isolated = 0 then first := v;
        incr isolated
      end
    done;
    if !isolated > 0 then
      add
        (make Info ~code:"GRF007" ~context:(Printf.sprintf "node %d" !first)
           (Printf.sprintf
              "%d node(s) have no incident edges; they never communicate and any placement is optimal for them"
              !isolated))
  end;
  List.rev !acc

let check_config ?time_limit ?domains ?pool ?over_allocation ?samples_per_pair () =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  (match time_limit with
  | Some t when t <= 0.0 ->
      add
        (make Error ~code:"CFG001" ~context:"config.time_limit"
           (Printf.sprintf "solver time limit %g must be positive" t))
  | _ -> ());
  (match domains with
  | Some d when d < 1 ->
      add
        (make Error ~code:"CFG002" ~context:"config.domains"
           (Printf.sprintf "portfolio needs at least one domain, got %d" d))
  | _ -> ());
  (match (domains, pool) with
  | Some d, Some p when d >= 1 && d > p ->
      add
        (make Warning ~code:"CFG003" ~context:"config.domains"
           (Printf.sprintf
              "%d portfolio domains for a pool of %d instances; extra workers only duplicate effort"
              d p))
  | _ -> ());
  (match over_allocation with
  | Some o when o < 0.0 ->
      add
        (make Error ~code:"CFG004" ~context:"config.over_allocation"
           (Printf.sprintf "over-allocation ratio %g must be non-negative" o))
  | _ -> ());
  (match samples_per_pair with
  | Some s when s <= 0 ->
      add
        (make Error ~code:"CFG005" ~context:"config.samples_per_pair"
           (Printf.sprintf "need a positive number of RTT samples per pair, got %d" s))
  | _ -> ());
  List.rev !acc

let check_partial ?(context = "costs") ~total ~missing ~imputed ~dropped () =
  let acc = ref [] in
  let add d = acc := d :: !acc in
  let pct part =
    if total <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total
  in
  if missing > 0 then
    add
      (make Error ~code:"LAT007" ~context
         (Printf.sprintf
            "%d of %d ordered pairs (%.1f%%) have no measured latency; a partial matrix must not reach a solver — rerun the measurement, impute (--on-missing impute) or drop instances (--on-missing drop)"
            missing total (pct missing)));
  if imputed > 0 then
    add
      (make Warning ~code:"LAT008" ~context
         (Printf.sprintf
            "%d of %d ordered pairs (%.1f%%) carry imputed (not measured) latencies; deployment costs on those links are conservative estimates"
            imputed total (pct imputed)));
  if dropped > 0 then
    add
      (make Warning ~code:"LAT009" ~context
         (Printf.sprintf
            "%d instance(s) dropped for lack of measurement coverage; the advisor optimizes over the remaining pool"
            dropped));
  List.rev !acc

let check_problem ?asymmetry_tolerance ?requires_dag ~graph ~costs () =
  check_matrix ?asymmetry_tolerance costs
  @ check_graph ~pool:(Array.length costs) ?requires_dag graph
