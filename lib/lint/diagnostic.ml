type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type t = {
  severity : severity;
  code : string;
  context : string;
  message : string;
}

let make severity ~code ~context message = { severity; code; context; message }

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let worst = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
           Info ds)

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank b.severity) (severity_rank a.severity) with
      | 0 -> ( match compare a.code b.code with 0 -> compare a.context b.context | c -> c)
      | c -> c)
    ds

let to_string d =
  Printf.sprintf "%s[%s] %s: %s" (severity_to_string d.severity) d.code d.context d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let render fmt ds =
  List.iter (fun d -> Format.fprintf fmt "%a@." pp d) (sort ds)

(* Hand-rolled JSON, mirroring the CLI's emitter: no external dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ds =
  let one d =
    Printf.sprintf "{\"severity\":\"%s\",\"code\":\"%s\",\"context\":\"%s\",\"message\":\"%s\"}"
      (severity_to_string d.severity) (json_escape d.code) (json_escape d.context)
      (json_escape d.message)
  in
  "[" ^ String.concat "," (List.map one (sort ds)) ^ "]"

exception Failed of t list

let failure_message ds =
  String.concat "\n" (List.map to_string (sort ds))

let check ?(strict = false) ds =
  let blocking d =
    match d.severity with Error -> true | Warning -> strict | Info -> false
  in
  if List.exists blocking ds then raise (Failed ds)

let () =
  Printexc.register_printer (function
    | Failed ds -> Some ("lint failed:\n" ^ failure_message ds)
    | _ -> None)
