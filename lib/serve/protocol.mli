(** Wire protocol of the advising daemon.

    Frames are length-prefixed JSON over a Unix-domain socket: a 4-byte
    big-endian payload length, then one JSON document. Payloads are capped
    at {!max_frame_bytes} (16 MiB — a 64-node job is ~100 KiB, so the cap
    only stops runaway clients). Requests flow client → server, replies
    server → client; replies to concurrent jobs on one connection may
    arrive out of submission order and carry the job [id] for matching.

    Latency-matrix entries round-trip NaN (unsampled pairs) as JSON
    [null]. *)

exception Protocol_error of string
(** Malformed frame, unknown variant tag, or an oversized frame. Framing
    functions additionally raise [End_of_file] when the peer closes
    mid-frame, and let [Unix.Unix_error] escape. *)

val max_frame_bytes : int

type solver = Cp | Anneal | Greedy | Descent
(** Deployment search strategy for a job: the CP solver, simulated
    annealing, the greedy G2 baseline, or randomized descent (R2D). *)

val solver_to_string : solver -> string
val solver_of_string : string -> solver

type job = {
  id : string;                  (** caller-chosen; echoed in the reply *)
  tenant : string;              (** tenant label for spans and stats *)
  seed : int;                   (** PRNG seed — same job, same answer *)
  solver : solver;
  objective : Cloudia.Cost.objective;
  budget : float;               (** solver wall-clock budget, seconds *)
  deadline : float option;      (** queue + solve deadline, seconds from
                                    enqueue; [None] = server default *)
  max_moves : int option;       (** anneal move budget (makes the run
                                    deterministic and memo-admissible) *)
  clusters : int option;        (** CP cluster-count override *)
  graph : Graphs.Digraph.t;
  costs : Lat_matrix.t;
}

type request = Advise of job | Ping | Stats_request

type reply =
  | Result of {
      r_id : string;
      r_plan : int array;
      r_cost : float;
      r_cached : bool;          (** full result served from the memo *)
      r_warm : bool;            (** solver seeded from a cached incumbent *)
      r_fingerprint : string;   (** cost-matrix fingerprint (hex) *)
      r_latency_ms : float;     (** enqueue → reply, server-side *)
    }
  | Rejected of { j_id : string; reason : string }
      (** backpressure: the job never entered the queue *)
  | Failed of { j_id : string; message : string }
      (** the job ran but the solver raised *)
  | Pong
  | Stats of (string * int) list

(** {2 JSON codecs} — exposed for tests and alternative transports. *)

val json_of_request : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> request
val json_of_reply : reply -> Obs.Json.t
val reply_of_json : Obs.Json.t -> reply

(** {2 Framing} *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> string option
(** [None] on a clean EOF between frames; [End_of_file] mid-frame. *)

val send_request : Unix.file_descr -> request -> unit
val send_reply : Unix.file_descr -> reply -> unit

val recv_request : Unix.file_descr -> request option
val recv_reply : Unix.file_descr -> reply option
