(* Minimal synchronous client: one request, wait for the matching reply.
   Replies on a shared connection can interleave, so [rpc] skips replies
   whose id belongs to someone else only in the trivial sense of not
   expecting any — this client serializes, one outstanding request at a
   time, which is all the CLI and bench need. *)

type t = { fd : Unix.file_descr }

let connect path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t req =
  Protocol.send_request t.fd req;
  match Protocol.recv_reply t.fd with
  | Some reply -> reply
  | None -> raise End_of_file

let advise t job = rpc t (Protocol.Advise job)

let ping t = match rpc t Protocol.Ping with Protocol.Pong -> () | _ -> failwith "expected pong"

let stats t =
  match rpc t Protocol.Stats_request with
  | Protocol.Stats kvs -> kvs
  | _ -> failwith "expected stats"

let raw_fd t = t.fd
