(** Synchronous client for the advising daemon: one outstanding request
    per connection. *)

type t

val connect : string -> t
(** Connect to the daemon's socket path. Raises [Unix.Unix_error] when
    the daemon is not listening. *)

val close : t -> unit

val rpc : t -> Protocol.request -> Protocol.reply
(** Send one request and block for its reply. Raises [End_of_file] if
    the daemon closes the connection first, {!Protocol.Protocol_error}
    on a malformed reply. *)

val advise : t -> Protocol.job -> Protocol.reply
(** {!rpc} on [Advise] — the reply is [Result], [Rejected], or
    [Failed]. *)

val ping : t -> unit
val stats : t -> (string * int) list

val raw_fd : t -> Unix.file_descr
(** The underlying socket — tests use it to simulate abrupt
    disconnects. *)
