(** The advising daemon: advise jobs over a Unix-domain socket, sharded
    across a pool of worker domains.

    One accept thread and one reader thread per connection feed a bounded
    job queue drained by [domains] worker domains. A full queue answers
    [Rejected] immediately (backpressure) instead of buffering; each job
    carries a deadline (its own or the server default) enforced both in
    the queue and inside the solver via its [stop] hook. Results flow
    through the fingerprint-keyed {!Cache}: identical re-submissions are
    answered from a memo when the original solve was deterministic and
    ran to completion, and new solves of a known matrix reuse cached
    clusterings / rank tables and warm-start from the best incumbent seen
    for that (matrix, graph, objective).

    Telemetry: [serve.jobs], [serve.rejected], [serve.deadline_expired],
    [serve.client_gone] counters, the [serve.queue_depth] gauge, and the
    [serve.request_ms] histogram (enqueue → reply), all always-on. *)

type config = {
  socket_path : string;
  domains : int;            (** worker domains; 0 = accept/reject only,
                                jobs are never executed (tests) *)
  queue_capacity : int;     (** bound on queued-but-unstarted jobs *)
  cache_capacity : int;     (** entries per LRU in the {!Cache} *)
  default_deadline : float; (** seconds, for jobs that name none *)
}

val default_config : socket_path:string -> config
(** 2 domains, queue 64, cache 32, 30 s default deadline. *)

type t

val start : config -> t
(** Bind and listen on [socket_path] (an existing socket file is
    replaced), spawn the worker domains and the accept thread, and
    return immediately. Ignores [SIGPIPE] process-wide — a client
    disconnecting mid-write must surface as [EPIPE], not kill the
    daemon. Raises [Unix.Unix_error] if the socket cannot be bound and
    [Invalid_argument] on a negative domain count or non-positive queue
    capacity. *)

val signal_stop : t -> unit
(** Begin shutdown: sets the stop flag and wakes the accept thread.
    Async-signal-safe (no locks) — call it from a [SIGTERM] handler.
    Idempotent. *)

val wait : t -> unit
(** Block until shutdown completes: in-queue jobs are drained by the
    workers (or rejected with reason ["shutting down"] when there are no
    workers), connections are closed, the socket file unlinked. Call
    after {!signal_stop}; at most once. *)

val stop : t -> unit
(** {!signal_stop} then {!wait}. *)

val latency_snapshot : unit -> Obs.Histogram.snapshot
(** Snapshot of [serve.request_ms] — the daemon CLI prints p50/p99/p999
    from this on shutdown. *)
