(** Bounded least-recently-used map for the serving caches.

    Capacity is fixed at creation; inserting beyond it evicts the entry
    whose last access is oldest. {!find} counts as an access, {!mem} does
    not. Keys use structural equality/hashing — use scalar or string
    keys (the caches key by fingerprint strings). Not thread-safe:
    {!Cache} serializes access under its own mutex. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] unless the capacity is positive. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup, marking the entry most recently used on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Lookup without touching recency. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, evicting the least recently used entry if the
    cache is full. The new entry is most recently used. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
