(* Cross-job caches of the advising daemon, all keyed (directly or as a
   key prefix) by the cost matrix's content fingerprint. Tenants
   re-advising after a re-measurement tend to submit the same matrix —
   fingerprints match bit-for-bit — so clusterings, rank tables, and
   previous incumbents transfer across jobs and tenants. One mutex guards
   all four LRUs: every operation is a hash lookup, far cheaper than the
   solves running between them. *)

let c_hits = Obs.Counter.make "serve.cache_hits"
let c_misses = Obs.Counter.make "serve.cache_misses"

type incumbent = { plan : int array; cost : float }

type t = {
  lock : Mutex.t;
  clusterings : (string, Cloudia.Clustering.t) Lru.t;
  ranks : (string, Cloudia.Delta_cost.ranks) Lru.t;
  incumbents : (string, incumbent) Lru.t;
  memo : (string, incumbent) Lru.t;
}

let create ~capacity =
  {
    lock = Mutex.create ();
    clusterings = Lru.create ~capacity;
    ranks = Lru.create ~capacity;
    incumbents = Lru.create ~capacity;
    memo = Lru.create ~capacity;
  }

let fingerprint = Lat_matrix.fingerprint_hex

let graph_key g =
  Digest.to_hex (Digest.string (Graphs.Graph_io.print_edge_list g))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find lru t key =
  locked t (fun () ->
      match Lru.find lru key with
      | Some v ->
          Obs.Counter.incr c_hits;
          Some v
      | None ->
          Obs.Counter.incr c_misses;
          None)

(* [find_or] computes outside the lock: clustering/rank construction is
   O(n² log n) and must not serialize the worker domains. Two workers
   racing on the same key both compute and the later [put] wins — wasted
   work, never a wrong answer (both computed the same pure value). *)
let find_or lru t key compute =
  match find lru t key with
  | Some v -> v
  | None ->
      let v = compute () in
      locked t (fun () -> Lru.put lru key v);
      v

let clustering t ~key compute = find_or t.clusterings t key compute
let ranks t ~key compute = find_or t.ranks t key compute

let incumbent t ~key = find t.incumbents t key

let note_incumbent t ~key plan cost =
  locked t (fun () ->
      match Lru.find t.incumbents key with
      | Some prev when prev.cost <= cost -> ()
      | _ -> Lru.put t.incumbents key { plan = Array.copy plan; cost })

let memo_find t ~key = find t.memo t key

let memo_add t ~key plan cost =
  locked t (fun () -> Lru.put t.memo key { plan = Array.copy plan; cost })

let stats t =
  locked t (fun () ->
      [
        ("cache.clusterings", Lru.length t.clusterings);
        ("cache.ranks", Lru.length t.ranks);
        ("cache.incumbents", Lru.length t.incumbents);
        ("cache.memo", Lru.length t.memo);
      ])
