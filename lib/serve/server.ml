(* The advising daemon.

   Threading layout: one accept thread plus one reader thread per
   connection (systhreads — they spend their lives blocked in [accept]/
   [read], where the runtime lock is released), and [config.domains]
   worker domains that burn CPU in the solvers. Readers push jobs into
   one bounded queue; workers pop. The queue is the backpressure point:
   when it is full the reader replies [Rejected] immediately instead of
   buffering — the client learns the daemon is saturated while its
   deadline still has value.

   Shutdown: [signal_stop] only sets the stop flag and wakes the accept
   thread with a dummy self-connection (async-signal-safe — no locks, so
   it can run inside a signal handler). [wait] then joins the accept
   thread, lets the workers drain the queue, rejects anything left (the
   domains = 0 test configuration has no workers), shuts down every
   connection to unblock its reader, and unlinks the socket. *)

let c_jobs = Obs.Counter.make "serve.jobs"
let c_rejected = Obs.Counter.make "serve.rejected"
let c_expired = Obs.Counter.make "serve.deadline_expired"
let c_client_gone = Obs.Counter.make "serve.client_gone"
let g_queue_depth = Obs.Gauge.make "serve.queue_depth"
let h_request_ms = Obs.Histogram.make "serve.request_ms"

type config = {
  socket_path : string;
  domains : int;
  queue_capacity : int;
  cache_capacity : int;
  default_deadline : float;
}

let default_config ~socket_path =
  {
    socket_path;
    domains = 2;
    queue_capacity = 64;
    cache_capacity = 32;
    default_deadline = 30.0;
  }

(* A connection: the reader owns [fd] for reads; replies (from readers
   and workers alike) serialize on [wlock]. [pending] counts queued jobs
   whose reply will still be written; the fd closes when the reader has
   exited ([alive = false]) and the last pending reply is out — whichever
   side gets there last closes, guarded by [closed]. *)
type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  mutable alive : bool;
  mutable pending : int;
  mutable closed : bool;
}

type item = {
  job : Protocol.job;
  item_conn : conn;
  enqueued_at : float;
  deadline_at : float;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  cache : Cache.t;
  stopping : bool Atomic.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : item Queue.t;
  clock : Mutex.t;  (* guards [conns] and [readers] *)
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable workers : unit Domain.t list;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- connection plumbing --------------------------------------------- *)

let close_if_done_locked conn =
  if (not conn.alive) && conn.pending = 0 && not conn.closed then begin
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Best-effort reply: a vanished client must not kill a worker. *)
let reply conn r =
  locked conn.wlock (fun () ->
      if not conn.closed then
        try Protocol.send_reply conn.fd r
        with
        | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
        | Sys_error _
        ->
          Obs.Counter.incr c_client_gone)

let job_done conn =
  locked conn.wlock (fun () ->
      conn.pending <- conn.pending - 1;
      close_if_done_locked conn)

(* --- the solve itself ------------------------------------------------ *)

type outcome = { plan : int array; cost : float; cached : bool; warm : bool }

let effective_clusters (job : Protocol.job) =
  match job.clusters with
  | Some k -> Some k
  | None -> Cloudia.Cp_solver.default_options.clusters

let memo_key (job : Protocol.job) ~inc_key =
  Printf.sprintf "%s|%s|%d|%.17g|%s|%s" inc_key
    (Protocol.solver_to_string job.solver)
    job.seed job.budget
    (match job.max_moves with Some m -> string_of_int m | None -> "-")
    (match effective_clusters job with Some k -> string_of_int k | None -> "-")

let execute t (job : Protocol.job) ~deadline_at =
  let problem = Cloudia.Types.of_matrix ~graph:job.graph job.costs in
  let fp = Cache.fingerprint job.costs in
  let inc_key =
    String.concat "|"
      [ fp; Cache.graph_key job.graph; Cloudia.Cost.objective_to_string job.objective ]
  in
  let key = memo_key job ~inc_key in
  match Cache.memo_find t.cache ~key with
  | Some { Cache.plan; cost } -> (fp, { plan; cost; cached = true; warm = false })
  | None ->
      let rng = Prng.create job.seed in
      let stop () = Atomic.get t.stopping || Obs.Clock.now_s () > deadline_at in
      let budget = Float.max 0.0 (Float.min job.budget (deadline_at -. Obs.Clock.now_s ())) in
      let warm_start = Cache.incumbent t.cache ~key:inc_key in
      (* Only Cp/Anneal consume a warm start; the flag reports actual use. *)
      let warm =
        warm_start <> None
        && match job.solver with Protocol.Cp | Protocol.Anneal -> true | _ -> false
      in
      let plan, cost, complete =
        match job.solver with
        | Protocol.Cp ->
            if job.objective <> Cloudia.Cost.Longest_link then
              invalid_arg "serve: the cp solver only supports the longest-link objective";
            let k = effective_clusters job in
            let ckey =
              fp ^ "#" ^ (match k with Some k -> string_of_int k | None -> "exact")
            in
            let clustering =
              Cache.clustering t.cache ~key:ckey (fun () ->
                  match k with
                  | Some k -> Cloudia.Clustering.cluster ~k job.costs
                  | None -> Cloudia.Clustering.none job.costs)
            in
            let options =
              { Cloudia.Cp_solver.default_options with time_limit = budget; clusters = k }
            in
            let r =
              Cloudia.Cp_solver.solve ~options ~clustering
                ?warm_start:(Option.map (fun i -> i.Cache.plan) warm_start)
                ~stop rng problem
            in
            (r.Cloudia.Cp_solver.plan, r.Cloudia.Cp_solver.cost, r.Cloudia.Cp_solver.proven_optimal)
        | Protocol.Anneal ->
            let options =
              {
                Cloudia.Anneal.default_options with
                time_limit = budget;
                max_moves = job.max_moves;
              }
            in
            let ranks =
              match job.objective with
              | Cloudia.Cost.Longest_link ->
                  Some
                    (Cache.ranks t.cache ~key:fp (fun () ->
                         Cloudia.Delta_cost.ranks_of_matrix job.costs))
              | Cloudia.Cost.Longest_path -> None
            in
            let r =
              Cloudia.Anneal.solve_objective ~options ~stop
                ?init:(Option.map (fun i -> i.Cache.plan) warm_start)
                ?ranks rng job.objective problem
            in
            (* Memo only runs whose fixed move budget was fully spent: the
               wall clock then never truncated the search, so the result is
               a pure function of the job. *)
            let complete =
              match job.max_moves with
              | Some m -> r.Cloudia.Anneal.moves_tried >= m
              | None -> false
            in
            (r.Cloudia.Anneal.plan, r.Cloudia.Anneal.cost, complete)
        | Protocol.Greedy ->
            let plan = Cloudia.Greedy.g2 problem in
            (plan, Cloudia.Cost.eval job.objective problem plan, true)
        | Protocol.Descent ->
            let plan, cost, _restarts =
              Cloudia.Random_search.r2_descent ~stop rng job.objective problem
                ~time_limit:budget
            in
            (plan, cost, false)
      in
      if Float.is_finite cost then begin
        Cache.note_incumbent t.cache ~key:inc_key plan cost;
        if complete then Cache.memo_add t.cache ~key plan cost
      end;
      (fp, { plan; cost; cached = false; warm })

let run_item t item =
  let { job; item_conn = conn; enqueued_at; deadline_at } = item in
  let r =
    if Obs.Clock.now_s () > deadline_at then begin
      Obs.Counter.incr c_expired;
      Protocol.Rejected { j_id = job.id; reason = "deadline expired in queue" }
    end
    else
      match
        Obs.Resource.with_ "serve.request" (fun () -> execute t job ~deadline_at)
      with
      | fp, o ->
          Obs.Counter.incr c_jobs;
          Protocol.Result
            {
              r_id = job.id;
              r_plan = o.plan;
              r_cost = o.cost;
              r_cached = o.cached;
              r_warm = o.warm;
              r_fingerprint = fp;
              r_latency_ms = (Obs.Clock.now_s () -. enqueued_at) *. 1000.0;
            }
      | exception Invalid_argument m | exception Failure m ->
          Protocol.Failed { j_id = job.id; message = m }
      | exception e -> Protocol.Failed { j_id = job.id; message = Printexc.to_string e }
  in
  Obs.Histogram.record h_request_ms ((Obs.Clock.now_s () -. enqueued_at) *. 1000.0);
  reply conn r;
  job_done conn

(* Workers exit only on [stopping] with an empty queue, so a stopping
   daemon still drains every accepted job. *)
let worker t () =
  let rec loop () =
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
      Condition.wait t.qcond t.qlock
    done;
    if Queue.is_empty t.queue then (Mutex.unlock t.qlock; ())
    else begin
      let item = Queue.pop t.queue in
      Obs.Gauge.set g_queue_depth (float_of_int (Queue.length t.queue));
      Mutex.unlock t.qlock;
      run_item t item;
      loop ()
    end
  in
  loop ()

(* --- per-connection reader ------------------------------------------- *)

let stats_reply t =
  let qd = locked t.qlock (fun () -> Queue.length t.queue) in
  let serve_counters =
    List.filter
      (fun (k, _) -> String.starts_with ~prefix:"serve." k)
      (Obs.Counter.snapshot ())
  in
  Protocol.Stats ((("queue_depth", qd) :: serve_counters) @ Cache.stats t.cache)

let enqueue t conn (job : Protocol.job) =
  let now = Obs.Clock.now_s () in
  let deadline =
    match job.deadline with Some d -> d | None -> t.config.default_deadline
  in
  let item =
    { job; item_conn = conn; enqueued_at = now; deadline_at = now +. deadline }
  in
  let verdict =
    locked t.qlock (fun () ->
        if Atomic.get t.stopping then Error "shutting down"
        else if Queue.length t.queue >= t.config.queue_capacity then Error "queue full"
        else begin
          locked conn.wlock (fun () -> conn.pending <- conn.pending + 1);
          Queue.push item t.queue;
          Obs.Gauge.set g_queue_depth (float_of_int (Queue.length t.queue));
          Condition.signal t.qcond;
          Ok ()
        end)
  in
  match verdict with
  | Ok () -> ()
  | Error reason ->
      Obs.Counter.incr c_rejected;
      reply conn (Protocol.Rejected { j_id = job.id; reason })

let reader t conn () =
  let rec loop () =
    match Protocol.recv_request conn.fd with
    | None -> ()
    | Some Protocol.Ping ->
        reply conn Protocol.Pong;
        loop ()
    | Some Protocol.Stats_request ->
        reply conn (stats_reply t);
        loop ()
    | Some (Protocol.Advise job) ->
        enqueue t conn job;
        loop ()
    | exception Protocol.Protocol_error m ->
        (* Unframeable garbage: answer once, then drop the connection —
           resynchronizing an unknown stream position is hopeless. *)
        reply conn (Protocol.Failed { j_id = ""; message = m })
    | exception (End_of_file | Unix.Unix_error (_, _, _)) -> ()
  in
  loop ();
  locked conn.wlock (fun () ->
      conn.alive <- false;
      close_if_done_locked conn)

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (_, _, _) ->
        if Atomic.get t.stopping then () else loop ()
    | fd, _ ->
        if Atomic.get t.stopping then (Unix.close fd; ())
        else begin
          let conn =
            { fd; wlock = Mutex.create (); alive = true; pending = 0; closed = false }
          in
          let th = Thread.create (reader t conn) () in
          locked t.clock (fun () ->
              t.conns <- conn :: t.conns;
              t.readers <- th :: t.readers);
          loop ()
        end
  in
  loop ()

(* --- lifecycle ------------------------------------------------------- *)

let start config =
  if config.domains < 0 then invalid_arg "Server.start: negative domain count";
  if config.queue_capacity <= 0 then invalid_arg "Server.start: queue capacity";
  (* A mid-write client disconnect must be an EPIPE error, not a fatal
     signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (ADDR_UNIX config.socket_path);
     Unix.listen listen_fd 16
   with e ->
     Unix.close listen_fd;
     raise e);
  let t =
    {
      config;
      listen_fd;
      cache = Cache.create ~capacity:config.cache_capacity;
      stopping = Atomic.make false;
      qlock = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      clock = Mutex.create ();
      conns = [];
      readers = [];
      accept_thread = None;
      workers = [];
    }
  in
  t.workers <- List.init config.domains (fun _ -> Domain.spawn (worker t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

(* Async-signal-safe: one atomic store plus a connect that the accept
   thread consumes. *)
let signal_stop t =
  Atomic.set t.stopping true;
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX t.config.socket_path)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  t.accept_thread <- None;
  (* Wake every worker; they drain the queue and exit. *)
  locked t.qlock (fun () -> Condition.broadcast t.qcond);
  List.iter Domain.join t.workers;
  t.workers <- [];
  (* No workers (domains = 0) leaves accepted jobs behind: reject them
     explicitly rather than ghosting the clients. *)
  let leftovers =
    locked t.qlock (fun () ->
        let items = List.of_seq (Queue.to_seq t.queue) in
        Queue.clear t.queue;
        items)
  in
  List.iter
    (fun item ->
      Obs.Counter.incr c_rejected;
      reply item.item_conn
        (Protocol.Rejected { j_id = item.job.id; reason = "shutting down" });
      job_done item.item_conn)
    leftovers;
  Obs.Gauge.set g_queue_depth 0.0;
  (* Unblock the readers and collect them. *)
  let conns, readers =
    locked t.clock (fun () ->
        let cs, rs = (t.conns, t.readers) in
        t.conns <- [];
        t.readers <- [];
        (cs, rs))
  in
  List.iter
    (fun conn ->
      locked conn.wlock (fun () ->
          if not conn.closed then
            try Unix.shutdown conn.fd SHUTDOWN_ALL with Unix.Unix_error _ -> ()))
    conns;
  List.iter Thread.join readers;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ()

let stop t =
  signal_stop t;
  wait t

let latency_snapshot () = Obs.Histogram.snapshot_of h_request_ms
