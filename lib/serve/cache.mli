(** Fingerprint-keyed cross-job caches for the advising daemon.

    Four bounded LRUs behind one mutex: k-means {e clusterings} and
    {!Cloudia.Delta_cost.ranks} tables (keyed by cost-matrix fingerprint,
    reusable across tenants and solvers), previous {e incumbents} for warm
    starts (keyed by fingerprint + graph + objective), and a full-result
    {e memo} (keyed by the complete job identity; only deterministic,
    completed solves are admitted — the server decides admission).

    Every lookup bumps the [serve.cache_hits] / [serve.cache_misses]
    counters. Values are computed {e outside} the lock; concurrent misses
    on one key duplicate work but never produce a wrong value. *)

type t

type incumbent = { plan : int array; cost : float }

val create : capacity:int -> t
(** [capacity] bounds each of the four LRUs independently. *)

val fingerprint : Lat_matrix.t -> string
(** {!Lat_matrix.fingerprint_hex} — the key prefix for everything. *)

val graph_key : Graphs.Digraph.t -> string
(** Digest of the canonical edge-list rendering. *)

val clustering :
  t -> key:string -> (unit -> Cloudia.Clustering.t) -> Cloudia.Clustering.t
(** Key: fingerprint + cluster count. *)

val ranks :
  t -> key:string -> (unit -> Cloudia.Delta_cost.ranks) -> Cloudia.Delta_cost.ranks
(** Key: fingerprint alone (ranks depend only on the matrix). *)

val incumbent : t -> key:string -> incumbent option

val note_incumbent : t -> key:string -> int array -> float -> unit
(** Keep the cheapest plan seen for the key (the plan is copied). *)

val memo_find : t -> key:string -> incumbent option
val memo_add : t -> key:string -> int array -> float -> unit

val stats : t -> (string * int) list
(** Current entry counts per cache, for the stats reply. *)
