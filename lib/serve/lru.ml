(* Small LRU used by the serving cache. Recency is a monotone access
   stamp per entry; eviction scans for the minimum stamp, which is O(n)
   but the capacities here are tens of entries, so the scan is cheaper
   than maintaining an intrusive list would be to get right. Not
   thread-safe; Cache wraps every call in its mutex. *)

type 'v entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, 'v entry) Hashtbl.t;
  mutable clock : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create capacity; clock = 0 }

let length t = Hashtbl.length t.table
let capacity t = t.capacity

let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some e ->
      touch t e;
      Some e.value

let mem t k = Hashtbl.mem t.table k

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.table;
  match !victim with Some (k, _) -> Hashtbl.remove t.table k | None -> ()

let put t k v =
  (match Hashtbl.find_opt t.table k with
  | Some _ -> Hashtbl.remove t.table k
  | None -> if Hashtbl.length t.table >= t.capacity then evict_oldest t);
  t.clock <- t.clock + 1;
  Hashtbl.add t.table k { value = v; stamp = t.clock }
