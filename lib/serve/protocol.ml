(* Wire protocol of the advising daemon: length-prefixed JSON frames over
   a Unix-domain socket. Each frame is a 4-byte big-endian payload length
   followed by one JSON document (a request or a reply). JSON keeps the
   protocol debuggable with a socket dump; the 16 MiB frame cap bounds
   what a client can make the daemon buffer. *)

module Json = Obs.Json

let max_frame_bytes = 16 * 1024 * 1024

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

type solver = Cp | Anneal | Greedy | Descent

let solver_to_string = function
  | Cp -> "cp"
  | Anneal -> "anneal"
  | Greedy -> "greedy"
  | Descent -> "descent"

let solver_of_string = function
  | "cp" -> Cp
  | "anneal" -> Anneal
  | "greedy" -> Greedy
  | "descent" -> Descent
  | s -> fail "unknown solver %S" s

type job = {
  id : string;
  tenant : string;
  seed : int;
  solver : solver;
  objective : Cloudia.Cost.objective;
  budget : float;
  deadline : float option;
  max_moves : int option;
  clusters : int option;
  graph : Graphs.Digraph.t;
  costs : Lat_matrix.t;
}

type request = Advise of job | Ping | Stats_request

type reply =
  | Result of {
      r_id : string;
      r_plan : int array;
      r_cost : float;
      r_cached : bool;
      r_warm : bool;
      r_fingerprint : string;
      r_latency_ms : float;
    }
  | Rejected of { j_id : string; reason : string }
  | Failed of { j_id : string; message : string }
  | Pong
  | Stats of (string * int) list

(* --- JSON encoding --------------------------------------------------- *)

let objective_of_string = function
  | "longest-link" -> Cloudia.Cost.Longest_link
  | "longest-path" -> Cloudia.Cost.Longest_path
  | s -> fail "unknown objective %S" s

let json_of_graph g =
  let edges =
    Graphs.Digraph.edges g |> Array.to_list
    |> List.map (fun (u, v) -> Json.Arr [ Json.of_int u; Json.of_int v ])
  in
  Json.Obj [ ("n", Json.of_int (Graphs.Digraph.n g)); ("edges", Json.Arr edges) ]

let graph_of_json j =
  let n = Json.int_field "n" j in
  let edges =
    match Json.member "edges" j with
    | Some (Json.Arr es) ->
        List.map
          (function
            | Json.Arr [ Json.Num u; Json.Num v ] -> (int_of_string u, int_of_string v)
            | _ -> fail "graph edge must be a [src, dst] pair")
          es
    | _ -> fail "graph needs an \"edges\" array"
  in
  try Graphs.Digraph.create ~n edges
  with Invalid_argument m -> fail "bad graph: %s" m

(* NaN marks unsampled pairs in latency matrices; JSON has no NaN literal,
   so entries round-trip as null. *)
let json_of_matrix m =
  let n = Lat_matrix.dim m in
  let row i =
    Json.Arr (List.init n (fun j -> Json.of_float (Lat_matrix.get m i j)))
  in
  Json.Arr (List.init n row)

let matrix_of_json j =
  let entry = function
    | Json.Num s -> float_of_string s
    | Json.Null -> Float.nan
    | _ -> fail "matrix entry must be a number or null"
  in
  match j with
  | Json.Arr rows ->
      let n = List.length rows in
      let boxed =
        List.map
          (function
            | Json.Arr cells ->
                if List.length cells <> n then fail "matrix must be square";
                Array.of_list (List.map entry cells)
            | _ -> fail "matrix row must be an array")
          rows
      in
      (try Lat_matrix.of_arrays (Array.of_list boxed)
       with Invalid_argument m -> fail "bad matrix: %s" m)
  | _ -> fail "costs must be an array of rows"

let json_of_job job =
  let opt_num f = function None -> Json.Null | Some v -> f v in
  Json.Obj
    [
      ("id", Json.Str job.id);
      ("tenant", Json.Str job.tenant);
      ("seed", Json.of_int job.seed);
      ("solver", Json.Str (solver_to_string job.solver));
      ("objective", Json.Str (Cloudia.Cost.objective_to_string job.objective));
      ("budget", Json.of_float job.budget);
      ("deadline", opt_num Json.of_float job.deadline);
      ("max_moves", opt_num Json.of_int job.max_moves);
      ("clusters", opt_num Json.of_int job.clusters);
      ("graph", json_of_graph job.graph);
      ("costs", json_of_matrix job.costs);
    ]

let member_exn name j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S" name

let to_float = function
  | Json.Num s -> (try float_of_string s with Failure _ -> fail "bad number %S" s)
  | _ -> fail "expected a number"

let to_int = function
  | Json.Num s -> (try int_of_string s with Failure _ -> fail "bad integer %S" s)
  | _ -> fail "expected an integer"

let opt_field conv name j =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> Some (conv v)

let job_of_json j =
  try
    {
      id = Json.str_field "id" j;
      tenant = Json.str_field "tenant" j;
      seed = Json.int_field "seed" j;
      solver = solver_of_string (Json.str_field "solver" j);
      objective = objective_of_string (Json.str_field "objective" j);
      budget = Json.float_field "budget" j;
      deadline = opt_field to_float "deadline" j;
      max_moves = opt_field to_int "max_moves" j;
      clusters = opt_field to_int "clusters" j;
      graph = graph_of_json (member_exn "graph" j);
      costs = matrix_of_json (member_exn "costs" j);
    }
  with Json.Bad m -> fail "bad job: %s" m

let json_of_request = function
  | Advise job -> Json.Obj [ ("type", Json.Str "advise"); ("job", json_of_job job) ]
  | Ping -> Json.Obj [ ("type", Json.Str "ping") ]
  | Stats_request -> Json.Obj [ ("type", Json.Str "stats") ]

let request_of_json j =
  match Json.str_field "type" j with
  | "advise" -> Advise (job_of_json (member_exn "job" j))
  | "ping" -> Ping
  | "stats" -> Stats_request
  | t -> fail "unknown request type %S" t
  | exception Json.Bad m -> fail "bad request: %s" m

let json_of_reply = function
  | Result r ->
      Json.Obj
        [
          ("type", Json.Str "result");
          ("id", Json.Str r.r_id);
          ("plan", Json.Arr (Array.to_list (Array.map Json.of_int r.r_plan)));
          ("cost", Json.of_float r.r_cost);
          ("cached", Json.Bool r.r_cached);
          ("warm", Json.Bool r.r_warm);
          ("fingerprint", Json.Str r.r_fingerprint);
          ("latency_ms", Json.of_float r.r_latency_ms);
        ]
  | Rejected r ->
      Json.Obj
        [ ("type", Json.Str "rejected"); ("id", Json.Str r.j_id); ("reason", Json.Str r.reason) ]
  | Failed r ->
      Json.Obj
        [ ("type", Json.Str "failed"); ("id", Json.Str r.j_id); ("message", Json.Str r.message) ]
  | Pong -> Json.Obj [ ("type", Json.Str "pong") ]
  | Stats kvs ->
      Json.Obj
        [
          ("type", Json.Str "stats");
          ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.of_int v)) kvs));
        ]

let reply_of_json j =
  match Json.str_field "type" j with
  | "result" ->
      let plan =
        match member_exn "plan" j with
        | Json.Arr cells ->
            Array.of_list
              (List.map
                 (function Json.Num s -> int_of_string s | _ -> fail "plan entries must be ints")
                 cells)
        | _ -> fail "plan must be an array"
      in
      Result
        {
          r_id = Json.str_field "id" j;
          r_plan = plan;
          r_cost = Json.float_field "cost" j;
          r_cached = (match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false);
          r_warm = (match Json.member "warm" j with Some (Json.Bool b) -> b | _ -> false);
          r_fingerprint = Json.str_field "fingerprint" j;
          r_latency_ms = Json.float_field "latency_ms" j;
        }
  | "rejected" ->
      Rejected { j_id = Json.str_field "id" j; reason = Json.str_field "reason" j }
  | "failed" -> Failed { j_id = Json.str_field "id" j; message = Json.str_field "message" j }
  | "pong" -> Pong
  | "stats" -> (
      match member_exn "counters" j with
      | Json.Obj kvs ->
          Stats
            (List.map
               (fun (k, v) ->
                 match v with
                 | Json.Num s -> (k, int_of_string s)
                 | _ -> fail "stats values must be ints")
               kvs)
      | _ -> fail "counters must be an object")
  | t -> fail "unknown reply type %S" t
  | exception Json.Bad m -> fail "bad reply: %s" m

(* --- Framing --------------------------------------------------------- *)

let really_write fd buf off len =
  let off = ref off and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd buf !off !remaining in
    off := !off + n;
    remaining := !remaining - n
  done

(* Reads exactly [len] bytes. Returns false on EOF at offset 0 (a clean
   close between frames); raises [End_of_file] on EOF mid-read. *)
let really_read fd buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf (off + !got) (len - !got) in
    if n = 0 then
      if !got = 0 then eof := true else raise End_of_file
    else got := !got + n
  done;
  not !eof

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then fail "frame too large: %d bytes" len;
  let buf = Bytes.create (4 + len) in
  Bytes.set_uint8 buf 0 (len lsr 24 land 0xff);
  Bytes.set_uint8 buf 1 (len lsr 16 land 0xff);
  Bytes.set_uint8 buf 2 (len lsr 8 land 0xff);
  Bytes.set_uint8 buf 3 (len land 0xff);
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len)

let read_frame fd =
  let header = Bytes.create 4 in
  if not (really_read fd header 0 4) then None
  else begin
    let len =
      (Bytes.get_uint8 header 0 lsl 24)
      lor (Bytes.get_uint8 header 1 lsl 16)
      lor (Bytes.get_uint8 header 2 lsl 8)
      lor Bytes.get_uint8 header 3
    in
    if len > max_frame_bytes then fail "frame too large: %d bytes" len;
    let payload = Bytes.create len in
    if len > 0 && not (really_read fd payload 0 len) then raise End_of_file;
    Some (Bytes.unsafe_to_string payload)
  end

let send fd json = write_frame fd (Json.to_string json)

let send_request fd r = send fd (json_of_request r)
let send_reply fd r = send fd (json_of_reply r)

let recv_json fd =
  match read_frame fd with
  | None -> None
  | Some payload -> (
      match Json.parse_opt payload with
      | Some j -> Some j
      | None -> fail "frame is not valid JSON")

let recv_request fd = Option.map request_of_json (recv_json fd)
let recv_reply fd = Option.map reply_of_json (recv_json fd)
