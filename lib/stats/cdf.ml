type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  { sorted }

let n t = Array.length t.sorted

(* Number of elements <= x, by binary search for the rightmost such index. *)
let count_le t x =
  let a = t.sorted in
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let eval t x = float_of_int (count_le t x) /. float_of_int (n t)

let inverse t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Cdf.inverse: q out of [0,1]";
  let a = t.sorted in
  let target = q *. float_of_int (Array.length a) in
  let idx = int_of_float (Float.ceil target) - 1 in
  let idx = Stdlib.max 0 (Stdlib.min idx (Array.length a - 1)) in
  a.(idx)

let support t =
  let a = t.sorted in
  (a.(0), a.(Array.length a - 1))

let series ?(points = 20) t =
  let lo, hi = support t in
  if points <= 1 || hi <= lo then [ (lo, eval t lo) ]
  else
    List.init points (fun i ->
        let x = lo +. (float_of_int i /. float_of_int (points - 1) *. (hi -. lo)) in
        (x, eval t x))
