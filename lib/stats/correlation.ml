let check name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch");
  if Array.length a = 0 then invalid_arg (name ^ ": empty vectors")

let pearson a b =
  check "Correlation.pearson" a b;
  let n = float_of_int (Array.length a) in
  let ma = Array.fold_left ( +. ) 0.0 a /. n in
  let mb = Array.fold_left ( +. ) 0.0 b /. n in
  let sab = ref 0.0 and saa = ref 0.0 and sbb = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let da = a.(i) -. ma and db = b.(i) -. mb in
    sab := !sab +. (da *. db);
    saa := !saa +. (da *. da);
    sbb := !sbb +. (db *. db)
  done;
  if !saa = 0.0 || !sbb = 0.0 then nan else !sab /. sqrt (!saa *. !sbb)

(* Fractional ranks: ties receive the average of the ranks they span. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare xs.(i) xs.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do incr j done;
    let avg = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman a b =
  check "Correlation.spearman" a b;
  pearson (ranks a) (ranks b)

let kendall a b =
  check "Correlation.kendall" a b;
  let n = Array.length a in
  if n < 2 then invalid_arg "Correlation.kendall: need at least two points";
  let concordant = ref 0 and discordant = ref 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let sa = Float.compare a.(i) a.(j) and sb = Float.compare b.(i) b.(j) in
      if sa * sb > 0 then incr concordant
      else if sa * sb < 0 then incr discordant
    done
  done;
  let pairs = float_of_int (n * (n - 1) / 2) in
  float_of_int (!concordant - !discordant) /. pairs
