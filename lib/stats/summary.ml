let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Summary.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Summary.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min xs =
  check_nonempty "Summary.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "Summary.max" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs p =
  check_nonempty "Summary.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let median xs = percentile xs 50.0

type t = {
  n : int;
  mean : float;
  sd : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let of_array xs =
  check_nonempty "Summary.of_array" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  {
    n;
    mean = mean xs;
    sd = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile_sorted sorted 50.0;
    p90 = percentile_sorted sorted 90.0;
    p99 = percentile_sorted sorted 99.0;
  }

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f"
    t.n t.mean t.sd t.min t.p50 t.p90 t.p99 t.max
