type result = {
  centers : float array;
  boundaries : float array;
  cost : float;
}

let distinct_sorted xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let out = ref [] and count = ref [] in
  Array.iter
    (fun x ->
      match !out with
      | y :: _ when y = x ->
          (match !count with c :: rest -> count := (c + 1) :: rest | [] -> assert false)
      | _ ->
          out := x :: !out;
          count := 1 :: !count)
    sorted;
  (Array.of_list (List.rev !out), Array.of_list (List.rev !count))

let distinct_count xs = Array.length (fst (distinct_sorted xs))

let cluster ~k xs =
  if k <= 0 then invalid_arg "Kmeans1d.cluster: k must be positive";
  if Array.length xs = 0 then invalid_arg "Kmeans1d.cluster: empty input";
  (* NaN breaks the sort order and ±inf poisons the prefix sums; either
     would silently corrupt the DP tables, so reject up front. *)
  Array.iteri
    (fun i x ->
      if not (Float.is_finite x) then
        invalid_arg
          (Printf.sprintf "Kmeans1d.cluster: input %d is %s; values must be finite" i
             (if Float.is_nan x then "NaN" else "infinite")))
    xs;
  let values, weights = distinct_sorted xs in
  let n = Array.length values in
  let k = min k n in
  (* Weighted prefix sums for O(1) interval SSE queries. *)
  let pw = Array.make (n + 1) 0.0 in
  let ps = Array.make (n + 1) 0.0 in
  let pss = Array.make (n + 1) 0.0 in
  for i = 0 to n - 1 do
    let w = float_of_int weights.(i) in
    pw.(i + 1) <- pw.(i) +. w;
    ps.(i + 1) <- ps.(i) +. (w *. values.(i));
    pss.(i + 1) <- pss.(i) +. (w *. values.(i) *. values.(i))
  done;
  (* SSE of the weighted interval [i, j] (inclusive, 0-based). *)
  let sse i j =
    let w = pw.(j + 1) -. pw.(i) in
    let s = ps.(j + 1) -. ps.(i) in
    let ss = pss.(j + 1) -. pss.(i) in
    let e = ss -. (s *. s /. w) in
    if e < 0.0 then 0.0 else e
  in
  (* dp.(c).(j) = min SSE of clustering values[0..j] into c+1 clusters. *)
  let dp = Array.make_matrix k n infinity in
  let back = Array.make_matrix k n 0 in
  for j = 0 to n - 1 do
    dp.(0).(j) <- sse 0 j
  done;
  for c = 1 to k - 1 do
    for j = c to n - 1 do
      for i = c to j do
        let cand = dp.(c - 1).(i - 1) +. sse i j in
        if cand < dp.(c).(j) then begin
          dp.(c).(j) <- cand;
          back.(c).(j) <- i
        end
      done
    done
  done;
  (* Reconstruct boundaries. *)
  let starts = Array.make k 0 in
  let j = ref (n - 1) in
  for c = k - 1 downto 1 do
    let i = back.(c).(!j) in
    starts.(c) <- i;
    j := i - 1
  done;
  starts.(0) <- 0;
  let centers =
    Array.init k (fun c ->
        let lo = starts.(c) in
        let hi = if c = k - 1 then n - 1 else starts.(c + 1) - 1 in
        (ps.(hi + 1) -. ps.(lo)) /. (pw.(hi + 1) -. pw.(lo)))
  in
  let boundaries = Array.map (fun i -> values.(i)) starts in
  { centers; boundaries; cost = dp.(k - 1).(n - 1) }

let assign_index r x =
  (* Nearest center; centers are ascending so a linear scan is fine. *)
  let best = ref 0 and bestd = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Float.abs (x -. c) in
      if d < !bestd then begin
        bestd := d;
        best := i
      end)
    r.centers;
  !best

let assign r x = r.centers.(assign_index r x)
