(** Optimal 1-D k-means by dynamic programming.

    Sect. 6.3 of the paper clusters link costs with k-means before handing
    them to the solvers: "Since the link costs are in one dimension, such
    k-means can be optimally solved in O(kN) time using dynamic programming".
    We implement the classic O(k·N²) interval DP (N = number of distinct
    values, a few hundred here), which is exact and fast enough; the
    SMAWK-accelerated O(kN) variant is an optimization we do not need. *)

type result = {
  centers : float array;    (** cluster means, ascending *)
  boundaries : float array; (** ascending distinct input values at cluster starts *)
  cost : float;             (** total within-cluster sum of squared error *)
}

val cluster : k:int -> float array -> result
(** [cluster ~k xs] optimally partitions the multiset [xs] into at most [k]
    contiguous clusters (in value order), minimizing within-cluster squared
    error. If [xs] has fewer than [k] distinct values, each distinct value
    becomes its own cluster. Raises [Invalid_argument] if [k <= 0], [xs]
    is empty, or [xs] contains a non-finite value (NaN/±inf would silently
    corrupt the DP tables). *)

val assign : result -> float -> float
(** [assign r x] maps [x] to its cluster's mean (the rounding the paper
    applies to all link costs before solving). *)

val assign_index : result -> float -> int
(** Index of the cluster [x] falls into (nearest center). *)

val distinct_count : float array -> int
(** Number of distinct values, a convenience for choosing [k] sweeps. *)
