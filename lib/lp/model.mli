(** LP/MIP model builder.

    A thin, typed layer over {!Simplex}: declare variables (optionally
    integer, with bounds), add linear constraints, set a minimization
    objective, and solve the LP relaxation. The {!Mip} module adds
    branch-and-bound on top. *)

type t
(** A mutable model under construction. *)

type var = private int
(** Variable handle, valid only for the model that created it. *)

val create : unit -> t

val add_var : t -> ?integer:bool -> ?lb:float -> ?ub:float -> ?obj:float -> string -> var
(** [add_var m name] declares a variable. Defaults: continuous, [lb = 0.],
    [ub = infinity], objective coefficient [0.]. Requires [0. <= lb <= ub]
    (the simplex kernel works on non-negative variables; general lower
    bounds are not needed by the deployment encodings). *)

val add_constraint : t -> (var * float) list -> Simplex.relation -> float -> unit
(** [add_constraint m terms rel rhs] adds [Σ coeff·var rel rhs]. Terms with
    repeated variables are summed. *)

val set_obj : t -> var -> float -> unit
(** Overwrite a variable's objective coefficient. *)

val var_count : t -> int
val constraint_count : t -> int
val var_name : t -> var -> string
val is_integer : t -> var -> bool
val integer_vars : t -> var list

val solve_relaxation :
  ?should_stop:(unit -> bool) ->
  ?extra:(var * Simplex.relation * float) list ->
  t ->
  Simplex.status
(** Solve the LP relaxation (integrality dropped), with optional additional
    single-variable bound rows [var rel rhs] — the branching constraints
    used by {!Mip}. Finite upper bounds declared on variables are
    materialized as rows. [should_stop] is forwarded to the simplex kernel,
    which raises {!Simplex.Aborted} when it fires mid-solve. Equivalent to
    [fst (solve_relaxation_basis ...)]. *)

val solve_relaxation_basis :
  ?should_stop:(unit -> bool) ->
  ?extra:(var * Simplex.relation * float) list ->
  ?warm_basis:int array ->
  ?dense_ceiling:int ->
  t ->
  Simplex.status * int array option
(** Like {!solve_relaxation}, but also returns the optimal basis when the
    sparse kernel ran. Routing: if the estimated dense tableau fits in
    [dense_ceiling] (default {!Simplex.max_tableau_cells}) the dense
    {!Simplex} runs — bit-identical to the historical behaviour — and the
    basis is [None] ([warm_basis] is ignored: the dense kernel cannot use
    it). Otherwise the model is handed to {!Sparse} without ever being
    densified, and the returned stable-label basis can be passed back as
    [warm_basis] for a re-solve of this model extended with more [extra]
    rows (each new branch prepended to [extra], as {!Mip} does). Raises
    {!Simplex.Too_large} only past the sparse kernel's own row cap.
    [dense_ceiling] exists for tests to force the sparse path on small
    models; production callers leave it at the default. *)

val value : float array -> var -> float
(** Read a variable out of a solution vector returned by the solver. *)
