(** Two-phase primal simplex on the dense tableau.

    Solves  minimize cᵀx  subject to  Ax {≤,=,≥} b,  x ≥ 0.

    This is the LP kernel underneath the branch-and-bound MIP solver
    ({!Mip}). The implementation is the textbook two-phase tableau method:
    phase 1 minimizes the sum of artificial variables to find a basic
    feasible solution; phase 2 minimizes the true objective. Pricing is
    Dantzig (most negative reduced cost) with an automatic switch to Bland's
    rule after an iteration threshold, which guarantees termination in the
    presence of degeneracy. Dense storage is adequate for the problem sizes
    in this repository (thousands of rows). *)

type relation = Le | Ge | Eq

type status =
  | Optimal of float * float array  (** objective value and primal solution *)
  | Infeasible
  | Unbounded

exception Aborted
(** Raised out of {!solve} when [should_stop] returns [true] — or when the
    [max_iters] pivot budget is exhausted: the tableau is abandoned
    mid-solve with no usable status. Cooperative cancellation for callers
    racing the solver against a wall-clock budget; exhausting the pivot
    budget is the same contract (a budget hit, not an internal error), so
    MIP callers degrade to their incumbent instead of crashing. *)

exception Too_large
(** Raised by {!solve} before any allocation when the dense tableau would
    exceed {!max_tableau_cells} — past that size a pivot costs tens of
    Mflop and building the tableau alone takes gigabytes, so the solve
    could never finish within a realistic budget. *)

val max_tableau_cells : int
(** The refusal threshold, in tableau cells (rows × columns). *)

val solve :
  ?max_iters:int ->
  ?should_stop:(unit -> bool) ->
  objective:float array ->
  rows:(float array * relation * float) list ->
  unit ->
  status
(** [solve ~objective ~rows ()] minimizes [objective]·x over x ≥ 0 subject
    to [rows], each [(coeffs, rel, rhs)] with [coeffs] of the same length as
    [objective]. [max_iters] (default [50_000]) bounds total pivots across
    both phases; exceeding it raises {!Aborted} (a budget hit, handled like
    a cooperative stop). The Dantzig→Bland anti-cycling switch triggers
    after [max_iters / 2] pivots {e of the current phase} — per phase, not
    cumulative, so a long phase 1 cannot force phase 2 into pure Bland
    pricing. [should_stop] is polled every 32 pivots; when it returns
    [true], {!Aborted} is raised — without it a single large LP can overrun
    any caller-side time limit, which is only checked between solves.
    Raises [Invalid_argument] on dimension mismatches. *)
