(* Sparse revised simplex: the LP kernel for models past the dense-tableau
   ceiling.

   The dense two-phase kernel ({!Simplex}) materializes an m x ncols
   tableau and refuses models over [max_tableau_cells]. This kernel keeps
   the constraint matrix in CSC form and represents the basis inverse as a
   product of elementary (eta) matrices rebuilt by periodic
   refactorization, so memory is O(nonzeros + eta fill) and a pivot costs
   O(nonzeros touched) instead of O(m * ncols).

   Column labels are *stable across row appends*: structural variable j is
   column j, the slack/surplus of row r is [nvars + 2r], the artificial of
   row r is [nvars + 2r + 1]. A basis returned from a solve therefore
   remains meaningful for any model that extends the row list — which is
   exactly how branch and bound re-solves a child node from its parent's
   optimal basis: the appended branch row enters the basis on its own
   slack, leaving a block-triangular, dual-feasible start that a few dual
   simplex pivots repair. *)

type row = int array * float array * Simplex.relation * float

type result = {
  status : Simplex.status;
  basis : int array;  (* stable column label basic in each row *)
  iterations : int;
}

let eps = 1e-9
let piv_tol = 1e-8
let refactor_every = 64

let c_solves = Obs.Counter.make "lp.sparse.solves"
let c_iterations = Obs.Counter.make "lp.sparse.iterations"
let c_refactors = Obs.Counter.make "lp.sparse.refactorizations"
let c_warm = Obs.Counter.make "lp.sparse.warm_starts"
let c_dual_pivots = Obs.Counter.make "lp.sparse.dual_pivots"

(* ---- problem in computational standard form ---- *)

(* Columns: structural | per-row slack/surplus | per-row artificial, laid
   out in the interleaved stable labeling above. Artificial columns exist
   for every row (they only matter if basic); slack columns only for
   inequality rows. *)
type csc = {
  nvars : int;
  m : int;
  ncols : int;
  col_ptr : int array;
  row_ix : int array;
  value : float array;
  col_ok : bool array;  (* false for the phantom slack column of an Eq row *)
  rhs : float array;    (* >= 0 after row flips *)
  obj : float array;    (* phase-2 cost per column (0 beyond structurals) *)
}

let slack_label nvars r = nvars + (2 * r)
let art_label nvars r = nvars + (2 * r) + 1
let is_artificial nvars j = j >= nvars && (j - nvars) land 1 = 1

let build ~objective ~(rows : row array) =
  let nvars = Array.length objective in
  let m = Array.length rows in
  let rows =
    Array.map
      (fun ((ix, cf, rel, rhs) as row) ->
        if Array.length ix <> Array.length cf then
          invalid_arg "Sparse.solve: row index/coefficient length mismatch";
        Array.iter
          (fun v -> if v < 0 || v >= nvars then invalid_arg "Sparse.solve: variable out of range")
          ix;
        if rhs < 0.0 then
          ( ix,
            Array.map (fun c -> -.c) cf,
            (match rel with Simplex.Le -> Simplex.Ge | Simplex.Ge -> Simplex.Le | Simplex.Eq -> Simplex.Eq),
            -.rhs )
        else row)
      rows
  in
  let ncols = nvars + (2 * m) in
  let counts = Array.make ncols 0 in
  Array.iter
    (fun (ix, cf, _, _) ->
      Array.iteri (fun k v -> if Float.abs cf.(k) > 0.0 then counts.(v) <- counts.(v) + 1) ix)
    rows;
  for r = 0 to m - 1 do
    let _, _, rel, _ = rows.(r) in
    (match rel with Simplex.Eq -> () | _ -> counts.(slack_label nvars r) <- 1);
    counts.(art_label nvars r) <- 1
  done;
  let col_ptr = Array.make (ncols + 1) 0 in
  for j = 0 to ncols - 1 do
    col_ptr.(j + 1) <- col_ptr.(j) + counts.(j)
  done;
  let nnz = col_ptr.(ncols) in
  let row_ix = Array.make (max nnz 1) 0 in
  let value = Array.make (max nnz 1) 0.0 in
  let fill = Array.make ncols 0 in
  let put j r v =
    let p = col_ptr.(j) + fill.(j) in
    row_ix.(p) <- r;
    value.(p) <- v;
    fill.(j) <- fill.(j) + 1
  in
  let rhs = Array.make (max m 1) 0.0 in
  let col_ok = Array.make ncols true in
  Array.iteri
    (fun r (ix, cf, rel, b) ->
      rhs.(r) <- b;
      Array.iteri (fun k v -> if Float.abs cf.(k) > 0.0 then put v r cf.(k)) ix;
      (match rel with
      | Simplex.Le -> put (slack_label nvars r) r 1.0
      | Simplex.Ge -> put (slack_label nvars r) r (-1.0)
      | Simplex.Eq -> col_ok.(slack_label nvars r) <- false);
      put (art_label nvars r) r 1.0)
    rows;
  let obj = Array.make ncols 0.0 in
  Array.blit objective 0 obj 0 nvars;
  let cold = Array.make (max m 1) 0 in
  for r = 0 to m - 1 do
    let _, _, rel, _ = rows.(r) in
    cold.(r) <- (match rel with Simplex.Le -> slack_label nvars r | _ -> art_label nvars r)
  done;
  ({ nvars; m; ncols; col_ptr; row_ix; value; col_ok; rhs; obj }, cold)

(* ---- eta file: B^{-1} as a product of elementary column matrices ---- *)

type eta = { e_row : int; e_piv : float; e_ix : int array; e_mul : float array }

type state = {
  p : csc;
  basis : int array;        (* column label basic in each row *)
  in_basis : bool array;    (* per column label *)
  mutable etas : eta array;
  mutable n_etas : int;
  mutable fresh_etas : int; (* pivots since the last refactorization — the
                               rebuild trigger counts these, not the file
                               length (a rebuild itself writes up to one
                               eta per row) *)
  xb : float array;         (* value of the basic variable of each row *)
  work : float array;       (* scratch, length m *)
}

let push_eta s e =
  if s.n_etas = Array.length s.etas then begin
    let bigger = Array.make (max 16 (2 * s.n_etas)) e in
    Array.blit s.etas 0 bigger 0 s.n_etas;
    s.etas <- bigger
  end;
  s.etas.(s.n_etas) <- e;
  s.n_etas <- s.n_etas + 1

(* v <- B^{-1} v, applying etas oldest to newest. *)
let ftran s v =
  for k = 0 to s.n_etas - 1 do
    let e = s.etas.(k) in
    let t = v.(e.e_row) in
    if Float.abs t > 0.0 then begin
      v.(e.e_row) <- e.e_piv *. t;
      for i = 0 to Array.length e.e_ix - 1 do
        v.(e.e_ix.(i)) <- v.(e.e_ix.(i)) +. (e.e_mul.(i) *. t)
      done
    end
  done

(* v <- B^{-T} v, applying eta transposes newest to oldest. *)
let btran s v =
  for k = s.n_etas - 1 downto 0 do
    let e = s.etas.(k) in
    let acc = ref (e.e_piv *. v.(e.e_row)) in
    for i = 0 to Array.length e.e_ix - 1 do
      acc := !acc +. (e.e_mul.(i) *. v.(e.e_ix.(i)))
    done;
    v.(e.e_row) <- !acc
  done

(* Scatter column label j of A into dense [v] (caller zeroes it). *)
let scatter_col p j v =
  for k = p.col_ptr.(j) to p.col_ptr.(j + 1) - 1 do
    v.(p.row_ix.(k)) <- p.value.(k)
  done

let dot_col p j v =
  let acc = ref 0.0 in
  for k = p.col_ptr.(j) to p.col_ptr.(j + 1) - 1 do
    acc := !acc +. (p.value.(k) *. v.(p.row_ix.(k)))
  done;
  !acc

(* Build the eta that pivots direction [w] (= B^{-1} A_q) at [row]. *)
let eta_of_direction s w row =
  let piv = w.(row) in
  let count = ref 0 in
  for i = 0 to s.p.m - 1 do
    if i <> row && Float.abs w.(i) > 0.0 then incr count
  done;
  let e_ix = Array.make !count 0 and e_mul = Array.make !count 0.0 in
  let k = ref 0 in
  for i = 0 to s.p.m - 1 do
    if i <> row && Float.abs w.(i) > 0.0 then begin
      e_ix.(!k) <- i;
      e_mul.(!k) <- -.(w.(i) /. piv);
      incr k
    end
  done;
  { e_row = row; e_piv = 1.0 /. piv; e_ix; e_mul }

exception Singular

(* Rebuild the eta file from scratch for the current basis columns.
   Processing order puts unit columns first (free: basic slacks and
   artificials pivot on their own row with a trivial eta), then the
   structural columns greedily by largest remaining pivot. Dependent or
   numerically dead columns are replaced by the artificial of a leftover
   row; if even that cannot complete the basis, {!Singular} escapes and
   the caller falls back to a cold start. *)
let refactorize s =
  Obs.Counter.incr c_refactors;
  s.n_etas <- 0;
  let m = s.p.m in
  let pivoted = Array.make m false in
  let cols = Array.copy s.basis in
  Array.fill s.in_basis 0 s.p.ncols false;
  let deferred = ref [] in
  (* Pass 1: singleton columns landing on an unpivoted row. A unit value
     (every Le slack and artificial) needs no eta at all — its factor is
     the identity — which keeps the rebuilt file near-empty on models
     where most rows carry a basic slack. *)
  Array.iteri
    (fun slot c ->
      let lo = s.p.col_ptr.(c) and hi = s.p.col_ptr.(c + 1) in
      if hi - lo = 1 && not pivoted.(s.p.row_ix.(lo)) && Float.abs s.p.value.(lo) > piv_tol
      then begin
        let r = s.p.row_ix.(lo) in
        pivoted.(r) <- true;
        s.basis.(r) <- c;
        s.in_basis.(c) <- true;
        if s.p.value.(lo) <> 1.0 then
          push_eta s { e_row = r; e_piv = 1.0 /. s.p.value.(lo); e_ix = [||]; e_mul = [||] }
      end
      else deferred := (slot, c) :: !deferred)
    cols;
  let place c =
    if s.in_basis.(c) then false
    else begin
      Array.fill s.work 0 m 0.0;
      scatter_col s.p c s.work;
      ftran s s.work;
      let best = ref (-1) and bestv = ref piv_tol in
      for i = 0 to m - 1 do
        if (not pivoted.(i)) && Float.abs s.work.(i) > !bestv then begin
          best := i;
          bestv := Float.abs s.work.(i)
        end
      done;
      match !best with
      | -1 -> false
      | r ->
          push_eta s (eta_of_direction s s.work r);
          pivoted.(r) <- true;
          s.basis.(r) <- c;
          s.in_basis.(c) <- true;
          true
    end
  in
  (* Pass 2: remaining columns (deferred in reverse to keep the original
     slot order — any deterministic order works). *)
  List.iter (fun (_, c) -> ignore (place c : bool)) (List.rev !deferred);
  (* Pass 3: complete with artificials of leftover rows. *)
  for r = 0 to m - 1 do
    if not pivoted.(r) then
      if not (place (art_label s.p.nvars r)) then raise Singular
  done;
  s.fresh_etas <- 0

let recompute_xb s =
  Array.blit s.p.rhs 0 s.xb 0 s.p.m;
  ftran s s.xb

(* ---- pricing and pivoting ---- *)

(* Entering-column choice over non-basic, non-artificial, existing columns
   given reduced costs y: Dantzig before [bland_after] in-phase pivots,
   Bland (smallest label with negative reduced cost) after. [banned] masks
   columns whose pivot was numerically dead this iteration. *)
let choose_entering s ~cost ~y ~bland ~banned =
  let best = ref (-1) and bestv = ref (-.eps) in
  (try
     for j = 0 to s.p.ncols - 1 do
       if
         s.p.col_ok.(j)
         && (not s.in_basis.(j))
         && (not (is_artificial s.p.nvars j))
         && not banned.(j)
       then begin
         let d = cost j -. dot_col s.p j y in
         if d < !bestv then begin
           bestv := d;
           best := j;
           if bland then raise Exit
         end
       end
     done
   with Exit -> ());
  !best

(* Ratio test. Rows whose basic variable is an artificial *at zero level*
   leave at ratio 0 whenever the direction touches them (either sign): a
   zero artificial must never grow, and kicking it out is free. An
   artificial still carrying positive value (mid phase 1) is an ordinary
   basic variable — forcing it out at "ratio 0" would take a full-length
   step and drive other basic variables negative. Ties break on the
   smallest basis label, which together with smallest-label entering gives
   Bland's anti-cycling guarantee once the phase switches to Bland
   pricing. *)
let choose_leaving s w =
  let best = ref (-1) and best_ratio = ref infinity in
  for i = 0 to s.p.m - 1 do
    let wi = w.(i) in
    let candidate ratio =
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps && (!best = -1 || s.basis.(i) < s.basis.(!best)))
      then begin
        best_ratio := ratio;
        best := i
      end
    in
    if is_artificial s.p.nvars s.basis.(i) && s.xb.(i) <= eps then begin
      if Float.abs wi > eps then candidate 0.0
    end
    else if wi > eps then candidate (s.xb.(i) /. wi)
  done;
  !best

type phase_result = Phase_optimal | Phase_unbounded

exception Fallback_cold

let apply_pivot s w ~row ~col =
  push_eta s (eta_of_direction s w row);
  s.fresh_etas <- s.fresh_etas + 1;
  s.in_basis.(s.basis.(row)) <- false;
  s.in_basis.(col) <- true;
  s.basis.(row) <- col;
  if s.fresh_etas >= refactor_every then refactorize s;
  recompute_xb s

let run_primal s ~cost ~max_iters ~iter_count ~should_stop =
  let banned = Array.make s.p.ncols false in
  let entry = !iter_count in
  let result = ref Phase_optimal in
  let continue = ref true in
  let cb = Array.make (max s.p.m 1) 0.0 in
  while !continue do
    if !iter_count > max_iters then raise Simplex.Aborted;
    if should_stop () then raise Simplex.Aborted;
    (* y = B^{-T} c_B, then price all non-basic columns. The anti-cycling
       switch counts pivots of this phase only. *)
    for i = 0 to s.p.m - 1 do
      cb.(i) <- cost s.basis.(i)
    done;
    btran s cb;
    let bland = !iter_count - entry >= max_iters / 2 in
    let col = choose_entering s ~cost ~y:cb ~bland ~banned in
    if col = -1 then continue := false
    else begin
      Array.fill s.work 0 s.p.m 0.0;
      scatter_col s.p col s.work;
      ftran s s.work;
      let row = choose_leaving s s.work in
      if row = -1 then begin
        result := Phase_unbounded;
        continue := false
      end
      else if Float.abs s.work.(row) < piv_tol then begin
        (* Numerically dead pivot: rebuild the factorization once; if the
           pivot is still dead, skip this column for the current basis. *)
        refactorize s;
        recompute_xb s;
        banned.(col) <- true
      end
      else begin
        apply_pivot s s.work ~row ~col;
        Array.fill banned 0 s.p.ncols false;
        incr iter_count
      end
    end
  done;
  !result

(* Dual simplex repair from a dual-feasible (parent-optimal) basis: pick
   the most negative basic value, price the pivot row, enter the column
   minimizing the dual ratio (smallest label on ties — the degenerate
   ratio-0 ties of the deployment encodings cycle otherwise). Dual
   unboundedness (no candidate) proves the primal infeasible — the usual
   verdict for a branch that cut off the parent's subtree. A repair that
   has not converged within [dual_budget] pivots is abandoned for a cold
   start: one appended branch row should take a handful of pivots, and
   grinding past that is slower than re-solving from scratch. *)
let dual_budget = 50

let run_dual s ~max_iters ~iter_count ~should_stop =
  let feasible = ref false and infeasible = ref false in
  let rho = Array.make (max s.p.m 1) 0.0 in
  let cb = Array.make (max s.p.m 1) 0.0 in
  let pivots = ref 0 in
  while (not !feasible) && not !infeasible do
    if !iter_count > max_iters then raise Simplex.Aborted;
    if should_stop () then raise Simplex.Aborted;
    if !pivots >= dual_budget then raise Fallback_cold;
    let row = ref (-1) and worst = ref (-1e-7) in
    for i = 0 to s.p.m - 1 do
      if s.xb.(i) < !worst then begin
        worst := s.xb.(i);
        row := i
      end
    done;
    match !row with
    | -1 -> feasible := true
    | r ->
        Array.fill rho 0 s.p.m 0.0;
        rho.(r) <- 1.0;
        btran s rho;
        for i = 0 to s.p.m - 1 do
          cb.(i) <- s.p.obj.(s.basis.(i))
        done;
        btran s cb;
        let best = ref (-1) and best_ratio = ref infinity in
        for j = 0 to s.p.ncols - 1 do
          if s.p.col_ok.(j) && (not s.in_basis.(j)) && not (is_artificial s.p.nvars j) then begin
            let alpha = dot_col s.p j rho in
            if alpha < -.eps then begin
              let d = Float.max 0.0 (s.p.obj.(j) -. dot_col s.p j cb) in
              let ratio = d /. -.alpha in
              if ratio < !best_ratio -. eps then begin
                best_ratio := ratio;
                best := j
              end
            end
          end
        done;
        (match !best with
        | -1 -> infeasible := true
        | col ->
            Array.fill s.work 0 s.p.m 0.0;
            scatter_col s.p col s.work;
            ftran s s.work;
            if Float.abs s.work.(r) < piv_tol then raise Fallback_cold;
            apply_pivot s s.work ~row:r ~col;
            Obs.Counter.incr c_dual_pivots;
            incr pivots;
            incr iter_count)
  done;
  not !infeasible

(* ---- driver ---- *)

let basic_artificial_mass s =
  let acc = ref 0.0 in
  for i = 0 to s.p.m - 1 do
    if is_artificial s.p.nvars s.basis.(i) then acc := !acc +. Float.max 0.0 s.xb.(i)
  done;
  !acc

let extract s ~objective ~iterations =
  let x = Array.make s.p.nvars 0.0 in
  for i = 0 to s.p.m - 1 do
    if s.basis.(i) < s.p.nvars then x.(s.basis.(i)) <- s.xb.(i)
  done;
  let value = ref 0.0 in
  Array.iteri (fun j c -> value := !value +. (c *. x.(j))) objective;
  { status = Simplex.Optimal (!value, x); basis = Array.copy s.basis; iterations }

let fresh_state p basis_init =
  let m = p.m in
  let in_basis = Array.make p.ncols false in
  Array.iter (fun c -> in_basis.(c) <- true) basis_init;
  {
    p;
    basis = Array.copy basis_init;
    in_basis;
    etas = [||];
    n_etas = 0;
    fresh_etas = 0;
    xb = Array.make (max m 1) 0.0;
    work = Array.make (max m 1) 0.0;
  }

let solve_cold p cold ~max_iters ~should_stop ~objective ~iter_count =
  let s = fresh_state p cold in
  recompute_xb s;
  (* Phase 1: minimize the mass of the basic artificials (cold bases put an
     artificial in every Ge/Eq row). *)
  let has_art = Array.exists (fun c -> is_artificial p.nvars c) s.basis in
  let infeasible = ref false in
  if has_art then begin
    let cost j = if is_artificial p.nvars j then 1.0 else 0.0 in
    (match run_primal s ~cost ~max_iters ~iter_count ~should_stop with
    | Phase_unbounded -> failwith "Sparse.solve: phase 1 unbounded (internal error)"
    | Phase_optimal -> ());
    if basic_artificial_mass s > 1e-6 then infeasible := true
  end;
  if !infeasible then { status = Simplex.Infeasible; basis = Array.copy s.basis; iterations = !iter_count }
  else begin
    let cost j = p.obj.(j) in
    match run_primal s ~cost ~max_iters ~iter_count ~should_stop with
    | Phase_unbounded ->
        { status = Simplex.Unbounded; basis = Array.copy s.basis; iterations = !iter_count }
    | Phase_optimal -> extract s ~objective ~iterations:!iter_count
  end

let solve_warm p cold warm ~max_iters ~should_stop ~objective ~iter_count =
  let m = p.m in
  if Array.length warm > m then invalid_arg "Sparse.solve: warm basis longer than row count";
  Obs.Counter.incr c_warm;
  (* Extend a parent basis to the appended rows with each row's own
     slack/surplus column — basic surplus of a violated Ge branch sits at a
     negative value, which is precisely what the dual pivots repair (the
     artificial would instead settle at a positive level and force a cold
     fallback). Labels out of range or duplicated become artificials, and
     refactorization substitutes artificials for anything dependent. *)
  let seen = Array.make p.ncols false in
  let init = Array.make (max m 1) 0 in
  for r = 0 to m - 1 do
    let c =
      if r < Array.length warm then warm.(r)
      else
        let sl = slack_label p.nvars r in
        if p.col_ok.(sl) then sl else cold.(r)
    in
    let c = if c < 0 || c >= p.ncols || (not p.col_ok.(c)) || seen.(c) then art_label p.nvars r else c in
    seen.(c) <- true;
    init.(r) <- c
  done;
  let s = fresh_state p init in
  refactorize s;
  recompute_xb s;
  if run_dual s ~max_iters ~iter_count ~should_stop then begin
    (* Primal-feasible again; finish with primal phase 2 (usually zero
       pivots — the dual run preserves dual feasibility). *)
    let cost j = p.obj.(j) in
    match run_primal s ~cost ~max_iters ~iter_count ~should_stop with
    | Phase_unbounded ->
        { status = Simplex.Unbounded; basis = Array.copy s.basis; iterations = !iter_count }
    | Phase_optimal ->
        if basic_artificial_mass s > 1e-6 then
          (* A substituted artificial settled at a nonzero level: the warm
             path cannot certify anything — decide from a cold start. *)
          raise Fallback_cold
        else extract s ~objective ~iterations:!iter_count
  end
  else { status = Simplex.Infeasible; basis = Array.copy s.basis; iterations = !iter_count }

let solve ?(max_iters = 50_000) ?(should_stop = fun () -> false) ?warm_basis ~objective
    ~(rows : row list) () =
  Obs.Counter.incr c_solves;
  let p, cold = build ~objective ~rows:(Array.of_list rows) in
  let iter_count = ref 0 in
  let result =
    match warm_basis with
    | None -> solve_cold p cold ~max_iters ~should_stop ~objective ~iter_count
    | Some warm -> (
        try solve_warm p cold warm ~max_iters ~should_stop ~objective ~iter_count
        with Fallback_cold | Singular ->
          solve_cold p cold ~max_iters ~should_stop ~objective ~iter_count)
  in
  Obs.Counter.add c_iterations !iter_count;
  result
