type relation = Le | Ge | Eq

type status =
  | Optimal of float * float array
  | Infeasible
  | Unbounded

let eps = 1e-9

(* The tableau holds m constraint rows over [ncols] structural+slack+
   artificial columns plus the rhs in the last position. [basis.(r)] is the
   column basic in row r. The objective rows (phase 1 and phase 2 reduced
   costs) are maintained separately and updated by the same pivots. *)
type tableau = {
  m : int;
  ncols : int;
  rows : float array array; (* m rows, each ncols + 1 wide (rhs last) *)
  basis : int array;
  obj : float array;        (* current phase objective reduced-cost row, ncols + 1 wide *)
}

(* [@cloudia.hot]: a pivot is the O(m·ncols) inner loop of every LP/MIP
   solve; pass A003 keeps its row sweeps allocation-free. *)
let[@cloudia.hot] pivot t ~row ~col =
  let pr = t.rows.(row) in
  let pivval = pr.(col) in
  (* Normalize the pivot row. *)
  for j = 0 to t.ncols do
    pr.(j) <- pr.(j) /. pivval
  done;
  (* Eliminate the pivot column from every other row and the objective. *)
  let eliminate target =
    let factor = target.(col) in
    if Float.abs factor > 0.0 then
      for j = 0 to t.ncols do
        target.(j) <- target.(j) -. (factor *. pr.(j))
      done
  in
  for r = 0 to t.m - 1 do
    if r <> row then eliminate t.rows.(r)
  done;
  eliminate t.obj;
  t.basis.(row) <- col

(* Entering-column choice: Dantzig until [bland_after] pivots, then Bland. *)
let choose_entering t ~allowed ~iter ~bland_after =
  if iter < bland_after then begin
    let best = ref (-1) and bestv = ref (-.eps) in
    for j = 0 to t.ncols - 1 do
      if allowed j && t.obj.(j) < !bestv then begin
        bestv := t.obj.(j);
        best := j
      end
    done;
    !best
  end
  else begin
    (* Bland: smallest index with negative reduced cost. *)
    let found = ref (-1) in
    let j = ref 0 in
    while !found = -1 && !j < t.ncols do
      if allowed !j && t.obj.(!j) < -.eps then found := !j;
      incr j
    done;
    !found
  end

(* Ratio test; Bland tie-break on basis index for anti-cycling. *)
let choose_leaving t ~col =
  let best = ref (-1) and best_ratio = ref infinity in
  for r = 0 to t.m - 1 do
    let a = t.rows.(r).(col) in
    if a > eps then begin
      let ratio = t.rows.(r).(t.ncols) /. a in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps && (!best = -1 || t.basis.(r) < t.basis.(!best)))
      then begin
        best_ratio := ratio;
        best := r
      end
    end
  done;
  !best

type phase_result = Phase_optimal | Phase_unbounded | Phase_iter_limit

(* Pivot totals are flushed once per phase, not per pivot: an atomic add in
   the pivot loop would contend across portfolio domains and show up in
   bench numbers. *)
let c_pivots = Obs.Counter.make "lp.simplex.pivots"
let c_solves = Obs.Counter.make "lp.simplex.solves"
let h_pivot = Obs.Histogram.make "lp.pivot_ns"

exception Aborted

exception Too_large

(* Dense-tableau ceiling (cells = rows × columns). 2e7 cells is 160 MB and
   ~20 Mflop per pivot — past that the dense kernel cannot finish within
   any realistic budget, and merely allocating the tableau stalls the
   process, so refuse up front instead. *)
let max_tableau_cells = 20_000_000

let[@cloudia.hot] run_phase t ~allowed ~max_iters ~iter_count ~should_stop =
  let entry = !iter_count in
  Fun.protect ~finally:(fun () -> Obs.Counter.add c_pivots (!iter_count - entry)) @@ fun () ->
  let result = ref Phase_optimal in
  let continue = ref true in
  (* Per-pivot latency, recorded only under tracing: a pivot is O(m·ncols)
     so two clock reads are noise there, but the untraced path stays
     clock-free anyway. *)
  let timed = Obs.Sink.enabled () in
  while !continue do
    if !iter_count > max_iters then begin
      result := Phase_iter_limit;
      continue := false
    end
    else begin
    (* Poll for cooperative cancellation every 32 pivots: one pivot is
       O(m·ncols), so large models would otherwise overrun any wall-clock
       budget by the length of a whole LP solve. *)
    if !iter_count land 31 = 0 && should_stop () then raise Aborted;
    (* The Dantzig→Bland anti-cycling switch counts pivots of THIS phase
       only ([iter_count] is cumulative across both phases): a long phase 1
       must not force phase 2 into pure Bland pricing from its first
       pivot. *)
    let col =
      choose_entering t ~allowed ~iter:(!iter_count - entry) ~bland_after:(max_iters / 2)
    in
    if col = -1 then continue := false
    else begin
      let row = choose_leaving t ~col in
      if row = -1 then begin
        result := Phase_unbounded;
        continue := false
      end
      else begin
        let t0 = if timed then Obs.Clock.now_ns () else 0L in
        pivot t ~row ~col;
        if timed then Obs.Histogram.record_ns h_pivot (Int64.sub (Obs.Clock.now_ns ()) t0);
        incr iter_count
      end
    end
    end
  done;
  !result

let solve ?(max_iters = 50_000) ?(should_stop = fun () -> false) ~objective ~rows () =
  Obs.Counter.incr c_solves;
  let nvars = Array.length objective in
  List.iter
    (fun (coeffs, _, _) ->
      if Array.length coeffs <> nvars then
        invalid_arg "Simplex.solve: row length mismatch")
    rows;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  (* Flip rows to make rhs non-negative. *)
  let rows =
    Array.map
      (fun (coeffs, rel, rhs) ->
        if rhs < 0.0 then
          ( Array.map (fun c -> -.c) coeffs,
            (match rel with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (coeffs, rel, rhs))
      rows
  in
  (* Column layout: structural | slack/surplus (one per inequality) |
     artificial (one per Ge/Eq row). *)
  let n_slack = Array.fold_left (fun acc (_, rel, _) -> match rel with Eq -> acc | _ -> acc + 1) 0 rows in
  let n_art =
    Array.fold_left (fun acc (_, rel, _) -> match rel with Le -> acc | _ -> acc + 1) 0 rows
  in
  let ncols = nvars + n_slack + n_art in
  if m * (ncols + 1) > max_tableau_cells then raise Too_large;
  let art_start = nvars + n_slack in
  let tab_rows = Array.init m (fun _ -> Array.make (ncols + 1) 0.0) in
  let basis = Array.make m (-1) in
  let slack_idx = ref nvars and art_idx = ref art_start in
  Array.iteri
    (fun r (coeffs, rel, rhs) ->
      let row = tab_rows.(r) in
      Array.blit coeffs 0 row 0 nvars;
      row.(ncols) <- rhs;
      (match rel with
      | Le ->
          row.(!slack_idx) <- 1.0;
          basis.(r) <- !slack_idx;
          incr slack_idx
      | Ge ->
          row.(!slack_idx) <- -1.0;
          incr slack_idx;
          row.(!art_idx) <- 1.0;
          basis.(r) <- !art_idx;
          incr art_idx
      | Eq ->
          row.(!art_idx) <- 1.0;
          basis.(r) <- !art_idx;
          incr art_idx))
    rows;
  let t = { m; ncols; rows = tab_rows; basis; obj = Array.make (ncols + 1) 0.0 } in
  let iter_count = ref 0 in
  (* ---- Phase 1: minimize the sum of artificials. ---- *)
  if n_art > 0 then begin
    for j = art_start to ncols - 1 do
      t.obj.(j) <- 1.0
    done;
    (* Price out the basic artificials so reduced costs start consistent. *)
    for r = 0 to m - 1 do
      if basis.(r) >= art_start then
        for j = 0 to ncols do
          t.obj.(j) <- t.obj.(j) -. t.rows.(r).(j)
        done
    done;
    (match run_phase t ~allowed:(fun _ -> true) ~max_iters ~iter_count ~should_stop with
    | Phase_unbounded -> failwith "Simplex.solve: phase 1 unbounded (internal error)"
    (* Exhausting the pivot budget is a budget hit, not a crash: abort like
       a cooperative stop so MIP callers keep their incumbent. *)
    | Phase_iter_limit -> raise Aborted
    | Phase_optimal -> ());
    (* Phase-1 objective value is -obj rhs (we maintain obj as reduced costs
       with value in the rhs cell, negated). *)
    let phase1_value = -.t.obj.(ncols) in
    if phase1_value > 1e-6 then raise Exit
  end;
  (* Drive remaining artificial variables out of the basis. *)
  for r = 0 to m - 1 do
    if t.basis.(r) >= art_start then begin
      let col = ref (-1) in
      let j = ref 0 in
      while !col = -1 && !j < art_start do
        if Float.abs t.rows.(r).(!j) > eps then col := !j;
        incr j
      done;
      match !col with
      | -1 ->
          (* Redundant row: zero it out so it never constrains pivots. *)
          Array.fill t.rows.(r) 0 (ncols + 1) 0.0;
          t.basis.(r) <- -1
      | c -> pivot t ~row:r ~col:c
    end
  done;
  (* ---- Phase 2: true objective, artificial columns forbidden. ---- *)
  Array.fill t.obj 0 (ncols + 1) 0.0;
  Array.blit objective 0 t.obj 0 nvars;
  for r = 0 to m - 1 do
    let b = t.basis.(r) in
    if b >= 0 && Float.abs t.obj.(b) > 0.0 then begin
      let factor = t.obj.(b) in
      for j = 0 to ncols do
        t.obj.(j) <- t.obj.(j) -. (factor *. t.rows.(r).(j))
      done
    end
  done;
  let allowed j = j < art_start in
  match run_phase t ~allowed ~max_iters ~iter_count ~should_stop with
  | Phase_unbounded -> Unbounded
  | Phase_iter_limit -> raise Aborted
  | Phase_optimal ->
      let x = Array.make nvars 0.0 in
      for r = 0 to m - 1 do
        let b = t.basis.(r) in
        if b >= 0 && b < nvars then x.(b) <- t.rows.(r).(ncols)
      done;
      let value = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i c -> c *. x.(i)) objective) in
      Optimal (value, x)

let solve ?max_iters ?should_stop ~objective ~rows () =
  try solve ?max_iters ?should_stop ~objective ~rows () with Exit -> Infeasible
