type outcome =
  | Mip_optimal of float * float array
  | Mip_feasible of float * float array
  | Mip_infeasible
  | Mip_unbounded

type stats = {
  nodes_explored : int;
  nodes_pruned : int;
  elapsed_seconds : float;
  proven_optimal : bool;
}

let c_nodes = Obs.Counter.make "lp.mip.nodes_explored"
let c_pruned = Obs.Counter.make "lp.mip.nodes_pruned"
let c_incumbents = Obs.Counter.make "lp.mip.incumbents"

let int_tol = 1e-6

(* Minimal binary min-heap keyed on the LP bound. *)
module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create dummy = { data = Array.make 16 (0.0, dummy); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h key v =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (key, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let fractionality x =
  let f = x -. Float.round x in
  Float.abs f

type strategy = Best_first | Depth_first

let solve ?time_limit ?node_limit ?should_stop ?(strategy = Depth_first) ?on_incumbent
    ?initial_incumbent ?dense_ceiling model =
  Obs.Span.with_ "lp.mip.solve" @@ fun () ->
  let start = Obs.Clock.now_s () in
  let elapsed () = Obs.Clock.now_s () -. start in
  let over_time () =
    (match should_stop with Some f -> f () | None -> false)
    || match time_limit with Some l -> elapsed () > l | None -> false
  in
  let int_vars = Array.of_list (Model.integer_vars model) in
  let incumbent = ref (match initial_incumbent with
    | Some (obj, sol) -> Some (obj, Array.copy sol)
    | None -> None)
  in
  let nodes = ref 0 in
  let pruned = ref 0 in
  let hit_limit = ref false in
  (* Open nodes live either in a best-first heap or a depth-first stack. A
     node is the list of branching rows accumulated from the root plus its
     parent's LP bound and — when the sparse kernel solved the parent — the
     parent's optimal basis, so the child LP restarts from it (dual simplex
     repair) instead of from scratch. Depth-first dives toward
     integer-feasible leaves — essential when the LP relaxation is weak
     (bounds barely discriminate, so best-first degenerates into
     breadth-first and rarely finds incumbents); best-first minimizes nodes
     when bounds are strong. *)
  let heap = Heap.create ([], None) in
  let stack = ref [] in
  let push bound branches basis =
    match strategy with
    | Best_first -> Heap.push heap bound (branches, basis)
    | Depth_first -> stack := (bound, (branches, basis)) :: !stack
  in
  let pop () =
    match strategy with
    | Best_first -> Heap.pop heap
    | Depth_first -> (
        match !stack with
        | [] -> None
        | top :: rest ->
            stack := rest;
            Some top)
  in
  (* An LP abandoned mid-solve by [over_time] carries no bound, so treat it
     exactly like a hit limit: stop branching, keep the incumbent. Models
     the dense kernel refuses outright ([Too_large]) get the same handling:
     the caller-provided seed is the best this solver can do. *)
  let root_status, root_basis =
    try Model.solve_relaxation_basis ~should_stop:over_time ?dense_ceiling model
    with Simplex.Aborted | Simplex.Too_large ->
      hit_limit := true;
      (Simplex.Infeasible, None)
  in
  (match root_status with
  | Simplex.Infeasible | Simplex.Unbounded -> ()
  | Simplex.Optimal (bound, _) -> push bound [] root_basis);
  let unbounded = root_status = Simplex.Unbounded in
  let best_obj () = match !incumbent with Some (o, _) -> o | None -> infinity in
  let record_incumbent obj sol =
    if obj < best_obj () -. 1e-9 then begin
      incumbent := Some (obj, Array.copy sol);
      Obs.Counter.incr c_incumbents;
      match on_incumbent with
      | Some f -> f ~obj ~solution:sol ~elapsed:(elapsed ())
      | None -> ()
    end
  in
  let continue = ref (not unbounded) in
  while !continue do
    if over_time () then begin
      hit_limit := true;
      continue := false
    end
    else
      match node_limit with
      | Some l when !nodes >= l ->
          hit_limit := true;
          continue := false
      | _ -> (
          match pop () with
          | None -> continue := false
          | Some (bound, (branches, parent_basis)) ->
              if bound >= best_obj () -. 1e-9 then begin
                (* Bound-dominated. Under best-first ordering every
                   remaining node is dominated too; under depth-first only
                   this node can be skipped. *)
                incr pruned;
                if strategy = Best_first then continue := false
              end
              else begin
                incr nodes;
                match
                  try
                    Model.solve_relaxation_basis ~should_stop:over_time ~extra:branches
                      ?warm_basis:parent_basis ?dense_ceiling model
                  with Simplex.Aborted | Simplex.Too_large ->
                    hit_limit := true;
                    continue := false;
                    (Simplex.Infeasible, None)
                with
                | Simplex.Infeasible, _ -> ()
                | Simplex.Unbounded, _ ->
                    (* Cannot happen if the root was bounded, but guard. *)
                    ()
                | Simplex.Optimal (obj, sol), node_basis ->
                    if obj < best_obj () -. 1e-9 then begin
                      (* Most fractional integer variable. *)
                      let branch_var = ref None and worst = ref int_tol in
                      Array.iter
                        (fun v ->
                          let f = fractionality (Model.value sol v) in
                          if f > !worst then begin
                            worst := f;
                            branch_var := Some v
                          end)
                        int_vars;
                      match !branch_var with
                      | None -> record_incumbent obj sol
                      | Some v ->
                        begin
                        let x = Model.value sol v in
                        let lo = Float.floor x and hi = Float.ceil x in
                        (* Push the branch matching the LP rounding last so
                           depth-first explores it first (the stack pops in
                           reverse push order). Children inherit this node's
                           basis: the branch row extends it block-
                           triangularly, so the sparse kernel re-enters at
                           the parent optimum. *)
                        if x -. lo >= 0.5 then begin
                          push obj ((v, Simplex.Le, lo) :: branches) node_basis;
                          push obj ((v, Simplex.Ge, hi) :: branches) node_basis
                        end
                        else begin
                          push obj ((v, Simplex.Ge, hi) :: branches) node_basis;
                          push obj ((v, Simplex.Le, lo) :: branches) node_basis
                        end
                      end
                    end
                    else
                      (* The LP bound already meets the incumbent: this
                         subtree cannot contain a strict improvement. *)
                      incr pruned
              end)
  done;
  let stats =
    {
      nodes_explored = !nodes;
      nodes_pruned = !pruned;
      elapsed_seconds = elapsed ();
      proven_optimal = not !hit_limit;
    }
  in
  Obs.Counter.add c_nodes !nodes;
  Obs.Counter.add c_pruned !pruned;
  if unbounded then (Mip_unbounded, stats)
  else
    match !incumbent with
    | Some (obj, sol) ->
        if !hit_limit then (Mip_feasible (obj, sol), stats) else (Mip_optimal (obj, sol), stats)
    | None -> (Mip_infeasible, stats)
