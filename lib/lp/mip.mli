(** Branch-and-bound mixed-integer programming.

    Minimizes a {!Model} objective with the declared integrality enforced.
    Best-first search on the LP-relaxation bound; branching on the most
    fractional integer variable; time and node limits; an incumbent callback
    for recording convergence traces (the paper's Figs. 7, 9, 15 plot
    best-solution-so-far against wall-clock time). *)

type outcome =
  | Mip_optimal of float * float array
      (** proven optimal objective and solution *)
  | Mip_feasible of float * float array
      (** best incumbent when a limit stopped the search *)
  | Mip_infeasible
  | Mip_unbounded

type strategy =
  | Best_first   (** explore by lowest LP bound; minimal nodes when the
                     relaxation is strong *)
  | Depth_first  (** dive toward integer leaves, preferring the branch the
                     LP rounds to; finds incumbents early when the
                     relaxation is weak (the deployment encodings are) *)

type stats = {
  nodes_explored : int;
  nodes_pruned : int;
      (** subtrees cut by the incumbent bound — before solving their LP
          (bound-dominated pops) or right after (relaxation no better than
          the incumbent); the search-effort-saved quantity of Fig. 7 *)
  elapsed_seconds : float;
  proven_optimal : bool;
}

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?should_stop:(unit -> bool) ->
  ?strategy:strategy ->
  ?on_incumbent:(obj:float -> solution:float array -> elapsed:float -> unit) ->
  ?initial_incumbent:float * float array ->
  ?dense_ceiling:int ->
  Model.t ->
  outcome * stats
(** [solve m] runs branch and bound. [time_limit] is in seconds (default
    none); [node_limit] caps explored nodes (default none); [should_stop]
    is polled once per node — and, with [time_limit], every 32 simplex
    pivots inside each LP solve, so one large relaxation cannot overrun
    the budget — and aborts the search like a hit time limit
    (cooperative cancellation for solver portfolios);
    [on_incumbent] fires every time a strictly better integer-feasible
    solution is found; [strategy] picks the exploration order (default
    {!Depth_first}); [initial_incumbent] seeds the search with a known
    feasible objective/solution (the paper bootstraps its solvers with the
    best of 10 random deployments). Integrality tolerance is [1e-6].
    [dense_ceiling] overrides the tableau-cell threshold below which the
    relaxations use the dense kernel (forwarded to
    {!Model.solve_relaxation_basis}); pass [0] to force the sparse
    revised-simplex path end to end — a testing hook. *)
