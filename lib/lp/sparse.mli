(** Sparse revised simplex for LPs past the dense-tableau ceiling.

    Solves the same problem class as {!Simplex} — minimize cᵀx subject to
    Ax {≤,=,≥} b, x ≥ 0 — but keeps the constraint matrix in compressed
    sparse column form and the basis inverse as a product-form eta file
    with periodic refactorization, so memory and pivot cost scale with the
    nonzero count instead of rows × columns. {!Model.solve_relaxation_basis}
    selects this kernel automatically when the dense tableau would exceed
    {!Simplex.max_tableau_cells}.

    Basic variables are identified by {e stable column labels} that survive
    row appends: structural variable [j] is column [j]; the slack/surplus
    of row [r] is [nvars + 2r]; the artificial of row [r] is
    [nvars + 2r + 1]. A basis returned for a model remains valid for any
    model that extends the row list, which is what lets branch and bound
    warm-start each child from its parent's optimal basis: the appended
    branch rows enter on their own slacks and a handful of dual simplex
    pivots restore primal feasibility (or prove the child infeasible). *)

type row = int array * float array * Simplex.relation * float
(** One constraint in sparse form: [(vars, coeffs, relation, rhs)] with
    [vars] and [coeffs] parallel arrays. *)

type result = {
  status : Simplex.status;
  basis : int array;
      (** Stable column label basic in each row, reusable as [warm_basis]
          for a model whose rows extend this one's. Meaningful for every
          status (for [Infeasible]/[Unbounded] it is the last basis
          visited). *)
  iterations : int;  (** Simplex pivots performed (primal + dual). *)
}

val solve :
  ?max_iters:int ->
  ?should_stop:(unit -> bool) ->
  ?warm_basis:int array ->
  objective:float array ->
  rows:row list ->
  unit ->
  result
(** [solve ~objective ~rows ()] minimizes [objective]·x over x ≥ 0. Without
    [warm_basis] it runs the classic two phases from the all-slack/
    artificial basis. With [warm_basis] (labels from a previous [result]
    on a row-prefix of this model; shorter bases are extended with the new
    rows' own slacks) it refactorizes that basis and repairs primal
    feasibility with dual simplex pivots — dual unboundedness proves
    infeasibility — falling back to a cold start if the warm basis turns
    out singular or cannot certify a solution. [max_iters] (default
    [50_000]) bounds total pivots; exhausting it, like [should_stop]
    returning [true], raises {!Simplex.Aborted} (budget semantics
    identical to the dense kernel). Pricing is Dantzig with a per-phase
    switch to Bland's rule after [max_iters / 2] in-phase pivots.
    Raises [Invalid_argument] on malformed rows. *)
