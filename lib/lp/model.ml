type var = int

type var_info = {
  name : string;
  integer : bool;
  lb : float;
  ub : float;
  mutable obj : float;
}

type t = {
  mutable vars : var_info list; (* reversed *)
  mutable nvars : int;
  mutable rows : (var array * float array * Simplex.relation * float) list; (* reversed *)
  mutable nrows : int;
}

let create () = { vars = []; nvars = 0; rows = []; nrows = 0 }

let add_var t ?(integer = false) ?(lb = 0.0) ?(ub = infinity) ?(obj = 0.0) name =
  if lb < 0.0 then invalid_arg "Model.add_var: lb must be >= 0 (see interface)";
  if ub < lb then invalid_arg "Model.add_var: ub < lb";
  let v = t.nvars in
  t.vars <- { name; integer; lb; ub; obj } :: t.vars;
  t.nvars <- t.nvars + 1;
  v

let var_array t = Array.of_list (List.rev t.vars)

let add_constraint t terms rel rhs =
  (* Sum repeated variables. *)
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (v, c) ->
      if v < 0 || v >= t.nvars then invalid_arg "Model.add_constraint: unknown variable";
      let cur = try Hashtbl.find tbl v with Not_found -> 0.0 in
      Hashtbl.replace tbl v (cur +. c))
    terms;
  let pairs = Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [] in
  (* Variable ids are distinct Hashtbl keys, so ordering by id alone
     reproduces the polymorphic order on the (id, coeff) pairs. *)
  let pairs = List.sort (fun (v1, _) (v2, _) -> Int.compare v1 v2) pairs in
  let vars = Array.of_list (List.map fst pairs) in
  let coeffs = Array.of_list (List.map snd pairs) in
  t.rows <- (vars, coeffs, rel, rhs) :: t.rows;
  t.nrows <- t.nrows + 1

let set_obj t v c =
  if v < 0 || v >= t.nvars then invalid_arg "Model.set_obj: unknown variable";
  let info = List.nth t.vars (t.nvars - 1 - v) in
  info.obj <- c

let var_count t = t.nvars
let constraint_count t = t.nrows

let var_name t v = (var_array t).(v).name
let is_integer t v = (var_array t).(v).integer

let integer_vars t =
  let infos = var_array t in
  let acc = ref [] in
  for v = t.nvars - 1 downto 0 do
    if infos.(v).integer then acc := v :: !acc
  done;
  !acc

(* Even the sparse kernel has limits: past a few hundred thousand rows the
   per-iteration dense work vectors and eta fill stop fitting any realistic
   budget, so refuse up front like the dense kernel does. *)
let max_sparse_rows = 500_000

let solve_relaxation_basis ?should_stop ?(extra = []) ?warm_basis
    ?(dense_ceiling = Simplex.max_tableau_cells) t =
  let infos = var_array t in
  let n = t.nvars in
  (* Slack + artificial columns are at most two per row, so
     [rows × (n + 2·rows)] bounds the tableau the dense simplex would
     build. Estimating before densifying matters: densifying first would
     itself allocate rows × n floats — gigabytes for models the dense
     kernel cannot take. *)
  let bound_count =
    Array.fold_left
      (fun acc i ->
        acc + (if i.lb > 0.0 then 1 else 0) + if i.ub < infinity then 1 else 0)
      0 infos
  in
  let est_rows = t.nrows + bound_count + List.length extra in
  let objective = Array.map (fun i -> i.obj) infos in
  if est_rows * (n + (2 * est_rows) + 1) <= dense_ceiling then begin
    (* Dense path: bit-identical to the historical solver (row order and
       all), so seeded runs at existing scales are unchanged. *)
    let dense (vars, coeffs, rel, rhs) =
      let row = Array.make n 0.0 in
      Array.iteri (fun k v -> row.(v) <- coeffs.(k)) vars;
      (row, rel, rhs)
    in
    let base = List.rev_map dense t.rows in
    (* Materialize declared bounds: lb > 0 as Ge rows, finite ub as Le rows. *)
    let bound_rows = ref [] in
    Array.iteri
      (fun v info ->
        let unit_row value rel =
          let row = Array.make n 0.0 in
          row.(v) <- 1.0;
          (row, rel, value)
        in
        if info.lb > 0.0 then bound_rows := unit_row info.lb Simplex.Ge :: !bound_rows;
        if info.ub < infinity then bound_rows := unit_row info.ub Simplex.Le :: !bound_rows)
      infos;
    let extra_rows =
      List.map
        (fun (v, rel, rhs) ->
          let row = Array.make n 0.0 in
          row.(v) <- 1.0;
          (row, rel, rhs))
        extra
    in
    (Simplex.solve ?should_stop ~objective ~rows:(base @ !bound_rows @ extra_rows) (), None)
  end
  else begin
    if est_rows > max_sparse_rows then raise Simplex.Too_large;
    (* Sparse path. Row order must be stable under row *appends* so that a
       basis returned here stays meaningful for a model extending this one
       (the warm-start contract of {!Sparse}): base rows in insertion
       order, then bound rows in variable order, then [extra] oldest
       first — {!Mip} prepends each new branch, so the parent's extras are
       a list suffix and reversing makes them a positional prefix. *)
    let base = List.rev t.rows in
    let bound_rows = ref [] in
    for v = t.nvars - 1 downto 0 do
      let info = infos.(v) in
      if info.ub < infinity then
        bound_rows := ([| v |], [| 1.0 |], Simplex.Le, info.ub) :: !bound_rows;
      if info.lb > 0.0 then
        bound_rows := ([| v |], [| 1.0 |], Simplex.Ge, info.lb) :: !bound_rows
    done;
    let extra_rows =
      List.rev_map (fun (v, rel, rhs) -> ([| v |], [| 1.0 |], rel, rhs)) extra
    in
    let rows = base @ !bound_rows @ extra_rows in
    let res = Sparse.solve ?should_stop ?warm_basis ~objective ~rows () in
    (res.Sparse.status, Some res.Sparse.basis)
  end

let solve_relaxation ?should_stop ?extra t =
  fst (solve_relaxation_basis ?should_stop ?extra t)

let value solution v = solution.(v)
