(** Seeded, deterministic fault injection for the measurement phase.

    Real clouds do not answer every probe: packets drop, a few hosts
    straggle with transiently spiking RTTs (heavy-tailed inter-instance
    latencies), and instances crash mid-measurement. A fault
    configuration describes those behaviours; {!realize} freezes it into
    a concrete, reproducible {!plan} for one allocation — which hosts
    straggle, when each crash happens, how lossy each link is — driven
    entirely by [seed], never by the measurement PRNG. With
    {!none} the plan is inert: probing through it is bit-identical to
    probing the fault-free environment. *)

type t = {
  seed : int;  (** fault-stream seed, independent of the measurement PRNG *)
  loss : float;  (** base per-probe loss probability in [0, 1] *)
  loss_sigma : float;
      (** lognormal σ of the per-link loss factor: links are persistently
          more or less lossy than the base rate (0 = uniform loss) *)
  straggler_fraction : float;  (** fraction of instances that straggle *)
  straggler_factor : float;
      (** RTT multiplier while a straggler is spiking (≥ 1) *)
  straggler_period_ms : float;
      (** mean spacing of spike windows on a straggling host *)
  straggler_duration_ms : float;
      (** length of each spike window (≤ period for disjoint windows) *)
  crash_fraction : float;  (** fraction of instances that crash mid-run *)
  crash_after_ms : float;
      (** crash times are uniform in [0.5, 1.5] × this value; [0.] makes
          the chosen instances dead from the start *)
}

val none : t
(** No faults: zero loss, no stragglers, no crashes. Probing through
    [none] is bit-identical to probing without a fault plan. *)

val is_none : t -> bool
(** [true] iff the configuration can never produce a fault. *)

val validate : t -> unit
(** Raise [Invalid_argument] on out-of-range parameters (loss outside
    [0, 1], fractions outside [0, 1], factor < 1, non-positive periods). *)

type plan
(** A realized fault schedule for one allocation: per-link loss rates,
    the straggler set with its spike windows, and per-instance crash
    times. Holds the mutable per-probe loss stream, so re-realizing from
    the same configuration resets it. *)

val realize : t -> n:int -> plan
(** Freeze a configuration for [n] instances. Deterministic: equal
    [(t, n)] yield plans with identical behaviour. *)

val config : plan -> t

val lose_probe : plan -> int -> int -> bool
(** [lose_probe p i j] draws one loss decision for a probe on link
    (i, j) from the plan's fault stream, advancing it. Always [false]
    under a {!none} configuration (and draws nothing). *)

val straggling : plan -> at_ms:float -> int -> bool
(** Whether instance [i] is inside a spike window at simulated time
    [at_ms]. Pure: derived from the seed, not the fault stream. *)

val crashed : plan -> at_ms:float -> int -> bool
(** Whether instance [i] has crashed by simulated time [at_ms]. *)

val crash_time_ms : plan -> int -> float option
(** When instance [i] crashes, if ever. *)

val stragglers : plan -> int list
(** The realized straggler set, ascending. *)
