(** An allocated set of cloud instances and its latency behaviour.

    [Env.allocate] plays the role of [ec2-run-instance]: it places the
    requested number of instances on distinct hosts, non-contiguously —
    runs of instances land in one rack, then the allocator jumps to another
    rack, as shared-tenancy fragmentation forces real providers to do. The
    resulting per-pair mean latencies are fixed for the lifetime of the
    environment (the paper's mean-stability observation, Fig. 2), while
    individual RTT samples jitter around the mean (lognormal, matching the
    heavy-tailed jitter reported for EC2). *)

type t

val allocate : Prng.t -> Provider.t -> count:int -> t
(** Allocate [count] instances. Raises [Invalid_argument] if the topology
    cannot host them. Instance indices are [0 .. count-1] in allocation
    order — the order the provider's API would return, which the paper's
    "default deployment" uses verbatim. *)

val count : t -> int

val provider : t -> Provider.t

val host : t -> int -> int
(** Physical host of an instance (not visible to the advisor; used by tests
    and by the hop-count / IP oracles of Appendix 2). *)

val mean_latency : t -> int -> int -> float
(** True mean RTT in milliseconds between two distinct instances.
    Asymmetric in general; [mean_latency t i i = 0.]. *)

val mean_matrix : t -> float array array
(** Full ground-truth mean matrix (fresh copy). *)

val bandwidth : t -> int -> int -> float
(** Achievable bandwidth between two instances in Gbit/s (symmetric;
    [infinity] for an instance with itself). Derived from the locality
    tier's nominal rate — cross-pod links are oversubscribed — times a
    persistent per-pair factor. Supports the bandwidth deployment
    criterion the paper names as future work (Sect. 8). *)

val sample_rtt : Prng.t -> t -> int -> int -> float
(** One observed RTT: the pair's mean scaled by multiplicative lognormal
    jitter. Never fails — use {!probe} for the fault-aware view. *)

val with_faults : t -> Faults.t -> t
(** Attach a realized fault plan ({!Faults.realize}) to the environment.
    Returns a new environment; [t] keeps its own plan (or none). Calling
    it again with the same configuration resets the per-probe loss
    stream, so two measurement runs over fresh [with_faults] results are
    identical. Raises [Invalid_argument] on an invalid configuration. *)

val fault_config : t -> Faults.t
(** The attached fault configuration; {!Faults.none} when the
    environment has no plan. *)

type probe_outcome =
  | Reply of float  (** observed RTT (ms), straggler-inflated if spiking *)
  | Lost  (** dropped in flight, or the destination has crashed — the
              sender cannot tell the difference and waits out its timeout *)

val probe : Prng.t -> t -> at_ms:float -> int -> int -> probe_outcome
(** One probe from [i] to [j] at simulated time [at_ms]. Without a fault
    plan this is exactly [Reply (sample_rtt rng t i j)] — same PRNG
    draws, bit-identical values — so fault-aware measurement code costs
    nothing when faults are off. With a plan: probes to or from a
    crashed instance are [Lost] (no RTT draw), otherwise the link's loss
    rate may drop the probe (fault-stream draw, no RTT draw), otherwise
    the sampled RTT is inflated by the straggler factor when either
    endpoint is inside a spike window. *)

val alive : t -> at_ms:float -> int -> bool
(** Whether instance [i] has not crashed by [at_ms]. Always [true]
    without a fault plan. A measurement scheme uses this for the {e
    sender} side (a crashed sender stops probing); a crashed {e
    destination} is deliberately not observable except as {!Lost}. *)

val hop_count : t -> int -> int -> int
(** Router hops between two instances' hosts. *)

val ip_address : t -> int -> int * int * int * int
(** Internal IPv4 address of an instance's host. *)

val time_series : Prng.t -> t -> int -> int -> buckets:int -> float array
(** [time_series rng t i j ~buckets] are per-bucket observed mean latencies
    for link (i, j) over consecutive time buckets: the true mean plus small
    relative drift and rare transient spikes. Means are stable by
    construction, reproducing Figs. 2, 19, 21. *)

val perturb : Prng.t -> t -> fraction:float -> magnitude:float -> t
(** [perturb rng t ~fraction ~magnitude] models a network-condition change
    (Sect. 2.2.1): each unordered instance pair independently has its mean
    latency re-leveled with probability [fraction], multiplying both
    directions by a lognormal factor of σ [magnitude]. Returns a new
    environment; [t] is unchanged. Host placement and bandwidths are
    preserved. *)

val sub_env : t -> int array -> t
(** [sub_env t instances] restricts the environment to the given distinct
    instance indices (re-indexed 0..k-1 in the given order): the paper's
    scalability experiment draws random subsets of a 100-instance
    allocation (Fig. 8). Any fault plan is dropped (its indices refer to
    the full allocation); re-attach one with {!with_faults} if needed. *)
