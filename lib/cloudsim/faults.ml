type t = {
  seed : int;
  loss : float;
  loss_sigma : float;
  straggler_fraction : float;
  straggler_factor : float;
  straggler_period_ms : float;
  straggler_duration_ms : float;
  crash_fraction : float;
  crash_after_ms : float;
}

let none =
  {
    seed = 0;
    loss = 0.0;
    loss_sigma = 0.0;
    straggler_fraction = 0.0;
    straggler_factor = 1.0;
    straggler_period_ms = 1000.0;
    straggler_duration_ms = 100.0;
    crash_fraction = 0.0;
    crash_after_ms = 1000.0;
  }

let is_none t =
  t.loss = 0.0
  && (t.straggler_fraction = 0.0 || t.straggler_factor = 1.0)
  && t.crash_fraction = 0.0

let validate t =
  let in_unit name v =
    if not (Float.is_finite v) || v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Faults: %s = %g must be in [0, 1]" name v)
  in
  in_unit "loss" t.loss;
  in_unit "straggler_fraction" t.straggler_fraction;
  in_unit "crash_fraction" t.crash_fraction;
  if not (Float.is_finite t.loss_sigma) || t.loss_sigma < 0.0 then
    invalid_arg "Faults: loss_sigma must be non-negative";
  if not (Float.is_finite t.straggler_factor) || t.straggler_factor < 1.0 then
    invalid_arg "Faults: straggler_factor must be >= 1";
  if not (t.straggler_period_ms > 0.0) then
    invalid_arg "Faults: straggler_period_ms must be positive";
  if not (Float.is_finite t.straggler_duration_ms) || t.straggler_duration_ms < 0.0
  then invalid_arg "Faults: straggler_duration_ms must be non-negative";
  if not (Float.is_finite t.crash_after_ms) || t.crash_after_ms < 0.0 then
    invalid_arg "Faults: crash_after_ms must be non-negative"

type plan = {
  cfg : t;
  (* Per-probe loss stream: mutable, reset by every [realize]. *)
  stream : Prng.t;
  link_loss : float array array; (* [||] when cfg.loss = 0 *)
  straggler : bool array;
  crash_at_ms : float array; (* [infinity] = never crashes *)
}

(* Spike windows must be queryable at an arbitrary simulated time without
   replaying a stream, so window jitter is a pure function of
   (seed, host, window index) rather than a draw from [stream]. *)
let window_jitter seed host k =
  let mix = (seed * 0x9e3779b1) lxor (host * 0x85ebca77) lxor (k * 0xc2b2ae35) in
  Prng.uniform (Prng.create mix)

let realize cfg ~n =
  validate cfg;
  if n < 0 then invalid_arg "Faults.realize: negative instance count";
  let rng = Prng.create cfg.seed in
  (* Realization order is part of the determinism contract: stragglers,
     then crashes, then per-link loss, then the probe stream. *)
  let straggler =
    Array.init n (fun _ ->
        cfg.straggler_fraction > 0.0 && Prng.uniform rng < cfg.straggler_fraction)
  in
  let crash_at_ms =
    Array.init n (fun _ ->
        if cfg.crash_fraction > 0.0 && Prng.uniform rng < cfg.crash_fraction then
          cfg.crash_after_ms *. (0.5 +. Prng.uniform rng)
        else infinity)
  in
  let link_loss =
    if cfg.loss = 0.0 then [||]
    else
      Array.init n (fun _ ->
          Array.init n (fun _ ->
              let factor =
                if cfg.loss_sigma = 0.0 then 1.0
                else Prng.lognormal rng ~mu:0.0 ~sigma:cfg.loss_sigma
              in
              Float.min 1.0 (cfg.loss *. factor)))
  in
  { cfg; stream = Prng.split rng; link_loss; straggler; crash_at_ms }

let config p = p.cfg

let lose_probe p i j =
  p.cfg.loss > 0.0 && Prng.uniform p.stream < p.link_loss.(i).(j)

let straggling p ~at_ms i =
  p.straggler.(i)
  && p.cfg.straggler_duration_ms > 0.0
  && p.cfg.straggler_factor > 1.0
  &&
  let period = p.cfg.straggler_period_ms in
  let k = int_of_float (Float.floor (at_ms /. period)) in
  (* A window anchored in slot [k] may spill into slot [k+1]; check both
     candidates that could cover [at_ms]. *)
  let covers k =
    k >= 0
    &&
    let start = (float_of_int k +. window_jitter p.cfg.seed i k) *. period in
    at_ms >= start && at_ms < start +. p.cfg.straggler_duration_ms
  in
  covers k || covers (k - 1)

let crashed p ~at_ms i = at_ms >= p.crash_at_ms.(i)

let crash_time_ms p i =
  let t = p.crash_at_ms.(i) in
  if Float.is_finite t then Some t else None

let stragglers p =
  let out = ref [] in
  for i = Array.length p.straggler - 1 downto 0 do
    if p.straggler.(i) then out := i :: !out
  done;
  !out
