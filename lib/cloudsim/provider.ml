type name = Ec2 | Gce | Rackspace

type t = {
  provider : name;
  topology : Topology.t;
  rack_rtt : float;
  pod_rtt : float;
  core_rtt : float;
  pair_sigma : float;
  asym_sigma : float;
  jitter_sigma : float;
  spread : float;
  drift_sigma : float;
  spike_prob : float;
  rack_gbps : float;
  pod_gbps : float;
  core_gbps : float;
  bw_sigma : float;
}

let get = function
  | Ec2 ->
      {
        provider = Ec2;
        topology = Topology.create ~hosts_per_rack:20 ~racks_per_pod:10 ~pods:8;
        rack_rtt = 0.32;
        pod_rtt = 0.48;
        core_rtt = 0.68;
        pair_sigma = 0.22;
        asym_sigma = 0.02;
        jitter_sigma = 0.35;
        spread = 0.25;
        drift_sigma = 0.03;
        spike_prob = 0.02;
        rack_gbps = 10.0;
        pod_gbps = 4.0;
        core_gbps = 1.0;
        bw_sigma = 0.30;
      }
  | Gce ->
      {
        provider = Gce;
        topology = Topology.create ~hosts_per_rack:24 ~racks_per_pod:12 ~pods:6;
        rack_rtt = 0.30;
        pod_rtt = 0.38;
        core_rtt = 0.46;
        pair_sigma = 0.12;
        asym_sigma = 0.02;
        jitter_sigma = 0.25;
        spread = 0.30;
        drift_sigma = 0.025;
        spike_prob = 0.015;
        rack_gbps = 10.0;
        pod_gbps = 6.0;
        core_gbps = 2.0;
        bw_sigma = 0.20;
      }
  | Rackspace ->
      {
        provider = Rackspace;
        topology = Topology.create ~hosts_per_rack:16 ~racks_per_pod:10 ~pods:6;
        rack_rtt = 0.24;
        pod_rtt = 0.30;
        core_rtt = 0.36;
        pair_sigma = 0.10;
        asym_sigma = 0.02;
        jitter_sigma = 0.22;
        spread = 0.35;
        drift_sigma = 0.02;
        spike_prob = 0.01;
        rack_gbps = 10.0;
        pod_gbps = 5.0;
        core_gbps = 2.0;
        bw_sigma = 0.20;
      }

let to_string = function
  | Ec2 -> "ec2"
  | Gce -> "gce"
  | Rackspace -> "rackspace"

(* Baseline fault rates for a "bad day" on each provider: shared-tenancy
   EC2 is the noisiest (CloudCast-style stragglers and visible probe
   loss); GCE and Rackspace lose fewer probes and straggle less. *)
let typical_faults name ~seed =
  match name with
  | Ec2 ->
      {
        Faults.none with
        Faults.seed;
        loss = 0.02;
        loss_sigma = 0.5;
        straggler_fraction = 0.08;
        straggler_factor = 12.0;
        straggler_period_ms = 400.0;
        straggler_duration_ms = 60.0;
      }
  | Gce ->
      {
        Faults.none with
        Faults.seed;
        loss = 0.01;
        loss_sigma = 0.4;
        straggler_fraction = 0.04;
        straggler_factor = 8.0;
        straggler_period_ms = 500.0;
        straggler_duration_ms = 40.0;
      }
  | Rackspace ->
      {
        Faults.none with
        Faults.seed;
        loss = 0.008;
        loss_sigma = 0.4;
        straggler_fraction = 0.03;
        straggler_factor = 6.0;
        straggler_period_ms = 500.0;
        straggler_duration_ms = 40.0;
      }
