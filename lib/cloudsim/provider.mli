(** Public-cloud provider presets.

    Parameters calibrated so that an allocation's pairwise mean-latency CDF
    reproduces the shape the paper measured: Fig. 1 (EC2 m1.large, US East:
    ≈10 % of pairs above 0.7 ms, ≈10 % below 0.4 ms), Fig. 18 (GCE
    n1-standard-1, us-central1-a: ≈5 % below 0.32 ms, ≈5 % above 0.5 ms)
    and Fig. 20 (Rackspace performance 1-1, IAD: ≈5 % below 0.24 ms, ≈5 %
    above 0.38 ms). *)

type name = Ec2 | Gce | Rackspace

type t = {
  provider : name;
  topology : Topology.t;
  rack_rtt : float;      (** base mean RTT (ms) within a rack *)
  pod_rtt : float;       (** base mean RTT (ms) across racks in a pod *)
  core_rtt : float;      (** base mean RTT (ms) across pods *)
  pair_sigma : float;    (** lognormal σ of the per-link mean offset *)
  asym_sigma : float;    (** lognormal σ of direction asymmetry *)
  jitter_sigma : float;  (** lognormal σ of per-sample RTT jitter *)
  spread : float;        (** geometric parameter of per-rack allocation runs:
                             smaller ⇒ allocations fragment across more
                             racks ⇒ more heterogeneity *)
  drift_sigma : float;   (** per-bucket relative noise of time-series means *)
  spike_prob : float;    (** per-bucket probability of a transient spike *)
  rack_gbps : float;     (** nominal intra-rack bandwidth (Gbit/s) *)
  pod_gbps : float;      (** nominal intra-pod bandwidth *)
  core_gbps : float;     (** nominal cross-pod bandwidth (oversubscribed) *)
  bw_sigma : float;      (** lognormal σ of the per-link bandwidth factor *)
}

val get : name -> t
(** Preset parameters for the given provider. *)

val to_string : name -> string

val typical_faults : name -> seed:int -> Faults.t
(** A degraded-mode preset per provider: modest per-link probe loss and a
    few straggler hosts, no crashes. EC2 is noisiest. Use as a starting
    point for {!Env.with_faults}; override fields for harsher sweeps. *)
