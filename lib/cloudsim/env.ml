type t = {
  provider : Provider.t;
  hosts : int array;
  means : float array array;
  bandwidths : float array array; (* Gbit/s; infinity on the diagonal *)
  faults : Faults.plan option;
}

type probe_outcome = Reply of float | Lost

let base_rtt (p : Provider.t) tier =
  match tier with
  | Topology.Same_host -> 0.0
  | Topology.Same_rack -> p.Provider.rack_rtt
  | Topology.Same_pod -> p.Provider.pod_rtt
  | Topology.Cross_pod -> p.Provider.core_rtt

(* Non-contiguous allocation: geometric-length runs of hosts within a rack,
   hopping to a fresh random rack between runs. *)
let allocate_hosts rng (p : Provider.t) count =
  let topo = p.Provider.topology in
  let total = Topology.host_count topo in
  if count > total then invalid_arg "Env.allocate: not enough hosts in topology";
  let hosts_per_rack =
    total / (Topology.rack_of topo (total - 1) + 1)
  in
  let racks = total / hosts_per_rack in
  let used = Hashtbl.create count in
  let out = Array.make count 0 in
  let filled = ref 0 in
  while !filled < count do
    let rack = Prng.int rng racks in
    (* Geometric run length with parameter [spread]. *)
    let run = ref 1 in
    while Prng.uniform rng > p.Provider.spread && !run < hosts_per_rack do
      incr run
    done;
    let start = Prng.int rng hosts_per_rack in
    let k = ref 0 in
    while !k < !run && !filled < count do
      let host = (rack * hosts_per_rack) + ((start + !k) mod hosts_per_rack) in
      if not (Hashtbl.mem used host) then begin
        Hashtbl.add used host ();
        out.(!filled) <- host;
        incr filled
      end;
      incr k
    done
  done;
  out

let build_means rng (p : Provider.t) hosts =
  let n = Array.length hosts in
  let topo = p.Provider.topology in
  let means = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let base = base_rtt p (Topology.tier topo hosts.(i) hosts.(j)) in
      (* Per-link lognormal offset centered at 1 (mu = 0): some pairs are
         persistently better or worse connected than their tier's base. *)
      let pair_factor = Prng.lognormal rng ~mu:0.0 ~sigma:p.Provider.pair_sigma in
      let forward = base *. pair_factor in
      let backward = forward *. Prng.lognormal rng ~mu:0.0 ~sigma:p.Provider.asym_sigma in
      means.(i).(j) <- forward;
      means.(j).(i) <- backward
    done
  done;
  means

let base_gbps (p : Provider.t) tier =
  match tier with
  | Topology.Same_host -> infinity
  | Topology.Same_rack -> p.Provider.rack_gbps
  | Topology.Same_pod -> p.Provider.pod_gbps
  | Topology.Cross_pod -> p.Provider.core_gbps

let build_bandwidths rng (p : Provider.t) hosts =
  let n = Array.length hosts in
  let topo = p.Provider.topology in
  let bw = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let base = base_gbps p (Topology.tier topo hosts.(i) hosts.(j)) in
      (* Per-link achievable share of the nominal rate; cross-traffic makes
         it vary persistently per pair, never exceed nominal by much. *)
      let factor = Float.min 1.1 (Prng.lognormal rng ~mu:(-0.1) ~sigma:p.Provider.bw_sigma) in
      let v = base *. factor in
      bw.(i).(j) <- v;
      bw.(j).(i) <- v
    done
  done;
  bw

let allocate rng p ~count =
  if count <= 0 then invalid_arg "Env.allocate: count must be positive";
  let hosts = allocate_hosts rng p count in
  let means = build_means rng p hosts in
  { provider = p; hosts; means; bandwidths = build_bandwidths rng p hosts; faults = None }

let count t = Array.length t.hosts
let provider t = t.provider
let host t i = t.hosts.(i)

let mean_latency t i j = t.means.(i).(j)

let bandwidth t i j = t.bandwidths.(i).(j)

let mean_matrix t = Array.map Array.copy t.means

let sample_rtt rng t i j =
  let m = t.means.(i).(j) in
  (* E[lognormal(mu, s)] = exp(mu + s²/2); shift mu so the sample mean is
     the link mean. *)
  let s = t.provider.Provider.jitter_sigma in
  m *. Prng.lognormal rng ~mu:(-.(s *. s) /. 2.0) ~sigma:s

let with_faults t cfg =
  Faults.validate cfg;
  { t with faults = Some (Faults.realize cfg ~n:(Array.length t.hosts)) }

let fault_config t =
  match t.faults with None -> Faults.none | Some p -> Faults.config p

let alive t ~at_ms i =
  match t.faults with None -> true | Some p -> not (Faults.crashed p ~at_ms i)

(* The fault-free path must stay bit-identical to [sample_rtt]: no extra
   PRNG draws, no comparisons against fault state. *)
let probe rng t ~at_ms i j =
  match t.faults with
  | None -> Reply (sample_rtt rng t i j)
  | Some p ->
      if Faults.crashed p ~at_ms i || Faults.crashed p ~at_ms j then Lost
      else if Faults.lose_probe p i j then Lost
      else
        let rtt = sample_rtt rng t i j in
        let factor =
          if Faults.straggling p ~at_ms i || Faults.straggling p ~at_ms j then
            (Faults.config p).Faults.straggler_factor
          else 1.0
        in
        Reply (rtt *. factor)

let hop_count t i j =
  Topology.hop_count t.provider.Provider.topology t.hosts.(i) t.hosts.(j)

let ip_address t i = Topology.ip_address t.provider.Provider.topology t.hosts.(i)

let time_series rng t i j ~buckets =
  let m = t.means.(i).(j) in
  let p = t.provider in
  Array.init buckets (fun _ ->
      let drift = Prng.normal rng ~mean:0.0 ~sd:p.Provider.drift_sigma in
      let spike =
        if Prng.uniform rng < p.Provider.spike_prob then
          1.0 +. Prng.float rng 0.4
        else 1.0
      in
      m *. (1.0 +. drift) *. spike)

let sub_env t instances =
  let n = Array.length instances in
  let seen = Hashtbl.create n in
  Array.iter
    (fun i ->
      if i < 0 || i >= count t then invalid_arg "Env.sub_env: instance out of range";
      if Hashtbl.mem seen i then invalid_arg "Env.sub_env: duplicate instance";
      Hashtbl.add seen i ())
    instances;
  {
    provider = t.provider;
    hosts = Array.map (fun i -> t.hosts.(i)) instances;
    means = Array.map (fun i -> Array.map (fun j -> t.means.(i).(j)) instances) instances;
    bandwidths =
      Array.map (fun i -> Array.map (fun j -> t.bandwidths.(i).(j)) instances) instances;
    (* A fault plan indexes the original allocation; re-apply
       [with_faults] to the restriction if faults are wanted there. *)
    faults = None;
  }

let perturb rng t ~fraction ~magnitude =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Env.perturb: fraction out of [0,1]";
  if magnitude < 0.0 then invalid_arg "Env.perturb: magnitude must be non-negative";
  let n = Array.length t.hosts in
  let means = Array.map Array.copy t.means in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.uniform rng < fraction then begin
        (* A routing or colocation change shifts this pair's mean to a new
           stable level; both directions move together. *)
        let factor = Prng.lognormal rng ~mu:0.0 ~sigma:magnitude in
        means.(i).(j) <- means.(i).(j) *. factor;
        means.(j).(i) <- means.(j).(i) *. factor
      end
    done
  done;
  { t with means }
