(** Finite-domain constraint satisfaction problems.

    The model matches the paper's CP encoding of the longest-link node
    deployment problem (Sect. 4.2):

    - one integer variable [u_i] per application node, ranging over
      instances (values [0 .. nvalues-1]);
    - one global [alldifferent] over all variables (injective deployment);
    - binary "forbidden pair" constraints
      [(u_i, u_i') <> (j, j')] for every communication edge [(i, i')] and
      every instance pair with link cost above the threshold [c].

    Propagation is AC for the binary constraints (bitset support tests) and
    Régin's matching-based filtering for [alldifferent]. *)

type t
(** A CSP instance: mutable domains plus a fixed set of propagators. *)

type propagation = Progress | Fixpoint | Failure

val create : nvars:int -> nvalues:int -> t
(** Fresh problem with every variable ranging over all values. Requires
    [0 < nvars <= nvalues] (injective problems only). *)

val nvars : t -> int
val nvalues : t -> int

val domain : t -> int -> Domain.t
(** The live domain of a variable (mutating it directly is allowed before
    search starts; during search use the solver's branching). *)

val restrict : t -> var:int -> allowed:(int -> bool) -> unit
(** Remove from [var]'s domain every value failing [allowed] — used for
    root-level compatibility filtering (degree labeling). *)

val add_alldifferent : t -> unit
(** Add the global injectivity constraint over all variables. *)

val add_forbidden_pairs : t -> x:int -> y:int -> bad:Domain.t array -> unit
(** [add_forbidden_pairs t ~x ~y ~bad] forbids simultaneous assignment
    [x = j ∧ y ∈ bad.(j)]. [bad] has one entry per value [j] of [x]; each
    entry is a set over the value universe. The transposed direction is
    derived internally, so a single call gives arc consistency both ways.
    The [bad] array is shared, not copied: callers may reuse one matrix
    across many edge constraints (the paper's encoding does — the forbidden
    set depends only on the link-cost threshold). *)

val propagate : t -> propagation
(** Run all propagators to fixpoint. [Failure] means some domain emptied.
    The alldifferent propagator is incremental: it keeps the last maximum
    matching inside [t], revalidates it against the live domains, and
    re-augments only the variables that lost their match — the filtered
    edge set is matching-invariant, so prunings are identical to a
    from-scratch run. *)

val reset : t -> unit
(** Refill every domain to the full value range and drop all binary
    (forbidden-pair) constraints, keeping [alldifferent] and its warm
    matching state. This is what lets a threshold-iterating solver reuse
    one CSP across iterations instead of rebuilding it: after [reset],
    re-apply the root restrictions and post the new iteration's forbidden
    matrices. *)

val save : t -> Domain.t array
(** Snapshot all domains (for search backtracking). *)

val restore : t -> Domain.t array -> unit
(** Restore a snapshot taken by {!save}. *)

val assignment : t -> int array option
(** If every domain is a singleton, the assignment; otherwise [None]. *)
