type result =
  | Sat of int array
  | Unsat
  | Timeout

type stats = {
  nodes : int;
  failures : int;
  propagations : int;
  elapsed : float;
}

exception Found of int array
exception Out_of_budget

(* Flushed once per solve from the local refs the search already keeps —
   the node loop itself stays free of atomic traffic. *)
let c_nodes = Obs.Counter.make "cp.search.nodes"
let c_failures = Obs.Counter.make "cp.search.failures"
let c_propagations = Obs.Counter.make "cp.search.propagations"

(* Per-node propagation latency; recorded only under tracing so the
   untraced node loop keeps zero clock reads. *)
let h_node = Obs.Histogram.make "cp.node_ns"

let solve ?time_limit ?node_limit ?should_stop
    ?(value_order = fun ~var:_ values -> values) csp =
  Obs.Span.with_ "cp.search" @@ fun () ->
  let start = Obs.Clock.now_s () in
  let timed = Obs.Sink.enabled () in
  let nodes = ref 0 and failures = ref 0 and propagations = ref 0 in
  let deadline = Option.map (fun l -> start +. l) time_limit in
  let check_budget () =
    (match node_limit with Some l when !nodes >= l -> raise Out_of_budget | _ -> ());
    (match should_stop with Some f when f () -> raise Out_of_budget | _ -> ());
    (* The time check is cheap enough to run at every node. *)
    match deadline with
    | Some d when Obs.Clock.now_s () > d -> raise Out_of_budget
    | _ -> ()
  in
  let initial = Csp.save csp in
  (* MRV: unassigned variable with the smallest domain. *)
  let select_variable () =
    let best = ref (-1) and best_size = ref max_int in
    for v = 0 to Csp.nvars csp - 1 do
      let s = Domain.size (Csp.domain csp v) in
      if s > 1 && s < !best_size then begin
        best := v;
        best_size := s
      end
    done;
    !best
  in
  let rec search () =
    check_budget ();
    incr propagations;
    let t0 = if timed then Obs.Clock.now_ns () else 0L in
    let outcome = Csp.propagate csp in
    if timed then Obs.Histogram.record_ns h_node (Int64.sub (Obs.Clock.now_ns ()) t0);
    match outcome with
    | Csp.Failure -> incr failures
    | Csp.Progress | Csp.Fixpoint -> (
        match Csp.assignment csp with
        | Some a -> raise (Found (Array.copy a))
        | None ->
            let var = select_variable () in
            if var = -1 then
              (* No branching variable but not a full assignment: some
                 domain is empty (propagate would have failed) — defensive. *)
              incr failures
            else begin
              let values = value_order ~var (Domain.to_list (Csp.domain csp var)) in
              let snapshot = Csp.save csp in
              List.iter
                (fun v ->
                  incr nodes;
                  Domain.fix (Csp.domain csp var) v;
                  search ();
                  Csp.restore csp snapshot)
                values
            end)
  in
  let finish outcome =
    Csp.restore csp initial;
    Obs.Counter.add c_nodes !nodes;
    Obs.Counter.add c_failures !failures;
    Obs.Counter.add c_propagations !propagations;
    ( outcome,
      {
        nodes = !nodes;
        failures = !failures;
        propagations = !propagations;
        elapsed = Obs.Clock.now_s () -. start;
      } )
  in
  match search () with
  | () -> finish Unsat
  | exception Found a -> finish (Sat a)
  | exception Out_of_budget -> finish Timeout
