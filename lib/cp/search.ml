type result =
  | Sat of int array
  | Unsat
  | Timeout

type stats = {
  nodes : int;
  failures : int;
  elapsed : float;
}

exception Found of int array
exception Out_of_budget

let solve ?time_limit ?node_limit ?should_stop
    ?(value_order = fun ~var:_ values -> values) csp =
  let start = Unix.gettimeofday () in
  let nodes = ref 0 and failures = ref 0 in
  let deadline = Option.map (fun l -> start +. l) time_limit in
  let check_budget () =
    (match node_limit with Some l when !nodes >= l -> raise Out_of_budget | _ -> ());
    (match should_stop with Some f when f () -> raise Out_of_budget | _ -> ());
    (* The time check is cheap enough to run at every node. *)
    match deadline with
    | Some d when Unix.gettimeofday () > d -> raise Out_of_budget
    | _ -> ()
  in
  let initial = Csp.save csp in
  (* MRV: unassigned variable with the smallest domain. *)
  let select_variable () =
    let best = ref (-1) and best_size = ref max_int in
    for v = 0 to Csp.nvars csp - 1 do
      let s = Domain.size (Csp.domain csp v) in
      if s > 1 && s < !best_size then begin
        best := v;
        best_size := s
      end
    done;
    !best
  in
  let rec search () =
    check_budget ();
    match Csp.propagate csp with
    | Csp.Failure -> incr failures
    | Csp.Progress | Csp.Fixpoint -> (
        match Csp.assignment csp with
        | Some a -> raise (Found (Array.copy a))
        | None ->
            let var = select_variable () in
            if var = -1 then
              (* No branching variable but not a full assignment: some
                 domain is empty (propagate would have failed) — defensive. *)
              incr failures
            else begin
              let values = value_order ~var (Domain.to_list (Csp.domain csp var)) in
              let snapshot = Csp.save csp in
              List.iter
                (fun v ->
                  incr nodes;
                  Domain.fix (Csp.domain csp var) v;
                  search ();
                  Csp.restore csp snapshot)
                values
            end)
  in
  let finish outcome =
    Csp.restore csp initial;
    (outcome, { nodes = !nodes; failures = !failures; elapsed = Unix.gettimeofday () -. start })
  in
  match search () with
  | () -> finish Unsat
  | exception Found a -> finish (Sat a)
  | exception Out_of_budget -> finish Timeout
