type result =
  | Sat of int array
  | Unsat
  | Timeout

type stats = {
  nodes : int;
  failures : int;
  propagations : int;
  elapsed : float;
}

exception Found of int array
exception Out_of_budget

(* Flushed once per solve from the local refs the search already keeps —
   the node loop itself stays free of atomic traffic. *)
let c_nodes = Obs.Counter.make "cp.search.nodes"
let c_failures = Obs.Counter.make "cp.search.failures"
let c_propagations = Obs.Counter.make "cp.search.propagations"

(* Per-node propagation latency; recorded only under tracing so the
   untraced node loop keeps zero clock reads. *)
let h_node = Obs.Histogram.make "cp.node_ns"

(* Refine caller-declared interchangeability classes by the root domains:
   two values may only share a class if every variable's initial domain
   treats them identically. The search-level soundness argument for
   symmetric-value dedup needs the class swap to be an automorphism of the
   *posted* problem, and unary root restrictions (degree labeling) are part
   of it — exact column comparison makes the guarantee self-contained
   instead of trusting the caller's restrictions to be symmetric. *)
let refine_classes csp classes =
  let nvalues = Csp.nvalues csp in
  if Array.length classes <> nvalues then
    invalid_arg "Search.solve: value_classes length must equal nvalues";
  let column v =
    String.init (Csp.nvars csp) (fun x ->
        if Domain.mem (Csp.domain csp x) v then '1' else '0')
  in
  let groups : (int * string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  for v = nvalues - 1 downto 0 do
    if classes.(v) >= 0 then begin
      let key = (classes.(v), column v) in
      match Hashtbl.find_opt groups key with
      | Some members -> members := v :: !members
      | None -> Hashtbl.add groups key (ref [ v ])
    end
  done;
  let refined = Array.make nvalues (-1) in
  let next = ref 0 in
  Hashtbl.iter
    (fun _ members ->
      match !members with
      | [] | [ _ ] -> () (* singleton classes cannot save any branching *)
      | vs ->
          List.iter (fun v -> refined.(v) <- !next) vs;
          incr next)
    groups;
  (refined, !next)

let solve ?time_limit ?node_limit ?should_stop ?value_classes
    ?(value_order = fun ~var:_ values -> values) csp =
  Obs.Span.with_ "cp.search" @@ fun () ->
  let start = Obs.Clock.now_s () in
  let timed = Obs.Sink.enabled () in
  let nodes = ref 0 and failures = ref 0 and propagations = ref 0 in
  let deadline = Option.map (fun l -> start +. l) time_limit in
  let check_budget () =
    (match node_limit with Some l when !nodes >= l -> raise Out_of_budget | _ -> ());
    (match should_stop with Some f when f () -> raise Out_of_budget | _ -> ());
    (* The time check is cheap enough to run at every node. *)
    match deadline with
    | Some d when Obs.Clock.now_s () > d -> raise Out_of_budget
    | _ -> ()
  in
  let initial = Csp.save csp in
  (* Symmetric-value dedup: at a branch node, values of the same
     (root-refined) interchangeability class are pairwise swappable by a
     problem automorphism fixing the path's assignments, so trying more
     than one candidate per class only re-proves the same subtree. Keeping
     the smallest candidate of each class is therefore sound and
     complete. [class_mark] is stamped per branch node to dedup without
     allocation. *)
  let classes, n_classes =
    match value_classes with
    | None -> (Array.make 0 0, 0)
    | Some c -> refine_classes csp c
  in
  let class_mark = Array.make (max n_classes 1) (-1) in
  let node_stamp = ref 0 in
  let dedup_values values =
    if n_classes = 0 then values
    else begin
      incr node_stamp;
      List.filter
        (fun v ->
          let c = classes.(v) in
          c < 0
          ||
          if class_mark.(c) = !node_stamp then false
          else begin
            class_mark.(c) <- !node_stamp;
            true
          end)
        values
    end
  in
  (* MRV over a sparse set of still-unassigned variables: scanning every
     variable at every node is O(n) even deep in the tree where most are
     fixed. Variables found assigned are swapped past the [n_active]
     watermark; restoring the watermark un-removes them on backtrack
     (assignment is monotone along a dive, so everything past the
     watermark really was assigned at this depth). Tie-breaks match the
     historical full scan exactly: smallest domain, then smallest index. *)
  let cand = Array.init (Csp.nvars csp) (fun i -> i) in
  let n_active = ref (Csp.nvars csp) in
  let select_variable () =
    let best = ref (-1) and best_size = ref max_int in
    let i = ref 0 in
    while !i < !n_active do
      let v = cand.(!i) in
      let s = Domain.size (Csp.domain csp v) in
      if s <= 1 then begin
        decr n_active;
        cand.(!i) <- cand.(!n_active);
        cand.(!n_active) <- v
      end
      else begin
        if s < !best_size || (s = !best_size && v < !best) then begin
          best := v;
          best_size := s
        end;
        incr i
      end
    done;
    !best
  in
  let rec search () =
    check_budget ();
    incr propagations;
    let t0 = if timed then Obs.Clock.now_ns () else 0L in
    let outcome = Csp.propagate csp in
    if timed then Obs.Histogram.record_ns h_node (Int64.sub (Obs.Clock.now_ns ()) t0);
    match outcome with
    | Csp.Failure -> incr failures
    | Csp.Progress | Csp.Fixpoint -> (
        match Csp.assignment csp with
        | Some a -> raise (Found (Array.copy a))
        | None ->
            let var = select_variable () in
            if var = -1 then
              (* No branching variable but not a full assignment: some
                 domain is empty (propagate would have failed) — defensive. *)
              incr failures
            else begin
              let values =
                value_order ~var (dedup_values (Domain.to_list (Csp.domain csp var)))
              in
              let snapshot = Csp.save csp in
              let saved_active = !n_active in
              List.iter
                (fun v ->
                  incr nodes;
                  Domain.fix (Csp.domain csp var) v;
                  search ();
                  Csp.restore csp snapshot;
                  n_active := saved_active)
                values
            end)
  in
  let finish outcome =
    Csp.restore csp initial;
    Obs.Counter.add c_nodes !nodes;
    Obs.Counter.add c_failures !failures;
    Obs.Counter.add c_propagations !propagations;
    ( outcome,
      {
        nodes = !nodes;
        failures = !failures;
        propagations = !propagations;
        elapsed = Obs.Clock.now_s () -. start;
      } )
  in
  match search () with
  | () -> finish Unsat
  | exception Found a -> finish (Sat a)
  | exception Out_of_budget -> finish Timeout
