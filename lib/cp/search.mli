(** Backtracking search for {!Csp} problems.

    Depth-first search with propagation at every node, minimum-remaining-
    values (MRV) variable selection, and a pluggable value-ordering
    heuristic. A wall-clock time limit and a node limit make the solver
    safe to embed in anytime optimization loops (the iterated
    subgraph-isomorphism scheme of the paper re-solves satisfaction
    problems under a shrinking threshold until UNSAT or timeout). *)

type result =
  | Sat of int array   (** one solution: value per variable *)
  | Unsat              (** proven unsatisfiable *)
  | Timeout            (** a limit was hit before a solution or proof *)

type stats = {
  nodes : int;          (** search nodes (assignments tried) *)
  failures : int;       (** dead ends reached *)
  propagations : int;   (** constraint-propagation passes run *)
  elapsed : float;      (** wall-clock seconds *)
}

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?should_stop:(unit -> bool) ->
  ?value_order:(var:int -> int list -> int list) ->
  Csp.t ->
  result * stats
(** [solve csp] searches for a single solution. [value_order] reorders a
    variable's candidate values before branching (default: ascending).
    [should_stop] is polled at every node; returning [true] aborts the
    search with {!Timeout} — this is how a parallel portfolio cancels an
    in-flight feasibility dive cooperatively once another worker has
    already settled the race. The CSP's domains are restored to their
    pre-search state on exit. *)
