(** Backtracking search for {!Csp} problems.

    Depth-first search with propagation at every node, minimum-remaining-
    values (MRV) variable selection, and a pluggable value-ordering
    heuristic. A wall-clock time limit and a node limit make the solver
    safe to embed in anytime optimization loops (the iterated
    subgraph-isomorphism scheme of the paper re-solves satisfaction
    problems under a shrinking threshold until UNSAT or timeout). *)

type result =
  | Sat of int array   (** one solution: value per variable *)
  | Unsat              (** proven unsatisfiable *)
  | Timeout            (** a limit was hit before a solution or proof *)

type stats = {
  nodes : int;          (** search nodes (assignments tried) *)
  failures : int;       (** dead ends reached *)
  propagations : int;   (** constraint-propagation passes run *)
  elapsed : float;      (** wall-clock seconds *)
}

val solve :
  ?time_limit:float ->
  ?node_limit:int ->
  ?should_stop:(unit -> bool) ->
  ?value_classes:int array ->
  ?value_order:(var:int -> int list -> int list) ->
  Csp.t ->
  result * stats
(** [solve csp] searches for a single solution. [value_order] reorders a
    variable's candidate values before branching (default: ascending).
    [should_stop] is polled at every node; returning [true] aborts the
    search with {!Timeout} — this is how a parallel portfolio cancels an
    in-flight feasibility dive cooperatively once another worker has
    already settled the race. The CSP's domains are restored to their
    pre-search state on exit.

    [value_classes] (length [nvalues], entry [-1] = no class) declares
    value-interchangeability classes for symmetry breaking: at every
    branch node only one candidate per class is tried, since swapping two
    classmates maps refuted subtrees onto each other. The caller asserts
    that values sharing a class are interchangeable under {e every posted
    constraint} and that the CSP includes [alldifferent] (which guarantees
    branch candidates are assigned nowhere else, making the class swap fix
    the partial assignment); classes are additionally refined at entry so
    classmates have identical root domain columns, covering any asymmetric
    unary restriction. Completeness and the cost of the best solution are
    preserved; which of several symmetric solutions is found may differ
    from an unbroken search. *)
