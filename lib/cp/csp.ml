type propagation = Progress | Fixpoint | Failure

type constr =
  | Alldifferent
  | Forbidden of { x : int; y : int; bad : Domain.t array; bad_rev : Domain.t array }

type t = {
  nvars : int;
  nvalues : int;
  domains : Domain.t array;
  mutable constraints : constr list; (* reversed insertion order *)
  (* Incremental alldifferent state: the last maximum matching found, kept
     mutually consistent ([pair_left.(x) = v] iff [pair_right.(v) = x]).
     Never trusted blindly — each propagation validates it against the live
     domains and re-augments only the variables that lost their match, so
     staleness after backtracking or {!reset} is harmless. *)
  pair_left : int array;
  pair_right : int array;
  seen : int array; (* Kuhn DFS visit stamps, one slot per value *)
  mutable stamp : int;
}

let create ~nvars ~nvalues =
  if nvars <= 0 then invalid_arg "Csp.create: need at least one variable";
  if nvars > nvalues then invalid_arg "Csp.create: more variables than values";
  {
    nvars;
    nvalues;
    domains = Array.init nvars (fun _ -> Domain.full nvalues);
    constraints = [];
    pair_left = Array.make nvars (-1);
    pair_right = Array.make nvalues (-1);
    seen = Array.make nvalues (-1);
    stamp = 0;
  }

let nvars t = t.nvars
let nvalues t = t.nvalues
let domain t v = t.domains.(v)

let restrict t ~var ~allowed = ignore (Domain.keep_only t.domains.(var) allowed)

let add_alldifferent t = t.constraints <- Alldifferent :: t.constraints

(* Transposes of shared [bad] matrices are cached so that the many edge
   constraints sharing one matrix also share one transpose. *)
let transpose_cache : (Domain.t array, Domain.t array) Hashtbl.t = Hashtbl.create 8

let transpose nvalues bad =
  match Hashtbl.find_opt transpose_cache bad with
  | Some cached -> cached
  | None ->
      (* Bound the cache: solvers that iterate thresholds create a fresh
         matrix per iteration, and entries from finished iterations are
         dead weight. *)
      if Hashtbl.length transpose_cache > 256 then Hashtbl.reset transpose_cache;
      let rev = Array.init nvalues (fun _ -> Domain.empty nvalues) in
      Array.iteri
        (fun j row -> Domain.iter (fun j' -> Domain.add rev.(j') j) row)
        bad;
      Hashtbl.replace transpose_cache bad rev;
      rev

let add_forbidden_pairs t ~x ~y ~bad =
  if x < 0 || x >= t.nvars || y < 0 || y >= t.nvars then
    invalid_arg "Csp.add_forbidden_pairs: variable out of range";
  if Array.length bad <> t.nvalues then
    invalid_arg "Csp.add_forbidden_pairs: bad matrix has wrong width";
  t.constraints <- Forbidden { x; y; bad; bad_rev = transpose t.nvalues bad } :: t.constraints

(* ---- Propagators ---- *)

(* Binary negative-table propagation: value j stays in D(x) iff some value
   of D(y) is compatible, i.e. D(y) ⊄ bad(j). When D(y) is a singleton {v},
   pruning D(x) reduces to removing bad_rev(v) — the x-values forbidden
   with y = v — in one bitset operation. *)
let propagate_forbidden t ~x ~y ~bad ~bad_rev =
  let dx = t.domains.(x) and dy = t.domains.(y) in
  let changed = ref false in
  (* [loop_matrix] maps a candidate value of [d] to the set of [other]
     values it conflicts with; [singleton_matrix] maps a fixed value of
     [other] to the set of [d] values it rules out. *)
  let prune d other ~loop_matrix ~singleton_matrix =
    if Domain.is_singleton other then begin
      let v = Domain.min_value other in
      if Domain.subtract d singleton_matrix.(v) then changed := true
    end
    else
      Domain.iter
        (fun j ->
          if not (Domain.intersects_complement other loop_matrix.(j)) then
            if Domain.remove d j then changed := true)
        d
  in
  prune dx dy ~loop_matrix:bad ~singleton_matrix:bad_rev;
  prune dy dx ~loop_matrix:bad_rev ~singleton_matrix:bad;
  if Domain.is_empty dx || Domain.is_empty dy then Failure
  else if !changed then Progress
  else Fixpoint

(* Kuhn augmenting-path DFS from variable [x] over the live domains.
   Values are visited in ascending order (Domain.iter), so given identical
   starting state the matching found is deterministic. *)
let rec kuhn_augment t x =
  try
    Domain.iter
      (fun v ->
        if t.seen.(v) <> t.stamp then begin
          t.seen.(v) <- t.stamp;
          let owner = t.pair_right.(v) in
          if owner = -1 || kuhn_augment t owner then begin
            t.pair_left.(x) <- v;
            t.pair_right.(v) <- x;
            raise Exit
          end
        end)
      t.domains.(x);
    false
  with Exit -> true

(* Restore the cached matching to a maximum matching of the current
   variable/domain bipartite graph: drop pairs whose value left its
   variable's domain, then re-augment only the unmatched variables. Any
   maximum matching yields the same Régin prunings (the filtered edge set
   is matching-invariant), so the incremental matching changes cost, not
   results. Returns false when no perfect matching exists. *)
let revalidate_matching t =
  for x = 0 to t.nvars - 1 do
    let v = t.pair_left.(x) in
    if v <> -1 && not (Domain.mem t.domains.(x) v) then begin
      t.pair_left.(x) <- -1;
      t.pair_right.(v) <- -1
    end
  done;
  let ok = ref true in
  for x = 0 to t.nvars - 1 do
    if !ok && t.pair_left.(x) = -1 then begin
      t.stamp <- t.stamp + 1;
      if not (kuhn_augment t x) then ok := false
    end
  done;
  !ok

(* Régin's alldifferent filtering: maintain a maximum variable-to-value
   matching; fail if not all variables are matched; then remove every edge
   (x, v) that lies in no maximum matching. Edge classification uses the
   standard residual orientation — matched edges var→value, unmatched
   value→var — under which an unmatched edge survives iff its endpoints
   share an SCC or its value vertex is reachable from a free value. *)
let propagate_alldifferent t =
  let n = t.nvars and m = t.nvalues in
  if not (revalidate_matching t) then Failure
  else begin
    let pair_left = t.pair_left in
    let pair_right = t.pair_right in
    (* Residual digraph over n variable vertices then m value vertices. *)
    let total = n + m in
    let succ v =
      if v < n then [| n + pair_left.(v) |]
      else begin
        let value = v - n in
        (* Arcs value→var for every unmatched edge (var, value). *)
        let owners = ref [] in
        for x = n - 1 downto 0 do
          if pair_left.(x) <> value && Domain.mem t.domains.(x) value then
            owners := x :: !owners
        done;
        Array.of_list !owners
      end
    in
    (* Precompute successors once; Scc and BFS both need them. *)
    let succs = Array.init total succ in
    let comp = Graphs.Scc.tarjan ~n:total ~succ:(fun v -> succs.(v)) in
    (* Reachability from free value vertices. *)
    let reachable = Array.make total false in
    let queue = Queue.create () in
    for value = 0 to m - 1 do
      if pair_right.(value) = -1 then begin
        reachable.(n + value) <- true;
        Queue.add (n + value) queue
      end
    done;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun w ->
          if not reachable.(w) then begin
            reachable.(w) <- true;
            Queue.add w queue
          end)
        succs.(v)
    done;
    let changed = ref false in
    for x = 0 to n - 1 do
      Domain.iter
        (fun value ->
          if
            pair_left.(x) <> value
            && comp.(x) <> comp.(n + value)
            && not reachable.(n + value)
          then if Domain.remove t.domains.(x) value then changed := true)
        t.domains.(x)
    done;
    if Array.exists Domain.is_empty t.domains then Failure
    else if !changed then Progress
    else Fixpoint
  end

let propagate_one t = function
  | Alldifferent -> propagate_alldifferent t
  | Forbidden { x; y; bad; bad_rev } -> propagate_forbidden t ~x ~y ~bad ~bad_rev

let propagate t =
  let rec loop made_progress =
    let progress = ref false in
    let failed = ref false in
    List.iter
      (fun c ->
        if not !failed then
          match propagate_one t c with
          | Failure -> failed := true
          | Progress -> progress := true
          | Fixpoint -> ())
      t.constraints;
    if !failed then Failure
    else if !progress then loop true
    else if made_progress then Progress
    else Fixpoint
  in
  loop false

let reset t =
  let full = Domain.full t.nvalues in
  Array.iter (fun d -> Domain.blit ~src:full ~dst:d) t.domains;
  t.constraints <-
    List.filter (function Alldifferent -> true | Forbidden _ -> false) t.constraints
(* The cached matching survives reset on purpose: a matching valid under
   the shrunken domains is still a matching under the refilled ones, so
   the next threshold iteration starts with zero augmenting work. *)

let save t = Array.map Domain.copy t.domains

let restore t snapshot =
  Array.iteri (fun i d -> Domain.blit ~src:d ~dst:t.domains.(i)) snapshot

let assignment t =
  if Array.for_all Domain.is_singleton t.domains then
    Some (Array.map Domain.min_value t.domains)
  else None
