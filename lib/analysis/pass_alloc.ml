(* A003 — hot-path allocation: functions marked [[@cloudia.hot]] must not
   allocate inside their loop bodies.

   The incremental-cost kernel's claim (CHANGES.md: "allocation-free hot
   path") and the bench gate on GC words/move are invariants a refactor
   can silently break — one innocent [List.map (fun ...)] in the anneal
   move loop and the 10x moves/sec figure decays. The attribute marks the
   contract in the source; this pass enforces it.

   Inside [while]/[for] bodies of a hot function the following are
   flagged as allocations: closures ([fun]/[function]), tuples, records,
   arrays, list/constructor applications with a payload ([Some x],
   [x :: tl]), polymorphic variants with a payload, [lazy], [ref],
   string/list append ([^], [@]). Allocation under a raise path
   ([raise], [failwith], [invalid_arg], [assert]) is exempt — the cold
   path may build its exception.

   Known approximations (documented in DESIGN.md §12): boxed-float
   allocation is caught only where it is syntactic (a float stored into a
   flagged tuple/record/constructor); partial applications and implicit
   closure captures are not visible in the Parsetree. *)

open Parsetree

let attr_name = "cloudia.hot"

let line_of (e : expression) = e.pexp_loc.loc_start.pos_lnum

let is_hot_attr (a : attribute) = a.attr_name.txt = attr_name

let cold_heads = [ [ "raise" ]; [ "raise_notrace" ]; [ "failwith" ]; [ "invalid_arg" ] ]
let alloc_operators = [ [ "^" ]; [ "@" ] ]

let head_path env (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> (
      match f.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match Scope.resolve_value env txt with
          | Scope.Path p -> Some p
          | Scope.Bare n -> Some [ n ]
          | Scope.Shadowed -> None)
      | _ -> None)
  | _ -> None

(* What does evaluating [e] allocate, syntactically? *)
let allocation env (e : expression) =
  if Ast_compat.is_function e then Some "a closure"
  else
    match e.pexp_desc with
    | Pexp_tuple _ -> Some "a tuple"
    | Pexp_record _ -> Some "a record"
    | Pexp_array _ -> Some "an array"
    | Pexp_construct ({ txt; _ }, Some _) ->
        Some
          (Printf.sprintf "a `%s' block"
             (String.concat "." (Longident.flatten txt)))
    | Pexp_variant (_, Some _) -> Some "a polymorphic-variant block"
    | Pexp_lazy _ -> Some "a lazy block"
    | Pexp_apply _ -> (
        match head_path env e with
        | Some [ "ref" ] -> Some "a ref cell"
        | Some p when List.mem p alloc_operators ->
            Some (Printf.sprintf "a `%s' append" (String.concat "." p))
        | _ -> None)
    | _ -> None

let check_hot_function ~path ~fname ~env0 body add =
  let loop_depth = ref 0 and loops = ref [] in
  let cold_depth = ref 0 and colds = ref [] in
  let enter_expr env e =
    let is_cold =
      (match head_path env e with Some p -> List.mem p cold_heads | None -> false)
      || match e.pexp_desc with Pexp_assert _ -> true | _ -> false
    in
    if is_cold then begin
      incr cold_depth;
      colds := e :: !colds
    end;
    if !loop_depth > 0 && !cold_depth = 0 then begin
      match allocation env e with
      | Some what ->
          add
            (Finding.make ~pass:"A003" ~path ~line:(line_of e)
               (Printf.sprintf
                  "[@%s] function `%s' allocates %s in a loop body — hoist it \
                   out of the loop or drop the hot attribute" attr_name fname
                  what))
      | None -> ()
    end;
    match e.pexp_desc with
    | Pexp_while _ | Pexp_for _ ->
        incr loop_depth;
        loops := e :: !loops
    | _ -> ()
  in
  let leave_expr e =
    (match !loops with
    | l :: tl when l == e ->
        decr loop_depth;
        loops := tl
    | _ -> ());
    match !colds with
    | c :: tl when c == e ->
        decr cold_depth;
        colds := tl
    | _ -> ()
  in
  Walk.iter_expression ~env:(Scope.clear_values env0)
    { Walk.default_hooks with enter_expr; leave_expr }
    body

let check ~path str =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let enter_item env (item : structure_item) =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            if
              List.exists is_hot_attr vb.pvb_attributes
              || List.exists is_hot_attr vb.pvb_expr.pexp_attributes
            then
              let fname =
                match Walk.pattern_vars vb.pvb_pat with
                | n :: _ -> n
                | [] -> "_"
              in
              check_hot_function ~path ~fname ~env0:env vb.pvb_expr add)
          vbs
    | _ -> ()
  in
  Walk.iter_structure { Walk.default_hooks with enter_item } str;
  Finding.sort !findings

let pass =
  {
    Registry.id = "A003";
    description =
      "hot-path allocation: [@cloudia.hot] functions must not allocate \
       closures, tuples, records, or constructor blocks inside loop bodies";
    applies = (fun _ -> true);
    check;
  }

let () = Registry.register pass
