(** Inline suppression comments:
    [(* cloudia-lint: allow A001 A003 reason words *)].

    A suppression names one or more pass ids and a mandatory free-text
    reason; it covers findings of those passes on the comment's own line
    and on the following line. Comments without a reason are ignored (not
    suppressions), so every checked-in exception explains itself. *)

type t = { line : int; passes : string list; reason : string }

val scan : string -> t list
(** All suppressions in a source file, in line order. *)

val covers : t -> Finding.t -> bool

val filter : t list -> Finding.t list -> Finding.t list * Finding.t list
(** [(kept, suppressed)]. *)
