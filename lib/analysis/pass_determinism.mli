(** A002 — determinism pass: wall-clock reads, global [Random], and
    polymorphic [compare] on solver data, resolved through opens, module
    aliases and shadowing. AST successor of the token rules R001/R002. *)

val check : path:string -> Parsetree.structure -> Finding.t list
val pass : Registry.pass
