(** A single analyzer finding: one pass, one location, one message.

    Findings are the analyzer-side analogue of {!Lint.Source_rules.violation}
    — produced by AST passes rather than token scans — and render into the
    same {!Lint.Diagnostic.t} pipeline for human and JSON output. *)

type t = {
  pass : string;  (** pass id, e.g. ["A001"] *)
  path : string;  (** repository-relative path with ['/'] separators *)
  line : int;  (** 1-based; [0] for whole-file findings *)
  message : string;
}

val make : pass:string -> path:string -> line:int -> string -> t

val compare : t -> t -> int
(** Total order: pass, then path, then line, then message — byte-stable
    across machines (no hashing, no address identity). *)

val sort : t list -> t list
(** Sorted and deduplicated under {!compare}. *)

val fingerprint : t -> string
(** Baseline key: [pass \t path \t message]. Line numbers are excluded so
    baselines survive edits elsewhere in the file. *)

val to_string : t -> string

val to_diagnostic : ?severity:Lint.Diagnostic.severity -> t -> Lint.Diagnostic.t
(** Defaults to [Error] — analyzer findings gate CI. *)
