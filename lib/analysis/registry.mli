(** The pass registry.

    A pass is a named AST check over one parsed implementation file.
    Passes self-register at module initialization time;
    {!Analyzer.builtin_passes} forces the built-in pass modules to link so
    a library consumer sees them without naming each module. *)

type pass = {
  id : string;  (** stable diagnostic code, e.g. ["A001"] *)
  description : string;
  applies : string -> bool;
      (** path filter over repository-relative ['/'] paths; files outside
          the pass's scope are skipped entirely *)
  check : path:string -> Parsetree.structure -> Finding.t list;
}

val register : pass -> unit
(** Raises [Invalid_argument] on a duplicate id. *)

val all : unit -> pass list
(** All registered passes, in id order. *)

val find : string -> pass option
