(* A001 — domain-safety: top-level mutable state must not be reachable
   from a closure passed to [Domain.spawn] unless it is [Atomic],
   accessed under [Mutex.protect], or explicitly allowed.

   ClouDiA's parallel portfolio races solver domains against a shared
   incumbent; the paper's reproducibility claims assume that the only
   cross-domain state is the explicitly synchronized incumbent. A
   top-level [ref]/[Hashtbl]/[Buffer]/mutable record that a spawned
   closure can reach is a data race TSan may or may not catch on a given
   schedule — this pass proves its absence per-PR, syntactically.

   Method, per file:
   1. collect top-level value bindings, classifying their right-hand
      sides: [ref _], [Hashtbl.create], [Buffer.create], [Queue.create],
      [Stack.create], [Bytes.create/make], [Array.make/init/create_float],
      and record literals mentioning a field declared [mutable] in this
      file are mutable; [Atomic.make] is safe by construction;
   2. for every top-level binding, record which other top-level names its
      body references and whether each reference sits under an argument
      of [Mutex.protect] (guarded);
   3. for every [Domain.spawn] argument, flood-fill the unguarded
      reference graph from the closure; reaching a mutable top-level
      binding is a finding at the spawn site.

   The analysis is per-file: cross-module mutable state is sealed behind
   .mli interfaces (rule R005) and owned by its defining module. *)

open Parsetree

(* Heads of applications whose result is mutable shared state. *)
let mutable_makers =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Buffer"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
  ]

let spawn_heads = [ [ "Domain"; "spawn" ] ]
let guard_heads = [ [ "Mutex"; "protect" ] ]

let line_of (e : expression) = e.pexp_loc.loc_start.pos_lnum

(* Resolve the head of [e] (unwrapping type constraints) to a global
   path, treating a bare ident as the global of the same name when it is
   not shadowed. *)
let rec head_path env (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Scope.resolve_value env txt with
      | Scope.Path p -> Some p
      | Scope.Bare n -> Some [ n ]
      | Scope.Shadowed -> None)
  | Pexp_constraint (e', _) -> head_path env e'
  | _ -> None

let apply_head env (e : expression) =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> head_path env f
  | _ -> None

type def = {
  def_line : int;
  mutable_rhs : string option; (* Some maker-name when the RHS is mutable *)
  mutable refs : (string * bool) list; (* (top-level name, guarded) *)
}

let classify_rhs env mutable_labels (e : expression) =
  let rec go (e : expression) =
    match e.pexp_desc with
    | Pexp_constraint (e', _) -> go e'
    | Pexp_record (fields, _) ->
        if
          List.exists
            (fun ((lid : Longident.t Location.loc), _) ->
              match lid.Location.txt with
              | Lident l | Ldot (_, l) -> List.mem l mutable_labels
              | _ -> false)
            fields
        then Some "a record with mutable fields"
        else None
    | Pexp_apply (f, _) -> (
        match head_path env f with
        | Some p when List.mem p mutable_makers -> Some (String.concat "." p)
        | _ -> None)
    | _ -> None
  in
  go e

let check ~path str =
  let findings = ref [] in
  (* name -> def, in definition order for deterministic reports. *)
  let defs : (string, def) Hashtbl.t = Hashtbl.create 64 in
  let mutable_labels = ref [] in
  (* Spawn sites: (line, closure's directly-referenced top-level names,
     collected unguarded). *)
  let spawns : (int * string list ref) list ref = ref [] in
  let collect_refs env0 e ~into =
    (* Walk [e] from a values-free environment: expression-local lets
       shadow correctly, while references to this file's top-level names
       surface as [Bare]. *)
    let guard_depth = ref 0 in
    let guards = ref [] and spawn_stack = ref [] in
    let enter_expr env e =
      (match apply_head env e with
      | Some p when List.mem p guard_heads ->
          incr guard_depth;
          guards := e :: !guards
      | Some p when List.mem p spawn_heads ->
          let acc = ref [] in
          spawns := (line_of e, acc) :: !spawns;
          spawn_stack := (e, acc) :: !spawn_stack
      | _ -> ());
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident n; _ }
        when (match Scope.resolve_value env (Longident.Lident n) with
             | Scope.Bare _ -> true
             | _ -> false) ->
          let guarded = !guard_depth > 0 in
          into := (n, guarded) :: !into;
          if not guarded then
            List.iter (fun (_, acc) -> acc := n :: !acc) !spawn_stack
      | _ -> ()
    in
    let leave_expr e =
      (match !guards with
      | g :: tl when g == e ->
          decr guard_depth;
          guards := tl
      | _ -> ());
      match !spawn_stack with
      | (s, _) :: tl when s == e -> spawn_stack := tl
      | _ -> ()
    in
    Walk.iter_expression ~env:(Scope.clear_values env0)
      { Walk.default_hooks with enter_expr; leave_expr }
      e
  in
  let enter_item env (item : structure_item) =
    match item.pstr_desc with
    | Pstr_type (_, decls) ->
        List.iter
          (fun d ->
            match d.ptype_kind with
            | Ptype_record labels ->
                List.iter
                  (fun l ->
                    if l.pld_mutable = Asttypes.Mutable then
                      mutable_labels := l.pld_name.txt :: !mutable_labels)
                  labels
            | _ -> ())
          decls
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let names = Walk.pattern_vars vb.pvb_pat in
            let refs = ref [] in
            collect_refs env vb.pvb_expr ~into:refs;
            let mutable_rhs = classify_rhs env !mutable_labels vb.pvb_expr in
            List.iter
              (fun name ->
                if not (Hashtbl.mem defs name) then
                  Hashtbl.add defs name
                    {
                      def_line = vb.pvb_loc.loc_start.pos_lnum;
                      mutable_rhs;
                      refs = !refs;
                    })
              names)
          vbs
    | _ -> ()
  in
  Walk.iter_structure { Walk.default_hooks with enter_item } str;
  (* Flood the unguarded reference graph from each spawn closure. *)
  List.iter
    (fun (spawn_line, direct) ->
      let seen = Hashtbl.create 16 in
      let rec visit name =
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          match Hashtbl.find_opt defs name with
          | None -> ()
          | Some d -> (
              match d.mutable_rhs with
              | Some what ->
                  findings :=
                    Finding.make ~pass:"A001" ~path ~line:spawn_line
                      (Printf.sprintf
                         "closure passed to Domain.spawn reaches top-level \
                          mutable state `%s' (%s, defined at line %d) without \
                          Atomic or Mutex.protect — a cross-domain data race"
                         name what d.def_line)
                    :: !findings
              | None ->
                  List.iter (fun (n, guarded) -> if not guarded then visit n) d.refs)
        end
      in
      List.iter visit !direct)
    (List.rev !spawns);
  Finding.sort !findings

let pass =
  {
    Registry.id = "A001";
    description =
      "domain-safety: top-level ref/Hashtbl/Buffer/mutable-record state \
       syntactically reachable from a Domain.spawn closure must be Atomic, \
       Mutex.protect-guarded, or explicitly allowed";
    applies = (fun _ -> true);
    check;
  }

let () = Registry.register pass
