(** Committed baseline of tolerated findings.

    A baseline file holds one {!Finding.fingerprint} per line (sorted,
    ['#'] comments allowed); findings whose fingerprint appears in the
    baseline are reported as suppressed rather than failing the run.
    [parse] and [render] round-trip: [parse (render t)] equals [t]. *)

type t

val empty : t
val is_empty : t -> bool
val size : t -> int

val of_findings : Finding.t list -> t
(** Baseline covering exactly the given findings (what
    [analyzer --update-baseline] writes). *)

val mem : t -> Finding.t -> bool
val parse : string -> t
val render : t -> string

val filter : t -> Finding.t list -> Finding.t list * Finding.t list
(** [(kept, suppressed)]. *)
