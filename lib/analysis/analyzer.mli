(** Analyzer front end: parse with the compiler's parser
    ([compiler-libs.common]), run the registered passes, subtract inline
    suppressions, the allowlist and the committed baseline. The library
    returns data; [tools/analyzer] prints and sets the exit code.

    Files that fail to parse yield a single [A000] finding (the build
    would reject them too); the token-scanner rules that need no parse
    (R003–R005) stay in {!Lint.Source_rules}. *)

val builtin_passes : unit -> Registry.pass list
(** All built-in passes (A001 domain-safety, A002 determinism, A003
    hot-path allocation, A004 matrix representation), forcing their
    registration. *)

val parse_implementation :
  path:string -> string -> (Parsetree.structure, int) result
(** [Error line] points at the lexer position of the syntax error. *)

val check_source :
  ?passes:Registry.pass list -> path:string -> string -> Finding.t list
(** Raw findings for one source file, before any suppression. *)

val analyze_source :
  ?passes:Registry.pass list ->
  path:string ->
  string ->
  Finding.t list * Finding.t list
(** [(kept, inline_suppressed)] for one file. *)

type report = {
  files : int;
  kept : Finding.t list;
  suppressed : Finding.t list;
}

val run :
  ?passes:Registry.pass list ->
  ?allow:Lint.Source_rules.allow list ->
  ?baseline:Baseline.t ->
  (string * string) list ->
  report
(** Analyze [(path, contents)] pairs; findings surviving inline
    suppressions are further filtered by the allowlist (same
    [RULE path-prefix] format as repolint) and the baseline. *)

val walk : string -> string list
(** Recursively list [.ml] files under a directory, sorted at every
    level ([_build] and dot-directories skipped) — byte-stable output
    across machines. *)

val load_tree : root:string -> string list -> (string * string) list
(** Read every [.ml] file under [roots] (relative to [root]), returning
    repository-relative paths with their contents. *)
