(** A001 — domain-safety pass: per-file proof that no top-level mutable
    state ([ref], [Hashtbl], [Buffer], mutable records, ...) is
    syntactically reachable from a closure passed to [Domain.spawn]
    without [Atomic] or [Mutex.protect]. Reachability follows unguarded
    references through this file's top-level bindings. *)

val check : path:string -> Parsetree.structure -> Finding.t list
val pass : Registry.pass
