(** A004 — matrix-representation pass: boxed [costs.(i).(j)] indexing
    outside [lib/lat_matrix/] and the raw-CSV layer, detected on the
    desugared [Array.get]/[Array.set] applications. AST successor of
    token rule R006. *)

val check : path:string -> Parsetree.structure -> Finding.t list
val pass : Registry.pass
