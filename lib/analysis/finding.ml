type t = { pass : string; path : string; line : int; message : string }

let make ~pass ~path ~line message = { pass; path; line; message }

let compare a b =
  match String.compare a.pass b.pass with
  | 0 -> (
      match String.compare a.path b.path with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let sort fs = List.sort_uniq compare fs

(* The fingerprint deliberately omits the line number so a committed
   baseline survives unrelated edits above the finding; two findings with
   the same message in one file share a fingerprint and are baselined
   together. *)
let fingerprint f = Printf.sprintf "%s\t%s\t%s" f.pass f.path f.message

let to_string f = Printf.sprintf "%s %s:%d %s" f.pass f.path f.line f.message

let to_diagnostic ?(severity = Lint.Diagnostic.Error) f =
  let context =
    if f.line = 0 then f.path else Printf.sprintf "%s:%d" f.path f.line
  in
  Lint.Diagnostic.make severity ~code:f.pass ~context f.message
