(** Scope-threading traversal over a Parsetree.

    Wraps [Ast_iterator.default_iterator] so every constructor recurses
    without naming it, while maintaining a {!Scope.t} through [open],
    [module X = ...], [let module], [let]/[let rec] and inner
    [struct ... end] blocks. Passes receive the environment in force at
    each node.

    Approximation (documented in walk.ml): function parameters and
    match-case patterns do not bind names into the environment — only
    [let]-bound values and module bindings shadow. *)

type hooks = {
  enter_expr : Scope.t -> Parsetree.expression -> unit;
      (** called at every expression, before its children *)
  leave_expr : Parsetree.expression -> unit;
      (** called after the expression's children — enter/leave bracket
          properly, so passes may keep a stack *)
  enter_item : Scope.t -> Parsetree.structure_item -> unit;
      (** called at every structure item (top level and in submodules),
          before its children *)
}

val default_hooks : hooks
(** All no-ops; build pass hooks with record update. *)

val pattern_vars : Parsetree.pattern -> string list
(** All value names the pattern binds. *)

val binding_names : Parsetree.value_binding list -> string list

val iter_structure : ?init:Scope.t -> hooks -> Parsetree.structure -> unit

val iter_expression : env:Scope.t -> hooks -> Parsetree.expression -> unit
(** Traverse one expression starting from a captured environment (used by
    passes that re-walk a binding found via [enter_item]). *)
