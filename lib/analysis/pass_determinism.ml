(* A002 — determinism: the AST-accurate successor of token rules
   R001/R002, plus a polymorphic-compare check on the solver libraries.

   Seed-reproducible solver runs (ClouDiA's evaluation rests on them) ban
   three things the type system cannot:

   - wall-clock reads ([Unix.gettimeofday]) outside lib/obs/ and bench/ —
     deadlines and telemetry use the monotonic [Obs.Clock];
   - the global [Random] module outside lib/prng/ — all randomness flows
     through seeded, splittable [Prng] streams;
   - bare polymorphic [compare] inside lib/{cloudia,cp,lp,stats} — the
     solver hot paths order float-bearing data, and polymorphic compare
     is both slow (generic traversal) and a determinism hazard the moment
     a comparand grows a functional or cyclic component. Use
     [Float.compare]/[Int.compare]/a typed comparator.

   Unlike the token rules this pass resolves opens, aliases and
   shadowing: [module U = Unix ... U.gettimeofday ()] is caught,
   [open Unix ... gettimeofday ()] is caught, and a file-local
   [module Random = ...] shim is *not* flagged. *)

open Parsetree

let has_prefix prefix path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let clock_exempt path = has_prefix "lib/obs/" path || has_prefix "bench/" path
let random_exempt path = has_prefix "lib/prng/" path

let solver_lib path =
  List.exists
    (fun p -> has_prefix p path)
    [ "lib/cloudia/"; "lib/cp/"; "lib/lp/"; "lib/stats/" ]

(* Opening any of these makes a bare [compare] monomorphic. *)
let compare_providers =
  [
    [ "Float" ];
    [ "Int" ];
    [ "String" ];
    [ "Char" ];
    [ "Bool" ];
    [ "Int32" ];
    [ "Int64" ];
    [ "Nativeint" ];
  ]

let line_of (e : expression) = e.pexp_loc.loc_start.pos_lnum

let check ~path str =
  let findings = ref [] in
  let add line message =
    findings := Finding.make ~pass:"A002" ~path ~line message :: !findings
  in
  let check_clock = not (clock_exempt path) in
  let check_random = not (random_exempt path) in
  let check_compare = solver_lib path in
  let on_open env line origin =
    match origin with
    | Scope.Global [ "Random" ] when check_random ->
        ignore env;
        add line "open Random outside lib/prng/ (use seeded Prng streams)"
    | _ -> ()
  in
  let enter_expr env e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match Scope.resolve_value env txt with
        | Scope.Shadowed -> ()
        | Scope.Path [ "Unix"; "gettimeofday" ] when check_clock ->
            add (line_of e)
              "Unix.gettimeofday (use the monotonic Obs.Clock; wall-clock \
               jumps corrupt deadlines and telemetry)"
        | Scope.Bare "gettimeofday" when check_clock && Scope.opens_module env [ "Unix" ]
          ->
            add (line_of e)
              "gettimeofday via `open Unix' (use the monotonic Obs.Clock; \
               wall-clock jumps corrupt deadlines and telemetry)"
        | Scope.Path ("Random" :: _) when check_random ->
            add (line_of e)
              (Printf.sprintf
                 "global Random (%s) outside lib/prng/ (use seeded Prng \
                  streams so runs are seed-reproducible)"
                 (String.concat "." (Longident.flatten txt)))
        | Scope.Path [ "compare" ] when check_compare ->
            add (line_of e)
              "polymorphic Stdlib.compare in a solver library (use \
               Float.compare / Int.compare / a typed comparator on \
               float-bearing solver data)"
        | Scope.Bare "compare"
          when check_compare && not (Scope.any_open_of env compare_providers) ->
            add (line_of e)
              "polymorphic compare in a solver library (use Float.compare / \
               Int.compare / a typed comparator on float-bearing solver data)"
        | _ -> ())
    | Pexp_open (od, _) -> (
        match od.popen_expr.pmod_desc with
        | Pmod_ident { txt; _ } ->
            on_open env od.popen_expr.pmod_loc.loc_start.pos_lnum
              (Scope.resolve_module env txt)
        | _ -> ())
    | _ -> ()
  in
  let enter_item env (item : structure_item) =
    match item.pstr_desc with
    | Pstr_open od -> (
        match od.popen_expr.pmod_desc with
        | Pmod_ident { txt; _ } ->
            on_open env item.pstr_loc.loc_start.pos_lnum
              (Scope.resolve_module env txt)
        | _ -> ())
    | _ -> ()
  in
  Walk.iter_structure { Walk.default_hooks with enter_expr; enter_item } str;
  Finding.sort !findings

let pass =
  {
    Registry.id = "A002";
    description =
      "determinism: wall-clock reads, global Random, and polymorphic compare \
       on solver data — resolved through opens, aliases and shadowing \
       (successor of token rules R001/R002)";
    applies =
      (fun path ->
        (not (clock_exempt path)) || (not (random_exempt path)) || solver_lib path);
    check;
  }

let () = Registry.register pass
