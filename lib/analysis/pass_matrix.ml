(* A004 — matrix representation: the AST successor of token rule R006.

   The latency matrix is a flat Bigarray behind [Lat_matrix]; boxed
   [costs.(i).(j)] indexing outside lib/lat_matrix/ (and the raw-CSV
   layer in lib/cloudia/matrix_io) re-introduces the float array array
   representation the flat-matrix refactor removed. The parser desugars
   [a.(i)] into an application of [Array.get]/[Array.set], so the check
   is exact where the token scanner pattern-matched on "costs.(": an
   array access whose subject is a value or record field named [costs]. *)

open Parsetree

let has_prefix prefix path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let exempt path =
  has_prefix "lib/lat_matrix/" path || has_prefix "lib/cloudia/matrix_io" path

let array_access = [ "get"; "set"; "unsafe_get"; "unsafe_set" ]

let is_costs (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident "costs"; _ } -> true
  | Pexp_field (_, { txt; _ }) -> (
      match (txt : Longident.t) with
      | Lident "costs" | Ldot (_, "costs") -> true
      | _ -> false)
  | _ -> false

let check ~path str =
  let findings = ref [] in
  let enter_expr env (e : expression) =
    match e.pexp_desc with
    | Pexp_apply (f, (Asttypes.Nolabel, subject) :: _) -> (
        match f.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match Scope.resolve_value env txt with
            | Scope.Path [ "Array"; op ]
              when List.mem op array_access && is_costs subject ->
                findings :=
                  Finding.make ~pass:"A004" ~path
                    ~line:e.pexp_loc.loc_start.pos_lnum
                    "boxed costs.(i).(j) indexing outside lib/lat_matrix/ — \
                     the latency matrix is a flat Bigarray; use the \
                     Lat_matrix API (successor of token rule R006)"
                  :: !findings
            | _ -> ())
        | _ -> ())
    | _ -> ()
  in
  Walk.iter_structure { Walk.default_hooks with enter_expr } str;
  Finding.sort !findings

let pass =
  {
    Registry.id = "A004";
    description =
      "matrix representation: boxed costs.(i).(j) indexing outside \
       lib/lat_matrix/ (successor of token rule R006)";
    applies = (fun path -> not (exempt path));
    check;
  }

let () = Registry.register pass
