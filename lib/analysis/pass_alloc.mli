(** A003 — hot-path allocation pass: inside [while]/[for] bodies of a
    function marked [[@cloudia.hot]], closures, tuples, records, arrays,
    constructor blocks, [lazy], [ref] and [^]/[@] appends are findings
    (raise paths exempt). *)

val check : path:string -> Parsetree.structure -> Finding.t list
val pass : Registry.pass
