(** Lexical environments for syntactic (untyped) name resolution.

    Tracks the three things a token scanner cannot: module aliases
    ([module U = Unix] makes [U.gettimeofday] a wall-clock read), opens
    ([open Unix] makes bare [gettimeofday] one), and shadowing
    ([module Random = Safe_shim] makes [Random.int] harmless). Names
    defined in the file under analysis resolve to {!Local}/{!Shadowed};
    module names with no binding in scope are assumed global. *)

type origin =
  | Global of string list
      (** a stdlib/external module path, [Stdlib.] prefix normalized away *)
  | Local  (** defined (or rebound) in the file under analysis *)

type t

val empty : t

val resolve_module : t -> Longident.t -> origin
(** Resolve a module longident through the alias environment. *)

type value_ref =
  | Path of string list  (** qualified use of a global module's member *)
  | Bare of string  (** unqualified, not let-bound — opens may supply it *)
  | Shadowed  (** resolves to something bound in this file *)

val resolve_value : t -> Longident.t -> value_ref

val bind_module : t -> string -> origin -> t
val bind_value : t -> string -> t
val bind_values : t -> string list -> t
val open_origin : t -> origin -> t

val clear_values : t -> t
(** Drop value bindings, keeping modules and opens — used when re-walking
    an expression to distinguish file-top-level names (then [Bare]) from
    expression-local lets (then [Shadowed]). *)

val opens_module : t -> string list -> bool
(** Is [path] among the opened modules? *)

val any_open_of : t -> string list list -> bool
(** Is any of [paths] among the opened modules? *)
