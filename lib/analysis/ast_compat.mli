(** Parsetree differences between the OCaml versions in the CI matrix.

    The implementation is selected at build time from
    [ast_compat_51.ml.in] (< 5.2) or [ast_compat_52.ml.in] (>= 5.2) by a
    dune rule keyed on [%{ocaml_version}]; this interface is common. *)

val is_function : Parsetree.expression -> bool
(** Is this expression a [fun]/[function] — i.e. does evaluating it
    allocate a closure? *)
