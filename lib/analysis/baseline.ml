(* Committed debt ledger: a set of finding fingerprints that are known
   and temporarily tolerated. Fingerprints omit line numbers (see
   Finding.fingerprint) so the ledger survives edits elsewhere in a file;
   the file format is plain text, one tab-separated fingerprint per line,
   sorted, with '#' comments — diff-friendly and byte-stable. *)

module Set = struct
  include Stdlib.Set.Make (String)
end

type t = Set.t

let empty = Set.empty
let is_empty = Set.is_empty
let size = Set.cardinal
let of_findings fs = List.fold_left (fun s f -> Set.add (Finding.fingerprint f) s) Set.empty fs
let mem t f = Set.mem (Finding.fingerprint f) t

let parse text =
  String.split_on_char '\n' text
  |> List.fold_left
       (fun s line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then s else Set.add line s)
       Set.empty

let header =
  "# cloudia-analyzer baseline — one finding fingerprint (pass\\tpath\\tmessage)\n\
   # per line. Entries are tolerated debt: new findings must not be added\n\
   # here without a reason in the PR; remove entries as they are fixed.\n"

let render t =
  let lines = Set.elements t in
  header ^ String.concat "\n" lines ^ if lines = [] then "" else "\n"

let filter t findings =
  List.partition (fun f -> not (mem t f)) findings
