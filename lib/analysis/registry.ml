type pass = {
  id : string;
  description : string;
  applies : string -> bool;
  check : path:string -> Parsetree.structure -> Finding.t list;
}

let passes : pass list ref = ref []

let register p =
  if List.exists (fun q -> q.id = p.id) !passes then
    invalid_arg (Printf.sprintf "Analysis.Registry.register: duplicate pass %s" p.id);
  passes := p :: !passes

let all () = List.sort (fun a b -> String.compare a.id b.id) !passes
let find id = List.find_opt (fun p -> p.id = id) !passes
