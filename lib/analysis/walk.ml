(* Scope-threading AST traversal. Built on [Ast_iterator.default_iterator]
   so every Parsetree constructor is recursed into without this module
   having to name it (naming constructors is what breaks across compiler
   versions); only the scope-introducing forms are handled explicitly:

     - [open M] / [let open M in e]      (opens, expression ones restored)
     - [module X = ...] / [let module]   (aliases and shadowing)
     - [let x = ... ] / [let rec]        (value shadowing)
     - [module _ = struct ... end]       (inner structures restore scope)

   Known approximation: function parameters and match-case patterns do
   not bind into the environment, so [fun compare -> compare a b] is
   resolved as the global [compare]. This errs toward reporting (inline
   suppressions exist); let-bound names, the common shadowing shape, are
   tracked. *)

open Parsetree

type hooks = {
  enter_expr : Scope.t -> expression -> unit;
  leave_expr : expression -> unit;
  enter_item : Scope.t -> structure_item -> unit;
}

let default_hooks =
  {
    enter_expr = (fun _ _ -> ());
    leave_expr = (fun _ -> ());
    enter_item = (fun _ _ -> ());
  }

(* All value names a pattern binds (Ppat_var and Ppat_alias, at any
   depth). *)
let pattern_vars p =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              acc := txt :: !acc
          | _ -> ());
          super.pat self p);
    }
  in
  it.pat it p;
  !acc

let binding_names vbs = List.concat_map (fun vb -> pattern_vars vb.pvb_pat) vbs

let make_iterator env hooks =
  let super = Ast_iterator.default_iterator in
  let module_origin (me : module_expr) =
    match me.pmod_desc with
    | Pmod_ident { txt; _ } -> Scope.resolve_module !env txt
    | _ -> Scope.Local
  in
  let open_of (od : open_declaration) =
    match od.popen_expr.pmod_desc with
    | Pmod_ident { txt; _ } -> Scope.resolve_module !env txt
    | _ -> Scope.Local
  in
  {
    super with
    expr =
      (fun self e ->
        hooks.enter_expr !env e;
        (match e.pexp_desc with
        | Pexp_open (od, body) ->
            let saved = !env in
            let origin = open_of od in
            self.module_expr self od.popen_expr;
            env := Scope.open_origin saved origin;
            self.expr self body;
            env := saved
        | Pexp_letmodule (name, me, body) ->
            let saved = !env in
            let origin = module_origin me in
            self.module_expr self me;
            (match name.txt with
            | Some n -> env := Scope.bind_module saved n origin
            | None -> ());
            self.expr self body;
            env := saved
        | Pexp_let (rf, vbs, body) ->
            let saved = !env in
            let names = binding_names vbs in
            if rf = Asttypes.Recursive then env := Scope.bind_values saved names;
            List.iter (fun vb -> self.value_binding self vb) vbs;
            env := Scope.bind_values saved names;
            self.expr self body;
            env := saved
        | _ -> super.expr self e);
        hooks.leave_expr e);
    module_expr =
      (fun self me ->
        match me.pmod_desc with
        | Pmod_structure _ ->
            let saved = !env in
            super.module_expr self me;
            env := saved
        | _ -> super.module_expr self me);
    structure_item =
      (fun self item ->
        hooks.enter_item !env item;
        match item.pstr_desc with
        | Pstr_value (rf, vbs) ->
            let names = binding_names vbs in
            if rf = Asttypes.Recursive then env := Scope.bind_values !env names
            else ();
            List.iter (fun vb -> self.value_binding self vb) vbs;
            if rf <> Asttypes.Recursive then env := Scope.bind_values !env names
        | Pstr_module mb ->
            let origin = module_origin mb.pmb_expr in
            self.module_binding self mb;
            (match mb.pmb_name.txt with
            | Some n -> env := Scope.bind_module !env n origin
            | None -> ())
        | Pstr_open od ->
            let origin = open_of od in
            self.module_expr self od.popen_expr;
            env := Scope.open_origin !env origin
        | _ -> super.structure_item self item);
  }

let iter_structure ?(init = Scope.empty) hooks str =
  let env = ref init in
  let it = make_iterator env hooks in
  it.structure it str

let iter_expression ~env hooks e =
  let env = ref env in
  let it = make_iterator env hooks in
  it.expr it e
