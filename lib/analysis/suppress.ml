(* Inline suppressions: [(* cloudia-lint: allow A003 reason... *)].
   A suppression covers findings of the named pass(es) on its own line and
   on the following line, so both styles read naturally:

     let x = whatever ()  (* cloudia-lint: allow A002 replayed fixture *)

     (* cloudia-lint: allow A001 guarded by the pool's startup barrier *)
     let shared = Hashtbl.create 16

   A reason is mandatory — a bare id is not a suppression (and scans of
   the repository should stay greppable for the *why*, not just the
   what). *)

type t = { line : int; passes : string list; reason : string }

let marker = "cloudia-lint:"

let is_pass_id s =
  String.length s >= 2
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))

(* Split on spaces and commas, dropping empties. *)
let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun t -> t <> "")

let strip_comment_close s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && String.sub s (n - 2) 2 = "*)" then
    String.trim (String.sub s 0 (n - 2))
  else s

let parse_line lineno text =
  (* Find the marker anywhere in the line (it lives inside a comment). *)
  let mlen = String.length marker and n = String.length text in
  let rec find i =
    if i + mlen > n then None
    else if String.sub text i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
      let rest = strip_comment_close (String.sub text start (n - start)) in
      match tokens rest with
      | "allow" :: after -> (
          let rec split_ids acc = function
            | id :: tl when is_pass_id id -> split_ids (id :: acc) tl
            | reason -> (List.rev acc, reason)
          in
          match split_ids [] after with
          | [], _ -> None (* no pass ids: not a suppression *)
          | _, [] -> None (* no reason: not a suppression *)
          | passes, reason_words ->
              Some { line = lineno; passes; reason = String.concat " " reason_words })
      | _ -> None)

let scan source =
  String.split_on_char '\n' source
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.filter_map Fun.id

let covers t (f : Finding.t) =
  (f.Finding.line = t.line || f.Finding.line = t.line + 1)
  && List.mem f.Finding.pass t.passes

let filter suppressions findings =
  List.partition
    (fun f -> not (List.exists (fun t -> covers t f) suppressions))
    findings
