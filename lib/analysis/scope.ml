(* Lexical environment for syntactic name resolution over a Parsetree.
   The analyzer is untyped, so "resolution" means tracking exactly the
   three things token scanning cannot see: module aliases
   ([module U = Unix]), opens ([open Unix]), and shadowing
   ([module Random = ...], [let gettimeofday = ...]). Anything defined in
   the file under analysis resolves to [Local]; a module name with no
   binding in scope is assumed to be the global (stdlib or external)
   module of that name. *)

type origin = Global of string list | Local

type t = {
  modules : (string * origin) list; (* innermost binding first *)
  opens : origin list; (* innermost open first *)
  values : string list; (* let-bound value names in scope *)
}

let empty = { modules = []; opens = []; values = [] }

(* [Stdlib.Random.int] and [Random.int] are the same global; normalize the
   explicit prefix away so passes match one spelling. *)
let normalize = function "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

let rec resolve_module t (lid : Longident.t) : origin =
  match lid with
  | Lident m -> (
      match List.assoc_opt m t.modules with
      | Some origin -> origin
      | None -> Global (normalize [ m ]))
  | Ldot (prefix, m) -> (
      match resolve_module t prefix with
      | Local -> Local
      | Global p -> Global (normalize (p @ [ m ])))
  | Lapply _ -> Local (* functor application: nothing global to ban *)

type value_ref =
  | Path of string list (* qualified use resolving to a global module *)
  | Bare of string (* unqualified and not let-bound here *)
  | Shadowed (* resolves to something defined in this file *)

let resolve_value t (lid : Longident.t) : value_ref =
  match lid with
  | Lident n -> if List.mem n t.values then Shadowed else Bare n
  | Ldot (prefix, n) -> (
      match resolve_module t prefix with
      | Local -> Shadowed
      | Global p -> Path (normalize (p @ [ n ])))
  | Lapply _ -> Shadowed

let bind_module t name origin = { t with modules = (name, origin) :: t.modules }
let bind_value t name = { t with values = name :: t.values }
let bind_values t names = List.fold_left bind_value t names
let open_origin t origin = { t with opens = origin :: t.opens }

let clear_values t = { t with values = [] }

let opens_module t path =
  List.exists (function Global p -> p = path | Local -> false) t.opens

let any_open_of t paths =
  List.exists (function Global p -> List.mem p paths | Local -> false) t.opens
