(* Front end: parse a file with the compiler's own parser, run every
   applicable registered pass, then peel off inline suppressions, the
   allowlist and the committed baseline. The library returns data only;
   tools/analyzer does the printing and process exit codes. *)

let builtin_passes () =
  (* Referencing the pass modules forces their [Registry.register] side
     effects to link even though nothing else names them. *)
  ignore Pass_domain.pass;
  ignore Pass_determinism.pass;
  ignore Pass_alloc.pass;
  ignore Pass_matrix.pass;
  Registry.all ()

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let parse_implementation ~path text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception _ ->
      (* The build would reject this file too; report where the lexer
         stopped rather than dying. *)
      Error lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum

(* Raw findings for one source, before any suppression. *)
let check_source ?passes ~path text =
  let passes = match passes with Some ps -> ps | None -> builtin_passes () in
  let path = normalize path in
  let applicable = List.filter (fun p -> p.Registry.applies path) passes in
  if applicable = [] then []
  else
    match parse_implementation ~path text with
    | Error line ->
        [
          Finding.make ~pass:"A000" ~path ~line
            "file does not parse as an OCaml implementation (the analyzer \
             mirrors the compiler's parser; fix the syntax error first)";
        ]
    | Ok str ->
        Finding.sort
          (List.concat_map (fun p -> p.Registry.check ~path str) applicable)

(* One file: raw findings minus inline suppressions. *)
let analyze_source ?passes ~path text =
  let findings = check_source ?passes ~path text in
  Suppress.filter (Suppress.scan text) findings

type report = {
  files : int;
  kept : Finding.t list;
  suppressed : Finding.t list;
      (** inline-suppressed + allowlisted + baselined, for accounting *)
}

let partition_allowed allows findings =
  let has_prefix prefix path =
    String.length path >= String.length prefix
    && String.sub path 0 (String.length prefix) = prefix
  in
  List.partition
    (fun (f : Finding.t) ->
      not
        (List.exists
           (fun a ->
             a.Lint.Source_rules.allow_rule = f.Finding.pass
             && has_prefix a.Lint.Source_rules.allow_prefix f.Finding.path)
           allows))
    findings

let run ?passes ?(allow = []) ?(baseline = Baseline.empty) files =
  let kept, suppressed =
    List.fold_left
      (fun (kept, supp) (path, text) ->
        let k, s = analyze_source ?passes ~path text in
        (k @ kept, s @ supp))
      ([], []) files
  in
  let kept, allowed = partition_allowed allow kept in
  let kept, baselined = Baseline.filter baseline kept in
  {
    files = List.length files;
    kept = Finding.sort kept;
    suppressed = Finding.sort (suppressed @ allowed @ baselined);
  }

(* ---- source-tree walking (shared by the CLI and the clean-tree test) ---- *)

let rec walk dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      (* Sorted traversal: reports and --json artifacts must be
         byte-stable across machines and filesystems. *)
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let p = Filename.concat dir entry in
          if Sys.is_directory p then
            if entry = "_build" || entry.[0] = '.' then acc else acc @ walk p
          else if Filename.check_suffix p ".ml" then acc @ [ p ]
          else acc)
        [] entries

let read_file path = In_channel.with_open_text path In_channel.input_all

let load_tree ~root roots =
  let relative path =
    let prefix = root ^ "/" in
    let path = normalize path in
    if root = "." then path
    else if
      String.length path > String.length prefix
      && String.sub path 0 (String.length prefix) = prefix
    then String.sub path (String.length prefix) (String.length path - String.length prefix)
    else path
  in
  List.concat_map
    (fun r ->
      let dir = Filename.concat root r in
      if Sys.file_exists dir && Sys.is_directory dir then
        List.map (fun p -> (relative p, read_file p)) (walk dir)
      else [])
    roots
