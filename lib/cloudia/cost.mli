(** Deployment cost functions (Sect. 3.3, Classes 1 and 2).

    Longest link models barrier-synchronized HPC applications: one slow
    link delays every tick. Longest path models service-call trees: costs
    along a causal chain of messages add up. *)

type objective = Longest_link | Longest_path

val objective_to_string : objective -> string

val longest_link : Types.problem -> Types.plan -> float
(** [max over communication edges (i,i') of costs(plan i)(plan i')].
    Zero for an edgeless graph. [nan] if the plan routes any edge over an
    unsampled ([nan]) pair — a partial matrix poisons the evaluation
    rather than being silently skipped by the max. *)

val longest_link_witness : Types.problem -> Types.plan -> float * (int * int) option
(** The longest link's cost and the communication edge achieving it.
    Any non-empty edge set yields a witness (ties broken by edge order),
    including all-zero cost matrices; [(0., None)] only for an edgeless
    graph. If any edge lands on an unsampled pair the result is [(nan,
    Some e)] where [e] is the first such edge — the witness names the
    poisoning link. *)

val longest_path : Types.problem -> Types.plan -> float
(** Maximum over directed paths of the summed link costs under the plan.
    [nan] if any communication edge lands on an unsampled pair. Requires
    an acyclic communication graph (raises [Invalid_argument] otherwise,
    as in Definition Class 2). *)

val eval : objective -> Types.problem -> Types.plan -> float

val improvement : default:float -> optimized:float -> float
(** Relative reduction in percent: [(default - optimized) / default · 100].
    Sign convention: positive when the optimized plan is {e cheaper} than
    the default, negative when it is worse, and [0.] whenever
    [default <= 0.] (a zero baseline admits no relative improvement, and
    a negative one would flip the sign of the ratio). *)
