(** Core types of the node deployment problem (Sect. 3.3 of the paper).

    A {e problem} couples a communication graph over application nodes with
    a communication-cost matrix over allocated instances (Definition 1).
    A {e deployment plan} (Definition 2) is an injection of nodes into
    instances; instances left unmapped are the over-allocated ones ClouDiA
    terminates. *)

type problem = private {
  graph : Graphs.Digraph.t;  (** communication graph over nodes 0..n-1 *)
  costs : float array array; (** [costs.(j).(j')] = link cost from instance
                                 j to j' (ms); square, zero diagonal,
                                 possibly asymmetric, no triangle
                                 inequality assumed. An off-diagonal [nan]
                                 marks an {e unsampled} pair (partial
                                 measurement); {!Cost} evaluation over a
                                 plan touching one returns [nan], and
                                 [Lint.Instance.check_partial] gates such
                                 matrices before they reach a solver. *)
}

val problem : graph:Graphs.Digraph.t -> costs:float array array -> problem
(** Validates: the cost matrix is square with zero diagonal and
    non-negative entries, and has at least as many instances as the graph
    has nodes. Off-diagonal [nan] entries are accepted as unsampled
    markers; infinities and negative costs are rejected, as is a [nan]
    diagonal. *)

val node_count : problem -> int
(** Number of application nodes. *)

val instance_count : problem -> int
(** Number of allocated instances (≥ node count). *)

type plan = int array
(** [plan.(i)] is the instance hosting application node [i]. *)

val is_valid : problem -> plan -> bool
(** Length equals node count, every entry in range, no two nodes share an
    instance. *)

val validate : problem -> plan -> unit
(** Raise [Invalid_argument] with a description if {!is_valid} is false. *)

val identity_plan : problem -> plan
(** Node [i] on instance [i] — the provider-order "default deployment" the
    paper compares against. *)

val random_plan : Prng.t -> problem -> plan
(** A uniformly random injection of nodes into instances. *)

val unused_instances : problem -> plan -> int list
(** Instances the plan leaves empty (the ones ClouDiA would terminate),
    ascending. *)

val pp_plan : Format.formatter -> plan -> unit
