(** Core types of the node deployment problem (Sect. 3.3 of the paper).

    A {e problem} couples a communication graph over application nodes with
    a communication-cost matrix over allocated instances (Definition 1).
    A {e deployment plan} (Definition 2) is an injection of nodes into
    instances; instances left unmapped are the over-allocated ones ClouDiA
    terminates. *)

type problem = private {
  graph : Graphs.Digraph.t;  (** communication graph over nodes 0..n-1 *)
  lat : Lat_matrix.t;  (** [lat[j, j']] = link cost from instance j to j'
                           (ms) in one flat row-major buffer; square, zero
                           diagonal, possibly asymmetric, no triangle
                           inequality assumed. An off-diagonal [nan] marks
                           an {e unsampled} pair (partial measurement);
                           {!Cost} evaluation over a plan touching one
                           returns [nan], and [Lint.Instance.check_partial]
                           gates such matrices before they reach a solver.
                           Read through {!cost}/{!unsafe_cost} or
                           [Lat_matrix] accessors — never by materializing
                           boxed rows on a hot path. *)
}

val problem : graph:Graphs.Digraph.t -> costs:float array array -> problem
(** Build from a boxed matrix (convenient for tests and CSV loads); the
    rows are copied into flat storage. Validates: the cost matrix is
    square with zero diagonal and non-negative entries, and has at least
    as many instances as the graph has nodes. Off-diagonal [nan] entries
    are accepted as unsampled markers; infinities and negative costs are
    rejected, as is a [nan] diagonal. *)

val of_matrix : graph:Graphs.Digraph.t -> Lat_matrix.t -> problem
(** Build directly from a flat matrix (measurement pipelines, binary
    loads) — same validation as {!problem}, no boxed detour. *)

val node_count : problem -> int
(** Number of application nodes. *)

val instance_count : problem -> int
(** Number of allocated instances (≥ node count). *)

val cost : problem -> int -> int -> float
(** [cost t j j'] is the link cost from instance [j] to [j'],
    bounds-checked. *)

val unsafe_cost : problem -> int -> int -> float
(** Unchecked read for kernel loops whose indices are validated by
    construction (plans are injections into the instance set). *)

val costs : problem -> float array array
(** Materialize a boxed copy of the matrix — cold paths (lint reports,
    printing) only; allocates [n] rows per call. *)

type plan = int array
(** [plan.(i)] is the instance hosting application node [i]. *)

val is_valid : problem -> plan -> bool
(** Length equals node count, every entry in range, no two nodes share an
    instance. *)

val validate : problem -> plan -> unit
(** Raise [Invalid_argument] with a description if {!is_valid} is false. *)

val identity_plan : problem -> plan
(** Node [i] on instance [i] — the provider-order "default deployment" the
    paper compares against. *)

val random_plan : Prng.t -> problem -> plan
(** A uniformly random injection of nodes into instances. *)

val unused_instances : problem -> plan -> int list
(** Instances the plan leaves empty (the ones ClouDiA would terminate),
    ascending. *)

val pp_plan : Format.formatter -> plan -> unit
