type t = {
  problem : Types.problem;
  (* Dense per-edge weight map keyed by (i, i'); edges only. *)
  table : (int * int, float) Hashtbl.t;
}

let make (p : Types.problem) ~weight =
  let table = Hashtbl.create 64 in
  Array.iter
    (fun (i, i') ->
      let w = weight i i' in
      if w <= 0.0 || not (Float.is_finite w) then
        invalid_arg "Weighted.make: edge weights must be positive and finite";
      Hashtbl.replace table (i, i') w)
    (Graphs.Digraph.edges p.Types.graph);
  { problem = p; table }

let of_assoc (p : Types.problem) ~default assoc =
  List.iter
    (fun ((i, i'), _) ->
      if not (Graphs.Digraph.mem_edge p.Types.graph i i') then
        invalid_arg "Weighted.of_assoc: weight given for a non-edge")
    assoc;
  make p ~weight:(fun i i' ->
      match List.assoc_opt (i, i') assoc with Some w -> w | None -> default)

let problem t = t.problem

let weight t i i' = match Hashtbl.find_opt t.table (i, i') with Some w -> w | None -> 1.0

let longest_link t plan =
  Array.fold_left
    (fun acc (i, i') ->
      Float.max acc (weight t i i' *. Types.unsafe_cost t.problem plan.(i) plan.(i')))
    0.0
    (Graphs.Digraph.edges t.problem.Types.graph)

let longest_path t plan =
  Graphs.Digraph.longest_path t.problem.Types.graph ~weight:(fun i i' ->
      weight t i i' *. Types.unsafe_cost t.problem plan.(i) plan.(i'))

let eval objective t plan =
  match objective with
  | Cost.Longest_link -> longest_link t plan
  | Cost.Longest_path -> longest_path t plan

(* Weight-aware G2: identical to Greedy.g2 except every link cost that
   enters the extension cost is scaled by its edge weight. *)
let g2 t =
  let p = t.problem in
  let n = Types.node_count p and m = Types.instance_count p in
  let node_of = Array.make m (-1) in
  let inst_of = Array.make n (-1) in
  let mapped = ref 0 in
  let assign node inst =
    node_of.(inst) <- node;
    inst_of.(node) <- inst;
    incr mapped
  in
  let neighbors node = Graphs.Digraph.undirected_neighbors p.Types.graph node in
  let cheapest_free_pair () =
    let best = ref infinity and bu = ref (-1) and bv = ref (-1) in
    for u = 0 to m - 1 do
      if node_of.(u) = -1 then
        for v = 0 to m - 1 do
          if v <> u && node_of.(v) = -1 && Types.unsafe_cost p u v < !best then begin
            best := Types.unsafe_cost p u v;
            bu := u;
            bv := v
          end
        done
    done;
    (!bu, !bv)
  in
  let seed_component () =
    let x = ref (-1) and y = ref (-1) in
    for node = n - 1 downto 0 do
      if inst_of.(node) = -1 then begin
        let unmapped_neighbor = ref (-1) in
        Array.iter
          (fun w -> if !unmapped_neighbor = -1 && inst_of.(w) = -1 then unmapped_neighbor := w)
          (neighbors node);
        if !unmapped_neighbor <> -1 then begin
          x := node;
          y := !unmapped_neighbor
        end
        else if !x = -1 then x := node
      end
    done;
    if !x = -1 then ()
    else if !y = -1 then begin
      let inst = ref (-1) in
      for u = m - 1 downto 0 do
        if node_of.(u) = -1 then inst := u
      done;
      assign !x !inst
    end
    else begin
      let u, v = cheapest_free_pair () in
      assign !x u;
      assign !y v
    end
  in
  if n = 0 then [||]
  else begin
    seed_component ();
    let extension_cost u v w =
      let cost = ref (weight t node_of.(u) w *. Types.unsafe_cost p u v) in
      Array.iter
        (fun x ->
          let inst = inst_of.(x) in
          if inst <> -1 then begin
            if Graphs.Digraph.mem_edge p.Types.graph w x then
              cost := Float.max !cost (weight t w x *. Types.unsafe_cost p v inst);
            if Graphs.Digraph.mem_edge p.Types.graph x w then
              cost := Float.max !cost (weight t x w *. Types.unsafe_cost p inst v)
          end)
        (neighbors w);
      !cost
    in
    while !mapped < n do
      let cmin = ref infinity and vmin = ref (-1) and wmin = ref (-1) in
      for u = 0 to m - 1 do
        let node = node_of.(u) in
        if node <> -1 then
          Array.iter
            (fun w ->
              if inst_of.(w) = -1 then
                for v = 0 to m - 1 do
                  if node_of.(v) = -1 && v <> u then begin
                    let c = extension_cost u v w in
                    if c < !cmin then begin
                      cmin := c;
                      vmin := v;
                      wmin := w
                    end
                  end
                done)
            (neighbors node)
      done;
      if !wmin = -1 then seed_component () else assign !wmin !vmin
    done;
    Array.copy inst_of
  end

let solve_cp ?options rng t =
  Cp_solver.solve ?options ~edge_weight:(weight t) rng t.problem

let solve_mip ?options objective rng t =
  match objective with
  | Cost.Longest_link -> Mip_solver.solve_longest_link ?options ~edge_weight:(weight t) rng t.problem
  | Cost.Longest_path -> Mip_solver.solve_longest_path ?options ~edge_weight:(weight t) rng t.problem

let solve_anneal ?options objective rng t =
  Anneal.solve ?options rng ~eval:(eval objective t) t.problem

let r1 rng objective t ~trials =
  Random_search.r1_eval rng ~eval:(eval objective t) t.problem ~trials
