let parse_raw text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  if lines = [] then Error "empty input"
  else begin
    let parse_cell cell =
      (* Accept an explicit "nan" (any case) as the unsampled-pair marker
         that [print] emits, independent of what the platform's strtod
         recognizes. Everything else goes through the normal float path. *)
      if String.lowercase_ascii cell = "nan" then Some nan
      else float_of_string_opt cell
    in
    let parse_row lineno line =
      let cells = String.split_on_char ',' line |> List.map String.trim in
      let values = List.map parse_cell cells in
      if List.exists Option.is_none values then
        Error (Printf.sprintf "line %d: not a number in %S" lineno line)
      else Ok (Array.of_list (List.map Option.get values))
    in
    let rec collect lineno acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | line :: rest -> (
          match parse_row lineno line with
          | Ok row -> collect (lineno + 1) (row :: acc) rest
          | Error _ as e -> e)
    in
    collect 1 [] lines
  end

let parse text =
  match parse_raw text with
  | Error e -> Error e
  | Ok matrix ->
        let n = Array.length matrix in
        let problem = ref None in
        Array.iteri
          (fun i row ->
            if !problem = None then
              if Array.length row <> n then
                problem := Some (Printf.sprintf "row %d has %d entries, expected %d" (i + 1)
                                   (Array.length row) n)
              else
                Array.iteri
                  (fun j v ->
                    if !problem = None then
                      if i = j && v <> 0.0 then
                        problem := Some (Printf.sprintf "diagonal entry (%d,%d) must be 0" i j)
                      else if (not (Float.is_finite v)) || v < 0.0 then
                        problem :=
                          Some (Printf.sprintf "entry (%d,%d) must be finite and >= 0" i j))
                  row)
          matrix;
        (match !problem with Some e -> Error e | None -> Ok matrix)

let print matrix =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_string buf ", ";
          (* Canonical "nan" (never "-nan"), so printed partial matrices
             round-trip through [parse_raw] on every platform. *)
          if Float.is_nan v then Buffer.add_string buf "nan"
          else Buffer.add_string buf (Printf.sprintf "%.6g" v))
        row;
      Buffer.add_char buf '\n')
    matrix;
  Buffer.contents buf

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> parse text

let load_raw path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> parse_raw text

(* ---------- binary format (see Lat_matrix) ---------- *)

let save_binary path lat = Lat_matrix.write_binary path lat

let validate lat =
  let bad = ref None in
  Lat_matrix.iter
    (fun i j v ->
      if !bad = None then
        if i = j && v <> 0.0 then
          bad := Some (Printf.sprintf "diagonal entry (%d,%d) must be 0" i j)
        else if i <> j && ((not (Float.is_finite v)) && not (Float.is_nan v)) then
          bad := Some (Printf.sprintf "entry (%d,%d) must not be infinite" i j)
        else if v < 0.0 then
          bad := Some (Printf.sprintf "entry (%d,%d) must be >= 0" i j))
    lat;
  match !bad with Some e -> Error e | None -> Ok lat

let load_binary ?mmap path =
  match Lat_matrix.read_binary ?mmap path with
  | Error _ as e -> e
  | Ok lat -> validate lat

let load_auto ?mmap path =
  if Lat_matrix.looks_binary path then load_binary ?mmap path
  else match load path with Error _ as e -> e | Ok rows -> Ok (Lat_matrix.of_arrays rows)

let load_auto_raw ?mmap path =
  if Lat_matrix.looks_binary path then Lat_matrix.read_binary ?mmap path
  else
    match load_raw path with
    | Error _ as e -> e
    | Ok rows -> (
        match Lat_matrix.of_arrays rows with
        | lat -> Ok lat
        | exception Invalid_argument e -> Error e)
