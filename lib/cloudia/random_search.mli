(** Randomized deployment search (Sects. 4.3.1 and 4.5.1).

    Generating random injections and keeping the best is "computationally
    cheaper and easier to parallelize" than systematic search; the paper's
    R1 fixes the trial count at 1,000 and R2 spends the same wall-clock
    budget as the CP/MIP solver.

    The [_eval] variants take an arbitrary plan-cost function, which is how
    the weighted and bandwidth objectives reuse this solver. *)

val r1_eval :
  ?stop:(unit -> bool) ->
  ?on_improve:(Types.plan -> float -> unit) ->
  Prng.t -> eval:(Types.plan -> float) -> Types.problem -> trials:int ->
  Types.plan * float
(** Best of [trials] uniformly random plans under an arbitrary cost.
    [stop] is polled between trials and ends the search early with the best
    plan so far (cooperative cancellation inside a portfolio);
    [on_improve] fires for the first plan and every strict improvement. *)

val r2_eval :
  ?stop:(unit -> bool) ->
  ?on_improve:(Types.plan -> float -> unit) ->
  ?now:(unit -> float) ->
  Prng.t -> eval:(Types.plan -> float) -> Types.problem -> time_limit:float ->
  Types.plan * float * int
(** Random plans until [time_limit] seconds elapse; returns the best plan,
    its cost, and the number of plans tried. [stop]/[on_improve] as in
    {!r1_eval}. [now] injects the clock (default the monotonic
    [Obs.Clock.now_s]) so tests can drive the budget with a deterministic
    fake clock instead of depending on real scheduler behaviour. *)

val r1 :
  ?stop:(unit -> bool) ->
  ?on_improve:(Types.plan -> float -> unit) ->
  Prng.t -> Cost.objective -> Types.problem -> trials:int -> Types.plan * float
(** Best of [trials] random plans (the paper's R1 uses 1,000). *)

val r2 :
  ?stop:(unit -> bool) ->
  ?on_improve:(Types.plan -> float -> unit) ->
  ?now:(unit -> float) ->
  Prng.t -> Cost.objective -> Types.problem -> time_limit:float ->
  Types.plan * float * int
(** Time-budgeted variant of {!r1}. *)

val best_of : Prng.t -> Cost.objective -> Types.problem -> int -> Types.plan
(** Convenience used to bootstrap the exact solvers: the paper seeds its
    search with the best of 10 random deployment plans (Sect. 6.3.1). *)

val best_of_eval : Prng.t -> eval:(Types.plan -> float) -> Types.problem -> int -> Types.plan
(** Arbitrary-cost variant of {!best_of}. *)

val r2_parallel :
  ?domains:int ->
  ?stop:(unit -> bool) ->
  ?on_improve:(Types.plan -> float -> unit) ->
  Prng.t ->
  Cost.objective ->
  Types.problem ->
  time_limit:float ->
  Types.plan * float * int
(** Multicore R2: "since generating deployments is computationally cheaper
    and easier to parallelize, it is possible to explore a larger portion
    of the search space given the same amount of time" (Sect. 4.3.1) — the
    paper's R2 runs "in parallel using the same amount of wall-clock time
    as well as the same hardware given to the CP or MIP solvers". Spawns
    [domains] (default 4) OCaml domains, each running an independent
    PRNG-split stream for [time_limit] seconds; returns the best plan,
    its cost, and the total plans tried across domains (per-domain counts
    are merged atomically into the [random_search.trials] counter).

    [stop] is polled from every domain between trials and must be
    thread-safe (an atomic flag or pure deadline check) — it cancels the
    whole gang cooperatively, as the portfolio requires. [on_improve]
    fires, serialized under a mutex and with a private copy of the plan,
    for each strict improvement of the {e cross-domain} best; the gang
    feeds a single ["random.parallel"] incumbent stream. *)

val r2_descent :
  ?stop:(unit -> bool) ->
  ?on_improve:(Types.plan -> float -> unit) ->
  ?now:(unit -> float) ->
  Prng.t ->
  Cost.objective ->
  Types.problem ->
  time_limit:float ->
  Types.plan * float * int
(** R2 with local descent: random restarts, each refined to a local
    optimum by first-improvement descent over every swap/relocate move,
    evaluated incrementally through a {!Delta_cost} kernel (O(deg) per
    proposal instead of a full {!Cost.eval}). Runs until [time_limit]
    seconds elapse or [stop] fires; returns the best plan, its cost, and
    the number of restarts begun. [on_improve]/[now] as in {!r2_eval};
    improvements feed a ["random.descent"] incumbent stream and restarts
    the [random_search.descents] counter. The returned plan is a local
    optimum whenever the budget outlasted the final descent. *)
