(** Latency metrics for the communication-cost function (Sect. 3.2).

    The cost [CL(i, j)] fed to the solvers can characterize a link's RTT
    distribution in different ways. The paper studies three: the mean, the
    mean plus one standard deviation (for jitter-sensitive applications),
    and the 99th percentile, and finds the mean robust across its
    workloads (Figs. 10–11). *)

type t = Mean | Mean_plus_sd | P99

val to_string : t -> string

val of_string : string -> t option
(** Accepts ["mean"], ["mean+sd"], ["p99"]. *)

val of_samples : t -> float array -> float
(** Reduce one link's RTT samples to a scalar cost. Raises
    [Invalid_argument] on empty input or when a sample is non-finite
    (a NaN would otherwise propagate into the cost matrix unnoticed). *)

val estimate :
  Prng.t -> Cloudsim.Env.t -> t -> samples_per_pair:int -> Lat_matrix.t
(** Draw [samples_per_pair] interference-free RTT samples per ordered pair
    (what the staged scheme of Sect. 5 delivers) and reduce them with the
    metric, yielding the flat cost matrix for {!Types.of_matrix}. The
    diagonal is zero. *)

val estimate_all :
  Prng.t -> Cloudsim.Env.t -> samples_per_pair:int ->
  (t -> Lat_matrix.t)
(** Single-measurement variant: draw one set of samples per link and
    derive all three metric matrices from the same data, as one real
    measurement phase would. The returned function reduces the cached
    samples under any metric. *)
