type strategy =
  | Greedy_g1
  | Greedy_g2
  | Random_r1 of int
  | Random_r2 of float
  | Anneal of Anneal.options
  | Cp of Cp_solver.options
  | Mip of Mip_solver.options
  | Portfolio of Portfolio.options

let strategy_to_string = function
  | Greedy_g1 -> "G1"
  | Greedy_g2 -> "G2"
  | Random_r1 n -> Printf.sprintf "R1(%d)" n
  | Random_r2 s -> Printf.sprintf "R2(%.1fs)" s
  | Anneal _ -> "SA"
  | Cp _ -> "CP"
  | Mip _ -> "MIP"
  | Portfolio o -> Printf.sprintf "Portfolio(%d)" (List.length o.Portfolio.members)

type config = {
  graph : Graphs.Digraph.t;
  objective : Cost.objective;
  metric : Metrics.t;
  over_allocation : float;
  samples_per_pair : int;
  strategy : strategy;
}

type report = {
  env : Cloudsim.Env.t;
  problem : Types.problem;
  plan : Types.plan;
  default_plan : Types.plan;
  cost : float;
  default_cost : float;
  improvement_pct : float;
  measurement_minutes : float;
  search_seconds : float;
  terminated : int list;
}

let search rng strategy objective problem =
  match strategy with
  | Greedy_g1 -> Greedy.g1 problem
  | Greedy_g2 -> Greedy.g2 problem
  | Random_r1 trials -> fst (Random_search.r1 rng objective problem ~trials)
  | Random_r2 budget ->
      let plan, _, _ = Random_search.r2 rng objective problem ~time_limit:budget in
      plan
  | Anneal options -> (Anneal.solve_objective ~options rng objective problem).Anneal.plan
  | Cp options -> (
      match objective with
      | Cost.Longest_link -> (Cp_solver.solve ~options rng problem).Cp_solver.plan
      | Cost.Longest_path ->
          invalid_arg
            "Advisor: the CP strategy only supports the longest-link objective")
  | Mip options -> (
      match objective with
      | Cost.Longest_link ->
          (Mip_solver.solve_longest_link ~options rng problem).Mip_solver.plan
      | Cost.Longest_path ->
          (Mip_solver.solve_longest_path ~options rng problem).Mip_solver.plan)
  | Portfolio options -> (Portfolio.solve ~options rng objective problem).Portfolio.plan

let run rng provider config =
  if config.over_allocation < 0.0 then
    invalid_arg "Advisor.run: over-allocation ratio must be non-negative";
  let nodes = Graphs.Digraph.n config.graph in
  if nodes = 0 then invalid_arg "Advisor.run: empty communication graph";
  (* Step 1: allocate with over-allocation. *)
  let count =
    int_of_float (Float.ceil (float_of_int nodes *. (1.0 +. config.over_allocation)))
  in
  let env = Cloudsim.Env.allocate rng provider ~count in
  (* Step 2: measure. The per-pair sampling below is what the staged scheme
     of Sect. 5 would collect; we charge its time budget. *)
  let costs = Metrics.estimate rng env config.metric ~samples_per_pair:config.samples_per_pair in
  let problem = Types.problem ~graph:config.graph ~costs in
  let measurement_minutes =
    Netmeasure.Schemes.staged_time_for ~n:count ~reference_minutes:5.0
  in
  (* Step 3: search. *)
  let started = Unix.gettimeofday () in
  let plan = search rng config.strategy config.objective problem in
  let search_seconds = Unix.gettimeofday () -. started in
  Types.validate problem plan;
  let default_plan = Types.identity_plan problem in
  let cost = Cost.eval config.objective problem plan in
  let default_cost = Cost.eval config.objective problem default_plan in
  (* Step 4: terminate the instances the plan does not use. *)
  let terminated = Types.unused_instances problem plan in
  {
    env;
    problem;
    plan;
    default_plan;
    cost;
    default_cost;
    improvement_pct = Cost.improvement ~default:default_cost ~optimized:cost;
    measurement_minutes;
    search_seconds;
    terminated;
  }
