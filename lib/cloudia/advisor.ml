type strategy =
  | Greedy_g1
  | Greedy_g2
  | Random_r1 of int
  | Random_r2 of float
  | Descent of float
  | Anneal of Anneal.options
  | Cp of Cp_solver.options
  | Mip of Mip_solver.options
  | Portfolio of Portfolio.options

let strategy_to_string = function
  | Greedy_g1 -> "G1"
  | Greedy_g2 -> "G2"
  | Random_r1 n -> Printf.sprintf "R1(%d)" n
  | Random_r2 s -> Printf.sprintf "R2(%.1fs)" s
  | Descent s -> Printf.sprintf "R2D(%.1fs)" s
  | Anneal _ -> "SA"
  | Cp _ -> "CP"
  | Mip _ -> "MIP"
  | Portfolio o -> Printf.sprintf "Portfolio(%d)" (List.length o.Portfolio.members)

type config = {
  graph : Graphs.Digraph.t;
  objective : Cost.objective;
  metric : Metrics.t;
  over_allocation : float;
  samples_per_pair : int;
  strategy : strategy;
}

type solver_stats =
  | No_solver_stats
  | Cp_stats of { iterations : int; nodes : int; failures : int; propagations : int }
  | Mip_stats of { nodes_explored : int; nodes_pruned : int }
  | Anneal_stats of { moves_tried : int; moves_accepted : int }
  | Random_stats of { trials : int }

type member_stats = {
  member_name : string;
  member_cost : float;
  member_time_to_best : float;
  member_seconds : float;
  member_iterations : int;
  member_proved : bool;
}

type telemetry = {
  strategy_name : string;
  solver : solver_stats;
  proven_optimal : bool;
  incumbent_trace : (float * float) list;
  winner : string option;
  members : member_stats list;
  counters : (string * int) list;
}

type on_missing = Fail | Impute | Drop_instance

let on_missing_to_string = function
  | Fail -> "fail"
  | Impute -> "impute"
  | Drop_instance -> "drop"

type report = {
  env : Cloudsim.Env.t;
  problem : Types.problem;
  plan : Types.plan;
  default_plan : Types.plan;
  cost : float;
  default_cost : float;
  improvement_pct : float;
  measurement_minutes : float;
  search_seconds : float;
  terminated : int list;
  kept : int array;
  dropped : int list;
  measurement_coverage : float;
  telemetry : telemetry;
  diagnostics : Lint.Diagnostic.t list;
}

(* The lint gate needs the budget/parallelism a strategy will actually
   use; greedy strategies and fixed-trial R1 have no time budget. *)
let strategy_time_limit = function
  | Greedy_g1 | Greedy_g2 | Random_r1 _ -> None
  | Random_r2 s | Descent s -> Some s
  | Anneal o -> Some o.Anneal.time_limit
  | Cp o -> Some o.Cp_solver.time_limit
  | Mip o -> Some o.Mip_solver.time_limit
  | Portfolio o -> Some o.Portfolio.time_limit

let strategy_domains = function
  | Portfolio o -> Some (List.length o.Portfolio.members)
  | _ -> None

let requires_dag = function Cost.Longest_path -> true | Cost.Longest_link -> false

let lint ?pool config =
  Lint.Instance.check_graph ?pool ~requires_dag:(requires_dag config.objective)
    config.graph
  @ Lint.Instance.check_config
      ?time_limit:(strategy_time_limit config.strategy)
      ?domains:(strategy_domains config.strategy)
      ?pool ~over_allocation:config.over_allocation
      ~samples_per_pair:config.samples_per_pair ()

(* Unsampled (nan) off-diagonal entries in a problem's cost matrix. *)
let count_unsampled (costs : Lat_matrix.t) =
  let missing = ref 0 in
  Lat_matrix.iter
    (fun j j' c -> if j <> j' && Float.is_nan c then incr missing)
    costs;
  !missing

let search_with_telemetry rng strategy objective problem =
  (* Errors fail fast before any solver runs: a cyclic graph under the
     longest-path objective would otherwise raise deep inside Cost, a
     non-positive budget would spin a solver forever or not at all, and a
     partial (nan-bearing) matrix would poison every cost comparison. *)
  let pool = Types.instance_count problem in
  Lint.Diagnostic.check
    (Lint.Diagnostic.errors
       (Lint.Instance.check_graph ~pool
          ~requires_dag:(requires_dag objective) problem.Types.graph
       @ Lint.Instance.check_config
           ?time_limit:(strategy_time_limit strategy)
           ?domains:(strategy_domains strategy)
           ~pool ()
       @ Lint.Instance.check_partial
           ~total:(pool * (pool - 1))
           ~missing:(count_unsampled problem.Types.lat)
           ~imputed:0 ~dropped:0 ()));
  let before = Obs.Counter.snapshot () in
  let finish ?(solver = No_solver_stats) ?(proven = false) ?(trace = []) ?winner
      ?(members = []) plan =
    ( plan,
      {
        strategy_name = strategy_to_string strategy;
        solver;
        proven_optimal = proven;
        incumbent_trace = trace;
        winner;
        members;
        counters = Obs.Counter.delta ~before ~after:(Obs.Counter.snapshot ());
      } )
  in
  (* For the strategies whose solvers do not record their own trace, the
     improvement callback reconstructs one against this start time. *)
  let started = Obs.Clock.now_s () in
  let trace = ref [] in
  let on_improve _plan cost =
    trace := (Obs.Clock.now_s () -. started, cost) :: !trace
  in
  match strategy with
  | Greedy_g1 -> finish (Greedy.g1 problem)
  | Greedy_g2 -> finish (Greedy.g2 problem)
  | Random_r1 trials ->
      let plan, _ = Random_search.r1 ~on_improve rng objective problem ~trials in
      finish ~solver:(Random_stats { trials }) ~trace:(List.rev !trace) plan
  | Random_r2 budget ->
      let plan, _, trials =
        Random_search.r2 ~on_improve rng objective problem ~time_limit:budget
      in
      finish ~solver:(Random_stats { trials }) ~trace:(List.rev !trace) plan
  | Descent budget ->
      let plan, _, restarts =
        Random_search.r2_descent ~on_improve rng objective problem ~time_limit:budget
      in
      finish ~solver:(Random_stats { trials = restarts }) ~trace:(List.rev !trace) plan
  | Anneal options ->
      let r = Anneal.solve_objective ~options ~on_improve rng objective problem in
      finish
        ~solver:
          (Anneal_stats
             {
               moves_tried = r.Anneal.moves_tried;
               moves_accepted = r.Anneal.moves_accepted;
             })
        ~trace:(List.rev !trace) r.Anneal.plan
  | Cp options -> (
      match objective with
      | Cost.Longest_link ->
          let r = Cp_solver.solve ~options rng problem in
          finish
            ~solver:
              (Cp_stats
                 {
                   iterations = r.Cp_solver.iterations;
                   nodes = r.Cp_solver.nodes;
                   failures = r.Cp_solver.failures;
                   propagations = r.Cp_solver.propagations;
                 })
            ~proven:r.Cp_solver.proven_optimal ~trace:r.Cp_solver.trace r.Cp_solver.plan
      | Cost.Longest_path ->
          invalid_arg
            "Advisor: the CP strategy only supports the longest-link objective")
  | Mip options ->
      let solver =
        match objective with
        | Cost.Longest_link -> Mip_solver.solve_longest_link
        | Cost.Longest_path -> Mip_solver.solve_longest_path
      in
      let r = solver ~options rng problem in
      finish
        ~solver:
          (Mip_stats
             {
               nodes_explored = r.Mip_solver.nodes_explored;
               nodes_pruned = r.Mip_solver.nodes_pruned;
             })
        ~proven:r.Mip_solver.proven_optimal ~trace:r.Mip_solver.trace r.Mip_solver.plan
  | Portfolio options ->
      let r = Portfolio.solve ~options rng objective problem in
      let members =
        List.map
          (fun (w : Portfolio.worker) ->
            {
              member_name = Portfolio.member_to_string w.Portfolio.member;
              member_cost = w.Portfolio.best_cost;
              member_time_to_best = w.Portfolio.time_to_best;
              member_seconds = w.Portfolio.elapsed;
              member_iterations = w.Portfolio.iterations;
              member_proved = w.Portfolio.proved_optimal;
            })
          r.Portfolio.workers
      in
      finish ~proven:r.Portfolio.proven_optimal ~trace:r.Portfolio.trace
        ~winner:r.Portfolio.winner_name ~members r.Portfolio.plan

let search rng strategy objective problem =
  fst (search_with_telemetry rng strategy objective problem)

(* Staged-scheme effort matching [samples_per_pair]: each matched pair
   exchanges [ks] probes per stage, and a pair is matched in one of the
   two orders once per ~(n-1) stages on average. A floor of six rounds
   keeps the miss probability per ordered pair below e⁻⁶ even when one
   round would already deliver the requested samples. *)
let staged_effort ~samples_per_pair ~n =
  let ks = max 1 (min 10 samples_per_pair) in
  let rounds =
    max 6 (int_of_float (Float.ceil (float_of_int samples_per_pair /. float_of_int ks)))
  in
  (ks, rounds * (max 1 (n - 1)))

let run ?(strict_lint = false) ?(faults = Cloudsim.Faults.none)
    ?(on_missing = Fail) rng provider config =
  (* Pre-allocation gate: everything checkable before spending money on
     instances. Errors (and, under --strict-lint, warnings) fail fast. *)
  let pre_diagnostics = lint config in
  Lint.Diagnostic.check ~strict:strict_lint pre_diagnostics;
  let faulted = not (Cloudsim.Faults.is_none faults) in
  if faulted && config.metric <> Metrics.Mean then
    invalid_arg
      "Advisor: fault-injected measurement estimates mean latency only (the \
       probe schemes keep running sums, not sample distributions)";
  let nodes = Graphs.Digraph.n config.graph in
  Obs.Resource.with_ "advise" @@ fun () ->
  (* Step 1: allocate with over-allocation. *)
  let count =
    int_of_float (Float.ceil (float_of_int nodes *. (1.0 +. config.over_allocation)))
  in
  let env =
    Obs.Resource.with_ "allocate" @@ fun () -> Cloudsim.Env.allocate rng provider ~count
  in
  (* Step 2: measure. Without faults the per-pair sampling is what the
     staged scheme of Sect. 5 would collect and we charge its nominal
     time budget. With faults we run the staged scheme probe by probe —
     losses, retries and timeouts included — and charge the simulated
     clock it actually consumed. *)
  let costs, measurement_minutes, measurement_coverage, kept, dropped, partial_diags =
    Obs.Resource.with_ "measure" @@ fun () ->
    if not faulted then
      let costs =
        Metrics.estimate rng env config.metric ~samples_per_pair:config.samples_per_pair
      in
      let minutes = Netmeasure.Schemes.staged_time_for ~n:count ~reference_minutes:5.0 in
      (costs, minutes, 1.0, Array.init count (fun i -> i), [], [])
    else begin
      let fenv = Cloudsim.Env.with_faults env faults in
      let ks, stages = staged_effort ~samples_per_pair:config.samples_per_pair ~n:count in
      let m = Netmeasure.Schemes.staged rng fenv ~ks ~stages in
      let minutes = m.Netmeasure.Schemes.sim_seconds /. 60.0 in
      let cov = Netmeasure.Schemes.coverage m in
      let total = count * (count - 1) in
      let identity = Array.init count (fun i -> i) in
      match on_missing with
      | Fail ->
          let missing = ref 0 in
          Array.iteri
            (fun i row ->
              Array.iteri
                (fun j s -> if i <> j && s = 0 then incr missing)
                row)
            m.Netmeasure.Schemes.samples;
          let diags =
            Lint.Instance.check_partial ~total ~missing:!missing ~imputed:0 ~dropped:0 ()
          in
          (Lat_matrix.of_arrays m.Netmeasure.Schemes.means, minutes, cov, identity, [], diags)
      | Impute ->
          let c = Netmeasure.Completion.complete m in
          let diags =
            Lint.Instance.check_partial ~total
              ~missing:c.Netmeasure.Completion.unresolved
              ~imputed:c.Netmeasure.Completion.imputed ~dropped:0 ()
          in
          (Lat_matrix.of_arrays c.Netmeasure.Completion.means, minutes, cov, identity, [], diags)
      | Drop_instance ->
          let kept, sub = Netmeasure.Completion.drop_uncovered m in
          let dropped =
            let keep = Array.make count false in
            Array.iter (fun i -> keep.(i) <- true) kept;
            let out = ref [] in
            for i = count - 1 downto 0 do
              if not keep.(i) then out := i :: !out
            done;
            !out
          in
          let diags =
            Lint.Instance.check_partial ~total ~missing:0 ~imputed:0
              ~dropped:(List.length dropped) ()
          in
          (Lat_matrix.of_arrays sub, minutes, cov, kept, dropped, diags)
    end
  in
  let pool = Array.length kept in
  (* Post-measurement gate: partial-coverage findings first (an LAT007
     under --on-missing fail raises here), then data-quality checks on
     the matrix the solver will actually see, then the pool-aware config
     checks the first gate could not run. *)
  let diagnostics =
    pre_diagnostics @ partial_diags
    @ Lint.Instance.check_matrix (Lat_matrix.to_arrays costs)
    (* Dropping instances shrinks the pool; re-run only the error-grade
       graph checks against it (the warnings are already in the pre gate)
       so a pool now smaller than the node set fails as GRF006. *)
    @ (if pool < count then
         Lint.Diagnostic.errors (Lint.Instance.check_graph ~pool config.graph)
       else [])
    @ Lint.Instance.check_config ?domains:(strategy_domains config.strategy)
        ~pool ()
  in
  Lint.Diagnostic.check ~strict:strict_lint diagnostics;
  let problem = Types.of_matrix ~graph:config.graph costs in
  (* Step 3: search. *)
  let started = Obs.Clock.now_s () in
  let plan, telemetry =
    Obs.Resource.with_ "search" @@ fun () ->
    search_with_telemetry rng config.strategy config.objective problem
  in
  let search_seconds = Obs.Clock.now_s () -. started in
  Types.validate problem plan;
  let default_plan = Types.identity_plan problem in
  let cost = Cost.eval config.objective problem plan in
  let default_cost = Cost.eval config.objective problem default_plan in
  (* Step 4: terminate the instances the plan does not use — in original
     allocation numbering, together with any instance dropped for lack of
     measurement coverage. [kept] is the identity whenever nothing was
     dropped, making this exactly [unused_instances] as before. *)
  let terminated =
    List.sort Int.compare
      (List.map (fun s -> kept.(s)) (Types.unused_instances problem plan) @ dropped)
  in
  {
    env;
    problem;
    plan;
    default_plan;
    cost;
    default_cost;
    improvement_pct = Cost.improvement ~default:default_cost ~optimized:cost;
    measurement_minutes;
    search_seconds;
    terminated;
    kept;
    dropped;
    measurement_coverage;
    telemetry;
    diagnostics;
  }
