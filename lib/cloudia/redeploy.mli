(** Iterative re-deployment under changing network conditions
    (Sect. 2.2.1).

    The paper's architecture assumes stable conditions but sketches the
    dynamic case: "re-deployment can be achieved via iterations of the
    architecture above: getting new measurements, searching for a new
    optimal plan, and re-deploying the application", at the price of
    migrating application state. This module simulates that loop over a
    sequence of epochs and applies the natural economic policy: re-deploy
    exactly when the measured per-epoch saving, over the remaining
    epochs, exceeds the one-off migration cost.

    Costs are in "deployment-cost × epochs" units: an epoch spent under a
    plan contributes the plan's deployment cost; a migration contributes
    [migration_cost]. *)

type config = {
  epochs : int;               (** length of the simulated horizon *)
  change_prob : float;        (** per-epoch probability of a network change *)
  change_fraction : float;    (** fraction of links a change re-levels *)
  change_magnitude : float;   (** lognormal σ of the re-leveling factor *)
  migration_cost : float;     (** one-off cost of moving the application *)
  solver_budget : float;      (** CP time limit per re-optimization, seconds *)
}

val default_config : config
(** 20 epochs, 30 % change probability, 20 % of links, σ = 0.5, migration
    cost 1.0, 1 s solver budget. *)

type epoch_record = {
  epoch : int;
  changed : bool;             (** network conditions changed this epoch *)
  cost_current : float;       (** deployment cost of the running plan *)
  cost_candidate : float;     (** cost of the candidate plan — freshly
                                  optimized on a change, otherwise the
                                  previous epoch's candidate reused (the
                                  problem is identical, so the solver is
                                  skipped) *)
  cost_adaptive : float;      (** cost the adaptive plan paid this epoch
                                  (after any migration); [adaptive_total]
                                  is exactly the sum of these plus
                                  [migrations × migration_cost], in epoch
                                  order *)
  migrated : bool;
}

type summary = {
  records : epoch_record list;             (** oldest first *)
  migrations : int;
  adaptive_total : float;     (** Σ epoch costs + migrations × cost *)
  static_total : float;       (** never re-deploying after the initial plan *)
  oracle_total : float;       (** re-optimizing every epoch for free — a
                                  lower bound no real policy can beat *)
}

val simulate :
  ?config:config ->
  Prng.t ->
  Cloudsim.Provider.t ->
  graph:Graphs.Digraph.t ->
  over_allocation:float ->
  summary
(** Run the adaptive loop: allocate once (with over-allocation, so unused
    instances are available as migration targets), deploy optimally, then
    per epoch possibly perturb the network, re-measure, re-optimize, and
    migrate when worthwhile. *)
