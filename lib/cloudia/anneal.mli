(** Simulated-annealing deployment search.

    A lightweight anytime solver that sits between the paper's randomized
    baselines (R1/R2, Sect. 4.3.1) and the exact solvers: local search over
    deployment plans with two move kinds — {e swap} the instances of two
    nodes, and {e relocate} a node onto an unused instance (the move that
    exploits over-allocation) — under a geometric cooling schedule.
    Works for any deployment cost function, including the weighted and
    bandwidth objectives ({!Weighted}, {!Bandwidth}) that the exact
    encodings need special-casing for.

    Moves are evaluated through a {!Delta_cost} kernel: for the two
    standard objectives ({!solve_objective}) each proposal costs
    O(deg(node)) — or an affected-suffix DAG re-relaxation for longest
    path — instead of a full {!Cost.eval}; for an arbitrary [eval]
    ({!solve}) the kernel transparently falls back to one full
    evaluation per move. Both paths draw identical random streams and
    accept identical moves, so a fixed seed yields bit-identical results
    whichever evaluator runs. *)

type options = {
  time_limit : float;        (** wall-clock budget, seconds *)
  initial_temperature : float;
      (** starting acceptance temperature, in cost units; a value around
          the cost spread of random plans works well *)
  cooling : float;           (** geometric factor per step, e.g. 0.9995 *)
  moves_per_temperature : int;
  restarts : int;            (** independent annealing runs; best kept *)
  max_moves : int option;
      (** total move budget across all restarts; [None] = unlimited. A
          finite budget makes a run bit-reproducible independent of the
          wall clock (provided [time_limit] is generous enough not to fire
          first), which is what the deterministic portfolio and the
          CI-safe tests rely on. *)
}

val default_options : options
(** 2 s, T₀ = 0.5, cooling 0.999, 50 moves per temperature, 3 restarts,
    no move cap. *)

type result = {
  plan : Types.plan;
  cost : float;
  moves_tried : int;
  moves_accepted : int;
}

val solve :
  ?options:options ->
  ?stop:(unit -> bool) ->
  ?init:Types.plan ->
  ?on_improve:(Types.plan -> float -> unit) ->
  Prng.t ->
  eval:(Types.plan -> float) ->
  Types.problem ->
  result
(** [solve rng ~eval problem] minimizes an arbitrary plan cost [eval]
    (e.g. [Cost.eval objective problem]). The returned plan is always a
    valid injection.

    [init] warm-starts the cross-restart incumbent with a known-good plan
    (validated, copied) — e.g. the previous incumbent for the same matrix
    fingerprint in the serving cache. The restarts themselves still begin
    from fresh random plans; without [init] the random draw order is
    unchanged.

    [stop] is polled between temperature steps and between restarts; when
    it returns [true] the current best is returned immediately.
    [on_improve] fires for the initial plan and for every strict
    improvement of the cross-restart best; the plan passed to it is the
    solver's working array — copy it if you retain it. *)

val solve_objective :
  ?options:options ->
  ?stop:(unit -> bool) ->
  ?init:Types.plan ->
  ?ranks:Delta_cost.ranks ->
  ?on_improve:(Types.plan -> float -> unit) ->
  Prng.t -> Cost.objective -> Types.problem -> result
(** Convenience wrapper for the two standard objectives. [ranks] shares a
    precomputed {!Delta_cost.ranks} table (fingerprint-keyed cache hit)
    with the kernel; see {!Delta_cost.create}. *)
