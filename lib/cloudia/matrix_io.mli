(** Cost-matrix input/output.

    A tenant who has measured their own allocation (with this repository's
    schemes or any external prober) can hand ClouDiA the pairwise cost
    matrix directly instead of using the simulator. The format is plain
    CSV: one row per source instance, comma-separated millisecond costs,
    zero diagonal; [#]-prefixed lines are comments.

    {v
      # 3 instances
      0, 0.41, 0.52
      0.40, 0, 0.77
      0.55, 0.79, 0
    v} *)

val parse : string -> (float array array, string) result
(** Parse CSV text into a square cost matrix. Validates squareness, zero
    diagonal, and finite non-negative entries (the {!Types.problem}
    invariants), returning a descriptive error otherwise. *)

val print : float array array -> string
(** Render a matrix back to the CSV form ([%.6g] per entry; round-trips
    through {!parse} up to that precision). Unsampled entries print as a
    literal ["nan"], which {!parse_raw} reads back (and {!parse}, being
    strict, rejects) — a partial matrix survives a print/parse_raw
    round-trip but cannot sneak through the validating path. *)

val load : string -> (float array array, string) result
(** Read and {!parse} a file. *)

val parse_raw : string -> (float array array, string) result
(** Parse CSV text into rows of floats without enforcing any matrix
    invariant — rows may be ragged and entries may be NaN, infinite or
    negative. This is the linter's entry point: [cloudia lint] must be
    able to load exactly the malformed matrices {!parse} rejects, so it
    can report every problem at once with codes instead of failing on the
    first. A case-insensitive ["nan"] cell parses to [nan] explicitly.
    Only syntax errors (non-numeric cells, no rows) are [Error]. *)

val load_raw : string -> (float array array, string) result
(** Read and {!parse_raw} a file. *)
