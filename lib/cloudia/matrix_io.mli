(** Cost-matrix input/output.

    A tenant who has measured their own allocation (with this repository's
    schemes or any external prober) can hand ClouDiA the pairwise cost
    matrix directly instead of using the simulator. The format is plain
    CSV: one row per source instance, comma-separated millisecond costs,
    zero diagonal; [#]-prefixed lines are comments.

    {v
      # 3 instances
      0, 0.41, 0.52
      0.40, 0, 0.77
      0.55, 0.79, 0
    v} *)

val parse : string -> (float array array, string) result
(** Parse CSV text into a square cost matrix. Validates squareness, zero
    diagonal, and finite non-negative entries (the {!Types.problem}
    invariants), returning a descriptive error otherwise. *)

val print : float array array -> string
(** Render a matrix back to the CSV form ([%.6g] per entry; round-trips
    through {!parse} up to that precision). Unsampled entries print as a
    literal ["nan"], which {!parse_raw} reads back (and {!parse}, being
    strict, rejects) — a partial matrix survives a print/parse_raw
    round-trip but cannot sneak through the validating path. *)

val load : string -> (float array array, string) result
(** Read and {!parse} a file. *)

val parse_raw : string -> (float array array, string) result
(** Parse CSV text into rows of floats without enforcing any matrix
    invariant — rows may be ragged and entries may be NaN, infinite or
    negative. This is the linter's entry point: [cloudia lint] must be
    able to load exactly the malformed matrices {!parse} rejects, so it
    can report every problem at once with codes instead of failing on the
    first. A case-insensitive ["nan"] cell parses to [nan] explicitly.
    Only syntax errors (non-numeric cells, no rows) are [Error]. *)

val load_raw : string -> (float array array, string) result
(** Read and {!parse_raw} a file. *)

(** {2 Binary matrices}

    The on-disk binary format of {!Lat_matrix}: a 64-byte little-endian
    header (magic ["CLDALAT1"], version, storage tag, dims) followed by
    the raw row-major payload, float64 or float32 per the tag. Unlike
    CSV, the binary round trip is exact — every float64 bit pattern,
    NaN included, survives — and a float64 file can be mmapped. *)

val save_binary : string -> Lat_matrix.t -> unit
(** Write a matrix in the binary format ({!Lat_matrix.write_binary});
    the matrix's storage tag picks the element width. Raises [Sys_error]
    on I/O failure. *)

val load_binary : ?mmap:bool -> string -> (Lat_matrix.t, string) result
(** Read a binary matrix file and validate the {!Types.problem}
    invariants: zero diagonal, no negative or infinite entries.
    Off-diagonal NaN (unsampled pairs) is preserved — binary is the
    lossless carrier for partial matrices. [~mmap:true] maps float64
    payloads copy-on-write instead of copying. *)

val load_auto : ?mmap:bool -> string -> (Lat_matrix.t, string) result
(** Sniff the format by magic: binary files go through {!load_binary},
    anything else through the strict CSV {!load}. *)

val load_auto_raw : ?mmap:bool -> string -> (Lat_matrix.t, string) result
(** Format-sniffing load without matrix validation (the linter's entry
    point): binary via {!Lat_matrix.read_binary}, CSV via {!load_raw}.
    Only syntax/framing errors (and ragged CSV rows, which no square
    matrix can hold) are [Error]. *)
