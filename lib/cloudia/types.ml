type problem = {
  graph : Graphs.Digraph.t;
  lat : Lat_matrix.t;
}

let validate_matrix lat =
  let m = Lat_matrix.dim lat in
  for j = 0 to m - 1 do
    for j' = 0 to m - 1 do
      let c = Lat_matrix.unsafe_get lat j j' in
      if j = j' then begin
        if c <> 0.0 then invalid_arg "Types.problem: nonzero diagonal"
      end
      (* nan off-diagonal means "unsampled" (partial measurement) and
         is representable so lint can gate it; infinities and negative
         costs remain malformed. The [c <> c] test is nan. *)
      else if (not (Float.is_finite c)) && not (c <> c) then
        invalid_arg "Types.problem: costs must not be infinite"
      else if c < 0.0 then invalid_arg "Types.problem: costs must be non-negative"
    done
  done

let of_matrix ~graph lat =
  validate_matrix lat;
  if Graphs.Digraph.n graph > Lat_matrix.dim lat then
    invalid_arg "Types.problem: more application nodes than instances";
  { graph; lat }

let problem ~graph ~costs =
  let m = Array.length costs in
  Array.iter
    (fun row ->
      if Array.length row <> m then invalid_arg "Types.problem: cost matrix not square")
    costs;
  of_matrix ~graph (Lat_matrix.of_arrays costs)

let node_count t = Graphs.Digraph.n t.graph
let instance_count t = Lat_matrix.dim t.lat

let[@inline] cost t j j' = Lat_matrix.get t.lat j j'
let[@inline] unsafe_cost t j j' = Lat_matrix.unsafe_get t.lat j j'
let costs t = Lat_matrix.to_arrays t.lat

type plan = int array

let is_valid t plan =
  Array.length plan = node_count t
  && Array.for_all (fun s -> s >= 0 && s < instance_count t) plan
  &&
  let seen = Hashtbl.create (Array.length plan) in
  Array.for_all
    (fun s ->
      if Hashtbl.mem seen s then false
      else begin
        Hashtbl.add seen s ();
        true
      end)
    plan

let validate t plan =
  if Array.length plan <> node_count t then
    invalid_arg "Types.validate: plan length differs from node count";
  Array.iter
    (fun s ->
      if s < 0 || s >= instance_count t then
        invalid_arg "Types.validate: plan maps a node outside the instance set")
    plan;
  if not (is_valid t plan) then invalid_arg "Types.validate: plan is not injective"

let identity_plan t = Array.init (node_count t) (fun i -> i)

let random_plan rng t =
  let perm = Prng.permutation rng (instance_count t) in
  Array.sub perm 0 (node_count t)

let unused_instances t plan =
  let used = Array.make (instance_count t) false in
  Array.iter (fun s -> used.(s) <- true) plan;
  let out = ref [] in
  for s = instance_count t - 1 downto 0 do
    if not used.(s) then out := s :: !out
  done;
  !out

let pp_plan fmt plan =
  Format.fprintf fmt "[";
  Array.iteri (fun i s -> Format.fprintf fmt "%s%d->%d" (if i > 0 then "; " else "") i s) plan;
  Format.fprintf fmt "]"
