(** Mixed-integer programming solvers for both deployment problems
    (Sects. 4.1 and 4.4).

    The encodings mirror the paper's exactly. Longest link:

    {v
      minimize c
      s.t.  Σ_i x_ij = 1            ∀ j ∈ S          (1)
            Σ_j x_ij = 1            ∀ i ∈ V          (2)
            c ≥ CL(j,j')·(x_ij + x_i'j' − 1)
                                    ∀(i,i') ∈ E, ∀ j ≠ j' ∈ S   (3)
    v}

    with V padded by dummy (edgeless) nodes so |V| = |S|. Longest path
    adds per-edge cost variables [c_ii'] bounded by the same product
    linearization, longest-prefix variables [t_i ≥ t_i' + c_i'i] along
    edges, and minimizes their maximum [t].

    The LP relaxation of (3) is weak — [x_ij + x_i'j'] must exceed 1
    before the constraint binds — which is one of the two reasons the
    paper finds MIP uncompetitive with CP on LLNDP (Fig. 7); running these
    encodings through the from-scratch {!Lp.Mip} solver reproduces that
    behaviour at reduced scale. *)

type options = {
  clusters : int option;      (** k-means cost clustering before encoding *)
  time_limit : float;         (** branch-and-bound budget, seconds *)
  node_limit : int option;
  bootstrap_trials : int;     (** random plans seeding the incumbent *)
}

val default_options : options
(** No clustering, 30 s, no node cap, 10 bootstrap trials. *)

type result = {
  plan : Types.plan;
  cost : float;                 (** true cost of the returned plan *)
  trace : (float * float) list; (** (elapsed, true cost) per incumbent *)
  proven_optimal : bool;
  nodes_explored : int;
  nodes_pruned : int;           (** subtrees cut by the incumbent bound *)
}

val solve_longest_link :
  ?options:options ->
  ?edge_weight:(int -> int -> float) ->
  ?stop:(unit -> bool) ->
  ?on_incumbent:(Types.plan -> float -> unit) ->
  Prng.t ->
  Types.problem ->
  result
(** [edge_weight i i'] scales edge [(i, i')]'s contribution to the
    objective (the weighted-graph extension of Sect. 8); constraint (3)
    becomes [c ≥ w_ii'·CL(j,j')·(x_ij + x_i'j' − 1)]. Weights must be
    positive; default 1 everywhere.

    [stop] is polled once per branch-and-bound node and aborts like a hit
    time limit; [on_incumbent] fires with (plan, true cost) for the
    bootstrap incumbent and every improvement — the portfolio hooks. *)

val solve_longest_path :
  ?options:options ->
  ?edge_weight:(int -> int -> float) ->
  ?stop:(unit -> bool) ->
  ?on_incumbent:(Types.plan -> float -> unit) ->
  Prng.t ->
  Types.problem ->
  result
(** Requires an acyclic communication graph. [edge_weight], [stop] and
    [on_incumbent] as in {!solve_longest_link}. *)
