type objective = Longest_link | Longest_path

let objective_to_string = function
  | Longest_link -> "longest-link"
  | Longest_path -> "longest-path"

let longest_link_witness (t : Types.problem) plan =
  (* Initialize below any real edge cost: with [0.0] and strict [>], an
     all-zero (or, defensively, negative) cost matrix reported no witness
     and cost 0.0 even when edges exist. *)
  let lat = Lat_matrix.data t.Types.lat in
  let best = ref neg_infinity and witness = ref None in
  let poisoned = ref None in
  Array.iter
    (fun (i, i') ->
      let c = Bigarray.Array2.unsafe_get lat plan.(i) plan.(i') in
      (* An unsampled link under the plan poisons the whole evaluation:
         [c > !best] is false for nan, so without this the edge would be
         silently skipped and a partial matrix would look cheap. *)
      if Float.is_nan c then begin
        if !poisoned = None then poisoned := Some (i, i')
      end
      else if c > !best then begin
        best := c;
        witness := Some (i, i')
      end)
    (Graphs.Digraph.edges t.Types.graph);
  match !poisoned with
  | Some _ -> (nan, !poisoned)
  | None -> (
      match !witness with None -> (0.0, None) | Some _ -> (!best, !witness))

let longest_link t plan = fst (longest_link_witness t plan)

let longest_path (t : Types.problem) plan =
  (* Same poisoning rule: any nan edge used by the plan makes the cost
     nan, rather than vanishing inside max-comparisons. *)
  let lat = Lat_matrix.data t.Types.lat in
  let edges = Graphs.Digraph.edges t.Types.graph in
  if
    Array.exists
      (fun (i, i') -> Float.is_nan (Bigarray.Array2.unsafe_get lat plan.(i) plan.(i')))
      edges
  then nan
  else
    Graphs.Digraph.longest_path t.Types.graph ~weight:(fun i i' ->
        Bigarray.Array2.unsafe_get lat plan.(i) plan.(i'))

let eval = function
  | Longest_link -> longest_link
  | Longest_path -> longest_path

let improvement ~default ~optimized =
  (* A non-positive baseline makes the ratio meaningless (and a negative
     one would flip its sign): report "no improvement" instead. *)
  if default <= 0.0 then 0.0 else (default -. optimized) /. default *. 100.0
