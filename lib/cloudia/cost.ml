type objective = Longest_link | Longest_path

let objective_to_string = function
  | Longest_link -> "longest-link"
  | Longest_path -> "longest-path"

let longest_link_witness (t : Types.problem) plan =
  (* Initialize below any real edge cost: with [0.0] and strict [>], an
     all-zero (or, defensively, negative) cost matrix reported no witness
     and cost 0.0 even when edges exist. *)
  let best = ref neg_infinity and witness = ref None in
  Array.iter
    (fun (i, i') ->
      let c = t.Types.costs.(plan.(i)).(plan.(i')) in
      if c > !best then begin
        best := c;
        witness := Some (i, i')
      end)
    (Graphs.Digraph.edges t.Types.graph);
  match !witness with None -> (0.0, None) | Some _ -> (!best, !witness)

let longest_link t plan = fst (longest_link_witness t plan)

let longest_path (t : Types.problem) plan =
  Graphs.Digraph.longest_path t.Types.graph ~weight:(fun i i' ->
      t.Types.costs.(plan.(i)).(plan.(i')))

let eval = function
  | Longest_link -> longest_link
  | Longest_path -> longest_path

let improvement ~default ~optimized =
  (* A non-positive baseline makes the ratio meaningless (and a negative
     one would flip its sign): report "no improvement" instead. *)
  if default <= 0.0 then 0.0 else (default -. optimized) /. default *. 100.0
