(* Incremental objective evaluation for local-search moves. See the .mli
   for the contract; the representation notes live here.

   Longest link keeps, per edge, its current cost and the rank of that
   cost among the distinct values of the cost matrix, plus a count of
   edges per rank. The maximum is answered by a top-rank pointer that
   only needs to move down past empty ranks (lazily), because every
   update that could raise the maximum bumps the pointer up eagerly.
   Ranks are precomputed per ordered instance pair, and the undo log is a
   preallocated array, so a proposal allocates nothing on this path.

   Longest path keeps the DAG relaxation array dist.(v) = best path cost
   ending at v. A move can only change dist at topological positions >=
   the earliest moved node, so proposals re-relax that suffix into a
   scratch buffer and commit copies it back. Reads during the suffix pass
   pick scratch or dist by position, so nothing is copied on abort. *)

let c_proposals = Obs.Counter.make "delta.proposals"
let c_fallbacks = Obs.Counter.make "delta.fallback_evals"

type link_state = {
  lat : Lat_matrix.buffer; (* hoisted flat cost buffer: direct loads *)
  edge_src : int array;
  edge_dst : int array;
  incident : int array array; (* node -> edge indices (in + out) *)
  values : float array; (* rank -> distinct cost value, ascending *)
  m : int; (* instance count: the row stride of [rank_mat] *)
  rank_mat : int array; (* flat [j * m + j'] -> rank of that pair's cost *)
  count : int array; (* rank -> edges currently at this cost *)
  mutable max_rank : int; (* >= highest non-empty rank; exact after queries *)
  edge_cost : float array;
  edge_rank : int array;
  touched : int array; (* edge -> stamp of the proposal that last visited it *)
  mutable stamp : int;
  (* Undo log of the pending proposal, valid on [0, u_len). *)
  u_edge : int array;
  u_cost : float array;
  u_rank : int array;
  mutable u_len : int;
}

type path_state = {
  lat : Lat_matrix.buffer; (* hoisted flat cost buffer: direct loads *)
  order : int array; (* topological order of the communication DAG *)
  pos : int array; (* node -> its position in [order] *)
  dist : float array; (* committed relaxation *)
  scratch : float array; (* proposal relaxation, valid from the prefix on *)
}

type repr =
  | Link of link_state
  | Path of path_state
  | Opaque of (Types.plan -> float)

type t = {
  problem : Types.problem;
  repr : repr;
  plan : int array;
  node_of : int array; (* instance -> node, or -1 when free *)
  cost : float array; (* singleton: committed cost, stored unboxed *)
  (* Pending proposal; meaningful only while [p_active]. *)
  mutable p_active : bool;
  mutable p_node : int;
  mutable p_other : int; (* the swapped node, or -1 when the target was free *)
  mutable p_source : int;
  mutable p_target : int;
  mutable p_prefix : int; (* Path only: first re-relaxed topological position *)
  p_cost : float array; (* singleton: proposed cost, stored unboxed *)
  mutable proposals : int;
  mutable fallbacks : int;
}

(* ---------- construction and (re)synchronization ---------- *)

(* The plan-independent half of a longest-link kernel: distinct
   off-diagonal matrix values and the flat pair -> rank table. O(m²) to
   build, immutable afterwards, so a serving cache can compute it once
   per matrix fingerprint and share it across every job and kernel that
   sees the same matrix. *)
type ranks = {
  r_values : float array; (* rank -> distinct cost value, ascending *)
  r_m : int; (* instance count the table was built for *)
  r_rank_mat : int array; (* flat [j * m + j'] -> rank of that pair's cost *)
}

(* Distinct off-diagonal matrix values: every edge cost under every
   injective plan is one of them, so rank lookup never misses. *)
let ranks_of_matrix lat =
  let m = Lat_matrix.dim lat in
  let seen = Hashtbl.create (m * m) in
  let distinct = ref [] in
  Lat_matrix.iter
    (fun j j' c ->
      if j <> j' && not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        distinct := c :: !distinct
      end)
    lat;
  let values = Array.of_list !distinct in
  Array.sort Float.compare values;
  let rank_of = Hashtbl.create (Array.length values) in
  Array.iteri (fun r v -> Hashtbl.add rank_of v r) values;
  let rank_mat =
    Array.init (m * m) (fun k ->
        let j = k / m and j' = k mod m in
        if j = j' then 0 else Hashtbl.find rank_of (Lat_matrix.unsafe_get lat j j'))
  in
  { r_values = values; r_m = m; r_rank_mat = rank_mat }

let make_link ?ranks (problem : Types.problem) =
  let graph = problem.Types.graph in
  let n = Graphs.Digraph.n graph in
  let edges = Graphs.Digraph.edges graph in
  let incident_lists = Array.make n [] in
  Array.iteri
    (fun e (i, i') ->
      incident_lists.(i) <- e :: incident_lists.(i);
      incident_lists.(i') <- e :: incident_lists.(i'))
    edges;
  let lat = problem.Types.lat in
  let m = Lat_matrix.dim lat in
  let r =
    match ranks with
    | Some r ->
        if r.r_m <> m then
          invalid_arg
            (Printf.sprintf "Delta_cost.create: ranks built for %d instances, matrix has %d"
               r.r_m m);
        r
    | None -> ranks_of_matrix lat
  in
  let ne = Array.length edges in
  {
    lat = Lat_matrix.data lat;
    edge_src = Array.map fst edges;
    edge_dst = Array.map snd edges;
    incident = Array.map (fun l -> Array.of_list l) incident_lists;
    values = r.r_values;
    m;
    rank_mat = r.r_rank_mat;
    count = Array.make (max 1 (Array.length r.r_values)) 0;
    max_rank = -1;
    edge_cost = Array.make ne 0.0;
    edge_rank = Array.make ne 0;
    touched = Array.make ne 0;
    stamp = 0;
    u_edge = Array.make ne 0;
    u_cost = Array.make ne 0.0;
    u_rank = Array.make ne 0;
    u_len = 0;
  }

let sync_link (t : t) ls =
  Array.fill ls.count 0 (Array.length ls.count) 0;
  ls.max_rank <- -1;
  ls.u_len <- 0;
  for e = 0 to Array.length ls.edge_src - 1 do
    let j = t.plan.(ls.edge_src.(e)) and j' = t.plan.(ls.edge_dst.(e)) in
    let c = Bigarray.Array2.unsafe_get ls.lat j j' in
    let r = ls.rank_mat.((j * ls.m) + j') in
    ls.edge_cost.(e) <- c;
    ls.edge_rank.(e) <- r;
    ls.count.(r) <- ls.count.(r) + 1;
    if r > ls.max_rank then ls.max_rank <- r
  done

let link_top ls =
  if Array.length ls.edge_src = 0 then 0.0
  else begin
    while ls.max_rank > 0 && ls.count.(ls.max_rank) = 0 do
      ls.max_rank <- ls.max_rank - 1
    done;
    ls.values.(ls.max_rank)
  end

let relax_at (t : t) ~lat ~read v =
  let best = ref 0.0 in
  Array.iter
    (fun u ->
      let c = read u +. Bigarray.Array2.unsafe_get lat t.plan.(u) t.plan.(v) in
      if c > !best then best := c)
    (Graphs.Digraph.in_neighbors t.problem.Types.graph v);
  !best

let sync_path (t : t) ps =
  let read u = ps.dist.(u) in
  Array.iter (fun v -> ps.dist.(v) <- relax_at t ~lat:ps.lat ~read v) ps.order;
  Array.fold_left Float.max 0.0 ps.dist

let sync t =
  match t.repr with
  | Link ls ->
      sync_link t ls;
      t.cost.(0) <- link_top ls
  | Path ps -> t.cost.(0) <- sync_path t ps
  | Opaque eval -> t.cost.(0) <- eval t.plan

let of_repr problem repr plan0 =
  Types.validate problem plan0;
  let plan = Array.copy plan0 in
  let node_of = Array.make (Types.instance_count problem) (-1) in
  Array.iteri (fun node inst -> node_of.(inst) <- node) plan;
  let t =
    {
      problem;
      repr;
      plan;
      node_of;
      cost = [| 0.0 |];
      p_active = false;
      p_node = -1;
      p_other = -1;
      p_source = -1;
      p_target = -1;
      p_prefix = 0;
      p_cost = [| 0.0 |];
      proposals = 0;
      fallbacks = 0;
    }
  in
  sync t;
  t

let create ?ranks objective problem plan0 =
  let repr =
    match objective with
    | Cost.Longest_link -> Link (make_link ?ranks problem)
    | Cost.Longest_path -> (
        match Graphs.Digraph.topological_order problem.Types.graph with
        | None ->
            invalid_arg
              "Delta_cost.create: the longest-path objective needs an acyclic graph"
        | Some order ->
            let n = Array.length order in
            let pos = Array.make n 0 in
            Array.iteri (fun k v -> pos.(v) <- k) order;
            Path
              {
                lat = Lat_matrix.data problem.Types.lat;
                order;
                pos;
                dist = Array.make n 0.0;
                scratch = Array.make n 0.0;
              })
  in
  of_repr problem repr plan0

let create_eval ~eval problem plan0 = of_repr problem (Opaque eval) plan0

let reset t plan0 =
  if t.p_active then invalid_arg "Delta_cost.reset: a proposal is pending";
  Types.validate t.problem plan0;
  Array.blit plan0 0 t.plan 0 (Array.length t.plan);
  Array.fill t.node_of 0 (Array.length t.node_of) (-1);
  Array.iteri (fun node inst -> t.node_of.(inst) <- node) t.plan;
  sync t

(* ---------- accessors ---------- *)

let cost t = t.cost.(0)
let current t = t.plan
let plan t = Array.copy t.plan
let instance_of t node = t.plan.(node)
let occupant t inst = match t.node_of.(inst) with -1 -> None | node -> Some node
let proposals t = t.proposals
let fallback_evals t = t.fallbacks

let full_cost t =
  if t.p_active then invalid_arg "Delta_cost.full_cost: a proposal is pending";
  match t.repr with
  | Link _ -> Cost.longest_link t.problem t.plan
  | Path _ -> Cost.longest_path t.problem t.plan
  | Opaque eval -> eval t.plan

let flush_counters t =
  Obs.Counter.add c_proposals t.proposals;
  Obs.Counter.add c_fallbacks t.fallbacks;
  t.proposals <- 0;
  t.fallbacks <- 0

(* ---------- the propose / commit / abort protocol ---------- *)

(* [@cloudia.hot]: pass A003 proves the incident-edge sweep stays
   allocation-free — the anneal moves/sec gate (bench fig-delta) decays
   the moment this loop allocates. *)
let[@cloudia.hot] touch_incident t ls moved =
  let inc = ls.incident.(moved) in
  for k = 0 to Array.length inc - 1 do
    let e = inc.(k) in
    if ls.touched.(e) <> ls.stamp then begin
      ls.touched.(e) <- ls.stamp;
      let j = t.plan.(ls.edge_src.(e)) and j' = t.plan.(ls.edge_dst.(e)) in
      let c = Bigarray.Array2.unsafe_get ls.lat j j' in
      if c <> ls.edge_cost.(e) then begin
        let r_old = ls.edge_rank.(e) in
        let r_new = ls.rank_mat.((j * ls.m) + j') in
        let u = ls.u_len in
        ls.u_edge.(u) <- e;
        ls.u_cost.(u) <- ls.edge_cost.(e);
        ls.u_rank.(u) <- r_old;
        ls.u_len <- u + 1;
        ls.count.(r_old) <- ls.count.(r_old) - 1;
        ls.count.(r_new) <- ls.count.(r_new) + 1;
        if r_new > ls.max_rank then ls.max_rank <- r_new;
        ls.edge_cost.(e) <- c;
        ls.edge_rank.(e) <- r_new
      end
    end
  done

let[@cloudia.hot] propose_move t ~node ~target =
  if t.p_active then invalid_arg "Delta_cost.propose: a proposal is pending";
  let n = Array.length t.plan and m = Array.length t.node_of in
  if node < 0 || node >= n then invalid_arg "Delta_cost.propose: node out of range";
  if target < 0 || target >= m then invalid_arg "Delta_cost.propose: target out of range";
  let source = t.plan.(node) in
  if target = source then invalid_arg "Delta_cost.propose: node already occupies target";
  let other = t.node_of.(target) in
  (* Apply tentatively; [abort] reverts, [commit] keeps. *)
  t.plan.(node) <- target;
  t.node_of.(target) <- node;
  t.node_of.(source) <- other;
  if other <> -1 then t.plan.(other) <- source;
  t.proposals <- t.proposals + 1;
  t.p_prefix <- 0;
  let candidate =
    match t.repr with
    | Opaque eval ->
        t.fallbacks <- t.fallbacks + 1;
        eval t.plan
    | Link ls ->
        ls.stamp <- ls.stamp + 1;
        ls.u_len <- 0;
        touch_incident t ls node;
        if other <> -1 then touch_incident t ls other;
        link_top ls
    | Path ps ->
        let prefix =
          if other = -1 then ps.pos.(node) else min ps.pos.(node) ps.pos.(other)
        in
        if prefix = 0 then t.fallbacks <- t.fallbacks + 1;
        let read u = if ps.pos.(u) >= prefix then ps.scratch.(u) else ps.dist.(u) in
        for k = prefix to Array.length ps.order - 1 do
          let v = ps.order.(k) in
          ps.scratch.(v) <- relax_at t ~lat:ps.lat ~read v
        done;
        let best = ref 0.0 in
        for v = 0 to Array.length ps.order - 1 do
          let d = read v in
          if d > !best then best := d
        done;
        t.p_prefix <- prefix;
        !best
  in
  t.p_active <- true;
  t.p_node <- node;
  t.p_other <- other;
  t.p_source <- source;
  t.p_target <- target;
  t.p_cost.(0) <- candidate;
  candidate

let propose_swap t a b =
  if a = b then invalid_arg "Delta_cost.propose_swap: the two nodes must differ";
  let n = Array.length t.plan in
  if b < 0 || b >= n then invalid_arg "Delta_cost.propose_swap: node out of range";
  propose_move t ~node:a ~target:t.plan.(b)

let propose_relocate t ~node ~target =
  let m = Array.length t.node_of in
  if target < 0 || target >= m then
    invalid_arg "Delta_cost.propose_relocate: target out of range";
  if t.node_of.(target) <> -1 then
    invalid_arg "Delta_cost.propose_relocate: target instance is occupied";
  propose_move t ~node ~target

let commit t =
  if not t.p_active then invalid_arg "Delta_cost.commit: no pending proposal";
  (match t.repr with
  | Path ps ->
      for k = t.p_prefix to Array.length ps.order - 1 do
        let v = ps.order.(k) in
        ps.dist.(v) <- ps.scratch.(v)
      done
  | Link ls -> ls.u_len <- 0
  | Opaque _ -> ());
  t.cost.(0) <- t.p_cost.(0);
  t.p_active <- false

let abort t =
  if not t.p_active then invalid_arg "Delta_cost.abort: no pending proposal";
  t.plan.(t.p_node) <- t.p_source;
  t.node_of.(t.p_source) <- t.p_node;
  t.node_of.(t.p_target) <- t.p_other;
  if t.p_other <> -1 then t.plan.(t.p_other) <- t.p_target;
  (match t.repr with
  | Link ls ->
      for k = ls.u_len - 1 downto 0 do
        let e = ls.u_edge.(k) in
        let r_new = ls.edge_rank.(e) in
        ls.count.(r_new) <- ls.count.(r_new) - 1;
        ls.count.(ls.u_rank.(k)) <- ls.count.(ls.u_rank.(k)) + 1;
        (* The lazy top pointer may have slid past a rank this undo
           repopulates; restore the upper-bound invariant. *)
        if ls.u_rank.(k) > ls.max_rank then ls.max_rank <- ls.u_rank.(k);
        ls.edge_cost.(e) <- ls.u_cost.(k);
        ls.edge_rank.(e) <- ls.u_rank.(k)
      done;
      ls.u_len <- 0
  | Path _ | Opaque _ -> ());
  t.p_active <- false
