let cost_matrix target ~edge_cost ~non_edge_cost =
  let m = Graphs.Digraph.n target in
  Array.init m (fun j ->
      Array.init m (fun j' ->
          if j = j' then 0.0
          else if Graphs.Digraph.mem_edge target j j' then edge_cost
          else non_edge_cost))

let llndp_of_sip ~pattern ~target =
  if Graphs.Digraph.n pattern > Graphs.Digraph.n target then
    invalid_arg "Reduction.llndp_of_sip: pattern larger than target";
  Types.problem ~graph:pattern
    ~costs:(cost_matrix target ~edge_cost:1.0 ~non_edge_cost:2.0)

let lpndp_of_sip ~pattern ~target =
  if Graphs.Digraph.n pattern > Graphs.Digraph.n target then
    invalid_arg "Reduction.lpndp_of_sip: pattern larger than target";
  if not (Graphs.Digraph.is_dag pattern) then
    invalid_arg "Reduction.lpndp_of_sip: pattern must be acyclic for LPNDP";
  let penalty = float_of_int (Graphs.Digraph.edge_count pattern + 1) in
  Types.problem ~graph:pattern
    ~costs:(cost_matrix target ~edge_cost:1.0 ~non_edge_cost:penalty)

let embeds ~pattern ~target plan =
  Array.length plan = Graphs.Digraph.n pattern
  && (let seen = Hashtbl.create (Array.length plan) in
      Array.for_all
        (fun s ->
          if s < 0 || s >= Graphs.Digraph.n target || Hashtbl.mem seen s then false
          else begin
            Hashtbl.add seen s ();
            true
          end)
        plan)
  && Array.for_all
       (fun (i, i') -> Graphs.Digraph.mem_edge target plan.(i) plan.(i'))
       (Graphs.Digraph.edges pattern)

let distinct_costs rng (t : Types.problem) =
  let m = Types.instance_count t in
  let costs =
    Array.init m (fun j ->
        Array.init m (fun j' ->
            if j = j' then 0.0
            else Types.unsafe_cost t j j' +. Prng.float rng 1e-6))
  in
  Types.problem ~graph:t.Types.graph ~costs
