type t = Mean | Mean_plus_sd | P99

let to_string = function
  | Mean -> "mean"
  | Mean_plus_sd -> "mean+sd"
  | P99 -> "p99"

let of_string = function
  | "mean" -> Some Mean
  | "mean+sd" -> Some Mean_plus_sd
  | "p99" -> Some P99
  | _ -> None

let of_samples metric samples =
  (* A single NaN sample would otherwise propagate through every reduction
     into the cost matrix and from there through the solvers' DP tables. *)
  Array.iteri
    (fun i s ->
      if not (Float.is_finite s) then
        invalid_arg
          (Printf.sprintf "Metrics.of_samples: sample %d is %s; RTT samples must be finite" i
             (if Float.is_nan s then "NaN" else "infinite")))
    samples;
  match metric with
  | Mean -> Stats.Summary.mean samples
  | Mean_plus_sd -> Stats.Summary.mean samples +. Stats.Summary.stddev samples
  | P99 -> Stats.Summary.percentile samples 99.0

let c_samples = Obs.Counter.make "metrics.rtt_samples"

(* The fault-free advise path samples the environment directly (no
   Netmeasure scheme in between), so it feeds its own always-on RTT
   histogram. *)
let h_rtt = Obs.Histogram.make "metrics.rtt_ms"

let draw_samples rng env ~samples_per_pair =
  if samples_per_pair <= 0 then invalid_arg "Metrics: need a positive sample count";
  let n = Cloudsim.Env.count env in
  Obs.Counter.add c_samples (n * (n - 1) * samples_per_pair);
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then [||]
          else
            Array.init samples_per_pair (fun _ ->
                let rtt = Cloudsim.Env.sample_rtt rng env i j in
                Obs.Histogram.record h_rtt rtt;
                rtt)))

let reduce metric samples =
  let n = Array.length samples in
  Lat_matrix.init n (fun i j ->
      let s = samples.(i).(j) in
      if Array.length s = 0 then 0.0 else of_samples metric s)

let estimate rng env metric ~samples_per_pair =
  reduce metric (draw_samples rng env ~samples_per_pair)

let estimate_all rng env ~samples_per_pair =
  let samples = draw_samples rng env ~samples_per_pair in
  fun metric -> reduce metric samples
