type t = {
  rounded : Lat_matrix.t;
  levels : float array;
}

let copy lat = Lat_matrix.init (Lat_matrix.dim lat) (fun j j' -> Lat_matrix.unsafe_get lat j j')

(* Non-finite off-diagonals are legal (NaN marks unsampled pairs): they
   must neither reach Kmeans1d (whose guard raises) nor the level set
   (where NaN defeats dedup and poisons thresholds_below). *)
let finite_off_diagonal lat =
  let values = Lat_matrix.off_diagonal lat in
  let n = ref 0 in
  Array.iter (fun v -> if Float.is_finite v then incr n) values;
  if !n = Array.length values then values
  else begin
    let out = Array.make !n 0.0 in
    let k = ref 0 in
    Array.iter
      (fun v ->
        if Float.is_finite v then begin
          out.(!k) <- v;
          incr k
        end)
      values;
    out
  end

let cluster ~k lat =
  if k <= 0 then invalid_arg "Clustering.cluster: k must be positive";
  let values = finite_off_diagonal lat in
  if Array.length values = 0 then { rounded = copy lat; levels = [||] }
  else begin
    let k = min k (Stats.Kmeans1d.distinct_count values) in
    let result = Stats.Kmeans1d.cluster ~k values in
    let rounded =
      Lat_matrix.init (Lat_matrix.dim lat) (fun j j' ->
          if j = j' then 0.0
          else
            let v = Lat_matrix.unsafe_get lat j j' in
            if Float.is_finite v then Stats.Kmeans1d.assign result v else v)
    in
    { rounded; levels = Array.copy result.Stats.Kmeans1d.centers }
  end

let none lat =
  let values = finite_off_diagonal lat in
  let distinct =
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let out = ref [] in
    Array.iter
      (fun v -> match !out with x :: _ when Float.equal x v -> () | _ -> out := v :: !out)
      sorted;
    Array.of_list (List.rev !out)
  in
  { rounded = copy lat; levels = distinct }

let thresholds_below t cost =
  Array.fold_left (fun acc level -> if level < cost then level :: acc else acc) [] t.levels
