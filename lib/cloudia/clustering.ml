type t = {
  rounded : Lat_matrix.t;
  levels : float array;
}

let copy lat = Lat_matrix.init (Lat_matrix.dim lat) (fun j j' -> Lat_matrix.unsafe_get lat j j')

let cluster ~k lat =
  let values = Lat_matrix.off_diagonal lat in
  if Array.length values = 0 then { rounded = copy lat; levels = [||] }
  else begin
    let result = Stats.Kmeans1d.cluster ~k values in
    let rounded =
      Lat_matrix.init (Lat_matrix.dim lat) (fun j j' ->
          if j = j' then 0.0
          else Stats.Kmeans1d.assign result (Lat_matrix.unsafe_get lat j j'))
    in
    { rounded; levels = Array.copy result.Stats.Kmeans1d.centers }
  end

let none lat =
  let values = Lat_matrix.off_diagonal lat in
  let distinct =
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let out = ref [] in
    Array.iter
      (fun v -> match !out with x :: _ when x = v -> () | _ -> out := v :: !out)
      sorted;
    Array.of_list (List.rev !out)
  in
  { rounded = copy lat; levels = distinct }

let thresholds_below t cost =
  Array.fold_left (fun acc level -> if level < cost then level :: acc else acc) [] t.levels
