(** CP solver for the Longest Link Node Deployment Problem (Sect. 4.2).

    The paper's key insight: a deployment of cost ≤ c exists iff the
    communication graph embeds (subgraph-isomorphically) into the
    threshold graph [Gc = (S, {(j,j') : CL(j,j') ≤ c})]. The solver
    therefore iterates feasibility problems: start from an incumbent (best
    of a few random plans), repeatedly ask for an embedding strictly
    cheaper than the incumbent's worst link, and stop at UNSAT (optimal
    under the rounded costs) or timeout.

    Each feasibility problem is the CSP of the paper's (CP) encoding —
    [alldifferent] over the node variables plus forbidden pairs
    [(u_i, u_i') ≠ (j, j')] for links above the threshold — with optional
    root filtering by iterated-degree compatibility labels (Zampelli et
    al.), and k-means cost clustering to bound the number of iterations. *)

type options = {
  clusters : int option;         (** k-means cluster count; [None] = exact costs *)
  time_limit : float;            (** overall wall-clock budget, seconds *)
  iteration_time_limit : float option;
      (** cap per feasibility solve; [None] = whatever remains *)
  use_labeling : bool;           (** apply degree-compatibility root filtering *)
  bootstrap_trials : int;        (** random plans seeding the incumbent (paper: 10) *)
  symmetry_breaking : bool;
      (** branch over one representative per instance-interchangeability
          class (instances with exactly identical true-cost rows/columns,
          e.g. same rack). Classes use exact float equality, so noisy
          measured matrices yield none and the search is unchanged;
          symmetric topologies prune all but one of each bundle of
          equivalent subtrees. Cost of the returned plan is unaffected. *)
}

val default_options : options
(** k = 20 clusters, 60 s budget, no per-iteration cap, labeling on,
    10 bootstrap trials, symmetry breaking on. *)

type result = {
  plan : Types.plan;
  cost : float;                  (** true (uncluster-ed) longest-link cost *)
  trace : (float * float) list;  (** (elapsed seconds, true cost) at each
                                     incumbent improvement, oldest first;
                                     includes the bootstrap incumbent at
                                     time ~0 *)
  iterations : int;              (** feasibility problems solved *)
  nodes : int;                   (** CP search nodes across all dives *)
  failures : int;                (** CP dead ends across all dives *)
  propagations : int;            (** propagation passes across all dives *)
  proven_optimal : bool;         (** UNSAT reached: optimal w.r.t. the
                                     rounded cost matrix *)
}

val solve :
  ?options:options ->
  ?clustering:Clustering.t ->
  ?warm_start:Types.plan ->
  ?edge_weight:(int -> int -> float) ->
  ?order_values:bool ->
  ?max_iterations:int ->
  ?node_limit:int ->
  ?stop:(unit -> bool) ->
  ?peek:(unit -> Types.plan option) ->
  ?on_incumbent:(Types.plan -> float -> unit) ->
  Prng.t ->
  Types.problem ->
  result
(** Serving hooks. [clustering] supplies a precomputed clustering of this
    problem's cost matrix (e.g. a fingerprint-keyed cache hit), replacing
    the internal [Clustering.cluster]/[none] call; [options.clusters] is
    then ignored. Raises [Invalid_argument] on a dimension mismatch.
    [warm_start] seeds the incumbent with a known-good plan (the previous
    incumbent of a matching matrix fingerprint): it is adopted only if it
    beats the bootstrap draw under the rounded objective, and the
    bootstrap consumes the same random draws either way, so solves
    without a competitive warm start are unchanged. Raises
    [Invalid_argument] if the plan has the wrong length, an out-of-range
    instance, or a repeated instance.

    [edge_weight i i'] scales the cost of communication edge [(i, i')] in
    the objective — the weighted-communication-graph extension the paper
    lists as future work (Sect. 8). Weights must be positive; the
    threshold iteration generalizes to the candidate values
    {weight × cost level}, and each distinct weight gets its own
    forbidden-pair matrix. Compatibility labeling is disabled when weights
    are non-uniform (different edges then see different threshold graphs,
    so a single degree-compatibility test would be unsound). Default: all
    weights 1 (the paper's problem).

    [order_values] (default [true]) branches on instances with the
    cheapest average connectivity first — a value-ordering heuristic that
    speeds the feasibility dives without affecting completeness; disable
    it to reproduce plain lexicographic search.

    Portfolio hooks. [max_iterations] caps the number of feasibility
    problems solved (a wall-clock-free budget for reproducible tests).
    [node_limit] caps the total CP search nodes across all dives — the
    deterministic budget the scaling bench uses to compare broken vs
    unbroken symmetry without wall-clock noise; hitting it ends the solve
    with the incumbent, like a timeout.
    [stop] is polled between iterations and at every search node of the
    current dive; returning [true] ends the solve with the incumbent so
    far. [peek] exposes the best plan found by any other portfolio worker:
    it is consulted before each threshold iteration, and a strictly better
    (under the rounded objective) external plan replaces the incumbent so
    the next feasibility threshold starts below it. [on_incumbent] fires
    with (plan, true cost) for the bootstrap incumbent and for every plan
    this solver finds itself — adopted external plans are not echoed
    back. *)
