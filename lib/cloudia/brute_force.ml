let solve ?(max_instances = 10) objective (t : Types.problem) =
  let n = Types.node_count t and m = Types.instance_count t in
  if m > max_instances then
    invalid_arg "Brute_force.solve: instance count exceeds the safety bound";
  let plan = Array.make n (-1) in
  let used = Array.make m false in
  let best_plan = ref None and best_cost = ref infinity in
  (* For the longest-link objective the partial maximum only grows, so we
     can prune as soon as it reaches the incumbent. Longest path lacks
     that monotone partial evaluation, so it is evaluated at the leaves. *)
  let partial_ll node inst =
    (* Max cost of communication edges between [node] (about to be placed
       on [inst]) and already-placed neighbors. *)
    let worst = ref 0.0 in
    Array.iter
      (fun w ->
        if plan.(w) <> -1 then begin
          if Graphs.Digraph.mem_edge t.Types.graph node w then
            worst := Float.max !worst (Types.unsafe_cost t inst plan.(w));
          if Graphs.Digraph.mem_edge t.Types.graph w node then
            worst := Float.max !worst (Types.unsafe_cost t plan.(w) inst)
        end)
      (Graphs.Digraph.undirected_neighbors t.Types.graph node);
    !worst
  in
  let rec go node current_ll =
    if node = n then begin
      let c =
        match objective with
        | Cost.Longest_link -> current_ll
        | Cost.Longest_path -> Cost.longest_path t plan
      in
      if c < !best_cost then begin
        best_cost := c;
        best_plan := Some (Array.copy plan)
      end
    end
    else
      for inst = 0 to m - 1 do
        if not used.(inst) then begin
          let extension =
            match objective with
            | Cost.Longest_link -> Float.max current_ll (partial_ll node inst)
            | Cost.Longest_path -> current_ll
          in
          if extension < !best_cost || objective = Cost.Longest_path then begin
            plan.(node) <- inst;
            used.(inst) <- true;
            go (node + 1) extension;
            used.(inst) <- false;
            plan.(node) <- -1
          end
        end
      done
  in
  go 0 0.0;
  match !best_plan with
  | Some p -> (p, !best_cost)
  | None ->
      (* n >= 1 and m >= n guarantee at least one injection exists; the
         only way to get here is pruning every branch, which cannot happen
         because the first full plan is always accepted. *)
      assert false
