type config = {
  epochs : int;
  change_prob : float;
  change_fraction : float;
  change_magnitude : float;
  migration_cost : float;
  solver_budget : float;
}

let default_config =
  {
    epochs = 20;
    change_prob = 0.3;
    change_fraction = 0.2;
    change_magnitude = 0.5;
    migration_cost = 1.0;
    solver_budget = 1.0;
  }

type epoch_record = {
  epoch : int;
  changed : bool;
  cost_current : float;
  cost_candidate : float;
  cost_adaptive : float;
  migrated : bool;
}

type summary = {
  records : epoch_record list;
  migrations : int;
  adaptive_total : float;
  static_total : float;
  oracle_total : float;
}

let optimize config rng problem =
  (* Clustering.cluster clamps k to the distinct finite off-diagonal
     count, so the default k = 20 is safe on instances with few distinct
     latencies. *)
  (Cp_solver.solve
     ~options:{ Cp_solver.default_options with time_limit = config.solver_budget }
     rng problem)
    .Cp_solver.plan

let simulate ?(config = default_config) rng provider ~graph ~over_allocation =
  if config.epochs <= 0 then invalid_arg "Redeploy.simulate: need a positive horizon";
  let nodes = Graphs.Digraph.n graph in
  let count =
    int_of_float (Float.ceil (float_of_int nodes *. (1.0 +. over_allocation)))
  in
  let env = ref (Cloudsim.Env.allocate rng provider ~count) in
  let problem_of env = Types.problem ~graph ~costs:(Cloudsim.Env.mean_matrix env) in
  let initial_plan = optimize config rng (problem_of !env) in
  let adaptive_plan = ref initial_plan in
  let static_plan = initial_plan in
  let last_candidate = ref initial_plan in
  let migrations = ref 0 in
  let adaptive_total = ref 0.0 in
  let static_total = ref 0.0 in
  let oracle_total = ref 0.0 in
  let records = ref [] in
  for epoch = 1 to config.epochs do
    let changed = Prng.uniform rng < config.change_prob in
    if changed then
      env :=
        Cloudsim.Env.perturb rng !env ~fraction:config.change_fraction
          ~magnitude:config.change_magnitude;
    let problem = problem_of !env in
    let cost_current = Cost.longest_link problem !adaptive_plan in
    (* Unchanged environment ⇒ identical problem: the previous epoch's
       candidate is still a solution of this instance, so skip the solver
       (a change_prob-zero horizon pays for one optimize in total). *)
    let candidate = if changed then optimize config rng problem else !last_candidate in
    last_candidate := candidate;
    let cost_candidate = Cost.longest_link problem candidate in
    (* Re-deploy when the saving over the remaining horizon beats the
       one-off migration cost. *)
    let remaining = float_of_int (config.epochs - epoch + 1) in
    let saving = (cost_current -. cost_candidate) *. remaining in
    let migrated = saving > config.migration_cost in
    if migrated then begin
      incr migrations;
      adaptive_plan := candidate;
      adaptive_total := !adaptive_total +. config.migration_cost
    end;
    let cost_adaptive = Cost.longest_link problem !adaptive_plan in
    adaptive_total := !adaptive_total +. cost_adaptive;
    static_total := !static_total +. Cost.longest_link problem static_plan;
    oracle_total := !oracle_total +. cost_candidate;
    records :=
      { epoch; changed; cost_current; cost_candidate; cost_adaptive; migrated } :: !records
  done;
  {
    records = List.rev !records;
    migrations = !migrations;
    adaptive_total = !adaptive_total;
    static_total = !static_total;
    oracle_total = !oracle_total;
  }
