(** The end-to-end deployment advisor (Sect. 2.2, Fig. 3).

    One call runs the paper's four-step tuning methodology against a
    simulated public cloud:

    + {b Allocate instances} — [(1 + over_allocation) · nodes] instances,
      in provider allocation order;
    + {b Get measurements} — interference-free RTT samples per ordered
      pair, reduced under the chosen latency metric (the staged scheme's
      time cost is accounted, not simulated probe by probe);
    + {b Search deployment} — any of the paper's strategies;
    + {b Terminate extra instances} — instances the plan leaves unused.

    The report compares against the default deployment (nodes mapped to
    instances in allocation order), which is what a tenant gets without
    ClouDiA. *)

type strategy =
  | Greedy_g1
  | Greedy_g2
  | Random_r1 of int            (** best of N random plans *)
  | Random_r2 of float          (** random plans for a time budget (s) *)
  | Descent of float
      (** R2 with local descent for a time budget (s): random restarts
          refined to swap/relocate local optima through the incremental
          {!Delta_cost} kernel (see {!Random_search.r2_descent}) *)
  | Anneal of Anneal.options    (** simulated annealing (either objective) *)
  | Cp of Cp_solver.options     (** LLNDP only *)
  | Mip of Mip_solver.options
  | Portfolio of Portfolio.options
      (** several strategies racing in parallel domains under one
          deadline, sharing an incumbent (see {!Portfolio}) *)

val strategy_to_string : strategy -> string

type config = {
  graph : Graphs.Digraph.t;        (** application communication graph *)
  objective : Cost.objective;
  metric : Metrics.t;
  over_allocation : float;         (** e.g. [0.1] for the paper's 10 % *)
  samples_per_pair : int;          (** measurement effort per link *)
  strategy : strategy;
}

type on_missing =
  | Fail           (** refuse to advise on a partial matrix ([LAT007]) *)
  | Impute         (** fill unsampled pairs conservatively
                       ({!Netmeasure.Completion.complete}, warns [LAT008]) *)
  | Drop_instance  (** terminate instances without full coverage
                       ({!Netmeasure.Completion.drop_uncovered}, warns
                       [LAT009]) — natural with over-allocation: an
                       unmeasurable instance is terminated like an unused
                       one *)
(** What to do when fault-injected measurement leaves ordered pairs
    unsampled. Irrelevant (all pairs covered by construction) without a
    fault plan. *)

val on_missing_to_string : on_missing -> string

type solver_stats =
  | No_solver_stats                (** greedy strategies: nothing to count *)
  | Cp_stats of { iterations : int; nodes : int; failures : int; propagations : int }
      (** feasibility iterations, plus the CP kernel's search effort
          summed over every dive *)
  | Mip_stats of { nodes_explored : int; nodes_pruned : int }
  | Anneal_stats of { moves_tried : int; moves_accepted : int }
  | Random_stats of { trials : int }

type member_stats = {
  member_name : string;            (** {!Portfolio.member_to_string} *)
  member_cost : float;             (** the member's own best true cost *)
  member_time_to_best : float;     (** seconds until its last improvement *)
  member_seconds : float;          (** wall-clock the member spent searching *)
  member_iterations : int;         (** solver-specific effort count *)
  member_proved : bool;
}

type telemetry = {
  strategy_name : string;          (** {!strategy_to_string} of the config *)
  solver : solver_stats;           (** kernel effort of the strategy run *)
  proven_optimal : bool;           (** the strategy proved optimality under
                                       its own (possibly rounded) costs *)
  incumbent_trace : (float * float) list;
      (** anytime curve: (elapsed seconds, cost) at each improvement,
          oldest first; empty for the greedy strategies *)
  winner : string option;          (** portfolio only: winning member name *)
  members : member_stats list;     (** portfolio only: per-member telemetry *)
  counters : (string * int) list;
      (** {!Obs.Counter} deltas across the search step, sorted by name;
          zero deltas omitted *)
}

type report = {
  env : Cloudsim.Env.t;            (** the allocation (before termination) *)
  problem : Types.problem;         (** measured costs + communication graph *)
  plan : Types.plan;
  default_plan : Types.plan;
  cost : float;                    (** optimized deployment cost (measured) *)
  default_cost : float;            (** default deployment cost (measured) *)
  improvement_pct : float;         (** relative cost reduction vs default *)
  measurement_minutes : float;     (** staged-scheme time budget charged *)
  search_seconds : float;          (** wall-clock spent searching *)
  terminated : int list;           (** instances shut down, in original
                                       allocation numbering: the ones the
                                       plan leaves unused plus any dropped
                                       for lack of coverage; ascending *)
  kept : int array;                (** original index of each instance the
                                       problem ranges over — the identity
                                       unless [Drop_instance] pruned some *)
  dropped : int list;              (** instances dropped for lack of
                                       measurement coverage (ascending);
                                       empty except under [Drop_instance] *)
  measurement_coverage : float;    (** fraction of ordered pairs with ≥ 1
                                       surviving sample; [1.0] without
                                       faults *)
  telemetry : telemetry;           (** what the search actually did *)
  diagnostics : Lint.Diagnostic.t list;
      (** every lint finding from the pre-solve gate: the warnings and
          infos a non-strict run tolerated (errors never reach a report —
          they raise {!Lint.Diagnostic.Failed} first) *)
}

val lint : ?pool:int -> config -> Lint.Diagnostic.t list
(** The pre-solve gate's view of a configuration: communication-graph
    checks (acyclicity when the objective is longest-path, connectivity,
    [|V| <= pool] when [pool] is given) plus solver-config sanity (time
    limits, domain counts, over-allocation, sampling effort). Pure — no
    allocation or measurement happens. *)

val run :
  ?strict_lint:bool -> ?faults:Cloudsim.Faults.t -> ?on_missing:on_missing
  -> Prng.t -> Cloudsim.Provider.t -> config -> report
(** Raises [Lint.Diagnostic.Failed] when the pre-solve lint gate finds an
    error in the configuration, the communication graph, or the measured
    cost matrix — with [~strict_lint:true], warnings block too. Raises
    [Invalid_argument] when the strategy cannot handle the objective (CP
    handles longest link only, per Sect. 4.4's argument that the
    longest-path objective defeats the iterated-SIP scheme). The
    allocate / measure / search steps run under {!Obs.Span}s of those
    names (nested in an ["advise"] root), so [--trace] output shows where
    the tuning budget went.

    [faults] (default {!Cloudsim.Faults.none}) injects the fault plan
    into the measurement step, which then runs the staged scheme probe by
    probe — losses, retries, timeouts — instead of the idealized
    estimator, charges the simulated clock it consumed as
    [measurement_minutes], and resolves any unsampled pairs per
    [on_missing] (default [Fail]). Fault-injected measurement supports
    the [Mean] metric only (raises [Invalid_argument] otherwise): the
    probe schemes keep running sums, not sample distributions. *)

val search : Prng.t -> strategy -> Cost.objective -> Types.problem -> Types.plan
(** Just step 3: run a strategy on an existing problem. *)

val search_with_telemetry :
  Prng.t -> strategy -> Cost.objective -> Types.problem -> Types.plan * telemetry
(** Like {!search} but also returns the solver statistics, incumbent trace
    and counter deltas the plain interface drops. Both run the pre-solve
    lint gate on the problem first and raise [Lint.Diagnostic.Failed] on an
    error-severity finding (e.g. a cyclic graph under the longest-path
    objective, which would otherwise surface as an unguarded exception deep
    inside {!Cost}). *)
