type options = {
  clusters : int option;
  time_limit : float;
  iteration_time_limit : float option;
  use_labeling : bool;
  bootstrap_trials : int;
  symmetry_breaking : bool;
}

let default_options =
  {
    clusters = Some 20;
    time_limit = 60.0;
    iteration_time_limit = None;
    use_labeling = true;
    bootstrap_trials = 10;
    symmetry_breaking = true;
  }

type result = {
  plan : Types.plan;
  cost : float;
  trace : (float * float) list;
  iterations : int;
  nodes : int;
  failures : int;
  propagations : int;
  proven_optimal : bool;
}

let c_adoptions = Obs.Counter.make "portfolio.incumbent_adoptions"
let c_iterations = Obs.Counter.make "cp_solver.threshold_iterations"

(* The threshold graph Gc as a Digraph over instances (uniform-weight
   case, for compatibility labeling). *)
let threshold_graph rounded c =
  let m = Lat_matrix.dim rounded in
  let edges = ref [] in
  for j = 0 to m - 1 do
    for j' = 0 to m - 1 do
      if j <> j' && Lat_matrix.unsafe_get rounded j j' <= c then edges := (j, j') :: !edges
    done
  done;
  Graphs.Digraph.create ~n:m !edges

(* Forbidden-value matrix at link-cost threshold: bad.(j) = values j' such
   that the rounded cost j -> j' exceeds the threshold. *)
let forbidden_matrix rounded threshold =
  let m = Lat_matrix.dim rounded in
  Array.init m (fun j ->
      let row = Cp.Domain.empty m in
      for j' = 0 to m - 1 do
        if j <> j' && Lat_matrix.unsafe_get rounded j j' > threshold then Cp.Domain.add row j'
      done;
      row)

(* Weighted longest link over an arbitrary cost matrix. *)
let weighted_ll edges weight costs plan =
  Array.fold_left
    (fun acc (i, i') ->
      Float.max acc (weight i i' *. Lat_matrix.unsafe_get costs plan.(i) plan.(i')))
    0.0 edges

(* Static value-ordering heuristic: try instances with cheap average
   connectivity first. Sorting candidate values by the mean of their
   incident rounded costs steers the first descents toward deployments
   that survive lower thresholds, without affecting completeness. *)
let connectivity_badness rounded =
  let m = Lat_matrix.dim rounded in
  Array.init m (fun j ->
      let acc = ref 0.0 in
      for j' = 0 to m - 1 do
        if j <> j' then
          acc :=
            !acc +. Lat_matrix.unsafe_get rounded j j' +. Lat_matrix.unsafe_get rounded j' j
      done;
      !acc /. float_of_int (2 * (m - 1)))

(* Instance-interchangeability classes over the TRUE cost matrix: two
   instances are classmates iff swapping them leaves the matrix invariant
   (identical rows and columns outside the pair, symmetric within the
   pair). Exact float equality on the raw measurements means noisy real
   traces essentially never produce classes — solves on measured matrices
   are byte-identical with or without symmetry breaking — while synthetic
   rack-structured topologies (the paper's §4 observation: same rack/pod ⇒
   identical cost row) collapse each rack into one class. Classes are
   pairwise verified against every member already admitted (the swap
   relation is not transitive in general), so any two classmates really
   are swappable. True-row equality implies rounded-row equality (the
   clustering rounds entries pointwise), so classes computed here stay
   valid for the rounded CSP the dives actually solve. *)
let interchange_classes lat =
  let m = Lat_matrix.dim lat in
  let get j k = Lat_matrix.unsafe_get lat j k in
  let swappable j j' =
    get j j' = get j' j
    && get j j = get j' j'
    &&
    let ok = ref true in
    for k = 0 to m - 1 do
      if k <> j && k <> j' then
        if get j k <> get j' k || get k j <> get k j' then ok := false
    done;
    !ok
  in
  let classes = Array.make m (-1) in
  let n_classes = ref 0 in
  let members = ref [] in
  for j = 0 to m - 1 do
    if classes.(j) = -1 then begin
      members := [ j ];
      for j' = j + 1 to m - 1 do
        if classes.(j') = -1 && List.for_all (fun k -> swappable k j') !members then begin
          if classes.(j) = -1 then begin
            classes.(j) <- !n_classes;
            incr n_classes
          end;
          classes.(j') <- classes.(j);
          members := j' :: !members
        end
      done
    end
  done;
  (* Only multi-member classes ever received an id, so [n_classes = 0]
     means the matrix has no exploitable symmetry at all. *)
  (classes, !n_classes)

let check_warm_start ~n ~m plan =
  if Array.length plan <> n then
    invalid_arg
      (Printf.sprintf "Cp_solver.solve: warm start has %d nodes, expected %d"
         (Array.length plan) n);
  let seen = Array.make m false in
  Array.iter
    (fun j ->
      if j < 0 || j >= m then
        invalid_arg (Printf.sprintf "Cp_solver.solve: warm start instance %d outside [0, %d)" j m);
      if seen.(j) then
        invalid_arg (Printf.sprintf "Cp_solver.solve: warm start reuses instance %d" j);
      seen.(j) <- true)
    plan

let solve ?(options = default_options) ?clustering ?warm_start ?edge_weight
    ?(order_values = true) ?max_iterations ?node_limit ?(stop = fun () -> false) ?peek
    ?on_incumbent rng (t : Types.problem) =
  Obs.Resource.with_ "cp_solver.solve" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "cp" in
  let start = Obs.Clock.now_s () in
  let elapsed () = Obs.Clock.now_s () -. start in
  let n = Types.node_count t and m = Types.instance_count t in
  let edges = Graphs.Digraph.edges t.Types.graph in
  let weight = match edge_weight with Some w -> w | None -> fun _ _ -> 1.0 in
  Array.iter
    (fun (i, i') ->
      if weight i i' <= 0.0 then invalid_arg "Cp_solver.solve: edge weights must be positive")
    edges;
  let uniform_weights =
    Array.for_all (fun (i, i') -> weight i i' = 1.0) edges
  in
  let clustering =
    (* A caller-supplied clustering (the serving cache's fingerprint hit)
       skips the k-means recomputation; it must have been built from this
       problem's cost matrix. *)
    match clustering with
    | Some c ->
        if Lat_matrix.dim c.Clustering.rounded <> m then
          invalid_arg
            (Printf.sprintf "Cp_solver.solve: clustering is %dx%d, expected %dx%d"
               (Lat_matrix.dim c.Clustering.rounded)
               (Lat_matrix.dim c.Clustering.rounded)
               m m);
        c
    | None -> (
        match options.clusters with
        | Some k -> Clustering.cluster ~k t.Types.lat
        | None -> Clustering.none t.Types.lat)
  in
  let rounded = clustering.Clustering.rounded in
  (* Candidate objective values: every (edge weight × cost level). With
     uniform weights this is exactly the paper's iteration over cost
     levels; with weights it generalizes the scheme — the deployment cost
     always equals some w·level, so iterating these values preserves
     completeness. *)
  let objective_levels =
    let weights =
      Array.to_list edges |> List.map (fun (i, i') -> weight i i') |> List.sort_uniq Float.compare
    in
    Array.to_list clustering.Clustering.levels
    |> List.concat_map (fun level -> List.map (fun w -> w *. level) weights)
    |> List.sort_uniq Float.compare
  in
  let thresholds_below cost = List.filter (fun v -> v < cost) objective_levels |> List.rev in
  let rounded_eval plan = weighted_ll edges weight rounded plan in
  let true_eval plan = weighted_ll edges weight t.Types.lat plan in
  let publish plan =
    let cost = true_eval plan in
    ignore (Obs.Incumbent.observe obs_stream cost : bool);
    match on_incumbent with Some f -> f plan cost | None -> ()
  in
  let incumbent =
    ref (Random_search.best_of_eval rng ~eval:rounded_eval t (max 1 options.bootstrap_trials))
  in
  (* A warm start (the previous incumbent for this fingerprint) competes
     with the bootstrap draw under the rounded objective; the bootstrap
     still consumes the same random draws, so the cold path is
     byte-identical whether or not a warm start is offered. *)
  (match warm_start with
  | Some plan when n > 0 ->
      check_warm_start ~n ~m plan;
      if rounded_eval plan < rounded_eval !incumbent then incumbent := Array.copy plan
  | _ -> ());
  let trace = ref [ (elapsed (), true_eval !incumbent) ] in
  publish !incumbent;
  let iterations = ref 0 in
  let nodes = ref 0 and failures = ref 0 and propagations = ref 0 in
  let proven = ref false in
  let iteration_cap_hit () =
    match max_iterations with Some cap -> !iterations >= cap | None -> false
  in
  (* Portfolio mode: adopt a better incumbent found by another worker, so
     the next feasibility threshold starts below it. Adopted plans enter
     the trace (the incumbent did improve) but are not re-published. *)
  let adopt_external () =
    match peek with
    | None -> ()
    | Some f -> (
        match f () with
        | Some plan when rounded_eval plan < rounded_eval !incumbent ->
            incumbent := Array.copy plan;
            Obs.Counter.incr c_adoptions;
            ignore (Obs.Incumbent.observe obs_stream (true_eval !incumbent) : bool);
            trace := (elapsed (), true_eval !incumbent) :: !trace
        | _ -> ())
  in
  if n = 0 then
    {
      plan = [||];
      cost = 0.0;
      trace = [];
      iterations = 0;
      nodes = 0;
      failures = 0;
      propagations = 0;
      proven_optimal = true;
    }
  else begin
    let continue = ref true in
    (* Value-interchangeability classes feed the search's symmetric-value
       dedup. Computed once per solve — they depend only on the cost
       matrix, not on thresholds. *)
    let value_classes =
      if options.symmetry_breaking then begin
        let classes, n_classes = interchange_classes t.Types.lat in
        if n_classes > 0 then Some classes else None
      end
      else None
    in
    (* One CSP for the whole threshold iteration: {!Cp.Csp.reset} refills
       the domains and drops the previous threshold's forbidden matrices
       while keeping the alldifferent propagator and its warm matching
       state, so later (tighter) iterations skip both the allocation and
       the from-scratch matching of a rebuild. *)
    let csp = Cp.Csp.create ~nvars:n ~nvalues:m in
    Cp.Csp.add_alldifferent csp;
    let remaining_nodes () =
      match node_limit with Some l -> Some (l - !nodes) | None -> None
    in
    let node_budget_exhausted () =
      match remaining_nodes () with Some r -> r <= 0 | None -> false
    in
    while !continue do
      let remaining = options.time_limit -. elapsed () in
      if remaining <= 0.0 || stop () || iteration_cap_hit () || node_budget_exhausted ()
      then continue := false
      else begin
        adopt_external ();
        match thresholds_below (rounded_eval !incumbent) with
        | [] ->
            (* No cheaper objective level exists: the incumbent is optimal
               for the rounded instance. *)
            proven := true;
            continue := false
        | c :: _ ->
            incr iterations;
            Obs.Counter.incr c_iterations;
            Cp.Csp.reset csp;
            (* One forbidden matrix per distinct edge weight: the edge
               (i,i') allows pair (j,j') iff w·cost(j,j') <= c, i.e.
               cost(j,j') <= c / w. *)
            let by_weight = Hashtbl.create 4 in
            Array.iter
              (fun (i, i') ->
                let w = weight i i' in
                let bad =
                  match Hashtbl.find_opt by_weight w with
                  | Some bad -> bad
                  | None ->
                      let bad = forbidden_matrix rounded (c /. w) in
                      Hashtbl.add by_weight w bad;
                      bad
                in
                Cp.Csp.add_forbidden_pairs csp ~x:i ~y:i' ~bad)
              edges;
            (* Compatibility labeling is only sound when all edges see the
               same threshold graph. *)
            if options.use_labeling && uniform_weights then begin
              let target = threshold_graph rounded c in
              let compat =
                Graphs.Labeling.compatibility_matrix ~pattern:t.Types.graph ~target
              in
              for i = 0 to n - 1 do
                Cp.Csp.restrict csp ~var:i ~allowed:(fun j -> compat.(i).(j))
              done
            end;
            let iteration_budget =
              match options.iteration_time_limit with
              | Some l -> Float.min l remaining
              | None -> remaining
            in
            let value_order =
              if order_values then begin
                let badness = connectivity_badness rounded in
                fun ~var:_ values ->
                  List.sort (fun a b -> Float.compare badness.(a) badness.(b)) values
              end
              else fun ~var:_ values -> values
            in
            let outcome, (st : Cp.Search.stats) =
              Cp.Search.solve ~time_limit:iteration_budget
                ?node_limit:(remaining_nodes ()) ?value_classes ~should_stop:stop
                ~value_order csp
            in
            nodes := !nodes + st.Cp.Search.nodes;
            failures := !failures + st.Cp.Search.failures;
            propagations := !propagations + st.Cp.Search.propagations;
            (match outcome with
            | Cp.Search.Sat plan ->
                incumbent := plan;
                trace := (elapsed (), true_eval plan) :: !trace;
                publish plan
            | Cp.Search.Unsat ->
                proven := true;
                continue := false
            | Cp.Search.Timeout ->
                (* A cooperative stop also surfaces as Timeout; either way
                   the anytime contract is the same: keep the incumbent. *)
                continue := false)
      end
    done;
    {
      plan = !incumbent;
      cost = true_eval !incumbent;
      trace = List.rev !trace;
      iterations = !iterations;
      nodes = !nodes;
      failures = !failures;
      propagations = !propagations;
      proven_optimal = !proven;
    }
  end
