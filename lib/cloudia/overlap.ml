type config = {
  measurement_seconds : float;
  interference : float;
  noise_sigma : float;
  migration_seconds : float;
  total_ticks : int;
  solver_budget : float;
}

let default_config =
  {
    measurement_seconds = 60.0;
    interference = 0.15;
    noise_sigma = 0.10;
    migration_seconds = 30.0;
    total_ticks = 100_000;
    solver_budget = 2.0;
  }

type analysis = {
  sequential_seconds : float;
  overlapped_seconds : float;
  sequential_plan_cost : float;
  overlapped_plan_cost : float;
  ticks_during_measurement : int;
}

let optimize config rng problem =
  (* Clustering.cluster clamps k to the distinct finite off-diagonal
     count, so the default k = 20 is safe on instances with few distinct
     latencies. *)
  (Cp_solver.solve
     ~options:{ Cp_solver.default_options with time_limit = config.solver_budget }
     rng problem)
    .Cp_solver.plan

let analyze ?(config = default_config) rng provider ~rows ~cols ~over_allocation =
  if config.measurement_seconds <= 0.0 then
    invalid_arg "Overlap.analyze: measurement phase must be positive";
  if config.interference < 0.0 then invalid_arg "Overlap.analyze: negative interference";
  let nodes = rows * cols in
  let count = int_of_float (Float.ceil (float_of_int nodes *. (1.0 +. over_allocation))) in
  let env = Cloudsim.Env.allocate rng provider ~count in
  let graph = Graphs.Templates.mesh2d ~rows ~cols in
  let clean = Cloudsim.Env.mean_matrix env in
  let clean_problem = Types.problem ~graph ~costs:clean in
  let default_plan = Types.identity_plan clean_problem in
  (* Per-tick cost (ms) under a plan = longest mean link; the tick-based
     application is barrier-synchronized (Sect. 6.1.1). *)
  let tick_ms plan = Cost.longest_link clean_problem plan in
  (* Sequential: idle during measurement, then run on the plan from clean
     measurements. *)
  let sequential_plan = optimize config rng clean_problem in
  let sequential_seconds =
    config.measurement_seconds
    +. (float_of_int config.total_ticks *. tick_ms sequential_plan /. 1000.0)
  in
  (* Overlapped: application traffic perturbs the measurements... *)
  let noisy =
    Array.mapi
      (fun i row ->
        Array.mapi
          (fun j c ->
            if i = j then 0.0
            else c *. Prng.lognormal rng ~mu:0.0 ~sigma:config.noise_sigma)
          row)
      clean
  in
  let overlapped_plan = optimize config rng (Types.problem ~graph ~costs:noisy) in
  (* ...while completing ticks at the default plan's rate, slowed by the
     probes sharing the links. *)
  let slowed_tick_ms = tick_ms default_plan *. (1.0 +. config.interference) in
  let ticks_during_measurement =
    min config.total_ticks
      (int_of_float (config.measurement_seconds *. 1000.0 /. slowed_tick_ms))
  in
  let remaining = config.total_ticks - ticks_during_measurement in
  let overlapped_seconds =
    config.measurement_seconds
    +. (if remaining > 0 then config.migration_seconds else 0.0)
    +. (float_of_int remaining *. tick_ms overlapped_plan /. 1000.0)
  in
  {
    sequential_seconds;
    overlapped_seconds;
    sequential_plan_cost = tick_ms sequential_plan;
    overlapped_plan_cost = tick_ms overlapped_plan;
    ticks_during_measurement;
  }

let migration_headroom a = a.sequential_seconds -. a.overlapped_seconds
