type member =
  | Greedy_g1
  | Greedy_g2
  | Random_r1 of int
  | Random_r2
  | Descent
  | Anneal of Anneal.options
  | Cp of Cp_solver.options
  | Mip of Mip_solver.options

let member_to_string = function
  | Greedy_g1 -> "G1"
  | Greedy_g2 -> "G2"
  | Random_r1 n -> Printf.sprintf "R1(%d)" n
  | Random_r2 -> "R2"
  | Descent -> "R2D"
  | Anneal _ -> "SA"
  | Cp _ -> "CP"
  | Mip _ -> "MIP"

type options = {
  members : member list;
  time_limit : float;
  share_incumbent : bool;
}

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let default_members ~objective ~domains =
  if domains < 1 then invalid_arg "Portfolio.default_members: domains must be >= 1";
  (* Exact costs (no clustering) so that a proof of optimality is a proof
     for the true instance and can cancel the whole portfolio. *)
  let exact =
    match objective with
    | Cost.Longest_link -> Cp { Cp_solver.default_options with Cp_solver.clusters = None }
    | Cost.Longest_path ->
        Mip { Mip_solver.default_options with Mip_solver.clusters = None }
  in
  let base = [ exact; Anneal Anneal.default_options; Descent; Random_r2; Greedy_g2 ] in
  if domains <= 5 then take domains base
  else
    base
    @ List.init (domains - 5) (fun i ->
          match i mod 3 with
          | 0 -> Anneal Anneal.default_options
          | 1 -> Descent
          | _ -> Random_r2)

let default_options =
  {
    members = default_members ~objective:Cost.Longest_link ~domains:4;
    time_limit = 10.0;
    share_incumbent = true;
  }

type worker = {
  member : member;
  best_cost : float;
  time_to_best : float;
  iterations : int;
  moves_tried : int;
  moves_accepted : int;
  proved_optimal : bool;
  elapsed : float;
}

type result = {
  plan : Types.plan;
  cost : float;
  winner : int;
  winner_name : string;
  trace : (float * float) list;
  workers : worker list;
  proven_optimal : bool;
  elapsed : float;
}

let c_publishes = Obs.Counter.make "portfolio.publishes"

(* What each domain hands back to the joiner. The final plan/cost come
   from the solver's own return value, not the shared incumbent, so the
   winner is a deterministic function of the per-worker outcomes. *)
type outcome = {
  w : worker;
  final_plan : Types.plan;
  final_cost : float;
  exact_proof : bool;  (** proved optimal AND ran on exact (uncluster-ed) costs *)
}

let merged_trace events =
  (* Lexicographic (time, cost) order — same total order as polymorphic
     compare on float pairs, without the generic traversal. *)
  let sorted =
    List.sort
      (fun (t1, c1) (t2, c2) ->
        match Float.compare t1 t2 with 0 -> Float.compare c1 c2 | c -> c)
      events
  in
  let rec go best acc = function
    | [] -> List.rev acc
    | (t, c) :: tl -> if c < best then go c ((t, c) :: acc) tl else go best acc tl
  in
  go infinity [] sorted

let validate_members members objective =
  if members = [] then invalid_arg "Portfolio.solve: members must be non-empty";
  List.iter
    (fun m ->
      match (m, objective) with
      | Cp _, Cost.Longest_path ->
          invalid_arg
            "Portfolio.solve: the CP member only supports the longest-link objective"
      | _ -> ())
    members

let solve ?(options = default_options) rng objective (t : Types.problem) =
  validate_members options.members objective;
  if options.time_limit <= 0.0 then
    invalid_arg "Portfolio.solve: time_limit must be positive";
  Obs.Resource.with_ "portfolio.solve" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "portfolio" in
  let eval = Cost.eval objective t in
  let start = Obs.Clock.now_s () in
  let elapsed () = Obs.Clock.now_s () -. start in
  let deadline = start +. options.time_limit in
  (* Shared state. [best] holds a private copy of the cheapest plan any
     worker has published — consumed only through [peek] by the CP
     member; the stored arrays are never mutated after publication.
     [events] accumulates every worker-local improvement for the merged
     anytime trace. *)
  let mutex = Mutex.create () in
  let best : (Types.plan * float) option ref = ref None in
  let events : (float * float) list ref = ref [] in
  let cancelled = Atomic.make false in
  let stop () = Atomic.get cancelled || Obs.Clock.now_s () > deadline in
  let peek =
    if options.share_incumbent then
      Some
        (fun () -> Mutex.protect mutex (fun () -> Option.map fst !best))
    else None
  in
  (* One PRNG split per member, drawn in member order before any domain
     spawns: worker streams never depend on scheduling. *)
  let rngs =
    Array.init (List.length options.members) (fun _ -> Prng.split rng)
  in
  let run_member member rng =
    (* Worker-local telemetry; only this domain touches these refs. *)
    let member_start = Obs.Clock.now_s () in
    let own_best = ref infinity and own_tt = ref 0.0 in
    let publish plan cost =
      if cost < !own_best then begin
        own_best := cost;
        own_tt := elapsed ();
        Obs.Counter.incr c_publishes;
        ignore (Obs.Incumbent.observe obs_stream cost : bool);
        let copy = Array.copy plan in
        Mutex.protect mutex (fun () ->
            events := (!own_tt, cost) :: !events;
            match !best with
            | Some (_, c) when c <= cost -> ()
            | _ -> best := Some (copy, cost))
      end
    in
    (* Members measure their own budget from their start time, so hand
       them whatever remains of the global one. *)
    let budget () = Float.max 0.001 (deadline -. Obs.Clock.now_s ()) in
    let outcome ?(iterations = 1) ?(moves_tried = 0) ?(moves_accepted = 0)
        ?(proved = false) ?(exact = false) plan cost =
      publish plan cost;
      {
        w =
          {
            member;
            best_cost = cost;
            time_to_best = !own_tt;
            iterations;
            moves_tried;
            moves_accepted;
            proved_optimal = proved;
            elapsed = Obs.Clock.now_s () -. member_start;
          };
        final_plan = plan;
        final_cost = cost;
        exact_proof = proved && exact;
      }
    in
    match member with
    | Greedy_g1 ->
        let plan = Greedy.g1 t in
        outcome plan (eval plan)
    | Greedy_g2 ->
        let plan = Greedy.g2 t in
        outcome plan (eval plan)
    | Random_r1 trials ->
        let plan, cost = Random_search.r1 ~stop ~on_improve:publish rng objective t ~trials in
        outcome ~iterations:trials plan cost
    | Random_r2 ->
        let plan, cost, trials =
          Random_search.r2 ~stop ~on_improve:publish rng objective t
            ~time_limit:(budget ())
        in
        outcome ~iterations:trials plan cost
    | Descent ->
        let plan, cost, restarts =
          Random_search.r2_descent ~stop ~on_improve:publish rng objective t
            ~time_limit:(budget ())
        in
        outcome ~iterations:restarts plan cost
    | Anneal opts ->
        let opts = { opts with Anneal.time_limit = budget () } in
        let r = Anneal.solve_objective ~options:opts ~stop ~on_improve:publish rng objective t in
        outcome ~iterations:r.Anneal.moves_tried ~moves_tried:r.Anneal.moves_tried
          ~moves_accepted:r.Anneal.moves_accepted r.Anneal.plan r.Anneal.cost
    | Cp opts ->
        let exact = opts.Cp_solver.clusters = None in
        let opts = { opts with Cp_solver.time_limit = budget () } in
        let r = Cp_solver.solve ~options:opts ~stop ?peek ~on_incumbent:publish rng t in
        if r.Cp_solver.proven_optimal && exact then Atomic.set cancelled true;
        outcome ~iterations:r.Cp_solver.iterations ~proved:r.Cp_solver.proven_optimal
          ~exact r.Cp_solver.plan r.Cp_solver.cost
    | Mip opts ->
        let exact = opts.Mip_solver.clusters = None in
        let opts = { opts with Mip_solver.time_limit = budget () } in
        let solver =
          match objective with
          | Cost.Longest_link -> Mip_solver.solve_longest_link
          | Cost.Longest_path -> Mip_solver.solve_longest_path
        in
        let r = solver ~options:opts ~stop ~on_incumbent:publish rng t in
        if r.Mip_solver.proven_optimal && exact then Atomic.set cancelled true;
        outcome ~iterations:r.Mip_solver.nodes_explored
          ~proved:r.Mip_solver.proven_optimal ~exact r.Mip_solver.plan
          r.Mip_solver.cost
  in
  let domains =
    List.mapi
      (fun i member ->
        Domain.spawn (fun () ->
            Obs.Span.with_ ("portfolio.member:" ^ member_to_string member)
            @@ fun () -> run_member member rngs.(i)))
      options.members
  in
  let outcomes = List.map Domain.join domains in
  (* Deterministic winner: cheapest final cost, ties to the lowest member
     index — independent of how the domains interleaved. *)
  let _, winner, best_outcome =
    List.fold_left
      (fun (i, wi, wo) o ->
        let better = match wo with None -> true | Some b -> o.final_cost < b.final_cost in
        if better then (i + 1, i, Some o) else (i + 1, wi, wo))
      (0, 0, None) outcomes
  in
  let best_outcome = Option.get best_outcome in
  List.iter (fun o -> Types.validate t o.final_plan) outcomes;
  {
    plan = best_outcome.final_plan;
    cost = best_outcome.final_cost;
    winner;
    winner_name = member_to_string (List.nth options.members winner);
    trace = merged_trace !events;
    workers = List.map (fun o -> o.w) outcomes;
    proven_optimal = List.exists (fun o -> o.exact_proof) outcomes;
    elapsed = elapsed ();
  }
