(** Parallel solver portfolio with a shared incumbent.

    The paper benchmarks its strategies one at a time (Sect. 6.3); this
    module runs a configurable set of them {e concurrently} — one OCaml
    domain per member — under a single wall-clock deadline, the way a
    deployment advisor would actually spend a fixed tuning budget. Every
    member publishes each improvement it finds into a mutex-protected
    shared incumbent; the CP member additionally {e adopts} the shared
    incumbent between threshold iterations, so a cheap heuristic's lucky
    plan immediately tightens the feasibility threshold the exact solver
    works on. Workers cancel cooperatively as soon as one of them proves
    optimality under exact costs, or when the deadline fires.

    Randomness: the portfolio draws one {!Prng.split} per member, in
    member order, from the caller's generator. Worker streams are
    therefore independent of scheduling, and a portfolio whose members
    are all iteration-capped (greedy, R1, annealing with [max_moves])
    returns bit-identical plans for a fixed seed and member list no
    matter how the domains interleave. Members racing a wall clock (R2,
    CP, MIP) are anytime: the cost is deterministic whenever the exact
    member proves optimality, but the plan may vary under extreme
    scheduling skew. *)

type member =
  | Greedy_g1
  | Greedy_g2
  | Random_r1 of int              (** best of N random plans *)
  | Random_r2                     (** random plans until the deadline *)
  | Descent
      (** {!Random_search.r2_descent}: random restarts refined to local
          optima by delta-evaluated first-improvement descent *)
  | Anneal of Anneal.options      (** [time_limit] overridden by the portfolio *)
  | Cp of Cp_solver.options       (** LLNDP only; [time_limit] overridden *)
  | Mip of Mip_solver.options     (** [time_limit] overridden *)

val member_to_string : member -> string

type options = {
  members : member list;          (** one domain is spawned per member *)
  time_limit : float;             (** global wall-clock deadline, seconds *)
  share_incumbent : bool;
      (** when [true] (default) the CP member starts each threshold
          iteration from the best plan any worker has published; when
          [false] workers run independently and only the final results
          are compared *)
}

val default_options : options
(** [default_members ~objective:Longest_link ~domains:4], 10 s,
    incumbent sharing on. *)

val default_members : objective:Cost.objective -> domains:int -> member list
(** A balanced roster of [domains] members: an exact anytime solver
    first (CP with exact costs for the longest-link objective, MIP for
    longest path — exact so that proving optimality cancels the whole
    portfolio), then annealing, then descent, then R2, then G2, padding
    with rotating annealing/descent/R2 members beyond five. Requires
    [domains >= 1]. *)

type worker = {
  member : member;
  best_cost : float;              (** true cost of this worker's own best *)
  time_to_best : float;           (** seconds until its last improvement *)
  iterations : int;               (** solver-specific effort: trials, CP
                                      feasibility iterations, B&B nodes,
                                      or annealing moves tried *)
  moves_tried : int;              (** annealing only; 0 elsewhere *)
  moves_accepted : int;           (** annealing only; 0 elsewhere *)
  proved_optimal : bool;          (** this worker proved optimality under
                                      its own (possibly rounded) costs *)
  elapsed : float;                (** wall-clock seconds this member spent
                                      searching, measured inside its own
                                      domain (spawn to return) *)
}

type result = {
  plan : Types.plan;
  cost : float;                   (** true cost of [plan] *)
  winner : int;                   (** index into [options.members] of the
                                      worker whose best plan won; ties go
                                      to the lowest index *)
  winner_name : string;           (** [member_to_string] of that member *)
  trace : (float * float) list;
      (** merged anytime curve: (elapsed seconds, true cost) prefix
          minima over every improvement any worker published, oldest
          first *)
  workers : worker list;          (** per-worker telemetry, member order *)
  proven_optimal : bool;          (** some worker proved optimality under
                                      {e exact} costs (no clustering) *)
  elapsed : float;                (** wall-clock seconds actually spent *)
}

val solve : ?options:options -> Prng.t -> Cost.objective -> Types.problem -> result
(** Runs every member to completion, deadline, or cancellation, then
    returns the cheapest plan found (validated injections all). Raises
    [Invalid_argument] if [members] is empty, [time_limit <= 0], or a
    [Cp] member is paired with the longest-path objective (Sect. 4.4:
    the iterated-SIP scheme needs the longest-link structure). *)
