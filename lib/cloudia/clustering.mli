(** Link-cost clustering (Sect. 6.3).

    "We use k-means to cluster link costs … all costs are modified to the
    mean of the containing cluster and then passed to the solver." Fewer
    distinct cost values means fewer iterations for the CP scheme
    (Sect. 4.2) at the price of approximating the objective. *)

type t = {
  rounded : Lat_matrix.t;  (** costs with every entry snapped to its
                               cluster mean; diagonal preserved at 0 *)
  levels : float array;  (** distinct cluster means, ascending *)
}

val cluster : k:int -> Lat_matrix.t -> t
(** Optimal 1-D k-means over the finite off-diagonal entries, read
    straight off the flat buffer. [k] is clamped to the number of
    distinct finite values, so any positive [k] is safe on small or
    degenerate instances; [k <= 0] raises. Non-finite entries (NaN marks
    an unsampled pair) are excluded from clustering, kept verbatim in
    [rounded], and never appear in [levels]. An all-non-finite matrix
    yields [levels = [||]] and an unmodified copy. *)

val none : Lat_matrix.t -> t
(** No clustering: [rounded] is the input (copied); [levels] are its
    distinct {e finite} off-diagonal values ascending — non-finite
    entries would defeat deduplication and poison [thresholds_below].
    This is the "no clustering" configuration of Figs. 6 and 9. *)

val thresholds_below : t -> float -> float list
(** Cluster levels strictly below the given cost, descending — the
    successive goals [c] of the iterated-subgraph-isomorphism search. *)
