type options = {
  clusters : int option;
  time_limit : float;
  node_limit : int option;
  bootstrap_trials : int;
}

let default_options =
  { clusters = None; time_limit = 30.0; node_limit = None; bootstrap_trials = 10 }

type result = {
  plan : Types.plan;
  cost : float;
  trace : (float * float) list;
  proven_optimal : bool;
  nodes_explored : int;
  nodes_pruned : int;
}

(* Assignment variables for the padded one-to-one mapping: x.(i).(j) for
   node i (real nodes first, then dummies up to m) on instance j. *)
let assignment_vars model m =
  Array.init m (fun i ->
      Array.init m (fun j ->
          Lp.Model.add_var model ~integer:true ~ub:1.0 (Printf.sprintf "x_%d_%d" i j)))

let add_assignment_constraints model x m =
  for j = 0 to m - 1 do
    Lp.Model.add_constraint model
      (List.init m (fun i -> (x.(i).(j), 1.0)))
      Lp.Simplex.Eq 1.0
  done;
  for i = 0 to m - 1 do
    Lp.Model.add_constraint model
      (List.init m (fun j -> (x.(i).(j), 1.0)))
      Lp.Simplex.Eq 1.0
  done

(* A full solution vector encoding a plan, for seeding branch and bound:
   real nodes per the plan, dummies on the leftover instances in order. *)
let seed_solution ~nvars ~(x : Lp.Model.var array array) ~m ~n plan extras =
  ignore m;
  let sol = Array.make nvars 0.0 in
  Array.iteri (fun i j -> sol.((x.(i).(j) :> int)) <- 1.0) (Array.sub plan 0 n);
  let free = Types.unused_instances extras plan in
  List.iteri (fun k j -> sol.((x.(n + k).(j) :> int)) <- 1.0) free;
  sol

(* Extract the plan for the n real nodes out of an LP solution. *)
let plan_of_solution ~(x : Lp.Model.var array array) ~m ~n sol =
  Array.init n (fun i ->
      let found = ref 0 in
      for j = 0 to m - 1 do
        if Lp.Model.value sol x.(i).(j) > 0.5 then found := j
      done;
      !found)

let linearized_max_constraints model x costs graph ~weight ~cap_var =
  let m = Lat_matrix.dim costs in
  Array.iter
    (fun (i, i') ->
      let w = weight i i' in
      for j = 0 to m - 1 do
        for j' = 0 to m - 1 do
          let c = w *. Lat_matrix.unsafe_get costs j j' in
          if j <> j' && c > 0.0 then
            (* w·CL·x_ij + w·CL·x_i'j' − cap ≤ w·CL *)
            Lp.Model.add_constraint model
              [ (x.(i).(j), c); (x.(i').(j'), c); (cap_var, -1.0) ]
              Lp.Simplex.Le c
        done
      done)
    (Graphs.Digraph.edges graph)

let check_weights graph weight =
  Array.iter
    (fun (i, i') ->
      if weight i i' <= 0.0 then
        invalid_arg "Mip_solver: edge weights must be positive")
    (Graphs.Digraph.edges graph)

(* Weighted deployment costs over an arbitrary cost matrix. *)
let weighted_ll graph weight costs plan =
  Array.fold_left
    (fun acc (i, i') ->
      Float.max acc (weight i i' *. Lat_matrix.unsafe_get costs plan.(i) plan.(i')))
    0.0 (Graphs.Digraph.edges graph)

let weighted_lp graph weight costs plan =
  Graphs.Digraph.longest_path graph ~weight:(fun i i' ->
      weight i i' *. Lat_matrix.unsafe_get costs plan.(i) plan.(i'))

let rounded_costs options (t : Types.problem) =
  match options.clusters with
  | Some k -> (Clustering.cluster ~k t.Types.lat).Clustering.rounded
  | None -> t.Types.lat

let run_bnb ~options ~stop ~publish ~model ~x ~m ~n ~seed_obj ~seed_sol ~true_eval =
  Obs.Resource.with_ "mip_solver.solve" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "mip" in
  let trace = ref [] in
  let start = Obs.Clock.now_s () in
  let best_plan = ref (plan_of_solution ~x ~m ~n seed_sol) in
  trace := [ (0.0, true_eval !best_plan) ];
  ignore (Obs.Incumbent.observe obs_stream (true_eval !best_plan) : bool);
  publish !best_plan (true_eval !best_plan);
  let on_incumbent ~obj:_ ~solution ~elapsed =
    let plan = plan_of_solution ~x ~m ~n solution in
    best_plan := plan;
    trace := (elapsed, true_eval plan) :: !trace;
    ignore (Obs.Incumbent.observe obs_stream (true_eval plan) : bool);
    publish plan (true_eval plan)
  in
  let outcome, stats =
    Lp.Mip.solve ~time_limit:options.time_limit ?node_limit:options.node_limit
      ?should_stop:stop ~on_incumbent ~initial_incumbent:(seed_obj, seed_sol) model
  in
  ignore start;
  let proven =
    match outcome with Lp.Mip.Mip_optimal _ -> true | _ -> stats.Lp.Mip.proven_optimal
  in
  {
    plan = !best_plan;
    cost = true_eval !best_plan;
    trace = List.rev !trace;
    proven_optimal = proven;
    nodes_explored = stats.Lp.Mip.nodes_explored;
    nodes_pruned = stats.Lp.Mip.nodes_pruned;
  }

let no_publish _ _ = ()

let solve_longest_link ?(options = default_options) ?edge_weight ?stop
    ?(on_incumbent = no_publish) rng (t : Types.problem) =
  let n = Types.node_count t and m = Types.instance_count t in
  let weight = match edge_weight with Some w -> w | None -> fun _ _ -> 1.0 in
  check_weights t.Types.graph weight;
  let costs = rounded_costs options t in
  let model = Lp.Model.create () in
  let x = assignment_vars model m in
  let c = Lp.Model.add_var model ~obj:1.0 "c" in
  add_assignment_constraints model x m;
  linearized_max_constraints model x costs t.Types.graph ~weight ~cap_var:c;
  let rounded_problem = Types.of_matrix ~graph:t.Types.graph costs in
  let rounded_eval plan = weighted_ll t.Types.graph weight costs plan in
  let plan0 =
    Random_search.best_of_eval rng ~eval:rounded_eval rounded_problem
      (max 1 options.bootstrap_trials)
  in
  let nvars = Lp.Model.var_count model in
  let seed_sol = seed_solution ~nvars ~x ~m ~n plan0 rounded_problem in
  let seed_obj = rounded_eval plan0 in
  seed_sol.((c :> int)) <- seed_obj;
  run_bnb ~options ~stop ~publish:on_incumbent ~model ~x ~m ~n ~seed_obj ~seed_sol
    ~true_eval:(weighted_ll t.Types.graph weight t.Types.lat)

let solve_longest_path ?(options = default_options) ?edge_weight ?stop
    ?(on_incumbent = no_publish) rng (t : Types.problem) =
  if not (Graphs.Digraph.is_dag t.Types.graph) then
    invalid_arg "Mip_solver.solve_longest_path: communication graph must be acyclic";
  let n = Types.node_count t and m = Types.instance_count t in
  let weight = match edge_weight with Some w -> w | None -> fun _ _ -> 1.0 in
  check_weights t.Types.graph weight;
  let costs = rounded_costs options t in
  let model = Lp.Model.create () in
  let x = assignment_vars model m in
  let edges = Graphs.Digraph.edges t.Types.graph in
  (* Per-edge realized cost c_ii' and per-node longest-prefix t_i. *)
  let edge_cost =
    Array.map (fun (i, i') -> Lp.Model.add_var model (Printf.sprintf "c_%d_%d" i i')) edges
  in
  let t_node = Array.init n (fun i -> Lp.Model.add_var model (Printf.sprintf "t_%d" i)) in
  let t_max = Lp.Model.add_var model ~obj:1.0 "t" in
  add_assignment_constraints model x m;
  Array.iteri
    (fun e (i, i') ->
      let w = weight i i' in
      for j = 0 to m - 1 do
        for j' = 0 to m - 1 do
          let cval = w *. Lat_matrix.unsafe_get costs j j' in
          if j <> j' && cval > 0.0 then
            Lp.Model.add_constraint model
              [ (x.(i).(j), cval); (x.(i').(j'), cval); (edge_cost.(e), -1.0) ]
              Lp.Simplex.Le cval
        done
      done;
      (* t_i' ≥ t_i + c_ii'  ⇔  t_i − t_i' + c_ii' ≤ 0 *)
      Lp.Model.add_constraint model
        [ (t_node.(i), 1.0); (t_node.(i'), -1.0); (edge_cost.(e), 1.0) ]
        Lp.Simplex.Le 0.0)
    edges;
  Array.iter
    (fun ti ->
      Lp.Model.add_constraint model [ (ti, 1.0); (t_max, -1.0) ] Lp.Simplex.Le 0.0)
    t_node;
  let rounded_problem = Types.of_matrix ~graph:t.Types.graph costs in
  let rounded_eval plan = weighted_lp t.Types.graph weight costs plan in
  let plan0 =
    Random_search.best_of_eval rng ~eval:rounded_eval rounded_problem
      (max 1 options.bootstrap_trials)
  in
  let nvars = Lp.Model.var_count model in
  let seed_sol = seed_solution ~nvars ~x ~m ~n plan0 rounded_problem in
  (* Consistent auxiliary values for the seed: realized edge costs and the
     longest rounded prefix reaching each node. *)
  Array.iteri
    (fun e (i, i') ->
      seed_sol.((edge_cost.(e) :> int)) <-
        weight i i' *. Lat_matrix.unsafe_get costs plan0.(i) plan0.(i'))
    edges;
  let prefix = Array.make n 0.0 in
  (match Graphs.Digraph.topological_order t.Types.graph with
  | None -> assert false
  | Some order ->
      Array.iter
        (fun i ->
          Array.iter
            (fun i' ->
              let cand =
                prefix.(i) +. (weight i i' *. Lat_matrix.unsafe_get costs plan0.(i) plan0.(i'))
              in
              if cand > prefix.(i') then prefix.(i') <- cand)
            (Graphs.Digraph.out_neighbors t.Types.graph i))
        order);
  Array.iteri (fun i (ti : Lp.Model.var) -> seed_sol.((ti :> int)) <- prefix.(i)) t_node;
  let seed_obj = rounded_eval plan0 in
  seed_sol.((t_max :> int)) <- seed_obj;
  run_bnb ~options ~stop ~publish:on_incumbent ~model ~x ~m ~n ~seed_obj ~seed_sol
    ~true_eval:(weighted_lp t.Types.graph weight t.Types.lat)
