type options = {
  time_limit : float;
  initial_temperature : float;
  cooling : float;
  moves_per_temperature : int;
  restarts : int;
  max_moves : int option;
}

let default_options =
  {
    time_limit = 2.0;
    initial_temperature = 0.5;
    cooling = 0.999;
    moves_per_temperature = 50;
    restarts = 3;
    max_moves = None;
  }

type result = {
  plan : Types.plan;
  cost : float;
  moves_tried : int;
  moves_accepted : int;
}

(* Flushed once per solve from the refs the loop already keeps. *)
let c_tried = Obs.Counter.make "anneal.moves_tried"
let c_accepted = Obs.Counter.make "anneal.moves_accepted"
let g_acceptance = Obs.Gauge.make "anneal.acceptance_rate"

(* Per-move latency distribution. Recording is gated on the event sink so
   the untraced hot loop pays nothing (the fig_delta moves/sec gate runs
   with the sink off); under tracing it costs two clock reads per move. *)
let h_move = Obs.Histogram.make "anneal.move_ns"

(* One annealing run from a random start, driven through a {!Delta_cost}
   kernel: a proposed move costs O(deg) for the standard objectives (one
   full evaluation only for opaque costs) and is committed or aborted in
   place. The global best (shared across restarts) is updated in place so
   improvement callbacks see the true cross-restart incumbent timeline. *)
let[@cloudia.hot] run rng kernel (t : Types.problem) options ~deadline ~stop ~improved
    ~tried ~accepted ~budget_left ~best_plan ~best_cost =
  let n = Types.node_count t and m = Types.instance_count t in
  Delta_cost.reset kernel (Types.random_plan rng t);
  let cost = ref (Delta_cost.cost kernel) in
  if !cost < !best_cost then begin
    best_cost := !cost;
    best_plan := Delta_cost.plan kernel;
    improved (Delta_cost.current kernel) !cost
  end;
  let temperature = ref options.initial_temperature in
  let min_temperature = 1e-4 *. options.initial_temperature in
  let timed = Obs.Sink.enabled () in
  (* Hoisted out of the temperature loop: pass A003 keeps this function's
     loop bodies allocation-free. *)
  let moves = ref 0 in
  while
    !temperature > min_temperature
    && !budget_left > 0
    && (not (stop ()))
    && Obs.Clock.now_s () < deadline
  do
    moves := options.moves_per_temperature;
    while !moves > 0 && !budget_left > 0 do
      decr moves;
      decr budget_left;
      incr tried;
      (* Propose: pick a node and a target instance; the kernel swaps or
         relocates depending on whether the target is occupied. *)
      let node = Prng.int rng n in
      let target = Prng.int rng m in
      if target <> Delta_cost.instance_of kernel node then begin
        let t0 = if timed then Obs.Clock.now_ns () else 0L in
        let candidate = Delta_cost.propose_move kernel ~node ~target in
        let delta = candidate -. !cost in
        let accept =
          delta <= 0.0 || Prng.uniform rng < exp (-.delta /. !temperature)
        in
        if accept then begin
          Delta_cost.commit kernel;
          incr accepted;
          cost := candidate;
          if candidate < !best_cost then begin
            best_cost := candidate;
            Array.blit (Delta_cost.current kernel) 0 !best_plan 0 n;
            improved (Delta_cost.current kernel) candidate
          end
        end
        else Delta_cost.abort kernel;
        if timed then Obs.Histogram.record_ns h_move (Int64.sub (Obs.Clock.now_ns ()) t0)
      end
    done;
    temperature := !temperature *. options.cooling
  done

let solve_kernel ?(options = default_options) ?(stop = fun () -> false) ?init ?on_improve
    rng ~make (t : Types.problem) =
  if options.time_limit <= 0.0 then invalid_arg "Anneal.solve: need a positive time limit";
  if options.restarts <= 0 then invalid_arg "Anneal.solve: need at least one restart";
  (match options.max_moves with
  | Some m when m <= 0 -> invalid_arg "Anneal.solve: need a positive move budget"
  | _ -> ());
  Obs.Resource.with_ "anneal.solve" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "anneal" in
  let improved plan cost =
    ignore (Obs.Incumbent.observe obs_stream cost : bool);
    match on_improve with Some f -> f plan cost | None -> ()
  in
  let deadline = Obs.Clock.now_s () +. options.time_limit in
  let tried = ref 0 and accepted = ref 0 in
  let budget_left = ref (match options.max_moves with Some m -> m | None -> max_int) in
  (* A warm start becomes the cross-restart incumbent to beat; the
     restarts themselves still begin from fresh random plans, and with no
     [init] the draw order is exactly the historical one. *)
  let kernel : Delta_cost.t =
    make (match init with Some p -> Array.copy p | None -> Types.random_plan rng t)
  in
  let best_plan = ref (Delta_cost.plan kernel) in
  let best_cost = ref (Delta_cost.cost kernel) in
  improved !best_plan !best_cost;
  let remaining = ref options.restarts in
  while
    !remaining > 0 && !budget_left > 0 && (not (stop ())) && Obs.Clock.now_s () < deadline
  do
    decr remaining;
    run rng kernel t options ~deadline ~stop ~improved ~tried ~accepted ~budget_left
      ~best_plan ~best_cost
  done;
  Delta_cost.flush_counters kernel;
  Obs.Counter.add c_tried !tried;
  Obs.Counter.add c_accepted !accepted;
  if !tried > 0 then
    Obs.Gauge.set g_acceptance (float_of_int !accepted /. float_of_int !tried);
  { plan = !best_plan; cost = !best_cost; moves_tried = !tried; moves_accepted = !accepted }

let solve ?options ?stop ?init ?on_improve rng ~eval t =
  solve_kernel ?options ?stop ?init ?on_improve rng
    ~make:(fun p -> Delta_cost.create_eval ~eval t p)
    t

let solve_objective ?options ?stop ?init ?ranks ?on_improve rng objective t =
  solve_kernel ?options ?stop ?init ?on_improve rng
    ~make:(fun p -> Delta_cost.create ?ranks objective t p)
    t
