type options = {
  time_limit : float;
  initial_temperature : float;
  cooling : float;
  moves_per_temperature : int;
  restarts : int;
  max_moves : int option;
}

let default_options =
  {
    time_limit = 2.0;
    initial_temperature = 0.5;
    cooling = 0.999;
    moves_per_temperature = 50;
    restarts = 3;
    max_moves = None;
  }

type result = {
  plan : Types.plan;
  cost : float;
  moves_tried : int;
  moves_accepted : int;
}

(* Flushed once per solve from the refs the loop already keeps. *)
let c_tried = Obs.Counter.make "anneal.moves_tried"
let c_accepted = Obs.Counter.make "anneal.moves_accepted"
let g_acceptance = Obs.Gauge.make "anneal.acceptance_rate"

(* One annealing run from a random start. The global best (shared across
   restarts) is updated in place so improvement callbacks see the true
   cross-restart incumbent timeline. *)
let run rng eval (t : Types.problem) options ~deadline ~stop ~improved ~tried ~accepted
    ~budget_left ~best_plan ~best_cost =
  let n = Types.node_count t and m = Types.instance_count t in
  let plan = Types.random_plan rng t in
  let cost = ref (eval plan) in
  if !cost < !best_cost then begin
    best_cost := !cost;
    best_plan := Array.copy plan;
    improved plan !cost
  end;
  (* node_of.(instance) = node currently there, or -1: needed to find swap
     partners and free instances in O(1). *)
  let node_of = Array.make m (-1) in
  Array.iteri (fun node inst -> node_of.(inst) <- node) plan;
  let temperature = ref options.initial_temperature in
  let min_temperature = 1e-4 *. options.initial_temperature in
  while
    !temperature > min_temperature
    && !budget_left > 0
    && (not (stop ()))
    && Obs.Clock.now_s () < deadline
  do
    let moves = ref options.moves_per_temperature in
    while !moves > 0 && !budget_left > 0 do
      decr moves;
      decr budget_left;
      incr tried;
      (* Propose: pick a node and a target instance; swap or relocate
         depending on whether the target is occupied. *)
      let node = Prng.int rng n in
      let target = Prng.int rng m in
      let source = plan.(node) in
      if target <> source then begin
        let other = node_of.(target) in
        let apply () =
          plan.(node) <- target;
          node_of.(target) <- node;
          node_of.(source) <- other;
          if other <> -1 then plan.(other) <- source
        in
        let revert () =
          plan.(node) <- source;
          node_of.(source) <- node;
          node_of.(target) <- other;
          if other <> -1 then plan.(other) <- target
        in
        apply ();
        let candidate = eval plan in
        let delta = candidate -. !cost in
        let accept =
          delta <= 0.0 || Prng.uniform rng < exp (-.delta /. !temperature)
        in
        if accept then begin
          incr accepted;
          cost := candidate;
          if candidate < !best_cost then begin
            best_cost := candidate;
            Array.blit plan 0 !best_plan 0 n;
            improved plan candidate
          end
        end
        else revert ()
      end
    done;
    temperature := !temperature *. options.cooling
  done

let solve ?(options = default_options) ?(stop = fun () -> false) ?on_improve rng ~eval
    (t : Types.problem) =
  if options.time_limit <= 0.0 then invalid_arg "Anneal.solve: need a positive time limit";
  if options.restarts <= 0 then invalid_arg "Anneal.solve: need at least one restart";
  (match options.max_moves with
  | Some m when m <= 0 -> invalid_arg "Anneal.solve: need a positive move budget"
  | _ -> ());
  Obs.Span.with_ "anneal.solve" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "anneal" in
  let improved plan cost =
    ignore (Obs.Incumbent.observe obs_stream cost : bool);
    match on_improve with Some f -> f plan cost | None -> ()
  in
  let deadline = Obs.Clock.now_s () +. options.time_limit in
  let tried = ref 0 and accepted = ref 0 in
  let budget_left = ref (match options.max_moves with Some m -> m | None -> max_int) in
  let best_plan = ref (Types.random_plan rng t) in
  let best_cost = ref (eval !best_plan) in
  improved !best_plan !best_cost;
  let remaining = ref options.restarts in
  while
    !remaining > 0 && !budget_left > 0 && (not (stop ())) && Obs.Clock.now_s () < deadline
  do
    decr remaining;
    run rng eval t options ~deadline ~stop ~improved ~tried ~accepted ~budget_left
      ~best_plan ~best_cost
  done;
  Obs.Counter.add c_tried !tried;
  Obs.Counter.add c_accepted !accepted;
  if !tried > 0 then
    Obs.Gauge.set g_acceptance (float_of_int !accepted /. float_of_int !tried);
  { plan = !best_plan; cost = !best_cost; moves_tried = !tried; moves_accepted = !accepted }

let solve_objective ?options ?stop ?on_improve rng objective t =
  solve ?options ?stop ?on_improve rng ~eval:(fun plan -> Cost.eval objective t plan) t
