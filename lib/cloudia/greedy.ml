(* Shared machinery for the two greedy algorithms. A partial deployment is
   tracked both ways: node_of.(instance) and inst_of.(node), -1 for unset. *)

type state = {
  problem : Types.problem;
  node_of : int array; (* instance -> node *)
  inst_of : int array; (* node -> instance *)
  mutable mapped : int;
}

let make_state problem =
  {
    problem;
    node_of = Array.make (Types.instance_count problem) (-1);
    inst_of = Array.make (Types.node_count problem) (-1);
    mapped = 0;
  }

let assign st node inst =
  st.node_of.(inst) <- node;
  st.inst_of.(node) <- inst;
  st.mapped <- st.mapped + 1

let neighbors st node = Graphs.Digraph.undirected_neighbors st.problem.Types.graph node

let has_unmapped_neighbor st node =
  Array.exists (fun w -> st.inst_of.(w) = -1) (neighbors st node)

let some_unmapped_neighbor st node =
  let found = ref (-1) in
  Array.iter (fun w -> if !found = -1 && st.inst_of.(w) = -1 then found := w) (neighbors st node);
  !found

(* Cheapest instance pair (u0, v0), u0 <> v0, treating the matrix as the
   cost of the directed link u0 -> v0. *)
let cheapest_pair (t : Types.problem) =
  let m = Types.instance_count t in
  let best = ref infinity and bu = ref 0 and bv = ref 1 in
  for u = 0 to m - 1 do
    for v = 0 to m - 1 do
      if u <> v && Types.unsafe_cost t u v < !best then begin
        best := Types.unsafe_cost t u v;
        bu := u;
        bv := v
      end
    done
  done;
  (!bu, !bv)

(* Seed a fresh component: map the endpoints of an arbitrary unmapped edge
   (x, y) onto the cheapest pair of free instances; a fully isolated node
   goes on one free instance. *)
let seed_component st =
  let t = st.problem in
  let n = Types.node_count t and m = Types.instance_count t in
  (* Pick an unmapped node with an unmapped neighbor if possible. *)
  let x = ref (-1) and y = ref (-1) in
  for node = n - 1 downto 0 do
    if st.inst_of.(node) = -1 then begin
      let w = some_unmapped_neighbor st node in
      if w <> -1 then begin
        x := node;
        y := w
      end
      else if !x = -1 then x := node
    end
  done;
  if !x = -1 then ()
  else if !y = -1 then begin
    (* Isolated node: any free instance. *)
    let inst = ref (-1) in
    for u = m - 1 downto 0 do
      if st.node_of.(u) = -1 then inst := u
    done;
    assign st !x !inst
  end
  else begin
    let best = ref infinity and bu = ref (-1) and bv = ref (-1) in
    for u = 0 to m - 1 do
      if st.node_of.(u) = -1 then
        for v = 0 to m - 1 do
          if v <> u && st.node_of.(v) = -1 && Types.unsafe_cost t u v < !best then begin
            best := Types.unsafe_cost t u v;
            bu := u;
            bv := v
          end
        done
    done;
    assign st !x !bu;
    assign st !y !bv
  end

let finish st =
  (* All nodes must be mapped by construction; return the plan. *)
  Array.copy st.inst_of

let g1 (t : Types.problem) =
  Obs.Span.with_ "greedy.g1" @@ fun () ->
  let n = Types.node_count t and m = Types.instance_count t in
  let st = make_state t in
  if n = 1 then begin
    seed_component st;
    finish st
  end
  else begin
    (* Lines 1–3: cheapest pair carries an arbitrary edge. *)
    let u0, v0 = cheapest_pair t in
    (match Graphs.Digraph.edges t.Types.graph with
    | [||] -> seed_component st
    | edges ->
        let x, y = edges.(0) in
        assign st x u0;
        assign st y v0);
    (* Lines 4–16: repeatedly attach the cheapest extension link. *)
    while st.mapped < n do
      let cmin = ref infinity and umin = ref (-1) and vmin = ref (-1) in
      for u = 0 to m - 1 do
        let node = st.node_of.(u) in
        if node <> -1 && has_unmapped_neighbor st node then
          for v = 0 to m - 1 do
            if st.node_of.(v) = -1 && v <> u && Types.unsafe_cost t u v < !cmin then begin
              cmin := Types.unsafe_cost t u v;
              umin := u;
              vmin := v
            end
          done
      done;
      if !umin = -1 then seed_component st
      else begin
        let w = some_unmapped_neighbor st st.node_of.(!umin) in
        assign st w !vmin
      end
    done;
    finish st
  end

let g2 (t : Types.problem) =
  Obs.Span.with_ "greedy.g2" @@ fun () ->
  let n = Types.node_count t and m = Types.instance_count t in
  let st = make_state t in
  if n = 1 then begin
    seed_component st;
    finish st
  end
  else begin
    let u0, v0 = cheapest_pair t in
    (match Graphs.Digraph.edges t.Types.graph with
    | [||] -> seed_component st
    | edges ->
        let x, y = edges.(0) in
        assign st x u0;
        assign st y v0);
    (* Cost of attaching node w to instance v: the worst link among the
       explicit link (u, v) and every link between v and the instances of
       w's already-mapped neighbors, in both edge directions. *)
    let extension_cost u v w =
      let cost = ref (Types.unsafe_cost t u v) in
      Array.iter
        (fun x ->
          let inst = st.inst_of.(x) in
          if inst <> -1 then begin
            if Graphs.Digraph.mem_edge t.Types.graph w x then
              cost := Float.max !cost (Types.unsafe_cost t v inst);
            if Graphs.Digraph.mem_edge t.Types.graph x w then
              cost := Float.max !cost (Types.unsafe_cost t inst v)
          end)
        (neighbors st w);
      !cost
    in
    while st.mapped < n do
      let cmin = ref infinity and vmin = ref (-1) and wmin = ref (-1) in
      for u = 0 to m - 1 do
        let node = st.node_of.(u) in
        if node <> -1 then
          Array.iter
            (fun w ->
              if st.inst_of.(w) = -1 then
                for v = 0 to m - 1 do
                  if st.node_of.(v) = -1 && v <> u then begin
                    let c = extension_cost u v w in
                    if c < !cmin then begin
                      cmin := c;
                      vmin := v;
                      wmin := w
                    end
                  end
                done)
            (neighbors st node)
      done;
      if !wmin = -1 then seed_component st else assign st !wmin !vmin
    done;
    finish st
  end
