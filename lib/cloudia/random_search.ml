let no_stop () = false

(* Counts every candidate plan drawn, bootstrap seeding included. *)
let c_trials = Obs.Counter.make "random_search.trials"

let r1_eval ?(stop = no_stop) ?on_improve rng ~eval problem ~trials =
  if trials <= 0 then invalid_arg "Random_search.r1: need a positive trial count";
  let improved plan cost =
    match on_improve with Some f -> f plan cost | None -> ()
  in
  let best_plan = ref (Types.random_plan rng problem) in
  let best_cost = ref (eval !best_plan) in
  improved !best_plan !best_cost;
  let drawn = ref 1 in
  (try
     for _ = 2 to trials do
       if stop () then raise Exit;
       let plan = Types.random_plan rng problem in
       let c = eval plan in
       incr drawn;
       if c < !best_cost then begin
         best_cost := c;
         best_plan := plan;
         improved plan c
       end
     done
   with Exit -> ());
  Obs.Counter.add c_trials !drawn;
  (!best_plan, !best_cost)

let r2_eval ?(stop = no_stop) ?on_improve ?(now = Obs.Clock.now_s) rng ~eval problem
    ~time_limit =
  if time_limit <= 0.0 then invalid_arg "Random_search.r2: need a positive time limit";
  Obs.Span.with_ "random_search.r2" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "random" in
  let improved plan cost =
    ignore (Obs.Incumbent.observe obs_stream cost : bool);
    match on_improve with Some f -> f plan cost | None -> ()
  in
  let deadline = now () +. time_limit in
  let best_plan = ref (Types.random_plan rng problem) in
  let best_cost = ref (eval !best_plan) in
  improved !best_plan !best_cost;
  let trials = ref 1 in
  while (not (stop ())) && now () < deadline do
    let plan = Types.random_plan rng problem in
    let c = eval plan in
    incr trials;
    if c < !best_cost then begin
      best_cost := c;
      best_plan := plan;
      improved plan c
    end
  done;
  Obs.Counter.add c_trials !trials;
  (!best_plan, !best_cost, !trials)

let r1 ?stop ?on_improve rng objective problem ~trials =
  r1_eval ?stop ?on_improve rng
    ~eval:(fun plan -> Cost.eval objective problem plan)
    problem ~trials

let r2 ?stop ?on_improve ?now rng objective problem ~time_limit =
  r2_eval ?stop ?on_improve ?now rng
    ~eval:(fun plan -> Cost.eval objective problem plan)
    problem ~time_limit

let best_of rng objective problem k = fst (r1 rng objective problem ~trials:k)

let best_of_eval rng ~eval problem k = fst (r1_eval rng ~eval problem ~trials:k)

let r2_parallel ?(domains = 4) rng objective problem ~time_limit =
  if domains <= 0 then invalid_arg "Random_search.r2_parallel: need at least one domain";
  if time_limit <= 0.0 then invalid_arg "Random_search.r2_parallel: need a positive time limit";
  (* Independent streams per domain; evaluation is pure, so workers share
     nothing but the immutable problem. *)
  let seeds = Array.init domains (fun _ -> Prng.split rng) in
  let worker stream =
    Domain.spawn (fun () ->
        r2_eval stream
          ~eval:(fun plan -> Cost.eval objective problem plan)
          problem ~time_limit)
  in
  let handles = Array.map worker seeds in
  let results = Array.map Domain.join handles in
  Array.fold_left
    (fun (best_plan, best_cost, total) (plan, cost, trials) ->
      if cost < best_cost then (plan, cost, total + trials)
      else (best_plan, best_cost, total + trials))
    (let p, c, t = results.(0) in
     (p, c, t))
    (Array.sub results 1 (Array.length results - 1))
