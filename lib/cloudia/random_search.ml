let no_stop () = false

(* Counts every candidate plan drawn, bootstrap seeding included. *)
let c_trials = Obs.Counter.make "random_search.trials"

let r1_eval ?(stop = no_stop) ?on_improve rng ~eval problem ~trials =
  if trials <= 0 then invalid_arg "Random_search.r1: need a positive trial count";
  let improved plan cost =
    match on_improve with Some f -> f plan cost | None -> ()
  in
  let best_plan = ref (Types.random_plan rng problem) in
  let best_cost = ref (eval !best_plan) in
  improved !best_plan !best_cost;
  let drawn = ref 1 in
  (try
     for _ = 2 to trials do
       if stop () then raise Exit;
       let plan = Types.random_plan rng problem in
       let c = eval plan in
       incr drawn;
       if c < !best_cost then begin
         best_cost := c;
         best_plan := plan;
         improved plan c
       end
     done
   with Exit -> ());
  Obs.Counter.add c_trials !drawn;
  (!best_plan, !best_cost)

let r2_eval ?(stop = no_stop) ?on_improve ?(now = Obs.Clock.now_s) rng ~eval problem
    ~time_limit =
  if time_limit <= 0.0 then invalid_arg "Random_search.r2: need a positive time limit";
  Obs.Span.with_ "random_search.r2" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "random" in
  let improved plan cost =
    ignore (Obs.Incumbent.observe obs_stream cost : bool);
    match on_improve with Some f -> f plan cost | None -> ()
  in
  let deadline = now () +. time_limit in
  let best_plan = ref (Types.random_plan rng problem) in
  let best_cost = ref (eval !best_plan) in
  improved !best_plan !best_cost;
  let trials = ref 1 in
  while (not (stop ())) && now () < deadline do
    let plan = Types.random_plan rng problem in
    let c = eval plan in
    incr trials;
    if c < !best_cost then begin
      best_cost := c;
      best_plan := plan;
      improved plan c
    end
  done;
  Obs.Counter.add c_trials !trials;
  (!best_plan, !best_cost, !trials)

let r1 ?stop ?on_improve rng objective problem ~trials =
  r1_eval ?stop ?on_improve rng
    ~eval:(fun plan -> Cost.eval objective problem plan)
    problem ~trials

let r2 ?stop ?on_improve ?now rng objective problem ~time_limit =
  r2_eval ?stop ?on_improve ?now rng
    ~eval:(fun plan -> Cost.eval objective problem plan)
    problem ~time_limit

let best_of rng objective problem k = fst (r1 rng objective problem ~trials:k)

let best_of_eval rng ~eval problem k = fst (r1_eval rng ~eval problem ~trials:k)

let r2_parallel ?(domains = 4) ?(stop = no_stop) ?on_improve rng objective problem
    ~time_limit =
  if domains <= 0 then invalid_arg "Random_search.r2_parallel: need at least one domain";
  if time_limit <= 0.0 then invalid_arg "Random_search.r2_parallel: need a positive time limit";
  Obs.Span.with_ "random_search.r2_parallel" @@ fun () ->
  (* One incumbent stream and one improvement callback for the whole
     gang: per-domain improvements are merged under a mutex so the caller
     only ever sees the strictly decreasing cross-domain prefix minima
     (each with a private copy of the plan). [stop] is polled from every
     domain and must therefore be thread-safe — the portfolio's
     atomic-flag stop is; so is any pure deadline check. *)
  let obs_stream = Obs.Incumbent.stream "random.parallel" in
  let merge_mutex = Mutex.create () in
  let merged_best = ref infinity in
  let publish plan cost =
    ignore (Obs.Incumbent.observe obs_stream cost : bool);
    match on_improve with
    | None -> ()
    | Some f ->
        let copy = Array.copy plan in
        Mutex.protect merge_mutex (fun () ->
            if cost < !merged_best then begin
              merged_best := cost;
              f copy cost
            end)
  in
  (* Independent streams per domain; evaluation is pure, so workers share
     nothing but the immutable problem and the merge state above. Trial
     counts are merged atomically inside [r2_eval]'s counter flush (the
     [random_search.trials] counter is a process-global atomic) and
     summed for the return value below. *)
  let seeds = Array.init domains (fun _ -> Prng.split rng) in
  let worker stream =
    Domain.spawn (fun () ->
        r2_eval ~stop ~on_improve:publish stream
          ~eval:(fun plan -> Cost.eval objective problem plan)
          problem ~time_limit)
  in
  let handles = Array.map worker seeds in
  let results = Array.map Domain.join handles in
  Array.fold_left
    (fun (best_plan, best_cost, total) (plan, cost, trials) ->
      if cost < best_cost then (plan, cost, total + trials)
      else (best_plan, best_cost, total + trials))
    (let p, c, t = results.(0) in
     (p, c, t))
    (Array.sub results 1 (Array.length results - 1))

(* ---------- R2 with local descent ---------- *)

(* Counts completed random restarts of the descent search. *)
let c_descents = Obs.Counter.make "random_search.descents"

let r2_descent ?(stop = no_stop) ?on_improve ?(now = Obs.Clock.now_s) rng objective
    problem ~time_limit =
  if time_limit <= 0.0 then
    invalid_arg "Random_search.r2_descent: need a positive time limit";
  Obs.Span.with_ "random_search.r2_descent" @@ fun () ->
  let obs_stream = Obs.Incumbent.stream "random.descent" in
  let improved plan cost =
    ignore (Obs.Incumbent.observe obs_stream cost : bool);
    match on_improve with Some f -> f plan cost | None -> ()
  in
  let n = Types.node_count problem and m = Types.instance_count problem in
  let deadline = now () +. time_limit in
  let out_of_budget () = stop () || now () >= deadline in
  let init = Types.random_plan rng problem in
  let kernel = Delta_cost.create objective problem init in
  let best_plan = ref (Delta_cost.plan kernel) in
  let best_cost = ref (Delta_cost.cost kernel) in
  improved !best_plan !best_cost;
  let restarts = ref 0 in
  (* First-improvement descent over the full (node, target) neighborhood,
     repeated until a complete pass finds nothing better (a local optimum
     under swap/relocate moves) or the budget fires. Each proposal is
     O(deg) through the kernel, so a pass over the n·m neighborhood costs
     about what two full evaluations used to. *)
  let descend () =
    let cur = ref (Delta_cost.cost kernel) in
    let improved_pass = ref true in
    while !improved_pass && not (out_of_budget ()) do
      improved_pass := false;
      let node = ref 0 in
      while !node < n && not (out_of_budget ()) do
        for target = 0 to m - 1 do
          if target <> Delta_cost.instance_of kernel !node then begin
            let candidate = Delta_cost.propose_move kernel ~node:!node ~target in
            if candidate < !cur then begin
              Delta_cost.commit kernel;
              cur := candidate;
              improved_pass := true;
              if candidate < !best_cost then begin
                best_cost := candidate;
                Array.blit (Delta_cost.current kernel) 0 !best_plan 0 n;
                improved (Delta_cost.current kernel) candidate
              end
            end
            else Delta_cost.abort kernel
          end
        done;
        incr node
      done
    done
  in
  descend ();
  incr restarts;
  while not (out_of_budget ()) do
    Delta_cost.reset kernel (Types.random_plan rng problem);
    let start_cost = Delta_cost.cost kernel in
    if start_cost < !best_cost then begin
      best_cost := start_cost;
      best_plan := Delta_cost.plan kernel;
      improved (Delta_cost.current kernel) start_cost
    end;
    descend ();
    incr restarts
  done;
  Delta_cost.flush_counters kernel;
  Obs.Counter.add c_descents !restarts;
  Obs.Counter.add c_trials !restarts;
  (!best_plan, !best_cost, !restarts)
