(** Incremental (delta) cost evaluation for local search.

    Every move a local-search solver proposes — swap the instances of two
    nodes, or relocate a node onto a free instance — changes only the
    costs of the communication edges incident to the moved nodes, yet a
    full {!Cost.eval} re-scans every edge (longest link) or re-relaxes
    the whole DAG (longest path). A kernel built here is constructed once
    per [(problem, objective)] pair and answers each proposal from the
    parts of the objective the move can actually touch:

    - {b longest link}: per-node incident-edge arrays locate the O(deg)
      affected edges, and a bucketed max structure over the distinct cost
      values of the matrix (rank counts plus a lazily decremented top
      pointer) re-answers the maximum without a scan;
    - {b longest path}: the DAG relaxation is re-run only over the
      topological suffix starting at the earliest moved node
      (affected-prefix re-relaxation); when a moved node sits at
      topological position 0 this degenerates to a full recompute, which
      is counted as a fallback;
    - {b opaque evaluators} (weighted, bandwidth, …): proposals fall back
      to the supplied full evaluation, so one solver loop serves every
      objective and the counters make the fallback rate visible.

    Proposals follow a strict protocol: at most one proposal is pending
    at a time, and it must be resolved with {!commit} or {!abort} before
    the next one. Costs computed incrementally are bit-identical to
    {!Cost.eval} on the same plan — both objectives reduce to [max]/[+.]
    over the same operand sets, which float arithmetic evaluates
    order-independently — and the property tests assert exactly that.

    Telemetry: kernels count proposals and full-evaluation fallbacks
    locally and publish them to the [delta.proposals] and
    [delta.fallback_evals] {!Obs.Counter}s on {!flush_counters} (hot
    loops flush once per solve, per the [Obs] convention). *)

type t
(** A mutable kernel: the current plan, its cost, and the per-objective
    incremental state. Not thread-safe; give each domain its own. *)

type ranks
(** The plan-independent half of a longest-link kernel: the distinct
    off-diagonal cost values and the per-ordered-pair rank table. O(m²)
    to build, immutable afterwards — compute it once per cost matrix
    (keyed by {!Lat_matrix.fingerprint}) and pass it to every {!create}
    over the same matrix to skip the rebuild. *)

val ranks_of_matrix : Lat_matrix.t -> ranks
(** Build the rank table for a cost matrix. *)

val create : ?ranks:ranks -> Cost.objective -> Types.problem -> Types.plan -> t
(** [create objective problem plan] validates [plan] (a partial injection
    of nodes into instances) and builds the kernel in O(|V| + |E| + R)
    where R is the number of distinct cost values. Raises
    [Invalid_argument] on an invalid plan, or for [Longest_path] on a
    cyclic communication graph. The plan is copied.

    [ranks] must have been built (by {!ranks_of_matrix}) from
    [problem]'s cost matrix; it is trusted beyond a dimension check
    (raising [Invalid_argument] on mismatch) — key your cache by content
    fingerprint. Only [Longest_link] kernels use it; it is ignored for
    [Longest_path]. *)

val create_eval : eval:(Types.plan -> float) -> Types.problem -> Types.plan -> t
(** A kernel over an arbitrary plan-cost function. Proposals pay one full
    [eval] each (counted as fallbacks); the kernel still maintains the
    plan, the occupancy index, and the commit/abort protocol, so solver
    loops need no separate code path for non-standard objectives. *)

val cost : t -> float
(** Cost of the current (committed) plan. Unaffected by a pending
    proposal until it is committed. *)

val current : t -> Types.plan
(** The kernel's working plan array, borrowed: do not mutate, and copy if
    retained. While a proposal is pending this reflects the {e proposed}
    assignment. *)

val plan : t -> Types.plan
(** A fresh copy of the current plan. *)

val instance_of : t -> int -> int
(** [instance_of t node] is the instance currently hosting [node]. *)

val occupant : t -> int -> int option
(** [occupant t instance] is the node placed on [instance], if any. *)

val propose_move : t -> node:int -> target:int -> float
(** [propose_move t ~node ~target] tentatively moves [node] onto instance
    [target] — swapping with the occupant if [target] is occupied,
    relocating if it is free — and returns the cost of the resulting
    plan. The move is not applied to the committed state until {!commit};
    {!abort} restores everything. O(deg(node) + deg(occupant)) for
    longest link; O(suffix) for longest path; O(full eval) for opaque
    kernels. Raises [Invalid_argument] if a proposal is already pending,
    an index is out of range, or [node] already occupies [target]. *)

val propose_swap : t -> int -> int -> float
(** [propose_swap t a b] proposes exchanging the instances of nodes [a]
    and [b] ([a <> b]). Equivalent to
    [propose_move t ~node:a ~target:(instance_of t b)]. *)

val propose_relocate : t -> node:int -> target:int -> float
(** [propose_relocate t ~node ~target] proposes moving [node] onto the
    {e free} instance [target]. Raises [Invalid_argument] if [target] is
    occupied (use {!propose_swap} or {!propose_move}). *)

val commit : t -> unit
(** Accept the pending proposal: its cost becomes {!cost}. Raises
    [Invalid_argument] if no proposal is pending. *)

val abort : t -> unit
(** Discard the pending proposal and restore the committed state. Raises
    [Invalid_argument] if no proposal is pending. *)

val reset : t -> Types.plan -> unit
(** [reset t plan] re-seeds the kernel from a fresh plan (validated,
    copied) with a full resynchronization — what a restart-based search
    calls between restarts. Raises [Invalid_argument] while a proposal is
    pending. *)

val full_cost : t -> float
(** The current plan's cost recomputed from scratch ({!Cost.eval} for the
    standard objectives, the supplied [eval] for opaque kernels) without
    touching the incremental state — a cross-check oracle for tests and
    the bench equivalence gate. Raises [Invalid_argument] while a
    proposal is pending. *)

val proposals : t -> int
(** Proposals answered since creation or the last {!flush_counters}. *)

val fallback_evals : t -> int
(** Full evaluations paid since creation or the last {!flush_counters}:
    every opaque proposal, plus every longest-path proposal whose
    affected prefix started at topological position 0. *)

val flush_counters : t -> unit
(** Publish the locally accumulated proposal/fallback counts to the
    [delta.proposals] and [delta.fallback_evals] {!Obs.Counter}s and zero
    the local accumulators. Call once per solve. *)
