(* Minimal JSON parser + emitter shared by the trace loader and the
   serve protocol. See the .mli for the contract. *)

type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' -> (
          incr pos;
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; incr pos; go ()
          | Some '\\' -> Buffer.add_char b '\\'; incr pos; go ()
          | Some '/' -> Buffer.add_char b '/'; incr pos; go ()
          | Some 'b' -> Buffer.add_char b '\b'; incr pos; go ()
          | Some 'f' -> Buffer.add_char b '\012'; incr pos; go ()
          | Some 'n' -> Buffer.add_char b '\n'; incr pos; go ()
          | Some 'r' -> Buffer.add_char b '\r'; incr pos; go ()
          | Some 't' -> Buffer.add_char b '\t'; incr pos; go ()
          | Some 'u' ->
              incr pos;
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ ->
                  (* The emitters only escape control chars; anything else
                     is preserved approximately. *)
                  Buffer.add_char b '?'
              | None -> fail "bad \\u escape");
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    let raw = String.sub s start (!pos - start) in
    match float_of_string_opt raw with
    | Some _ -> Num raw
    | None -> fail (Printf.sprintf "malformed number %S" raw)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let continue = ref true in
          while !continue do
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some '}' ->
                incr pos;
                continue := false
            | _ -> fail "expected ',' or '}'"
          done;
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let continue = ref true in
          while !continue do
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some ']' ->
                incr pos;
                continue := false
            | _ -> fail "expected ',' or ']'"
          done;
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt s = match parse s with v -> Some v | exception Bad _ -> None

(* ---- emission ---- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string v =
  let b = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num raw -> Buffer.add_string b raw
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            emit v)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            emit v)
          fields;
        Buffer.add_char b '}'
  in
  emit v;
  Buffer.contents b

let of_float f = if Float.is_finite f then Num (Printf.sprintf "%.17g" f) else Null
let of_int i = Num (string_of_int i)
let of_int64 i = Num (Int64.to_string i)

(* ---- field accessors ---- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let str_field k obj =
  match member k obj with
  | Some (Str s) -> s
  | _ -> raise (Bad ("missing string field " ^ k))

let float_field ?default k obj =
  match (member k obj, default) with
  | Some (Num raw), _ -> float_of_string raw
  | Some Null, Some d | None, Some d -> d
  | _ -> raise (Bad ("missing number field " ^ k))

let int_field ?default k obj =
  match (member k obj, default) with
  | Some (Num raw), _ -> (
      match int_of_string_opt raw with
      | Some i -> i
      | None -> int_of_float (float_of_string raw))
  | Some Null, Some d | None, Some d -> d
  | _ -> raise (Bad ("missing integer field " ^ k))

let int64_field ?(default = 0L) k obj =
  match member k obj with
  | Some (Num raw) -> (
      match Int64.of_string_opt raw with
      | Some v -> v
      | None -> Int64.of_float (float_of_string raw))
  | _ -> default
