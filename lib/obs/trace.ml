(* Read side of the JSONL exporter: parse, reconstruct, summarize,
   compare. See trace.mli for the contract.

   The JSON value parser that used to live here moved to Json (the serve
   protocol shares it); this module keeps only the trace-record layer. *)

open Json

(* ---- trace records ---- *)

type header = {
  schema : int;
  seed : int option;
  argv : string list;
}

type t = {
  header : header option;
  events : Event.t list;
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : Histogram.snapshot list;
}

type record =
  | R_header of header
  | R_event of Event.t
  | R_counter of string * int
  | R_gauge of string * float
  | R_hist of Histogram.snapshot
  | R_skip

let parse_record obj =
  let typ = match member "type" obj with Some (Str t) -> t | _ -> "" in
  let event payload =
    R_event
      {
        Event.t_ns = int64_field "ts_ns" obj;
        domain = int_field ~default:0 "domain" obj;
        payload;
      }
  in
  match typ with
  | "header" ->
      let seed = match member "seed" obj with Some (Num raw) -> int_of_string_opt raw | _ -> None in
      let argv =
        match member "argv" obj with
        | Some (Arr items) ->
            List.filter_map (function Str s -> Some s | _ -> None) items
        | _ -> []
      in
      R_header { schema = int_field ~default:1 "schema" obj; seed; argv }
  | "span_begin" -> event (Event.Span_begin (str_field "name" obj))
  | "span_end" -> event (Event.Span_end (str_field "name" obj))
  | "mark" -> event (Event.Mark (str_field "name" obj))
  | "incumbent" ->
      event
        (Event.Incumbent
           { stream = str_field "stream" obj; cost = float_field ~default:nan "cost" obj })
  | "gc" ->
      event
        (Event.Gc_delta
           {
             span = str_field "span" obj;
             minor_words = float_field ~default:0.0 "minor_words" obj;
             major_words = float_field ~default:0.0 "major_words" obj;
             promoted_words = float_field ~default:0.0 "promoted_words" obj;
             heap_words = int_field ~default:0 "heap_words" obj;
             compactions = int_field ~default:0 "compactions" obj;
           })
  | "counter" -> R_counter (str_field "name" obj, int_field "total" obj)
  | "gauge" -> R_gauge (str_field "name" obj, float_field ~default:nan "value" obj)
  | "hist" ->
      let buckets =
        match member "buckets" obj with
        | Some (Arr items) ->
            List.filter_map
              (function
                | Arr [ Num i; Num c ] -> (
                    match (int_of_string_opt i, int_of_string_opt c) with
                    | Some i, Some c -> Some (i, c)
                    | _ -> None)
                | _ -> None)
              items
        | _ -> []
      in
      R_hist
        {
          Histogram.hist_name = str_field "name" obj;
          hist_alpha = float_field ~default:Histogram.default_alpha "alpha" obj;
          hist_count = int_field ~default:0 "count" obj;
          hist_sum = float_field ~default:0.0 "sum" obj;
          hist_min = float_field ~default:infinity "min" obj;
          hist_max = float_field ~default:neg_infinity "max" obj;
          hist_zero = int_field ~default:0 "zero" obj;
          hist_buckets = buckets;
        }
  | _ -> R_skip

let of_lines lines =
  let header = ref None in
  let events = ref [] in
  let counters = ref [] in
  let gauges = ref [] in
  let hists = ref [] in
  let err = ref None in
  List.iteri
    (fun lineno line ->
      if !err = None && String.trim line <> "" then
        match parse_record (Json.parse line) with
        | R_header h ->
            if h.schema > Export.schema_version then
              err :=
                Some
                  (Printf.sprintf "line %d: trace schema %d is newer than this build's %d"
                     (lineno + 1) h.schema Export.schema_version)
            else if !header = None then header := Some h
        | R_event e -> events := e :: !events
        | R_counter (name, total) -> counters := (name, total) :: !counters
        | R_gauge (name, v) -> gauges := (name, v) :: !gauges
        | R_hist s -> hists := s :: !hists
        | R_skip -> ()
        | exception Bad msg -> err := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg))
    lines;
  match !err with
  | Some msg -> Error msg
  | None ->
      Ok
        {
          header = !header;
          events = List.rev !events;
          counters = List.rev !counters;
          gauges = List.rev !gauges;
          hists = List.rev !hists;
        }

let of_string text = of_lines (String.split_on_char '\n' text)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
      match of_string text with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg

(* ---- span tree with self times and gc attribution ---- *)

type node = {
  span : string;
  calls : int;
  total_ns : int64;
  self_ns : int64;
  minor_words : float;
  major_words : float;
  children : node list;
}

type mnode = {
  mutable m_calls : int;
  mutable m_total : int64;
  mutable m_minor : float;
  mutable m_major : float;
  m_children : (string, mnode) Hashtbl.t;
  m_order : string Queue.t;
}

let make_mnode () =
  {
    m_calls = 0;
    m_total = 0L;
    m_minor = 0.0;
    m_major = 0.0;
    m_children = Hashtbl.create 4;
    m_order = Queue.create ();
  }

let mchild node name =
  match Hashtbl.find_opt node.m_children name with
  | Some c -> c
  | None ->
      let c = make_mnode () in
      Hashtbl.add node.m_children name c;
      Queue.add name node.m_order;
      c

let build_domain_tree events =
  let root = make_mnode () in
  let stack = ref [] in
  let last_ts = List.fold_left (fun _ (e : Event.t) -> e.Event.t_ns) 0L events in
  let parent () = match !stack with [] -> root | (_, _, n) :: _ -> n in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Span_begin name ->
          let n = mchild (parent ()) name in
          stack := (name, e.Event.t_ns, n) :: !stack
      | Event.Span_end name -> (
          match !stack with
          | (top, t_begin, n) :: rest when top = name ->
              n.m_calls <- n.m_calls + 1;
              n.m_total <- Int64.add n.m_total (Int64.sub e.Event.t_ns t_begin);
              stack := rest
          | _ -> ())
      | Event.Gc_delta g -> (
          (* A Resource.with_ gc sample lands just before its span's end:
             attribute it to the innermost open span of that name. *)
          match List.find_opt (fun (top, _, _) -> top = g.span) !stack with
          | Some (_, _, n) ->
              n.m_minor <- n.m_minor +. g.minor_words;
              n.m_major <- n.m_major +. g.major_words
          | None -> ())
      | Event.Incumbent _ | Event.Mark _ -> ())
    events;
  List.iter
    (fun (_, t_begin, n) ->
      n.m_calls <- n.m_calls + 1;
      n.m_total <- Int64.add n.m_total (Int64.sub last_ts t_begin))
    !stack;
  root

let rec freeze name (m : mnode) =
  let children =
    Queue.fold (fun acc cn -> freeze cn (Hashtbl.find m.m_children cn) :: acc) [] m.m_order
    |> List.rev
  in
  let child_total =
    List.fold_left (fun acc c -> Int64.add acc c.total_ns) 0L children
  in
  let self = Int64.sub m.m_total child_total in
  {
    span = name;
    calls = m.m_calls;
    total_ns = m.m_total;
    self_ns = (if Int64.compare self 0L < 0 then 0L else self);
    minor_words = m.m_minor;
    major_words = m.m_major;
    children;
  }

let span_tree t =
  let domains =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.Event.domain) t.events)
  in
  List.filter_map
    (fun dom ->
      let evs = List.filter (fun (e : Event.t) -> e.Event.domain = dom) t.events in
      let root = build_domain_tree evs in
      let forest = (freeze "" root).children in
      if forest = [] then None else Some (dom, forest))
    domains

let span_totals t =
  let totals = Hashtbl.create 16 in
  (* Nested same-name occurrences count once (the outermost), so a
     recursive span cannot exceed wall time. *)
  let rec walk ancestors n =
    if not (List.mem n.span ancestors) then begin
      let prior = match Hashtbl.find_opt totals n.span with Some v -> v | None -> 0L in
      Hashtbl.replace totals n.span (Int64.add prior n.total_ns)
    end;
    List.iter (walk (n.span :: ancestors)) n.children
  in
  List.iter (fun (_, forest) -> List.iter (walk []) forest) (span_tree t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals [] |> List.sort compare

(* ---- time-to-quality from incumbent streams ---- *)

type quality = {
  stream : string;
  updates : int;
  first_cost : float;
  final_cost : float;
  window_s : float;
  primal_integral : float;
  tt_within : (float * float) list;
}

let quality ?(thresholds = [ 1.0; 5.0; 10.0 ]) t =
  let last_ts =
    List.fold_left (fun acc (e : Event.t) -> Int64.max acc e.Event.t_ns) Int64.min_int
      t.events
  in
  let streams = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Incumbent { stream; cost } when Float.is_finite cost ->
          let obs = match Hashtbl.find_opt streams stream with Some o -> o | None -> [] in
          Hashtbl.replace streams stream ((e.Event.t_ns, cost) :: obs)
      | _ -> ())
    t.events;
  Hashtbl.fold (fun s obs acc -> (s, List.rev obs) :: acc) streams []
  |> List.sort compare
  |> List.map (fun (stream, obs) ->
         (* The same stream name can be reused across solves (fresh
            Incumbent.stream per solve): the running minimum makes the
            merged series a proper anytime curve. *)
         let curve =
           List.fold_left
             (fun acc (ts, c) ->
               match acc with
               | (_, best) :: _ when c >= best -> acc
               | _ -> (ts, c) :: acc)
             [] obs
           |> List.rev
         in
         let t0 = fst (List.hd curve) in
         let final = snd (List.nth curve (List.length curve - 1)) in
         let t_end = Int64.max last_ts t0 in
         let window_ns = Int64.to_float (Int64.sub t_end t0) in
         let denom = if Float.abs final > 0.0 then Float.abs final else 1.0 in
         let integral = ref 0.0 in
         let rec segments = function
           | (t1, c1) :: (((t2, _) :: _) as rest) ->
               integral :=
                 !integral
                 +. (c1 -. final) /. denom *. Int64.to_float (Int64.sub t2 t1);
               segments rest
           | [ (_, _) ] | [] -> ()
           (* last segment runs to t_end at gap 0 (c = final) *)
         in
         segments curve;
         let primal_integral = if window_ns > 0.0 then !integral /. window_ns else 0.0 in
         let tt_within =
           List.map
             (fun pct ->
               let target = final +. (pct /. 100.0 *. denom) +. 1e-12 in
               let hit =
                 List.find_opt (fun (_, c) -> c <= target) curve
                 |> Option.map (fun (ts, _) -> Int64.to_float (Int64.sub ts t0) /. 1e9)
               in
               (pct, Option.value hit ~default:(window_ns /. 1e9)))
             (List.sort compare thresholds)
         in
         {
           stream;
           updates = List.length obs;
           first_cost = snd (List.hd obs);
           final_cost = final;
           window_s = window_ns /. 1e9;
           primal_integral;
           tt_within;
         })

(* ---- text report ---- *)

let report oc t =
  let n_records =
    List.length t.events + List.length t.counters + List.length t.gauges
    + List.length t.hists
    + match t.header with Some _ -> 1 | None -> 0
  in
  let domains =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.Event.domain) t.events)
  in
  Printf.fprintf oc "trace: %d records, %d event(s), %d domain(s)\n" n_records
    (List.length t.events) (List.length domains);
  (match t.header with
  | Some h ->
      Printf.fprintf oc "run: %s(schema %d%s)\n"
        (match h.argv with [] -> "" | argv -> String.concat " " argv ^ " ")
        h.schema
        (match h.seed with Some s -> Printf.sprintf ", seed %d" s | None -> "")
  | None -> Printf.fprintf oc "run: (no header — pre-v2 trace)\n");
  List.iter
    (fun (dom, forest) ->
      Printf.fprintf oc "spans (domain %d)%19s %12s %12s %14s\n" dom "calls" "total ms"
        "self ms" "minor words";
      let rec print indent n =
        Printf.fprintf oc "  %s%-*s %6d %12.3f %12.3f" indent
          (max 1 (33 - String.length indent))
          n.span n.calls
          (Clock.ns_to_ms n.total_ns)
          (Clock.ns_to_ms n.self_ns);
        if n.minor_words > 0.0 || n.major_words > 0.0 then
          Printf.fprintf oc " %14.0f" n.minor_words;
        output_char oc '\n';
        List.iter (print (indent ^ "  ")) n.children
      in
      List.iter (print "") forest)
    (span_tree t);
  if t.hists <> [] then begin
    Printf.fprintf oc "histograms%29s %10s %10s %10s %10s %10s\n" "count" "mean" "p50" "p90"
      "p99" "max";
    List.iter
      (fun (s : Histogram.snapshot) ->
        Printf.fprintf oc "  %-36s %6d %10.4g %10.4g %10.4g %10.4g %10.4g\n" s.hist_name
          s.hist_count (Histogram.mean_of s)
          (Histogram.quantile_of s 0.50)
          (Histogram.quantile_of s 0.90)
          (Histogram.quantile_of s 0.99)
          s.hist_max)
      (List.sort (fun (a : Histogram.snapshot) b -> compare a.hist_name b.hist_name) t.hists)
  end;
  (match quality t with
  | [] -> ()
  | qs ->
      Printf.fprintf oc "time-to-quality\n";
      List.iter
        (fun q ->
          Printf.fprintf oc
            "  %-24s %4d update%s first %.6g final %.6g window %.3f s\n" q.stream q.updates
            (if q.updates = 1 then " " else "s")
            q.first_cost q.final_cost q.window_s;
          Printf.fprintf oc "    primal integral (mean rel. gap) %.4f\n" q.primal_integral;
          List.iter
            (fun (pct, secs) ->
              Printf.fprintf oc "    within %4.1f%% of final %33.3f s\n" pct secs)
            q.tt_within)
        qs);
  if t.counters <> [] then begin
    Printf.fprintf oc "counters\n";
    List.iter
      (fun (name, v) -> Printf.fprintf oc "  %-40s %12d\n" name v)
      (List.sort compare t.counters)
  end;
  if t.gauges <> [] then begin
    Printf.fprintf oc "gauges\n";
    List.iter
      (fun (name, v) -> Printf.fprintf oc "  %-40s %12.4f\n" name v)
      (List.sort compare t.gauges)
  end

(* ---- regression comparison ---- *)

type direction = Lower_better | Higher_better

type check = {
  metric : string;
  base : float;
  current : float;
  limit : float;
  slack : float;
  direction : direction;
  ok : bool;
}

let header_mismatch a b =
  match (a.header, b.header) with
  | Some ha, Some hb ->
      if ha.schema <> hb.schema then
        Some (Printf.sprintf "schema mismatch: %d vs %d" ha.schema hb.schema)
      else if ha.seed <> hb.seed then
        Some
          (Printf.sprintf "seed mismatch: %s vs %s"
             (match ha.seed with Some s -> string_of_int s | None -> "none")
             (match hb.seed with Some s -> string_of_int s | None -> "none"))
      else if ha.argv <> hb.argv then
        Some
          (Printf.sprintf "argv mismatch: %S vs %S" (String.concat " " ha.argv)
             (String.concat " " hb.argv))
      else None
  | _ -> None

let mk_check ~metric ~direction ~limit ?(slack = 0.0) ~base ~current () =
  let ok =
    match direction with
    | Lower_better -> current <= (limit *. base) +. slack
    | Higher_better -> current >= (base /. limit) -. slack
  in
  { metric; base; current; limit; slack; direction; ok }

let compare_traces ?(tolerance = 1.3) ~base ~current () =
  let checks = ref [] in
  let push c = checks := c :: !checks in
  (* Span wall time per name; sub-millisecond spans are timing noise. *)
  let cur_spans = span_totals current in
  List.iter
    (fun (name, base_ns) ->
      if Int64.compare base_ns 1_000_000L >= 0 then
        let cur_ns =
          match List.assoc_opt name cur_spans with Some v -> v | None -> 0L
        in
        push
          (mk_check
             ~metric:(Printf.sprintf "span:%s.total_ms" name)
             ~direction:Lower_better ~limit:tolerance
             ~base:(Clock.ns_to_ms base_ns) ~current:(Clock.ns_to_ms cur_ns) ()))
    (span_totals base);
  (* Histogram tails, matched by name. *)
  List.iter
    (fun (b : Histogram.snapshot) ->
      if b.hist_count > 0 then
        match
          List.find_opt
            (fun (c : Histogram.snapshot) -> c.hist_name = b.hist_name)
            current.hists
        with
        | Some c when c.hist_count > 0 ->
            List.iter
              (fun (tag, q) ->
                push
                  (mk_check
                     ~metric:(Printf.sprintf "hist:%s.%s" b.hist_name tag)
                     ~direction:Lower_better ~limit:tolerance
                     ~base:(Histogram.quantile_of b q)
                     ~current:(Histogram.quantile_of c q) ()))
              [ ("p50", 0.50); ("p99", 0.99) ]
        | _ -> ())
    base.hists;
  (* Solution quality: final cost has a tight band — a solver that ends
     5% worse on the same seed is a real regression, not jitter. *)
  let cur_quality = quality current in
  List.iter
    (fun qb ->
      match List.find_opt (fun qc -> qc.stream = qb.stream) cur_quality with
      | Some qc ->
          push
            (mk_check
               ~metric:(Printf.sprintf "quality:%s.final_cost" qb.stream)
               ~direction:Lower_better ~limit:1.05 ~base:qb.final_cost
               ~current:qc.final_cost ());
          push
            (mk_check
               ~metric:(Printf.sprintf "quality:%s.primal_integral" qb.stream)
               ~direction:Lower_better ~limit:tolerance ~slack:0.01
               ~base:qb.primal_integral ~current:qc.primal_integral ())
      | None -> ())
    (quality base);
  let severity c =
    let eps = 1e-12 in
    match c.direction with
    | Lower_better -> c.current /. Float.max (Float.abs c.base) eps
    | Higher_better -> c.base /. Float.max (Float.abs c.current) eps
  in
  List.stable_sort
    (fun a b ->
      match Bool.compare a.ok b.ok with
      | 0 -> (
          match compare (severity b) (severity a) with
          | 0 -> compare a.metric b.metric
          | c -> c)
      | c -> c)
    !checks

let print_checks oc checks =
  List.iter
    (fun c ->
      let band =
        match c.direction with
        | Lower_better ->
            Printf.sprintf "<= %.0f%% of base%s" (100.0 *. c.limit)
              (if c.slack > 0.0 then Printf.sprintf " + %.3g" c.slack else "")
        | Higher_better ->
            Printf.sprintf ">= %.0f%% of base%s"
              (100.0 /. c.limit)
              (if c.slack > 0.0 then Printf.sprintf " - %.3g" c.slack else "")
      in
      Printf.fprintf oc "%s %-44s %14.6g vs %14.6g  (%s)\n"
        (if c.ok then "ok  " else "FAIL")
        c.metric c.current c.base band)
    checks
