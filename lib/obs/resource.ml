let with_ name f =
  if Sink.enabled () then begin
    Sink.record (Event.Span_begin name);
    let before = Gc.quick_stat () in
    let finish () =
      let after = Gc.quick_stat () in
      Sink.record
        (Event.Gc_delta
           {
             span = name;
             minor_words = after.Gc.minor_words -. before.Gc.minor_words;
             major_words = after.Gc.major_words -. before.Gc.major_words;
             promoted_words = after.Gc.promoted_words -. before.Gc.promoted_words;
             heap_words = after.Gc.heap_words - before.Gc.heap_words;
             compactions = after.Gc.compactions - before.Gc.compactions;
           });
      Sink.record (Event.Span_end name)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
  else f ()
