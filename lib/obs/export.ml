(* ---- minimal JSON emission (no external dependency) ---- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON has no literal for infinities or NaN. *)
let number f = if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

let schema_version = 2

type run = {
  seed : int option;
  argv : string list;
}

(* ---- JSONL: one self-describing JSON object per line ---- *)

let hist_json ~common (s : Histogram.snapshot) =
  let buckets =
    String.concat "," (List.map (fun (i, c) -> Printf.sprintf "[%d,%d]" i c) s.hist_buckets)
  in
  Printf.sprintf
    "{\"type\":\"hist\",\"name\":\"%s\",\"alpha\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"zero\":%d,\"buckets\":[%s],%s}"
    (escape s.hist_name) (number s.hist_alpha) s.hist_count (number s.hist_sum)
    (number s.hist_min) (number s.hist_max) s.hist_zero buckets common

let jsonl ?run ?(counters = []) ?(gauges = []) ?(hists = []) oc events =
  (* Aggregate (counter/gauge/hist) lines are point-in-time snapshots:
     stamp them all with one export-time timestamp and the exporting
     domain, so every line in the file carries ts_ns/domain. *)
  let now = Printf.sprintf "\"ts_ns\":%Ld,\"domain\":%d" (Clock.now_ns ())
      (Domain.self () :> int)
  in
  (let seed, argv = match run with Some r -> (r.seed, r.argv) | None -> (None, []) in
   Printf.fprintf oc "{\"type\":\"header\",\"schema\":%d,\"seed\":%s,\"argv\":[%s],%s}\n"
     schema_version
     (match seed with Some s -> string_of_int s | None -> "null")
     (String.concat "," (List.map (fun a -> "\"" ^ escape a ^ "\"") argv))
     now);
  List.iter
    (fun (e : Event.t) ->
      let common = Printf.sprintf "\"ts_ns\":%Ld,\"domain\":%d" e.Event.t_ns e.Event.domain in
      (match e.Event.payload with
      | Event.Span_begin n ->
          Printf.fprintf oc "{\"type\":\"span_begin\",\"name\":\"%s\",%s}" (escape n) common
      | Event.Span_end n ->
          Printf.fprintf oc "{\"type\":\"span_end\",\"name\":\"%s\",%s}" (escape n) common
      | Event.Incumbent { stream; cost } ->
          Printf.fprintf oc "{\"type\":\"incumbent\",\"stream\":\"%s\",\"cost\":%s,%s}"
            (escape stream) (number cost) common
      | Event.Mark n ->
          Printf.fprintf oc "{\"type\":\"mark\",\"name\":\"%s\",%s}" (escape n) common
      | Event.Gc_delta g ->
          Printf.fprintf oc
            "{\"type\":\"gc\",\"span\":\"%s\",\"minor_words\":%s,\"major_words\":%s,\"promoted_words\":%s,\"heap_words\":%d,\"compactions\":%d,%s}"
            (escape g.span) (number g.minor_words) (number g.major_words)
            (number g.promoted_words) g.heap_words g.compactions common);
      output_char oc '\n')
    events;
  List.iter
    (fun (name, total) ->
      Printf.fprintf oc "{\"type\":\"counter\",\"name\":\"%s\",\"total\":%d,%s}\n" (escape name)
        total now)
    counters;
  List.iter
    (fun (name, v) ->
      Printf.fprintf oc "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s,%s}\n" (escape name)
        (number v) now)
    gauges;
  List.iter
    (fun (s : Histogram.snapshot) ->
      output_string oc (hist_json ~common:now s);
      output_char oc '\n')
    hists

(* ---- Chrome trace_event format (chrome://tracing, Perfetto) ---- *)

let chrome ?run ?(counters = []) ?(gauges = []) ?(hists = []) oc events =
  ignore run;
  let t0 =
    List.fold_left
      (fun acc (e : Event.t) -> if Int64.compare e.Event.t_ns acc < 0 then e.Event.t_ns else acc)
      (match events with [] -> 0L | e :: _ -> e.Event.t_ns)
      events
  in
  let last = ref 0.0 in
  let us t =
    let v = Clock.ns_to_us (Int64.sub t t0) in
    if v > !last then last := v;
    v
  in
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if !first then first := false else output_char oc ',';
    output_char oc '\n';
    output_string oc line
  in
  List.iter
    (fun (e : Event.t) ->
      let ts = us e.Event.t_ns in
      match e.Event.payload with
      | Event.Span_begin n ->
          emit
            (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"cloudia\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
               (escape n) ts e.Event.domain)
      | Event.Span_end n ->
          emit
            (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"cloudia\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
               (escape n) ts e.Event.domain)
      | Event.Incumbent { stream; cost } ->
          emit
            (Printf.sprintf
               "{\"name\":\"incumbent:%s\",\"cat\":\"cloudia\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"cost\":%s}}"
               (escape stream) ts e.Event.domain (number cost))
      | Event.Mark n ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"cloudia\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"s\":\"t\"}"
               (escape n) ts e.Event.domain)
      | Event.Gc_delta g ->
          emit
            (Printf.sprintf
               "{\"name\":\"gc:%s\",\"cat\":\"cloudia\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"minor_words\":%s,\"major_words\":%s}}"
               (escape g.span) ts e.Event.domain (number g.minor_words)
               (number g.major_words)))
    events;
  (* Final counter/gauge totals as counter samples at the trace's end. *)
  List.iter
    (fun (name, total) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"cloudia\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\"args\":{\"value\":%d}}"
           (escape name) !last total))
    counters;
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"cloudia\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\"args\":{\"value\":%s}}"
           (escape name) !last (number v)))
    gauges;
  (* Histograms as end-of-trace instants carrying their quantile table. *)
  List.iter
    (fun (s : Histogram.snapshot) ->
      emit
        (Printf.sprintf
           "{\"name\":\"hist:%s\",\"cat\":\"cloudia\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\"s\":\"g\",\"args\":{\"count\":%d,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"max\":%s}}"
           (escape s.hist_name) !last s.hist_count
           (number (Histogram.quantile_of s 0.50))
           (number (Histogram.quantile_of s 0.90))
           (number (Histogram.quantile_of s 0.99))
           (number s.hist_max)))
    hists;
  output_string oc "\n]}\n"

(* ---- plain-text summary tree ---- *)

type node = {
  mutable total_ns : int64;
  mutable calls : int;
  children : (string, node) Hashtbl.t;
  order : string Queue.t; (* child names in first-seen order *)
}

let make_node () = { total_ns = 0L; calls = 0; children = Hashtbl.create 4; order = Queue.create () }

let child node name =
  match Hashtbl.find_opt node.children name with
  | Some c -> c
  | None ->
      let c = make_node () in
      Hashtbl.add node.children name c;
      Queue.add name node.order;
      c

(* Rebuild one domain's span tree from its begin/end sequence. Unmatched
   ends are ignored; spans still open at the last event are closed there
   (a trace cut mid-flight should still sum sensibly). *)
let domain_tree events =
  let root = make_node () in
  let stack = ref [] in
  let last_ts = List.fold_left (fun _ (e : Event.t) -> e.Event.t_ns) 0L events in
  let parent () = match !stack with [] -> root | (_, _, n) :: _ -> n in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Span_begin name ->
          let n = child (parent ()) name in
          stack := (name, e.Event.t_ns, n) :: !stack
      | Event.Span_end name -> (
          match !stack with
          | (top, t_begin, n) :: rest when top = name ->
              n.calls <- n.calls + 1;
              n.total_ns <- Int64.add n.total_ns (Int64.sub e.Event.t_ns t_begin);
              stack := rest
          | _ -> ())
      | Event.Incumbent _ | Event.Mark _ | Event.Gc_delta _ -> ())
    events;
  List.iter
    (fun (_, t_begin, n) ->
      n.calls <- n.calls + 1;
      n.total_ns <- Int64.add n.total_ns (Int64.sub last_ts t_begin))
    !stack;
  root

let summary ?run ?(counters = []) ?(gauges = []) ?(hists = []) oc events =
  (match run with
  | Some { seed; argv } when argv <> [] || seed <> None ->
      Printf.fprintf oc "run: %s%s\n"
        (String.concat " " argv)
        (match seed with Some s -> Printf.sprintf " (seed %d)" s | None -> "")
  | _ -> ());
  let domains =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> e.Event.domain) events)
  in
  Printf.fprintf oc "observability summary (%d events, %d domain(s))\n" (List.length events)
    (List.length domains);
  List.iter
    (fun dom ->
      let evs = List.filter (fun (e : Event.t) -> e.Event.domain = dom) events in
      let root = domain_tree evs in
      if Hashtbl.length root.children > 0 then begin
        Printf.fprintf oc "  domain %d\n" dom;
        let rec print indent node =
          Queue.iter
            (fun name ->
              let c = Hashtbl.find node.children name in
              Printf.fprintf oc "  %s%-*s %6d call%s %12.3f ms\n" indent
                (max 1 (34 - String.length indent))
                name c.calls
                (if c.calls = 1 then " " else "s")
                (Clock.ns_to_ms c.total_ns);
              print (indent ^ "  ") c)
            node.order
        in
        print "  " root
      end)
    domains;
  (* Allocation footprint per Resource.with_ span, aggregated by name. *)
  let gc_totals = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Gc_delta g ->
          let minor, major, n =
            match Hashtbl.find_opt gc_totals g.span with
            | Some x -> x
            | None -> (0.0, 0.0, 0)
          in
          Hashtbl.replace gc_totals g.span
            (minor +. g.minor_words, major +. g.major_words, n + 1)
      | _ -> ())
    events;
  if Hashtbl.length gc_totals > 0 then begin
    Printf.fprintf oc "  gc (per span)%26s %14s %14s\n" "samples" "minor words" "major words";
    Hashtbl.fold (fun s v acc -> (s, v) :: acc) gc_totals []
    |> List.sort compare
    |> List.iter (fun (span, (minor, major, n)) ->
           Printf.fprintf oc "    %-36s %6d %14.0f %14.0f\n" span n minor major)
  end;
  let incumbent_counts = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Incumbent { stream; cost } ->
          let n, _ =
            match Hashtbl.find_opt incumbent_counts stream with Some x -> x | None -> (0, nan)
          in
          Hashtbl.replace incumbent_counts stream (n + 1, cost)
      | _ -> ())
    events;
  if Hashtbl.length incumbent_counts > 0 then begin
    Printf.fprintf oc "  incumbent streams\n";
    Hashtbl.fold (fun s v acc -> (s, v) :: acc) incumbent_counts []
    |> List.sort compare
    |> List.iter (fun (stream, (updates, final)) ->
           Printf.fprintf oc "    %-32s %6d update%s final %.3f\n" stream updates
             (if updates = 1 then " " else "s")
             final)
  end;
  if hists <> [] then begin
    Printf.fprintf oc "  histograms%32s %10s %10s %10s %10s %10s\n" "count" "mean" "p50" "p90"
      "p99" "max";
    List.iter
      (fun (s : Histogram.snapshot) ->
        Printf.fprintf oc "    %-36s %6d %10.3g %10.3g %10.3g %10.3g %10.3g\n" s.hist_name
          s.hist_count (Histogram.mean_of s)
          (Histogram.quantile_of s 0.50)
          (Histogram.quantile_of s 0.90)
          (Histogram.quantile_of s 0.99)
          s.hist_max)
      hists
  end;
  if counters <> [] then begin
    Printf.fprintf oc "  counters\n";
    List.iter (fun (name, v) -> Printf.fprintf oc "    %-40s %12d\n" name v) counters
  end;
  if gauges <> [] then begin
    Printf.fprintf oc "  gauges\n";
    List.iter (fun (name, v) -> Printf.fprintf oc "    %-40s %12.4f\n" name v) gauges
  end
