(** Trace exporters: JSONL, Chrome [trace_event], and a text summary.

    All three consume the event list returned by {!Sink.drain} plus
    optional {!Counter.snapshot} / {!Gauge.snapshot} /
    {!Histogram.snapshot} aggregates; none touches global state, so the
    same drained list can be exported in several formats. *)

val schema_version : int
(** Version of the JSONL record layout; bumped whenever a line type
    changes shape. {!Trace.load} refuses newer schemas, and
    [cloudia obs compare] refuses to compare traces across versions. *)

(** Provenance stamped into the JSONL header so a later [obs compare]
    can refuse to diff traces from mismatched runs. *)
type run = {
  seed : int option;
  argv : string list;
}

val jsonl :
  ?run:run ->
  ?counters:(string * int) list ->
  ?gauges:(string * float) list ->
  ?hists:Histogram.snapshot list ->
  out_channel ->
  Event.t list ->
  unit
(** One JSON object per line. The first line is always a header record
    [{"type":"header","schema":…,"seed":…,"argv":…,…}]; then spans as
    [{"type":"span_begin","name":…,"ts_ns":…,"domain":…}], incumbents
    with a ["cost"] field, gc deltas as ["gc"] records, and one
    ["counter"] / ["gauge"] / ["hist"] line per aggregate. Aggregate
    lines carry the export-time [ts_ns]/[domain] (they are point-in-time
    snapshots, not events). Every line parses independently — the format
    {!Trace.load}, scripts, and the CI trace validation consume. *)

val chrome :
  ?run:run ->
  ?counters:(string * int) list ->
  ?gauges:(string * float) list ->
  ?hists:Histogram.snapshot list ->
  out_channel ->
  Event.t list ->
  unit
(** Chrome [trace_event] JSON ([{"traceEvents":[…]}]), loadable in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}. Spans map
    to ["B"]/["E"] events (pid 1, tid = domain id), incumbent updates, gc
    deltas, and final counter/gauge totals to ["C"] counter tracks, marks
    to instants, histograms to end-of-trace instants carrying
    count/p50/p90/p99/max. Timestamps are microseconds relative to the
    first event. [run] is accepted for signature uniformity (the format
    has no header slot). *)

val summary :
  ?run:run ->
  ?counters:(string * int) list ->
  ?gauges:(string * float) list ->
  ?hists:Histogram.snapshot list ->
  out_channel ->
  Event.t list ->
  unit
(** Human-readable tree: per-domain span hierarchy with call counts and
    total milliseconds, per-span gc totals, incumbent-stream update
    counts with final costs, then histogram (count/mean/p50/p90/p99/max),
    counter, and gauge tables. Unmatched span ends are ignored and
    still-open spans are closed at the last event, so truncated traces
    print sensibly. *)
