(** Trace exporters: JSONL, Chrome [trace_event], and a text summary.

    All three consume the event list returned by {!Sink.drain} plus
    optional {!Counter.snapshot} / {!Gauge.snapshot} aggregates; none
    touches global state, so the same drained list can be exported in
    several formats. *)

val jsonl : ?counters:(string * int) list -> out_channel -> Event.t list -> unit
(** One JSON object per line: spans as
    [{"type":"span_begin","name":…,"ts_ns":…,"domain":…}], incumbents with
    a ["cost"] field, then one ["counter"] line per counter total. Every
    line parses independently — the format scripts and the CI trace
    validation consume. *)

val chrome : ?counters:(string * int) list -> out_channel -> Event.t list -> unit
(** Chrome [trace_event] JSON ([{"traceEvents":[…]}]), loadable in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}. Spans map
    to ["B"]/["E"] events (pid 1, tid = domain id), incumbent updates and
    final counter totals to ["C"] counter tracks, marks to instants.
    Timestamps are microseconds relative to the first event. *)

val summary :
  ?counters:(string * int) list ->
  ?gauges:(string * float) list ->
  out_channel ->
  Event.t list ->
  unit
(** Human-readable tree: per-domain span hierarchy with call counts and
    total milliseconds, incumbent-stream update counts with final costs,
    then counter and gauge tables. Unmatched span ends are ignored and
    still-open spans are closed at the last event, so truncated traces
    print sensibly. *)
