type ring = {
  mutable events : Event.t array; (* allocated lazily on first record *)
  mutable len : int;
  mutable dropped : int;
}

let default_capacity = 1 lsl 16
let enabled_flag = Atomic.make false
let ring_capacity = Atomic.make default_capacity

(* Every ring ever created, newest first. Rings outlive their domain so
   events recorded by a joined worker remain drainable. The registry is
   touched under [registry_mu] only at ring creation and drain/reset time;
   appends go straight to the domain-local ring without any lock. *)
let registry : ring list ref = ref []
let registry_mu = Mutex.create ()

let dummy = { Event.t_ns = 0L; domain = 0; payload = Event.Mark "" }

let key =
  Domain.DLS.new_key (fun () ->
      let r = { events = [||]; len = 0; dropped = 0 } in
      Mutex.protect registry_mu (fun () -> registry := r :: !registry);
      r)

let enabled () = Atomic.get enabled_flag

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Obs.Sink.enable: capacity must be positive";
  Atomic.set ring_capacity capacity;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let record payload =
  if Atomic.get enabled_flag then begin
    let r = Domain.DLS.get key in
    if Array.length r.events = 0 then
      r.events <- Array.make (Atomic.get ring_capacity) dummy;
    if r.len < Array.length r.events then begin
      r.events.(r.len) <-
        { Event.t_ns = Clock.now_ns (); domain = (Domain.self () :> int); payload };
      r.len <- r.len + 1
    end
    else
      (* Full: drop the newest rather than overwrite — overwriting would
         orphan span-begin events and break nesting reconstruction. *)
      r.dropped <- r.dropped + 1
  end

let compare_events (a : Event.t) (b : Event.t) = Int64.compare a.Event.t_ns b.Event.t_ns

let drain () =
  Mutex.protect registry_mu (fun () ->
      let all =
        List.concat_map
          (fun r ->
            let evs = List.init r.len (fun i -> r.events.(i)) in
            r.len <- 0;
            evs)
          !registry
      in
      List.stable_sort compare_events all)

let dropped () =
  Mutex.protect registry_mu (fun () ->
      List.fold_left (fun acc r -> acc + r.dropped) 0 !registry)

let reset () =
  Mutex.protect registry_mu (fun () ->
      List.iter
        (fun r ->
          r.len <- 0;
          r.dropped <- 0)
        !registry)
