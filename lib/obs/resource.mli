(** Spans that also sample resource usage.

    [with_ name f] is {!Span.with_} plus a per-span [Gc.quick_stat]
    delta: just before the span closes it emits an {!Event.Gc_delta}
    carrying the minor/major/promoted words allocated, heap growth, and
    compactions that happened inside the span (on this domain). Use it
    for solver phases where the allocation footprint matters; keep plain
    {!Span.with_} for fine-grained regions, where two extra
    [Gc.quick_stat] calls per iteration would distort the measurement.

    When the sink is disabled this is just [f ()]. *)

val with_ : string -> (unit -> 'a) -> 'a
