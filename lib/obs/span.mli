(** Hierarchical timed regions.

    Nesting is implicit: spans opened while another span of the same
    domain is still open become its children, which is how the summary
    tree and the Chrome trace viewer reconstruct the hierarchy. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] brackets [f ()] in begin/end events; exception-safe
    (the end event is emitted even when [f] raises). When the sink is
    disabled this is just [f ()] — no event, no allocation. *)

val begin_ : string -> unit
(** Manual open, for regions that do not fit a lexical scope. Every
    [begin_] needs a matching {!end_} in the same domain. *)

val end_ : string -> unit

val mark : string -> unit
(** Instantaneous annotation (no duration). *)
