(** Minimal JSON values: the parser behind {!Trace} and the wire format
    of the serve protocol ([lib/serve]), with no external dependency.

    Numbers are kept as raw strings: [ts_ns] values are int64 nanoseconds
    that can exceed the 2^53 float-exact range, so each consumer converts
    with the type it needs ({!int_field}, {!int64_field}, …). The emitter
    writes {!Num} payloads verbatim, so an int64 round-trips losslessly
    through {!to_string} and {!parse}. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** raw numeric literal, unconverted *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse} and the [_field] accessors on malformed input. *)

val parse : string -> t
(** Parse one JSON value; raises {!Bad} on syntax errors or trailing
    garbage. Unicode escapes above 0x7f are preserved only approximately
    (the exporters never emit them). *)

val parse_opt : string -> t option
(** [parse] with {!Bad} mapped to [None]. *)

(** {2 Emission}

    [to_string] inverts {!parse}: strings are escaped, numbers emitted
    raw, [Null]/[Bool] as literals. *)

val to_string : t -> string
val escape : string -> string

val of_float : float -> t
(** [%.17g] (lossless for float64); NaN and infinities become [Null] —
    JSON has no literals for them. *)

val of_int : int -> t
val of_int64 : int64 -> t

(** {2 Field accessors}

    All take the value of an [Obj]; lookups on other constructors behave
    as a missing field. *)

val member : string -> t -> t option
val str_field : string -> t -> string
val float_field : ?default:float -> string -> t -> float
val int_field : ?default:int -> string -> t -> int
val int64_field : ?default:int64 -> string -> t -> int64
