external now_ns : unit -> int64 = "obs_clock_monotonic_ns"

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3
let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_s ns = Int64.to_float ns /. 1e9
