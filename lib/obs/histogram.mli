(** Log-bucketed latency/value histograms with bounded relative error.

    DDSketch-style: bucket [i] covers the value interval
    [(gamma^(i-1), gamma^i]] with [gamma = (1+alpha)/(1-alpha)], and the
    bucket's representative value [2*gamma^i/(gamma+1)] is within a
    relative error of [alpha] of every value in the interval — so every
    quantile estimate carries the same bound, independent of the data.

    Memory is fixed at creation (one [int Atomic.t] per bucket over the
    trackable range ~1e-9 .. 1e15, ~2.8k buckets at the default
    [alpha = 0.01]); recording is lock-free and domain-safe (one
    [fetch_and_add] on the bucket plus CAS loops for the float
    accumulators), so hot loops on several domains can share one
    histogram. Like {!Counter} and {!Gauge}, histograms are process-global
    and always on — independent of the event sink. *)

type t

val default_alpha : float
(** 0.01 — quantile estimates within 1 % relative error. *)

val create : ?alpha:float -> string -> t
(** A fresh, unregistered histogram (tests, local aggregation). [alpha]
    is clamped to (0.0005, 0.5); raises [Invalid_argument] outside it. *)

val make : ?alpha:float -> string -> t
(** Idempotent registered constructor, like {!Counter.make}: the same
    name always returns the same histogram ([alpha] of the first call
    wins). Registered histograms appear in {!snapshot}. *)

val record : t -> float -> unit
(** Record one value. NaN is ignored; zero and negative values land in a
    dedicated underflow bucket; values outside the trackable range clamp
    to the extreme buckets (their min/max accumulators stay exact). *)

val record_ns : t -> int64 -> unit
(** [record h ns] for an [int64] nanosecond delta. *)

val name : t -> string
val alpha : t -> float
val count : t -> int

(** Immutable point-in-time view — what exporters serialize and
    {!Trace} re-loads. Bucket indices are absolute (the [i] of
    [gamma^i]), sparse, ascending, with non-zero counts only. *)
type snapshot = {
  hist_name : string;
  hist_alpha : float;
  hist_count : int;
  hist_sum : float;
  hist_min : float;  (** [infinity] when empty *)
  hist_max : float;  (** [neg_infinity] when empty *)
  hist_zero : int;   (** values <= 0 *)
  hist_buckets : (int * int) list;
}

val snapshot_of : t -> snapshot
(** Not atomic across cells: concurrent recording can make [hist_count]
    differ from the bucket total by in-flight records, which quantile
    estimation tolerates. *)

val snapshot : unit -> snapshot list
(** Every registered histogram, sorted by name. *)

val merge : snapshot -> snapshot -> snapshot
(** Bucket-wise sum; keeps the first name. Raises [Invalid_argument] on
    differing [alpha] (buckets would not align). Associative and
    commutative on counts/buckets/min/max (float [hist_sum] is subject to
    rounding). *)

val quantile_of : snapshot -> float -> float
(** [quantile_of s q] estimates the [q]-quantile (q clamped to [0,1]) of
    the recorded values, within relative error [hist_alpha] for positive
    values; NaN when empty. The estimate is clamped to
    [[hist_min, hist_max]]. *)

val quantile : t -> float -> float
(** [quantile_of (snapshot_of t)]. *)

val mean_of : snapshot -> float
(** [hist_sum /. hist_count]; NaN when empty. *)

val value_of_bucket : alpha:float -> int -> float
(** The representative value of absolute bucket [i]:
    [2 * gamma^i / (gamma + 1)]. *)

val bucket_of_value : alpha:float -> float -> int
(** The absolute bucket index a positive value lands in:
    [ceil (log v / log gamma)]. *)

val reset_all : unit -> unit
(** Zero every registered histogram (test isolation). *)
