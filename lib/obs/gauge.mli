(** Named last-value-wins gauges (acceptance rates, temperatures, sizes).

    Like {!Counter} but holding a float snapshot instead of a running
    total; always on, independent of the event sink. *)

type t

val make : string -> t
(** Idempotent per name, like {!Counter.make}. *)

val set : t -> float -> unit
val value : t -> float
val name : t -> string

val snapshot : unit -> (string * float) list
(** Every registered gauge with its current value, sorted by name. *)

val reset_all : unit -> unit
