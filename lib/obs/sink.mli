(** The global event sink: disabled by default, near-zero cost when off.

    Each OCaml domain owns a private ring buffer (domain-local storage), so
    recording never contends on a lock — solver workers in a portfolio
    write telemetry at full speed without serializing on each other. When
    the sink is disabled, {!record} is a single atomic load and no event is
    ever built, so instrumented hot paths cost nothing measurable.

    Draining is meant to happen at quiescence (after worker domains have
    been joined): {!drain} walks every ring under a registry lock and
    returns the merged, time-sorted event list. Rings that fill up drop the
    {e newest} events (counted by {!dropped}) instead of overwriting older
    ones, which would orphan span-begin events. *)

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Start recording. [capacity] is the per-domain ring size in events
    (default 65536); raises [Invalid_argument] if non-positive. Rings
    already allocated keep their size. *)

val disable : unit -> unit
(** Stop recording. Buffered events stay drainable. *)

val record : Event.payload -> unit
(** Timestamp the payload with {!Clock.now_ns} and append it to the
    calling domain's ring. No-op when the sink is disabled. *)

val drain : unit -> Event.t list
(** All buffered events from every domain, sorted by timestamp, oldest
    first; the rings are emptied. Call after parallel work has joined —
    an append racing a drain may be missed until the next drain. *)

val dropped : unit -> int
(** Events discarded because a ring was full, since the last {!reset}. *)

val reset : unit -> unit
(** Empty every ring and zero the drop counts. *)
