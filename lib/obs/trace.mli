(** Trace forensics: load a JSONL trace back into memory and turn it into
    answers — span trees with self times and allocation, histogram
    percentile tables, time-to-quality metrics from incumbent streams,
    and a direction-aware regression comparison between two traces.

    This is the read side of {!Export.jsonl}: everything that exporter
    writes, [load] parses; [report] renders the forensics as text and
    [compare] diffs two traces the way [tools/bench_gate] diffs bench
    JSON. All rendering takes an explicit [out_channel] — the library
    never prints on its own. *)

(** Provenance parsed from the trace's header line. *)
type header = {
  schema : int;
  seed : int option;
  argv : string list;
}

type t = {
  header : header option;  (** [None] for pre-v2 traces *)
  events : Event.t list;   (** in file order *)
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : Histogram.snapshot list;
}

val load : string -> (t, string) result
(** Parse a JSONL trace file. Unknown record types are skipped (forward
    compatibility within a schema); malformed JSON or a header with a
    schema newer than {!Export.schema_version} is an [Error] naming the
    offending line. *)

val of_string : string -> (t, string) result

(** One node of the reconstructed span tree. [self_ns] is [total_ns]
    minus the children's totals; [minor_words]/[major_words] accumulate
    {!Event.Gc_delta} samples attached to this span. *)
type node = {
  span : string;
  calls : int;
  total_ns : int64;
  self_ns : int64;
  minor_words : float;
  major_words : float;
  children : node list;  (** in first-seen order *)
}

val span_tree : t -> (int * node list) list
(** Per-domain forest, domains ascending; children in first-seen order.
    Unmatched ends are ignored; spans still open at the trace's last
    event are closed there. *)

val span_totals : t -> (string * int64) list
(** Total nanoseconds per span name, summed over every occurrence in
    every domain (nested occurrences of the same name count once — the
    outermost), sorted by name. The flat view {!compare} bands. *)

(** Anytime profile of one incumbent stream. The running minimum of the
    observed costs is the anytime curve; [primal_integral] is the mean
    relative optimality gap to the final cost over the stream's window —
    0 when the final cost is found instantly, large when the search
    dwells far from it. [tt_within] gives, per percentage threshold, the
    seconds from the stream's first update until the curve is within
    that percentage of the final cost. *)
type quality = {
  stream : string;
  updates : int;
  first_cost : float;
  final_cost : float;
  window_s : float;   (** first update to last event in the trace *)
  primal_integral : float;
  tt_within : (float * float) list;  (** (percent, seconds) *)
}

val quality : ?thresholds:float list -> t -> quality list
(** Per-stream anytime profiles, streams sorted by name; [thresholds]
    default to [[1.; 5.; 10.]] percent. Streams with no updates are
    omitted. *)

val report : out_channel -> t -> unit
(** The full forensics: header provenance, per-domain span tree
    (calls/total/self/allocation), histogram percentile table
    (p50/p90/p99), time-to-quality per incumbent stream, counters and
    gauges. *)

type direction = Lower_better | Higher_better

(** One regression check of {!compare}: [current] vs
    [limit *. base +. slack] under [direction]. *)
type check = {
  metric : string;
  base : float;
  current : float;
  limit : float;
  slack : float;
  direction : direction;
  ok : bool;
}

val header_mismatch : t -> t -> string option
(** Why two traces should not be compared (schema, seed, or argv
    differs), or [None] when they match. Traces without headers never
    mismatch (nothing to check). *)

val compare_traces : ?tolerance:float -> base:t -> current:t -> unit -> check list
(** Direction-aware regression checks, most-regressed first: span totals
    (per name, only spans with base total >= 1 ms; band [tolerance],
    default 1.3), histogram p50/p99 (band [tolerance]), and per-stream
    final cost (band 1.05) and primal integral (band [tolerance] plus an
    absolute slack of 0.01 gap — tiny integrals are noise). Timing and
    allocation metrics are [Lower_better]. *)

val print_checks : out_channel -> check list -> unit
(** One line per check ("ok"/"FAIL", metric, current vs base, band). *)
