let with_ name f =
  if Sink.enabled () then begin
    Sink.record (Event.Span_begin name);
    match f () with
    | v ->
        Sink.record (Event.Span_end name);
        v
    | exception e ->
        Sink.record (Event.Span_end name);
        raise e
  end
  else f ()

let begin_ name = Sink.record (Event.Span_begin name)
let end_ name = Sink.record (Event.Span_end name)
let mark name = Sink.record (Event.Mark name)
