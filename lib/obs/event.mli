(** Telemetry events as they sit in the sink's ring buffers.

    Events are deliberately flat: a timestamp, the emitting domain, and a
    small payload. Hierarchy (span nesting) is reconstructed by exporters
    from begin/end ordering within a domain, exactly as Chrome's
    [trace_event] format does. *)

type payload =
  | Span_begin of string  (** a timed region opens in this domain *)
  | Span_end of string    (** the matching region closes *)
  | Incumbent of { stream : string; cost : float }
      (** a best-cost-so-far stream improved to [cost] *)
  | Mark of string        (** instantaneous annotation *)
  | Gc_delta of {
      span : string;
      minor_words : float;
      major_words : float;
      promoted_words : float;
      heap_words : int;    (** heap growth over the span, in words *)
      compactions : int;
    }
      (** [Gc.quick_stat] delta over the enclosing span of the same name,
          emitted by {!Resource.with_} just before its [Span_end]. *)

type t = {
  t_ns : int64;   (** {!Clock.now_ns} at emission *)
  domain : int;   (** numeric id of the emitting OCaml domain *)
  payload : payload;
}

val name : t -> string
(** The span/mark name, incumbent stream name, or gc-delta span name. *)
